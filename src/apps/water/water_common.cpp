#include "apps/water/water.h"

#include <cmath>

#include "common/rng.h"

namespace now::apps::water {

namespace {
constexpr double kBondK = 1.0, kBondR0 = 1.0;      // O-H springs
constexpr double kAngleK = 0.3, kAngleR0 = 1.633;  // H-H proxy spring
constexpr double kLjSigma2 = 1.0, kLjEps = 1.0;

// Adds a harmonic spring force between atoms at pos+ia*3 and pos+ib*3.
double spring(const double* pos, double* frc, std::size_t ia, std::size_t ib,
              double k, double r0) {
  double d[3];
  double r2 = 0;
  for (int c = 0; c < 3; ++c) {
    d[c] = pos[ia * 3 + c] - pos[ib * 3 + c];
    r2 += d[c] * d[c];
  }
  const double r = std::sqrt(r2);
  const double stretch = r - r0;
  const double coef = -k * stretch / (r > 1e-12 ? r : 1.0);
  for (int c = 0; c < 3; ++c) {
    frc[ia * 3 + c] += coef * d[c];
    frc[ib * 3 + c] -= coef * d[c];
  }
  return 0.5 * k * stretch * stretch;
}
}  // namespace

std::vector<double> make_positions(const Params& p) {
  Rng rng(p.seed);
  std::vector<double> pos(p.nmol * kDof);
  // Molecules on a jittered cubic lattice, atoms in a small triangle.
  const std::size_t side = static_cast<std::size_t>(std::ceil(std::cbrt(static_cast<double>(p.nmol))));
  const double spacing = 3.0;
  for (std::size_t m = 0; m < p.nmol; ++m) {
    const double ox = static_cast<double>(m % side) * spacing + 0.1 * rng.next_double();
    const double oy = static_cast<double>((m / side) % side) * spacing + 0.1 * rng.next_double();
    const double oz = static_cast<double>(m / (side * side)) * spacing + 0.1 * rng.next_double();
    double* mol = pos.data() + m * kDof;
    mol[0] = ox; mol[1] = oy; mol[2] = oz;            // O
    mol[3] = ox + 0.96; mol[4] = oy; mol[5] = oz;      // H1
    mol[6] = ox - 0.24; mol[7] = oy + 0.93; mol[8] = oz;  // H2
  }
  return pos;
}

double intra_force(const double* pos, double* frc, std::size_t m) {
  const std::size_t o = m * 3;  // atom index of the molecule's O atom
  double e = 0;
  e += spring(pos, frc, o, o + 1, kBondK, kBondR0);
  e += spring(pos, frc, o, o + 2, kBondK, kBondR0);
  e += spring(pos, frc, o + 1, o + 2, kAngleK, kAngleR0);
  return e;
}

double pair_force(const double* pos, double* frc, std::size_t a, std::size_t b) {
  const std::size_t ia = a * 3, ib = b * 3;  // O atoms
  double d[3];
  double r2 = 0;
  for (int c = 0; c < 3; ++c) {
    d[c] = pos[ia * 3 + c] - pos[ib * 3 + c];
    r2 += d[c] * d[c];
  }
  const double s2 = kLjSigma2 / r2;
  const double s6 = s2 * s2 * s2;
  const double s12 = s6 * s6;
  const double coef = 24.0 * kLjEps * (2.0 * s12 - s6) / r2;
  for (int c = 0; c < 3; ++c) {
    frc[ia * 3 + c] += coef * d[c];
    frc[ib * 3 + c] -= coef * d[c];
  }
  return 4.0 * kLjEps * (s12 - s6);
}

void integrate(double* pos, double* vel, const double* frc, std::size_t m, double dt) {
  for (std::size_t k = 0; k < kDof; ++k) {
    vel[m * kDof + k] += dt * frc[m * kDof + k];
    pos[m * kDof + k] += dt * vel[m * kDof + k];
  }
}

double checksum(const double* pos, std::size_t nmol, double energy) {
  double s = 0;
  for (std::size_t i = 0; i < nmol * kDof; ++i) s += pos[i];
  return s + energy;
}

}  // namespace now::apps::water
