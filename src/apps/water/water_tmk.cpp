// Hand-coded TreadMarks Water: SPMD with barriers between phases; the
// inter-molecular phase accumulates into a private buffer and merges into
// the shared force array under a lock (the classic TreadMarks Water
// structure).
#include "apps/water/water.h"

namespace now::apps::water {

namespace {
constexpr std::uint32_t kMergeLock = 0;

std::pair<std::size_t, std::size_t> block(std::size_t n, std::uint32_t t,
                                          std::uint32_t nt) {
  const std::size_t base = n / nt, rem = n % nt;
  const std::size_t begin = static_cast<std::size_t>(t) * base + std::min<std::size_t>(t, rem);
  return {begin, begin + base + (t < rem ? 1 : 0)};
}
}  // namespace

AppResult run_tmk(const Params& p, tmk::DsmConfig cfg) {
  tmk::DsmRuntime rt(cfg);
  AppResult result;

  rt.run_spmd([&](tmk::Tmk& tmk) {
    const std::size_t dof = p.nmol * kDof;
    if (tmk.id() == 0) {
      auto pos = tmk.alloc_array<double>(dof);
      auto vel = tmk.alloc_array<double>(dof);
      auto frc = tmk.alloc_array<double>(dof);
      auto energy = tmk.alloc_array<double>(1);
      auto init = make_positions(p);
      for (std::size_t i = 0; i < dof; ++i) {
        pos[i] = init[i];
        vel[i] = 0.0;
        frc[i] = 0.0;
      }
      *energy = 0.0;
      tmk.set_root(0, pos.cast<void>());
      tmk.set_root(1, vel.cast<void>());
      tmk.set_root(2, frc.cast<void>());
      tmk.set_root(3, energy.cast<void>());
    }
    tmk.barrier();

    auto pos = tmk.get_root<double>(0);
    auto vel = tmk.get_root<double>(1);
    auto frc = tmk.get_root<double>(2);
    auto energy = tmk.get_root<double>(3);
    const auto [mb, me] = block(p.nmol, tmk.id(), tmk.nprocs());

    for (std::uint32_t step = 0; step < p.steps; ++step) {
      // Phase 1: zero forces and the energy accumulator for this step.
      for (std::size_t m = mb; m < me; ++m)
        for (std::size_t k = 0; k < kDof; ++k) frc[m * kDof + k] = 0.0;
      if (tmk.id() == 0) *energy = 0.0;
      tmk.barrier();

      // Phase 2: intra-molecular forces — disjoint blocks, no races.
      double e_local = 0;
      for (std::size_t m = mb; m < me; ++m)
        e_local += intra_force(pos.get(), frc.get(), m);
      tmk.barrier();

      // Phase 3: inter-molecular forces into a private buffer, merged under
      // the lock.
      std::vector<double> local(dof, 0.0);
      for (std::size_t a = mb; a < me; ++a)
        for (std::size_t b = a + 1; b < p.nmol; ++b)
          e_local += pair_force(pos.get(), local.data(), a, b);
      tmk.lock_acquire(kMergeLock);
      for (std::size_t i = 0; i < dof; ++i)
        if (local[i] != 0.0) frc[i] = frc[i] + local[i];
      *energy = *energy + e_local;
      tmk.lock_release(kMergeLock);
      tmk.barrier();

      // Phase 4: integrate this block.
      for (std::size_t m = mb; m < me; ++m)
        integrate(pos.get(), vel.get(), frc.get(), m, p.dt);
      tmk.barrier();
    }

    if (tmk.id() == 0)
      result.checksum = checksum(pos.get(), p.nmol, *energy);
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.total_stats();
  return result;
}

}  // namespace now::apps::water
