// MPI Water: replicated-data molecular dynamics.  Every rank holds all
// positions, computes the forces for its block of molecules (and its slice
// of the pair triangle), and one allreduce per step merges forces and
// energy.  Positions are then advanced redundantly on every rank, which
// costs no communication — the classic message-passing layout that gives
// MPI its edge over the DSM versions in the paper.
#include "apps/water/water.h"

namespace now::apps::water {

namespace {
std::pair<std::size_t, std::size_t> block(std::size_t n, int t, int nt) {
  const std::size_t base = n / static_cast<std::size_t>(nt);
  const std::size_t rem = n % static_cast<std::size_t>(nt);
  const std::size_t tt = static_cast<std::size_t>(t);
  const std::size_t begin = tt * base + std::min(tt, rem);
  return {begin, begin + base + (tt < rem ? 1 : 0)};
}
}  // namespace

AppResult run_mpi(const Params& p, mpi::MpiConfig cfg) {
  mpi::MpiRuntime rt(cfg);
  AppResult result;

  rt.run([&](mpi::Comm& c) {
    const std::size_t dof = p.nmol * kDof;
    auto pos = make_positions(p);  // deterministic: identical on every rank
    std::vector<double> vel(dof, 0.0);
    std::vector<double> local(dof + 1, 0.0);   // forces + energy tail
    std::vector<double> global(dof + 1, 0.0);
    const auto [mb, me] = block(p.nmol, c.rank(), c.size());

    double energy = 0;
    for (std::uint32_t step = 0; step < p.steps; ++step) {
      std::fill(local.begin(), local.end(), 0.0);
      for (std::size_t m = mb; m < me; ++m)
        local[dof] += intra_force(pos.data(), local.data(), m);
      for (std::size_t a = mb; a < me; ++a)
        for (std::size_t b = a + 1; b < p.nmol; ++b)
          local[dof] += pair_force(pos.data(), local.data(), a, b);

      c.allreduce(local.data(), global.data(), dof + 1, mpi::Op::kSum);
      energy = global[dof];
      for (std::size_t m = 0; m < p.nmol; ++m)
        integrate(pos.data(), vel.data(), global.data(), m, p.dt);
    }
    if (c.rank() == 0) result.checksum = checksum(pos.data(), p.nmol, energy);
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  return result;
}

}  // namespace now::apps::water
