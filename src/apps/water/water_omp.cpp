// "Compiled OpenMP" Water: intra-molecular phase as `parallel do`,
// inter-molecular phase as a coarse-grain `parallel region` with an array
// reduction, integration as `parallel do` — the paper's directive structure.
#include "apps/water/water.h"
#include "omp/omp.h"

namespace now::apps::water {

AppResult run_omp(const Params& p, tmk::DsmConfig cfg) {
  omp::OmpRuntime rt(cfg);
  AppResult result;

  rt.run([&](omp::Team& team) {
    const std::size_t dof = p.nmol * kDof;
    auto pos = team.shared_array<double>(dof);
    auto vel = team.shared_array<double>(dof);
    auto frc = team.shared_array<double>(dof);
    auto energy = team.shared_scalar<double>(0.0);
    auto init = make_positions(p);
    for (std::size_t i = 0; i < dof; ++i) {
      pos[i] = init[i];
      vel[i] = 0.0;
    }

    const std::size_t nmol = p.nmol;
    const double dt = p.dt;
    for (std::uint32_t step = 0; step < p.steps; ++step) {
      *energy = 0.0;  // sequential part between regions (master)

      // parallel do: zero forces.
      team.parallel_for(0, static_cast<std::int64_t>(dof),
                        [=](omp::Par&, std::int64_t i) { frc[static_cast<std::size_t>(i)] = 0.0; });

      // parallel do + reduction: intra-molecular potentials.
      team.parallel([=](omp::Par& par) {
        double e_local = 0;
        auto [b, e] = par.static_range(0, static_cast<std::int64_t>(nmol));
        for (std::int64_t m = b; m < e; ++m)
          e_local += intra_force(pos.get(), frc.get(), static_cast<std::size_t>(m));
        par.reduce_sum(energy, &e_local, 1);
      });

      // parallel region: coarse-grain inter-molecular phase with an array
      // reduction of the force contributions (the paper's reduction-on-
      // arrays extension).
      team.parallel([=](omp::Par& par) {
        std::vector<double> local(dof, 0.0);
        double e_local = 0;
        auto [b, e] = par.static_range(0, static_cast<std::int64_t>(nmol));
        for (std::int64_t a = b; a < e; ++a)
          for (std::size_t bm = static_cast<std::size_t>(a) + 1; bm < nmol; ++bm)
            e_local += pair_force(pos.get(), local.data(), static_cast<std::size_t>(a), bm);
        par.reduce_into(frc, local.data(), dof, [](double x, double y) { return x + y; });
        par.reduce_sum(energy, &e_local, 1);
      });

      // parallel do: integrate.
      team.parallel_for(0, static_cast<std::int64_t>(nmol), [=](omp::Par&, std::int64_t m) {
        integrate(pos.get(), vel.get(), frc.get(), static_cast<std::size_t>(m), dt);
      });
    }

    result.checksum = checksum(pos.get(), p.nmol, *energy);
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.dsm().total_stats();
  return result;
}

}  // namespace now::apps::water
