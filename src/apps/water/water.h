// Water: n-squared molecular dynamics in the style of SPLASH-2 Water
// (paper Section 5).
//
// "The main data structure in Water is a one-dimensional array of records in
//  which each record represents a molecule. ... The parallel algorithm
//  statically divides the array of molecules into equally sized contiguous
//  blocks, assigning each block to a processor.  The bulk of the
//  interprocessor communication [is] from synchronization that takes place
//  during the intermolecular force computation."
//
// Per the paper's OpenMP version: intra-molecular potentials use `parallel
// do`; the inter-molecular O(n^2) phase uses a coarse-grain `parallel
// region` with per-thread force accumulation merged under a lock.
//
// Physics model (simplified but structurally faithful): 3 atoms per molecule
// with harmonic O-H and H-H springs (intra) plus an O-O Lennard-Jones term
// over all molecule pairs (inter); explicit Euler integration.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/harness.h"
#include "mpi/mpi.h"
#include "tmk/tmk.h"

namespace now::apps::water {

inline constexpr std::size_t kDof = 9;  // 3 atoms x 3 coordinates

struct Params {
  std::size_t nmol = 216;  // SPLASH-2's classic molecule count
  std::uint32_t steps = 4;
  double dt = 1e-3;
  std::uint64_t seed = 1;
};

// Deterministic initial atom positions (velocities start at zero).
std::vector<double> make_positions(const Params& p);

// Intra-molecular forces of molecule m: adds into frc, returns its potential.
double intra_force(const double* pos, double* frc, std::size_t m);

// O-O Lennard-Jones between molecules a and b: adds into frc, returns the
// pair potential.
double pair_force(const double* pos, double* frc, std::size_t a, std::size_t b);

// Euler update of molecule m.
void integrate(double* pos, double* vel, const double* frc, std::size_t m, double dt);

// Position + energy fingerprint.
double checksum(const double* pos, std::size_t nmol, double energy);

AppResult run_seq(const Params& p, const sim::TimeModel& time);
AppResult run_tmk(const Params& p, tmk::DsmConfig cfg);
AppResult run_omp(const Params& p, tmk::DsmConfig cfg);
AppResult run_mpi(const Params& p, mpi::MpiConfig cfg);

}  // namespace now::apps::water
