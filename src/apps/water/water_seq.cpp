#include "apps/water/water.h"

namespace now::apps::water {

AppResult run_seq(const Params& p, const sim::TimeModel& time) {
  auto pos = make_positions(p);
  return run_sequential(time, [&]() -> double {
    std::vector<double> vel(p.nmol * kDof, 0.0);
    std::vector<double> frc(p.nmol * kDof, 0.0);
    double energy = 0;
    for (std::uint32_t step = 0; step < p.steps; ++step) {
      std::fill(frc.begin(), frc.end(), 0.0);
      energy = 0;
      for (std::size_t m = 0; m < p.nmol; ++m)
        energy += intra_force(pos.data(), frc.data(), m);
      for (std::size_t a = 0; a < p.nmol; ++a)
        for (std::size_t b = a + 1; b < p.nmol; ++b)
          energy += pair_force(pos.data(), frc.data(), a, b);
      for (std::size_t m = 0; m < p.nmol; ++m)
        integrate(pos.data(), vel.data(), frc.data(), m, p.dt);
    }
    return checksum(pos.data(), p.nmol, energy);
  });
}

}  // namespace now::apps::water
