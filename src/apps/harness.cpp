#include "apps/harness.h"

#include <cmath>
#include <functional>
#include <thread>

#include "simnet/clock.h"

namespace now::apps {

AppResult run_sequential(const sim::TimeModel& time,
                         const std::function<double()>& workload) {
  AppResult result;
  std::thread t([&] {
    sim::CpuMeter meter;
    result.checksum = workload();
    result.virtual_time_us =
        static_cast<double>(time.scale_ns(meter.take_delta_ns())) / 1000.0;
  });
  t.join();
  return result;
}

bool checksum_close(double a, double b, double rel_tol) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= rel_tol * scale;
}

}  // namespace now::apps
