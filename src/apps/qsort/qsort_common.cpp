#include "apps/qsort/qsort.h"

#include <algorithm>

#include "common/rng.h"

namespace now::apps::qs {

std::vector<std::uint32_t> make_input(const Params& p) {
  Rng rng(p.seed);
  std::vector<std::uint32_t> a(p.n);
  for (auto& v : a) v = static_cast<std::uint32_t>(rng.next_u64());
  return a;
}

std::uint64_t checksum(const std::uint32_t* a, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i)
    sum += static_cast<std::uint64_t>(a[i]) * (i + 1);
  return sum;
}

void bubble_sort(std::uint32_t* a, std::size_t n) {
  for (std::size_t end = n; end > 1; --end) {
    bool swapped = false;
    for (std::size_t i = 1; i < end; ++i) {
      if (a[i] < a[i - 1]) {
        std::swap(a[i], a[i - 1]);
        swapped = true;
      }
    }
    if (!swapped) break;
  }
}

std::size_t partition(std::uint32_t* a, std::size_t n) {
  // Median-of-three pivot, Lomuto partition.  Returns m with a[m] in its
  // final sorted position, a[0..m) < a[m] <= a[m+1..n): both remaining
  // subproblems are strictly smaller than n, so recursion always makes
  // progress, duplicates included.
  const std::size_t mid = n / 2;
  if (a[mid] < a[0]) std::swap(a[mid], a[0]);
  if (a[n - 1] < a[0]) std::swap(a[n - 1], a[0]);
  if (a[n - 1] < a[mid]) std::swap(a[n - 1], a[mid]);
  std::swap(a[mid], a[n - 1]);  // pivot to the end
  const std::uint32_t pivot = a[n - 1];

  std::size_t store = 0;
  for (std::size_t i = 0; i + 1 < n; ++i)
    if (a[i] < pivot) std::swap(a[i], a[store++]);
  std::swap(a[store], a[n - 1]);
  return store;
}

}  // namespace now::apps::qs
