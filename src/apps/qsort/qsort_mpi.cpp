// MPI QSORT: hypercube quicksort — recursive bisection with pivot broadcast
// and pairwise low/high exchange, then a local sort and a distributed
// checksum.  The message-passing counterpart of the task-queue versions:
// few large messages instead of many page diffs.
#include "apps/qsort/qsort.h"

#include <algorithm>

#include "common/check.h"

namespace now::apps::qs {

namespace {

constexpr int kTagScatterCount = 100;
constexpr int kTagScatterData = 101;
constexpr int kTagPivot = 102;
constexpr int kTagXchgCount = 103;
constexpr int kTagXchgData = 104;
constexpr int kTagCount = 105;

void local_sort(std::vector<std::uint32_t>& v, std::size_t threshold) {
  if (v.size() < 2) return;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, v.size()}};
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    while (hi - lo > threshold) {
      const std::size_t m = lo + partition(v.data() + lo, hi - lo);
      if (m - lo < hi - (m + 1)) {
        stack.emplace_back(m + 1, hi);
        hi = m;
      } else {
        stack.emplace_back(lo, m);
        lo = m + 1;
      }
    }
    if (hi - lo > 1) bubble_sort(v.data() + lo, hi - lo);
  }
}

}  // namespace

AppResult run_mpi(const Params& p, mpi::MpiConfig cfg) {
  const std::uint32_t np = cfg.num_ranks;
  NOW_CHECK((np & (np - 1)) == 0) << "hypercube quicksort needs 2^k ranks";
  mpi::MpiRuntime rt(cfg);
  AppResult result;

  rt.run([&](mpi::Comm& c) {
    const int n = c.size();
    const int r = c.rank();

    // Root generates and scatters the input in blocks.
    std::vector<std::uint32_t> local;
    if (r == 0) {
      auto input = make_input(p);
      const std::size_t base = p.n / static_cast<std::size_t>(n);
      const std::size_t rem = p.n % static_cast<std::size_t>(n);
      std::size_t off = 0;
      for (int dst = 0; dst < n; ++dst) {
        const std::size_t count = base + (static_cast<std::size_t>(dst) < rem ? 1 : 0);
        if (dst == 0) {
          local.assign(input.begin(), input.begin() + static_cast<std::ptrdiff_t>(count));
        } else {
          const std::uint64_t cnt64 = count;
          c.send(&cnt64, sizeof cnt64, dst, kTagScatterCount);
          c.send(input.data() + off, count * sizeof(std::uint32_t), dst, kTagScatterData);
        }
        off += count;
      }
    } else {
      std::uint64_t cnt64 = 0;
      c.recv(&cnt64, sizeof cnt64, 0, kTagScatterCount);
      local.resize(cnt64);
      c.recv(local.data(), cnt64 * sizeof(std::uint32_t), 0, kTagScatterData);
    }

    // log2(n) bisection rounds.
    for (int step = n / 2; step >= 1; step /= 2) {
      const int group = r & ~(2 * step - 1);  // first rank of our subcube
      // Group root picks a pivot (median of its local data) and distributes
      // it within the subcube.
      std::uint32_t pivot = 0;
      if (r == group) {
        std::vector<std::uint32_t> tmp = local;
        if (!tmp.empty()) {
          std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(tmp.size() / 2), tmp.end());
          pivot = tmp[tmp.size() / 2];
        }
        for (int m = group; m < group + 2 * step; ++m)
          if (m != r) c.send(&pivot, sizeof pivot, m, kTagPivot);
      } else {
        c.recv(&pivot, sizeof pivot, group, kTagPivot);
      }

      // Split locally, exchange halves with the partner across the bisection.
      std::vector<std::uint32_t> low, high;
      for (std::uint32_t v : local)
        (v < pivot ? low : high).push_back(v);

      const int partner = r ^ step;
      std::vector<std::uint32_t>& keep = (r < partner) ? low : high;
      std::vector<std::uint32_t>& give = (r < partner) ? high : low;
      const std::uint64_t give_count = give.size();
      std::uint64_t get_count = 0;
      c.sendrecv(&give_count, sizeof give_count, partner, kTagXchgCount,
                 &get_count, sizeof get_count, partner, kTagXchgCount);
      std::vector<std::uint32_t> incoming(get_count);
      c.sendrecv(give.data(), give.size() * sizeof(std::uint32_t), partner,
                 kTagXchgData, incoming.data(), get_count * sizeof(std::uint32_t),
                 partner, kTagXchgData);
      keep.insert(keep.end(), incoming.begin(), incoming.end());
      local = std::move(keep);
    }

    local_sort(local, p.bubble_threshold);

    // Distributed order-sensitive checksum: ranks hold ascending buckets;
    // compute global offsets, then reduce the weighted partial sums.
    std::uint64_t count = local.size();
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
    c.gather(&count, sizeof count, counts.data(), 0);
    std::uint64_t offset = 0;
    if (r == 0) {
      std::uint64_t acc = 0;
      for (int dst = 0; dst < n; ++dst) {
        const std::uint64_t this_count = counts[static_cast<std::size_t>(dst)];
        if (dst == 0) {
          offset = 0;
        } else {
          c.send(&acc, sizeof acc, dst, kTagCount);
        }
        acc += this_count;
      }
    } else {
      c.recv(&offset, sizeof offset, 0, kTagCount);
    }
    std::uint64_t partial = 0;
    for (std::size_t i = 0; i < local.size(); ++i)
      partial += static_cast<std::uint64_t>(local[i]) * (offset + i + 1);
    std::uint64_t total = 0;
    c.reduce(&partial, &total, 1, mpi::Op::kSum, 0);
    if (r == 0)
      result.checksum = static_cast<double>(total % 9007199254740881ULL);
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  return result;
}

}  // namespace now::apps::qs
