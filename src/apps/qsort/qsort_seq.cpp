#include "apps/qsort/qsort.h"

namespace now::apps::qs {

namespace {
// Iterative quicksort with bubble-sorted leaves — the same kernel every
// parallel version runs per task, so compute is comparable across versions.
void seq_sort(std::uint32_t* a, std::size_t n, std::size_t threshold) {
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, n}};
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    while (hi - lo > threshold) {
      const std::size_t m = lo + partition(a + lo, hi - lo);
      // Recurse into the smaller half via the stack; iterate on the larger.
      if (m - lo < hi - (m + 1)) {
        stack.emplace_back(m + 1, hi);
        hi = m;
      } else {
        stack.emplace_back(lo, m);
        lo = m + 1;
      }
    }
    if (hi - lo > 1) bubble_sort(a + lo, hi - lo);
  }
}
}  // namespace

AppResult run_seq(const Params& p, const sim::TimeModel& time) {
  auto input = make_input(p);
  return run_sequential(time, [&]() -> double {
    seq_sort(input.data(), input.size(), p.bubble_threshold);
    return static_cast<double>(checksum(input.data(), input.size()) %
                               9007199254740881ULL);
  });
}

}  // namespace now::apps::qs
