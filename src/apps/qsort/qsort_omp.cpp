// "Compiled OpenMP" QSORT: what ompcc emits for the directive-annotated
// source — a parallel region whose EnQueue/DeQueue use the critical and
// condition-variable directives exactly as in the paper's Figure 4.
#include "apps/qsort/qsort.h"

#include "common/check.h"
#include "omp/omp.h"

namespace now::apps::qs {

namespace {

// The queue lives in shared memory because the source declared it `shared`;
// everything else in the region is private by default (the paper's first
// proposed modification).
struct SharedQueue {
  tmk::gptr<std::uint64_t> hdr;  // [head, tail, nwait, cap, entries...]

  std::uint64_t& head() const { return hdr[0]; }
  std::uint64_t& tail() const { return hdr[1]; }
  std::uint64_t& nwait() const { return hdr[2]; }
  std::uint64_t cap() const { return hdr[3]; }
  bool empty() const { return head() == tail(); }

  void push(std::uint64_t lo, std::uint64_t hi) const {
    const std::uint64_t slot = tail() % cap();
    hdr[4 + 2 * slot] = lo;
    hdr[4 + 2 * slot + 1] = hi;
    tail() = tail() + 1;
    NOW_CHECK_LE(tail() - head(), cap()) << "task queue overflow";
  }
  void pop(std::uint64_t& lo, std::uint64_t& hi) const {
    const std::uint64_t slot = head() % cap();
    lo = hdr[4 + 2 * slot];
    hi = hdr[4 + 2 * slot + 1];
    head() = head() + 1;
  }
};

constexpr std::uint32_t kCond = 0;

// Figure 4 DeQueue, directive style: `#pragma critical` + cond_wait.
bool omp_dequeue(omp::Par& p, const SharedQueue& q, std::uint64_t& lo,
                 std::uint64_t& hi) {
  bool got = false;
  p.tmk().lock_acquire(omp::kCriticalBase);
  while (q.empty() && q.nwait() < p.num_threads()) {
    q.nwait() = q.nwait() + 1;
    if (q.nwait() == p.num_threads()) {
      p.cond_broadcast(kCond);
      break;
    }
    p.cond_wait(kCond);
    if (q.nwait() == p.num_threads()) break;
    q.nwait() = q.nwait() - 1;
  }
  if (q.nwait() < p.num_threads()) {
    q.pop(lo, hi);
    got = true;
  }
  p.tmk().lock_release(omp::kCriticalBase);
  return got;
}

// Figure 4 EnQueue.
void omp_enqueue(omp::Par& p, const SharedQueue& q, std::uint64_t lo,
                 std::uint64_t hi) {
  p.critical([&] {
    q.push(lo, hi);
    if (q.nwait() > 0) p.cond_signal(kCond);
  });
}

}  // namespace

AppResult run_omp(const Params& p, tmk::DsmConfig cfg) {
  omp::OmpRuntime rt(cfg);
  AppResult result;

  rt.run([&](omp::Team& team) {
    // Sequential part: the master builds the shared data environment.
    auto a = team.shared_array<std::uint32_t>(p.n);
    const std::uint64_t cap =
        std::max<std::uint64_t>(1024, 8 * p.n / std::max<std::size_t>(p.bubble_threshold, 1));
    auto qmem = team.shared_array<std::uint64_t>(4 + 2 * cap);
    auto input = make_input(p);
    for (std::size_t i = 0; i < p.n; ++i) a[i] = input[i];
    qmem[0] = 0;
    qmem[1] = 0;
    qmem[2] = 0;
    qmem[3] = cap;
    SharedQueue queue{qmem};
    queue.push(0, p.n);

    const std::size_t threshold = p.bubble_threshold;
    team.parallel([=](omp::Par& par) {
      SharedQueue q{qmem};
      std::uint64_t lo, hi;
      while (omp_dequeue(par, q, lo, hi)) {
        while (hi - lo > threshold) {
          const std::size_t m = static_cast<std::size_t>(lo) +
                                partition(a.get() + lo, static_cast<std::size_t>(hi - lo));
          if (m - lo < hi - (m + 1)) {
            omp_enqueue(par, q, m + 1, hi);
            hi = m;
          } else {
            omp_enqueue(par, q, lo, m);
            lo = m + 1;
          }
        }
        if (hi - lo > 1) bubble_sort(a.get() + lo, static_cast<std::size_t>(hi - lo));
      }
    });

    result.checksum = static_cast<double>(checksum(a.get(), p.n) % 9007199254740881ULL);
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.dsm().total_stats();
  return result;
}

}  // namespace now::apps::qs
