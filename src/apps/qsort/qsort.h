// QSORT: quicksort with a shared task queue (paper Section 5, "SQORT").
//
// "Quicksort sorts an array of integers by recursively partitioning the
//  array into subarrays and resorting to bubblesort when the subarray is
//  sufficiently short.  Quicksort employs a task queue wherein each task
//  element is a pointer to a subarray.  A thread repeatedly removes a
//  subarray from the task queue, subdivides it and puts generated tasks back
//  to the task queue.  The OpenMP EnQueue and DeQueue operations are
//  implemented with critical sections and a condition variable" (Figure 4).
//
// The MPI version uses hypercube quicksort (recursive bisection with pivot
// broadcast and pairwise exchange), the standard message-passing equivalent.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/harness.h"
#include "mpi/mpi.h"
#include "tmk/tmk.h"

namespace now::apps::qs {

struct Params {
  std::size_t n = 1 << 17;             // integers to sort
  std::size_t bubble_threshold = 512;  // leaf size handled by bubble sort
  std::uint64_t seed = 1;
};

// Deterministic unsorted input.
std::vector<std::uint32_t> make_input(const Params& p);

// Order-sensitive fingerprint: sum of value * (index+1), wrapping.
std::uint64_t checksum(const std::uint32_t* a, std::size_t n);

// Sequential quicksort-with-bubble-leaves (also the per-task kernel).
void bubble_sort(std::uint32_t* a, std::size_t n);
// Places a pivot in final position m: a[0..m) < a[m] <= a[m+1..n).
std::size_t partition(std::uint32_t* a, std::size_t n);

AppResult run_seq(const Params& p, const sim::TimeModel& time);
AppResult run_tmk(const Params& p, tmk::DsmConfig cfg);
AppResult run_omp(const Params& p, tmk::DsmConfig cfg);
AppResult run_mpi(const Params& p, mpi::MpiConfig cfg);

}  // namespace now::apps::qs
