// Hand-coded TreadMarks QSORT: SPMD workers around a shared task queue
// protected by a lock, with a condition variable for idle workers — the
// paper's Figure 4 structure, hand-written against the Tmk API.
#include "apps/qsort/qsort.h"

#include "common/check.h"

namespace now::apps::qs {

namespace {

constexpr std::uint32_t kQueueLock = 0;
constexpr std::uint32_t kQueueCond = 0;

// Shared queue layout (all u64 slots): [head, tail, nwait, cap, entries...]
// where each entry is a (lo, hi) pair of u64.
struct Queue {
  tmk::gptr<std::uint64_t> hdr;

  std::uint64_t& head() const { return hdr[0]; }
  std::uint64_t& tail() const { return hdr[1]; }
  std::uint64_t& nwait() const { return hdr[2]; }
  std::uint64_t cap() const { return hdr[3]; }

  void push(std::uint64_t lo, std::uint64_t hi) const {
    const std::uint64_t slot = tail() % cap();
    hdr[4 + 2 * slot] = lo;
    hdr[4 + 2 * slot + 1] = hi;
    tail() = tail() + 1;
    NOW_CHECK_LE(tail() - head(), cap()) << "task queue overflow";
  }
  void pop(std::uint64_t& lo, std::uint64_t& hi) const {
    const std::uint64_t slot = head() % cap();
    lo = hdr[4 + 2 * slot];
    hi = hdr[4 + 2 * slot + 1];
    head() = head() + 1;
  }
  bool empty() const { return head() == tail(); }
};

// Figure 4's DeQueue: wait on the condition variable when the queue is
// empty; the last idle worker broadcasts global termination.
bool dequeue(tmk::Tmk& tmk, const Queue& q, std::uint64_t& lo, std::uint64_t& hi) {
  bool got = false;
  tmk.lock_acquire(kQueueLock);
  while (q.empty() && q.nwait() < tmk.nprocs()) {
    q.nwait() = q.nwait() + 1;
    if (q.nwait() == tmk.nprocs()) {
      tmk.cond_broadcast(kQueueLock, kQueueCond);
      break;
    }
    tmk.cond_wait(kQueueLock, kQueueCond);
    if (q.nwait() == tmk.nprocs()) break;
    q.nwait() = q.nwait() - 1;
  }
  if (q.nwait() < tmk.nprocs()) {
    q.pop(lo, hi);
    got = true;
  }
  tmk.lock_release(kQueueLock);
  return got;
}

// Figure 4's EnQueue: push and wake one idle worker.
void enqueue(tmk::Tmk& tmk, const Queue& q, std::uint64_t lo, std::uint64_t hi) {
  tmk.lock_acquire(kQueueLock);
  q.push(lo, hi);
  if (q.nwait() > 0) tmk.cond_signal(kQueueLock, kQueueCond);
  tmk.lock_release(kQueueLock);
}

void worker(tmk::Tmk& tmk, tmk::gptr<std::uint32_t> a, const Queue& q,
            std::size_t threshold) {
  std::uint64_t lo, hi;
  while (dequeue(tmk, q, lo, hi)) {
    // Subdivide: enqueue one half, keep the other, bubble-sort leaves.
    while (hi - lo > threshold) {
      const std::size_t m =
          static_cast<std::size_t>(lo) + partition(a.get() + lo, static_cast<std::size_t>(hi - lo));
      if (m - lo < hi - (m + 1)) {
        enqueue(tmk, q, m + 1, hi);
        hi = m;
      } else {
        enqueue(tmk, q, lo, m);
        lo = m + 1;
      }
    }
    if (hi - lo > 1) bubble_sort(a.get() + lo, static_cast<std::size_t>(hi - lo));
  }
}

}  // namespace

AppResult run_tmk(const Params& p, tmk::DsmConfig cfg) {
  tmk::DsmRuntime rt(cfg);
  AppResult result;

  rt.run_spmd([&](tmk::Tmk& tmk) {
    if (tmk.id() == 0) {
      auto a = tmk.alloc_array<std::uint32_t>(p.n);
      const std::uint64_t cap =
          std::max<std::uint64_t>(1024, 8 * p.n / std::max<std::size_t>(p.bubble_threshold, 1));
      auto q = tmk.alloc_array<std::uint64_t>(4 + 2 * cap);
      auto input = make_input(p);
      for (std::size_t i = 0; i < p.n; ++i) a[i] = input[i];
      q[0] = 0;  // head
      q[1] = 0;  // tail
      q[2] = 0;  // nwait
      q[3] = cap;
      Queue queue{q};
      queue.push(0, p.n);
      tmk.set_root(0, a.cast<void>());
      tmk.set_root(1, q.cast<void>());
    }
    tmk.barrier();

    auto a = tmk.get_root<std::uint32_t>(0);
    Queue queue{tmk.get_root<std::uint64_t>(1)};
    worker(tmk, a, queue, p.bubble_threshold);
    tmk.barrier();

    if (tmk.id() == 0) {
      result.checksum = static_cast<double>(checksum(a.get(), p.n) % 9007199254740881ULL);
    }
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.total_stats();
  return result;
}

}  // namespace now::apps::qs
