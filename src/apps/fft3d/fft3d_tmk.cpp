// Hand-coded TreadMarks 3D-FFT: SPMD, shared grids, barriers between the
// data-parallel phases.  The global transpose is a loop over destination
// planes whose scattered reads become DSM page fetches.
#include "apps/fft3d/fft3d.h"

namespace now::apps::fft3d {

namespace {
std::pair<std::size_t, std::size_t> block(std::size_t n, std::uint32_t t,
                                          std::uint32_t nt) {
  const std::size_t base = n / nt, rem = n % nt;
  const std::size_t begin = static_cast<std::size_t>(t) * base + std::min<std::size_t>(t, rem);
  return {begin, begin + base + (t < rem ? 1 : 0)};
}

Complex* as_complex(tmk::gptr<double> g) {
  return reinterpret_cast<Complex*>(g.get());
}
}  // namespace

AppResult run_tmk(const Params& p, tmk::DsmConfig cfg) {
  tmk::DsmRuntime rt(cfg);
  AppResult result;

  rt.run_spmd([&](tmk::Tmk& tmk) {
    const std::size_t nx = p.nx, ny = p.ny, nz = p.nz;
    const std::size_t total = nx * ny * nz;
    if (tmk.id() == 0) {
      auto a = tmk.alloc_array<double>(2 * total);
      auto ubar = tmk.alloc_array<double>(2 * total);
      auto w = tmk.alloc_array<double>(2 * total);
      auto v = tmk.alloc_array<double>(2 * total);
      auto sums = tmk.alloc_array<double>(2);
      fill_initial(as_complex(a), p);
      sums[0] = sums[1] = 0.0;
      tmk.set_root(0, a.cast<void>());
      tmk.set_root(1, ubar.cast<void>());
      tmk.set_root(2, w.cast<void>());
      tmk.set_root(3, v.cast<void>());
      tmk.set_root(4, sums.cast<void>());
    }
    tmk.barrier();

    Complex* a = as_complex(tmk.get_root<double>(0));
    Complex* ubar = as_complex(tmk.get_root<double>(1));
    Complex* w = as_complex(tmk.get_root<double>(2));
    Complex* v = as_complex(tmk.get_root<double>(3));
    auto sums = tmk.get_root<double>(4);

    const auto [zb, ze] = block(nz, tmk.id(), tmk.nprocs());
    const auto [xb, xe] = block(nx, tmk.id(), tmk.nprocs());

    // Forward: plane FFTs over owned z-planes.
    for (std::size_t z = zb; z < ze; ++z)
      fft_plane(a + z * nx * ny, nx, ny, false);
    tmk.barrier();
    // Global transpose into z-fastest layout, by destination x-plane.
    for (std::size_t x = xb; x < xe; ++x)
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t z = 0; z < nz; ++z)
          ubar[z + nz * (y + ny * x)] = a[x + nx * (y + ny * z)];
    tmk.barrier();
    for (std::size_t x = xb; x < xe; ++x)
      for (std::size_t y = 0; y < ny; ++y)
        fft_1d(ubar + (x * ny + y) * nz, nz, 1, false);
    tmk.barrier();

    for (std::uint32_t t = 1; t <= p.iters; ++t) {
      for (std::size_t x = xb; x < xe; ++x)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t z = 0; z < nz; ++z)
            w[z + nz * (y + ny * x)] =
                ubar[z + nz * (y + ny * x)] * evolve_factor(p, t, x, y, z);
      for (std::size_t x = xb; x < xe; ++x)
        for (std::size_t y = 0; y < ny; ++y)
          fft_1d(w + (x * ny + y) * nz, nz, 1, true);
      tmk.barrier();
      for (std::size_t z = zb; z < ze; ++z)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t x = 0; x < nx; ++x)
            v[x + nx * (y + ny * z)] = w[z + nz * (y + ny * x)];
      for (std::size_t z = zb; z < ze; ++z)
        fft_plane(v + z * nx * ny, nx, ny, true);
      tmk.barrier();
      if (tmk.id() == 0) {
        double cre = sums[0], cim = sums[1];
        fold_checksum(v, total, cre, cim);
        sums[0] = cre;
        sums[1] = cim;
      }
      tmk.barrier();
    }

    if (tmk.id() == 0) result.checksum = sums[0] + sums[1];
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.total_stats();
  return result;
}

}  // namespace now::apps::fft3d
