#include "apps/fft3d/fft3d.h"

#include <vector>

namespace now::apps::fft3d {

AppResult run_seq(const Params& p, const sim::TimeModel& time) {
  return run_sequential(time, [&]() -> double {
    const std::size_t nx = p.nx, ny = p.ny, nz = p.nz;
    const std::size_t total = nx * ny * nz;
    std::vector<Complex> a(total), ubar(total), w(total), v(total);
    fill_initial(a.data(), p);

    // Forward 3D FFT: plane FFTs (x, y), transpose to z-fastest, z FFTs.
    for (std::size_t z = 0; z < nz; ++z)
      fft_plane(a.data() + z * nx * ny, nx, ny, false);
    for (std::size_t x = 0; x < nx; ++x)
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t z = 0; z < nz; ++z)
          ubar[z + nz * (y + ny * x)] = a[x + nx * (y + ny * z)];
    for (std::size_t x = 0; x < nx; ++x)
      for (std::size_t y = 0; y < ny; ++y)
        fft_1d(ubar.data() + (x * ny + y) * nz, nz, 1, false);

    double cre = 0, cim = 0;
    for (std::uint32_t t = 1; t <= p.iters; ++t) {
      // Evolve in frequency space (z-fastest layout).
      for (std::size_t x = 0; x < nx; ++x)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t z = 0; z < nz; ++z)
            w[z + nz * (y + ny * x)] =
                ubar[z + nz * (y + ny * x)] * evolve_factor(p, t, x, y, z);
      // Inverse 3D FFT: z FFTs, transpose back, inverse plane FFTs.
      for (std::size_t x = 0; x < nx; ++x)
        for (std::size_t y = 0; y < ny; ++y)
          fft_1d(w.data() + (x * ny + y) * nz, nz, 1, true);
      for (std::size_t z = 0; z < nz; ++z)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t x = 0; x < nx; ++x)
            v[x + nx * (y + ny * z)] = w[z + nz * (y + ny * x)];
      for (std::size_t z = 0; z < nz; ++z)
        fft_plane(v.data() + z * nx * ny, nx, ny, true);
      fold_checksum(v.data(), total, cre, cim);
    }
    return cre + cim;
  });
}

}  // namespace now::apps::fft3d
