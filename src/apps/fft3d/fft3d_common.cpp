#include "apps/fft3d/fft3d.h"

#include <cmath>

#include "common/rng.h"

namespace now::apps::fft3d {

void fill_initial(Complex* u, const Params& p) {
  Rng rng(p.seed);
  const std::size_t total = p.nx * p.ny * p.nz;
  for (std::size_t i = 0; i < total; ++i)
    u[i] = Complex(rng.next_double(), rng.next_double());
}

double evolve_factor(const Params& p, std::uint32_t t, std::size_t kx,
                     std::size_t ky, std::size_t kz) {
  // Frequencies folded to the symmetric range, as in NAS FT.
  auto fold = [](std::size_t k, std::size_t n) -> double {
    const auto kk = static_cast<double>(k);
    const auto nn = static_cast<double>(n);
    return kk < nn / 2 ? kk : kk - nn;
  };
  const double fx = fold(kx, p.nx), fy = fold(ky, p.ny), fz = fold(kz, p.nz);
  const double k2 = fx * fx + fy * fy + fz * fz;
  return std::exp(-4.0 * M_PI * M_PI * p.alpha * static_cast<double>(t) * k2);
}

void fold_checksum(const Complex* v, std::size_t total, double& re, double& im) {
  for (std::size_t j = 1; j <= 1024; ++j) {
    const std::size_t q = (5 * j) % total;
    re += v[q].real();
    im += v[q].imag();
  }
}

}  // namespace now::apps::fft3d
