// "Compiled OpenMP" 3D-FFT: every phase — plane FFTs, the global transpose,
// the z FFTs, the evolve — is a `parallel do`, exactly as the paper
// describes the OpenMP version.
#include "apps/fft3d/fft3d.h"
#include "omp/omp.h"

namespace now::apps::fft3d {

namespace {
Complex* as_complex(tmk::gptr<double> g) {
  return reinterpret_cast<Complex*>(g.get());
}
}  // namespace

AppResult run_omp(const Params& p, tmk::DsmConfig cfg) {
  omp::OmpRuntime rt(cfg);
  AppResult result;

  rt.run([&](omp::Team& team) {
    const std::size_t nx = p.nx, ny = p.ny, nz = p.nz;
    const std::size_t total = nx * ny * nz;
    auto ga = team.shared_array<double>(2 * total);
    auto gubar = team.shared_array<double>(2 * total);
    auto gw = team.shared_array<double>(2 * total);
    auto gv = team.shared_array<double>(2 * total);
    fill_initial(as_complex(ga), p);

    const Params params = p;
    // Forward: parallel do over z-planes.
    team.parallel_for(0, static_cast<std::int64_t>(nz), [=](omp::Par&, std::int64_t z) {
      fft_plane(as_complex(ga) + static_cast<std::size_t>(z) * nx * ny, nx, ny, false);
    });
    // Global transpose: parallel do over destination x-planes.
    team.parallel_for(0, static_cast<std::int64_t>(nx), [=](omp::Par&, std::int64_t xi) {
      const auto x = static_cast<std::size_t>(xi);
      Complex* a = as_complex(ga);
      Complex* ubar = as_complex(gubar);
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t z = 0; z < nz; ++z)
          ubar[z + nz * (y + ny * x)] = a[x + nx * (y + ny * z)];
    });
    team.parallel_for(0, static_cast<std::int64_t>(nx), [=](omp::Par&, std::int64_t xi) {
      const auto x = static_cast<std::size_t>(xi);
      for (std::size_t y = 0; y < ny; ++y)
        fft_1d(as_complex(gubar) + (x * ny + y) * nz, nz, 1, false);
    });

    double cre = 0, cim = 0;
    for (std::uint32_t t = 1; t <= p.iters; ++t) {
      team.parallel_for(0, static_cast<std::int64_t>(nx), [=](omp::Par&, std::int64_t xi) {
        const auto x = static_cast<std::size_t>(xi);
        Complex* ubar = as_complex(gubar);
        Complex* w = as_complex(gw);
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t z = 0; z < nz; ++z)
            w[z + nz * (y + ny * x)] =
                ubar[z + nz * (y + ny * x)] * evolve_factor(params, t, x, y, z);
        for (std::size_t y = 0; y < ny; ++y)
          fft_1d(w + (x * ny + y) * nz, nz, 1, true);
      });
      team.parallel_for(0, static_cast<std::int64_t>(nz), [=](omp::Par&, std::int64_t zi) {
        const auto z = static_cast<std::size_t>(zi);
        Complex* w = as_complex(gw);
        Complex* v = as_complex(gv);
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t x = 0; x < nx; ++x)
            v[x + nx * (y + ny * z)] = w[z + nz * (y + ny * x)];
        fft_plane(v + z * nx * ny, nx, ny, true);
      });
      fold_checksum(as_complex(gv), total, cre, cim);  // sequential part
    }
    result.checksum = cre + cim;
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.dsm().total_stats();
  return result;
}

}  // namespace now::apps::fft3d
