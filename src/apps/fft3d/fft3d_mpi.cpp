// MPI 3D-FFT: slab decomposition with an all-to-all block transpose — the
// message-passing structure of NAS FT.  Requires nx and nz divisible by the
// rank count.
#include <vector>

#include "apps/fft3d/fft3d.h"
#include "common/check.h"

namespace now::apps::fft3d {

AppResult run_mpi(const Params& p, mpi::MpiConfig cfg) {
  const std::size_t np = cfg.num_ranks;
  NOW_CHECK(p.nx % np == 0 && p.nz % np == 0)
      << "slab transpose needs nx, nz divisible by ranks";
  mpi::MpiRuntime rt(cfg);
  AppResult result;

  rt.run([&](mpi::Comm& c) {
    const std::size_t nx = p.nx, ny = p.ny, nz = p.nz;
    const std::size_t n = static_cast<std::size_t>(c.size());
    const std::size_t r = static_cast<std::size_t>(c.rank());
    const std::size_t zloc = nz / n, xloc = nx / n;
    const std::size_t z0 = r * zloc, x0 = r * xloc;
    const std::size_t block = xloc * ny * zloc;  // complex per rank pair

    // Local slabs.
    std::vector<Complex> a(nx * ny * zloc);      // z-slab, x-fastest
    std::vector<Complex> ubar(ny * nz * xloc);   // x-slab, z-fastest
    std::vector<Complex> w(ny * nz * xloc);
    std::vector<Complex> v(nx * ny * zloc);
    std::vector<Complex> sendbuf(block * n), recvbuf(block * n);

    // Deterministic init: generate the full field and keep our slab (the
    // generator is cheap; data never crosses the wire).
    {
      std::vector<Complex> full(nx * ny * nz);
      fill_initial(full.data(), p);
      std::copy(full.begin() + static_cast<std::ptrdiff_t>(z0 * nx * ny),
                full.begin() + static_cast<std::ptrdiff_t>((z0 + zloc) * nx * ny),
                a.begin());
    }

    auto transpose_fwd = [&](const std::vector<Complex>& src, std::vector<Complex>& dst) {
      // src: z-slab x-fastest [x + nx*(y + ny*(z-z0))]
      // dst: x-slab z-fastest [z + nz*(y + ny*(x-x0))]
      for (std::size_t s = 0; s < n; ++s) {
        Complex* out = sendbuf.data() + s * block;
        std::size_t idx = 0;
        for (std::size_t x = s * xloc; x < (s + 1) * xloc; ++x)
          for (std::size_t y = 0; y < ny; ++y)
            for (std::size_t z = 0; z < zloc; ++z)
              out[idx++] = src[x + nx * (y + ny * z)];
      }
      c.alltoall(sendbuf.data(), block * sizeof(Complex), recvbuf.data());
      for (std::size_t s = 0; s < n; ++s) {
        const Complex* in = recvbuf.data() + s * block;
        std::size_t idx = 0;
        for (std::size_t x = 0; x < xloc; ++x)
          for (std::size_t y = 0; y < ny; ++y)
            for (std::size_t z = s * zloc; z < (s + 1) * zloc; ++z)
              dst[z + nz * (y + ny * x)] = in[idx++];
      }
    };
    auto transpose_bwd = [&](const std::vector<Complex>& src, std::vector<Complex>& dst) {
      for (std::size_t s = 0; s < n; ++s) {
        Complex* out = sendbuf.data() + s * block;
        std::size_t idx = 0;
        for (std::size_t x = 0; x < xloc; ++x)
          for (std::size_t y = 0; y < ny; ++y)
            for (std::size_t z = s * zloc; z < (s + 1) * zloc; ++z)
              out[idx++] = src[z + nz * (y + ny * x)];
      }
      c.alltoall(sendbuf.data(), block * sizeof(Complex), recvbuf.data());
      for (std::size_t s = 0; s < n; ++s) {
        const Complex* in = recvbuf.data() + s * block;
        std::size_t idx = 0;
        for (std::size_t x = s * xloc; x < (s + 1) * xloc; ++x)
          for (std::size_t y = 0; y < ny; ++y)
            for (std::size_t z = 0; z < zloc; ++z)
              dst[x + nx * (y + ny * z)] = in[idx++];
      }
    };

    // Forward.
    for (std::size_t z = 0; z < zloc; ++z)
      fft_plane(a.data() + z * nx * ny, nx, ny, false);
    transpose_fwd(a, ubar);
    for (std::size_t x = 0; x < xloc; ++x)
      for (std::size_t y = 0; y < ny; ++y)
        fft_1d(ubar.data() + (x * ny + y) * nz, nz, 1, false);

    double cre = 0, cim = 0;
    for (std::uint32_t t = 1; t <= p.iters; ++t) {
      for (std::size_t x = 0; x < xloc; ++x)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t z = 0; z < nz; ++z)
            w[z + nz * (y + ny * x)] =
                ubar[z + nz * (y + ny * x)] * evolve_factor(p, t, x0 + x, y, z);
      for (std::size_t x = 0; x < xloc; ++x)
        for (std::size_t y = 0; y < ny; ++y)
          fft_1d(w.data() + (x * ny + y) * nz, nz, 1, true);
      transpose_bwd(w, v);
      for (std::size_t z = 0; z < zloc; ++z)
        fft_plane(v.data() + z * nx * ny, nx, ny, true);

      // Sampled checksum: each rank sums the samples in its z-slab.
      double lre = 0, lim = 0;
      const std::size_t total = nx * ny * nz;
      for (std::size_t j = 1; j <= 1024; ++j) {
        const std::size_t q = (5 * j) % total;
        const std::size_t z = q / (nx * ny);
        if (z >= z0 && z < z0 + zloc)
          lre += v[q - z0 * nx * ny].real(), lim += v[q - z0 * nx * ny].imag();
      }
      double partial[2] = {lre, lim}, sum[2] = {0, 0};
      c.reduce(partial, sum, 2, mpi::Op::kSum, 0);
      cre += sum[0];
      cim += sum[1];
    }
    if (c.rank() == 0) result.checksum = cre + cim;
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  return result;
}

}  // namespace now::apps::fft3d
