// Radix-2 complex FFT kernels shared by every 3D-FFT version.
#pragma once

#include <complex>
#include <cstddef>

namespace now::apps::fft3d {

using Complex = std::complex<double>;

// In-place radix-2 Cooley-Tukey over n elements at the given stride.
// n must be a power of two.  `inverse` applies the conjugate transform and
// scales by 1/n (so forward followed by inverse is the identity).
void fft_1d(Complex* data, std::size_t n, std::size_t stride, bool inverse);

// 2D FFT of one z-plane of an (nx, ny) row-major-x grid.
void fft_plane(Complex* plane, std::size_t nx, std::size_t ny, bool inverse);

bool is_pow2(std::size_t n);

}  // namespace now::apps::fft3d
