#include "apps/fft3d/fft.h"

#include <cmath>

#include "common/check.h"

namespace now::apps::fft3d {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_1d(Complex* data, std::size_t n, std::size_t stride, bool inverse) {
  NOW_CHECK(is_pow2(n)) << "fft size must be a power of two";
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i * stride], data[j * stride]);
  }
  // Butterfly stages.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex& a = data[(i + k) * stride];
        Complex& b = data[(i + k + len / 2) * stride];
        const Complex t = b * w;
        b = a - t;
        a += t;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i * stride] *= inv;
  }
}

void fft_plane(Complex* plane, std::size_t nx, std::size_t ny, bool inverse) {
  for (std::size_t y = 0; y < ny; ++y) fft_1d(plane + y * nx, nx, 1, inverse);
  for (std::size_t x = 0; x < nx; ++x) fft_1d(plane + x, ny, nx, inverse);
}

}  // namespace now::apps::fft3d
