// 3D-FFT: the NAS-FT-style PDE solver (paper Section 5).
//
// "3D-FFT from the NAS benchmark suite solves a partial differential
//  equation using three dimensional forward and inverse FFT. ... The
//  computation is decomposed so that every iteration includes local
//  computation and a global transpose, with both expressed as data parallel
//  operations.  In OpenMP the data parallelism is naturally expressed using
//  the parallel do directive."
//
// Structure per iteration: evolve the frequency-domain field, inverse-FFT it
// (2D plane FFTs, a global transpose, then the third-dimension FFTs), and
// fold a sampled checksum.  The DSM versions express the transpose as a
// parallel do over destination planes (reads of remote planes become page
// fetches); the MPI version uses an all-to-all block exchange.
#pragma once

#include <cstdint>

#include "apps/fft3d/fft.h"
#include "apps/harness.h"
#include "mpi/mpi.h"
#include "tmk/tmk.h"

namespace now::apps::fft3d {

struct Params {
  std::size_t nx = 32, ny = 32, nz = 32;  // powers of two
  std::uint32_t iters = 3;
  double alpha = 1e-6;
  std::uint64_t seed = 1;
};

// Deterministic initial field (re, im pairs, x-fastest layout).
void fill_initial(Complex* u, const Params& p);

// exp(-4 pi^2 alpha t |kbar|^2) evolution factor for frequency (kx,ky,kz).
double evolve_factor(const Params& p, std::uint32_t t, std::size_t kx,
                     std::size_t ky, std::size_t kz);

// Folds the 1024-sample NAS-style checksum of one iteration into (re, im).
void fold_checksum(const Complex* v, std::size_t total, double& re, double& im);

AppResult run_seq(const Params& p, const sim::TimeModel& time);
AppResult run_tmk(const Params& p, tmk::DsmConfig cfg);
AppResult run_omp(const Params& p, tmk::DsmConfig cfg);
AppResult run_mpi(const Params& p, mpi::MpiConfig cfg);

}  // namespace now::apps::fft3d
