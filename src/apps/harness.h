// Shared application-harness types: every paper application exposes the same
// four entry points (sequential, hand-coded TreadMarks, compiled-OpenMP
// style, MPI) returning a checksum and the measurements the paper reports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "simnet/model.h"
#include "simnet/traffic.h"
#include "tmk/stats.h"

namespace now::apps {

struct AppResult {
  double checksum = 0.0;
  double virtual_time_us = 0.0;
  sim::TrafficSnapshot traffic;       // zero for sequential runs
  tmk::DsmStatsSnapshot dsm;          // zero for sequential and MPI runs
};

// Runs a sequential workload on a dedicated thread, converting its measured
// execution time into virtual microseconds with the same TimeModel the
// parallel runtimes use — the denominator of every speedup in Figure 5.
AppResult run_sequential(const sim::TimeModel& time,
                         const std::function<double()>& workload);

// Relative checksum comparison for floating-point workloads (parallel
// summation reassociates).
bool checksum_close(double a, double b, double rel_tol = 1e-9);

}  // namespace now::apps
