#include "apps/sweep3d/sweep3d.h"

namespace now::apps::sweep3d {

double checksum(const double* phi, std::size_t total) {
  double s = 0;
  for (std::size_t i = 0; i < total; ++i) s += phi[i];
  return s;
}

}  // namespace now::apps::sweep3d
