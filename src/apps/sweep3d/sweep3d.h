// Sweep3D: discrete-ordinates neutron transport wavefront sweeps (paper
// Section 5, from the DOE ASCI Blue benchmark suite).
//
// "The main data structure is a 3D mesh.  The code uses a level of blocking
//  along all three dimensions to achieve a certain level of granularity.  It
//  then performs multiple 2D wavefront sweeping over the 3D blocks.  In
//  OpenMP the data dependence between two neighbor threads along each
//  pipeline is expressed using our proposed sema_signal / sema_wait
//  synchronization directives."
//
// Model: one transport-like recurrence per octant,
//   phi[i,j,k] = (S(i,j,k) + mu*phi_up_i + eta*phi_up_j + xi*phi_up_k) / d,
// swept in all 8 direction octants.  Threads own contiguous j-blocks and
// pipeline over k-blocks (KBA); the j-neighbour dependence is the pipeline.
#pragma once

#include <cstdint>

#include "apps/harness.h"
#include "mpi/mpi.h"
#include "tmk/tmk.h"

namespace now::apps::sweep3d {

struct Params {
  std::size_t nx = 32, ny = 32, nz = 32;
  std::size_t k_block = 4;  // pipeline granularity along k
  std::uint32_t sweeps = 1;  // full 8-octant passes
};

inline constexpr double kMu = 0.30, kEta = 0.25, kXi = 0.20;
inline constexpr double kDenom = 1.0 + kMu + kEta + kXi;

// Fixed source term.
inline double source(std::size_t i, std::size_t j, std::size_t k) {
  return 1.0 + 0.001 * static_cast<double>((i * 31 + j * 17 + k * 7) % 101);
}

inline double sweep_value(double s, double up_i, double up_j, double up_k) {
  return (s + kMu * up_i + kEta * up_j + kXi * up_k) / kDenom;
}

// Octant direction signs.
struct Octant {
  int sx, sy, sz;
};
inline constexpr Octant kOctants[8] = {
    {+1, +1, +1}, {-1, +1, +1}, {+1, -1, +1}, {-1, -1, +1},
    {+1, +1, -1}, {-1, +1, -1}, {+1, -1, -1}, {-1, -1, -1}};

double checksum(const double* phi, std::size_t total);

AppResult run_seq(const Params& p, const sim::TimeModel& time);
AppResult run_tmk(const Params& p, tmk::DsmConfig cfg);
AppResult run_omp(const Params& p, tmk::DsmConfig cfg);
AppResult run_mpi(const Params& p, mpi::MpiConfig cfg);

}  // namespace now::apps::sweep3d
