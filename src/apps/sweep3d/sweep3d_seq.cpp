#include <vector>

#include "apps/sweep3d/sweep3d.h"
#include "apps/sweep3d/sweep3d_kernel.h"

namespace now::apps::sweep3d {

AppResult run_seq(const Params& p, const sim::TimeModel& time) {
  return run_sequential(time, [&]() -> double {
    std::vector<double> phi(p.nx * p.ny * p.nz, 0.0);
    for (std::uint32_t s = 0; s < p.sweeps; ++s)
      for (const Octant& o : kOctants)
        sweep_block(phi.data(), p, o, 0, p.ny, 0, p.nz);
    return checksum(phi.data(), phi.size());
  });
}

}  // namespace now::apps::sweep3d
