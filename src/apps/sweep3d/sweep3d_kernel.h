// The per-block sweep kernel shared by the sequential, TreadMarks and
// OpenMP versions (they all index the full shared grid directly; the MPI
// version carries halo rows and has its own loop).
#pragma once

#include "apps/sweep3d/sweep3d.h"

namespace now::apps::sweep3d {

// Sweeps cells i in [0,nx), j in [jb,je), k in [kb,ke) for one octant,
// reading upwind values from the (already computed) neighbours in the full
// grid `phi` with index i + nx*(j + ny*k).  Upwind cells outside the grid
// contribute the vacuum boundary value 0.
inline void sweep_block(double* phi, const Params& p, Octant o, std::size_t jb,
                        std::size_t je, std::size_t kb, std::size_t ke) {
  const auto nx = static_cast<std::ptrdiff_t>(p.nx);
  const auto ny = static_cast<std::ptrdiff_t>(p.ny);
  const auto nz = static_cast<std::ptrdiff_t>(p.nz);
  auto idx = [&](std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) {
    return static_cast<std::size_t>(i + nx * (j + ny * k));
  };
  auto in = [](std::ptrdiff_t v, std::ptrdiff_t n) { return v >= 0 && v < n; };

  // Each dimension iterates in the octant's flow direction, so the upwind
  // neighbour (one step against the flow) is already final.
  const auto kfirst = o.sz > 0 ? static_cast<std::ptrdiff_t>(kb)
                               : static_cast<std::ptrdiff_t>(ke) - 1;
  const auto jfirst = o.sy > 0 ? static_cast<std::ptrdiff_t>(jb)
                               : static_cast<std::ptrdiff_t>(je) - 1;
  const auto ifirst = o.sx > 0 ? std::ptrdiff_t{0} : nx - 1;
  const auto kn = static_cast<std::ptrdiff_t>(ke - kb);
  const auto jn = static_cast<std::ptrdiff_t>(je - jb);

  for (std::ptrdiff_t kk = 0; kk < kn; ++kk) {
    const std::ptrdiff_t k = kfirst + o.sz * kk;
    for (std::ptrdiff_t jj = 0; jj < jn; ++jj) {
      const std::ptrdiff_t j = jfirst + o.sy * jj;
      for (std::ptrdiff_t ii = 0; ii < nx; ++ii) {
        const std::ptrdiff_t i = ifirst + o.sx * ii;
        const double up_i = in(i - o.sx, nx) ? phi[idx(i - o.sx, j, k)] : 0.0;
        const double up_j = in(j - o.sy, ny) ? phi[idx(i, j - o.sy, k)] : 0.0;
        const double up_k = in(k - o.sz, nz) ? phi[idx(i, j, k - o.sz)] : 0.0;
        phi[idx(i, j, k)] =
            sweep_value(source(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                               static_cast<std::size_t>(k)),
                        up_i, up_j, up_k);
      }
    }
  }
}

}  // namespace now::apps::sweep3d
