// "Compiled OpenMP" Sweep3D: one parallel region per octant; the j-neighbour
// pipeline uses the paper's proposed sema_signal/sema_wait directives.
#include "apps/sweep3d/sweep3d.h"
#include "apps/sweep3d/sweep3d_kernel.h"
#include "omp/omp.h"

namespace now::apps::sweep3d {

namespace {
constexpr std::uint32_t kSemaDown = 0;
constexpr std::uint32_t kSemaUp = 32;
}  // namespace

AppResult run_omp(const Params& p, tmk::DsmConfig cfg) {
  omp::OmpRuntime rt(cfg);
  AppResult result;

  rt.run([&](omp::Team& team) {
    const std::size_t total = p.nx * p.ny * p.nz;
    auto phi = team.shared_array<double>(total);
    for (std::size_t i = 0; i < total; ++i) phi[i] = 0.0;

    const Params params = p;
    for (std::uint32_t s = 0; s < p.sweeps; ++s) {
      for (int oi = 0; oi < 8; ++oi) {
        const Octant o = kOctants[oi];
        // One `parallel` region per octant; the region end is the paper's
        // implicit barrier.
        team.parallel([=](omp::Par& par) {
          const std::uint32_t t = par.thread_num();
          const std::uint32_t nt = par.num_threads();
          auto [jb, je] = par.static_range(0, static_cast<std::int64_t>(params.ny));
          const bool has_up = o.sy > 0 ? t > 0 : t + 1 < nt;
          const bool has_down = o.sy > 0 ? t + 1 < nt : t > 0;
          const std::uint32_t wait_id = (o.sy > 0 ? kSemaDown : kSemaUp) + t;
          const std::uint32_t signal_id =
              o.sy > 0 ? kSemaDown + t + 1 : kSemaUp + t - 1;

          for (std::size_t kb = 0; kb < params.nz; kb += params.k_block) {
            const std::size_t ke = std::min(kb + params.k_block, params.nz);
            const std::size_t kb_dir = o.sz > 0 ? kb : params.nz - ke;
            const std::size_t ke_dir = o.sz > 0 ? ke : params.nz - kb;
            if (has_up) par.sema_wait(wait_id);
            sweep_block(phi.get(), params, o, static_cast<std::size_t>(jb),
                        static_cast<std::size_t>(je), kb_dir, ke_dir);
            if (has_down) par.sema_signal(signal_id);
          }
        });
      }
    }
    result.checksum = checksum(phi.get(), total);
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.dsm().total_stats();
  return result;
}

}  // namespace now::apps::sweep3d
