// MPI Sweep3D: j-slab decomposition with halo rows; the pipeline boundary
// row travels as an explicit message per k-block — the KBA message-passing
// form.
#include <vector>

#include "apps/sweep3d/sweep3d.h"

namespace now::apps::sweep3d {

namespace {
constexpr int kTagBoundary = 300;

std::pair<std::size_t, std::size_t> block(std::size_t n, int t, int nt) {
  const std::size_t base = n / static_cast<std::size_t>(nt);
  const std::size_t rem = n % static_cast<std::size_t>(nt);
  const std::size_t tt = static_cast<std::size_t>(t);
  const std::size_t begin = tt * base + std::min(tt, rem);
  return {begin, begin + base + (tt < rem ? 1 : 0)};
}
}  // namespace

AppResult run_mpi(const Params& p, mpi::MpiConfig cfg) {
  mpi::MpiRuntime rt(cfg);
  AppResult result;

  rt.run([&](mpi::Comm& c) {
    const auto [jb, je] = block(p.ny, c.rank(), c.size());
    const std::size_t jloc = je - jb;
    const std::size_t nx = p.nx, nz = p.nz;
    // Local slab with one halo row on each j side: index
    // i + nx*((j - jb + 1) + (jloc + 2) * k).
    std::vector<double> phi(nx * (jloc + 2) * nz, 0.0);
    auto at = [&](std::size_t i, std::size_t jrel, std::size_t k) -> double& {
      return phi[i + nx * (jrel + (jloc + 2) * k)];
    };

    for (std::uint32_t s = 0; s < p.sweeps; ++s) {
      for (const Octant& o : kOctants) {
        const int up = o.sy > 0 ? c.rank() - 1 : c.rank() + 1;
        const int down = o.sy > 0 ? c.rank() + 1 : c.rank() - 1;
        const bool has_up = up >= 0 && up < c.size();
        const bool has_down = down >= 0 && down < c.size();
        // Halo row index facing upstream / our edge row facing downstream.
        const std::size_t halo_j = o.sy > 0 ? 0 : jloc + 1;
        const std::size_t edge_j = o.sy > 0 ? jloc : 1;

        std::vector<double> row(nx * p.k_block);
        for (std::size_t kb = 0; kb < nz; kb += p.k_block) {
          const std::size_t ke = std::min(kb + p.k_block, nz);
          const std::size_t kb_dir = o.sz > 0 ? kb : nz - ke;
          const std::size_t ke_dir = o.sz > 0 ? ke : nz - kb;
          const std::size_t kn = ke_dir - kb_dir;

          if (has_up) {
            c.recv(row.data(), kn * nx * sizeof(double), up, kTagBoundary);
            for (std::size_t kk = 0; kk < kn; ++kk)
              for (std::size_t i = 0; i < nx; ++i)
                at(i, halo_j, kb_dir + kk) = row[kk * nx + i];
          }

          // Sweep this (j-slab, k-block); indices are local with the halo.
          for (std::size_t kk = 0; kk < kn; ++kk) {
            const std::size_t k = o.sz > 0 ? kb_dir + kk : ke_dir - 1 - kk;
            for (std::size_t jj = 0; jj < jloc; ++jj) {
              const std::size_t jrel = o.sy > 0 ? 1 + jj : jloc - jj;
              const std::size_t jglob = jb + jrel - 1;
              for (std::size_t ii = 0; ii < nx; ++ii) {
                const std::size_t i = o.sx > 0 ? ii : nx - 1 - ii;
                const bool in_i = o.sx > 0 ? i > 0 : i + 1 < nx;
                const bool in_j = o.sy > 0 ? jglob > 0 : jglob + 1 < p.ny;
                const bool in_k = o.sz > 0 ? k > 0 : k + 1 < nz;
                auto shift = [](std::size_t v, int sign) {
                  return static_cast<std::size_t>(static_cast<std::ptrdiff_t>(v) - sign);
                };
                const double up_i = in_i ? at(shift(i, o.sx), jrel, k) : 0.0;
                const double up_j = in_j ? at(i, shift(jrel, o.sy), k) : 0.0;
                const double up_k = in_k ? at(i, jrel, shift(k, o.sz)) : 0.0;
                at(i, jrel, k) =
                    sweep_value(source(i, jglob, k), up_i, up_j, up_k);
              }
            }
          }

          if (has_down) {
            for (std::size_t kk = 0; kk < kn; ++kk)
              for (std::size_t i = 0; i < nx; ++i)
                row[kk * nx + i] = at(i, edge_j, kb_dir + kk);
            c.send(row.data(), kn * nx * sizeof(double), down, kTagBoundary);
          }
        }
        c.barrier();  // octant separation, as in the shared-memory versions
      }
    }

    // Checksum: reduce the halo-free local sums.
    double local = 0;
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t j = 1; j <= jloc; ++j)
        for (std::size_t i = 0; i < nx; ++i) local += at(i, j, k);
    double total = 0;
    c.reduce(&local, &total, 1, mpi::Op::kSum, 0);
    if (c.rank() == 0) result.checksum = total;
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  return result;
}

}  // namespace now::apps::sweep3d
