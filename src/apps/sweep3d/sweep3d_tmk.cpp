// Hand-coded TreadMarks Sweep3D: SPMD threads own j-blocks and pipeline
// over k-blocks with semaphores; the upwind j-row arrives implicitly as DSM
// page diffs when the downstream thread reads it.
#include "apps/sweep3d/sweep3d.h"
#include "apps/sweep3d/sweep3d_kernel.h"

namespace now::apps::sweep3d {

namespace {
// Pipeline semaphores: thread t waits on kSemaDown + t for its j-1
// neighbour (sy > 0 sweeps) and on kSemaUp + t for its j+1 neighbour.
constexpr std::uint32_t kSemaDown = 0;
constexpr std::uint32_t kSemaUp = 32;

std::pair<std::size_t, std::size_t> block(std::size_t n, std::uint32_t t,
                                          std::uint32_t nt) {
  const std::size_t base = n / nt, rem = n % nt;
  const std::size_t begin = static_cast<std::size_t>(t) * base + std::min<std::size_t>(t, rem);
  return {begin, begin + base + (t < rem ? 1 : 0)};
}
}  // namespace

AppResult run_tmk(const Params& p, tmk::DsmConfig cfg) {
  tmk::DsmRuntime rt(cfg);
  AppResult result;

  rt.run_spmd([&](tmk::Tmk& tmk) {
    const std::size_t total = p.nx * p.ny * p.nz;
    if (tmk.id() == 0) {
      auto phi = tmk.alloc_array<double>(total);
      for (std::size_t i = 0; i < total; ++i) phi[i] = 0.0;
      tmk.set_root(0, phi.cast<void>());
    }
    tmk.barrier();

    auto phi = tmk.get_root<double>(0);
    const auto [jb, je] = block(p.ny, tmk.id(), tmk.nprocs());
    const std::uint32_t t = tmk.id();
    const std::uint32_t nt = tmk.nprocs();

    for (std::uint32_t s = 0; s < p.sweeps; ++s) {
      for (const Octant& o : kOctants) {
        const bool has_up = o.sy > 0 ? t > 0 : t + 1 < nt;
        const bool has_down = o.sy > 0 ? t + 1 < nt : t > 0;
        const std::uint32_t wait_id = (o.sy > 0 ? kSemaDown : kSemaUp) + t;
        const std::uint32_t signal_id =
            o.sy > 0 ? kSemaDown + t + 1 : kSemaUp + t - 1;

        for (std::size_t kb = 0; kb < p.nz; kb += p.k_block) {
          const std::size_t ke = std::min(kb + p.k_block, p.nz);
          // k-blocks are processed in the sweep's k direction.
          const std::size_t kb_dir = o.sz > 0 ? kb : p.nz - ke;
          const std::size_t ke_dir = o.sz > 0 ? ke : p.nz - kb;
          if (has_up) tmk.sema_wait(wait_id);
          sweep_block(phi.get(), p, o, jb, je, kb_dir, ke_dir);
          if (has_down) tmk.sema_signal(signal_id);
        }
        tmk.barrier();  // octants are separated by a full synchronization
      }
    }

    if (tmk.id() == 0) result.checksum = checksum(phi.get(), total);
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.total_stats();
  return result;
}

}  // namespace now::apps::sweep3d
