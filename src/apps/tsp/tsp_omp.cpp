// "Compiled OpenMP" TSP: a parallel region whose pool/queue accesses sit in
// `critical` directives — the translation of the paper's OpenMP source.
#include "apps/tsp/tsp.h"
#include "apps/tsp/tsp_state.h"
#include "omp/omp.h"

namespace now::apps::tsp {

AppResult run_omp(const Params& p, tmk::DsmConfig cfg) {
  omp::OmpRuntime rt(cfg);
  AppResult result;
  const auto dist = make_distances(p);

  rt.run([&](omp::Team& team) {
    const std::uint64_t cap = p.pool_capacity;
    auto mem = team.shared_array<std::uint64_t>(TspState::words_needed(cap));
    {
      TspState st{mem, cap};
      st.init_master();
      const std::uint64_t slot = st.free_pop();
      st.write_tour(slot, Tour{});
      st.heap_push(0, slot);
    }

    const Params params = p;
    // The distance matrix is read-only; ship it through shared memory so
    // slaves fetch it once (firstprivate would also be faithful, but the
    // paper's codes keep large read-only data shared).
    auto dist_sh = team.shared_array<std::uint64_t>(dist.size());
    for (std::size_t i = 0; i < dist.size(); ++i) dist_sh[i] = dist[i];
    const std::size_t dist_n = dist.size();

    team.parallel([=](omp::Par& par) {
      std::vector<std::uint64_t> local_dist(dist_n);
      for (std::size_t i = 0; i < dist_n; ++i) local_dist[i] = dist_sh[i];
      TspState st{mem, cap};
      auto locked = [&](const auto& body) { par.critical(body); };
      while (tsp_step(local_dist, params, st, locked)) {
      }
    });

    TspState st{mem, cap};
    result.checksum = static_cast<double>(st.best());
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.dsm().total_stats();
  return result;
}

}  // namespace now::apps::tsp
