// Shared-memory TSP state: the paper's pool + priority queue + free stack +
// current best, laid out in DSM memory as plain u64 words.  All mutation
// happens inside the caller's critical section.
#pragma once

#include "apps/tsp/tsp.h"
#include "common/check.h"
#include "tmk/gptr.h"

namespace now::apps::tsp {

inline constexpr std::size_t kTourWords = 6;  // length, mask, depth, last, path x2

// Layout: [best, nworking, heap_size, free_top, cap,
//          heap (2*cap), free stack (cap), pool (cap*kTourWords)]
struct TspState {
  tmk::gptr<std::uint64_t> m;
  std::uint64_t cap = 0;

  static std::size_t words_needed(std::uint64_t cap) {
    return 5 + 2 * cap + cap + cap * kTourWords;
  }

  std::uint64_t& best() const { return m[0]; }
  std::uint64_t& nworking() const { return m[1]; }
  std::uint64_t& heap_size() const { return m[2]; }
  std::uint64_t& free_top() const { return m[3]; }

  std::uint64_t heap_off(std::uint64_t i) const { return 5 + 2 * i; }
  std::uint64_t free_off(std::uint64_t i) const { return 5 + 2 * cap + i; }
  std::uint64_t pool_off(std::uint64_t slot) const {
    return 5 + 3 * cap + slot * kTourWords;
  }

  void init_master() const {
    m[0] = ~std::uint64_t{0};
    m[1] = 0;
    m[2] = 0;
    m[3] = 0;
    m[4] = cap;
    for (std::uint64_t s = 0; s < cap; ++s) m[free_off(s)] = cap - 1 - s;
    free_top() = cap;
  }

  std::uint64_t free_pop() const {
    NOW_CHECK_GT(free_top(), 0u) << "tour pool exhausted";
    free_top() = free_top() - 1;
    return m[free_off(free_top())];
  }
  void free_push(std::uint64_t slot) const {
    m[free_off(free_top())] = slot;
    free_top() = free_top() + 1;
  }

  void heap_push(std::uint64_t pri, std::uint64_t slot) const {
    std::uint64_t i = heap_size();
    heap_size() = i + 1;
    NOW_CHECK_LE(heap_size(), cap) << "priority queue overflow";
    while (i > 0) {
      const std::uint64_t parent = (i - 1) / 2;
      if (m[heap_off(parent)] <= pri) break;
      m[heap_off(i)] = m[heap_off(parent)];
      m[heap_off(i) + 1] = m[heap_off(parent) + 1];
      i = parent;
    }
    m[heap_off(i)] = pri;
    m[heap_off(i) + 1] = slot;
  }

  // Pops the minimum-priority entry; heap must be non-empty.
  std::uint64_t heap_pop() const {
    NOW_CHECK_GT(heap_size(), 0u);
    const std::uint64_t slot = m[heap_off(0) + 1];
    heap_size() = heap_size() - 1;
    const std::uint64_t last_i = heap_size();
    if (last_i > 0) {
      const std::uint64_t pri = m[heap_off(last_i)];
      const std::uint64_t sl = m[heap_off(last_i) + 1];
      std::uint64_t i = 0;
      for (;;) {
        const std::uint64_t l = 2 * i + 1, r = 2 * i + 2;
        std::uint64_t child = i;
        std::uint64_t child_pri = pri;
        if (l < last_i && m[heap_off(l)] < child_pri) {
          child = l;
          child_pri = m[heap_off(l)];
        }
        if (r < last_i && m[heap_off(r)] < child_pri) child = r;
        if (child == i) break;
        m[heap_off(i)] = m[heap_off(child)];
        m[heap_off(i) + 1] = m[heap_off(child) + 1];
        i = child;
      }
      m[heap_off(i)] = pri;
      m[heap_off(i) + 1] = sl;
    }
    return slot;
  }

  void write_tour(std::uint64_t slot, const Tour& t) const {
    const std::uint64_t o = pool_off(slot);
    m[o] = t.length;
    m[o + 1] = t.visited_mask;
    m[o + 2] = t.depth;
    m[o + 3] = t.last;
    std::uint64_t packed[2] = {0, 0};
    std::memcpy(packed, t.path, sizeof t.path);
    m[o + 4] = packed[0];
    m[o + 5] = packed[1];
  }

  Tour read_tour(std::uint64_t slot) const {
    const std::uint64_t o = pool_off(slot);
    Tour t;
    t.length = m[o];
    t.visited_mask = m[o + 1];
    t.depth = static_cast<std::uint32_t>(m[o + 2]);
    t.last = static_cast<std::uint32_t>(m[o + 3]);
    std::uint64_t packed[2] = {m[o + 4], m[o + 5]};
    std::memcpy(t.path, packed, sizeof t.path);
    return t;
  }
};

// One branch-and-bound step against shared state; `locked` must wrap its
// argument in the version's critical section.  Returns false when the
// computation is globally complete.
template <typename LockedFn>
bool tsp_step(const std::vector<std::uint64_t>& dist, const Params& p,
              const TspState& st, const LockedFn& locked) {
  Tour t;
  bool have_task = false;
  bool done = false;
  // Dequeue (and free the slot) in one critical section.
  locked([&] {
    if (st.heap_size() > 0) {
      const std::uint64_t slot = st.heap_pop();
      t = st.read_tour(slot);
      st.free_push(slot);
      st.nworking() = st.nworking() + 1;
      have_task = true;
    } else if (st.nworking() == 0) {
      done = true;
    }
  });
  if (done) return false;
  if (!have_task) return true;  // queue momentarily empty; retry

  if (p.ncities - t.depth <= p.exhaustive_depth) {
    std::uint64_t bound = ~std::uint64_t{0};
    locked([&] { bound = st.best(); });
    const std::uint64_t found = exhaustive_best(dist, p.ncities, t, bound);
    locked([&] {
      if (found < st.best()) st.best() = found;
      st.nworking() = st.nworking() - 1;
    });
    return true;
  }

  // Expand by one city; the new enqueues share one critical section with the
  // bookkeeping, as the paper notes.
  std::vector<Tour> children;
  for (std::uint32_t c = 1; c < p.ncities; ++c) {
    if (t.visited_mask & (std::uint64_t{1} << c)) continue;
    Tour next = t;
    next.length += dist[t.last * p.ncities + c];
    next.visited_mask |= std::uint64_t{1} << c;
    next.path[next.depth] = static_cast<std::uint8_t>(c);
    next.depth += 1;
    next.last = c;
    children.push_back(next);
  }
  locked([&] {
    for (const Tour& child : children) {
      if (child.length >= st.best()) continue;  // prune under the lock
      const std::uint64_t slot = st.free_pop();
      st.write_tour(slot, child);
      st.heap_push(child.length, slot);
    }
    st.nworking() = st.nworking() - 1;
  });
  return true;
}

}  // namespace now::apps::tsp
