#include "apps/tsp/tsp.h"

#include <queue>

namespace now::apps::tsp {

AppResult run_seq(const Params& p, const sim::TimeModel& time) {
  auto dist = make_distances(p);
  return run_sequential(time, [&]() -> double {
    using Entry = std::pair<std::uint64_t, Tour>;  // (priority, tour)
    auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
    std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> pq(cmp);
    pq.push({0, Tour{}});
    std::uint64_t best = ~std::uint64_t{0};
    while (!pq.empty()) {
      const Tour t = pq.top().second;
      pq.pop();
      if (t.length >= best) continue;
      if (p.ncities - t.depth <= p.exhaustive_depth) {
        best = exhaustive_best(dist, p.ncities, t, best);
        continue;
      }
      for (std::uint32_t c = 1; c < p.ncities; ++c) {
        if (t.visited_mask & (std::uint64_t{1} << c)) continue;
        Tour next = t;
        next.length += dist[t.last * p.ncities + c];
        if (next.length >= best) continue;
        next.visited_mask |= std::uint64_t{1} << c;
        next.path[next.depth] = static_cast<std::uint8_t>(c);
        next.depth += 1;
        next.last = c;
        pq.push({next.length, next});
      }
    }
    return static_cast<double>(best);
  });
}

}  // namespace now::apps::tsp
