// MPI TSP: master/worker branch and bound.  Rank 0 owns the pool and the
// priority queue and hands leaf subproblems to workers; bound improvements
// ride on the request/reply messages.
#include <queue>

#include "apps/tsp/tsp.h"
#include "common/check.h"

namespace now::apps::tsp {

namespace {
constexpr int kTagRequest = 200;  // worker -> master: u64 best-found
constexpr int kTagTask = 201;     // master -> worker: u64 bound + Tour
constexpr int kTagDone = 202;

struct TaskMsg {
  std::uint64_t bound;
  Tour tour;
};
}  // namespace

AppResult run_mpi(const Params& p, mpi::MpiConfig cfg) {
  mpi::MpiRuntime rt(cfg);
  AppResult result;
  const auto dist = make_distances(p);

  rt.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      using Entry = std::pair<std::uint64_t, Tour>;
      auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
      std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> pq(cmp);
      pq.push({0, Tour{}});
      std::uint64_t best = ~std::uint64_t{0};
      int idle = 0;           // workers currently waiting for a task
      int live = c.size() - 1;  // workers not yet released
      std::vector<int> idle_ranks;

      auto next_leaf = [&]() -> std::optional<Tour> {
        while (!pq.empty()) {
          Tour t = pq.top().second;
          pq.pop();
          if (t.length >= best) continue;
          if (p.ncities - t.depth <= p.exhaustive_depth) return t;
          for (std::uint32_t city = 1; city < p.ncities; ++city) {
            if (t.visited_mask & (std::uint64_t{1} << city)) continue;
            Tour next = t;
            next.length += dist[t.last * p.ncities + city];
            if (next.length >= best) continue;
            next.visited_mask |= std::uint64_t{1} << city;
            next.path[next.depth] = static_cast<std::uint8_t>(city);
            next.depth += 1;
            next.last = city;
            pq.push({next.length, next});
          }
        }
        return std::nullopt;
      };

      if (live == 0) {
        // Single-rank degenerate case: solve everything locally.
        for (auto leaf = next_leaf(); leaf; leaf = next_leaf())
          best = exhaustive_best(dist, p.ncities, *leaf, best);
      }
      while (live > 0) {
        std::uint64_t found = 0;
        const int w = c.recv(&found, sizeof found, mpi::kAnySource, kTagRequest);
        if (found < best) best = found;
        if (auto leaf = next_leaf()) {
          std::uint8_t more = 0;
          c.send(&more, sizeof more, w, kTagDone);  // header: a task follows
          TaskMsg msg{best, *leaf};
          c.send(&msg, sizeof msg, w, kTagTask);
        } else {
          idle_ranks.push_back(w);
          ++idle;
          if (idle == live) {
            // Queue drained and every worker idle: global termination.
            std::uint8_t done = 1;
            for (int r : idle_ranks) c.send(&done, sizeof done, r, kTagDone);
            live = 0;
          }
        }
      }
      result.checksum = static_cast<double>(best);
    } else {
      std::uint64_t found = ~std::uint64_t{0};
      for (;;) {
        c.send(&found, sizeof found, 0, kTagRequest);
        // The master always answers with a 1-byte header: 0 = task follows,
        // 1 = released.
        std::uint8_t kind = 0;
        c.recv(&kind, sizeof kind, 0, kTagDone);
        if (kind == 1) break;
        TaskMsg msg{};
        c.recv(&msg, sizeof msg, 0, kTagTask);
        found = exhaustive_best(dist, p.ncities, msg.tour, msg.bound);
      }
    }
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  return result;
}

}  // namespace now::apps::tsp
