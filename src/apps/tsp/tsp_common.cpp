#include "apps/tsp/tsp.h"

#include "common/check.h"
#include "common/rng.h"

namespace now::apps::tsp {

std::vector<std::uint64_t> make_distances(const Params& p) {
  NOW_CHECK_LE(p.ncities, kMaxCities);
  Rng rng(p.seed);
  const std::size_t n = p.ncities;
  std::vector<std::uint64_t> d(n * n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      d[i * n + j] = d[j * n + i] = 1 + rng.next_below(100);
  return d;
}

namespace {
void dfs(const std::vector<std::uint64_t>& dist, std::uint32_t n, std::uint64_t mask,
         std::uint32_t last, std::uint64_t len, std::uint32_t depth,
         std::uint64_t& best) {
  if (len >= best) return;  // bound
  if (depth == n) {
    const std::uint64_t total = len + dist[last * n + 0];
    if (total < best) best = total;
    return;
  }
  for (std::uint32_t c = 1; c < n; ++c) {
    if (mask & (std::uint64_t{1} << c)) continue;
    dfs(dist, n, mask | (std::uint64_t{1} << c), c, len + dist[last * n + c],
        depth + 1, best);
  }
}
}  // namespace

std::uint64_t exhaustive_best(const std::vector<std::uint64_t>& dist,
                              std::uint32_t ncities, const Tour& t,
                              std::uint64_t bound) {
  std::uint64_t best = bound;
  dfs(dist, ncities, t.visited_mask, t.last, t.length, t.depth, best);
  return best;
}

}  // namespace now::apps::tsp
