// Hand-coded TreadMarks TSP: SPMD workers over the shared pool/queue state,
// mutual exclusion via Tmk locks.
#include "apps/tsp/tsp.h"
#include "apps/tsp/tsp_state.h"

namespace now::apps::tsp {

namespace {
constexpr std::uint32_t kLock = 0;
}

AppResult run_tmk(const Params& p, tmk::DsmConfig cfg) {
  tmk::DsmRuntime rt(cfg);
  AppResult result;
  const auto dist = make_distances(p);

  rt.run_spmd([&](tmk::Tmk& tmk) {
    if (tmk.id() == 0) {
      const std::uint64_t cap = p.pool_capacity;
      auto mem = tmk.alloc_array<std::uint64_t>(TspState::words_needed(cap));
      TspState st{mem, cap};
      st.init_master();
      const std::uint64_t slot = st.free_pop();
      st.write_tour(slot, Tour{});
      st.heap_push(0, slot);
      tmk.set_root(0, mem.cast<void>());
      tmk.set_root(1, tmk::gptr<void>(cap));  // capacity via root slot
    }
    tmk.barrier();

    TspState st{tmk.get_root<std::uint64_t>(0),
                tmk.get_root<void>(1).offset()};
    auto locked = [&](const auto& body) {
      tmk.lock_acquire(kLock);
      body();
      tmk.lock_release(kLock);
    };
    while (tsp_step(dist, p, st, locked)) {
    }
    tmk.barrier();
    if (tmk.id() == 0) result.checksum = static_cast<double>(st.best());
  });

  result.virtual_time_us = rt.virtual_time_us();
  result.traffic = rt.traffic();
  result.dsm = rt.total_stats();
  return result;
}

}  // namespace now::apps::tsp
