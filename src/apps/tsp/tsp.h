// TSP: branch-and-bound traveling salesman (paper Section 5).
//
// "The major data structures are a pool of partially evaluated tours, a
//  priority queue containing pointers to tours in the pool, a stack of
//  pointers to unused tour elements in the pool and the current shortest
//  path.  A process repeatedly dequeues the most promising path from the
//  priority queue, extends it by one city and enqueues the new path, or
//  takes the dequeued path and tries all permutations of the remaining
//  nodes. ... the dequeue and the following enqueue operations by the same
//  processor are actually carried out within one critical section.
//  Therefore there is no need to use condition variables for TSP."
//
// The MPI version is master/worker: rank 0 owns the pool and priority queue,
// workers run the exhaustive leaf searches.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/harness.h"
#include "mpi/mpi.h"
#include "tmk/tmk.h"

namespace now::apps::tsp {

inline constexpr std::size_t kMaxCities = 16;

struct Params {
  std::uint32_t ncities = 12;
  std::uint32_t exhaustive_depth = 7;  // remaining cities solved by DFS leaf
  std::uint64_t seed = 1;
  std::size_t pool_capacity = 1 << 15;
};

// Symmetric random distance matrix (row-major ncities^2, diagonal zero).
std::vector<std::uint64_t> make_distances(const Params& p);

// A partially evaluated tour starting at city 0.
struct Tour {
  std::uint64_t length = 0;        // path length so far
  std::uint64_t visited_mask = 1;  // city 0 visited
  std::uint32_t depth = 1;         // cities on the path
  std::uint32_t last = 0;          // current endpoint
  std::uint8_t path[kMaxCities] = {0};
};

// DFS over the remaining cities with bound pruning; returns the best
// complete-tour length reachable from `t` (>= bound if none better).
std::uint64_t exhaustive_best(const std::vector<std::uint64_t>& dist,
                              std::uint32_t ncities, const Tour& t,
                              std::uint64_t bound);

AppResult run_seq(const Params& p, const sim::TimeModel& time);
AppResult run_tmk(const Params& p, tmk::DsmConfig cfg);
AppResult run_omp(const Params& p, tmk::DsmConfig cfg);
AppResult run_mpi(const Params& p, mpi::MpiConfig cfg);

}  // namespace now::apps::tsp
