// Configuration for the TreadMarks-like DSM runtime.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "common/env.h"
#include "simnet/channel.h"
#include "simnet/model.h"
#include "tmk/msgs.h"

namespace now::tmk {

inline constexpr std::size_t kPageSize = 4096;

using PageIndex = std::uint32_t;

namespace detail {
// Environment override for a config default (CI runs the whole test suite
// under alternate protocol configurations, e.g. TMK_PREFETCH_PAGES=16).
// Only the *default* is overridden: a test that assigns the field explicitly
// keeps its value.  The parsers moved to common/env.h so simnet's
// FaultConfig shares them; these aliases keep the historical call sites.
using env::env_flag;
using env::env_size;
}  // namespace detail

struct DsmConfig {
  std::uint32_t num_nodes = 8;

  // Size of the shared address space (per-node region size).  Must be a
  // multiple of kPageSize.
  std::size_t heap_bytes = std::size_t{64} << 20;

  sim::NetworkModel net = sim::NetworkModel::udp_ethernet100();
  sim::TimeModel time;

  // Modeled CPU cost of protocol work, charged to virtual clocks.
  double fault_overhead_us = 8.0;        // kernel trap + handler dispatch
  double diff_create_base_us = 20.0;     // paper Sec. 6: "time to obtain a
  double diff_create_per_kb_us = 12.0;   //  diff varies from ... to ..."
  double diff_apply_per_kb_us = 6.0;
  double twin_copy_us = 10.0;            // 4 KB page copy on 1998 hardware
  double barrier_manager_us = 30.0;      // manager bookkeeping at departure

  // Garbage-collect consistency metadata at barriers (TreadMarks-style): the
  // manager piggybacks the minimal vector time across all arrivals on the
  // departure message, and each node reclaims knowledge-log records and its
  // own diff-store entries below it (diffs one barrier delayed, after every
  // node has validated its pages).  Without it, logs and diff stores grow
  // without bound with barrier count.  Default overridable via
  // TMK_GC_AT_BARRIERS (0 = off), so CI matrix legs can toggle GC without
  // code changes.
  bool gc_at_barriers = detail::env_flag("TMK_GC_AT_BARRIERS", true);

  // Treat the fork that follows a join as a barrier-equivalent reclamation
  // point: at join the master has merged every slave's records, so its full
  // vector time is a sound GC floor for the whole cluster; the next kFork
  // piggybacks it, each slave applies it (truncate + validate) on its compute
  // thread before the region body runs, and own diff-store entries are
  // reclaimed one reclamation point later exactly as at barriers.  This is
  // what lets OpenMP fork/join programs (regions end in kJoin, not a Tmk
  // barrier) reclaim knowledge logs and diff stores at all.  Default
  // overridable via TMK_GC_FORK_JOIN.
  bool gc_fork_join = detail::env_flag("TMK_GC_FORK_JOIN", true);

  // Piggyback applied GC floors on the lock chain: kLockAcquire carries the
  // requester's applied floor (the lock manager raises its sparse manager-log
  // floor before serving first-grant deltas, exactly like the sema/cond
  // paths), and kLockGrant carries the granter's (the requester raises its
  // own knowledge-log floor if it somehow lags — floors only *propagate*
  // here; they are established at barriers and forks, so own-diff
  // reclamation bounds never move on the lock chain).  Default overridable
  // via TMK_GC_LOCK_FLOORS.
  bool gc_lock_floors = detail::env_flag("TMK_GC_LOCK_FLOORS", true);

  // Migratory-data push on the lock-grant chain.  Each node tracks, per
  // lock, the *protected page set* — pages its compute thread faulted or
  // wrote while holding the lock — and when it forwards a kLockGrant it
  // piggybacks the diffs of its closed interval for those pages (only the
  // records the requester is missing anyway, so the diffs ride the message
  // the protocol already sends).  The requester applies them during its
  // acquire, before the critical section runs: the next holder's fault and
  // kDiffRequest/kDiffReply round trip — the classic migratory-sharing
  // cost (TSP's branch-and-bound bound, Water's force merge) — disappear.
  // `lock_push_bytes` budgets the pushed diff payload per grant (pages past
  // the budget fall back to the pull path); when a page's diff would exceed
  // the page itself, the whole page image is pushed instead (guarded: only
  // when the granter's knowledge dominates the requester's, so the image
  // can never clobber a concurrent writer's already-applied words).
  // 0 disables the push entirely.  Pushed chunks ride the requester-side
  // diff cache keyed (writer, seq) — idempotent against a concurrent pull —
  // so the push is inert while the cache is off.  Default overridable via
  // TMK_LOCK_PUSH_BYTES.
  std::size_t lock_push_bytes = detail::env_size("TMK_LOCK_PUSH_BYTES", 0);

  // Consecutive critical sections of *this* holder that leave a protected
  // page untouched before it decays out of the lock's set.  Kept above
  // lock_push_reprobe so a read-only consumer (whose touches are only
  // visible on armed probe faults, every reprobe-th push) does not decay
  // between probes.  Default overridable via TMK_LOCK_PUSH_PROBE.
  std::uint32_t lock_push_probe = static_cast<std::uint32_t>(
      detail::env_size("TMK_LOCK_PUSH_PROBE", 8));

  // Every Nth push of a page along the grant chain is applied *armed*
  // (contents current, page unmapped): the next holder's first access
  // faults once, locally, proving it still touches the page.  A page still
  // armed when that holder releases the lock was dead weight — the holder
  // denies the pusher (kLockPushDeny) and the page demotes from the set
  // with exponential re-admission backoff.  Must be >= 1.  Default
  // overridable via TMK_LOCK_PUSH_REPROBE.
  std::uint32_t lock_push_reprobe = static_cast<std::uint32_t>(
      detail::env_size("TMK_LOCK_PUSH_REPROBE", 4));

  // Adaptive hybrid invalidate/update protocol.  Writers track a per-page
  // *copyset* (every fault-path kDiffRequest served records the requester as
  // a reader of the page); a page whose copyset has been identical and
  // nonempty for `update_promote_epochs` consecutive barrier epochs is
  // promoted to update mode: at the writer's next barrier arrival it pushes
  // the epoch's diffs for the page to those readers in one batched
  // kUpdatePush per reader, and the reader applies them during its own
  // barrier departure — the page comes out of the barrier valid, paying
  // neither the trap nor the kDiffRequest/kDiffReply round trip.
  //
  // Adaptation is bidirectional.  Reads on a valid page are invisible to the
  // protocol, so liveness is probed: every `update_reprobe_epochs`-th push
  // is applied *armed* — page contents current but left unmapped, so the
  // next access faults once, locally (no messages), and sets the page's
  // touched bit (the pushes in between, including the first, validate
  // outright: promotion already rests on faults observed in consecutive
  // epochs).  An armed page
  // still untouched at the next barrier means the reader no longer uses the
  // data: the reader sends the writers a kUpdateDeny and the page demotes
  // back to invalidate mode (irregular sharing — TSP, QSORT — stays on the
  // pull path).  Pushes ride the requester-side diff cache keyed by
  // (writer, interval seq), so a racing pull-path fetch stays idempotent;
  // update mode is therefore inert while the diff cache is disabled, and
  // requires num_nodes <= 64 (copysets are bitmasks).  Default overridable
  // via TMK_UPDATE_MODE.
  bool update_mode = detail::env_flag("TMK_UPDATE_MODE", false);

  // Consecutive epochs a page's copyset must be stable before it is promoted
  // to update mode.  Default overridable via TMK_UPDATE_PROMOTE_EPOCHS.
  std::uint32_t update_promote_epochs = static_cast<std::uint32_t>(
      detail::env_size("TMK_UPDATE_PROMOTE_EPOCHS", 2));

  // Every Nth push to a page is applied armed (liveness probe, see
  // update_mode): larger values skip more faults between probes but let a
  // stale promotion push uselessly for longer.  Must be >= 1.  Default
  // overridable via TMK_UPDATE_REPROBE_EPOCHS.
  std::uint32_t update_reprobe_epochs = static_cast<std::uint32_t>(
      detail::env_size("TMK_UPDATE_REPROBE_EPOCHS", 4));

  // Multi-page prefetch on fault: when a fault sends a kDiffRequest, up to
  // this many neighboring invalid pages (the window [page+1, page+N]) with
  // write notices from the writers already being contacted have their wanted
  // interval seqs folded into the same request — one round trip fills the
  // faulting page and populates the neighbors' requester-side diff caches,
  // so a strided traversal (Sweep3D planes, FFT transposes) pays one message
  // per window instead of one per page.  Prefetched entries go through the
  // budgeted FIFO PageDiffCache::insert: droppable, and transparently
  // refetched by the real fault if evicted.  0 disables prefetch; it is also
  // inert while the diff cache is disabled (prefetched chunks would have
  // nowhere to live).  Default overridable via TMK_PREFETCH_PAGES.
  std::size_t prefetch_pages = detail::env_size("TMK_PREFETCH_PAGES", 4);

  // Per-page byte budget for the requester-side diff cache (already-fetched
  // diff chunks kept so a refault never re-requests them); 0 disables it.
  // Barrier-time GC is its load-bearing consumer: the GC pass prefetches a
  // page's still-unapplied old diffs into the cache (pinned, never evicted)
  // so a post-GC fault is served locally after the writer reclaimed them.
  // Once a page's pinned bytes exceed this budget — a page written every
  // epoch but never read here — the GC pass applies the backlog and unpins
  // it, so the cache stays bounded per page.  With the cache disabled, GC
  // applies old diffs eagerly at every barrier instead (same bytes, but the
  // page loses its lazy fault), and multi-page prefetch is inert.  Default
  // overridable via TMK_DIFF_CACHE_BYTES.
  std::size_t diff_cache_bytes_per_page =
      detail::env_size("TMK_DIFF_CACHE_BYTES", 16 * 1024);

  // On-demand GC under a memory ceiling (TreadMarks' threshold-triggered
  // exchange).  0 (the default) disables it: a long-running program reclaims
  // only at its barriers/forks, and a barrier-free lock loop grows its
  // knowledge log and diff store until the next global sync point.  With a
  // ceiling set, any node whose consistency-metadata footprint (log records
  // + diff-store bytes + diff-cache bytes, the byte total behind
  // Node::meta_footprint()) crosses it asks the barrier root to run a GC
  // exchange over the combining-tree fabric: arrivals fold the cluster-wide
  // minimal vector time (and minimal *validated* floor) up the tree, the
  // departure wave fans the fresh floor back down, and every node truncates
  // its log, validates its pages and raises its sent-caches exactly as at a
  // barrier — without waiting for one.  Own diff-store entries are reclaimed
  // one exchange later (against the folded min of floors every node has
  // finished validating), preserving the barrier-GC delay invariant.  The
  // exchange costs O(arity) messages per node and degenerates to a
  // centralized all-node exchange at arity 0.  Default overridable via
  // TMK_META_CEILING_BYTES.
  std::size_t meta_ceiling_bytes =
      detail::env_size("TMK_META_CEILING_BYTES", 0);

  // Combining-tree barrier fabric.  0 (the default) keeps the centralized
  // barrier: every node arrives directly at the root, which is exactly a
  // depth-1 tree — any arity >= num_nodes - 1 produces the same shape, so
  // the centralized path is not a separate code path but the flat corner of
  // the tree.  An arity in [1, num_nodes - 2] builds a static heap-indexed
  // tree: arrivals fold min vector times, GC floors and interval deltas
  // pairwise up it, departures fan the combined floor and records back
  // down, and the O(N) in/out storm at node 0 becomes O(arity) per node
  // with an O(log_arity N)-hop critical path.  Default overridable via
  // TMK_BARRIER_ARITY.
  std::uint32_t barrier_tree_arity = static_cast<std::uint32_t>(
      detail::env_size("TMK_BARRIER_ARITY", 0));

  // Shard lock/sema/cond manager placement by a mixing hash of the id
  // instead of `id % num_nodes`.  Programs overwhelmingly number their
  // synchronization objects densely from 0, so the modulo already spreads
  // *counts* evenly — but it pins every hot low-numbered object (lock 0 is
  // the work-queue lock in TSP and QSORT) onto the same low-numbered nodes
  // that also root the barrier tree and serve allocations.  The hash
  // decorrelates manager placement from id assignment so no node owns all
  // migratory chains.  Off by default (the modulo is the paper's static
  // placement); CI's treesync leg runs the whole suite with it on.  Default
  // overridable via TMK_SHARD_MANAGERS.
  bool shard_managers = detail::env_flag("TMK_SHARD_MANAGERS", false);

  // Lossy-wire chaos injection: seeded per-link drop / duplicate / reorder
  // / delay-jitter probabilities for every non-local transmission, all
  // default off (the wire stays perfect and the channel layer is bypassed
  // entirely — zero cost).  Any nonzero fault forces the reliability
  // channel on: sequence numbers on every message, receiver-side dedup and
  // reorder holds restoring exactly-once per-sender FIFO before any
  // handler runs, sender-side retransmission with backoff, acks
  // piggybacked on reverse traffic (standalone kAck only on an idle
  // reverse link).  Deterministic: faults are drawn from a counter-indexed
  // hash of the seed per link, so a failing schedule replays exactly.
  // Defaults overridable via TMK_NET_DROP_PPM / TMK_NET_DUP_PPM /
  // TMK_NET_REORDER_PPM / TMK_NET_JITTER_NS / TMK_NET_FAULT_SEED.
  sim::FaultConfig net_fault = sim::FaultConfig::from_env();

  // Run the reliability channel even on a clean wire (sequencing, acks,
  // retransmit bookkeeping, no faults) — measures the protocol's zero-loss
  // overhead.  Default overridable via TMK_NET_RELIABLE.
  bool net_reliable = detail::env_flag("TMK_NET_RELIABLE", false);

  // Consecutive retransmissions of one packet before the channel gives a
  // verdict: without crash injection that verdict is a loud abort (the
  // protocol, not the wire, is broken — with every fault probability < 1,
  // that many losses of the same packet is astronomically unlikely); with
  // crash injection armed it is the node-down report that triggers
  // recovery.  Default overridable via TMK_NET_MAX_RETRIES.
  std::uint32_t net_max_retries = static_cast<std::uint32_t>(
      detail::env_size("TMK_NET_MAX_RETRIES", 24));

  // Node-crash chaos injection.  kNoCrashNode (the default) disables it.
  // With a victim set, that node counts its synchronization points (barrier
  // arrivals, lock acquires/releases, sema waits/signals, on-demand GC
  // exchange steps — in program order on its compute thread) and at count
  // `net_crash_at` it dies: its mailbox closes, its links go dark, its
  // threads halt.  Detection is the channel's job (retransmit exhaustion +
  // keepalive probes -> node-down verdict); recovery is the runtime's
  // (clean failure report, or checkpoint rollback when ckpt_every > 0).
  // The crash fires once per run, including across recoveries — a restarted
  // run re-executes the same sync points but must not re-crash.  Defaults
  // overridable via TMK_NET_CRASH_NODE / TMK_NET_CRASH_AT.
  static constexpr std::uint32_t kNoCrashNode = 0xffffffffu;
  std::uint32_t net_crash_node = static_cast<std::uint32_t>(
      detail::env_size("TMK_NET_CRASH_NODE", kNoCrashNode));
  std::uint32_t net_crash_at = static_cast<std::uint32_t>(
      detail::env_size("TMK_NET_CRASH_AT", 0));

  // Barrier-aligned coordinated checkpointing: every N-th barrier epoch
  // (counted across recoveries — epoch numbering survives a restart), the
  // departure is followed by a checkpoint pass in which each node snapshots
  // its assigned slice of the shared heap (incrementally, against the last
  // durable image), the sema manager counts, and the allocator state, then
  // a commit round at the barrier root promotes the staged epoch to
  // durable.  0 (the default) disables checkpointing: a detected crash is
  // then a clean reported failure instead of a rollback.  Default
  // overridable via TMK_CKPT_EVERY.
  std::uint32_t ckpt_every = static_cast<std::uint32_t>(
      detail::env_size("TMK_CKPT_EVERY", 0));

  // When true, each service-thread request handled also injects a random
  // short host-level delay, shaking out message-ordering assumptions in
  // stress tests.  Never enabled in benchmarks.
  bool stress_service_jitter = false;
  std::uint64_t stress_seed = 1;

  std::size_t num_pages() const { return heap_bytes / kPageSize; }

  // The prefetch window actually in effect: prefetch rides on the diff
  // cache, so it is off whenever the cache is.
  std::size_t prefetch_window() const {
    return diff_cache_bytes_per_page > 0 ? prefetch_pages : 0;
  }

  // Whether the adaptive update protocol is actually in effect: pushes park
  // in the requester-side diff cache (idempotency vs the pull path), so the
  // protocol is inert while the cache is off, and copyset bitmasks bound the
  // node count.
  bool update_enabled() const {
    return update_mode && diff_cache_bytes_per_page > 0 && num_nodes <= 64;
  }

  // Whether the migratory lock-grant push is actually in effect: pushed
  // chunks park in the requester-side diff cache (idempotency vs the pull
  // path), so the push is inert while the cache is off.
  bool lock_push_enabled() const {
    return lock_push_bytes > 0 && diff_cache_bytes_per_page > 0;
  }

  // Whether the threshold-triggered on-demand GC exchange is in effect.
  bool on_demand_gc_enabled() const { return meta_ceiling_bytes > 0; }

  // Whether any wire fault is being injected (the reliability channel may
  // additionally be on without faults via net_reliable).
  bool chaos_enabled() const { return net_fault.any(); }

  // Whether node-crash injection is armed (forces the reliability channel
  // and its keepalive probes on — detection needs retransmit exhaustion).
  bool crash_enabled() const {
    return net_crash_node != kNoCrashNode && net_crash_node < num_nodes;
  }

  // Whether barrier-aligned checkpointing is in effect.
  bool ckpt_enabled() const { return ckpt_every > 0; }

  // The simnet channel configuration this DSM config implies: faults force
  // the reliability protocol on, acks travel as kAck, and Network::send
  // validates types against the tmk registry.  Crash injection additionally
  // arms keepalive probes (detection of a silently dead peer that owes
  // nobody traffic) — pure checkpointing does not: a ckpt-only run keeps
  // the perfect bypassed wire and its exact message counts.
  sim::ChannelConfig channel() const {
    sim::ChannelConfig c;
    c.reliable = net_reliable || net_fault.any() || crash_enabled();
    c.fault = net_fault;
    c.ack_type = static_cast<std::uint16_t>(kAck);
    c.num_msg_types = static_cast<std::uint16_t>(kNumMsgTypes);
    c.max_retries = net_max_retries;
    if (crash_enabled()) {
      c.probe_idle_host_us = 10000;
      c.probe_type = static_cast<std::uint16_t>(kPing);
    }
    return c;
  }

  // Whether any reclamation point can ever establish a GC floor — gates the
  // merge-time seeding of the validation-scan index (a floor that never
  // moves would let the index grow without a consumer).
  bool gc_floors_enabled() const {
    return gc_at_barriers || gc_fork_join || on_demand_gc_enabled();
  }
};

}  // namespace now::tmk
