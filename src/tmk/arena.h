// The shared-memory arena: one mmap carved into per-node regions, plus the
// global registry that lets the process-wide SIGSEGV handler map a faulting
// address back to (runtime, node, page).
//
// Each simulated workstation owns a disjoint region; mprotect on that region
// plays the role of the per-machine page table in real TreadMarks.  Page
// contents start zero-filled on every node, which is exactly the TreadMarks
// initial condition (shared heap starts zeroed everywhere, and consistency
// tracks modifications only).
#pragma once

#include <cstddef>
#include <cstdint>

#include "tmk/config.h"

namespace now::tmk {

class DsmRuntime;

class Arena {
 public:
  // Maps num_nodes * heap_bytes of PROT_NONE anonymous memory.
  Arena(std::uint32_t num_nodes, std::size_t heap_bytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  std::uint8_t* region_base(std::uint32_t node) const {
    return base_ + static_cast<std::size_t>(node) * heap_bytes_;
  }
  std::size_t heap_bytes() const { return heap_bytes_; }
  std::uint32_t num_nodes() const { return num_nodes_; }

  bool contains(const void* addr) const {
    const auto* p = static_cast<const std::uint8_t*>(addr);
    return p >= base_ && p < base_ + total_bytes_;
  }
  std::uint32_t node_of(const void* addr) const;
  PageIndex page_of(const void* addr) const;

  // mprotect helpers for one page of one node's region.
  void protect_none(std::uint32_t node, PageIndex page) const;
  void protect_read(std::uint32_t node, PageIndex page) const;
  void protect_rw(std::uint32_t node, PageIndex page) const;

  // Crash recovery: returns one node's whole region to its initial state —
  // PROT_NONE, contents zero on next touch — without committing memory
  // (MADV_DONTNEED drops the resident pages; anonymous mappings refill with
  // zeros lazily).  Only safe while no thread can fault into the region.
  void reset_region(std::uint32_t node) const;

  std::uint8_t* page_ptr(std::uint32_t node, PageIndex page) const {
    return region_base(node) + static_cast<std::size_t>(page) * kPageSize;
  }

 private:
  std::uint32_t num_nodes_;
  std::size_t heap_bytes_;
  std::size_t total_bytes_;
  std::uint8_t* base_;
};

// Registry consulted by the SIGSEGV handler.  Installation is process-wide
// and happens once; multiple runtimes (sequential tests) register and
// unregister their arenas.
namespace fault {

// Installs the SIGSEGV handler (idempotent) and registers the runtime.
void register_runtime(DsmRuntime* rt);
void unregister_runtime(DsmRuntime* rt);

// Measured host cost of one SIGSEGV delivery + trivial handling on this
// kernel (sandboxed kernels make this hundreds of microseconds).  The fault
// path subtracts it from the compute meter so kernel artifacts are not
// billed as application time.
std::uint64_t fault_delivery_ns();

}  // namespace fault

}  // namespace now::tmk
