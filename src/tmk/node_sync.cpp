// Synchronization: barriers (centralized manager), locks (distributed queue
// with manager forwarding and last-holder caching), semaphores (static
// manager, two messages per operation), condition variables (queued at the
// associated lock's manager), flush (the 2(n-1)-message primitive the paper
// proposes to remove), and the Tmk_fork/Tmk_join pair OpenMP-style execution
// rides on.
#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>

#include "common/bytes.h"
#include "common/log.h"
#include "tmk/arena.h"
#include "tmk/node.h"
#include "tmk/runtime.h"

namespace now::tmk {

namespace {
std::uint64_t cond_key(std::uint32_t lock_id, std::uint32_t cond_id) {
  return (static_cast<std::uint64_t>(lock_id) << 32) | cond_id;
}
}  // namespace

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void Node::barrier() {
  sync_cpu();
  maybe_crash();  // "at barrier arrival" crash site
  gc_poll();
  // 0-based index of the epoch this barrier ends; kDiffRequests sent after
  // the barrier returns carry epoch_done + 1 and are folded one barrier
  // later (see update_copyset_fold).
  const std::uint64_t epoch_done =
      stats_.barriers.fetch_add(1, std::memory_order_relaxed);
  const bool update_on = rt_.config().update_enabled();

  // Judge last epoch's pushes before anything else: armed pages still
  // untouched demote at their writers (the denies race the writers' push
  // passes at worst into one wasted push).
  if (update_on) update_scan_demote();
  close_interval();
  // Push this epoch's diffs for promoted pages *before* the arrival is
  // sent: mailbox FIFO then guarantees every push is parked at its reader
  // before the manager's departure releases that reader.
  if (update_on) update_push_promoted(epoch_done);

  // Arrive at the tree owner: this node's own service thread when it is a
  // combining point, its parent when it is a leaf.  The flat (centralized)
  // tree makes that node 0 for everyone — today's manager.
  const std::uint32_t owner = rt_.topology().barrier_owner(id_);
  auto delta = take_delta_for(owner, Cache::kMgrLog, nullptr);
  ByteWriter w;
  VectorTime vt;
  VectorTime floor_applied;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    vt = log_.vt();
    floor_applied = gc_floor_applied_;
  }
  KnowledgeLog::serialize_vt(w, vt);
  // The sender's applied GC floor, like every delta bound for a sparse
  // manager log (see sema_signal): a fork-point floor raises the sent-cache
  // past records the barrier manager never saw, so it must raise its own
  // floor before merging or the delta would look non-contiguous.
  KnowledgeLog::serialize_vt(w, floor_applied);
  KnowledgeLog::serialize_records(w, delta);

  stats_.barrier_msgs_sent.fetch_add(1, std::memory_order_relaxed);
  sim::Message reply = rpc_call(owner, kBarrierArrive, w.take());
  stats_.barrier_msgs_recv.fetch_add(1, std::memory_order_relaxed);
  ByteReader r(reply.payload);
  const VectorTime floor = KnowledgeLog::deserialize_vt(r);
  merge_and_invalidate(KnowledgeLog::deserialize_records(r));
  // With the departure's write notices merged, pages whose pushed chunks
  // fully cover their wanted intervals come out of the barrier valid.
  if (update_on) update_validate_pushed(epoch_done);
  if (rt_.config().gc_at_barriers) gc_at_barrier(floor);
  if (update_on) update_copyset_fold(epoch_done);
  ckpt_at_barrier(epoch_done);
}

void Node::on_barrier_arrive(sim::Message&& m) {
  stats_.barrier_msgs_recv.fetch_add(1, std::memory_order_relaxed);
  ByteReader r(m.payload);
  BarrierMgrState::Arrival a;
  a.node = m.src;
  a.vt = KnowledgeLog::deserialize_vt(r);
  a.rpc_seq = m.seq;
  a.arrive_ts = m.arrive_ts_ns;
  a.via_tree = false;
  mgr_gc_to(KnowledgeLog::deserialize_vt(r));
  mgr_.log.merge(KnowledgeLog::deserialize_records(r));
  mgr_.barrier.arrivals.push_back(std::move(a));
  tree_barrier_advance();
}

void Node::on_tree_arrive(sim::Message&& m) {
  // A child combining point's folded subtree arrival.  Same shape as a
  // direct arrival — (vt, floor, records) — except the vt is the min fold
  // over the subtree and the floor is the child's manager-log floor (the
  // max of everything its subtree announced), so raising ours to it keeps
  // the delta's contiguity exactly as a single sender's floor would.
  stats_.barrier_msgs_recv.fetch_add(1, std::memory_order_relaxed);
  ByteReader r(m.payload);
  BarrierMgrState::Arrival a;
  a.node = m.src;
  a.vt = KnowledgeLog::deserialize_vt(r);
  a.rpc_seq = 0;
  a.arrive_ts = m.arrive_ts_ns;
  a.via_tree = true;
  mgr_gc_to(KnowledgeLog::deserialize_vt(r));
  mgr_.log.merge(KnowledgeLog::deserialize_records(r));
  mgr_.barrier.arrivals.push_back(std::move(a));
  tree_barrier_advance();
}

void Node::tree_barrier_advance() {
  const SyncTopology& topo = rt_.topology();
  if (mgr_.barrier.arrivals.size() < topo.barrier_fanin(id_)) return;

  std::uint64_t fold_ts = 0;
  for (const auto& arr : mgr_.barrier.arrivals)
    fold_ts = std::max(fold_ts, arr.arrive_ts);
  fold_ts += static_cast<std::uint64_t>(rt_.config().barrier_manager_us * 1000.0);

  // The fold: the minimal vector time across this subtree.  At the root
  // that *is* the GC floor — every node's knowledge dominated it when it
  // arrived, so records at or below it can be reclaimed everywhere.
  VectorTime fold = mgr_.barrier.arrivals.front().vt;
  for (const auto& arr : mgr_.barrier.arrivals) fold = vt_min(std::move(fold), arr.vt);

  if (id_ != topo.barrier_root()) {
    // Interior: forward one combined arrival to the parent and keep the
    // subtree parked until its departure wave comes back down.  The
    // announced floor is this manager log's own floor (already the max of
    // every floor the subtree announced, via mgr_gc_to above), and the
    // delta is cut against what the parent already holds of this log.
    VectorTime mgr_floor(num_nodes_, 0);
    for (std::uint32_t i = 0; i < num_nodes_; ++i)
      mgr_floor[i] = mgr_.log.gc_floor(i);
    ByteWriter w;
    KnowledgeLog::serialize_vt(w, fold);
    KnowledgeLog::serialize_vt(w, mgr_floor);
    KnowledgeLog::serialize_records(
        w, mgr_.log.delta_since(vt_max(std::move(mgr_floor), tree_sent_up_vt_)));
    tree_sent_up_vt_ = mgr_.log.vt();
    sim::Message up;
    up.type = kTreeArrive;
    up.src = id_;
    up.dst = topo.barrier_parent(id_);
    up.send_ts_ns = fold_ts;
    up.payload = w.take();
    stats_.barrier_msgs_sent.fetch_add(1, std::memory_order_relaxed);
    rt_.net().send(std::move(up));
    return;
  }

  // Root: the fold over every arrival is the global floor.
  if (rt_.config().gc_at_barriers) {
    const std::size_t dropped = mgr_.log.gc_to(fold);
    if (dropped)
      stats_.gc_records_reclaimed.fetch_add(dropped, std::memory_order_relaxed);
  }
  tree_barrier_fan_down(fold, fold_ts);
}

void Node::tree_barrier_fan_down(const VectorTime& floor, std::uint64_t depart_ts) {
  for (const auto& arr : mgr_.barrier.arrivals) {
    // Cut from the arrival's (folded) vector time: a superset of what each
    // subtree member is missing, deduplicated by merge() downstream.
    ByteWriter w;
    KnowledgeLog::serialize_vt(w, floor);
    KnowledgeLog::serialize_records(w, mgr_delta_since(arr.vt));
    sim::Message depart;
    depart.type = arr.via_tree ? kTreeDepart : kBarrierDepart;
    depart.src = id_;
    depart.dst = arr.node;
    depart.seq = arr.rpc_seq;
    depart.send_ts_ns = depart_ts;
    depart.payload = w.take();
    stats_.barrier_msgs_sent.fetch_add(1, std::memory_order_relaxed);
    rt_.net().send(std::move(depart));
  }
  mgr_.barrier.arrivals.clear();
}

void Node::on_tree_depart(sim::Message&& m) {
  // The departure wave reaching this combining point: learn the global
  // floor and every record the subtree fold was missing, then fan the same
  // (floor, per-arrival delta) shape down to the parked arrivals.  After
  // the merge this log holds the global record set, and the parent that
  // sent it holds at least as much — so the sent-up cache jumps to the
  // full log vt, not just past the records actually shipped up.
  stats_.barrier_msgs_recv.fetch_add(1, std::memory_order_relaxed);
  ByteReader r(m.payload);
  const VectorTime floor = KnowledgeLog::deserialize_vt(r);
  if (rt_.config().gc_at_barriers) mgr_gc_to(floor);
  mgr_.log.merge(KnowledgeLog::deserialize_records(r));
  tree_sent_up_vt_ = mgr_.log.vt();
  const std::uint64_t depart_ts =
      m.arrive_ts_ns +
      static_cast<std::uint64_t>(rt_.config().barrier_manager_us * 1000.0);
  tree_barrier_fan_down(floor, depart_ts);
}

// ---------------------------------------------------------------------------
// Barrier-time garbage collection (TreadMarks-style, at every barrier)
// ---------------------------------------------------------------------------

void Node::mgr_gc_to(const VectorTime& floor) {
  const std::size_t dropped = mgr_.log.gc_to(floor);
  if (dropped)
    stats_.gc_records_reclaimed.fetch_add(dropped, std::memory_order_relaxed);
}

std::vector<IntervalRecordPtr> Node::mgr_delta_since(const VectorTime& since) {
  // A waiter's parked vector time can go stale against the manager log's
  // floor: a cond waiter registers *before* the release that closes its
  // interval, and an on-demand exchange running while it sleeps can raise
  // the floor past its registration.  Cutting from max(floor, since) is
  // exact, not lossy: every record in (since, floor] is either the waiter's
  // own or globally known (that is what the floor certifies), so the waiter
  // already holds it.
  VectorTime floor(num_nodes_, 0);
  for (std::uint32_t i = 0; i < num_nodes_; ++i) floor[i] = mgr_.log.gc_floor(i);
  return mgr_.log.delta_since(vt_max(std::move(floor), since));
}

void Node::gc_at_barrier(const VectorTime& floor) {
  // Own diff-store entries are reclaimed one reclamation point late: this
  // pass drops entries at or below the *previous* floor, while the current
  // floor's diffs stay servable until every node has validated its pages
  // against it.  (Causality makes the delay sufficient: a peer's validation
  // fetch is replied to before the peer can reach the next reclamation
  // point — the next barrier, or the next fork, which the master only sends
  // after every slave's join — and this node only reclaims after that next
  // point.)  Barriers and fork points interleave freely: both are global
  // sync points, so the drain argument holds across either sequence, and
  // the floors they establish are monotone (a fork floor is the master's
  // post-join vector time, which dominates any earlier barrier floor; a
  // later barrier's floor is a min over vector times that all dominate the
  // fork floor).
  const std::uint32_t prev_drop = gc_drop_seq_;
  gc_drop_seq_ = std::max(gc_drop_seq_, floor[id_]);
  // An on-demand exchange may have reclaimed past prev_drop already (its ack
  // proved the validation fetches drained); the bound never moves backwards.
  gc_reclaimed_seq_ = std::max(gc_reclaimed_seq_, prev_drop);

  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    const std::size_t dropped = log_.gc_to(floor);
    if (dropped)
      stats_.gc_records_reclaimed.fetch_add(dropped, std::memory_order_relaxed);
    // Every node already knows the records below the floor, so they must
    // never ride a delta again: raise the sent-caches so delta_since never
    // reaches into the reclaimed prefix.
    for (std::uint32_t p = 0; p < num_nodes_; ++p) {
      sent_node_vt_[p] = vt_max(std::move(sent_node_vt_[p]), floor);
      sent_mgr_vt_[p] = vt_max(std::move(sent_mgr_vt_[p]), floor);
    }
    gc_floor_applied_ = vt_max(std::move(gc_floor_applied_), floor);
  }

  gc_validate_pages(floor);
  {
    // Every notice at or below the floor is now resolved (pinned or applied):
    // the exchange's ack fold may release writers' diff sources against it.
    std::lock_guard<std::mutex> lock(meta_mu_);
    gc_floor_validated_ = vt_max(std::move(gc_floor_validated_), floor);
  }

  if (prev_drop > 0) {
    std::uint64_t bytes = 0;
    std::size_t entries = 0;
    std::lock_guard<std::mutex> lock(store_mu_);
    for (auto it = diff_store_.begin(); it != diff_store_.end();) {
      if (static_cast<std::uint32_t>(it->first) <= prev_drop) {
        for (const DiffBytes& d : it->second) bytes += d.size();
        ++entries;
        it = diff_store_.erase(it);
      } else {
        ++it;
      }
    }
    if (entries) {
      diff_store_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      stats_.gc_diff_bytes_reclaimed.fetch_add(bytes, std::memory_order_relaxed);
      NOW_LOG(kDebug, "node %u GC: reclaimed %zu diff entries (%llu bytes) <= seq %u",
              id_, entries, static_cast<unsigned long long>(bytes), prev_drop);
    }
  }

  if (rt_.config().lock_push_enabled()) relay_prune(floor);
}

void Node::gc_raise_floor(const VectorTime& floor) {
  // A floor learned off the lock-grant chain.  Floors are *established* only
  // at global sync points (barriers, forks) that this node also attends, so
  // a propagated floor almost never advances past the applied one and this
  // returns at the compare.  When it does advance (defensive: a config mix
  // where this node skipped a establishment point), the knowledge log and
  // sent-caches are raised and pages are validated — but the own-diff
  // reclamation bounds (gc_drop_seq_ / gc_reclaimed_seq_) are NOT moved:
  // advancing them requires proof that every peer's validation fetches have
  // drained, which only the global alignment of a barrier or fork provides.
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    bool advances = false;
    for (std::uint32_t i = 0; i < num_nodes_; ++i) {
      if (floor[i] > gc_floor_applied_[i]) {
        advances = true;
        break;
      }
    }
    if (!advances) {
      // An applied floor is by now also validated on this compute thread
      // (both passes complete before it returns); keep the validated vector
      // caught up so the exchange's ack fold never lags the applied one.
      gc_floor_validated_ = vt_max(std::move(gc_floor_validated_), floor);
      return;
    }
    const std::size_t dropped = log_.gc_to(floor);
    if (dropped)
      stats_.gc_records_reclaimed.fetch_add(dropped, std::memory_order_relaxed);
    for (std::uint32_t p = 0; p < num_nodes_; ++p) {
      sent_node_vt_[p] = vt_max(std::move(sent_node_vt_[p]), floor);
      sent_mgr_vt_[p] = vt_max(std::move(sent_mgr_vt_[p]), floor);
    }
    gc_floor_applied_ = vt_max(std::move(gc_floor_applied_), floor);
  }
  gc_validate_pages(floor);
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    gc_floor_validated_ = vt_max(std::move(gc_floor_validated_), floor);
  }
}

void Node::gc_validate_pages(const VectorTime& floor) {
  const std::size_t cache_budget = rt_.config().diff_cache_bytes_per_page;

  // Scan the pages merge_and_invalidate flagged as carrying notices (not the
  // whole heap), collecting the write notices at or below the floor whose
  // diffs are not already held locally.  Pages still carrying notices are
  // re-flagged for the next pass — a notice that is above this floor will be
  // below a later one.  Only the compute thread removes notices or touches
  // the diff cache, so the collected work stays valid after the page locks
  // drop; the service thread can only append newer (above-floor) notices
  // meanwhile.
  std::vector<PageIndex> scan;
  {
    std::lock_guard<std::mutex> lock(gc_scan_mu_);
    scan.swap(gc_scan_pages_);
  }
  std::sort(scan.begin(), scan.end());
  scan.erase(std::unique(scan.begin(), scan.end()), scan.end());

  struct PageWork {
    PageIndex page = 0;
    std::vector<UnappliedNotice> old;                       // every old notice
    std::map<std::uint32_t, std::vector<std::uint32_t>> fetch;  // writer -> seqs
  };
  std::vector<PageWork> work;
  std::vector<PageIndex> keep;  // pages to revisit at the next barrier
  for (PageIndex page : scan) {
    PageEntry& e = pages_[page];
    std::lock_guard<std::mutex> lock(e.mu);
    if (e.unapplied.empty()) continue;  // a fault applied everything already
    keep.push_back(page);
    PageWork w;
    w.page = page;
    for (const UnappliedNotice& n : e.unapplied) {
      if (n.seq > floor[n.writer]) continue;
      w.old.push_back(n);
      // Already held locally: pinned by a previous GC pass (no fault
      // consumed it yet), or parked as a *droppable* entry by a fault's
      // prefetch window — promoted to a pin in place, because its writer is
      // about to reclaim the source copy and eviction would lose the only
      // survivor.
      if (cache_budget > 0 && e.diff_cache.pin_existing(n.writer, n.seq)) continue;
      w.fetch[n.writer].push_back(n.seq);
    }
    if (!w.old.empty()) work.push_back(std::move(w));
  }
  if (!keep.empty()) {
    std::lock_guard<std::mutex> lock(gc_scan_mu_);
    gc_scan_pages_.insert(gc_scan_pages_.end(), keep.begin(), keep.end());
  }
  if (work.empty()) return;

  // Fetch: one request per (page, writer), through the shared batched path.
  // (w.fetch is kept intact — the pin step below walks it again.)
  std::vector<DiffWant> wants;
  for (const PageWork& w : work)
    for (const auto& [writer, seqs] : w.fetch)
      wants.push_back({w.page, writer, seqs});
  std::vector<sim::Message> replies;
  auto got = fetch_diffs(wants, replies, /*for_gc=*/true);

  // Stash or apply.  With the diff cache enabled the page stays invalid and
  // lazy — the fetched chunks are pinned locally and the next fault applies
  // them (the cache's first real hits) — until the page's pinned bytes
  // exceed the budget, at which point the backlog is applied and unpinned
  // right here, so a page nobody ever reads cannot accumulate pins forever.
  // With the cache disabled, the old diffs are applied immediately.  Either
  // way old notices lamport-precede anything learned after the barrier
  // (their writers knew every reclaimed record when they created them), so
  // applying the old prefix early is byte-identical to a later full apply.
  for (PageWork& w : work) {
    PageEntry& e = pages_[w.page];
    std::lock_guard<std::mutex> lock(e.mu);
    NOW_CHECK(e.state == PageState::kInvalid)
        << "page " << w.page << " has unapplied notices but is not invalid";
    if (cache_budget > 0) {
      for (const auto& [writer, seqs] : w.fetch) {
        for (std::uint32_t seq : seqs) {
          auto it = got.find({w.page, writer, seq});
          NOW_CHECK(it != got.end())
              << "writer " << writer << " had no diff for page " << w.page
              << " interval " << seq;
          std::vector<DiffBytes> owned;
          owned.reserve(it->second.size());
          for (const DiffChunkView& v : it->second)
            owned.emplace_back(v.first, v.first + v.second);
          e.diff_cache.insert_gc(writer, seq, std::move(owned));
        }
      }
      if (e.diff_cache.bytes() <= cache_budget) continue;  // stay lazy
    }

    std::stable_sort(w.old.begin(), w.old.end(), applies_before);
    rt_.arena().protect_rw(id_, w.page);
    std::uint8_t* mem = rt_.arena().page_ptr(id_, w.page);
    std::size_t patched = 0;
    std::uint64_t applied = 0;
    for (const UnappliedNotice& n : w.old) {
      if (cache_budget > 0) {
        // Everything old is pinned by now (this pass or an earlier one).
        const auto* cached = e.diff_cache.find(n.writer, n.seq);
        NOW_CHECK(cached != nullptr)
            << "writer " << n.writer << " had no pinned diff for page "
            << w.page << " interval " << n.seq;
        for (const DiffBytes& d : *cached) {
          patched += diff_apply(mem, kPageSize, d);
          ++applied;
        }
        e.diff_cache.erase(n.writer, n.seq);
      } else {
        auto it = got.find({w.page, n.writer, n.seq});
        NOW_CHECK(it != got.end())
            << "writer " << n.writer << " had no diff for page " << w.page
            << " interval " << n.seq;
        for (const DiffChunkView& d : it->second) {
          patched += diff_apply(mem, kPageSize, d.first, d.second);
          ++applied;
        }
      }
    }
    e.unapplied.erase(
        std::remove_if(e.unapplied.begin(), e.unapplied.end(),
                       [&](const UnappliedNotice& n) {
                         return n.seq <= floor[n.writer];
                       }),
        e.unapplied.end());
    rt_.arena().protect_none(id_, w.page);  // stays invalid: the fault is lazy
    stats_.diffs_applied.fetch_add(applied, std::memory_order_relaxed);
    clock_.advance_us(rt_.config().diff_apply_per_kb_us *
                      (static_cast<double>(patched) / 1024.0));
  }
}

// ---------------------------------------------------------------------------
// On-demand GC exchange (ceiling-triggered, barrier-free)
//
// A barrier-free lock loop grows every node's knowledge log and diff store
// without bound: the barrier-time GC never runs, and the lock-chain floors
// of PR 5 only *propagate* floors established at barriers — they never
// establish one.  When a node's metadata footprint crosses
// meta_ceiling_bytes, it initiates a dedicated all-node exchange over the
// combining-tree fabric that establishes a fresh global floor right now:
//
//   initiator --kGcRequest(initiate)--> root
//   root assigns a generation, fans kGcRequest(solicit) down the tree
//   each node snapshots (log vt, validated floor), folds its children's
//     kGcArrive replies by vt_min, sends the fold up
//   root folds the global (floor, ack), fans kGcDepart down
//
// The departure's floor is min-over-nodes of the log vt — exactly the
// barrier fold's invariant, so truncation and validation reuse the PR 2/5
// machinery unchanged (gc_raise_floor).  The ack is min-over-nodes of the
// *validated* floor: every node has already resolved (pinned or applied)
// all notices at or below it, so writers may destroy the diff sources for
// their own component immediately — replacing the barrier path's one-epoch
// reclamation delay with a proof that the validation fetches already
// drained.  (A fault-path fetch never requests a seq <= the requester's own
// validated floor — validation left those pinned locally or applied — and
// an in-flight validation fetch targets seqs above the requester's
// previous validated floor, which the ack cannot exceed.)
//
// Handlers run on the service thread and never block.  Results are parked
// and applied by the compute thread at its next sync operation (gc_poll),
// preserving the partition invariant that only the compute thread mutates
// page diff caches.  Generations cannot overlap at a node: the root starts
// g+1 only after folding every g arrival, and a node's fold completes
// before its kGcArrive is sent up.
// ---------------------------------------------------------------------------

void Node::gc_poll() {
  const auto& cfg = rt_.config();
  if (!cfg.on_demand_gc_enabled()) return;
  // Apply a parked departure first: its floor may already put this node
  // back under the ceiling without another exchange.
  if (gc_parked_flag_.load(std::memory_order_acquire)) {
    maybe_crash();  // "mid GC exchange" crash site: departure parked, not applied
    VectorTime floor, ack;
    {
      std::lock_guard<std::mutex> lock(gc_depart_mu_);
      floor = std::move(gc_parked_floor_);
      ack = std::move(gc_parked_ack_);
      gc_parked_floor_.clear();
      gc_parked_ack_.clear();
      gc_parked_flag_.store(false, std::memory_order_release);
    }
    gc_raise_floor(floor);
    gc_reclaim_store_to(ack[id_]);
    if (cfg.lock_push_enabled()) relay_prune(gc_floor_snapshot());
  }
  if (meta_bytes() <= cfg.meta_ceiling_bytes) return;
  // One initiation per generation, not one per sync op: while the exchange
  // this node asked for is still in flight, stay quiet.
  const std::uint32_t seen = gc_gen_seen_.load(std::memory_order_relaxed);
  if (gc_gen_requested_ > seen) return;
  maybe_crash();  // "mid GC exchange" crash site: about to root an exchange
  gc_gen_requested_ = seen + 1;
  ByteWriter w;
  w.u8(0);   // initiate
  w.u32(0);  // generation: assigned by the root
  sim::Message m;
  m.type = kGcRequest;
  m.dst = rt_.topology().barrier_root();
  m.payload = w.take();
  send_compute(std::move(m));
}

void Node::gc_reclaim_store_to(std::uint32_t ack_seq) {
  if (ack_seq <= gc_reclaimed_seq_) return;
  gc_reclaimed_seq_ = ack_seq;
  std::uint64_t bytes = 0;
  std::size_t entries = 0;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    for (auto it = diff_store_.begin(); it != diff_store_.end();) {
      if (static_cast<std::uint32_t>(it->first) <= ack_seq) {
        for (const DiffBytes& d : it->second) bytes += d.size();
        ++entries;
        it = diff_store_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (entries) {
    diff_store_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    stats_.gc_diff_bytes_reclaimed.fetch_add(bytes, std::memory_order_relaxed);
    NOW_LOG(kDebug, "node %u on-demand GC: reclaimed %zu diff entries (%llu bytes) <= seq %u",
            id_, entries, static_cast<unsigned long long>(bytes), ack_seq);
  }
}

void Node::relay_note(PageIndex page) { relay_pages_.push_back(page); }

void Node::relay_prune(const VectorTime& floor) {
  if (relay_pages_.empty()) return;
  std::sort(relay_pages_.begin(), relay_pages_.end());
  relay_pages_.erase(std::unique(relay_pages_.begin(), relay_pages_.end()),
                     relay_pages_.end());
  std::size_t chunks = 0;
  std::size_t bytes = 0;
  std::vector<PageIndex> keep;
  for (PageIndex page : relay_pages_) {
    PageEntry& e = pages_[page];
    std::lock_guard<std::mutex> lock(e.mu);
    chunks += e.diff_cache.prune_below(floor, &bytes);
    if (e.diff_cache.relay_bytes() > 0) keep.push_back(page);
  }
  relay_pages_ = std::move(keep);
  if (chunks) {
    stats_.relay_chunks_pruned.fetch_add(chunks, std::memory_order_relaxed);
    stats_.relay_bytes_pruned.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void Node::on_gc_request(sim::Message&& m) {
  ByteReader r(m.payload);
  const bool solicit = r.u8() != 0;
  const std::uint32_t gen = r.u32();
  if (!solicit) {
    NOW_CHECK_EQ(id_, rt_.topology().barrier_root())
        << "GC initiation reached a non-root node";
    // Dedup: an initiation while an exchange is in flight joins it — its
    // departure serves every node, initiator or not.
    if (gc_root_active_) return;
    gc_root_active_ = true;
    stats_.gc_exchanges.fetch_add(1, std::memory_order_relaxed);
    gc_exchange_begin(++gc_root_gen_, m.arrive_ts_ns);
    return;
  }
  gc_exchange_begin(gen, m.arrive_ts_ns);
}

void Node::gc_exchange_begin(std::uint32_t gen, std::uint64_t base_ts) {
  NOW_CHECK(!gc_ex_.active) << "overlapping GC exchange generations";
  gc_ex_.active = true;
  gc_ex_.gen = gen;
  {
    // Snapshot under meta_mu_: a compute-thread validation pass racing this
    // snapshot can only make the validated floor *smaller* than current —
    // conservative for the ack fold, never unsafe.
    std::lock_guard<std::mutex> lock(meta_mu_);
    gc_ex_.fold_vt = log_.vt();
    gc_ex_.fold_ack = gc_floor_validated_;
  }
  const std::vector<std::uint32_t> children = rt_.topology().barrier_children(id_);
  gc_ex_.awaiting = static_cast<std::uint32_t>(children.size());
  for (std::uint32_t child : children) {
    ByteWriter w;
    w.u8(1);  // solicit
    w.u32(gen);
    sim::Message m;
    m.type = kGcRequest;
    m.dst = child;
    m.payload = w.take();
    send_service(std::move(m), base_ts);
  }
  gc_exchange_advance(base_ts);
}

void Node::gc_exchange_advance(std::uint64_t base_ts) {
  if (gc_ex_.awaiting > 0) return;
  gc_ex_.active = false;
  if (id_ != rt_.topology().barrier_root()) {
    ByteWriter w;
    w.u32(gc_ex_.gen);
    KnowledgeLog::serialize_vt(w, gc_ex_.fold_vt);
    KnowledgeLog::serialize_vt(w, gc_ex_.fold_ack);
    sim::Message up;
    up.type = kGcArrive;
    up.dst = rt_.topology().barrier_parent(id_);
    up.payload = w.take();
    send_service(std::move(up), base_ts);
    return;
  }
  gc_root_active_ = false;
  gc_depart_apply(gc_ex_.gen, gc_ex_.fold_vt, gc_ex_.fold_ack, base_ts);
}

void Node::on_gc_arrive(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint32_t gen = r.u32();
  NOW_CHECK(gc_ex_.active && gc_ex_.gen == gen && gc_ex_.awaiting > 0)
      << "stray kGcArrive for generation " << gen;
  gc_ex_.fold_vt = vt_min(std::move(gc_ex_.fold_vt), KnowledgeLog::deserialize_vt(r));
  gc_ex_.fold_ack = vt_min(std::move(gc_ex_.fold_ack), KnowledgeLog::deserialize_vt(r));
  --gc_ex_.awaiting;
  gc_exchange_advance(m.arrive_ts_ns);
}

void Node::on_gc_depart(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint32_t gen = r.u32();
  const VectorTime floor = KnowledgeLog::deserialize_vt(r);
  const VectorTime ack = KnowledgeLog::deserialize_vt(r);
  gc_depart_apply(gen, floor, ack, m.arrive_ts_ns);
}

void Node::gc_depart_apply(std::uint32_t gen, const VectorTime& floor,
                           const VectorTime& ack, std::uint64_t base_ts) {
  // The manager-duty log lives on this service thread: truncate immediately.
  mgr_gc_to(floor);
  for (std::uint32_t child : rt_.topology().barrier_children(id_)) {
    ByteWriter w;
    w.u32(gen);
    KnowledgeLog::serialize_vt(w, floor);
    KnowledgeLog::serialize_vt(w, ack);
    sim::Message m;
    m.type = kGcDepart;
    m.dst = child;
    m.payload = w.take();
    send_service(std::move(m), base_ts);
  }
  // Park for the compute thread's next gc_poll.  Two departures may land
  // between polls: merge by vt_max (both vectors are monotone across
  // generations, so the merge is the newest of each).
  {
    std::lock_guard<std::mutex> lock(gc_depart_mu_);
    if (gc_parked_floor_.empty()) {
      gc_parked_floor_ = floor;
      gc_parked_ack_ = ack;
    } else {
      gc_parked_floor_ = vt_max(std::move(gc_parked_floor_), floor);
      gc_parked_ack_ = vt_max(std::move(gc_parked_ack_), ack);
    }
    gc_parked_flag_.store(true, std::memory_order_release);
  }
  // Monotone max: a straggling lower-generation departure (reordered behind
  // a newer one on another path) must not roll the seen mark back.
  std::uint32_t seen = gc_gen_seen_.load(std::memory_order_relaxed);
  while (seen < gen && !gc_gen_seen_.compare_exchange_weak(
                           seen, gen, std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Adaptive update protocol (hybrid invalidate/update, at every barrier)
// ---------------------------------------------------------------------------

void Node::update_scan_demote() {
  // pushed_pages_ is compute-thread-only: seeded by the previous barrier's
  // validate pass with the pages it left armed or partially covered.
  std::vector<PageIndex> scan;
  scan.swap(pushed_pages_);
  if (scan.empty()) return;
  std::sort(scan.begin(), scan.end());
  scan.erase(std::unique(scan.begin(), scan.end()), scan.end());

  std::map<std::uint32_t, std::vector<PageIndex>> deny;  // writer -> pages
  for (PageIndex page : scan) {
    PageEntry& e = pages_[page];
    std::lock_guard<std::mutex> lock(e.mu);
    if (e.pushed_by == 0) continue;
    if (e.push_touched) {
      // The probe fired (or a fault on the page proved it live): the push
      // stream earns its keep.  Fresh observation window.
      e.push_touched = false;
      e.pushed_by = 0;
      continue;
    }
    // Pushed a whole epoch ago and never touched: the reader moved on.
    // Demote at every writer that pushed.  The armed contents stay correct,
    // so only the bookkeeping is dropped — a later fault on the page
    // revalidates locally through the empty-unapplied path.
    for (std::uint32_t wtr = 0; wtr < num_nodes_; ++wtr)
      if (e.pushed_by & (std::uint64_t{1} << wtr)) deny[wtr].push_back(page);
    e.pushed_by = 0;
    e.push_armed = false;
    e.pushes_since_probe = 0;
  }
  send_update_denies(deny);
}

void Node::send_update_denies(
    const std::map<std::uint32_t, std::vector<PageIndex>>& deny) {
  for (const auto& [wtr, pages] : deny) {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(pages.size()));
    for (PageIndex page : pages) w.u32(page);
    sim::Message m;
    m.type = kUpdateDeny;
    m.dst = wtr;
    m.payload = w.take();
    send_compute(std::move(m));
  }
}

void Node::update_push_promoted(std::uint64_t barrier_index) {
  if (epoch_dirty_.empty()) return;

  // The epoch's dirty pages that are promoted, with their stable readers.
  struct Item {
    PageIndex page = 0;
    const std::vector<std::uint32_t>* seqs = nullptr;
    std::uint64_t readers = 0;
  };
  std::vector<Item> items;
  {
    std::lock_guard<std::mutex> lock(copyset_mu_);
    for (auto& [page, seqs] : epoch_dirty_) {
      auto it = copyset_.find(page);
      if (it == copyset_.end() || !it->second.promoted) continue;
      const std::uint64_t readers =
          it->second.stable_set & ~(std::uint64_t{1} << id_);
      if (readers == 0) continue;
      items.push_back({page, &seqs, readers});
    }
  }
  if (items.empty()) {
    epoch_dirty_.clear();
    return;
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.page < b.page; });

  // Materialize any twin still pending for a pushed interval (the page is at
  // most PROT_READ once its interval closed, so contents are stable; same
  // rule as on_diff_request).
  for (const Item& item : items) {
    PageEntry& e = pages_[item.page];
    std::lock_guard<std::mutex> lock(e.mu);
    for (std::uint32_t seq : *item.seqs)
      if (e.twin_valid && e.twin.seq == seq) materialize_twin(item.page, e);
  }

  // One batched kUpdatePush per reader, serialized under a single diff-store
  // hold and sent after it drops.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> msgs;
  std::uint64_t pages_pushed = 0;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    for (std::uint32_t reader = 0; reader < num_nodes_; ++reader) {
      if (reader == id_) continue;
      const std::uint64_t bit = std::uint64_t{1} << reader;
      std::uint32_t npages = 0;
      for (const Item& item : items) npages += (item.readers & bit) ? 1 : 0;
      if (npages == 0) continue;
      ByteWriter w;
      // Barrier tag: barrier() calls are globally aligned, so the reader's
      // validate pass for the *same* barrier index — and only it — consumes
      // this push (its service thread may park it a full barrier early).
      w.u32(static_cast<std::uint32_t>(barrier_index));
      w.u32(npages);
      for (const Item& item : items) {
        if (!(item.readers & bit)) continue;
        w.u32(item.page);
        w.u32(static_cast<std::uint32_t>(item.seqs->size()));
        for (std::uint32_t seq : *item.seqs) {
          // GC-floor interaction: the epoch's own intervals are always above
          // the reclaim prefix (the floor lags the epoch by construction),
          // so a pushed seq can never dangle into reclaimed diffs.
          NOW_CHECK_GT(seq, gc_drop_seq_)
              << "pushed interval below the reclaimed diff-store prefix";
          auto it = diff_store_.find(diff_store_key(item.page, seq));
          NOW_CHECK(it != diff_store_.end())
              << "push wants missing diff: page " << item.page << " interval "
              << seq;
          w.u32(seq);
          w.u32(static_cast<std::uint32_t>(it->second.size()));
          for (const DiffBytes& d : it->second) w.bytes(d.data(), d.size());
        }
      }
      msgs.emplace_back(reader, w.take());
      pages_pushed += npages;
    }
  }
  for (auto& [reader, payload] : msgs) {
    sim::Message m;
    m.type = kUpdatePush;
    m.dst = reader;
    m.payload = std::move(payload);
    send_compute(std::move(m));
  }
  stats_.update_pushes_sent.fetch_add(msgs.size(), std::memory_order_relaxed);
  stats_.update_pages_pushed.fetch_add(pages_pushed, std::memory_order_relaxed);
  epoch_dirty_.clear();
}

void Node::update_validate_pushed(std::uint64_t barrier_index) {
  // Drain exactly this barrier's pushes from the pending queue.  A push
  // tagged k is guaranteed parked before this pass runs at barrier k
  // (mailbox FIFO: the writer pushed before it could arrive, so before the
  // departure was sent); a push tagged k+1 — a faster writer already a
  // barrier ahead — stays queued until the records it describes have been
  // merged.
  std::vector<PendingPush> batch;
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pending_pushes_.size(); ++i) {
      PendingPush& pp = pending_pushes_[i];
      if (pp.barrier_index != barrier_index) {
        if (pp.barrier_index < barrier_index) {
          // On the perfect wire this is impossible: the writer pushed
          // before arriving at barrier k, so mailbox FIFO parks the push
          // before the departure that triggers this pass.  Under injected
          // faults the cross-link transitivity breaks — the push can be
          // dropped and its retransmission land after the validate pass —
          // and the stale push must be discarded: the push is an
          // optimization only (the pull path re-fetches anything it
          // carried), while applying a stale epoch's diffs late could
          // resurrect overwritten words.
          NOW_CHECK(rt_.config().chaos_enabled())
              << "update push missed its barrier";
          stats_.update_pushes_stale.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // A faster writer already a barrier ahead: keep until its barrier.
        // Compact in place, guarding the self-move (v[i] = move(v[i])
        // empties the chunk vectors).
        if (keep != i) pending_pushes_[keep] = std::move(pp);
        ++keep;
        continue;
      }
      batch.push_back(std::move(pp));
    }
    pending_pushes_.resize(keep);
  }
  if (batch.empty()) return;
  std::stable_sort(batch.begin(), batch.end(),
                   [](const PendingPush& a, const PendingPush& b) {
                     return a.page < b.page;
                   });

  const auto& cfg = rt_.config();
  const std::size_t cache_budget = cfg.diff_cache_bytes_per_page;
  const std::uint32_t reprobe = std::max<std::uint32_t>(1, cfg.update_reprobe_epochs);
  std::vector<PageIndex> relist;
  std::map<std::uint32_t, std::vector<PageIndex>> deny;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PageIndex page = batch[i].page;
    PageEntry& e = pages_[page];
    std::lock_guard<std::mutex> lock(e.mu);
    // Park this page's pushed chunks in its diff cache (budgeted, droppable,
    // keyed (writer, seq) exactly like a fetched reply).  This runs on the
    // compute thread only, which is what keeps a push racing a pull
    // idempotent: whichever applies first erases the entry, the other's
    // copy is redundant bytes, never a second application.
    std::uint64_t writers = 0;
    bool any_kept = false;
    for (; i < batch.size() && batch[i].page == page; ++i) {
      PendingPush& pp = batch[i];
      writers |= std::uint64_t{1} << pp.writer;
      for (auto& [seq, chunks] : pp.seq_chunks)
        any_kept |=
            e.diff_cache.insert(pp.writer, seq, std::move(chunks), cache_budget,
                                /*prefetched=*/false, /*pushed=*/true);
    }
    --i;  // the for-loop's ++i re-advances past this page's run
    if (!any_kept) {
      // The budget rejected every pushed chunk (oversized epoch diffs, or a
      // page whose GC pins already fill it): these pushes can never land, so
      // without a demotion the writer would re-ship the same bytes every
      // epoch forever — the re-fetching fault keeps the copyset stable and
      // no armed probe ever fires.  Deny now; re-promotion backs off.
      for (std::uint32_t wtr = 0; wtr < num_nodes_; ++wtr)
        if (writers & (std::uint64_t{1} << wtr)) deny[wtr].push_back(page);
      continue;
    }
    e.pushed_by |= writers;
    if (e.state != PageState::kInvalid || e.unapplied.empty()) {
      // A racing pull-path fetch (lock-chain knowledge mid-epoch) already
      // applied everything; the push was redundant bytes.  Forget it so the
      // demotion scan doesn't misjudge the page.
      e.pushed_by = 0;
      continue;
    }
    // Eager apply only when the cached chunks cover *every* wanted interval
    // — applying a suffix out of lamport order could resurrect overwritten
    // bytes.  Partially covered pages stay lazy: the fault serves the cached
    // part locally and fetches the rest.
    bool covered = true;
    for (const UnappliedNotice& n : e.unapplied) {
      if (e.diff_cache.lookup(n.writer, n.seq) == nullptr) {
        covered = false;
        break;
      }
    }
    if (!covered) {
      relist.push_back(page);  // the demotion scan still judges it
      continue;
    }

    std::stable_sort(e.unapplied.begin(), e.unapplied.end(), applies_before);
    rt_.arena().protect_rw(id_, page);
    std::uint8_t* mem = rt_.arena().page_ptr(id_, page);
    std::size_t patched = 0;
    std::uint64_t applied = 0;
    for (const UnappliedNotice& n : e.unapplied) {
      const auto* cached = e.diff_cache.find(n.writer, n.seq);
      for (const DiffBytes& d : *cached) {
        patched += diff_apply(mem, kPageSize, d);
        ++applied;
      }
      e.diff_cache.erase(n.writer, n.seq);
    }
    e.unapplied.clear();
    e.ever_valid = true;
    stats_.diffs_applied.fetch_add(applied, std::memory_order_relaxed);
    clock_.advance_us(cfg.diff_apply_per_kb_us *
                      (static_cast<double>(patched) / 1024.0));

    // Liveness probe cadence: every reprobe-th push is applied *armed* —
    // contents current but unmapped, so the next access faults once,
    // locally, and proves the reader still consumes the stream.  The pushes
    // in between (including the first: promotion already rests on observed
    // faults in consecutive epochs) validate outright and the post-barrier
    // fault disappears.  A reader that stops consuming burns at most
    // reprobe-1 validated pushes before a probe goes untouched and the
    // demotion lands.
    const bool probe = (++e.pushes_since_probe % reprobe) == 0;
    if (probe) {
      rt_.arena().protect_none(id_, page);
      e.push_armed = true;
      e.push_touched = false;
      relist.push_back(page);  // the next barrier's scan judges the probe
    } else {
      rt_.arena().protect_read(id_, page);
      e.state = PageState::kReadOnly;
      e.pushed_by = 0;
      stats_.update_push_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!relist.empty())
    pushed_pages_.insert(pushed_pages_.end(), relist.begin(), relist.end());
  send_update_denies(deny);
}

void Node::update_copyset_fold(std::uint64_t epoch) {
  const std::uint32_t promote = rt_.config().update_promote_epochs;
  std::lock_guard<std::mutex> lock(copyset_mu_);
  for (auto it = copyset_.begin(); it != copyset_.end();) {
    PageCopyset& cs = it->second;
    const std::uint64_t cur = cs.epoch_readers[epoch & 1];
    cs.epoch_readers[epoch & 1] = 0;
    if (cs.promoted) {
      // A request while promoted is a newcomer (or a demoted reader faulting
      // its way back): fold it into the push set — the armed probe demotes
      // it again if the interest was transient.
      cs.stable_set |= cur;
      ++it;
      continue;
    }
    if (cur == 0) {
      // No requests this epoch is no evidence either way: the writer may
      // not have written (nothing to fetch), or reads alternate with
      // compute phases.  Keep the streak — a *changed* reader set breaks
      // it below, and a stale promotion is the armed probe's job to kill.
      if (cs.stable_set == 0 && cs.epoch_readers[(epoch + 1) & 1] == 0) {
        // Never-stable and quiescent: drop the entry so the copyset map
        // tracks live sharing, not history.
        it = copyset_.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    if (cur == cs.stable_set) {
      ++cs.stable_epochs;
    } else {
      cs.stable_set = cur;
      cs.stable_epochs = 1;
    }
    // Each past demotion doubles the streak required to re-promote (capped):
    // sharing that only *looks* stable stops churning promote/demote cycles,
    // while a first-time-stable page promotes at the configured threshold.
    const std::uint32_t threshold =
        promote << std::min<std::uint32_t>(cs.denials, 4);
    if (cs.stable_epochs >= threshold) cs.promoted = true;
    ++it;
  }
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

std::uint32_t Node::consume_lock_grant(sim::Message& grant) {
  ByteReader r(grant.payload);
  const std::uint32_t lock_id = r.u32();
  const VectorTime floor = KnowledgeLog::deserialize_vt(r);
  merge_and_invalidate(KnowledgeLog::deserialize_records(r));
  arrive(grant);
  // The push section must land after the merge (the pushed diffs cover the
  // write notices the records just created) and runs on this compute thread,
  // which is the only mutator of the page diff caches — the same partition
  // invariant the fault path relies on.
  apply_lock_push(lock_id, grant.src, r);
  if (rt_.config().gc_lock_floors) gc_raise_floor(floor);
  // Retained relay chunks at or below the applied floor can never serve a
  // fault nor ride a future grant delta again: drop them here, on the chain
  // itself, so a rotating barrier-free loop's relay stock stays bounded.
  if (rt_.config().lock_push_enabled()) relay_prune(gc_floor_snapshot());
  return lock_id;
}

void Node::lock_acquire(std::uint32_t lock_id) {
  sync_cpu();
  maybe_crash();  // "mid lock chain" crash site (requester side)
  gc_poll();
  stats_.lock_acquires.fetch_add(1, std::memory_order_relaxed);
  const bool lock_push = rt_.config().lock_push_enabled();
  {
    std::lock_guard<std::mutex> lock(lock_client_mu_);
    LockClientState& st = lock_client_[lock_id];
    NOW_CHECK(!st.held) << "recursive acquire of lock " << lock_id;
    if (st.cached) {
      // This node was the last holder; re-acquiring is free (TreadMarks lock
      // caching).  Consistency needs nothing: the release chain ends here.
      st.held = true;
      stats_.lock_acquires_cached.fetch_add(1, std::memory_order_relaxed);
      if (lock_push) {
        held_locks_.push_back(lock_id);
        cs_touched_[lock_id].clear();
      }
      return;
    }
    st.awaiting = true;
  }

  ByteWriter w;
  w.u32(lock_id);
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    KnowledgeLog::serialize_vt(w, log_.vt());
    // Applied GC floor, for the manager's sparse duty log (see sema_signal).
    KnowledgeLog::serialize_vt(w, gc_floor_applied_);
  }
  sim::Message m;
  m.type = kLockAcquire;
  m.dst = rt_.topology().lock_manager(lock_id);
  m.payload = w.take();
  send_compute(std::move(m));

  sim::Message grant = lock_grant_slot_.take();
  const std::uint32_t granted = consume_lock_grant(grant);
  NOW_CHECK_EQ(granted, lock_id);
  {
    std::lock_guard<std::mutex> lock(lock_client_mu_);
    LockClientState& st = lock_client_[lock_id];
    st.held = true;
    st.cached = true;
    st.awaiting = false;
  }
  if (lock_push) {
    held_locks_.push_back(lock_id);
    cs_touched_[lock_id].clear();
  }
}

void Node::lock_release(std::uint32_t lock_id) {
  sync_cpu();
  maybe_crash();  // "mid lock chain" crash site (holder side: grant withheld)
  gc_poll();
  close_interval();
  if (rt_.config().lock_push_enabled()) {
    held_locks_.erase(
        std::remove(held_locks_.begin(), held_locks_.end(), lock_id),
        held_locks_.end());
    // Fold before any grant can be assembled for this release: the pending
    // grant below (and any later cached grant from the service thread) reads
    // the protected set the fold just updated.
    lock_push_fold(lock_id);
    lock_push_judge(lock_id);
  }
  std::optional<PendingGrant> pending;
  {
    std::lock_guard<std::mutex> lock(lock_client_mu_);
    LockClientState& st = lock_client_[lock_id];
    NOW_CHECK(st.held) << "release of unheld lock " << lock_id;
    st.held = false;
    if (st.pending) {
      pending = std::move(st.pending);
      st.pending.reset();
      st.cached = false;
    }
  }
  if (pending)
    grant_lock(lock_id, pending->requester, pending->vt, 0, /*from_service=*/false);
}

void Node::grant_lock(std::uint32_t lock_id, std::uint32_t requester,
                      const VectorTime& vt, std::uint64_t base_ts,
                      bool from_service) {
  // Both threads can grant to the same requester at once (compute: a
  // pending grant at release; service: a forward hitting the ownership
  // cache — two disjoint locks migrating along the same edge).  The cut
  // and the enqueue must not interleave, or the later cut's grant lands
  // on the wire first and the requester's dense merge sees a gap.
  std::lock_guard<std::mutex> order(delta_send_mu_[requester]);
  auto delta = take_delta_for(requester, Cache::kNodeLog, &vt);
  if (log_enabled(LogLevel::kDebug)) {
    std::string recs;
    for (const auto& rec : delta)
      recs += " (" + std::to_string(rec->node) + "," + std::to_string(rec->seq) + ")";
    NOW_LOG(kDebug, "node %u: grant lock %u to %u: delta%s [req vt0=%u vt1=%u]",
            id_, lock_id, requester, recs.empty() ? " <empty>" : recs.c_str(),
            vt.empty() ? 0 : vt[0], vt.size() > 1 ? vt[1] : 0);
  }
  ByteWriter w;
  w.u32(lock_id);
  KnowledgeLog::serialize_vt(w, gc_floor_snapshot());
  KnowledgeLog::serialize_records(w, delta);
  append_lock_push(w, lock_id, vt, delta);
  sim::Message m;
  m.type = kLockGrant;
  m.dst = requester;
  m.payload = w.take();
  if (from_service)
    send_service(std::move(m), base_ts);
  else
    send_compute(std::move(m));
}

void Node::on_lock_acquire(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint32_t lock_id = r.u32();
  const VectorTime vt = KnowledgeLog::deserialize_vt(r);
  // The requester's applied GC floor: raise the sparse manager duty log
  // before its next delta is cut, exactly like the sema/cond paths — this is
  // what lets lock-heavy phases reclaim manager-log records at all.
  const VectorTime floor = KnowledgeLog::deserialize_vt(r);
  if (rt_.config().gc_lock_floors) mgr_gc_to(floor);
  mgr_route_lock(lock_id, m.src, vt, m.arrive_ts_ns);
}

void Node::mgr_route_lock(std::uint32_t lock_id, std::uint32_t requester,
                          const VectorTime& vt, std::uint64_t base_ts) {
  LockMgrState& L = mgr_.locks[lock_id];
  if (!L.ever_requested) {
    // Never held: the manager grants directly, with whatever knowledge has
    // been routed through it (usually nothing).
    L.ever_requested = true;
    L.tail = requester;
    ByteWriter w;
    w.u32(lock_id);
    KnowledgeLog::serialize_vt(w, gc_floor_snapshot());
    KnowledgeLog::serialize_records(w, mgr_delta_since(vt));
    w.u32(0);  // no migratory push from the manager (it holds no diffs)
    sim::Message grant;
    grant.type = kLockGrant;
    grant.dst = requester;
    grant.payload = w.take();
    send_service(std::move(grant), base_ts);
    return;
  }
  const std::uint32_t prev = L.tail;
  L.tail = requester;
  ByteWriter w;
  w.u32(lock_id);
  w.u32(requester);
  KnowledgeLog::serialize_vt(w, vt);
  sim::Message fwd;
  fwd.type = kLockForward;
  fwd.dst = prev;
  fwd.payload = w.take();
  send_service(std::move(fwd), base_ts);
}

void Node::on_lock_forward(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint32_t lock_id = r.u32();
  const std::uint32_t requester = r.u32();
  const VectorTime vt = KnowledgeLog::deserialize_vt(r);

  NOW_LOG(kDebug, "node %u: forward lock %u -> requester %u", id_, lock_id, requester);
  if (requester == id_) {
    // A condvar wakeup routed back to ourselves: nobody acquired the lock
    // since we released it in cond_wait, so we still cache it.
    std::lock_guard<std::mutex> lock(lock_client_mu_);
    LockClientState& st = lock_client_[lock_id];
    NOW_CHECK(!st.held && st.cached && st.awaiting)
        << "self-forward in unexpected lock state";
    ByteWriter w;
    w.u32(lock_id);
    KnowledgeLog::serialize_vt(w, gc_floor_snapshot());
    KnowledgeLog::serialize_records(w, {});
    w.u32(0);  // nothing to push to ourselves
    sim::Message grant;
    grant.type = kLockGrant;
    grant.dst = id_;
    grant.payload = w.take();
    send_service(std::move(grant), m.arrive_ts_ns);
    return;
  }

  bool grant_now = false;
  {
    std::lock_guard<std::mutex> lock(lock_client_mu_);
    LockClientState& st = lock_client_[lock_id];
    // `awaiting && cached` means our compute thread is blocked in cond_wait:
    // it already released the lock (keeping the ownership cache), so the
    // service thread can pass the lock on immediately.  Queuing here would
    // deadlock — the signal that wakes us needs this very lock.
    if (st.held || (st.awaiting && !st.cached)) {
      NOW_CHECK(!st.pending) << "two pending lock requesters";
      st.pending = PendingGrant{requester, vt};
    } else {
      NOW_CHECK(st.cached) << "lock forward reached a non-owner";
      st.cached = false;
      grant_now = true;
    }
  }
  NOW_LOG(kDebug, "node %u: forward lock %u: %s", id_, lock_id,
          grant_now ? "grant from cache" : "queued pending");
  if (grant_now) grant_lock(lock_id, requester, vt, m.arrive_ts_ns, /*from_service=*/true);
}

// ---------------------------------------------------------------------------
// Migratory lock push: diffs piggybacked on the kLockGrant chain
// ---------------------------------------------------------------------------

void Node::lock_push_fold(std::uint32_t lock_id) {
  std::vector<PageIndex> touched;
  auto tit = cs_touched_.find(lock_id);
  if (tit != cs_touched_.end()) touched = std::move(tit->second);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  const std::uint32_t probe =
      std::max<std::uint32_t>(1, rt_.config().lock_push_probe);
  std::lock_guard<std::mutex> lock(lock_protect_mu_);
  auto& prot = lock_protect_[lock_id];
  for (PageIndex pg : touched) {
    LockPushStat& ps = prot[pg];
    ps.untouched = 0;
    ++ps.streak;
    // Exponential re-admission backoff: each past denial doubles the touch
    // streak required before the page pushes again (capped), so sharing
    // that only *looks* migratory stops burning push bytes while a page
    // touched in every critical section joins the set immediately.
    const std::uint32_t need = 1u << std::min<std::uint32_t>(ps.denials, 4);
    if (ps.streak >= need) ps.member = true;
  }
  for (auto it = prot.begin(); it != prot.end();) {
    if (std::binary_search(touched.begin(), touched.end(), it->first)) {
      ++it;
      continue;
    }
    LockPushStat& ps = it->second;
    ps.streak = 0;
    if (++ps.untouched >= probe) {
      // Untouched for lock_push_probe consecutive of our own critical
      // sections: the page is no longer part of what this lock protects.
      ps.member = false;
      if (ps.denials == 0) {
        // Quiescent and never denied: forget the page entirely, so the map
        // tracks live sharing rather than history.
        it = prot.erase(it);
        continue;
      }
    }
    ++it;
  }
}

void Node::lock_push_judge(std::uint32_t lock_id) {
  auto it = lock_armed_judge_.find(lock_id);
  if (it == lock_armed_judge_.end() || it->second.empty()) return;
  std::vector<LockArmed> armed = std::move(it->second);
  it->second.clear();

  std::map<std::uint32_t, std::vector<PageIndex>> deny;  // pusher -> pages
  for (const LockArmed& a : armed) {
    PageEntry& e = pages_[a.page];
    std::lock_guard<std::mutex> lock(e.mu);
    if (a.armed) {
      // Still armed after the whole critical section ran: the push was dead
      // weight.  (A consumed probe cleared the flag at its fault and counted
      // a hit; a fresh write notice also cleared it — no verdict then.)
      if (!e.lock_push_armed) continue;
      e.lock_push_armed = false;  // contents stay current; bookkeeping drops
    } else {
      // Partial-push probe: the chunks were parked, not applied.  If the
      // page is still invalid with unapplied notices, no fault consumed
      // them all critical section long — the pusher is shipping bytes
      // nobody reads — while a page that went valid was read: no verdict.
      // Heuristic, not proof: a page consumed mid-CS and then re-staled by
      // an unrelated sync (a flush notice, say) is denied unfairly.  The
      // verdict only moves bookkeeping — a hot page re-admits after the
      // backoff streak of touched critical sections, contents never depend
      // on it.
      if (e.state != PageState::kInvalid || e.unapplied.empty()) continue;
    }
    deny[a.writer].push_back(a.page);
  }
  for (const auto& [pusher, pages] : deny)
    send_lock_push_deny(lock_id, pusher, pages);
}

void Node::send_lock_push_deny(std::uint32_t lock_id, std::uint32_t pusher,
                               const std::vector<PageIndex>& pages) {
  ByteWriter w;
  w.u32(lock_id);
  w.u32(static_cast<std::uint32_t>(pages.size()));
  for (PageIndex pg : pages) w.u32(pg);
  sim::Message m;
  m.type = kLockPushDeny;
  m.dst = pusher;
  m.payload = w.take();
  send_compute(std::move(m));
}

void Node::append_lock_push(ByteWriter& w, std::uint32_t lock_id,
                            const VectorTime& req_vt,
                            const std::vector<IntervalRecordPtr>& delta) {
  const auto& cfg = rt_.config();
  if (!cfg.lock_push_enabled() || delta.empty()) {
    w.u32(0);
    return;
  }

  // Candidate pages: protected-set members named by the delta's records.
  // Records of *other* nodes matter too — on a rotating grant chain the
  // delta relays the whole chain history the requester missed, so a page
  // everyone updates under the lock carries several writers' notices.  Our
  // own intervals' diffs come from the diff store; relayed writers' diffs
  // come from this page's requester-side cache, where the fault path and
  // the push-apply path *retain* chunks for lock-touched pages exactly so
  // the chain can forward them (the migratory relay).  A page the relay
  // cannot fully cover falls back to the whole-page image, and failing
  // that to a partial own-diff push or the plain pull path.
  struct Cand {
    PageIndex page = 0;
    // Every delta record naming the page, as (writer, seq) in delta order.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  };
  std::vector<Cand> cands;
  {
    std::lock_guard<std::mutex> lock(lock_protect_mu_);
    auto it = lock_protect_.find(lock_id);
    if (it == lock_protect_.end()) {
      w.u32(0);
      return;
    }
    std::map<PageIndex, std::size_t> index;
    for (const IntervalRecordPtr& rec : delta) {
      for (PageIndex pg : rec->pages) {
        auto ps = it->second.find(pg);
        if (ps == it->second.end() || !ps->second.member) continue;
        auto [slot, fresh] = index.emplace(pg, cands.size());
        if (fresh) cands.push_back({pg, {}});
        cands[slot->second].entries.emplace_back(rec->node, rec->seq);
      }
    }
  }
  if (cands.empty()) {
    w.u32(0);
    return;
  }

  // Whole-page images are sound only when our knowledge dominates the
  // requester's: then everything it could already have applied to the page,
  // our valid copy contains too, and the memcpy can never clobber a
  // concurrent writer's applied words.  The snapshot vector time rides with
  // each image so the requester can verify coverage of every notice it
  // holds.  (Diff pushes need no such guard — they patch exactly the bytes
  // the named intervals wrote, like any fetched diff.)
  bool dominates = true;
  VectorTime grant_vt;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    grant_vt = log_.vt();
    for (std::uint32_t i = 0; i < num_nodes_; ++i) {
      if (req_vt[i] > grant_vt[i]) {
        dominates = false;
        break;
      }
    }
  }

  const std::size_t image_sz = kPageSize + 6 + 4 * num_nodes_;
  ByteWriter pw;  // entries, counted as we go (npush is written first below)
  std::uint32_t npush = 0;
  std::size_t budget = cfg.lock_push_bytes;
  const std::uint32_t reprobe =
      std::max<std::uint32_t>(1, cfg.lock_push_reprobe);
  for (const Cand& c : cands) {
    PageEntry& e = pages_[c.page];
    std::lock_guard<std::mutex> lock(e.mu);
    // Materialize any twin still pending for a pushed own interval (the
    // page is at most PROT_READ once its interval closed, so its bytes are
    // stable; same rule — and same e.mu-before-store_mu_ order — as
    // on_diff_request).
    for (const auto& [wtr, seq] : c.entries)
      if (wtr == id_ && e.twin_valid && e.twin.seq == seq)
        materialize_twin(c.page, e);

    // Size the push: own intervals from the diff store, relayed ones from
    // the page's retained cache.  Own store entries cannot be reclaimed
    // underneath this grant (delta seqs are above the requester's vector
    // time, which dominates every announced floor, and own-diff reclamation
    // lags the floor by one reclamation point — the NOW_CHECK fails loudly
    // if that invariant is ever broken); retained cache entries are stable
    // under e.mu, which we hold until they are serialized.
    std::size_t diff_sz = 0;
    std::size_t own_sz = 0;  // the subset a partial push actually serializes
    bool relay_covered = true;
    std::size_t own = 0;
    {
      std::lock_guard<std::mutex> sl(store_mu_);
      for (const auto& [wtr, seq] : c.entries) {
        if (wtr == id_) {
          auto it = diff_store_.find(diff_store_key(c.page, seq));
          NOW_CHECK(it != diff_store_.end())
              << "lock push sourced a reclaimed diff: page " << c.page
              << " interval " << seq;
          ++own;
          std::size_t sz = 12;  // writer + seq + chunk count
          for (const DiffBytes& d : it->second) sz += 4 + d.size();
          diff_sz += sz;
          own_sz += sz;
        } else if (const auto* chunks = e.diff_cache.find(wtr, seq)) {
          diff_sz += 12;
          for (const DiffBytes& d : *chunks) diff_sz += 4 + d.size();
        } else {
          relay_covered = false;  // evicted (or never seen): no full relay
        }
      }
    }

    // Image fallback: the relay cannot cover the page (missing foreign
    // chunks) or a dense rewrite made the chunked diffs outgrow the page.
    std::vector<std::uint8_t> image;
    if ((!relay_covered || diff_sz > kPageSize) && dominates &&
        image_sz <= budget && e.state == PageState::kReadOnly) {
      // kReadOnly only: a writable page is mid-interval on our own compute
      // thread and copying it would race the writes byte-for-byte.
      const std::uint8_t* mem = rt_.arena().page_ptr(id_, c.page);
      image.assign(mem, mem + kPageSize);
    }
    const bool as_image = !image.empty();
    const bool as_diffs = !as_image && relay_covered && diff_sz <= budget &&
                          diff_sz <= kPageSize;
    // Partial own-diff push: the requester still pulls the rest, but skips
    // the round trip to *us* (its fault finds our chunks cached).  Only the
    // own bytes are serialized, so only they are charged to the budget.
    const bool as_partial =
        !as_image && !as_diffs && own > 0 && own_sz <= budget;
    if (!as_image && !as_diffs && !as_partial) continue;  // plain pull path

    // Armed-probe cadence: every reprobe-th push of this (lock, page) is
    // applied armed at the requester, proving the chain still consumes it.
    bool arm = false;
    {
      std::lock_guard<std::mutex> plock(lock_protect_mu_);
      LockPushStat& ps = lock_protect_[lock_id][c.page];
      arm = (++ps.pushes % reprobe) == 0;
    }

    pw.u32(c.page);
    pw.u8(as_image ? 1 : 0);
    pw.u8(arm ? 1 : 0);
    if (as_image) {
      KnowledgeLog::serialize_vt(pw, grant_vt);
      pw.bytes(image.data(), image.size());
      budget -= image_sz;
    } else {
      ByteWriter entries;
      std::uint32_t n = 0;
      std::lock_guard<std::mutex> sl(store_mu_);
      for (const auto& [wtr, seq] : c.entries) {
        const std::vector<DiffBytes>* chunks = nullptr;
        if (wtr == id_) {
          auto it = diff_store_.find(diff_store_key(c.page, seq));
          NOW_CHECK(it != diff_store_.end())
              << "lock push sourced a reclaimed diff: page " << c.page
              << " interval " << seq;
          chunks = &it->second;
        } else if (as_diffs) {
          chunks = e.diff_cache.find(wtr, seq);
          NOW_CHECK(chunks != nullptr);  // stable under e.mu since sizing
        } else {
          continue;  // partial push: own intervals only
        }
        entries.u32(wtr);
        entries.u32(seq);
        entries.u32(static_cast<std::uint32_t>(chunks->size()));
        for (const DiffBytes& d : *chunks) entries.bytes(d.data(), d.size());
        ++n;
      }
      pw.u32(n);
      pw.raw(entries.data().data(), entries.size());
      budget -= as_diffs ? diff_sz : own_sz;
    }
    ++npush;
  }
  w.u32(npush);
  if (npush > 0) {
    w.raw(pw.data().data(), pw.size());
    stats_.lock_pushes_sent.fetch_add(1, std::memory_order_relaxed);
    stats_.lock_pages_pushed.fetch_add(npush, std::memory_order_relaxed);
  }
}

void Node::apply_lock_push(std::uint32_t lock_id, std::uint32_t writer,
                           ByteReader& r) {
  const std::uint32_t npush = r.u32();
  if (npush == 0) return;
  const auto& cfg = rt_.config();
  const std::size_t cache_budget = cfg.diff_cache_bytes_per_page;
  std::size_t patched = 0;
  std::uint64_t applied = 0;
  std::vector<PageIndex> deny;  // pushes the cache budget can never hold

  auto finish = [&](PageEntry& e, PageIndex page, bool arm) {
    e.ever_valid = true;
    if (arm) {
      // Probe: contents current, page left unmapped — the critical
      // section's first access faults once, locally, and the release
      // judges a page still armed as a dead push (lock_push_judge).
      rt_.arena().protect_none(id_, page);
      e.lock_push_armed = true;
      lock_armed_judge_[lock_id].push_back({page, writer, /*armed=*/true});
    } else {
      rt_.arena().protect_read(id_, page);
      e.state = PageState::kReadOnly;
      stats_.lock_push_hits.fetch_add(1, std::memory_order_relaxed);
    }
  };

  for (std::uint32_t p = 0; p < npush; ++p) {
    const PageIndex page = r.u32();
    const std::uint8_t kind = r.u8();
    const bool arm = r.u8() != 0;
    PageEntry& e = pages_[page];

    if (kind == 1) {  // whole-page image
      const VectorTime img_vt = KnowledgeLog::deserialize_vt(r);
      const auto [img, n] = r.bytes_view();
      NOW_CHECK_EQ(n, kPageSize);
      std::lock_guard<std::mutex> lock(e.mu);
      if (e.state != PageState::kInvalid || e.unapplied.empty()) continue;
      // The granter's valid copy had every notice it knew applied, so the
      // image covers exactly the notices at or below its snapshot vector
      // time — including the relayed chain history of other writers.  A
      // notice above it (a writer concurrent with the granter) cannot be
      // ordered against the image: pull path instead.
      bool covered = true;
      for (const UnappliedNotice& un : e.unapplied) {
        if (un.seq > img_vt[un.writer]) {
          covered = false;
          break;
        }
      }
      if (!covered) continue;
      rt_.arena().protect_rw(id_, page);
      std::memcpy(rt_.arena().page_ptr(id_, page), img, kPageSize);
      patched += kPageSize;
      ++applied;
      e.unapplied.clear();
      finish(e, page, arm);
      continue;
    }

    // Diff push: own the chunks and park them in the page's cache, keyed
    // (writer, seq) exactly like a fetched reply — idempotent against any
    // concurrent pull of the same intervals.  Applied entries are RETAINED
    // (not erased): this page is lock-protected, and the retained chunks
    // are what lets our own later grant relay the chain's accumulated
    // diffs onward instead of shipping whole-page images.
    const std::uint32_t nentries = r.u32();
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::vector<DiffBytes>>>
        wire(nentries);
    for (std::uint32_t i = 0; i < nentries; ++i) {
      std::get<0>(wire[i]) = r.u32();
      std::get<1>(wire[i]) = r.u32();
      const std::uint32_t nchunks = r.u32();
      std::get<2>(wire[i]).reserve(nchunks);
      for (std::uint32_t k = 0; k < nchunks; ++k) {
        const auto [ptr, nb] = r.bytes_view();
        std::get<2>(wire[i]).emplace_back(ptr, ptr + nb);
      }
    }
    std::lock_guard<std::mutex> lock(e.mu);
    if (e.state != PageState::kInvalid || e.unapplied.empty()) continue;
    bool any_kept = false;
    for (auto& [wtr, seq, chunks] : wire)
      any_kept |= e.diff_cache.insert(wtr, seq, std::move(chunks),
                                      cache_budget, /*prefetched=*/false,
                                      /*pushed=*/true);
    // Retained entries on this lock-protected page are relay stock: mark
    // them so the prune pass can drop them once a floor covers them
    // (mark_relay no-ops on budget-rejected keys).
    for (const auto& [wtr, seq, chunks] : wire) e.diff_cache.mark_relay(wtr, seq);
    if (any_kept) relay_note(page);
    if (!any_kept) {
      // The cache budget rejected every chunk (GC pins already fill it, or
      // oversized diffs): these pushes can never land, and the re-fetching
      // fault would keep the protected set stable forever.  Deny now;
      // re-admission backs off.
      deny.push_back(page);
      continue;
    }
    // Apply only when the cache now covers every wanted interval — applying
    // a suffix out of lamport order could resurrect overwritten bytes.
    // Partially covered pages stay lazy: the fault serves the cached part
    // locally and fetches only the rest.
    bool covered = true;
    for (const UnappliedNotice& un : e.unapplied) {
      if (e.diff_cache.lookup(un.writer, un.seq) == nullptr) {
        covered = false;
        break;
      }
    }
    if (!covered) {
      // Partially covered: the parked chunks serve the fault if one comes.
      // On a probe grant, judge that at release — a page that stays invalid
      // through the whole critical section is a dead push and must demote,
      // or a chronic partial pusher would ship its bytes forever.
      if (arm) lock_armed_judge_[lock_id].push_back({page, writer, false});
      continue;
    }
    std::stable_sort(e.unapplied.begin(), e.unapplied.end(), applies_before);
    rt_.arena().protect_rw(id_, page);
    std::uint8_t* mem = rt_.arena().page_ptr(id_, page);
    for (const UnappliedNotice& un : e.unapplied) {
      const auto* cached = e.diff_cache.lookup(un.writer, un.seq);
      NOW_CHECK(cached != nullptr);
      for (const DiffBytes& d : cached->chunks) {
        patched += diff_apply(mem, kPageSize, d);
        ++applied;
      }
      // Droppable entries are retained for the migratory relay; pinned ones
      // (barrier-GC stashes of reclaimed diffs) must release on apply, same
      // as on the fault path — their seqs are below the GC floor, so no
      // grant delta can ever name them again and a stale pin would leak
      // pinned bytes forever.
      if (cached->pinned) e.diff_cache.erase(un.writer, un.seq);
    }
    e.unapplied.clear();
    finish(e, page, arm);
  }

  if (applied > 0) {
    stats_.diffs_applied.fetch_add(applied, std::memory_order_relaxed);
    clock_.advance_us(cfg.diff_apply_per_kb_us *
                      (static_cast<double>(patched) / 1024.0));
  }
  if (!deny.empty()) send_lock_push_deny(lock_id, writer, deny);
}

// ---------------------------------------------------------------------------
// Semaphores
// ---------------------------------------------------------------------------

void Node::sema_wait(std::uint32_t sema_id) {
  sync_cpu();
  maybe_crash();
  gc_poll();
  stats_.sema_ops.fetch_add(1, std::memory_order_relaxed);
  ByteWriter w;
  w.u32(sema_id);
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    KnowledgeLog::serialize_vt(w, log_.vt());
  }
  sim::Message reply = rpc_call(rt_.topology().sema_manager(sema_id), kSemaWait, w.take());
  ByteReader r(reply.payload);
  merge_and_invalidate(KnowledgeLog::deserialize_records(r));
}

void Node::sema_signal(std::uint32_t sema_id) {
  sync_cpu();
  maybe_crash();
  gc_poll();
  stats_.sema_ops.fetch_add(1, std::memory_order_relaxed);
  close_interval();
  const std::uint32_t mgr = rt_.topology().sema_manager(sema_id);
  auto delta = take_delta_for(mgr, Cache::kMgrLog, nullptr);
  ByteWriter w;
  w.u32(sema_id);
  // The GC floor rides on every delta bound for a manager log: the sparse
  // manager log raises its own floor before merging, so a delta that starts
  // above records the manager never saw still merges contiguously — with no
  // assumption about whether the manager has processed its own barrier
  // departure yet.
  KnowledgeLog::serialize_vt(w, gc_floor_snapshot());
  KnowledgeLog::serialize_records(w, delta);
  rpc_call(mgr, kSemaSignal, w.take());  // kSemaAck
}

void Node::on_sema_wait(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint32_t sema_id = r.u32();
  VectorTime vt = KnowledgeLog::deserialize_vt(r);
  SemaMgrState& S = mgr_.semas[sema_id];
  if (S.count > 0) {
    --S.count;
    ByteWriter w;
    KnowledgeLog::serialize_records(w, mgr_delta_since(vt));
    sim::Message grant;
    grant.type = kSemaGrant;
    grant.dst = m.src;
    grant.seq = m.seq;
    grant.payload = w.take();
    send_service(std::move(grant), m.arrive_ts_ns);
  } else {
    S.waiters.push_back({m.src, std::move(vt), m.seq});
  }
}

void Node::on_sema_signal(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint32_t sema_id = r.u32();
  mgr_gc_to(KnowledgeLog::deserialize_vt(r));
  mgr_.log.merge(KnowledgeLog::deserialize_records(r));
  SemaMgrState& S = mgr_.semas[sema_id];
  if (!S.waiters.empty()) {
    SemaWaiter wtr = std::move(S.waiters.front());
    S.waiters.pop_front();
    ByteWriter w;
    KnowledgeLog::serialize_records(w, mgr_delta_since(wtr.vt));
    sim::Message grant;
    grant.type = kSemaGrant;
    grant.dst = wtr.node;
    grant.seq = wtr.rpc_seq;
    grant.payload = w.take();
    send_service(std::move(grant), m.arrive_ts_ns);
  } else {
    ++S.count;
  }
  sim::Message ack;
  ack.type = kSemaAck;
  ack.dst = m.src;
  ack.seq = m.seq;
  send_service(std::move(ack), m.arrive_ts_ns);
}

// ---------------------------------------------------------------------------
// Condition variables
// ---------------------------------------------------------------------------

void Node::cond_wait(std::uint32_t lock_id, std::uint32_t cond_id) {
  NOW_LOG(kDebug, "node %u: cond_wait(%u,%u) begin", id_, lock_id, cond_id);
  sync_cpu();
  gc_poll();
  stats_.cond_ops.fetch_add(1, std::memory_order_relaxed);
  close_interval();
  const bool lock_push = rt_.config().lock_push_enabled();
  if (lock_push) {
    // cond_wait releases the lock: fold and judge the ending critical
    // section exactly as lock_release does, before any grant can be built
    // from this release.
    held_locks_.erase(
        std::remove(held_locks_.begin(), held_locks_.end(), lock_id),
        held_locks_.end());
    lock_push_fold(lock_id);
    lock_push_judge(lock_id);
  }

  // Register at the manager FIRST: the wait message reaches the manager's
  // mailbox before any signal that the lock's next holder could issue, which
  // is what makes release-and-wait atomic (no lost wakeups).
  const std::uint32_t mgr = rt_.topology().lock_manager(lock_id);
  auto delta = take_delta_for(mgr, Cache::kMgrLog, nullptr);
  ByteWriter w;
  w.u32(lock_id);
  w.u32(cond_id);
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    KnowledgeLog::serialize_vt(w, log_.vt());
    KnowledgeLog::serialize_vt(w, gc_floor_applied_);  // see sema_signal
  }
  KnowledgeLog::serialize_records(w, delta);
  // On a perfect wire "reaches the mailbox first" holds by construction:
  // send_compute delivers synchronously, so the registration is queued
  // before we release the lock below.  On a lossy wire it does not — the
  // registration can be dropped and retransmitted milliseconds later, after
  // the released lock was granted onward and the next holder's signal
  // already hit the manager (a signal with no waiter is a legal noop, so
  // the wakeup is simply lost and we block forever).  When the reliability
  // channel is armed, turn the registration into an rpc: hold the lock
  // until the manager confirms we are on the queue (kCondWaitAck), exactly
  // the request-response shape TreadMarks' UDP protocol gave every message.
  const bool ack_registration =
      rt_.config().chaos_enabled() || rt_.config().net_reliable;
  const std::uint64_t tok = ack_registration ? rpc_.begin() : 0;
  sim::Message m;
  m.type = kCondWait;
  m.dst = mgr;
  m.seq = tok;
  m.payload = w.take();
  send_compute(std::move(m));
  if (ack_registration) {
    sim::Message ack = rpc_.wait(tok);
    arrive(ack);
  }

  // Now release the lock locally so other threads can enter the critical
  // section and change the condition.
  std::optional<PendingGrant> pending;
  {
    std::lock_guard<std::mutex> lock(lock_client_mu_);
    LockClientState& st = lock_client_[lock_id];
    NOW_CHECK(st.held) << "cond_wait outside the critical section";
    st.held = false;
    st.awaiting = true;
    if (st.pending) {
      pending = std::move(st.pending);
      st.pending.reset();
      st.cached = false;
    }
  }
  if (pending)
    grant_lock(lock_id, pending->requester, pending->vt, 0, /*from_service=*/false);

  // Block until a signal re-routes the lock to us.
  sim::Message grant = lock_grant_slot_.take();
  const std::uint32_t granted = consume_lock_grant(grant);
  NOW_CHECK_EQ(granted, lock_id);
  {
    std::lock_guard<std::mutex> lock(lock_client_mu_);
    LockClientState& st = lock_client_[lock_id];
    st.held = true;
    st.cached = true;
    st.awaiting = false;
  }
  if (lock_push) {
    held_locks_.push_back(lock_id);
    cs_touched_[lock_id].clear();
  }
  NOW_LOG(kDebug, "node %u: cond_wait(%u,%u) woke", id_, lock_id, cond_id);
}

void Node::cond_notify(std::uint32_t lock_id, std::uint32_t cond_id, bool broadcast) {
  sync_cpu();
  gc_poll();
  stats_.cond_ops.fetch_add(1, std::memory_order_relaxed);
  // The signal itself is not a release of the lock, but the manager's later
  // grants are built from its log, so ship our release chain along.
  const std::uint32_t mgr = rt_.topology().lock_manager(lock_id);
  close_interval();
  auto delta = take_delta_for(mgr, Cache::kMgrLog, nullptr);
  ByteWriter w;
  w.u32(lock_id);
  w.u32(cond_id);
  KnowledgeLog::serialize_vt(w, gc_floor_snapshot());  // see sema_signal
  KnowledgeLog::serialize_records(w, delta);
  sim::Message m;
  m.type = broadcast ? kCondBroadcast : kCondSignal;
  m.dst = mgr;
  m.payload = w.take();
  send_compute(std::move(m));
}

void Node::cond_signal(std::uint32_t lock_id, std::uint32_t cond_id) {
  cond_notify(lock_id, cond_id, /*broadcast=*/false);
}

void Node::cond_broadcast(std::uint32_t lock_id, std::uint32_t cond_id) {
  cond_notify(lock_id, cond_id, /*broadcast=*/true);
}

void Node::on_cond_wait(sim::Message&& m) {
  NOW_LOG(kDebug, "node %u MGR: cond_wait from %u", id_, m.src);
  ByteReader r(m.payload);
  const std::uint32_t lock_id = r.u32();
  const std::uint32_t cond_id = r.u32();
  VectorTime vt = KnowledgeLog::deserialize_vt(r);
  mgr_gc_to(KnowledgeLog::deserialize_vt(r));
  mgr_.log.merge(KnowledgeLog::deserialize_records(r));
  mgr_.conds[cond_key(lock_id, cond_id)].push_back({m.src, std::move(vt)});
  // Confirm the registration when the reliability channel is armed (see
  // cond_wait): the waiter holds the lock until this lands, so no signal
  // can precede its queue entry.  Off the chaos/reliable path the wire is
  // synchronous and the ack would be pure overhead — the knobs-off message
  // flow stays byte-identical.
  if (rt_.config().chaos_enabled() || rt_.config().net_reliable) {
    sim::Message ack;
    ack.type = kCondWaitAck;
    ack.dst = m.src;
    ack.seq = m.seq;
    send_service(std::move(ack), m.arrive_ts_ns);
  }
}

void Node::on_cond_signal(sim::Message&& m, bool broadcast) {
  ByteReader r(m.payload);
  const std::uint32_t lock_id = r.u32();
  const std::uint32_t cond_id = r.u32();
  mgr_gc_to(KnowledgeLog::deserialize_vt(r));
  mgr_.log.merge(KnowledgeLog::deserialize_records(r));
  NOW_LOG(kDebug, "node %u MGR: cond_%s from %u (waiters=%zu)", id_,
          broadcast ? "broadcast" : "signal", m.src,
          mgr_.conds[cond_key(lock_id, cond_id)].size());
  auto& q = mgr_.conds[cond_key(lock_id, cond_id)];
  // "cond_signal has no effect if no thread is waiting" (paper, Sec. 3.2.3).
  std::size_t n = broadcast ? q.size() : std::min<std::size_t>(1, q.size());
  for (std::size_t i = 0; i < n; ++i) {
    CondWaiter wtr = std::move(q.front());
    q.pop_front();
    mgr_route_lock(lock_id, wtr.node, wtr.vt, m.arrive_ts_ns);
  }
}

// ---------------------------------------------------------------------------
// Flush (retained for the ablation study)
// ---------------------------------------------------------------------------

void Node::flush() {
  sync_cpu();
  gc_poll();
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  close_interval();

  // 2(n-1) messages: a notice to every other node, each acknowledged — the
  // cost the paper's Section 3.2.4 argues against.
  struct Call {
    std::uint64_t tok;
  };
  std::vector<Call> calls;
  for (std::uint32_t peer = 0; peer < num_nodes_; ++peer) {
    if (peer == id_) continue;
    // Cut-to-enqueue ordering vs a concurrent service-thread grant to the
    // same peer (see grant_lock).
    std::lock_guard<std::mutex> order(delta_send_mu_[peer]);
    auto delta = take_delta_for(peer, Cache::kNodeLog, nullptr);
    ByteWriter w;
    KnowledgeLog::serialize_records(w, delta);
    const std::uint64_t tok = rpc_.begin();
    sim::Message m;
    m.type = kFlushNotice;
    m.dst = peer;
    m.seq = tok;
    m.payload = w.take();
    send_compute(std::move(m));
    calls.push_back({tok});
  }
  for (const Call& c : calls) {
    sim::Message ack = rpc_.wait(c.tok);
    arrive(ack);
  }
}

// ---------------------------------------------------------------------------
// Fork / join
// ---------------------------------------------------------------------------

void Node::fork_slaves(ForkFn fn, const void* arg, std::size_t arg_size) {
  sync_cpu();
  close_interval();
  // Fork is a barrier-free release point: nothing is pushed here, so the
  // push pass's candidate list must not accumulate across regions.
  epoch_dirty_.clear();
  // The fork after a join is a barrier-equivalent reclamation point: the
  // master merged every slave's records at the join, so its vector time
  // dominates the whole cluster's — and the fork deltas below bring every
  // slave up to exactly it.  Piggyback it as a GC floor: each slave applies
  // it on its compute thread before the region body runs (so its validation
  // fetches are served before it can join), and the master applies it here.
  VectorTime floor;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    floor = log_.vt();
  }
  for (std::uint32_t slave = 0; slave < num_nodes_; ++slave) {
    if (slave == id_) continue;
    // Cut-to-enqueue ordering vs a concurrent service-thread grant to the
    // same peer (see grant_lock).
    std::lock_guard<std::mutex> order(delta_send_mu_[slave]);
    auto delta = take_delta_for(slave, Cache::kNodeLog, nullptr);
    ByteWriter w;
    w.u64(reinterpret_cast<std::uint64_t>(fn));
    w.bytes(arg, arg_size);
    KnowledgeLog::serialize_vt(w, floor);
    KnowledgeLog::serialize_records(w, delta);
    sim::Message m;
    m.type = kFork;
    m.dst = slave;
    m.payload = w.take();
    send_compute(std::move(m));
  }
  if (rt_.config().gc_fork_join) gc_at_barrier(floor);
}

void Node::join_slaves() {
  // Join records were already merged by the service thread on receipt (see
  // handle_message); here the master only synchronizes time.
  for (std::uint32_t i = 0; i + 1 < num_nodes_; ++i) {
    sim::Message m = join_slot_.take();
    arrive(m);
  }
}

void Node::shutdown_slaves() {
  for (std::uint32_t slave = 0; slave < num_nodes_; ++slave) {
    if (slave == id_) continue;
    sim::Message m;
    m.type = kShutdown;
    m.dst = slave;
    send_compute(std::move(m));
  }
}

bool Node::slave_serve_one(Tmk& tmk) {
  sim::Message m = fork_slot_.take();
  if (m.type == kShutdown) return false;

  // Fork records were already merged by the service thread on receipt.
  ByteReader r(m.payload);
  auto fn = reinterpret_cast<ForkFn>(r.u64());
  std::vector<std::uint8_t> arg = r.bytes();
  const VectorTime fork_floor = KnowledgeLog::deserialize_vt(r);
  arrive(m);
  gc_poll();

  // Fork-point GC (compute thread, before the region body): with the fork
  // delta merged, this node's knowledge dominates the piggybacked floor.
  // The validation fetches are synchronous, so they are served before this
  // slave can run the region and join — which is what lets every node
  // reclaim its own ≤-previous-floor diffs at the *next* fork safely.
  if (rt_.config().gc_fork_join) gc_at_barrier(fork_floor);

  fn(tmk, arg.data(), arg.size());

  sync_cpu();
  close_interval();
  epoch_dirty_.clear();  // join: barrier-free release point, see fork_slaves
  const std::uint32_t master = rt_.topology().master_node();
  sim::Message join;
  {
    // Cut-to-enqueue ordering vs a concurrent service-thread grant to the
    // same peer (see grant_lock).
    std::lock_guard<std::mutex> order(delta_send_mu_[master]);
    auto delta = take_delta_for(master, Cache::kNodeLog, nullptr);
    ByteWriter w;
    KnowledgeLog::serialize_records(w, delta);
    join.type = kJoin;
    join.dst = master;
    join.payload = w.take();
    send_compute(std::move(join));
  }
  return true;
}

void Node::debug_dump() {
  std::lock_guard<std::mutex> lock(lock_client_mu_);
  for (auto& [id, st] : lock_client_) {
    std::fprintf(stderr,
                 "[dump] node %u lock %u: held=%d cached=%d awaiting=%d pending=%s\n",
                 id_, id, st.held, st.cached, st.awaiting,
                 st.pending ? std::to_string(st.pending->requester).c_str() : "-");
  }
  for (auto& [id, L] : mgr_.locks)
    std::fprintf(stderr, "[dump] node %u MGR lock %u: ever=%d tail=%u\n", id_, id,
                 L.ever_requested, L.tail);
  for (auto& [key, q] : mgr_.conds)
    std::fprintf(stderr, "[dump] node %u MGR cond (%u,%u): %zu waiters\n", id_,
                 static_cast<std::uint32_t>(key >> 32),
                 static_cast<std::uint32_t>(key), q.size());
}

// ---------------------------------------------------------------------------
// Shared heap allocation
// ---------------------------------------------------------------------------

std::uint64_t Node::shared_malloc(std::size_t bytes, std::size_t align) {
  sync_cpu();
  ByteWriter w;
  w.u64(bytes);
  w.u64(align);
  sim::Message reply = rpc_call(rt_.topology().alloc_server(), kAllocRequest, w.take());
  ByteReader r(reply.payload);
  return r.u64();
}

void Node::shared_free(std::uint64_t offset) {
  sync_cpu();
  ByteWriter w;
  w.u64(offset);
  rpc_call(rt_.topology().alloc_server(), kFreeRequest, w.take());
}

}  // namespace now::tmk
