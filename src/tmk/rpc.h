// Blocking rendezvous helpers between a node's compute thread and its
// protocol service thread.
//
// The compute thread issues requests and blocks; the service thread routes
// matching replies back.  This is the user-level analogue of TreadMarks'
// "request handler runs at SIGIO while the application blocks in the page
// fault handler".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "simnet/message.h"

namespace now::tmk {

// Seq-matched replies; supports several outstanding requests (a page fetch
// requests diffs from every writer in parallel).
class RpcClient {
 public:
  std::uint64_t begin() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t seq = next_seq_++;
    pending_.emplace(seq, std::nullopt);
    return seq;
  }

  sim::Message wait(std::uint64_t seq) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = pending_.find(seq);
    NOW_CHECK(it != pending_.end()) << "rpc wait without begin";
    cv_.wait(lock, [&] { return it->second.has_value(); });
    sim::Message m = std::move(*it->second);
    pending_.erase(it);
    return m;
  }

  void fulfill(std::uint64_t seq, sim::Message&& m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(seq);
      NOW_CHECK(it != pending_.end()) << "unmatched rpc reply seq " << seq;
      it->second = std::move(m);
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, std::optional<sim::Message>> pending_;
};

// Single-slot wakeup for unsolicited messages the compute thread blocks on
// (lock grants, the next fork).
class WaitSlot {
 public:
  void post(sim::Message&& m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(m));
    }
    cv_.notify_all();
  }

  sim::Message take() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty(); });
    sim::Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<sim::Message> queue_;
};

}  // namespace now::tmk
