// Blocking rendezvous helpers between a node's compute thread and its
// protocol service thread.
//
// The compute thread issues requests and blocks; the service thread routes
// matching replies back.  This is the user-level analogue of TreadMarks'
// "request handler runs at SIGIO while the application blocks in the page
// fault handler".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "common/check.h"
#include "simnet/message.h"

namespace now::tmk {

// Thrown out of a poisoned rendezvous: some *other* node died, its reply
// will never come, and the compute thread must unwind so the runtime can
// roll the run back (or report a clean failure).  May propagate through a
// SIGSEGV frame — fetch_and_apply runs inside the fault handler — which is
// why the build carries -fnon-call-exceptions.
struct NodeDownError : std::runtime_error {
  explicit NodeDownError(std::uint32_t victim_id)
      : std::runtime_error("peer node down"), victim(victim_id) {}
  std::uint32_t victim;
};

// Thrown by the crash-injection site on the victim itself: this node is the
// one dying.  Distinct from NodeDownError so the runtime can tell the
// scripted death from a collateral unwind.
struct NodeCrashedError : std::runtime_error {
  NodeCrashedError() : std::runtime_error("injected node crash") {}
};

// Seq-matched replies; supports several outstanding requests (a page fetch
// requests diffs from every writer in parallel).
//
// Poisoning: when the service thread learns a peer died, every pending and
// future wait must fail — the reply may simply never arrive.  poison()
// wakes all waiters; a waiter whose reply already landed still gets it
// (the data is valid and keeping it reduces divergence), everyone else
// throws NodeDownError.
class RpcClient {
 public:
  std::uint64_t begin() {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_) throw NodeDownError(victim_);
    const std::uint64_t seq = next_seq_++;
    pending_.emplace(seq, std::nullopt);
    return seq;
  }

  sim::Message wait(std::uint64_t seq) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = pending_.find(seq);
    NOW_CHECK(it != pending_.end()) << "rpc wait without begin";
    cv_.wait(lock, [&] { return poisoned_ || it->second.has_value(); });
    if (!it->second.has_value()) {
      pending_.erase(it);
      throw NodeDownError(victim_);
    }
    sim::Message m = std::move(*it->second);
    pending_.erase(it);
    return m;
  }

  void fulfill(std::uint64_t seq, sim::Message&& m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(seq);
      NOW_CHECK(it != pending_.end()) << "unmatched rpc reply seq " << seq;
      it->second = std::move(m);
    }
    cv_.notify_all();
  }

  void poison(std::uint32_t victim) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      poisoned_ = true;
      victim_ = victim;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_seq_ = 1;
  bool poisoned_ = false;
  std::uint32_t victim_ = 0;
  std::unordered_map<std::uint64_t, std::optional<sim::Message>> pending_;
};

// Single-slot wakeup for unsolicited messages the compute thread blocks on
// (lock grants, the next fork).  Poisoning mirrors RpcClient: queued
// messages drain first, then take() throws NodeDownError.
class WaitSlot {
 public:
  void post(sim::Message&& m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(m));
    }
    cv_.notify_all();
  }

  sim::Message take() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return poisoned_ || !queue_.empty(); });
    if (queue_.empty()) throw NodeDownError(victim_);
    sim::Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  void poison(std::uint32_t victim) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      poisoned_ = true;
      victim_ = victim;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool poisoned_ = false;
  std::uint32_t victim_ = 0;
  std::deque<sim::Message> queue_;
};

}  // namespace now::tmk
