// The protocol service thread: TreadMarks serviced remote requests from a
// SIGIO handler; our simulated workstation dedicates a thread to the same
// duty.  Every handler is strictly non-blocking (local state + sends only),
// which is what makes the request/reply protocol deadlock-free.
#include <thread>

#include "common/bytes.h"
#include "common/log.h"
#include "tmk/arena.h"
#include "tmk/node.h"
#include "tmk/runtime.h"

namespace now::tmk {

void Node::service_main() {
  while (auto m = rt_.net().recv(id_)) {
    // A dead workstation answers nothing: once the scripted crash fired,
    // drain whatever the closed mailbox still holds and drop it.
    if (crashed_.load(std::memory_order_acquire)) continue;
    handle_message(std::move(*m));
  }
}

void Node::handle_message(sim::Message&& m) {
  switch (m.type) {
    // Replies routed back to the blocked compute thread.
    case kDiffReply:
    case kBarrierDepart:
    case kSemaAck:
    case kSemaGrant:
    case kFlushAck:
    case kAllocReply:
    case kFreeAck:
    case kCondWaitAck:
    case kCkptReply:
    case kCkptAck:
      rpc_.fulfill(m.seq, std::move(m));
      return;

    // The runtime's node-down verdict (self-addressed control message): no
    // service-overhead charge — it models the local watchdog firing, not a
    // wire arrival.
    case kNodeDown: {
      ByteReader r(m.payload);
      node_down(r.u32());
      return;
    }

    // Unsolicited wakeups for the compute thread.
    case kLockGrant:
      lock_grant_slot_.post(std::move(m));
      return;
    // Fork and join consistency records must be merged NOW, in mailbox
    // order: the sender's per-peer cache assumes everything it previously
    // shipped us has been processed before its next message.  Deferring the
    // merge to whenever the compute thread picks the slot up would let a
    // later lock grant skip records we never saw.
    case kFork: {
      ByteReader r(m.payload);
      r.u64();       // fn
      (void)r.bytes();  // args
      // The fork-point GC floor: parsed past here, applied by the compute
      // thread in slave_serve_one (its validation pass fetches and blocks,
      // which a service handler never may).
      KnowledgeLog::deserialize_vt(r);
      merge_and_invalidate(KnowledgeLog::deserialize_records(r));
      fork_slot_.post(std::move(m));
      return;
    }
    case kShutdown:
      fork_slot_.post(std::move(m));
      return;
    case kJoin: {
      ByteReader r(m.payload);
      merge_and_invalidate(KnowledgeLog::deserialize_records(r));
      join_slot_.post(std::move(m));
      return;
    }
    default:
      break;
  }

  // Requests: model the interrupt stealing CPU from this workstation, and
  // optionally jitter the host-level service order under stress testing.
  if (rt_.config().stress_service_jitter) {
    const auto us = stress_rng_.next_below(200);
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  clock_.advance_us(rt_.config().net.service_overhead_us);

  switch (m.type) {
    case kDiffRequest: on_diff_request(std::move(m)); return;
    case kUpdatePush: on_update_push(std::move(m)); return;
    case kUpdateDeny: on_update_deny(std::move(m)); return;
    case kLockPushDeny: on_lock_push_deny(std::move(m)); return;
    case kLockAcquire: on_lock_acquire(std::move(m)); return;
    case kLockForward: on_lock_forward(std::move(m)); return;
    case kBarrierArrive: on_barrier_arrive(std::move(m)); return;
    case kTreeArrive: on_tree_arrive(std::move(m)); return;
    case kTreeDepart: on_tree_depart(std::move(m)); return;
    case kSemaSignal: on_sema_signal(std::move(m)); return;
    case kSemaWait: on_sema_wait(std::move(m)); return;
    case kCondWait: on_cond_wait(std::move(m)); return;
    case kCondSignal: on_cond_signal(std::move(m), /*broadcast=*/false); return;
    case kCondBroadcast: on_cond_signal(std::move(m), /*broadcast=*/true); return;
    case kFlushNotice: on_flush_notice(std::move(m)); return;
    case kAllocRequest: on_alloc_request(std::move(m)); return;
    case kFreeRequest: on_free_request(std::move(m)); return;
    case kGcRequest: on_gc_request(std::move(m)); return;
    case kGcArrive: on_gc_arrive(std::move(m)); return;
    case kGcDepart: on_gc_depart(std::move(m)); return;
    case kCkptQuery: on_ckpt_query(std::move(m)); return;
    case kCkptCommit: on_ckpt_commit(std::move(m)); return;
    default:
      NOW_CHECK(false) << "node " << id_ << ": unknown message type " << m.type;
  }
}

void Node::on_diff_request(sim::Message&& m) {
  // Multi-page request: one message may carry the faulting page, its
  // prefetch window and (at barriers) every page the requester's GC
  // validation pass wants from this writer.
  ByteReader r(m.payload);
  const std::uint32_t epoch_tag = r.u32();
  const bool for_gc = r.u8() != 0;
  const std::uint32_t npages = r.u32();
  std::vector<std::pair<PageIndex, std::vector<std::uint32_t>>> pages;
  pages.reserve(npages);
  for (std::uint32_t p = 0; p < npages; ++p) {
    const PageIndex page = r.u32();
    const std::uint32_t n = r.u32();
    std::vector<std::uint32_t> seqs(n);
    for (auto& s : seqs) s = r.u32();
    pages.emplace_back(page, std::move(seqs));
  }

  // Copyset tracking: every fault-path request names the requester a reader
  // of each page it wants (the prefetch window included — an unconsumed
  // speculative page that gets promoted is demoted again by the reader's
  // armed probe).  GC-validation fetches are explicitly *not* readers: they
  // fetch exactly the diffs the reader never touched.
  if (!for_gc && rt_.config().update_enabled()) {
    const std::uint64_t bit = std::uint64_t{1} << m.src;
    std::lock_guard<std::mutex> lock(copyset_mu_);
    for (const auto& [page, seqs] : pages) {
      copyset_[page].epoch_readers[epoch_tag & 1] |= bit;
    }
  }

  // Materialize lazily if an interval's twin is still pending.  The page is
  // at most PROT_READ for a closed interval, so its bytes are stable.  (Done
  // before taking store_mu_: materialize_twin takes e.mu then store_mu_.)
  for (const auto& [page, seqs] : pages) {
    for (std::uint32_t seq : seqs) {
      PageEntry& e = pages_[page];
      std::lock_guard<std::mutex> lock(e.mu);
      if (e.twin_valid && e.twin.seq == seq) materialize_twin(page, e);
    }
  }

  ByteWriter w;
  std::lock_guard<std::mutex> lock(store_mu_);
  std::vector<const std::vector<DiffBytes>*> per_seq;
  std::size_t reply_size = 4;  // page count
  for (const auto& [page, seqs] : pages) {
    reply_size += 8;  // page + interval count
    for (std::uint32_t seq : seqs) {
      auto it = diff_store_.find(diff_store_key(page, seq));
      NOW_CHECK(it != diff_store_.end())
          << "node " << id_ << " asked for missing diff: page " << page
          << " interval " << seq;
      reply_size += 8;  // seq + chunk count
      for (const DiffBytes& d : it->second) reply_size += 4 + d.size();
      per_seq.push_back(&it->second);
    }
  }
  // One exact reservation for the whole reply, then straight-line appends.
  w.reserve(reply_size);
  w.u32(npages);
  std::size_t flat = 0;
  for (const auto& [page, seqs] : pages) {
    w.u32(page);
    w.u32(static_cast<std::uint32_t>(seqs.size()));
    for (std::uint32_t seq : seqs) {
      w.u32(seq);
      const std::vector<DiffBytes>& chunks = *per_seq[flat++];
      w.u32(static_cast<std::uint32_t>(chunks.size()));
      for (const DiffBytes& d : chunks) w.bytes(d.data(), d.size());
    }
  }

  sim::Message reply;
  reply.type = kDiffReply;
  reply.dst = m.src;
  reply.seq = m.seq;
  reply.payload = w.take();
  send_service(std::move(reply), m.arrive_ts_ns);
}

void Node::on_update_push(sim::Message&& m) {
  // Barrier-time update push from a writer: queue the pushed intervals for
  // the compute thread's validate pass.  Nothing touches the page tables or
  // diff caches here — only the compute thread mutates those, which is what
  // keeps the fault path's cached/needed partition valid while its lock is
  // dropped, and what keeps a push racing a pull idempotent.
  //
  // The push carries the writer's barrier index: this service thread can
  // run a full barrier ahead of its own compute thread (the writer departs,
  // sprints through its phase, and pushes for barrier k+1 while our compute
  // thread has not yet woken from barrier k), so parked pushes are queued
  // by barrier and the validate pass drains only its own barrier's.
  ByteReader r(m.payload);
  const std::uint64_t barrier_index = r.u32();
  const std::uint32_t npages = r.u32();
  std::vector<PendingPush> pending;
  pending.reserve(npages);
  for (std::uint32_t p = 0; p < npages; ++p) {
    PendingPush pp;
    pp.barrier_index = barrier_index;
    pp.page = r.u32();
    pp.writer = m.src;
    const std::uint32_t nseqs = r.u32();
    pp.seq_chunks.reserve(nseqs);
    for (std::uint32_t i = 0; i < nseqs; ++i) {
      const std::uint32_t seq = r.u32();
      const std::uint32_t nchunks = r.u32();
      std::vector<DiffBytes> chunks;
      chunks.reserve(nchunks);
      for (std::uint32_t k = 0; k < nchunks; ++k) {
        const auto [ptr, n] = r.bytes_view();
        chunks.emplace_back(ptr, ptr + n);
      }
      pp.seq_chunks.emplace_back(seq, std::move(chunks));
    }
    pending.push_back(std::move(pp));
  }
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    for (PendingPush& pp : pending) pending_pushes_.push_back(std::move(pp));
  }
}

void Node::on_update_deny(sim::Message&& m) {
  // A reader stopped touching pages we push: demote them back to invalidate
  // mode.  Re-promotion needs update_promote_epochs fresh stable epochs.
  ByteReader r(m.payload);
  const std::uint32_t npages = r.u32();
  std::lock_guard<std::mutex> lock(copyset_mu_);
  for (std::uint32_t p = 0; p < npages; ++p) {
    const PageIndex page = r.u32();
    PageCopyset& cs = copyset_[page];
    if (cs.promoted) {
      stats_.update_demotions.fetch_add(1, std::memory_order_relaxed);
      ++cs.denials;  // re-promotion backoff; see update_copyset_fold
    }
    cs.promoted = false;
    cs.stable_set = 0;
    cs.stable_epochs = 0;
  }
}

void Node::on_lock_push_deny(sim::Message&& m) {
  // A holder released the lock with our pushed pages still armed (its whole
  // critical section never touched them), or its cache budget can never
  // park them: demote the pages from the lock's protected set.  Each denial
  // doubles the touch streak required to re-admit (see lock_push_fold).
  ByteReader r(m.payload);
  const std::uint32_t lock_id = r.u32();
  const std::uint32_t npages = r.u32();
  std::lock_guard<std::mutex> lock(lock_protect_mu_);
  auto& prot = lock_protect_[lock_id];
  for (std::uint32_t p = 0; p < npages; ++p) {
    const PageIndex page = r.u32();
    LockPushStat& ps = prot[page];
    if (ps.member)
      stats_.lock_push_demotions.fetch_add(1, std::memory_order_relaxed);
    ps.member = false;
    ps.streak = 0;
    ps.untouched = 0;
    ++ps.denials;
  }
}

void Node::on_flush_notice(sim::Message&& m) {
  ByteReader r(m.payload);
  auto records = KnowledgeLog::deserialize_records(r);
  merge_and_invalidate(records);
  sim::Message reply;
  reply.type = kFlushAck;
  reply.dst = m.src;
  reply.seq = m.seq;
  send_service(std::move(reply), m.arrive_ts_ns);
}

void Node::on_alloc_request(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint64_t bytes = r.u64();
  const std::uint64_t align = r.u64();
  const std::uint64_t offset = rt_.allocator_alloc(bytes, align);
  ByteWriter w;
  w.u64(offset);
  sim::Message reply;
  reply.type = kAllocReply;
  reply.dst = m.src;
  reply.seq = m.seq;
  reply.payload = w.take();
  send_service(std::move(reply), m.arrive_ts_ns);
}

void Node::on_free_request(sim::Message&& m) {
  ByteReader r(m.payload);
  rt_.allocator_free(r.u64());
  sim::Message reply;
  reply.type = kFreeAck;
  reply.dst = m.src;
  reply.seq = m.seq;
  send_service(std::move(reply), m.arrive_ts_ns);
}

}  // namespace now::tmk
