// The protocol service thread: TreadMarks serviced remote requests from a
// SIGIO handler; our simulated workstation dedicates a thread to the same
// duty.  Every handler is strictly non-blocking (local state + sends only),
// which is what makes the request/reply protocol deadlock-free.
#include <thread>

#include "common/bytes.h"
#include "common/log.h"
#include "tmk/arena.h"
#include "tmk/node.h"
#include "tmk/runtime.h"

namespace now::tmk {

namespace {
std::uint64_t diff_key(PageIndex page, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(page) << 32) | seq;
}
}  // namespace

void Node::service_main() {
  while (auto m = rt_.net().recv(id_)) {
    handle_message(std::move(*m));
  }
}

void Node::handle_message(sim::Message&& m) {
  switch (m.type) {
    // Replies routed back to the blocked compute thread.
    case kDiffReply:
    case kBarrierDepart:
    case kSemaAck:
    case kSemaGrant:
    case kFlushAck:
    case kAllocReply:
    case kFreeAck:
      rpc_.fulfill(m.seq, std::move(m));
      return;

    // Unsolicited wakeups for the compute thread.
    case kLockGrant:
      lock_grant_slot_.post(std::move(m));
      return;
    // Fork and join consistency records must be merged NOW, in mailbox
    // order: the sender's per-peer cache assumes everything it previously
    // shipped us has been processed before its next message.  Deferring the
    // merge to whenever the compute thread picks the slot up would let a
    // later lock grant skip records we never saw.
    case kFork: {
      ByteReader r(m.payload);
      r.u64();       // fn
      (void)r.bytes();  // args
      merge_and_invalidate(KnowledgeLog::deserialize_records(r));
      fork_slot_.post(std::move(m));
      return;
    }
    case kShutdown:
      fork_slot_.post(std::move(m));
      return;
    case kJoin: {
      ByteReader r(m.payload);
      merge_and_invalidate(KnowledgeLog::deserialize_records(r));
      join_slot_.post(std::move(m));
      return;
    }
    default:
      break;
  }

  // Requests: model the interrupt stealing CPU from this workstation, and
  // optionally jitter the host-level service order under stress testing.
  if (rt_.config().stress_service_jitter) {
    const auto us = stress_rng_.next_below(200);
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  clock_.advance_us(rt_.config().net.service_overhead_us);

  switch (m.type) {
    case kDiffRequest: on_diff_request(std::move(m)); return;
    case kLockAcquire: on_lock_acquire(std::move(m)); return;
    case kLockForward: on_lock_forward(std::move(m)); return;
    case kBarrierArrive: on_barrier_arrive(std::move(m)); return;
    case kSemaSignal: on_sema_signal(std::move(m)); return;
    case kSemaWait: on_sema_wait(std::move(m)); return;
    case kCondWait: on_cond_wait(std::move(m)); return;
    case kCondSignal: on_cond_signal(std::move(m), /*broadcast=*/false); return;
    case kCondBroadcast: on_cond_signal(std::move(m), /*broadcast=*/true); return;
    case kFlushNotice: on_flush_notice(std::move(m)); return;
    case kAllocRequest: on_alloc_request(std::move(m)); return;
    case kFreeRequest: on_free_request(std::move(m)); return;
    default:
      NOW_CHECK(false) << "node " << id_ << ": unknown message type " << m.type;
  }
}

void Node::on_diff_request(sim::Message&& m) {
  // Multi-page request: one message may carry the faulting page, its
  // prefetch window and (at barriers) every page the requester's GC
  // validation pass wants from this writer.
  ByteReader r(m.payload);
  const std::uint32_t npages = r.u32();
  std::vector<std::pair<PageIndex, std::vector<std::uint32_t>>> pages;
  pages.reserve(npages);
  for (std::uint32_t p = 0; p < npages; ++p) {
    const PageIndex page = r.u32();
    const std::uint32_t n = r.u32();
    std::vector<std::uint32_t> seqs(n);
    for (auto& s : seqs) s = r.u32();
    pages.emplace_back(page, std::move(seqs));
  }

  // Materialize lazily if an interval's twin is still pending.  The page is
  // at most PROT_READ for a closed interval, so its bytes are stable.  (Done
  // before taking store_mu_: materialize_twin takes e.mu then store_mu_.)
  for (const auto& [page, seqs] : pages) {
    for (std::uint32_t seq : seqs) {
      PageEntry& e = pages_[page];
      std::lock_guard<std::mutex> lock(e.mu);
      if (e.twin_valid && e.twin.seq == seq) materialize_twin(page, e);
    }
  }

  ByteWriter w;
  std::lock_guard<std::mutex> lock(store_mu_);
  std::vector<const std::vector<DiffBytes>*> per_seq;
  std::size_t reply_size = 4;  // page count
  for (const auto& [page, seqs] : pages) {
    reply_size += 8;  // page + interval count
    for (std::uint32_t seq : seqs) {
      auto it = diff_store_.find(diff_key(page, seq));
      NOW_CHECK(it != diff_store_.end())
          << "node " << id_ << " asked for missing diff: page " << page
          << " interval " << seq;
      reply_size += 8;  // seq + chunk count
      for (const DiffBytes& d : it->second) reply_size += 4 + d.size();
      per_seq.push_back(&it->second);
    }
  }
  // One exact reservation for the whole reply, then straight-line appends.
  w.reserve(reply_size);
  w.u32(npages);
  std::size_t flat = 0;
  for (const auto& [page, seqs] : pages) {
    w.u32(page);
    w.u32(static_cast<std::uint32_t>(seqs.size()));
    for (std::uint32_t seq : seqs) {
      w.u32(seq);
      const std::vector<DiffBytes>& chunks = *per_seq[flat++];
      w.u32(static_cast<std::uint32_t>(chunks.size()));
      for (const DiffBytes& d : chunks) w.bytes(d.data(), d.size());
    }
  }

  sim::Message reply;
  reply.type = kDiffReply;
  reply.dst = m.src;
  reply.seq = m.seq;
  reply.payload = w.take();
  send_service(std::move(reply), m.arrive_ts_ns);
}

void Node::on_flush_notice(sim::Message&& m) {
  ByteReader r(m.payload);
  auto records = KnowledgeLog::deserialize_records(r);
  merge_and_invalidate(records);
  sim::Message reply;
  reply.type = kFlushAck;
  reply.dst = m.src;
  reply.seq = m.seq;
  send_service(std::move(reply), m.arrive_ts_ns);
}

void Node::on_alloc_request(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint64_t bytes = r.u64();
  const std::uint64_t align = r.u64();
  const std::uint64_t offset = rt_.allocator_alloc(bytes, align);
  ByteWriter w;
  w.u64(offset);
  sim::Message reply;
  reply.type = kAllocReply;
  reply.dst = m.src;
  reply.seq = m.seq;
  reply.payload = w.take();
  send_service(std::move(reply), m.arrive_ts_ns);
}

void Node::on_free_request(sim::Message&& m) {
  ByteReader r(m.payload);
  rt_.allocator_free(r.u64());
  sim::Message reply;
  reply.type = kFreeAck;
  reply.dst = m.src;
  reply.seq = m.seq;
  send_service(std::move(reply), m.arrive_ts_ns);
}

}  // namespace now::tmk
