// One simulated workstation: its page table, consistency metadata, manager
// duties, compute-thread operations and protocol service thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "simnet/clock.h"
#include "simnet/network.h"
#include "tmk/config.h"
#include "tmk/diff.h"
#include "tmk/intervals.h"
#include "tmk/msgs.h"
#include "tmk/page.h"
#include "tmk/rpc.h"
#include "tmk/stats.h"

namespace now::tmk {

class Arena;
class DsmRuntime;
struct Tmk;

// Signature of a forked parallel-region function.  `arg` points at a blob of
// bytes copied through the fork message (the paper's "structure of pointers
// to shared variables and initial values of firstprivate variables").
using ForkFn = void (*)(Tmk&, const void* arg, std::size_t arg_size);

class Node {
 public:
  Node(DsmRuntime& rt, std::uint32_t id);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::uint32_t id() const { return id_; }

  // ---- lifecycle (called by the runtime) ----
  void start_service();
  void join_service();          // after the network is closed
  void bind_compute_thread();   // binds TLS so gptr resolves to this region

  // ---- compute-thread operations (the Tmk_* API) ----
  void barrier();
  void lock_acquire(std::uint32_t lock_id);
  void lock_release(std::uint32_t lock_id);
  void sema_wait(std::uint32_t sema_id);
  void sema_signal(std::uint32_t sema_id);
  void cond_wait(std::uint32_t lock_id, std::uint32_t cond_id);
  void cond_signal(std::uint32_t lock_id, std::uint32_t cond_id);
  void cond_broadcast(std::uint32_t lock_id, std::uint32_t cond_id);
  void cond_notify(std::uint32_t lock_id, std::uint32_t cond_id, bool broadcast);
  void flush();
  std::uint64_t shared_malloc(std::size_t bytes, std::size_t align);
  void shared_free(std::uint64_t offset);

  // Fork-join, master side.
  void fork_slaves(ForkFn fn, const void* arg, std::size_t arg_size);
  void join_slaves();
  void shutdown_slaves();
  // Fork-join, slave side: returns false when a shutdown was received.
  bool slave_serve_one(Tmk& tmk);

  // ---- fault path (called from the SIGSEGV handler on the compute thread) ----
  void handle_fault(void* addr);

  sim::VirtualClock& clock() { return clock_; }
  DsmStats& stats() { return stats_; }

  // Consistency-metadata footprint, for the barrier-GC plateau tests and
  // benches.  Taken under the owning mutexes; the manager-duty log is
  // deliberately excluded (service-thread-owned, lock-free) — its reclaim
  // activity shows up in the gc_records_reclaimed counter instead.
  struct MetaFootprint {
    std::size_t log_records = 0;        // knowledge-log interval records held
    std::size_t log_bytes = 0;          // serialized bytes of those records
    std::size_t diff_store_entries = 0; // (page, seq) diff entries held
    std::size_t diff_store_bytes = 0;   // bytes across those entries
    std::size_t diff_cache_bytes = 0;   // requester-side cache bytes (pins
                                        // included) across all pages
    std::size_t diff_cache_pinned_bytes = 0;  // subset held by pinned entries
                                              // (GC prefetches + promotions)
    std::size_t relay_bytes = 0;        // subset of diff_cache_bytes retained
                                        // for the migratory lock relay
    // The metric the on-demand GC ceiling bounds: every byte of consistency
    // metadata that grows with synchronization history.
    std::size_t total_bytes() const {
      return log_bytes + diff_store_bytes + diff_cache_bytes;
    }
  };
  MetaFootprint meta_footprint();
  // Prints lock-client and manager state to stderr (deadlock forensics).
  void debug_dump();
  // Charge accumulated compute time to the virtual clock.
  void sync_cpu();

 private:
  // ---------- consistency engine (compute thread) ----------
  // Ends the open interval at a release: appends the interval record with the
  // dirty pages as write notices and write-protects them (diffs materialize
  // lazily).  No-op when nothing was written.
  void close_interval();
  // Learns foreign interval records: appends unapplied notices and
  // invalidates local copies (acquire side of lazy invalidate RC).
  void merge_and_invalidate(const std::vector<IntervalRecordPtr>& recs);
  // Fetches and applies all unapplied diffs for a page (fault path).
  void fetch_and_apply(PageIndex page, PageEntry& entry);
  // Computes diff(twin, current) into the diff store and drops the twin.
  // Caller holds entry.mu; page must be readable.
  void materialize_twin(PageIndex page, PageEntry& entry);
  void invalidate_page(PageIndex page, PageEntry& entry);  // holds entry.mu

  // ---------- barrier-time GC (compute thread, on barrier departure) ----------
  // Applies the manager's piggybacked minimal vector time: truncates the
  // knowledge log and sent-caches to the floor, ensures every write notice at
  // or below it has its diff locally (pinned in the page diff cache, or
  // applied eagerly when the cache is disabled), and reclaims own diff-store
  // entries from the previous epoch's floor (one barrier delayed, so
  // in-flight validation fetches are always served).
  void gc_at_barrier(const VectorTime& floor);
  // The validation pass of gc_at_barrier: fetch + pin/apply old diffs.
  void gc_validate_pages(const VectorTime& floor);
  // Floor most recently applied by gc_at_barrier (piggybacked on messages
  // whose records merge into a peer's manager log, so the sparse manager log
  // can raise its own floor before merging).
  VectorTime gc_floor_snapshot();
  // Raises the manager-duty log's floor to a sender's piggybacked floor
  // before merging its delta (service thread only).
  void mgr_gc_to(const VectorTime& floor);
  // Applies a floor learned off the lock-grant chain (compute thread): raise
  // the knowledge-log floor, sent-caches and validate pages — but never the
  // own-diff reclamation bounds, which only move at barrier/fork points
  // whose global alignment proves no validation fetch is still in flight.
  // Fast no-op when the floor does not advance past the applied one (the
  // common case: floors are established at sync points every node attends).
  void gc_raise_floor(const VectorTime& floor);

  // ---------- on-demand GC exchange (ceiling-triggered, barrier-free) ----------
  // A node whose metadata footprint crosses meta_ceiling_bytes cannot wait
  // for the next barrier — a barrier-free lock loop may never reach one.  It
  // asks the tree root (kGcRequest) to run a dedicated all-node exchange on
  // the combining-tree fabric: the root solicits every node, each snapshots
  // its (log vector time, validated floor) and folds its children's
  // kGcArrive replies by vt_min, the root folds the global minima and fans
  // kGcDepart back down.  The departure carries two vectors:
  //  - floor: min over nodes of the log vt — every record at or below it is
  //    globally known, exactly the barrier-GC invariant, so each node
  //    truncates via the existing gc_raise_floor path;
  //  - ack:   min over nodes of the *validated* floor — every node has
  //    already resolved (pinned or applied) all notices at or below it, so
  //    the writer may destroy the diff sources themselves.  This replaces
  //    the barrier path's one-epoch delay: instead of waiting a barrier to
  //    prove no validation fetch is in flight, the ack proves the fetches
  //    already finished.
  // Handlers run on the service thread and never block; the results are
  // parked and applied by the compute thread at its next sync operation
  // (gc_poll), keeping the page diff caches compute-thread-only.

  // O(1) ceiling metric: log bytes + diff store bytes + diff cache bytes.
  std::size_t meta_bytes();
  // Compute-thread entry hook at every sync operation: applies a parked
  // kGcDepart (truncate + validate + reclaim own store to the ack) and
  // initiates a new exchange if the footprint still exceeds the ceiling.
  void gc_poll();
  // Destroys own diff-store entries with seq <= ack_seq (compute thread;
  // raises gc_reclaimed_seq_ only — gc_drop_seq_ stays barrier-owned).
  void gc_reclaim_store_to(std::uint32_t ack_seq);
  // Relay pruning: remembers that `page` holds relay-retained chunks, and
  // drops retained droppable chunks covered by this node's applied floor —
  // validation resolved those notices and every future grant delta is cut
  // above the floor, so they can never be served nor relayed again.
  void relay_note(PageIndex page);
  void relay_prune(const VectorTime& floor);
  // Service-thread handlers for the exchange messages.
  void on_gc_request(sim::Message&& m);
  void on_gc_arrive(sim::Message&& m);
  void on_gc_depart(sim::Message&& m);
  // Snapshot own (log vt, validated floor), solicit children, and advance.
  void gc_exchange_begin(std::uint32_t gen, std::uint64_t base_ts);
  // Once all children folded: send kGcArrive up (interior) or establish the
  // global floor/ack and start the departure wave (root).
  void gc_exchange_advance(std::uint64_t base_ts);
  // Departure at one node: raise the manager log's floor immediately,
  // forward to children, park (floor, ack) for the compute thread.
  void gc_depart_apply(std::uint32_t gen, const VectorTime& floor,
                       const VectorTime& ack, std::uint64_t base_ts);
  // delta_since against the sparse manager log, cutting from the maximum of
  // `since` and the log's own floor: an exchange floor can pass a parked
  // waiter's stale vector time (a cond waiter registers before the release
  // that closes the interval), and the skipped records are by definition
  // globally known — the waiter already holds them.
  std::vector<IntervalRecordPtr> mgr_delta_since(const VectorTime& since);

  // ---------- migratory lock push (on the kLockGrant chain) ----------
  // Fault-time attribution: records the faulted page against every lock the
  // compute thread currently holds (compute thread only; builds the per-CS
  // touch sets the fold below consumes).
  void lock_push_note_touch(PageIndex page);
  // At release: folds the ending critical section's touch set into the
  // lock's protected-set stats — touched pages (re)gain membership, member
  // pages untouched for lock_push_probe consecutive own CSes decay out.
  void lock_push_fold(std::uint32_t lock_id);
  // At release: pages this acquire applied *armed* that the whole critical
  // section never touched are dead pushes — deny the pushers (kLockPushDeny)
  // so the pages demote from their protected sets.
  void lock_push_judge(std::uint32_t lock_id);
  // One kLockPushDeny to `pusher` naming the pages whose pushes were dead.
  void send_lock_push_deny(std::uint32_t lock_id, std::uint32_t pusher,
                           const std::vector<PageIndex>& pages);
  // Granter side: appends the push section to a kLockGrant payload — diffs
  // of this node's own records in `delta` for the lock's member pages,
  // budgeted by lock_push_bytes, with the whole-page-image fallback when a
  // diff outgrows the page (guarded by requester-knowledge domination).
  // Runs on the compute thread (release with a pending requester) or the
  // service thread (cached grant on kLockForward).
  void append_lock_push(ByteWriter& w, std::uint32_t lock_id,
                        const VectorTime& req_vt,
                        const std::vector<IntervalRecordPtr>& delta);
  // Requester side, inside lock_acquire/cond_wait on the compute thread:
  // parses the grant's push section, parks the chunks in the page diff
  // caches ((writer, seq)-keyed — idempotent against a concurrent pull) and
  // validates or arms fully covered pages before the critical section runs.
  void apply_lock_push(std::uint32_t lock_id, std::uint32_t writer,
                       ByteReader& r);
  // Shared tail of lock_acquire and cond_wait: merge the grant's records,
  // apply its push section and raise the piggybacked floor.
  std::uint32_t consume_lock_grant(sim::Message& grant);

  // ---------- adaptive update protocol (compute thread, inside barrier()) ----------
  // Reader side, at barrier entry: consume the pages pushed last epoch —
  // clear touched bits, and send kUpdateDeny for pushes that went untouched
  // a whole epoch (demotion).
  void update_scan_demote();
  // Writer side, before the barrier arrival is sent: push the epoch's diffs
  // for update-promoted pages to their stable readers, one batched
  // kUpdatePush per reader, tagged with this barrier's index.  Sent before
  // kBarrierArrive, so mailbox FIFO guarantees every reader's service
  // thread parks the chunks before its barrier departure can be delivered.
  void update_push_promoted(std::uint64_t barrier_index);
  // Reader side, after the departure's records are merged: apply pages whose
  // wanted intervals the pushed chunks fully cover, validating (or arming)
  // them so the post-barrier fault never happens.  Consumes only pushes
  // tagged with this barrier's index — a faster writer may already have
  // departed and pushed for the *next* barrier, and those pushes must wait
  // for the records they describe.
  void update_validate_pushed(std::uint64_t barrier_index);
  // Writer side, after departure: fold the finished epoch's observed readers
  // into each page's copyset and promote pages stable for
  // update_promote_epochs consecutive epochs.  `epoch` is the 0-based index
  // of the epoch that just ended (requests are tagged with it, making the
  // fold deterministic under service-thread timing).
  void update_copyset_fold(std::uint64_t epoch);
  // One kUpdateDeny per writer naming the pages whose pushes this reader
  // wants stopped (demotion scan + budget-rejected pushes).
  void send_update_denies(const std::map<std::uint32_t, std::vector<PageIndex>>& deny);

  // ---------- crash injection + checkpoint/rollback (node_ckpt.cpp) ----------
  // Compute-thread hook at every sync operation (and at the GC-exchange
  // apply/initiate sites inside gc_poll): first unwinds promptly if a peer's
  // death was announced (NodeDownError), then — if this node is the scripted
  // victim and its sync-point counter just hit net_crash_at — kills the node:
  // links go dark (Network::fail_node), the service thread starts dropping
  // traffic, and NodeCrashedError unwinds the compute thread.  The crash
  // fires once per *run*, including across recoveries (DsmRuntime::claim_crash).
  void maybe_crash();
  // Service thread, on the runtime's kNodeDown verdict: poisons every
  // rendezvous so the compute thread unwinds wherever it is blocked.
  void node_down(std::uint32_t victim);
  // Compute thread, at the end of barrier(): every ckpt_every-th barrier
  // stages this node's slice of the heap (incremental against the durable
  // image), the sema counts it manages and — on the alloc server — the
  // allocator, then commits to the barrier root.  The commit round is itself
  // a barrier: nobody proceeds until the root promoted the epoch, so no
  // page mutates while peers are still staging.
  void ckpt_at_barrier(std::uint64_t epoch_done);
  void on_ckpt_query(sim::Message&& m);   // service: stage own sema counts
  void on_ckpt_commit(sim::Message&& m);  // service, root: park + promote at N
  // Recovery (runtime, while the cluster is quiesced): installs one durable
  // page image as this node's initial state — content resident, kReadOnly,
  // ever_valid — exactly what a fresh runtime whose heap started with these
  // bytes would look like after a first read fault.
  void rehydrate_page(PageIndex page, const unsigned char* data);

  // ---------- messaging ----------
  // Batched diff fetch, shared by the fault path (and its prefetch window)
  // and the GC validation pass (the kDiffRequest wire layout lives in
  // exactly one requester).  Wants are grouped into one pipelined multi-page
  // request per writer; the returned chunk views point into the reply
  // payloads appended to `replies`, which the caller keeps alive for as long
  // as the views are used.  Counts the round trips in diff_fetches.
  using DiffChunkView = std::pair<const std::uint8_t*, std::size_t>;
  using DiffKey = std::tuple<PageIndex, std::uint32_t, std::uint32_t>;
  struct DiffWant {
    PageIndex page = 0;
    std::uint32_t writer = 0;
    std::vector<std::uint32_t> seqs;
  };
  std::map<DiffKey, std::vector<DiffChunkView>> fetch_diffs(
      const std::vector<DiffWant>& wants, std::vector<sim::Message>& replies,
      bool for_gc = false);

  enum class Cache { kNodeLog, kMgrLog };
  // Delta of interval records the peer's node/manager log is missing,
  // advancing the corresponding sent-cache.  `extra` (if given) is the
  // receiver's declared vector time; records below it are skipped.
  std::vector<IntervalRecordPtr> take_delta_for(std::uint32_t peer, Cache which,
                                                const VectorTime* extra);
  void send_compute(sim::Message&& m);  // stamps the compute clock
  void send_service(sim::Message&& m, std::uint64_t base_ts);  // service reply
  sim::Message rpc_call(std::uint32_t dst, std::uint16_t type,
                        std::vector<std::uint8_t> payload);
  // Advances the clock past a blocking receive.
  void arrive(const sim::Message& m);

  // ---------- service thread ----------
  void service_main();
  void handle_message(sim::Message&& m);
  void on_diff_request(sim::Message&& m);
  void on_update_push(sim::Message&& m);  // park pushed diffs in the cache
  void on_update_deny(sim::Message&& m);  // demote pages in the copyset
  void on_lock_push_deny(sim::Message&& m);  // demote protected-set pages
  void on_lock_acquire(sim::Message&& m);   // manager duty
  void on_lock_forward(sim::Message&& m);   // holder duty
  void on_barrier_arrive(sim::Message&& m); // combining-point duty
  void on_tree_arrive(sim::Message&& m);    // combining-point duty: a child
                                            // subtree's folded arrival
  void on_tree_depart(sim::Message&& m);    // combining-point duty: the
                                            // departure wave fanning down
  // Shared tail of the arrival handlers: once the fan-in is complete, fold
  // the subtree and forward up (interior) or establish the global floor and
  // start the departure wave (root).
  void tree_barrier_advance();
  // Sends every parked arrival its departure (kBarrierDepart for rpc
  // arrivals, kTreeDepart for child combining points) and clears the slate.
  void tree_barrier_fan_down(const VectorTime& floor, std::uint64_t depart_ts);
  void on_sema_signal(sim::Message&& m);    // manager duty
  void on_sema_wait(sim::Message&& m);      // manager duty
  void on_cond_wait(sim::Message&& m);      // manager duty
  void on_cond_signal(sim::Message&& m, bool broadcast);  // manager duty
  void on_flush_notice(sim::Message&& m);
  void on_alloc_request(sim::Message&& m);  // node 0 duty
  void on_free_request(sim::Message&& m);   // node 0 duty
  // Starts a lock handoff toward `requester` (manager duty); used by both
  // lock acquires and condvar wakeups.
  void mgr_route_lock(std::uint32_t lock_id, std::uint32_t requester,
                      const VectorTime& vt, std::uint64_t base_ts);
  // Grants a lock from this node to `requester` (holder duty).
  void grant_lock(std::uint32_t lock_id, std::uint32_t requester,
                  const VectorTime& vt, std::uint64_t base_ts, bool from_service);

  DsmRuntime& rt_;
  const std::uint32_t id_;
  const std::uint32_t num_nodes_;

  sim::VirtualClock clock_;
  sim::CpuMeter cpu_meter_;
  DsmStats stats_;

  // ---- page table ----
  std::vector<PageEntry> pages_;
  std::vector<PageIndex> dirty_pages_;  // open interval's writes (compute only)

  // ---- diff store: (page, own interval seq) -> diff chunks ----
  // The key packing is load-bearing across every producer and consumer of
  // the store (materialize, serve, GC reclaim, update push): one definition.
  static std::uint64_t diff_store_key(PageIndex page, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(page) << 32) | seq;
  }
  std::mutex store_mu_;
  std::unordered_map<std::uint64_t, std::vector<DiffBytes>> diff_store_;

  // ---- adaptive update protocol ----
  // Writer-side copyset per page (copyset_mu_): which nodes read the page
  // this epoch, how long the set has been stable, and whether the page is
  // promoted to update mode.  Readers are recorded by the service thread
  // (on_diff_request / on_update_deny); the fold and the push pass run on
  // the compute thread at barriers.  Requests are tagged with the
  // requester's epoch and land in the matching parity bucket: a request
  // from the *next* epoch racing the fold can never contaminate the epoch
  // being folded.
  struct PageCopyset {
    std::uint64_t epoch_readers[2] = {0, 0};  // bitmask by epoch parity
    std::uint64_t stable_set = 0;
    std::uint32_t stable_epochs = 0;
    // Demotions seen so far: each one doubles the stability streak required
    // to re-promote (capped), so a page whose sharing only looks stable —
    // pipeline-skewed consumers, migrating molecules — stops burning pushes
    // on promotion churn while a genuinely stable page is promoted as fast
    // as ever.
    std::uint32_t denials = 0;
    bool promoted = false;
  };
  std::mutex copyset_mu_;
  std::unordered_map<PageIndex, PageCopyset> copyset_;
  // Own intervals closed since the last barrier, by dirty page (compute
  // thread only): the candidate set of the barrier push pass.  Cleared at
  // every barrier, and at fork/join boundaries (barrier-free programs never
  // push, so the list must not grow with them).
  std::unordered_map<PageIndex, std::vector<std::uint32_t>> epoch_dirty_;
  // Pushes parked but not yet applied (push_mu_): appended by on_update_push
  // (service thread), drained by the validate pass of the matching barrier,
  // which is also what inserts the chunks into the page diff caches — the
  // cache stays compute-thread-only, preserving the fault path's partition
  // invariant.  The barrier tag is what keeps the hand-off deterministic:
  // the service thread can run a full barrier ahead of its own compute
  // thread, so a push for barrier k+1 may be parked before the compute
  // thread has even woken from barrier k.
  struct PendingPush {
    std::uint64_t barrier_index = 0;
    PageIndex page = 0;
    std::uint32_t writer = 0;
    // Chunks per pushed interval seq, held here until the validate pass.
    std::vector<std::pair<std::uint32_t, std::vector<DiffBytes>>> seq_chunks;
  };
  std::mutex push_mu_;
  std::vector<PendingPush> pending_pushes_;
  // Pages left armed or partially covered by the last validate pass, for
  // the next barrier's demotion scan (compute thread only).
  std::vector<PageIndex> pushed_pages_;

  // ---- barrier-GC scan index (gc_scan_mu_) ----
  // Pages that may hold unapplied notices: appended by merge_and_invalidate,
  // swapped out (and re-seeded with the still-dirty survivors) by the GC
  // validation pass, which is therefore O(pages with notices) per barrier
  // instead of O(heap pages).  May hold duplicates and already-clean pages;
  // the scan tolerates both.  Unused (and empty) when gc_at_barriers is off.
  std::mutex gc_scan_mu_;
  std::vector<PageIndex> gc_scan_pages_;

  // ---- consistency metadata (meta_mu_) ----
  std::mutex meta_mu_;
  KnowledgeLog log_;
  std::uint32_t own_seq_ = 0;      // last closed interval
  std::uint64_t own_lamport_ = 0;  // lamport of last closed interval
  std::vector<VectorTime> sent_node_vt_;  // per peer: what their node log has
  std::vector<VectorTime> sent_mgr_vt_;   // per peer: what their mgr log has
  // Cut-to-enqueue ordering for node-log deltas.  take_delta_for advances
  // the sent-cache at *cut* time, but the message reaches the network only
  // after serialization — and the compute thread (lock_release's pending
  // grant, flush, fork, join) and the service thread (on_lock_forward's
  // grant-from-cache) can both cut a delta for the same peer.  If the
  // later cut's message is enqueued first, per-link FIFO faithfully
  // delivers a gap and the receiver's dense-merge check fires.  Held from
  // before the cut until the send returns, per destination; mgr-log deltas
  // need no such lock (every mgr-log cut runs on the compute thread).
  std::unique_ptr<std::mutex[]> delta_send_mu_;
  VectorTime gc_floor_applied_;           // last barrier-GC floor applied
  // Highest floor this node has fully *validated* pages against (every
  // notice at or below it pinned or applied).  Raised by the compute thread
  // after each gc_validate_pages pass; snapshotted by the service thread
  // during an on-demand exchange to fold the global ack.  A snapshot taken
  // mid-validation reads the old value — conservative, never unsafe.
  VectorTime gc_floor_validated_;

  // Own-diff reclamation floor: the previous barrier's floor component for
  // this node.  Diff-store entries at or below it are dropped one barrier
  // after the floor was announced — by then every node has validated its
  // pages against it, so no fetch for them can still be in flight.
  // Compute-thread only.
  std::uint32_t gc_drop_seq_ = 0;
  // The bound actually safe for destroying diff *sources* (store entries,
  // pending twins): gc_drop_seq_ as of the previous barrier.  gc_drop_seq_
  // itself is the floor just announced, whose validation fetches from peers
  // may still be in flight; only after the next barrier departs is every
  // such fetch guaranteed served.  A twin dropped against the fresh floor
  // loses the only source a concurrent fetch still wants.  Compute-thread
  // only.
  std::uint32_t gc_reclaimed_seq_ = 0;

  // ---- on-demand GC exchange state ----
  // Fold state of the exchange currently passing through this combining
  // point (service thread only).  Generations cannot overlap on a node: a
  // child's fold completes (active goes false) before its kGcArrive is sent
  // up, and the root starts generation g+1 only after folding every
  // generation-g arrival — so a solicit always finds active == false.
  struct GcExchange {
    bool active = false;
    std::uint32_t gen = 0;
    std::uint32_t awaiting = 0;  // children not yet folded
    VectorTime fold_vt;          // min over subtree of log vt
    VectorTime fold_ack;         // min over subtree of validated floor
  };
  GcExchange gc_ex_;
  // Root-only dedup: while an exchange is in flight, further kGcRequest
  // initiations join it instead of starting another (service thread only).
  bool gc_root_active_ = false;
  std::uint32_t gc_root_gen_ = 0;
  // Departure results parked for the compute thread (gc_depart_mu_).  Two
  // departures may land between polls; they merge by vt_max (both vectors
  // are monotone across generations).
  std::mutex gc_depart_mu_;
  VectorTime gc_parked_floor_;
  VectorTime gc_parked_ack_;
  std::atomic<bool> gc_parked_flag_{false};
  // Highest generation whose departure this node has seen, and the highest
  // generation this node has asked the root for (compute thread only): a
  // node over the ceiling sends one initiation per generation, not one per
  // sync operation, so the root is not flooded while an exchange runs.
  std::atomic<std::uint32_t> gc_gen_seen_{0};
  std::uint32_t gc_gen_requested_ = 0;
  // O(1) footprint mirrors for the ceiling check: the diff store's payload
  // bytes, and the sum of every page diff cache's bytes (bound via
  // PageDiffCache::bind_total at construction).
  std::atomic<std::size_t> diff_store_bytes_{0};
  std::atomic<std::size_t> diff_cache_total_bytes_{0};
  // Pages holding relay-retained chunks (compute thread only; deduplicated
  // by relay_prune), so pruning is O(pages with retained chunks).
  std::vector<PageIndex> relay_pages_;

  // ---- migratory lock push: per-lock protected page sets ----
  // Writer-side stats per (lock, page), guarded by lock_protect_mu_: the
  // fold and the grant-time push assembly run on whichever thread handles
  // the release/forward (compute or service), and kLockPushDeny lands on
  // the service thread.
  struct LockPushStat {
    std::uint32_t streak = 0;     // consecutive own CSes that touched the page
    std::uint32_t untouched = 0;  // consecutive own CSes that did not
    std::uint32_t denials = 0;    // kLockPushDeny count: each one doubles the
                                  // touch streak required to re-admit, so a
                                  // page whose sharing only looks migratory
                                  // stops burning push bytes
    std::uint32_t pushes = 0;     // pushes of this page (armed-probe cadence)
    bool member = false;          // in the lock's push set
  };
  std::mutex lock_protect_mu_;
  std::unordered_map<std::uint32_t, std::unordered_map<PageIndex, LockPushStat>>
      lock_protect_;
  // Critical-section touch attribution (compute thread only): the locks the
  // compute thread currently holds, and per held lock the pages it faulted
  // or wrote since acquiring it.  Folded into lock_protect_ at release.
  std::vector<std::uint32_t> held_locks_;
  std::unordered_map<std::uint32_t, std::vector<PageIndex>> cs_touched_;
  // Pages this node's acquire applied *armed* — or parked a partial push
  // for, on a probe grant — judged at its release of the same lock (compute
  // thread only).  `armed` distinguishes the two verdicts: an armed page is
  // dead if its probe fault never fired; a partial-push page is dead if it
  // stayed invalid with unapplied notices through the whole critical
  // section (no fault ever consumed the parked chunks).
  struct LockArmed {
    PageIndex page = 0;
    std::uint32_t writer = 0;
    bool armed = true;
  };
  std::unordered_map<std::uint32_t, std::vector<LockArmed>> lock_armed_judge_;

  // ---- lock client state (lock_client_mu_) ----
  struct PendingGrant {
    std::uint32_t requester = 0;
    VectorTime vt;
  };
  struct LockClientState {
    bool held = false;
    bool cached = false;    // this node was the last holder
    bool awaiting = false;  // compute thread is blocked acquiring
    std::optional<PendingGrant> pending;
  };
  std::mutex lock_client_mu_;
  std::unordered_map<std::uint32_t, LockClientState> lock_client_;
  WaitSlot lock_grant_slot_;

  // ---- manager state (service thread only) ----
  struct LockMgrState {
    bool ever_requested = false;
    std::uint32_t tail = 0;  // last requester, valid if ever_requested
  };
  struct SemaWaiter {
    std::uint32_t node = 0;
    VectorTime vt;
    std::uint64_t rpc_seq = 0;
  };
  struct SemaMgrState {
    std::int64_t count = 0;
    std::deque<SemaWaiter> waiters;
  };
  struct CondWaiter {
    std::uint32_t node = 0;
    VectorTime vt;
  };
  struct BarrierMgrState {
    struct Arrival {
      std::uint32_t node;
      // A single node's vector time (rpc arrival) or the min fold over a
      // child subtree (kTreeArrive): either way, every record the arrival's
      // subtree could be missing is above it, so the departure's delta is
      // cut from it.
      VectorTime vt;
      std::uint64_t rpc_seq;   // meaningful only when !via_tree
      std::uint64_t arrive_ts;
      // Whether the departure goes back as kTreeDepart (child combining
      // point) or as the kBarrierDepart rpc reply (leaf or own compute).
      bool via_tree = false;
    };
    std::vector<Arrival> arrivals;
  };
  struct MgrState {
    explicit MgrState(std::uint32_t n) : log(n) {}
    KnowledgeLog log;  // knowledge accumulated from releases routed via us
    std::unordered_map<std::uint32_t, LockMgrState> locks;
    std::unordered_map<std::uint32_t, SemaMgrState> semas;
    std::unordered_map<std::uint64_t, std::deque<CondWaiter>> conds;  // (lock,cond)
    BarrierMgrState barrier;
  };
  MgrState mgr_;
  // What this combining point's parent already holds of mgr_.log (service
  // thread only): kTreeArrive deltas are cut from it, like the per-peer
  // sent-caches but for the tree edge.  Reset to the full log vt whenever a
  // departure proves the parent caught up globally.
  VectorTime tree_sent_up_vt_;

  // ---- crash injection + checkpoint state ----
  // Sync points this compute thread has entered (compute thread only): the
  // deterministic index TMK_NET_CRASH_AT selects the crash site against.
  std::uint32_t crash_counter_ = 0;
  // Set by maybe_crash when this node dies; the service thread then drains
  // its (closed) mailbox without answering — a dead workstation must not
  // keep serving diffs.
  std::atomic<bool> crashed_{false};
  // Set by node_down (service thread), checked by maybe_crash (compute
  // thread) so survivors unwind at their next sync point even if they never
  // block on the dead peer.
  std::atomic<bool> down_{false};
  std::atomic<std::uint32_t> down_victim_{0};
  // Root-only checkpoint commit fan-in (service thread only): parked commit
  // rpcs; the epoch promotes when all N arrive, then everyone gets its ack.
  struct CkptCommit {
    std::uint32_t node = 0;
    std::uint64_t rpc_seq = 0;
    std::uint64_t arrive_ts = 0;
  };
  std::vector<CkptCommit> ckpt_commits_;
  std::uint64_t ckpt_commit_epoch_ = 0;

  // ---- fork-join plumbing ----
  WaitSlot fork_slot_;   // slave: next kFork / kShutdown
  WaitSlot join_slot_;   // master: kJoin arrivals

  RpcClient rpc_;
  std::thread service_thread_;
  Rng stress_rng_;

  friend class DsmRuntime;
};

}  // namespace now::tmk
