// Per-node page table entries for the DSM protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tmk/config.h"
#include "tmk/diff.h"
#include "tmk/intervals.h"

namespace now::tmk {

enum class PageState : std::uint8_t {
  kInvalid,   // PROT_NONE; access faults and runs the fetch protocol
  kReadOnly,  // PROT_READ; a write will fault and start a new twin
  kWritable,  // PROT_READ|PROT_WRITE with a twin capturing pre-write contents
};

// An interval of this node whose writes to the page are not yet fully
// materialized as a diff.  While `open`, the page may still be written (the
// twin tracks it); once the interval is closed at a release, the page is
// write-protected so the diff can be computed lazily but safely.
struct PendingTwin {
  std::uint32_t seq = 0;  // own interval the twin belongs to
  std::unique_ptr<std::uint8_t[]> data;
};

// A write notice this node has learned about but whose diff it has not yet
// applied to its copy of the page.
struct UnappliedNotice {
  std::uint32_t writer = 0;
  std::uint32_t seq = 0;
  std::uint64_t lamport = 0;
};

// The linear extension of happens-before in which diffs are applied: lamport
// order, writer id as the tie-break (ties are concurrent intervals whose
// diffs touch disjoint bytes in race-free programs).  Both the fault path
// and the barrier-GC eager-apply path sort by exactly this predicate — a
// divergence would change page bytes, so there is only one copy.
inline bool applies_before(const UnappliedNotice& a, const UnappliedNotice& b) {
  if (a.lamport != b.lamport) return a.lamport < b.lamport;
  return a.writer < b.writer;
}

// Requester-side cache of already-fetched diff chunks, keyed by (writer,
// seq).  A node that still holds a diff it fetched earlier can skip the
// re-request entirely (no message, no wire bytes) when a later fault wants
// the same interval again.  Two protocol paths feed it:
//  - barrier-time GC (insert_gc / pin_existing): the validation pass stores
//    the diffs for a page's remaining old write notices just before their
//    writers reclaim them.  Those entries are *pinned* — exempt from
//    eviction (it would lose the only surviving copy) — and are released
//    when applied, by the fault or by the GC pass itself once a page's
//    pinned bytes exceed the budget (which bounds never-read pages);
//  - multi-page prefetch on fault (budgeted FIFO insert): a fault folds
//    neighboring pages' wanted seqs into its kDiffRequest and parks the
//    extra chunks here for the neighbor's own fault.  Prefetched entries
//    are droppable — their writers still hold the diff, so the real fault
//    can always refetch what eviction lost.  When a barrier-GC floor later
//    covers a prefetched entry, the validation pass promotes it to a pin
//    in place rather than refetching;
//  - the adaptive update protocol (budgeted FIFO insert, pushed provenance):
//    a writer's barrier-time kUpdatePush parks the epoch's diffs here and
//    the reader's barrier departure applies any page whose wanted intervals
//    are fully covered, skipping the fault.  Keying by (writer, seq) is what
//    makes a push racing a pull-path fetch idempotent: whichever applies
//    first erases the entry, the other's copy is redundant bytes, never a
//    second application.
class PageDiffCache {
 public:
  // Mirrors every bytes_ change into a node-wide counter (a relaxed atomic
  // owned by the Node), so the on-demand GC's ceiling check can read the
  // cluster of per-page caches in O(1) instead of walking the page table on
  // every sync operation.  Bound once at Node construction.
  void bind_total(std::atomic<std::size_t>* total) { total_ = total; }

  struct Entry {
    std::vector<DiffBytes> chunks;
    bool pinned = false;      // exempt from FIFO eviction (barrier-GC)
    bool prefetched = false;  // arrived via multi-page prefetch (stats only)
    bool pushed = false;      // arrived via kUpdatePush (stats only)
    bool relayed = false;     // retained for the migratory lock relay
  };

  // Entry for (writer, seq), or nullptr if not cached.  The pointer stays
  // valid until the next insert().
  const Entry* lookup(std::uint32_t writer, std::uint32_t seq) const {
    auto it = map_.find(key(writer, seq));
    return it == map_.end() ? nullptr : &it->second;
  }
  // Chunks for (writer, seq), or nullptr if not cached.
  const std::vector<DiffBytes>* find(std::uint32_t writer, std::uint32_t seq) const {
    const Entry* e = lookup(writer, seq);
    return e == nullptr ? nullptr : &e->chunks;
  }

  // Stores the chunks for (writer, seq), evicting oldest unpinned entries to
  // stay within `budget_bytes`.  A chunk set larger than the whole budget is
  // not cached at all.  No-op if the key is already present.  Returns true
  // if the entry resides in the cache afterwards.
  bool insert(std::uint32_t writer, std::uint32_t seq,
              std::vector<DiffBytes> chunks, std::size_t budget_bytes,
              bool prefetched = false, bool pushed = false) {
    const std::uint64_t k = key(writer, seq);
    if (map_.count(k)) return true;
    std::size_t sz = 0;
    for (const DiffBytes& c : chunks) sz += c.size();
    if (sz > budget_bytes) return false;
    while (bytes_ + sz > budget_bytes && !order_.empty()) {
      auto victim = map_.find(order_.front());
      order_.pop_front();
      // A key may be stale (erased, or promoted to pinned since): skip it.
      if (victim == map_.end() || victim->second.pinned) continue;
      std::size_t vsz = 0;
      for (const DiffBytes& c : victim->second.chunks) vsz += c.size();
      sub_bytes(vsz);
      if (victim->second.relayed) relay_bytes_ -= vsz;
      map_.erase(victim);
    }
    // Pins alone may already exceed the budget (insert_gc bypasses it, the
    // GC pass rebalances at the next barrier): a droppable entry must not
    // land on top of that, or the cache would grow to pins + budget.
    if (bytes_ + sz > budget_bytes) return false;
    add_bytes(sz);
    order_.push_back(k);
    map_.emplace(k, Entry{std::move(chunks), /*pinned=*/false, prefetched, pushed});
    return true;
  }

  // Pins the chunks for (writer, seq) regardless of the byte budget and
  // immune to eviction: the barrier-GC pass stores diffs whose writer is
  // about to reclaim them, so evicting one before it is applied would lose
  // the only remaining copy.  An existing budgeted copy of the same key is
  // promoted to pinned in place (its FIFO key goes stale), so a pin can
  // never be evicted no matter how the entry first arrived.
  void insert_gc(std::uint32_t writer, std::uint32_t seq,
                 std::vector<DiffBytes> chunks) {
    if (pin_existing(writer, seq)) return;  // same key => same chunk content
    std::size_t sz = 0;
    for (const DiffBytes& c : chunks) sz += c.size();
    add_bytes(sz);
    pinned_bytes_ += sz;
    // Deliberately not queued in order_, so the eviction loop never sees it.
    map_.emplace(key(writer, seq), Entry{std::move(chunks), /*pinned=*/true,
                                         /*prefetched=*/false, /*pushed=*/false});
  }

  // Promotes an already-held entry to pinned (no-op on pins).  The GC
  // validation pass uses this when the floor covers an entry a prefetch
  // already fetched: the chunks are identical, only the eviction class
  // changes — after the writer reclaims, eviction would lose the only copy.
  // Returns false if the key is absent.
  bool pin_existing(std::uint32_t writer, std::uint32_t seq) {
    auto it = map_.find(key(writer, seq));
    if (it == map_.end()) return false;
    if (!it->second.pinned) {
      it->second.pinned = true;  // its FIFO key goes stale
      for (const DiffBytes& c : it->second.chunks) pinned_bytes_ += c.size();
    }
    return true;
  }

  // Drops the entry for (writer, seq) if present (a stale key may linger in
  // the FIFO order; the eviction loop tolerates that).  Used to release an
  // entry once its chunks have been applied — an applied interval is never
  // wanted again.
  void erase(std::uint32_t writer, std::uint32_t seq) {
    auto it = map_.find(key(writer, seq));
    if (it == map_.end()) return;
    std::size_t sz = 0;
    for (const DiffBytes& c : it->second.chunks) sz += c.size();
    sub_bytes(sz);
    if (it->second.pinned) pinned_bytes_ -= sz;
    if (it->second.relayed) relay_bytes_ -= sz;
    map_.erase(it);
  }

  // Marks an already-held entry as retained for the migratory lock relay
  // (provenance + byte accounting; no eviction-class change — relay
  // retention is droppable by contract, its writer still holds the diff).
  void mark_relay(std::uint32_t writer, std::uint32_t seq) {
    auto it = map_.find(key(writer, seq));
    if (it == map_.end() || it->second.relayed) return;
    it->second.relayed = true;
    for (const DiffBytes& c : it->second.chunks) relay_bytes_ += c.size();
  }

  // Drops every unpinned entry whose interval the floor covers: validation
  // resolved all notices at or below the floor, and grant-chain deltas are
  // cut above it, so a covered droppable chunk can never serve a fault nor
  // be relayed again — keeping it would be the FIFO-forever leak.  Pins are
  // exempt (they are the *only* copy until applied).  Returns the number of
  // entries dropped and adds their bytes to *bytes_pruned.
  std::size_t prune_below(const VectorTime& floor, std::size_t* bytes_pruned) {
    std::size_t dropped = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      const std::uint32_t writer = static_cast<std::uint32_t>(it->first >> 32);
      const std::uint32_t seq = static_cast<std::uint32_t>(it->first);
      if (it->second.pinned || writer >= floor.size() || seq > floor[writer]) {
        ++it;
        continue;
      }
      std::size_t sz = 0;
      for (const DiffBytes& c : it->second.chunks) sz += c.size();
      sub_bytes(sz);
      if (it->second.relayed) relay_bytes_ -= sz;
      if (bytes_pruned != nullptr) *bytes_pruned += sz;
      ++dropped;
      it = map_.erase(it);  // its FIFO key goes stale; eviction tolerates it
    }
    return dropped;
  }

  std::size_t bytes() const { return bytes_; }
  std::size_t pinned_bytes() const { return pinned_bytes_; }
  std::size_t relay_bytes() const { return relay_bytes_; }
  std::size_t entries() const { return map_.size(); }

 private:
  static std::uint64_t key(std::uint32_t writer, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(writer) << 32) | seq;
  }
  void add_bytes(std::size_t n) {
    bytes_ += n;
    if (total_ != nullptr) total_->fetch_add(n, std::memory_order_relaxed);
  }
  void sub_bytes(std::size_t n) {
    bytes_ -= n;
    if (total_ != nullptr) total_->fetch_sub(n, std::memory_order_relaxed);
  }
  std::unordered_map<std::uint64_t, Entry> map_;
  std::deque<std::uint64_t> order_;  // insertion order, for FIFO eviction
  std::size_t bytes_ = 0;
  std::size_t pinned_bytes_ = 0;  // subset of bytes_ held by pinned entries
  std::size_t relay_bytes_ = 0;   // subset of bytes_ retained for the relay
  std::atomic<std::size_t>* total_ = nullptr;  // node-wide mirror of bytes_
};

struct PageEntry {
  // Serializes page-state transitions between the node's compute thread
  // (faults, invalidations) and its service thread (diff materialization).
  std::mutex mu;

  PageState state = PageState::kInvalid;
  bool ever_valid = false;  // false => local copy is the initial zero page

  // Twin for the currently writable / pending interval (at most one; older
  // intervals' diffs are already materialized in the diff store).
  PendingTwin twin;
  bool twin_valid = false;

  // Write notices to apply at the next fault, sorted on use by lamport.
  std::vector<UnappliedNotice> unapplied;

  // Diff chunks this node has already fetched for the page (guarded by mu).
  PageDiffCache diff_cache;

  // ---- adaptive update protocol, reader side (guarded by mu) ----
  // Armed: every wanted diff has been applied and the contents are current,
  // but the page is deliberately left unmapped so the next access faults
  // once, locally — the liveness probe of the update protocol.  The probe
  // fault sets `push_touched`; an armed page still untouched when the next
  // barrier's demotion scan runs is evidence the reader stopped using the
  // data, and demotes it at the writers.
  bool push_armed = false;
  // Any fault on the page since the last barrier's demotion scan (cheap
  // proxy for "the reader still uses this data"; reads of a valid page are
  // invisible, which is exactly what the armed probe exists to sample).
  bool push_touched = false;
  // Writers whose pushes landed since the last demotion scan (bitmask by
  // node id; kUpdateDeny targets).
  std::uint64_t pushed_by = 0;
  // Pushes applied to this page since promotion; schedules the armed probes
  // (every update_reprobe_epochs-th push — the ones in between validate
  // outright).  Reset on demotion.
  std::uint32_t pushes_since_probe = 0;

  // ---- migratory lock push, holder side (guarded by mu) ----
  // Armed by a lock-grant push: contents current, page deliberately left
  // unmapped so the next access faults once, locally — the probe proving
  // this holder still touches the lock's protected pages.  Judged at this
  // node's release of the pushing lock (Node::lock_push_judge): still armed
  // there means the whole critical section ran without touching the page,
  // and the pusher is denied.
  bool lock_push_armed = false;
};

}  // namespace now::tmk
