// Per-node page table entries for the DSM protocol.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tmk/config.h"
#include "tmk/diff.h"
#include "tmk/intervals.h"

namespace now::tmk {

enum class PageState : std::uint8_t {
  kInvalid,   // PROT_NONE; access faults and runs the fetch protocol
  kReadOnly,  // PROT_READ; a write will fault and start a new twin
  kWritable,  // PROT_READ|PROT_WRITE with a twin capturing pre-write contents
};

// An interval of this node whose writes to the page are not yet fully
// materialized as a diff.  While `open`, the page may still be written (the
// twin tracks it); once the interval is closed at a release, the page is
// write-protected so the diff can be computed lazily but safely.
struct PendingTwin {
  std::uint32_t seq = 0;  // own interval the twin belongs to
  std::unique_ptr<std::uint8_t[]> data;
};

// A write notice this node has learned about but whose diff it has not yet
// applied to its copy of the page.
struct UnappliedNotice {
  std::uint32_t writer = 0;
  std::uint32_t seq = 0;
  std::uint64_t lamport = 0;
};

// Requester-side cache of already-fetched diff chunks, keyed by (writer,
// seq).  A node that still holds a diff it fetched earlier can skip the
// re-request entirely (no message, no wire bytes) when a later fault wants
// the same interval again — e.g. after a flush-then-refault, or when a future
// log-GC pass forces a page to be reconstructed.  FIFO eviction under a
// per-page byte budget keeps the cache from shadowing the whole heap.
class PageDiffCache {
 public:
  // Chunks for (writer, seq), or nullptr if not cached.  The pointer stays
  // valid until the next insert().
  const std::vector<DiffBytes>* find(std::uint32_t writer, std::uint32_t seq) const {
    auto it = map_.find(key(writer, seq));
    return it == map_.end() ? nullptr : &it->second;
  }

  // Stores the chunks for (writer, seq), evicting oldest entries to stay
  // within `budget_bytes`.  A chunk set larger than the whole budget is not
  // cached at all.  No-op if the key is already present.
  void insert(std::uint32_t writer, std::uint32_t seq,
              std::vector<DiffBytes> chunks, std::size_t budget_bytes) {
    const std::uint64_t k = key(writer, seq);
    if (map_.count(k)) return;
    std::size_t sz = 0;
    for (const DiffBytes& c : chunks) sz += c.size();
    if (sz > budget_bytes) return;
    while (bytes_ + sz > budget_bytes && !order_.empty()) {
      auto victim = map_.find(order_.front());
      order_.pop_front();
      if (victim == map_.end()) continue;
      for (const DiffBytes& c : victim->second) bytes_ -= c.size();
      map_.erase(victim);
    }
    bytes_ += sz;
    order_.push_back(k);
    map_.emplace(k, std::move(chunks));
  }

  std::size_t bytes() const { return bytes_; }
  std::size_t entries() const { return map_.size(); }

 private:
  static std::uint64_t key(std::uint32_t writer, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(writer) << 32) | seq;
  }
  std::unordered_map<std::uint64_t, std::vector<DiffBytes>> map_;
  std::deque<std::uint64_t> order_;  // insertion order, for FIFO eviction
  std::size_t bytes_ = 0;
};

struct PageEntry {
  // Serializes page-state transitions between the node's compute thread
  // (faults, invalidations) and its service thread (diff materialization).
  std::mutex mu;

  PageState state = PageState::kInvalid;
  bool ever_valid = false;  // false => local copy is the initial zero page

  // Twin for the currently writable / pending interval (at most one; older
  // intervals' diffs are already materialized in the diff store).
  PendingTwin twin;
  bool twin_valid = false;

  // Write notices to apply at the next fault, sorted on use by lamport.
  std::vector<UnappliedNotice> unapplied;

  // Diff chunks this node has already fetched for the page (guarded by mu).
  PageDiffCache diff_cache;
};

}  // namespace now::tmk
