// Per-node page table entries for the DSM protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tmk/config.h"
#include "tmk/intervals.h"

namespace now::tmk {

enum class PageState : std::uint8_t {
  kInvalid,   // PROT_NONE; access faults and runs the fetch protocol
  kReadOnly,  // PROT_READ; a write will fault and start a new twin
  kWritable,  // PROT_READ|PROT_WRITE with a twin capturing pre-write contents
};

// An interval of this node whose writes to the page are not yet fully
// materialized as a diff.  While `open`, the page may still be written (the
// twin tracks it); once the interval is closed at a release, the page is
// write-protected so the diff can be computed lazily but safely.
struct PendingTwin {
  std::uint32_t seq = 0;  // own interval the twin belongs to
  std::unique_ptr<std::uint8_t[]> data;
};

// A write notice this node has learned about but whose diff it has not yet
// applied to its copy of the page.
struct UnappliedNotice {
  std::uint32_t writer = 0;
  std::uint32_t seq = 0;
  std::uint64_t lamport = 0;
};

struct PageEntry {
  // Serializes page-state transitions between the node's compute thread
  // (faults, invalidations) and its service thread (diff materialization).
  std::mutex mu;

  PageState state = PageState::kInvalid;
  bool ever_valid = false;  // false => local copy is the initial zero page

  // Twin for the currently writable / pending interval (at most one; older
  // intervals' diffs are already materialized in the diff store).
  PendingTwin twin;
  bool twin_valid = false;

  // Write notices to apply at the next fault, sorted on use by lamport.
  std::vector<UnappliedNotice> unapplied;
};

}  // namespace now::tmk
