// Run-length-encoded page diffs (the multiple-writer protocol's unit of
// update transfer).
//
// A diff records the byte ranges of a page that differ from its twin.  Two
// diffs made by concurrent writers of the same page touch disjoint ranges in
// a data-race-free program, which is what lets TreadMarks merge them without
// a coherence owner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace now::tmk {

// Wire format: repeated { u16 offset, u16 length, length bytes }.
using DiffBytes = std::vector<std::uint8_t>;

// Encodes the ranges where `current` differs from `twin`.
// Runs separated by fewer than `merge_gap` equal bytes are coalesced: the
// 4-byte run header makes tiny gaps cheaper to ship than to split.
DiffBytes diff_create(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size, std::size_t merge_gap = 8);

// Applies a diff in place.  Returns the number of bytes patched.
std::size_t diff_apply(std::uint8_t* page, std::size_t page_size, const DiffBytes& diff);

// Number of payload bytes a diff patches (sum of run lengths).
std::size_t diff_patched_bytes(const DiffBytes& diff);

}  // namespace now::tmk
