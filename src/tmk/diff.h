// Run-length-encoded page diffs (the multiple-writer protocol's unit of
// update transfer).
//
// A diff records the byte ranges of a page that differ from its twin.  Two
// diffs made by concurrent writers of the same page touch disjoint ranges in
// a data-race-free program, which is what lets TreadMarks merge them without
// a coherence owner.
//
// The twin/page scan is the hottest host-side loop in the DSM engine (every
// release of a dirty page runs it), so `diff_create` uses a word-at-a-time
// scanner: 64-byte memcmp strides over clean prefixes, 8-byte XOR + ctz to
// pin the mismatching byte.  `diff_create_scalar` keeps the original
// byte-at-a-time implementation as a reference oracle; the two are
// byte-identical for every input (tested exhaustively in diff_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace now::tmk {

// Wire format: repeated { u16 offset, u16 length, length bytes }.
using DiffBytes = std::vector<std::uint8_t>;

// Encodes the ranges where `current` differs from `twin`.
// Runs separated by fewer than `merge_gap` equal bytes are coalesced: the
// 4-byte run header makes tiny gaps cheaper to ship than to split.
DiffBytes diff_create(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size, std::size_t merge_gap = 8);

// Byte-at-a-time reference implementation with identical output; the
// equivalence oracle for tests and the baseline for the diff microbenches.
DiffBytes diff_create_scalar(const std::uint8_t* twin, const std::uint8_t* current,
                             std::size_t page_size, std::size_t merge_gap = 8);

// Appends the encoded diff to `out` (no allocation when `out` has capacity);
// returns the number of bytes appended.  Same encoding as `diff_create`.
std::size_t diff_append(DiffBytes& out, const std::uint8_t* twin,
                        const std::uint8_t* current, std::size_t page_size,
                        std::size_t merge_gap = 8);

// Applies a diff in place.  Returns the number of bytes patched.  The
// pointer/length overload patches straight out of a message payload without
// copying the chunk into its own vector first.
std::size_t diff_apply(std::uint8_t* page, std::size_t page_size,
                       const std::uint8_t* diff, std::size_t diff_size);
inline std::size_t diff_apply(std::uint8_t* page, std::size_t page_size,
                              const DiffBytes& diff) {
  return diff_apply(page, page_size, diff.data(), diff.size());
}

// Number of payload bytes a diff patches (sum of run lengths).
std::size_t diff_patched_bytes(const std::uint8_t* diff, std::size_t diff_size);
inline std::size_t diff_patched_bytes(const DiffBytes& diff) {
  return diff_patched_bytes(diff.data(), diff.size());
}

}  // namespace now::tmk
