// Synchronization topology: where every manager duty lives.
//
// The paper's TreadMarks uses fully static placement — node 0 owns the
// barrier, allocation and fork/join, and lock/sema managers are assigned by
// id.  This object is the single authority for all of it, so no call site
// hardcodes node 0, and it adds the two placements the static scheme lacks
// at scale:
//
//  - a static combining tree for barriers (heap-indexed, configurable
//    arity): node i's children are [arity*i + 1, arity*i + arity], its
//    parent (i - 1) / arity.  Arity 0 — or anything >= num_nodes - 1 —
//    degenerates to the depth-1 flat tree, which *is* the centralized
//    barrier, byte for byte;
//  - hash-sharded lock/sema/cond managers (opt-in): a mixing hash
//    decorrelates manager placement from the dense id numbering programs
//    use, so hot object 0 does not always land on node 0.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tmk/config.h"

namespace now::tmk {

class SyncTopology {
 public:
  explicit SyncTopology(const DsmConfig& cfg)
      : num_nodes_(cfg.num_nodes),
        arity_(effective_arity(cfg.num_nodes, cfg.barrier_tree_arity)),
        shard_(cfg.shard_managers) {}

  std::uint32_t num_nodes() const { return num_nodes_; }
  std::uint32_t arity() const { return arity_; }

  // ---- barrier combining tree ----
  std::uint32_t barrier_root() const { return 0; }
  std::uint32_t barrier_parent(std::uint32_t node) const {
    return node == 0 ? 0 : (node - 1) / arity_;
  }
  std::uint32_t first_child(std::uint32_t node) const {
    // May be >= num_nodes (leaf); callers compare against num_nodes.
    return arity_ * node + 1;
  }
  bool barrier_interior(std::uint32_t node) const {
    return first_child(node) < num_nodes_;
  }
  std::vector<std::uint32_t> barrier_children(std::uint32_t node) const {
    std::vector<std::uint32_t> kids;
    const std::uint64_t first = first_child(node);
    for (std::uint64_t c = first; c < first + arity_ && c < num_nodes_; ++c)
      kids.push_back(static_cast<std::uint32_t>(c));
    return kids;
  }
  // Where a node's compute thread sends its kBarrierArrive: its own service
  // thread when it is a combining point, its parent when it is a leaf.  In
  // the flat tree this is node 0 for everyone — the centralized manager.
  std::uint32_t barrier_owner(std::uint32_t node) const {
    return barrier_interior(node) ? node : barrier_parent(node);
  }
  // Arrivals a combining point collects before folding upward: one per
  // child subtree plus its own compute thread's.
  std::uint32_t barrier_fanin(std::uint32_t node) const {
    const std::uint64_t first = first_child(node);
    const std::uint64_t last =
        std::min<std::uint64_t>(first + arity_, num_nodes_);
    return static_cast<std::uint32_t>(last > first ? last - first : 0) + 1;
  }
  // Edge-depth of a node below the root (root = 0).
  std::uint32_t barrier_depth(std::uint32_t node) const {
    std::uint32_t d = 0;
    while (node != 0) {
      node = barrier_parent(node);
      ++d;
    }
    return d;
  }
  // Deepest leaf's depth — the one-way hop count of the slowest arrival.
  std::uint32_t barrier_height() const {
    return num_nodes_ <= 1 ? 0 : barrier_depth(num_nodes_ - 1);
  }
  // Wire hops on the barrier's critical path: the deepest arrival folds up
  // through `height` combining points and its departure fans back down the
  // same way.  2 for the flat/centralized tree, 2*ceil(log_arity N) for a
  // populated one.
  std::uint32_t critical_path_hops() const { return 2 * barrier_height(); }

  // ---- static single-owner duties ----
  std::uint32_t master_node() const { return 0; }
  std::uint32_t alloc_server() const { return 0; }

  // ---- lock/sema/cond manager shards ----
  std::uint32_t lock_manager(std::uint32_t lock_id) const {
    return place(lock_id, 0x9e3779b9u);
  }
  std::uint32_t sema_manager(std::uint32_t sema_id) const {
    return place(sema_id, 0x85ebca6bu);
  }

 private:
  static std::uint32_t effective_arity(std::uint32_t n, std::uint32_t arity) {
    // 0 = flat; otherwise clamp so the shape is always a valid tree.  Any
    // arity >= n - 1 is already flat via the heap indexing.
    const std::uint32_t flat = n > 1 ? n - 1 : 1;
    if (arity == 0 || arity > flat) return flat;
    return arity;
  }
  // 32-bit mixer (the murmur3/splitmix finalizer): full avalanche, so dense
  // ids spread over nodes with no correlation to their numeric order.
  static std::uint32_t mix32(std::uint32_t h) {
    h ^= h >> 16;
    h *= 0x7feb352du;
    h ^= h >> 15;
    h *= 0x846ca68bu;
    h ^= h >> 16;
    return h;
  }
  std::uint32_t place(std::uint32_t id, std::uint32_t salt) const {
    if (!shard_) return id % num_nodes_;
    return mix32(id ^ salt) % num_nodes_;
  }

  std::uint32_t num_nodes_;
  std::uint32_t arity_;  // effective: in [1, num_nodes - 1], flat when == n-1
  bool shard_;
};

}  // namespace now::tmk
