#include "tmk/arena.h"

#include <signal.h>
#include <sys/mman.h>

#include <array>
#include <atomic>
#include <cstring>
#include <mutex>

#include "common/check.h"
#include "tmk/runtime.h"

namespace now::tmk {

Arena::Arena(std::uint32_t num_nodes, std::size_t heap_bytes)
    : num_nodes_(num_nodes),
      heap_bytes_(heap_bytes),
      total_bytes_(static_cast<std::size_t>(num_nodes) * heap_bytes) {
  NOW_CHECK_GT(num_nodes, 0u);
  NOW_CHECK_EQ(heap_bytes % kPageSize, 0u) << "heap size must be page aligned";
  void* p = ::mmap(nullptr, total_bytes_, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  NOW_CHECK(p != MAP_FAILED) << "mmap of shared arena failed";
  base_ = static_cast<std::uint8_t*>(p);
}

Arena::~Arena() { ::munmap(base_, total_bytes_); }

std::uint32_t Arena::node_of(const void* addr) const {
  const auto off = static_cast<std::size_t>(static_cast<const std::uint8_t*>(addr) - base_);
  return static_cast<std::uint32_t>(off / heap_bytes_);
}

PageIndex Arena::page_of(const void* addr) const {
  const auto off = static_cast<std::size_t>(static_cast<const std::uint8_t*>(addr) - base_);
  return static_cast<PageIndex>((off % heap_bytes_) / kPageSize);
}

namespace {
void do_protect(std::uint8_t* p, int prot) {
  NOW_CHECK_EQ(::mprotect(p, kPageSize, prot), 0) << "mprotect failed";
}
}  // namespace

void Arena::protect_none(std::uint32_t node, PageIndex page) const {
  do_protect(page_ptr(node, page), PROT_NONE);
}
void Arena::protect_read(std::uint32_t node, PageIndex page) const {
  do_protect(page_ptr(node, page), PROT_READ);
}
void Arena::protect_rw(std::uint32_t node, PageIndex page) const {
  do_protect(page_ptr(node, page), PROT_READ | PROT_WRITE);
}

void Arena::reset_region(std::uint32_t node) const {
  std::uint8_t* base = region_base(node);
  NOW_CHECK_EQ(::mprotect(base, heap_bytes_, PROT_NONE), 0)
      << "region reset mprotect failed";
  NOW_CHECK_EQ(::madvise(base, heap_bytes_, MADV_DONTNEED), 0)
      << "region reset madvise failed";
}

namespace fault {
namespace {

// A small fixed table of live runtimes.  The handler walks it lock-free;
// registration uses a mutex.  Slots are never reused while a fault could be
// in flight for them (runtimes quiesce their compute threads before
// unregistering).
constexpr std::size_t kMaxRuntimes = 16;
std::array<std::atomic<DsmRuntime*>, kMaxRuntimes> g_runtimes{};
std::mutex g_registry_mu;
struct sigaction g_prev_action;
bool g_installed = false;

// Calibration scratch page: the handler just reopens it.
std::atomic<std::uint8_t*> g_calib_page{nullptr};
std::atomic<std::uint64_t> g_fault_delivery_ns{0};

void segv_handler(int signo, siginfo_t* info, void* ucontext) {
  void* addr = info->si_addr;
  std::uint8_t* calib = g_calib_page.load(std::memory_order_acquire);
  if (calib != nullptr && addr >= calib && addr < calib + kPageSize) {
    ::mprotect(calib, kPageSize, PROT_READ | PROT_WRITE);
    return;
  }
  for (auto& slot : g_runtimes) {
    DsmRuntime* rt = slot.load(std::memory_order_acquire);
    if (rt != nullptr && rt->arena().contains(addr)) {
      rt->handle_fault(addr);
      return;
    }
  }
  // Not ours: restore the previous disposition and re-raise so genuine bugs
  // crash loudly instead of looping.
  if (g_prev_action.sa_flags & SA_SIGINFO) {
    if (g_prev_action.sa_sigaction != nullptr) {
      g_prev_action.sa_sigaction(signo, info, ucontext);
      return;
    }
  } else if (g_prev_action.sa_handler != SIG_IGN && g_prev_action.sa_handler != SIG_DFL &&
             g_prev_action.sa_handler != nullptr) {
    g_prev_action.sa_handler(signo);
    return;
  }
  ::signal(SIGSEGV, SIG_DFL);
  ::raise(SIGSEGV);
}

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void calibrate_fault_cost_locked() {
  auto* page = static_cast<std::uint8_t*>(::mmap(
      nullptr, kPageSize, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
  NOW_CHECK(page != MAP_FAILED);
  g_calib_page.store(page, std::memory_order_release);
  constexpr int kRounds = 32;
  std::uint64_t total = 0;
  for (int i = 0; i < kRounds; ++i) {
    ::mprotect(page, kPageSize, PROT_NONE);
    const std::uint64_t t0 = monotonic_ns();
    page[128] = 1;  // fault -> handler reopens the page
    total += monotonic_ns() - t0;
  }
  g_calib_page.store(nullptr, std::memory_order_release);
  ::munmap(page, kPageSize);
  // Under concurrent load, delivery runs meaningfully slower than this idle
  // calibration; scale it up rather than bill kernel time as compute.
  g_fault_delivery_ns.store(2 * (total / kRounds), std::memory_order_relaxed);
}

void install_handler_locked() {
  if (g_installed) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = segv_handler;
  sa.sa_flags = SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  NOW_CHECK_EQ(::sigaction(SIGSEGV, &sa, &g_prev_action), 0);
  g_installed = true;
}

}  // namespace

void register_runtime(DsmRuntime* rt) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  const bool first = !g_installed;
  install_handler_locked();
  if (first) calibrate_fault_cost_locked();
  for (auto& slot : g_runtimes) {
    DsmRuntime* expected = nullptr;
    if (slot.compare_exchange_strong(expected, rt, std::memory_order_release))
      return;
  }
  NOW_CHECK(false) << "too many live DSM runtimes";
}

void unregister_runtime(DsmRuntime* rt) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (auto& slot : g_runtimes)
    if (slot.load(std::memory_order_relaxed) == rt)
      slot.store(nullptr, std::memory_order_release);
}

std::uint64_t fault_delivery_ns() {
  return g_fault_delivery_ns.load(std::memory_order_relaxed);
}

}  // namespace fault

}  // namespace now::tmk
