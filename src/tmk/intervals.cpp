#include "tmk/intervals.h"

#include <algorithm>

#include "common/check.h"

namespace now::tmk {

void IntervalRecord::serialize(ByteWriter& w) const {
  w.u32(node);
  w.u32(seq);
  w.u64(lamport);
  w.u32(static_cast<std::uint32_t>(pages.size()));
  for (PageIndex p : pages) w.u32(p);
}

IntervalRecord IntervalRecord::deserialize(ByteReader& r) {
  IntervalRecord rec;
  rec.node = r.u32();
  rec.seq = r.u32();
  rec.lamport = r.u64();
  const std::uint32_t n = r.u32();
  rec.pages.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) rec.pages.push_back(r.u32());
  return rec;
}

VectorTime KnowledgeLog::vt() const {
  VectorTime out(per_node_.size());
  for (std::size_t i = 0; i < per_node_.size(); ++i)
    out[i] = per_node_[i].empty() ? gc_floor_[i] : per_node_[i].back()->seq;
  return out;
}

void KnowledgeLog::append_own(IntervalRecord rec) {
  NOW_CHECK_LT(rec.node, per_node_.size());
  auto& log = per_node_[rec.node];
  NOW_CHECK_EQ(rec.seq, seq_of(rec.node) + 1)
      << "own interval sequence must be dense";
  max_lamport_ = std::max(max_lamport_, rec.lamport);
  total_bytes_ += rec.serialized_size();
  log.push_back(std::make_shared<const IntervalRecord>(std::move(rec)));
}

std::vector<IntervalRecordPtr> KnowledgeLog::merge(
    const std::vector<IntervalRecordPtr>& recs) {
  std::vector<IntervalRecordPtr> fresh;
  for (const IntervalRecordPtr& rec : recs) {
    NOW_CHECK_LT(rec->node, per_node_.size());
    auto& log = per_node_[rec->node];
    const std::uint32_t have = seq_of(rec->node);
    if (rec->seq <= have) continue;  // duplicate via another path
    NOW_CHECK_EQ(rec->seq, have + 1)
        << "gap in interval records for node " << rec->node
        << ": have " << have << ", got " << rec->seq;
    max_lamport_ = std::max(max_lamport_, rec->lamport);
    total_bytes_ += rec->serialized_size();
    log.push_back(rec);    // shares the record; no page-vector copy
    fresh.push_back(rec);
  }
  return fresh;
}

std::vector<IntervalRecordPtr> KnowledgeLog::delta_since(const VectorTime& since) const {
  NOW_CHECK_EQ(since.size(), per_node_.size());
  std::vector<IntervalRecordPtr> out;
  for (std::size_t n = 0; n < per_node_.size(); ++n) {
    const auto& log = per_node_[n];
    NOW_CHECK_GE(since[n], gc_floor_[n])
        << "delta for node " << n << " would need reclaimed records: floor is "
        << gc_floor_[n] << ", caller knows only " << since[n];
    // Explicit suffix lookup by sequence number: records are stored
    // seq-ascending, but the suffix is found by comparing seqs rather than by
    // assuming the log is dense from seq 1 — a prefix truncated by GC must
    // not silently shift the delta.
    auto it = std::upper_bound(
        log.begin(), log.end(), since[n],
        [](std::uint32_t seq, const IntervalRecordPtr& r) { return seq < r->seq; });
    if (it != log.end()) {
      NOW_CHECK_EQ((*it)->seq, since[n] + 1)
          << "knowledge log for node " << n
          << " no longer holds the suffix after seq " << since[n];
    }
    out.insert(out.end(), it, log.end());
  }
  return out;
}

std::size_t KnowledgeLog::gc_to(const VectorTime& floor) {
  NOW_CHECK_EQ(floor.size(), per_node_.size());
  std::size_t dropped = 0;
  for (std::size_t n = 0; n < per_node_.size(); ++n) {
    if (floor[n] <= gc_floor_[n]) continue;  // floors are monotone
    auto& log = per_node_[n];
    auto it = std::upper_bound(
        log.begin(), log.end(), floor[n],
        [](std::uint32_t seq, const IntervalRecordPtr& r) { return seq < r->seq; });
    dropped += static_cast<std::size_t>(it - log.begin());
    for (auto rit = log.begin(); rit != it; ++rit)
      total_bytes_ -= (*rit)->serialized_size();
    log.erase(log.begin(), it);
    gc_floor_[n] = floor[n];
  }
  return dropped;
}

std::size_t KnowledgeLog::total_records() const {
  std::size_t total = 0;
  for (const auto& log : per_node_) total += log.size();
  return total;
}

std::size_t KnowledgeLog::records_serialized_size(
    const std::vector<IntervalRecordPtr>& recs) {
  std::size_t total = 4;  // count prefix
  for (const auto& r : recs) total += r->serialized_size();
  return total;
}

void KnowledgeLog::serialize_records(ByteWriter& w,
                                     const std::vector<IntervalRecordPtr>& recs) {
  w.reserve(records_serialized_size(recs));
  w.u32(static_cast<std::uint32_t>(recs.size()));
  for (const auto& r : recs) r->serialize(w);
}

std::vector<IntervalRecordPtr> KnowledgeLog::deserialize_records(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<IntervalRecordPtr> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(std::make_shared<const IntervalRecord>(IntervalRecord::deserialize(r)));
  return out;
}

void KnowledgeLog::serialize_vt(ByteWriter& w, const VectorTime& vt) {
  w.reserve(4 + 4 * vt.size());
  w.u32(static_cast<std::uint32_t>(vt.size()));
  for (std::uint32_t v : vt) w.u32(v);
}

VectorTime KnowledgeLog::deserialize_vt(ByteReader& r) {
  const std::uint32_t n = r.u32();
  VectorTime out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = r.u32();
  return out;
}

}  // namespace now::tmk
