// Node lifecycle, consistency engine (intervals, merge/invalidate,
// twin materialization) and messaging helpers.
#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "tmk/arena.h"
#include "tmk/node.h"
#include "tmk/runtime.h"

namespace now::tmk {

Node::Node(DsmRuntime& rt, std::uint32_t id)
    : rt_(rt),
      id_(id),
      num_nodes_(rt.config().num_nodes),
      pages_(rt.config().num_pages()),
      log_(num_nodes_),
      sent_node_vt_(num_nodes_, VectorTime(num_nodes_, 0)),
      sent_mgr_vt_(num_nodes_, VectorTime(num_nodes_, 0)),
      delta_send_mu_(new std::mutex[num_nodes_]),
      gc_floor_applied_(num_nodes_, 0),
      gc_floor_validated_(num_nodes_, 0),
      mgr_(num_nodes_),
      tree_sent_up_vt_(num_nodes_, 0),
      stress_rng_(rt.config().stress_seed + id) {
  for (PageEntry& e : pages_) e.diff_cache.bind_total(&diff_cache_total_bytes_);
}

Node::~Node() = default;

void Node::start_service() {
  service_thread_ = std::thread([this] { service_main(); });
}

void Node::join_service() {
  if (service_thread_.joinable()) service_thread_.join();
}

void Node::bind_compute_thread() {
  detail::region_base() = rt_.arena().region_base(id_);
  cpu_meter_.rebase();
}

void Node::sync_cpu() {
  clock_.advance_ns(rt_.config().time.scale_ns(cpu_meter_.take_delta_ns()));
}

// ---------------------------------------------------------------------------
// Consistency engine
// ---------------------------------------------------------------------------

void Node::close_interval() {
  if (dirty_pages_.empty()) return;

  std::sort(dirty_pages_.begin(), dirty_pages_.end());
  dirty_pages_.erase(std::unique(dirty_pages_.begin(), dirty_pages_.end()),
                     dirty_pages_.end());

  IntervalRecord rec;
  rec.node = id_;
  rec.pages = dirty_pages_;
  std::uint32_t rec_seq;
  const std::size_t rec_npages = rec.pages.size();
  const PageIndex rec_first = rec.pages.empty() ? 0 : rec.pages[0];
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    own_lamport_ = std::max(own_lamport_, log_.max_lamport()) + 1;
    rec.seq = rec_seq = ++own_seq_;
    rec.lamport = own_lamport_;
    log_.append_own(std::move(rec));
  }

  // The barrier push pass wants this epoch's intervals by dirty page.
  if (rt_.config().update_enabled())
    for (PageIndex page : dirty_pages_) epoch_dirty_[page].push_back(rec_seq);

  // Write-protect the interval's dirty pages so later writes fault and
  // materialize this interval's diff before starting a new twin.
  for (PageIndex page : dirty_pages_) {
    PageEntry& e = pages_[page];
    std::lock_guard<std::mutex> lock(e.mu);
    if (e.state == PageState::kWritable) {
      rt_.arena().protect_read(id_, page);
      e.state = PageState::kReadOnly;
    }
    // kInvalid: the page was invalidated mid-interval; its partial diff is
    // already in the store under this interval's seq.
  }
  dirty_pages_.clear();
  // Interval bookkeeping (mprotect syscalls) is protocol work, not app
  // compute; close_interval only ever runs on the compute thread.
  cpu_meter_.rebase();
  NOW_LOG(kDebug, "node %u closed interval %u (%zu pages, first=%u)", id_,
          rec_seq, rec_npages, rec_first);
}

void Node::merge_and_invalidate(const std::vector<IntervalRecordPtr>& recs) {
  std::vector<IntervalRecordPtr> fresh;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    fresh = log_.merge(recs);
  }
  for (const IntervalRecordPtr& recp : fresh) {
    const IntervalRecord& rec = *recp;
    NOW_CHECK_NE(rec.node, id_) << "merged a record we authored";
    for (PageIndex page : rec.pages) {
      PageEntry& e = pages_[page];
      std::lock_guard<std::mutex> lock(e.mu);
      e.unapplied.push_back({rec.node, rec.seq, rec.lamport});
      if (e.state != PageState::kInvalid) invalidate_page(page, e);
      // An armed page is already kInvalid; a fresh notice still stales its
      // applied-and-current contents.
      e.push_armed = false;
      e.lock_push_armed = false;
    }
  }
  // Seed the GC validation scan with the pages that just gained notices
  // (consumed whenever a floor is applied: barriers and fork points).
  if (!fresh.empty() && rt_.config().gc_floors_enabled()) {
    std::lock_guard<std::mutex> lock(gc_scan_mu_);
    for (const IntervalRecordPtr& recp : fresh)
      gc_scan_pages_.insert(gc_scan_pages_.end(), recp->pages.begin(),
                            recp->pages.end());
  }
  // Invalidation mprotects are protocol work, not application compute; when
  // running on the compute thread, keep them out of the meter.  (The service
  // thread also merges — flush/fork/join — but never owns the meter.)
  if (detail::region_base() == rt_.arena().region_base(id_)) cpu_meter_.rebase();
}

void Node::invalidate_page(PageIndex page, PageEntry& e) {
  NOW_CHECK(e.state != PageState::kInvalid);
  materialize_twin(page, e);  // no-op without a twin
  rt_.arena().protect_none(id_, page);
  e.state = PageState::kInvalid;
  e.push_armed = false;  // armed contents are no longer current
  e.lock_push_armed = false;
  stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
}

void Node::materialize_twin(PageIndex page, PageEntry& e) {
  if (!e.twin_valid) return;
  NOW_CHECK(e.state != PageState::kInvalid) << "twin on an invalid page";
  const std::uint8_t* current = rt_.arena().page_ptr(id_, page);
  // Scan into a per-thread scratch buffer (both the compute and the service
  // thread materialize twins), then store an exactly-sized copy: the scratch
  // absorbs the grow-reallocations, the store never over-holds.
  thread_local DiffBytes scratch;
  scratch.clear();
  diff_append(scratch, e.twin.data.get(), current, kPageSize);
  DiffBytes diff(scratch.begin(), scratch.end());
  const auto& cfg = rt_.config();
  clock_.advance_us(cfg.diff_create_base_us +
                    cfg.diff_create_per_kb_us *
                        (static_cast<double>(diff.size()) / 1024.0));
  stats_.diffs_created.fetch_add(1, std::memory_order_relaxed);
  stats_.diff_bytes_created.fetch_add(diff.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    diff_store_bytes_.fetch_add(
        diff_store_[diff_store_key(page, e.twin.seq)].emplace_back(std::move(diff)).size(),
        std::memory_order_relaxed);
  }
  e.twin_valid = false;
  e.twin.data.reset();
}

VectorTime Node::gc_floor_snapshot() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return gc_floor_applied_;
}

Node::MetaFootprint Node::meta_footprint() {
  MetaFootprint f;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    f.log_records = log_.total_records();
    f.log_bytes = log_.total_bytes();
  }
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    f.diff_store_entries = diff_store_.size();
    for (const auto& [key, chunks] : diff_store_)
      for (const DiffBytes& d : chunks) f.diff_store_bytes += d.size();
  }
  for (PageEntry& e : pages_) {
    std::lock_guard<std::mutex> lock(e.mu);
    f.diff_cache_bytes += e.diff_cache.bytes();
    f.diff_cache_pinned_bytes += e.diff_cache.pinned_bytes();
    f.relay_bytes += e.diff_cache.relay_bytes();
  }
  return f;
}

std::size_t Node::meta_bytes() {
  std::size_t total = diff_store_bytes_.load(std::memory_order_relaxed) +
                      diff_cache_total_bytes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(meta_mu_);
  return total + log_.total_bytes();
}

// ---------------------------------------------------------------------------
// Messaging helpers
// ---------------------------------------------------------------------------

std::map<Node::DiffKey, std::vector<Node::DiffChunkView>> Node::fetch_diffs(
    const std::vector<DiffWant>& wants, std::vector<sim::Message>& replies,
    bool for_gc) {
  // One kDiffRequest per *writer*, carrying every page wanted from it:
  // a fault and its prefetch window share one round trip, and the GC
  // validation pass batches a whole barrier's worth of pages per writer.
  std::map<std::uint32_t, std::vector<const DiffWant*>> by_writer;
  for (const DiffWant& want : wants) {
    NOW_CHECK_NE(want.writer, id_) << "unapplied notice for our own interval";
    by_writer[want.writer].push_back(&want);
  }

  // Copyset tag: the requester's 0-based epoch (barriers completed).  The
  // writer folds an epoch's readers only after its own departure from the
  // barrier that ended it, by which point every fault-path request of that
  // epoch has been served (the requester could not have arrived otherwise).
  // GC-validation fetches are flagged instead of recorded: fetching an old
  // diff at a barrier is evidence the reader did NOT touch the page.
  const std::uint32_t epoch_tag = static_cast<std::uint32_t>(
      stats_.barriers.load(std::memory_order_relaxed));

  // All requests go out before any wait (TreadMarks pipelines these to hide
  // latency).
  struct Call {
    std::uint64_t tok = 0;
    std::uint32_t writer = 0;
    std::vector<PageIndex> pages;  // request order; the reply must echo it
  };
  std::vector<Call> calls;
  calls.reserve(by_writer.size());
  for (const auto& [writer, writer_wants] : by_writer) {
    ByteWriter w;
    w.u32(epoch_tag);
    w.u8(for_gc ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(writer_wants.size()));
    std::vector<PageIndex> pages;
    pages.reserve(writer_wants.size());
    for (const DiffWant* want : writer_wants) {
      w.u32(want->page);
      w.u32(static_cast<std::uint32_t>(want->seqs.size()));
      for (std::uint32_t s : want->seqs) w.u32(s);
      pages.push_back(want->page);
    }
    const std::uint64_t tok = rpc_.begin();
    sim::Message m;
    m.type = kDiffRequest;
    m.dst = writer;
    m.seq = tok;
    m.payload = w.take();
    send_compute(std::move(m));
    calls.push_back({tok, writer, std::move(pages)});
  }
  stats_.diff_fetches.fetch_add(calls.size(), std::memory_order_relaxed);

  // The chunk views point into the reply payloads (zero-copy: the only copy
  // left to the caller is whatever it does with the chunks).  The payload
  // heap buffers are stable even if `replies` reallocates.
  std::map<DiffKey, std::vector<DiffChunkView>> got;
  replies.reserve(replies.size() + calls.size());
  for (const Call& c : calls) {
    replies.push_back(rpc_.wait(c.tok));
    const sim::Message& reply = replies.back();
    arrive(reply);
    ByteReader r(reply.payload);
    const std::uint32_t npages = r.u32();
    NOW_CHECK_EQ(npages, c.pages.size());
    for (std::uint32_t p = 0; p < npages; ++p) {
      const PageIndex rpage = r.u32();
      // The reply echoes the requested pages in order; a mislabeled page
      // would silently file chunks under the wrong cache, so fail fast.
      NOW_CHECK_EQ(rpage, c.pages[p]);
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t seq = r.u32();
        const std::uint32_t nchunks = r.u32();
        auto& chunks = got[{rpage, c.writer, seq}];
        for (std::uint32_t k = 0; k < nchunks; ++k) chunks.push_back(r.bytes_view());
      }
    }
  }
  return got;
}

std::vector<IntervalRecordPtr> Node::take_delta_for(std::uint32_t peer, Cache which,
                                                    const VectorTime* extra) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  VectorTime& cache =
      (which == Cache::kNodeLog ? sent_node_vt_ : sent_mgr_vt_)[peer];
  VectorTime base = extra ? vt_max(cache, *extra) : cache;
  std::vector<IntervalRecordPtr> delta = log_.delta_since(base);
  if (log_enabled(LogLevel::kDebug)) {
    NOW_LOG(kDebug,
            "node %u: take_delta(peer=%u, %s): cache=[%u,%u] extra=[%u,%u] log=[%u,%u] -> %zu recs",
            id_, peer, which == Cache::kNodeLog ? "node" : "mgr",
            cache.empty() ? 0 : cache[0], cache.size() > 1 ? cache[1] : 0,
            extra && !extra->empty() ? (*extra)[0] : 0,
            extra && extra->size() > 1 ? (*extra)[1] : 0,
            log_.seq_of(0), num_nodes_ > 1 ? log_.seq_of(1) : 0, delta.size());
  }
  cache = log_.vt();
  return delta;
}

void Node::send_compute(sim::Message&& m) {
  clock_.advance_us(rt_.config().net.send_overhead_us);
  m.src = id_;
  m.send_ts_ns = clock_.now_ns();
  rt_.net().send(std::move(m));
}

void Node::send_service(sim::Message&& m, std::uint64_t base_ts) {
  // Service replies depart after the modeled interrupt-service time; the
  // interrupt also steals CPU from whatever the host node was computing.
  const std::uint64_t overhead =
      static_cast<std::uint64_t>(rt_.config().net.service_overhead_us * 1000.0);
  m.src = id_;
  m.send_ts_ns = base_ts + overhead;
  rt_.net().send(std::move(m));
}

void Node::arrive(const sim::Message& m) {
  clock_.advance_to_ns(m.arrive_ts_ns);
  clock_.advance_us(rt_.config().net.recv_overhead_us);
  cpu_meter_.rebase();
}

sim::Message Node::rpc_call(std::uint32_t dst, std::uint16_t type,
                            std::vector<std::uint8_t> payload) {
  const std::uint64_t tok = rpc_.begin();
  sim::Message m;
  m.type = type;
  m.dst = dst;
  m.seq = tok;
  m.payload = std::move(payload);
  send_compute(std::move(m));
  sim::Message reply = rpc_.wait(tok);
  arrive(reply);
  return reply;
}

}  // namespace now::tmk
