#include "tmk/runtime.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/log.h"

namespace now::tmk {

DsmRuntime::DsmRuntime(DsmConfig cfg)
    : cfg_(cfg),
      topo_(cfg),
      arena_(cfg.num_nodes, cfg.heap_bytes),
      net_(cfg.num_nodes, cfg.net, cfg.channel()) {
  nodes_.reserve(cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i)
    nodes_.push_back(std::make_unique<Node>(*this, i));
  fault::register_runtime(this);
  for (auto& n : nodes_) n->start_service();
}

DsmRuntime::~DsmRuntime() {
  net_.close_all();
  for (auto& n : nodes_) n->join_service();
  fault::unregister_runtime(this);
}

void DsmRuntime::handle_fault(void* addr) {
  nodes_[arena_.node_of(addr)]->handle_fault(addr);
}

void DsmRuntime::run_spmd(const std::function<void(Tmk&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    threads.emplace_back([this, i, &fn] {
      Node& n = *nodes_[i];
      n.bind_compute_thread();
      Tmk tmk{n, *this};
      fn(tmk);
      n.sync_cpu();
    });
  }
  for (auto& t : threads) t.join();
}

void DsmRuntime::run_master(const std::function<void(Tmk&)>& program) {
  run_spmd([this, &program](Tmk& tmk) {
    if (tmk.id() == topo_.master_node()) {
      program(tmk);
      tmk.node.shutdown_slaves();
    } else {
      while (tmk.node.slave_serve_one(tmk)) {
      }
    }
  });
}

void DsmRuntime::debug_dump() {
  for (auto& n : nodes_) n->debug_dump();
}

DsmStatsSnapshot DsmRuntime::total_stats() const {
  DsmStatsSnapshot total;
  for (const auto& n : nodes_) total += n->stats().snapshot();
  return total;
}

std::uint64_t DsmRuntime::virtual_time_ns() const {
  std::uint64_t t = 0;
  for (const auto& n : nodes_) t = std::max(t, n->clock().now_ns());
  return t;
}

std::uint64_t DsmRuntime::allocator_alloc(std::size_t bytes, std::size_t align) {
  NOW_CHECK_GT(bytes, 0u);
  align = std::max<std::size_t>(align, 64);
  // Round sizes so freed blocks are reusable across similar requests.
  const std::size_t size = (bytes + align - 1) / align * align;

  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto it = alloc_free_.find(size);
  if (it != alloc_free_.end() && !it->second.empty()) {
    const std::uint64_t off = it->second.back();
    it->second.pop_back();
    alloc_live_[off] = size;
    return off;
  }
  std::uint64_t off = (alloc_bump_ + align - 1) / align * align;
  NOW_CHECK_LE(off + size, cfg_.heap_bytes)
      << "shared heap exhausted: need " << size << " bytes at offset " << off
      << " of " << cfg_.heap_bytes;
  alloc_bump_ = off + size;
  alloc_live_[off] = size;
  return off;
}

void DsmRuntime::allocator_free(std::uint64_t offset) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto it = alloc_live_.find(offset);
  NOW_CHECK(it != alloc_live_.end()) << "free of unallocated offset " << offset;
  alloc_free_[it->second].push_back(offset);
  alloc_live_.erase(it);
}

}  // namespace now::tmk
