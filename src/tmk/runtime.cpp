#include "tmk/runtime.h"

#include <algorithm>
#include <thread>

#include "common/bytes.h"
#include "common/check.h"
#include "common/log.h"
#include "tmk/msgs.h"

namespace now::tmk {

DsmRuntime::DsmRuntime(DsmConfig cfg)
    : cfg_(cfg),
      topo_(cfg),
      arena_(cfg.num_nodes, cfg.heap_bytes),
      net_(cfg.num_nodes, cfg.net, cfg.channel()) {
  nodes_.reserve(cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i)
    nodes_.push_back(std::make_unique<Node>(*this, i));
  fault::register_runtime(this);
  // Only armed alongside crash injection: the callback turns retransmit
  // exhaustion from a hard abort into a node-down verdict, and a fault-only
  // (non-crash) run must keep aborting loudly when the wire misbehaves
  // beyond what retransmission can absorb.
  if (cfg_.crash_enabled())
    net_.set_node_down([this](sim::NodeId v) { announce_node_down(v); });
  for (auto& n : nodes_) n->start_service();
}

DsmRuntime::~DsmRuntime() {
  net_.close_all();
  for (auto& n : nodes_) n->join_service();
  fault::unregister_runtime(this);
}

void DsmRuntime::handle_fault(void* addr) {
  nodes_[arena_.node_of(addr)]->handle_fault(addr);
}

RunReport DsmRuntime::run_spmd(const std::function<void(Tmk&)>& fn) {
  RunReport report;
  for (;;) {
    std::vector<std::thread> threads;
    threads.reserve(cfg_.num_nodes);
    for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
      threads.emplace_back([this, i, &fn] {
        Node& n = *nodes_[i];
        n.bind_compute_thread();
        Tmk tmk{n, *this};
        try {
          fn(tmk);
        } catch (const NodeCrashedError&) {
          // The scripted victim: its threads just stop.
        } catch (const NodeDownError&) {
          // Collateral unwind on a survivor.  Recovery (or the clean
          // failure report) starts only after every thread quiesced.
        }
        n.sync_cpu();
      });
    }
    for (auto& t : threads) t.join();
    if (!node_down_.load(std::memory_order_acquire)) return report;

    report.node_down = true;
    report.victim = node_down_victim_.load(std::memory_order_relaxed);
    if (!cfg_.ckpt_enabled()) {
      // No checkpoints to roll back to: report the failure cleanly.  The
      // runtime stays destructible (services exit on their closed
      // mailboxes) but the run's results are void.
      report.completed = false;
      return report;
    }
    NOW_CHECK_LT(recoveries_, kMaxRecoveries)
        << "crash recovery did not converge";
    recover_from_checkpoint();
    report.recoveries = recoveries_;
    report.resume_epoch = resume_epoch_;
  }
}

RunReport DsmRuntime::run_master(const std::function<void(Tmk&)>& program) {
  return run_spmd([this, &program](Tmk& tmk) {
    if (tmk.id() == topo_.master_node()) {
      program(tmk);
      tmk.node.shutdown_slaves();
    } else {
      while (tmk.node.slave_serve_one(tmk)) {
      }
    }
  });
}

void DsmRuntime::announce_node_down(std::uint32_t victim) {
  // First verdict wins; duplicates (several links exhausting at once, or the
  // victim's own closed links) change nothing.
  bool expected = false;
  if (!node_down_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel))
    return;
  node_down_victim_.store(victim, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    if (i == victim) continue;
    sim::Message m;
    m.type = kNodeDown;
    m.src = i;  // self-addressed control: bypasses channel sequencing
    m.dst = i;
    ByteWriter w;
    w.u32(victim);
    m.payload = w.take();
    net_.post_control(std::move(m));
  }
}

void DsmRuntime::recover_from_checkpoint() {
  // Quiesce: compute threads are already joined (run_spmd), so closing the
  // mailboxes lets every service thread drain and exit.
  net_.close_all();
  for (auto& n : nodes_) n->join_service();

  // The crashed segment's work is real: carry its stats and clock forward
  // before the nodes (and their counters) are destroyed.
  std::uint64_t segment_barriers = 0;
  for (auto& n : nodes_) {
    DsmStatsSnapshot s = n->stats().snapshot();
    segment_barriers = std::max(segment_barriers, s.barriers);
    carried_stats_ += s;
    carried_vt_ = std::max(carried_vt_, n->clock().now_ns());
  }
  const std::uint64_t durable = ckpt_.durable_epoch();
  const std::uint64_t progressed = resume_epoch_ + segment_barriers;
  carried_stats_.rollback_epochs_lost +=
      progressed > durable ? progressed - durable : 0;
  carried_stats_.recoveries += 1;
  ++recoveries_;

  // Reboot the cluster: fresh nodes, fresh wire, zero heap.
  nodes_.clear();
  net_.reset();
  ckpt_.drop_staging();
  node_down_.store(false, std::memory_order_release);
  resume_epoch_ = durable;
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i)
    arena_.reset_region(i);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i)
    nodes_.push_back(std::make_unique<Node>(*this, i));

  // Rehydrate from the durable image: every node starts with the checkpoint
  // bytes resident read-only — for the consistency protocol this is
  // indistinguishable from a fresh run whose zero-heap happened to contain
  // them.  Sema counts return to their managers, the allocator to its server.
  for (const auto& [page, bytes] : ckpt_.pages())
    for (auto& n : nodes_) n->rehydrate_page(page, bytes.data());
  for (const auto& [sid, count] : ckpt_.semas())
    nodes_[topo_.sema_manager(sid)]->mgr_.semas[sid].count = count;
  restore_allocator();
  for (auto& n : nodes_) n->start_service();
}

void DsmRuntime::restore_allocator() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const AllocImage& img = ckpt_.alloc();
  if (!img.valid) {  // restart from scratch: nothing was ever durable
    alloc_bump_ = kHeapStart;
    alloc_live_.clear();
    alloc_free_.clear();
    return;
  }
  alloc_bump_ = img.bump;
  alloc_live_ = img.live;
  alloc_free_ = img.free_list;
}

void DsmRuntime::stage_alloc_image(std::uint64_t epoch) {
  AllocImage img;
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    img.bump = alloc_bump_;
    img.live = alloc_live_;
    img.free_list = alloc_free_;
  }
  ckpt_.stage_alloc(epoch, std::move(img));
}

void DsmRuntime::debug_dump() {
  for (auto& n : nodes_) n->debug_dump();
}

DsmStatsSnapshot DsmRuntime::total_stats() const {
  DsmStatsSnapshot total = carried_stats_;
  for (const auto& n : nodes_) total += n->stats().snapshot();
  return total;
}

std::uint64_t DsmRuntime::virtual_time_ns() const {
  std::uint64_t t = carried_vt_;
  for (const auto& n : nodes_) t = std::max(t, n->clock().now_ns());
  return t;
}

std::uint64_t DsmRuntime::allocator_alloc(std::size_t bytes, std::size_t align) {
  NOW_CHECK_GT(bytes, 0u);
  align = std::max<std::size_t>(align, 64);
  // Round sizes so freed blocks are reusable across similar requests.
  const std::size_t size = (bytes + align - 1) / align * align;

  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto it = alloc_free_.find(size);
  if (it != alloc_free_.end() && !it->second.empty()) {
    const std::uint64_t off = it->second.back();
    it->second.pop_back();
    alloc_live_[off] = size;
    return off;
  }
  std::uint64_t off = (alloc_bump_ + align - 1) / align * align;
  NOW_CHECK_LE(off + size, cfg_.heap_bytes)
      << "shared heap exhausted: need " << size << " bytes at offset " << off
      << " of " << cfg_.heap_bytes;
  alloc_bump_ = off + size;
  alloc_live_[off] = size;
  return off;
}

void DsmRuntime::allocator_free(std::uint64_t offset) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto it = alloc_live_.find(offset);
  NOW_CHECK(it != alloc_live_.end()) << "free of unallocated offset " << offset;
  alloc_free_[it->second].push_back(offset);
  alloc_live_.erase(it);
}

}  // namespace now::tmk
