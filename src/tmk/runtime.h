// The DSM runtime: owns the arena, the simulated network and the nodes, and
// exposes the TreadMarks-style API through per-node `Tmk` handles.
//
// Two execution styles are supported, matching the paper:
//   - run_spmd: every node runs the same function (hand-coded TreadMarks
//     applications are SPMD programs synchronizing with barriers/locks);
//   - run_master: node 0 runs the program and the others sit in a fork
//     service loop (the Tmk_fork/Tmk_join style "specifically tailored to
//     the fork-join parallelism expected by OpenMP").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <map>
#include <vector>

#include <atomic>

#include "simnet/network.h"
#include "tmk/arena.h"
#include "tmk/checkpoint.h"
#include "tmk/config.h"
#include "tmk/gptr.h"
#include "tmk/node.h"
#include "tmk/stats.h"
#include "tmk/topology.h"

namespace now::tmk {

class DsmRuntime;

// Per-node handle passed to application code.  All shared-memory access goes
// through gptr<T>; all synchronization goes through these methods.
struct Tmk {
  Node& node;
  DsmRuntime& rt;

  std::uint32_t id() const { return node.id(); }
  std::uint32_t nprocs() const;

  // ---- shared heap ----
  gptr<void> alloc(std::size_t bytes, std::size_t align = 64) {
    return gptr<void>(node.shared_malloc(bytes, align));
  }
  template <typename T>
  gptr<T> alloc_array(std::size_t n) {
    return gptr<T>(node.shared_malloc(n * sizeof(T), alignof(T) > 64 ? alignof(T) : 64));
  }
  void free(gptr<void> p) { node.shared_free(p.offset()); }

  // A fixed page of shared root slots (the moral equivalent of a Fortran
  // common block "loaded in a standard location"): the master stores gptrs
  // to its allocations here before the first barrier/fork.
  template <typename T>
  gptr<T> root(std::size_t slot) const {
    return gptr<T>(slot * sizeof(std::uint64_t)).template cast<T>();
  }
  void set_root(std::size_t slot, gptr<void> p) {
    root<std::uint64_t>(slot)[0] = p.offset();
  }
  template <typename T>
  gptr<T> get_root(std::size_t slot) const {
    return gptr<T>(root<std::uint64_t>(slot)[0]);
  }

  // ---- synchronization ----
  void barrier() { node.barrier(); }
  void lock_acquire(std::uint32_t id_) { node.lock_acquire(id_); }
  void lock_release(std::uint32_t id_) { node.lock_release(id_); }
  void sema_wait(std::uint32_t id_) { node.sema_wait(id_); }
  void sema_signal(std::uint32_t id_) { node.sema_signal(id_); }
  void cond_wait(std::uint32_t lock, std::uint32_t cond) { node.cond_wait(lock, cond); }
  void cond_signal(std::uint32_t lock, std::uint32_t cond) { node.cond_signal(lock, cond); }
  void cond_broadcast(std::uint32_t lock, std::uint32_t cond) { node.cond_broadcast(lock, cond); }
  void flush() { node.flush(); }

  // ---- fork/join (master side; see DsmRuntime::run_master) ----
  void fork(ForkFn fn, const void* arg, std::size_t arg_size) {
    node.fork_slaves(fn, arg, arg_size);
  }
  void join() { node.join_slaves(); }

  // ---- crash recovery ----
  // Barrier epochs already durable when this execution of `fn` started:
  // 0 on the first attempt, the rolled-back-to epoch after a recovery.
  // Restart-aware programs gate their initialization on it and resume their
  // loop from checkpointed progress state in shared memory.
  std::uint64_t resume_epoch() const;
};

// What a run did, crash-wise.  Source compatibility: callers that ignore the
// return value behave exactly as before (a crash-free run is `completed` with
// everything else zero).
struct RunReport {
  bool completed = true;    // fn ran to completion on every node
  bool node_down = false;   // a node-crash verdict was raised at least once
  std::uint32_t victim = 0; // the node that died (valid when node_down)
  std::uint32_t recoveries = 0;   // rollback/restart cycles taken
  std::uint64_t resume_epoch = 0; // durable epoch of the last restart
};

class DsmRuntime {
 public:
  explicit DsmRuntime(DsmConfig cfg);
  ~DsmRuntime();
  DsmRuntime(const DsmRuntime&) = delete;
  DsmRuntime& operator=(const DsmRuntime&) = delete;

  // Runs `fn` on every node concurrently (SPMD); returns when all complete.
  // If a node-crash verdict is raised mid-run and checkpointing is on, the
  // whole cluster is rolled back to the last durable barrier epoch and `fn`
  // re-runs (restart-aware programs consult Tmk::resume_epoch); with
  // checkpointing off the failure is reported cleanly instead.
  RunReport run_spmd(const std::function<void(Tmk&)>& fn);

  // Runs `program` on node 0 while the other nodes serve Tmk_fork requests;
  // returns when the program finishes and the slaves have been shut down.
  RunReport run_master(const std::function<void(Tmk&)>& program);

  const DsmConfig& config() const { return cfg_; }
  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }
  sim::Network& net() { return net_; }
  Node& node(std::uint32_t id) { return *nodes_[id]; }

  // Manager placement, all of it: barrier tree, lock/sema shards, master
  // and allocation duties.  No call site may assume node 0.
  const SyncTopology& topology() const { return topo_; }

  // SIGSEGV dispatch (called by the installed handler).
  void handle_fault(void* addr);

  // ---- measurement ----
  sim::TrafficSnapshot traffic() const { return net_.traffic(); }
  DsmStatsSnapshot total_stats() const;
  // Completion time of the run: the maximum virtual clock over all nodes.
  std::uint64_t virtual_time_ns() const;
  double virtual_time_us() const {
    return static_cast<double>(virtual_time_ns()) / 1000.0;
  }

  // Dumps every node's synchronization state to stderr (deadlock forensics).
  void debug_dump();

  // ---- shared heap allocator (the node-0 allocation server's state) ----
  std::uint64_t allocator_alloc(std::size_t bytes, std::size_t align);
  void allocator_free(std::uint64_t offset);

  // First offset handed out by the allocator (after the root-slot page).
  static constexpr std::uint64_t kHeapStart = kPageSize;

  // ---- crash recovery plumbing (used by Node) ----
  CheckpointStore& checkpoint() { return ckpt_; }
  // Barrier epochs durable before the current execution attempt began.
  std::uint64_t resume_epoch() const { return resume_epoch_; }
  // The scripted crash fires once per run, even across recoveries: only the
  // first claimant dies (the counter-selected sync point replays identically
  // after a rollback — without this latch the victim would die again).
  bool claim_crash() { return !crash_claimed_.exchange(true); }
  // Alloc server's checkpoint pass: snapshot the allocator into staging.
  void stage_alloc_image(std::uint64_t epoch);

 private:
  // Channel verdict (retransmit exhaustion on some node's link): posts a
  // kNodeDown control message into every live mailbox so each service thread
  // poisons its compute thread's rendezvous.  Runs on whichever service
  // thread's channel maintenance pass detected the death.
  void announce_node_down(std::uint32_t victim);
  // Quiesce the cluster, carry its stats/clock forward, then rebuild every
  // node from the last durable checkpoint (or from scratch when none is).
  void recover_from_checkpoint();
  void restore_allocator();  // from ckpt_.alloc(); cluster quiesced

  // A crash site that replays identically after every rollback (e.g. one
  // planted *before* any checkpoint can complete, with ckpt_every too large)
  // would recover forever; claim_crash prevents the scripted one from
  // refiring, so this cap only catches runaway protocol bugs.
  static constexpr std::uint32_t kMaxRecoveries = 8;

  DsmConfig cfg_;
  SyncTopology topo_;
  Arena arena_;
  sim::Network net_;
  std::vector<std::unique_ptr<Node>> nodes_;

  std::mutex alloc_mu_;
  std::uint64_t alloc_bump_ = kHeapStart;
  std::map<std::uint64_t, std::size_t> alloc_live_;          // offset -> size
  std::map<std::size_t, std::vector<std::uint64_t>> alloc_free_;  // size -> offsets

  // ---- crash recovery state ----
  CheckpointStore ckpt_;
  std::atomic<bool> node_down_{false};
  std::atomic<std::uint32_t> node_down_victim_{0};
  std::atomic<bool> crash_claimed_{false};
  std::uint64_t resume_epoch_ = 0;
  std::uint32_t recoveries_ = 0;
  // Stats and virtual time of execution attempts that were rolled back: the
  // work (and the wire traffic) a crashed segment burned is real and stays
  // in the totals.
  DsmStatsSnapshot carried_stats_;
  std::uint64_t carried_vt_ = 0;
};

inline std::uint32_t Tmk::nprocs() const { return rt.config().num_nodes; }
inline std::uint64_t Tmk::resume_epoch() const { return rt.resume_epoch(); }

}  // namespace now::tmk
