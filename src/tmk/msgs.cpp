#include "tmk/msgs.h"

namespace now::tmk {

const char* msg_type_name(std::uint16_t t) {
  switch (t) {
    case kFork: return "fork";
    case kJoin: return "join";
    case kShutdown: return "shutdown";
    case kDiffRequest: return "diff_req";
    case kDiffReply: return "diff_reply";
    case kLockAcquire: return "lock_acquire";
    case kLockForward: return "lock_forward";
    case kLockGrant: return "lock_grant";
    case kBarrierArrive: return "barrier_arrive";
    case kBarrierDepart: return "barrier_depart";
    case kSemaSignal: return "sema_signal";
    case kSemaAck: return "sema_ack";
    case kSemaWait: return "sema_wait";
    case kSemaGrant: return "sema_grant";
    case kCondWait: return "cond_wait";
    case kCondSignal: return "cond_signal";
    case kCondBroadcast: return "cond_broadcast";
    case kFlushNotice: return "flush_notice";
    case kFlushAck: return "flush_ack";
    case kAllocRequest: return "alloc_req";
    case kAllocReply: return "alloc_reply";
    case kFreeRequest: return "free_req";
    case kFreeAck: return "free_ack";
    case kUpdatePush: return "update_push";
    case kUpdateDeny: return "update_deny";
    case kLockPushDeny: return "lock_push_deny";
    case kTreeArrive: return "tree_arrive";
    case kTreeDepart: return "tree_depart";
    case kGcRequest: return "gc_request";
    case kGcArrive: return "gc_arrive";
    case kGcDepart: return "gc_depart";
    case kAck: return "ack";
    case kCondWaitAck: return "cond_wait_ack";
    case kPing: return "ping";
    case kNodeDown: return "node_down";
    case kCkptQuery: return "ckpt_query";
    case kCkptReply: return "ckpt_reply";
    case kCkptCommit: return "ckpt_commit";
    case kCkptAck: return "ckpt_ack";
    default: return "unknown";
  }
}

}  // namespace now::tmk
