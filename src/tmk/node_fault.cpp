// Page fault handling: access detection, cold zero-fills, diff fetch/apply
// and write-twin creation.  Runs on the faulting node's compute thread, from
// inside the SIGSEGV handler (the fault is synchronous, so this is an
// ordinary function call context).
#include <algorithm>
#include <cstring>
#include <map>

#include "common/bytes.h"
#include "common/log.h"
#include "tmk/arena.h"
#include "tmk/gptr.h"
#include "tmk/node.h"
#include "tmk/runtime.h"

namespace now::tmk {

void Node::handle_fault(void* addr) {
  NOW_CHECK(detail::region_base() == rt_.arena().region_base(id_))
      << "shared memory of node " << id_
      << " touched from a thread not bound to it";
  // The compute stretch that ended in this fault includes the kernel's
  // signal-delivery latency (large under sandboxed kernels).  Subtract the
  // calibrated delivery cost so only application work is billed; the DSM's
  // own fault cost is the modeled fault_overhead below.
  {
    std::uint64_t delta = cpu_meter_.take_delta_ns();
    const std::uint64_t delivery = fault::fault_delivery_ns();
    delta -= std::min(delta, delivery);
    clock_.advance_ns(rt_.config().time.scale_ns(delta));
  }
  clock_.advance_us(rt_.config().fault_overhead_us);
  // Host time spent inside the handler (sandboxed signal delivery, mprotect,
  // twin copies) is NOT application compute: the protocol's costs are
  // modeled explicitly, so the meter is re-based on every exit path.
  struct RebaseOnExit {
    sim::CpuMeter& meter;
    ~RebaseOnExit() { meter.rebase(); }
  } rebase_guard{cpu_meter_};

  const PageIndex page = rt_.arena().page_of(addr);
  PageEntry& e = pages_[page];
  std::unique_lock<std::mutex> lock(e.mu);

  switch (e.state) {
    case PageState::kInvalid: {
      stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
      e.push_touched = true;  // the reader still uses this data (update probe)
      lock_push_note_touch(page);
      if (e.unapplied.empty()) {
        if (e.push_armed || e.lock_push_armed) {
          // Armed push (barrier update protocol or lock-grant chain): the
          // contents are already current, the fault only remaps the page —
          // the probe that proves the reader still consumes the pushed
          // data.  No messages.
          if (e.push_armed)
            stats_.update_push_hits.fetch_add(1, std::memory_order_relaxed);
          if (e.lock_push_armed)
            stats_.lock_push_hits.fetch_add(1, std::memory_order_relaxed);
          e.push_armed = false;
          e.lock_push_armed = false;
        } else if (!e.ever_valid) {
          // First touch of a never-written page: the zero-filled local copy
          // is the correct initial contents — no communication, as in
          // TreadMarks.
          stats_.cold_zero_fills.fetch_add(1, std::memory_order_relaxed);
        }
        rt_.arena().protect_read(id_, page);
        e.state = PageState::kReadOnly;
        e.ever_valid = true;
        return;  // a write access re-faults immediately and upgrades below
      }
      lock.unlock();
      fetch_and_apply(page, e);
      return;
    }

    case PageState::kReadOnly: {
      // Reads cannot fault on PROT_READ, so this is a write upgrade.
      stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
      e.push_touched = true;  // writes count as touches for the update probe
      lock_push_note_touch(page);
      if (e.twin_valid && e.twin.seq <= own_seq_) {
        if (e.twin.seq <= gc_reclaimed_seq_) {
          // The interval's diffs were already reclaimed everywhere, so no
          // diff from this twin can ever be wanted (it can only still be
          // pending when no peer fetched it, e.g. single-node runs): drop
          // it instead of materializing a dead diff.  The bound is the
          // *reclaimed* prefix, one barrier behind the announced floor —
          // a peer's validation fetch against the fresh floor may still be
          // in flight, and this twin may be the only source of its diff.
          e.twin_valid = false;
          e.twin.data.reset();
        } else {
          // The pending twin belongs to an already-closed interval; its
          // diff must be fixed before the page changes again.
          materialize_twin(page, e);
        }
      }
      if (!e.twin_valid) {
        e.twin.data = std::make_unique<std::uint8_t[]>(kPageSize);
        std::memcpy(e.twin.data.get(), rt_.arena().page_ptr(id_, page), kPageSize);
        e.twin.seq = own_seq_ + 1;  // the open interval
        e.twin_valid = true;
        stats_.twins_created.fetch_add(1, std::memory_order_relaxed);
        clock_.advance_us(rt_.config().twin_copy_us);
        dirty_pages_.push_back(page);
      }
      rt_.arena().protect_rw(id_, page);
      e.state = PageState::kWritable;
      return;
    }

    case PageState::kWritable:
      NOW_CHECK(false) << "fault on a writable page (node " << id_ << ", page "
                       << page << ")";
  }
}

void Node::lock_push_note_touch(PageIndex page) {
  // Critical-section attribution for the migratory lock push: the faulted
  // page belongs to every lock this compute thread currently holds.
  // held_locks_ is only populated while lock_push is enabled, so the
  // default fault path pays a single empty-vector check.
  for (std::uint32_t lock_id : held_locks_) cs_touched_[lock_id].push_back(page);
}

void Node::fetch_and_apply(PageIndex page, PageEntry& e) {
  const std::size_t cache_budget = rt_.config().diff_cache_bytes_per_page;
  const std::size_t window = rt_.config().prefetch_window();
  for (;;) {
    std::vector<UnappliedNotice> want;
    std::vector<UnappliedNotice> need;  // not already held in the diff cache
    std::uint64_t cache_hits = 0, cache_bytes = 0, pf_hits = 0;
    {
      std::lock_guard<std::mutex> lock(e.mu);
      if (e.unapplied.empty()) {
        if (e.state == PageState::kInvalid) {
          rt_.arena().protect_read(id_, page);
          e.state = PageState::kReadOnly;
          e.ever_valid = true;
        }
        return;
      }
      want = e.unapplied;
      // Chunks already held locally — parked by a neighbor fault's prefetch,
      // pinned by the barrier-GC validation pass (whose writers may have
      // reclaimed them since), or kept from an earlier fault — need no round
      // trip at all; only the compute thread mutates the cache, so the
      // partition stays valid after the lock drops.  Skipped entirely when
      // the cache is disabled so the hot path pays nothing for it.
      if (cache_budget > 0) {
        for (const auto& n : want) {
          if (const auto* ent = e.diff_cache.lookup(n.writer, n.seq)) {
            ++cache_hits;
            if (ent->prefetched) ++pf_hits;
            // Reply bytes this hit avoids: the per-interval seq + chunk-count
            // header plus each chunk's length prefix and payload.  (A fully
            // suppressed request message saves more still; not counted.)
            cache_bytes += 8;
            for (const DiffBytes& c : ent->chunks) cache_bytes += 4 + c.size();
          } else {
            need.push_back(n);
          }
        }
      }
    }
    // With the cache off, everything in `want` must be fetched.
    const std::vector<UnappliedNotice>& to_fetch = cache_budget > 0 ? need : want;
    if (cache_hits > 0) {
      stats_.diff_cache_hits.fetch_add(cache_hits, std::memory_order_relaxed);
      stats_.diff_cache_bytes_saved.fetch_add(cache_bytes,
                                              std::memory_order_relaxed);
      if (pf_hits > 0)
        stats_.prefetch_hits.fetch_add(pf_hits, std::memory_order_relaxed);
    }

    // One diff request per writer, assembled for the shared batched fetch;
    // the reply chunk views stay alive in `replies` until the end of the
    // iteration (zero-copy apply: the only copy left is the memcpy of the
    // patched ranges themselves).
    std::map<std::uint32_t, std::vector<std::uint32_t>> by_writer;
    for (const auto& n : to_fetch) by_writer[n.writer].push_back(n.seq);
    std::vector<DiffWant> wants;
    wants.reserve(by_writer.size());
    for (auto& [writer, seqs] : by_writer)
      wants.push_back({page, writer, std::move(seqs)});

    // Multi-page prefetch: fold neighboring invalid pages' wanted seqs into
    // the writer requests this fault already pays for.  Only writers already
    // being contacted are considered (no extra messages, ever), and only
    // entries not yet cached.  The collected (writer, seq) list stays valid
    // after the page locks drop: the service thread can only *append*
    // notices, and this compute thread is the only one that applies them or
    // touches the cache.  Nothing here reorders consistency: the neighbor's
    // chunks are parked in its cache and applied, in lamport order, by its
    // own fault.
    struct PrefetchPage {
      PageIndex page = 0;
      std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;  // (writer, seq)
    };
    std::vector<PrefetchPage> prefetch;
    if (window > 0 && !wants.empty()) {
      const std::size_t num_pages = rt_.config().num_pages();
      const PageIndex last = static_cast<PageIndex>(
          std::min<std::size_t>(page + window, num_pages - 1));
      for (PageIndex q = page + 1; q <= last; ++q) {
        PageEntry& qe = pages_[q];
        std::lock_guard<std::mutex> qlock(qe.mu);
        if (qe.state != PageState::kInvalid || qe.unapplied.empty()) continue;
        PrefetchPage pp;
        pp.page = q;
        std::map<std::uint32_t, std::vector<std::uint32_t>> q_by_writer;
        for (const auto& n : qe.unapplied) {
          if (by_writer.find(n.writer) == by_writer.end()) continue;
          if (qe.diff_cache.find(n.writer, n.seq) != nullptr) continue;
          q_by_writer[n.writer].push_back(n.seq);
          pp.entries.emplace_back(n.writer, n.seq);
        }
        if (pp.entries.empty()) continue;
        for (auto& [writer, seqs] : q_by_writer)
          wants.push_back({q, writer, std::move(seqs)});
        prefetch.push_back(std::move(pp));
      }
      if (!prefetch.empty())
        stats_.prefetch_requests_batched.fetch_add(prefetch.size(),
                                                   std::memory_order_relaxed);
    }

    std::vector<sim::Message> replies;
    auto got = fetch_diffs(wants, replies);

    // Park the prefetched chunks in their pages' caches for the neighbor's
    // own fault.  Budgeted FIFO insert: droppable (the writer still holds
    // the diff — by the GC causality argument nothing wanted mid-epoch is
    // reclaimed before the next barrier — so the real fault refetches
    // whatever eviction lost), and a later barrier-GC floor promotes
    // surviving entries to pins before their writers reclaim.
    for (const PrefetchPage& pp : prefetch) {
      PageEntry& qe = pages_[pp.page];
      std::lock_guard<std::mutex> qlock(qe.mu);
      bool filled = false;
      for (const auto& [writer, seq] : pp.entries) {
        auto it = got.find({pp.page, writer, seq});
        NOW_CHECK(it != got.end())
            << "writer " << writer << " had no diff for prefetched page "
            << pp.page << " interval " << seq;
        std::vector<DiffBytes> owned;
        owned.reserve(it->second.size());
        for (const DiffChunkView& v : it->second)
          owned.emplace_back(v.first, v.first + v.second);
        filled |= qe.diff_cache.insert(writer, seq, std::move(owned),
                                       cache_budget, /*prefetched=*/true);
      }
      if (filled)
        stats_.prefetch_pages_filled.fetch_add(1, std::memory_order_relaxed);
    }

    std::stable_sort(want.begin(), want.end(), applies_before);

    // Migratory relay retention: a fault on a page touched inside a held
    // critical section keeps its diff chunks cached after applying them, so
    // this node's later kLockGrant can push the chain's accumulated diffs
    // onward (sparse chunks instead of whole-page images).  Deferred past
    // the apply loop: an insert can FIFO-evict an entry a later iteration
    // still wants.
    const bool retain = rt_.config().lock_push_enabled() && !held_locks_.empty();
    std::vector<std::pair<const UnappliedNotice*, std::vector<DiffBytes>>> keep;

    std::lock_guard<std::mutex> lock(e.mu);
    rt_.arena().protect_rw(id_, page);
    std::uint8_t* mem = rt_.arena().page_ptr(id_, page);
    std::size_t patched = 0;
    std::uint64_t applied = 0;
    for (const auto& n : want) {
      auto it = got.find({page, n.writer, n.seq});
      if (it != got.end()) {
        // An interval fetched here was absent from the cache at partition
        // time and still is: only this compute thread inserts (an update
        // push racing this fetch waits in the pending queue until the
        // barrier's validate pass), so there is no stale entry to release.
        std::vector<DiffBytes> owned;
        if (retain) owned.reserve(it->second.size());
        for (const DiffChunkView& d : it->second) {
          patched += diff_apply(mem, kPageSize, d.first, d.second);
          ++applied;
          if (retain) owned.emplace_back(d.first, d.first + d.second);
        }
        if (retain) keep.emplace_back(&n, std::move(owned));
        continue;
      }
      const auto* cached = e.diff_cache.lookup(n.writer, n.seq);
      NOW_CHECK(cached != nullptr)
          << "writer " << n.writer << " had no diff for page " << page
          << " interval " << n.seq;
      for (const DiffBytes& d : cached->chunks) {
        patched += diff_apply(mem, kPageSize, d);
        ++applied;
      }
      // An applied interval is never wanted again; release the entry (this
      // is what unpins barrier-GC prefetches once they have served their
      // fault).  Under the migratory relay, droppable entries are retained
      // instead — the chain wants them — but pinned ones still release:
      // their writers reclaimed the diffs against a floor every peer has
      // applied, so no grant delta can ever name them again, and a stale
      // pin would leak pinned bytes forever.
      if (!retain || cached->pinned) {
        e.diff_cache.erase(n.writer, n.seq);
      } else {
        // Retained for the relay: mark it so the prune pass can find (and
        // eventually drop) it once a grant or exchange floor covers it.
        e.diff_cache.mark_relay(n.writer, n.seq);
      }
    }
    bool kept_any = false;
    for (auto& [n, owned] : keep) {
      if (e.diff_cache.insert(n->writer, n->seq, std::move(owned), cache_budget)) {
        e.diff_cache.mark_relay(n->writer, n->seq);
        kept_any = true;
      }
    }
    if (retain && (kept_any || !want.empty())) relay_note(page);
    stats_.diffs_applied.fetch_add(applied, std::memory_order_relaxed);
    clock_.advance_us(rt_.config().diff_apply_per_kb_us *
                      (static_cast<double>(patched) / 1024.0));
    // Nothing else fetched for the faulting page itself is retained: an
    // applied interval is only wanted again by the migratory relay above
    // (each (writer, seq) is learned and invalidated at most once), so
    // copying other reply chunks into the cache would be pure overhead.
    // The cache is populated for *other* pages by the prefetch parking loop
    // above and by the barrier-GC validation pass.

    // Drop what we applied; the service thread may have appended more
    // notices (a flush) while we were fetching — loop if so.
    e.unapplied.erase(e.unapplied.begin(),
                      e.unapplied.begin() + static_cast<std::ptrdiff_t>(want.size()));
    if (e.unapplied.empty()) {
      rt_.arena().protect_read(id_, page);
      e.state = PageState::kReadOnly;
      e.ever_valid = true;
      return;
    }
    rt_.arena().protect_none(id_, page);
    e.state = PageState::kInvalid;
  }
}

}  // namespace now::tmk
