// Page fault handling: access detection, cold zero-fills, diff fetch/apply
// and write-twin creation.  Runs on the faulting node's compute thread, from
// inside the SIGSEGV handler (the fault is synchronous, so this is an
// ordinary function call context).
#include <algorithm>
#include <cstring>
#include <map>

#include "common/bytes.h"
#include "common/log.h"
#include "tmk/arena.h"
#include "tmk/gptr.h"
#include "tmk/node.h"
#include "tmk/runtime.h"

namespace now::tmk {

void Node::handle_fault(void* addr) {
  NOW_CHECK(detail::region_base() == rt_.arena().region_base(id_))
      << "shared memory of node " << id_
      << " touched from a thread not bound to it";
  // The compute stretch that ended in this fault includes the kernel's
  // signal-delivery latency (large under sandboxed kernels).  Subtract the
  // calibrated delivery cost so only application work is billed; the DSM's
  // own fault cost is the modeled fault_overhead below.
  {
    std::uint64_t delta = cpu_meter_.take_delta_ns();
    const std::uint64_t delivery = fault::fault_delivery_ns();
    delta -= std::min(delta, delivery);
    clock_.advance_ns(rt_.config().time.scale_ns(delta));
  }
  clock_.advance_us(rt_.config().fault_overhead_us);
  // Host time spent inside the handler (sandboxed signal delivery, mprotect,
  // twin copies) is NOT application compute: the protocol's costs are
  // modeled explicitly, so the meter is re-based on every exit path.
  struct RebaseOnExit {
    sim::CpuMeter& meter;
    ~RebaseOnExit() { meter.rebase(); }
  } rebase_guard{cpu_meter_};

  const PageIndex page = rt_.arena().page_of(addr);
  PageEntry& e = pages_[page];
  std::unique_lock<std::mutex> lock(e.mu);

  switch (e.state) {
    case PageState::kInvalid: {
      stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
      if (e.unapplied.empty()) {
        // First touch of a never-written page: the zero-filled local copy is
        // the correct initial contents — no communication, as in TreadMarks.
        if (!e.ever_valid)
          stats_.cold_zero_fills.fetch_add(1, std::memory_order_relaxed);
        rt_.arena().protect_read(id_, page);
        e.state = PageState::kReadOnly;
        e.ever_valid = true;
        return;  // a write access re-faults immediately and upgrades below
      }
      lock.unlock();
      fetch_and_apply(page, e);
      return;
    }

    case PageState::kReadOnly: {
      // Reads cannot fault on PROT_READ, so this is a write upgrade.
      stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
      if (e.twin_valid && e.twin.seq <= own_seq_) {
        if (e.twin.seq <= gc_drop_seq_) {
          // The interval's diffs were already reclaimed everywhere, so no
          // diff from this twin can ever be wanted (it can only still be
          // pending when no peer fetched it, e.g. single-node runs): drop
          // it instead of materializing a dead diff.
          e.twin_valid = false;
          e.twin.data.reset();
        } else {
          // The pending twin belongs to an already-closed interval; its
          // diff must be fixed before the page changes again.
          materialize_twin(page, e);
        }
      }
      if (!e.twin_valid) {
        e.twin.data = std::make_unique<std::uint8_t[]>(kPageSize);
        std::memcpy(e.twin.data.get(), rt_.arena().page_ptr(id_, page), kPageSize);
        e.twin.seq = own_seq_ + 1;  // the open interval
        e.twin_valid = true;
        stats_.twins_created.fetch_add(1, std::memory_order_relaxed);
        clock_.advance_us(rt_.config().twin_copy_us);
        dirty_pages_.push_back(page);
      }
      rt_.arena().protect_rw(id_, page);
      e.state = PageState::kWritable;
      return;
    }

    case PageState::kWritable:
      NOW_CHECK(false) << "fault on a writable page (node " << id_ << ", page "
                       << page << ")";
  }
}

void Node::fetch_and_apply(PageIndex page, PageEntry& e) {
  const std::size_t cache_budget = rt_.config().diff_cache_bytes_per_page;
  for (;;) {
    std::vector<UnappliedNotice> want;
    std::vector<UnappliedNotice> need;  // not already held in the diff cache
    std::uint64_t cache_hits = 0, cache_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(e.mu);
      if (e.unapplied.empty()) {
        if (e.state == PageState::kInvalid) {
          rt_.arena().protect_read(id_, page);
          e.state = PageState::kReadOnly;
          e.ever_valid = true;
        }
        return;
      }
      want = e.unapplied;
      // Chunks already held locally — pinned by the barrier-GC prefetch
      // (whose writers may have reclaimed them since) or kept from an
      // earlier fault — need no round trip at all; only the compute thread
      // mutates the cache, so the partition stays valid after the lock
      // drops.  Skipped entirely when the cache is disabled so the hot path
      // pays nothing for it.
      if (cache_budget > 0) {
        for (const auto& n : want) {
          if (const auto* chunks = e.diff_cache.find(n.writer, n.seq)) {
            ++cache_hits;
            // Reply bytes this hit avoids: the per-interval seq + chunk-count
            // header plus each chunk's length prefix and payload.  (A fully
            // suppressed request message saves more still; not counted.)
            cache_bytes += 8;
            for (const DiffBytes& c : *chunks) cache_bytes += 4 + c.size();
          } else {
            need.push_back(n);
          }
        }
      }
    }
    // With the cache off, everything in `want` must be fetched.
    const std::vector<UnappliedNotice>& to_fetch = cache_budget > 0 ? need : want;
    if (cache_hits > 0) {
      stats_.diff_cache_hits.fetch_add(cache_hits, std::memory_order_relaxed);
      stats_.diff_cache_bytes_saved.fetch_add(cache_bytes,
                                              std::memory_order_relaxed);
    }

    // One diff request per writer, assembled for the shared batched fetch;
    // the reply chunk views stay alive in `replies` until the end of the
    // iteration (zero-copy apply: the only copy left is the memcpy of the
    // patched ranges themselves).
    std::map<std::uint32_t, std::vector<std::uint32_t>> by_writer;
    for (const auto& n : to_fetch) by_writer[n.writer].push_back(n.seq);
    std::vector<DiffWant> wants;
    wants.reserve(by_writer.size());
    for (auto& [writer, seqs] : by_writer)
      wants.push_back({page, writer, std::move(seqs)});
    std::vector<sim::Message> replies;
    auto got = fetch_diffs(wants, replies);

    std::stable_sort(want.begin(), want.end(), applies_before);

    std::lock_guard<std::mutex> lock(e.mu);
    rt_.arena().protect_rw(id_, page);
    std::uint8_t* mem = rt_.arena().page_ptr(id_, page);
    std::size_t patched = 0;
    std::uint64_t applied = 0;
    for (const auto& n : want) {
      auto it = got.find({page, n.writer, n.seq});
      if (it != got.end()) {
        for (const DiffChunkView& d : it->second) {
          patched += diff_apply(mem, kPageSize, d.first, d.second);
          ++applied;
        }
        continue;
      }
      const auto* cached = e.diff_cache.find(n.writer, n.seq);
      NOW_CHECK(cached != nullptr)
          << "writer " << n.writer << " had no diff for page " << page
          << " interval " << n.seq;
      for (const DiffBytes& d : *cached) {
        patched += diff_apply(mem, kPageSize, d);
        ++applied;
      }
      // An applied interval is never wanted again; release the entry (this
      // is what unpins barrier-GC prefetches once they have served their
      // fault).
      e.diff_cache.erase(n.writer, n.seq);
    }
    stats_.diffs_applied.fetch_add(applied, std::memory_order_relaxed);
    clock_.advance_us(rt_.config().diff_apply_per_kb_us *
                      (static_cast<double>(patched) / 1024.0));
    // Nothing fetched here is retained: an applied interval is never wanted
    // again (each (writer, seq) is learned and invalidated at most once),
    // so copying the reply chunks into the cache would be pure overhead.
    // Only the barrier-GC prefetch populates the cache.

    // Drop what we applied; the service thread may have appended more
    // notices (a flush) while we were fetching — loop if so.
    e.unapplied.erase(e.unapplied.begin(),
                      e.unapplied.begin() + static_cast<std::ptrdiff_t>(want.size()));
    if (e.unapplied.empty()) {
      rt_.arena().protect_read(id_, page);
      e.state = PageState::kReadOnly;
      e.ever_valid = true;
      return;
    }
    rt_.arena().protect_none(id_, page);
    e.state = PageState::kInvalid;
  }
}

}  // namespace now::tmk
