// Barrier-aligned coordinated checkpoint store.
//
// Owned by the runtime, NOT by any node: it must survive the destruction
// and reconstruction of every Node during crash recovery.  The recovery
// model is a run-level coordinated restart — "a fresh runtime whose initial
// heap content is the checkpoint" — so the store holds exactly the state
// that is not reconstructed from scratch by a restart:
//
//  - the shared heap image (per page, incremental: a staged page that
//    matches the durable image costs zero bytes),
//  - the app-visible semaphore counts (the only manager state a program
//    can observe across a barrier: at a completed barrier no lock is held,
//    no waiter is queued, and all consistency metadata is equivalent to a
//    fresh runtime whose pages carry the checkpoint bytes),
//  - the shared-heap allocator state (bump pointer + live map + free
//    lists), so recovered allocations neither collide nor leak.
//
// Two-phase durability: each node *stages* its slice after the checkpoint
// barrier, then the barrier root *promotes* the whole epoch once all N
// commits arrive.  A crash mid-stage loses only the staging area — the
// previous durable epoch is untouched.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "tmk/config.h"

namespace now::tmk {

// Snapshot of the runtime's shared-heap allocator (mirrors DsmRuntime's
// bump pointer, live map and size-bucketed free lists).
struct AllocImage {
  bool valid = false;
  std::uint64_t bump = 0;
  std::map<std::uint64_t, std::size_t> live;  // offset -> size
  std::map<std::size_t, std::vector<std::uint64_t>> free_list;  // size -> offsets
};

class CheckpointStore {
 public:
  // Opens the staging area for `epoch` (idempotent across the N nodes that
  // all call it for the same epoch; a leftover staging area from a crashed
  // epoch must have been dropped first).
  void begin_epoch(std::uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (staging_epoch_ == epoch) return;
    NOW_CHECK(staged_pages_.empty() && staged_semas_.empty() &&
              !staged_alloc_.valid)
        << "checkpoint staging epoch " << staging_epoch_
        << " still open while beginning epoch " << epoch;
    staging_epoch_ = epoch;
  }

  // Stages one page image.  Incremental: a page identical to the durable
  // image (absent durable pages read as all-zero — the heap starts zeroed)
  // stages nothing and returns false; otherwise the 4 KB copy is staged and
  // true is returned.  Caller charges stats accordingly.
  bool put_page(std::uint64_t epoch, PageIndex page,
                const unsigned char* data) {
    std::lock_guard<std::mutex> lock(mu_);
    NOW_CHECK_EQ(epoch, staging_epoch_) << "put_page into a closed epoch";
    auto it = durable_pages_.find(page);
    if (it != durable_pages_.end()) {
      if (std::memcmp(it->second.data(), data, kPageSize) == 0) return false;
    } else {
      bool zero = true;
      for (std::size_t i = 0; i < kPageSize; ++i)
        if (data[i] != 0) { zero = false; break; }
      if (zero) return false;
    }
    staged_pages_[page].assign(data, data + kPageSize);
    return true;
  }

  void stage_sema(std::uint64_t epoch, std::uint32_t sema, std::int64_t count) {
    std::lock_guard<std::mutex> lock(mu_);
    NOW_CHECK_EQ(epoch, staging_epoch_) << "stage_sema into a closed epoch";
    staged_semas_[sema] = count;
  }

  void stage_alloc(std::uint64_t epoch, AllocImage&& img) {
    std::lock_guard<std::mutex> lock(mu_);
    NOW_CHECK_EQ(epoch, staging_epoch_) << "stage_alloc into a closed epoch";
    img.valid = true;
    staged_alloc_ = std::move(img);
  }

  // Promotes the staged epoch to durable (root-only, after all N commits).
  // Pages merge over the previous image (an unstaged page was byte-identical
  // — that is what incremental staging proved); sema counts and the
  // allocator image REPLACE the previous ones (every epoch re-reports them
  // in full, so absence means zero / fresh).
  void promote(std::uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    NOW_CHECK_EQ(epoch, staging_epoch_) << "promote of a closed epoch";
    for (auto& [page, bytes] : staged_pages_)
      durable_pages_[page] = std::move(bytes);
    durable_semas_ = std::move(staged_semas_);
    NOW_CHECK(staged_alloc_.valid)
        << "checkpoint epoch " << epoch << " promoted without allocator state";
    durable_alloc_ = std::move(staged_alloc_);
    durable_epoch_ = epoch;
    clear_staging();
  }

  // Recovery: abandon a half-staged epoch (the crash interrupted it).
  void drop_staging() {
    std::lock_guard<std::mutex> lock(mu_);
    clear_staging();
  }

  // 0 = nothing durable yet: recovery restarts the run from scratch
  // (zeroed heap, fresh allocator, epoch 0).
  std::uint64_t durable_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_epoch_;
  }

  // Restore-side accessors.  Only safe while the cluster is quiesced (every
  // node destroyed or joined) — recovery is single-threaded by design.
  const std::map<PageIndex, std::vector<unsigned char>>& pages() const {
    return durable_pages_;
  }
  const std::map<std::uint32_t, std::int64_t>& semas() const {
    return durable_semas_;
  }
  const AllocImage& alloc() const { return durable_alloc_; }

  // Test hook: bytes currently held in the durable page image.
  std::size_t durable_page_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_pages_.size() * kPageSize;
  }

 private:
  void clear_staging() {  // mu_ held
    staged_pages_.clear();
    staged_semas_.clear();
    staged_alloc_ = AllocImage{};
    staging_epoch_ = 0;
  }

  mutable std::mutex mu_;
  std::uint64_t staging_epoch_ = 0;
  std::uint64_t durable_epoch_ = 0;
  std::map<PageIndex, std::vector<unsigned char>> staged_pages_;
  std::map<std::uint32_t, std::int64_t> staged_semas_;
  AllocImage staged_alloc_;
  std::map<PageIndex, std::vector<unsigned char>> durable_pages_;
  std::map<std::uint32_t, std::int64_t> durable_semas_;
  AllocImage durable_alloc_;
};

}  // namespace now::tmk
