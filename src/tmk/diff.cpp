#include "tmk/diff.h"

#include <cstring>

#include "common/check.h"

namespace now::tmk {

namespace {

// Index of the lowest-order set *byte* in a nonzero XOR word, i.e. the byte
// offset of the first mismatch on a little-endian host.
inline std::size_t first_diff_byte(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<std::size_t>(__builtin_ctzll(x)) >> 3;
#else
  std::size_t i = 0;
  while ((x & 0xff) == 0) {
    x >>= 8;
    ++i;
  }
  return i;
#endif
}

constexpr bool kLittleEndian =
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    true;
#else
    false;
#endif

// First index in [from, to) where a[i] != b[i], or `to` if none.  Strides
// clean stretches with memcmp (which the libc vectorizes), then pins the
// mismatching byte inside an 8-byte word with XOR + ctz.
std::size_t find_mismatch(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t from, std::size_t to) {
  std::size_t i = from;
  constexpr std::size_t kStride = 64;
  while (i + kStride <= to && std::memcmp(a + i, b + i, kStride) == 0) i += kStride;
  while (i + 8 <= to) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    if (wa != wb) {
      if (kLittleEndian) return i + first_diff_byte(wa ^ wb);
      break;  // big-endian: settle the word byte-by-byte below
    }
    i += 8;
  }
  while (i < to && a[i] == b[i]) ++i;
  return i;
}

inline void append_run(DiffBytes& out, const std::uint8_t* current,
                       std::size_t start, std::size_t end) {
  const std::size_t len = end - start;
  NOW_CHECK_LE(start, 0xffffu);  // u16 wire offset: pages beyond 64 KiB would
  NOW_CHECK_LE(len, 0xffffu);    // silently truncate, not wrap cleanly
  const std::uint16_t off16 = static_cast<std::uint16_t>(start);
  const std::uint16_t len16 = static_cast<std::uint16_t>(len);
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&off16),
             reinterpret_cast<const std::uint8_t*>(&off16) + 2);
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&len16),
             reinterpret_cast<const std::uint8_t*>(&len16) + 2);
  out.insert(out.end(), current + start, current + end);
}

}  // namespace

std::size_t diff_append(DiffBytes& out, const std::uint8_t* twin,
                        const std::uint8_t* current, std::size_t page_size,
                        std::size_t merge_gap) {
  if (!kLittleEndian) {
    // The word state machine below indexes bytes by shift amount; keep the
    // rare big-endian build on the reference path instead of maintaining a
    // mirrored variant.
    DiffBytes ref = diff_create_scalar(twin, current, page_size, merge_gap);
    out.insert(out.end(), ref.begin(), ref.end());
    return ref.size();
  }
  // A gap of 0 cannot split contiguous differing bytes, so it behaves as 1.
  if (merge_gap == 0) merge_gap = 1;

  const std::size_t before = out.size();
  std::size_t i = find_mismatch(twin, current, 0, page_size);
  while (i < page_size) {
    // A run starts at the mismatch; it extends across equal gaps shorter
    // than `merge_gap` and ends at the last differing byte before a gap at
    // least that long (or before the end of the page).  Words are XOR-ed and
    // only mixed words are settled per byte, so dense dirty stretches cost
    // one load pair per 8 bytes instead of one memcmp re-entry per byte.
    const std::size_t start = i;
    std::size_t last_diff = i;
    std::size_t streak = 0;  // equal bytes seen since the last differing one
    std::size_t j = i + 1;
    while (j < page_size && streak < merge_gap) {
      if (j + 8 <= page_size) {
        std::uint64_t wa, wb;
        std::memcpy(&wa, twin + j, 8);
        std::memcpy(&wb, current + j, 8);
        const std::uint64_t x = wa ^ wb;
        if (x == 0) {
          streak += 8;
          j += 8;
          continue;
        }
        bool gap_closed_run = false;
        for (std::size_t k = 0; k < 8; ++k) {
          if ((x >> (8 * k)) & 0xff) {
            if (streak >= merge_gap) {
              gap_closed_run = true;
              break;
            }
            last_diff = j + k;
            streak = 0;
          } else {
            ++streak;
          }
        }
        if (gap_closed_run) break;
        j += 8;
      } else {
        if (twin[j] != current[j]) {
          if (streak >= merge_gap) break;
          last_diff = j;
          streak = 0;
        } else {
          ++streak;
        }
        ++j;
      }
    }
    const std::size_t end = last_diff + 1;  // one past the last differing byte
    append_run(out, current, start, end);
    i = find_mismatch(twin, current, end, page_size);
  }
  return out.size() - before;
}

DiffBytes diff_create(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size, std::size_t merge_gap) {
  DiffBytes out;
  diff_append(out, twin, current, page_size, merge_gap);
  return out;
}

DiffBytes diff_create_scalar(const std::uint8_t* twin, const std::uint8_t* current,
                             std::size_t page_size, std::size_t merge_gap) {
  DiffBytes out;
  std::size_t i = 0;
  while (i < page_size) {
    if (twin[i] == current[i]) {
      ++i;
      continue;
    }
    // Start of a run of differing bytes; extend across small equal gaps.
    std::size_t start = i;
    std::size_t end = i + 1;  // one past the last differing byte
    std::size_t j = i + 1;
    std::size_t equal_streak = 0;
    while (j < page_size) {
      if (twin[j] != current[j]) {
        equal_streak = 0;
        end = j + 1;
      } else if (++equal_streak >= merge_gap) {
        break;
      }
      ++j;
    }
    append_run(out, current, start, end);
    i = end;
  }
  return out;
}

std::size_t diff_apply(std::uint8_t* page, std::size_t page_size,
                       const std::uint8_t* diff, std::size_t diff_size) {
  std::size_t pos = 0;
  std::size_t patched = 0;
  while (pos < diff_size) {
    NOW_CHECK_LE(pos + 4, diff_size) << "corrupt diff header";
    std::uint16_t off, len;
    std::memcpy(&off, diff + pos, 2);
    std::memcpy(&len, diff + pos + 2, 2);
    pos += 4;
    NOW_CHECK_LE(pos + len, diff_size) << "corrupt diff body";
    NOW_CHECK_LE(static_cast<std::size_t>(off) + len, page_size) << "diff outside page";
    std::memcpy(page + off, diff + pos, len);
    pos += len;
    patched += len;
  }
  return patched;
}

std::size_t diff_patched_bytes(const std::uint8_t* diff, std::size_t diff_size) {
  std::size_t pos = 0;
  std::size_t patched = 0;
  while (pos + 4 <= diff_size) {
    std::uint16_t len;
    std::memcpy(&len, diff + pos + 2, 2);
    pos += 4 + static_cast<std::size_t>(len);
    patched += len;
  }
  return patched;
}

}  // namespace now::tmk
