#include "tmk/diff.h"

#include <cstring>

#include "common/check.h"

namespace now::tmk {

DiffBytes diff_create(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size, std::size_t merge_gap) {
  DiffBytes out;
  std::size_t i = 0;
  while (i < page_size) {
    if (twin[i] == current[i]) {
      ++i;
      continue;
    }
    // Start of a run of differing bytes; extend across small equal gaps.
    std::size_t start = i;
    std::size_t end = i + 1;  // one past the last differing byte
    std::size_t j = i + 1;
    std::size_t equal_streak = 0;
    while (j < page_size) {
      if (twin[j] != current[j]) {
        equal_streak = 0;
        end = j + 1;
      } else if (++equal_streak >= merge_gap) {
        break;
      }
      ++j;
    }
    const std::size_t len = end - start;
    NOW_CHECK_LE(len, 0xffffu);
    const std::uint16_t off16 = static_cast<std::uint16_t>(start);
    const std::uint16_t len16 = static_cast<std::uint16_t>(len);
    out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&off16),
               reinterpret_cast<const std::uint8_t*>(&off16) + 2);
    out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&len16),
               reinterpret_cast<const std::uint8_t*>(&len16) + 2);
    out.insert(out.end(), current + start, current + end);
    i = end;
  }
  return out;
}

std::size_t diff_apply(std::uint8_t* page, std::size_t page_size, const DiffBytes& diff) {
  std::size_t pos = 0;
  std::size_t patched = 0;
  while (pos < diff.size()) {
    NOW_CHECK_LE(pos + 4, diff.size()) << "corrupt diff header";
    std::uint16_t off, len;
    std::memcpy(&off, diff.data() + pos, 2);
    std::memcpy(&len, diff.data() + pos + 2, 2);
    pos += 4;
    NOW_CHECK_LE(pos + len, diff.size()) << "corrupt diff body";
    NOW_CHECK_LE(static_cast<std::size_t>(off) + len, page_size) << "diff outside page";
    std::memcpy(page + off, diff.data() + pos, len);
    pos += len;
    patched += len;
  }
  return patched;
}

std::size_t diff_patched_bytes(const DiffBytes& diff) {
  std::size_t pos = 0;
  std::size_t patched = 0;
  while (pos + 4 <= diff.size()) {
    std::uint16_t len;
    std::memcpy(&len, diff.data() + pos + 2, 2);
    pos += 4 + len;
    patched += len;
  }
  return patched;
}

}  // namespace now::tmk
