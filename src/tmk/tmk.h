// Umbrella header for the TreadMarks-like DSM library.
#pragma once

#include "tmk/config.h"   // IWYU pragma: export
#include "tmk/diff.h"     // IWYU pragma: export
#include "tmk/gptr.h"     // IWYU pragma: export
#include "tmk/runtime.h"  // IWYU pragma: export
#include "tmk/stats.h"    // IWYU pragma: export
