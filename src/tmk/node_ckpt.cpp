// Node-crash chaos and barrier-aligned checkpoint/rollback recovery.
//
// Crash injection picks a victim (TMK_NET_CRASH_NODE) and a deterministic
// sync-point index (TMK_NET_CRASH_AT): every barrier/lock/sema entry and
// every GC-exchange apply/initiate site on the victim's compute thread
// counts, and the selected one kills the node — links dark, service thread
// deaf, compute thread unwound.  Survivors notice the way real TreadMarks
// peers would: their retransmissions toward the dead workstation exhaust,
// and the channel's verdict (instead of the hard abort a fault-only run
// keeps) fans a node-down poison through every live node.
//
// Recovery is a run-level coordinated restart.  Every ckpt_every-th barrier
// the cluster checkpoints — each node stages its round-robin slice of the
// heap (incremental against the durable image), its sema counts and (on the
// alloc server) the allocator, then commits to the barrier root, which
// promotes the epoch once all N commits arrive.  Because the pass runs
// *inside* the barrier, after the departure merged everyone's records, the
// materialized pages are the globally current contents and no lock is held
// nor waiter parked anywhere: pages + sema counts + allocator are the whole
// recoverable state.  Rolling back then means rebooting the cluster with
// that image as the initial heap — for the consistency protocol this is
// indistinguishable from a fresh run whose zero-filled heap happened to
// contain the checkpoint bytes.
#include <cstring>

#include "common/bytes.h"
#include "common/check.h"
#include "common/log.h"
#include "tmk/arena.h"
#include "tmk/node.h"
#include "tmk/runtime.h"

namespace now::tmk {

void Node::maybe_crash() {
  // A peer's death verdict unwinds this compute thread at its next sync
  // point even if it never blocks on the dead node again.
  if (down_.load(std::memory_order_acquire))
    throw NodeDownError(down_victim_.load(std::memory_order_relaxed));
  const DsmConfig& cfg = rt_.config();
  if (!cfg.crash_enabled() || id_ != cfg.net_crash_node) return;
  if (crash_counter_++ != cfg.net_crash_at) return;
  // Once per run: after a rollback the victim replays through the same
  // sync-point index, and dying there again would recover forever.
  if (!rt_.claim_crash()) return;
  NOW_LOG(kInfo, "node %u: injected crash at sync point %u", id_,
          cfg.net_crash_at);
  crashed_.store(true, std::memory_order_release);  // service thread goes deaf
  rt_.net().fail_node(id_);                         // links go dark
  throw NodeCrashedError();
}

void Node::node_down(std::uint32_t victim) {
  down_victim_.store(victim, std::memory_order_relaxed);
  down_.store(true, std::memory_order_release);
  // Wake the compute thread wherever it blocks: pending rpcs, lock grants,
  // the slave fork loop, the master's join.
  rpc_.poison(victim);
  lock_grant_slot_.poison(victim);
  fork_slot_.poison(victim);
  join_slot_.poison(victim);
}

void Node::ckpt_at_barrier(std::uint64_t epoch_done) {
  const DsmConfig& cfg = rt_.config();
  if (!cfg.ckpt_enabled()) return;
  // Absolute barrier epochs survive restarts (stats_.barriers restarts at
  // zero with the rebuilt node), so the checkpoint cadence does too.
  const std::uint64_t abs_epoch = rt_.resume_epoch() + epoch_done + 1;
  if (abs_epoch % cfg.ckpt_every != 0) return;

  CheckpointStore& store = rt_.checkpoint();
  store.begin_epoch(abs_epoch);

  // Stage this node's slice: pages round-robin by index, so the staging work
  // (and the memcmp against the durable image) parallelizes across nodes.
  // Each page is materialized to its globally current contents first — the
  // barrier merged every write notice, so applying what is still unapplied
  // here yields exactly the bytes every node would fault in.
  std::uint64_t staged = 0;
  std::uint64_t unchanged = 0;
  const std::size_t num_pages = cfg.num_pages();
  for (PageIndex page = static_cast<PageIndex>(id_);
       page < static_cast<PageIndex>(num_pages); page += num_nodes_) {
    PageEntry& e = pages_[page];
    bool has_notices;
    {
      std::lock_guard<std::mutex> lock(e.mu);
      has_notices = !e.unapplied.empty();
    }
    // Runs without e.mu (it fetches from peers); leaves the page kReadOnly.
    // No new notices can appear mid-pass: every node is between this
    // barrier's departure and the commit ack, so no interval closes anywhere.
    if (has_notices) fetch_and_apply(page, e);

    std::lock_guard<std::mutex> lock(e.mu);
    bool temp_mapped = false;
    if (e.state == PageState::kInvalid) {
      if (!e.ever_valid && !e.push_armed && !e.lock_push_armed)
        continue;  // still the initial zero page: absent = zero in the store
      // Valid-but-unmapped contents (invalidated copy already re-applied, or
      // an armed push): map readable just long enough to copy.
      rt_.arena().protect_read(id_, page);
      temp_mapped = true;
    }
    if (store.put_page(abs_epoch, page, rt_.arena().page_ptr(id_, page)))
      ++staged;
    else
      ++unchanged;
    if (temp_mapped) rt_.arena().protect_none(id_, page);
  }
  stats_.ckpt_bytes_written.fetch_add(staged * kPageSize,
                                      std::memory_order_relaxed);
  stats_.ckpt_pages_incremental.fetch_add(unchanged, std::memory_order_relaxed);

  // Sema counts live on the service thread (manager state): a self-rpc hands
  // the staging over without breaking the thread partition.  Waiters are
  // provably absent — a node blocked in sema_wait could not have arrived at
  // the barrier that just completed.
  {
    ByteWriter w;
    w.u64(abs_epoch);
    rpc_call(id_, kCkptQuery, w.take());  // kCkptReply
  }
  if (id_ == rt_.topology().alloc_server()) rt_.stage_alloc_image(abs_epoch);

  // Commit to the barrier root; the rpc blocks until the root promoted the
  // epoch, making the commit round a second barrier — no node can mutate a
  // page while a peer is still staging.
  ByteWriter w;
  w.u64(abs_epoch);
  rpc_call(rt_.topology().barrier_root(), kCkptCommit, w.take());  // kCkptAck
}

void Node::on_ckpt_query(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint64_t epoch = r.u64();
  CheckpointStore& store = rt_.checkpoint();
  for (auto& [sid, S] : mgr_.semas) {
    NOW_CHECK(S.waiters.empty())
        << "checkpoint at a completed barrier found sema " << sid
        << " waiters parked";
    if (S.count != 0) store.stage_sema(epoch, sid, S.count);
  }
  sim::Message reply;
  reply.type = kCkptReply;
  reply.dst = m.src;
  reply.seq = m.seq;
  send_service(std::move(reply), m.arrive_ts_ns);
}

void Node::on_ckpt_commit(sim::Message&& m) {
  ByteReader r(m.payload);
  const std::uint64_t epoch = r.u64();
  if (ckpt_commits_.empty()) ckpt_commit_epoch_ = epoch;
  NOW_CHECK_EQ(epoch, ckpt_commit_epoch_)
      << "checkpoint commit from node " << m.src << " for a different epoch";
  ckpt_commits_.push_back({m.src, m.seq, m.arrive_ts_ns});
  if (ckpt_commits_.size() < num_nodes_) return;

  rt_.checkpoint().promote(epoch);
  // Root-counted: the total over nodes is the number of durable epochs.
  stats_.ckpt_epochs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t base_ts = m.arrive_ts_ns;
  for (const CkptCommit& c : ckpt_commits_) {
    sim::Message ack;
    ack.type = kCkptAck;
    ack.dst = c.node;
    ack.seq = c.rpc_seq;
    send_service(std::move(ack), base_ts);
  }
  ckpt_commits_.clear();
}

void Node::rehydrate_page(PageIndex page, const unsigned char* data) {
  // Recovery path, cluster quiesced: install one durable page as this node's
  // initial state.  Resident + kReadOnly + ever_valid is exactly where a
  // first read fault would leave a page whose content the zero-heap already
  // held — the consistency protocol cannot tell the difference.
  PageEntry& e = pages_[page];
  std::lock_guard<std::mutex> lock(e.mu);
  rt_.arena().protect_rw(id_, page);
  std::memcpy(rt_.arena().page_ptr(id_, page), data, kPageSize);
  rt_.arena().protect_read(id_, page);
  e.state = PageState::kReadOnly;
  e.ever_valid = true;
}

}  // namespace now::tmk
