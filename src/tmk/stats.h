// DSM protocol statistics, per node and aggregated.
#pragma once

#include <atomic>
#include <cstdint>

namespace now::tmk {

struct DsmStatsSnapshot {
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t cold_zero_fills = 0;   // first-touch pages satisfied locally
  std::uint64_t diff_fetches = 0;      // remote fetch round trips
  std::uint64_t diff_cache_hits = 0;   // wanted diffs already held locally
  std::uint64_t diff_cache_bytes_saved = 0;  // diff-reply bytes those hits
                                             // avoided (chunk payloads +
                                             // framing; suppressed request
                                             // messages not counted)
  std::uint64_t prefetch_requests_batched = 0;  // neighbor pages folded into
                                                // fault-time kDiffRequests
  std::uint64_t prefetch_pages_filled = 0;   // neighbor pages whose fetched
                                             // chunks landed in the cache
  std::uint64_t prefetch_hits = 0;           // cache hits served by an entry
                                             // a prefetch put there
  std::uint64_t update_pushes_sent = 0;   // kUpdatePush messages (one per
                                          // reader per barrier, batched)
  std::uint64_t update_pages_pushed = 0;  // pages carried by those messages
  std::uint64_t update_push_hits = 0;     // pages a push made valid without
                                          // any remote fetch: validated at
                                          // the barrier (fault skipped) or
                                          // armed and consumed by a local
                                          // probe fault
  std::uint64_t update_demotions = 0;     // pages demoted to invalidate mode
                                          // by a reader's kUpdateDeny
  std::uint64_t update_pushes_stale = 0;  // pushes discarded because their
                                          // retransmission outlived the
                                          // barrier (lossy wire only)
  std::uint64_t lock_pushes_sent = 0;     // kLockGrant messages that carried
                                          // >= 1 migratory-pushed page
  std::uint64_t lock_pages_pushed = 0;    // pages carried by those grants
  std::uint64_t lock_push_hits = 0;       // pages a lock push made valid with
                                          // no remote fetch: validated at the
                                          // acquire or armed and consumed by
                                          // a local probe fault
  std::uint64_t lock_push_demotions = 0;  // pages demoted from a lock's
                                          // protected set by kLockPushDeny
  std::uint64_t diffs_created = 0;
  std::uint64_t diffs_applied = 0;
  std::uint64_t diff_bytes_created = 0;
  std::uint64_t twins_created = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t gc_records_reclaimed = 0;    // interval records dropped at
                                             // barrier GC (node + mgr logs)
  std::uint64_t gc_diff_bytes_reclaimed = 0; // diff-store bytes freed by GC
  std::uint64_t gc_exchanges = 0;            // on-demand GC exchanges this
                                             // node rooted (ceiling crossed)
  std::uint64_t relay_chunks_pruned = 0;     // retained relay cache entries
                                             // dropped once a grant/GC floor
                                             // proved them redundant
  std::uint64_t relay_bytes_pruned = 0;      // ...and their bytes
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_acquires_cached = 0;  // satisfied locally (node was tail)
  std::uint64_t barriers = 0;
  std::uint64_t barrier_msgs_sent = 0;  // barrier-fabric messages this node
                                        // sent: kBarrierArrive/kBarrierDepart
                                        // + kTreeArrive/kTreeDepart (self-
                                        // sends included — the flat tree's
                                        // root arrives at itself)
  std::uint64_t barrier_msgs_recv = 0;  // ...and received.  max over nodes of
                                        // (sent+recv)/barriers is the per-
                                        // barrier fabric load the scaling
                                        // gate watches: O(N) at the flat
                                        // root, O(arity) everywhere in a
                                        // populated tree
  std::uint64_t sema_ops = 0;
  std::uint64_t cond_ops = 0;
  std::uint64_t flushes = 0;
  std::uint64_t ckpt_epochs = 0;          // checkpoint epochs promoted to
                                          // durable (root-counted, so the
                                          // total is the epoch count, not
                                          // N x epochs)
  std::uint64_t ckpt_bytes_written = 0;   // page bytes (re)written into the
                                          // checkpoint store
  std::uint64_t ckpt_pages_incremental = 0;  // assigned pages skipped because
                                             // their content matched the
                                             // durable image (the incremental
                                             // win the diff engine buys)
  std::uint64_t recoveries = 0;           // node-down rollback/restart cycles
  std::uint64_t rollback_epochs_lost = 0; // barrier epochs of progress rolled
                                          // back past the durable checkpoint

  DsmStatsSnapshot& operator+=(const DsmStatsSnapshot& o) {
    read_faults += o.read_faults;
    write_faults += o.write_faults;
    cold_zero_fills += o.cold_zero_fills;
    diff_fetches += o.diff_fetches;
    diff_cache_hits += o.diff_cache_hits;
    diff_cache_bytes_saved += o.diff_cache_bytes_saved;
    prefetch_requests_batched += o.prefetch_requests_batched;
    prefetch_pages_filled += o.prefetch_pages_filled;
    prefetch_hits += o.prefetch_hits;
    update_pushes_sent += o.update_pushes_sent;
    update_pages_pushed += o.update_pages_pushed;
    update_push_hits += o.update_push_hits;
    update_demotions += o.update_demotions;
    update_pushes_stale += o.update_pushes_stale;
    lock_pushes_sent += o.lock_pushes_sent;
    lock_pages_pushed += o.lock_pages_pushed;
    lock_push_hits += o.lock_push_hits;
    lock_push_demotions += o.lock_push_demotions;
    diffs_created += o.diffs_created;
    diffs_applied += o.diffs_applied;
    diff_bytes_created += o.diff_bytes_created;
    twins_created += o.twins_created;
    invalidations += o.invalidations;
    gc_records_reclaimed += o.gc_records_reclaimed;
    gc_diff_bytes_reclaimed += o.gc_diff_bytes_reclaimed;
    gc_exchanges += o.gc_exchanges;
    relay_chunks_pruned += o.relay_chunks_pruned;
    relay_bytes_pruned += o.relay_bytes_pruned;
    lock_acquires += o.lock_acquires;
    lock_acquires_cached += o.lock_acquires_cached;
    barriers += o.barriers;
    barrier_msgs_sent += o.barrier_msgs_sent;
    barrier_msgs_recv += o.barrier_msgs_recv;
    sema_ops += o.sema_ops;
    cond_ops += o.cond_ops;
    flushes += o.flushes;
    ckpt_epochs += o.ckpt_epochs;
    ckpt_bytes_written += o.ckpt_bytes_written;
    ckpt_pages_incremental += o.ckpt_pages_incremental;
    recoveries += o.recoveries;
    rollback_epochs_lost += o.rollback_epochs_lost;
    return *this;
  }
};

// Relaxed atomics: the compute and service threads of a node both count.
struct DsmStats {
  std::atomic<std::uint64_t> read_faults{0};
  std::atomic<std::uint64_t> write_faults{0};
  std::atomic<std::uint64_t> cold_zero_fills{0};
  std::atomic<std::uint64_t> diff_fetches{0};
  std::atomic<std::uint64_t> diff_cache_hits{0};
  std::atomic<std::uint64_t> diff_cache_bytes_saved{0};
  std::atomic<std::uint64_t> prefetch_requests_batched{0};
  std::atomic<std::uint64_t> prefetch_pages_filled{0};
  std::atomic<std::uint64_t> prefetch_hits{0};
  std::atomic<std::uint64_t> update_pushes_sent{0};
  std::atomic<std::uint64_t> update_pages_pushed{0};
  std::atomic<std::uint64_t> update_push_hits{0};
  std::atomic<std::uint64_t> update_demotions{0};
  std::atomic<std::uint64_t> update_pushes_stale{0};
  std::atomic<std::uint64_t> lock_pushes_sent{0};
  std::atomic<std::uint64_t> lock_pages_pushed{0};
  std::atomic<std::uint64_t> lock_push_hits{0};
  std::atomic<std::uint64_t> lock_push_demotions{0};
  std::atomic<std::uint64_t> diffs_created{0};
  std::atomic<std::uint64_t> diffs_applied{0};
  std::atomic<std::uint64_t> diff_bytes_created{0};
  std::atomic<std::uint64_t> twins_created{0};
  std::atomic<std::uint64_t> invalidations{0};
  std::atomic<std::uint64_t> gc_records_reclaimed{0};
  std::atomic<std::uint64_t> gc_diff_bytes_reclaimed{0};
  std::atomic<std::uint64_t> gc_exchanges{0};
  std::atomic<std::uint64_t> relay_chunks_pruned{0};
  std::atomic<std::uint64_t> relay_bytes_pruned{0};
  std::atomic<std::uint64_t> lock_acquires{0};
  std::atomic<std::uint64_t> lock_acquires_cached{0};
  std::atomic<std::uint64_t> barriers{0};
  std::atomic<std::uint64_t> barrier_msgs_sent{0};
  std::atomic<std::uint64_t> barrier_msgs_recv{0};
  std::atomic<std::uint64_t> sema_ops{0};
  std::atomic<std::uint64_t> cond_ops{0};
  std::atomic<std::uint64_t> flushes{0};
  std::atomic<std::uint64_t> ckpt_epochs{0};
  std::atomic<std::uint64_t> ckpt_bytes_written{0};
  std::atomic<std::uint64_t> ckpt_pages_incremental{0};
  std::atomic<std::uint64_t> recoveries{0};
  std::atomic<std::uint64_t> rollback_epochs_lost{0};

  DsmStatsSnapshot snapshot() const {
    DsmStatsSnapshot s;
    s.read_faults = read_faults.load(std::memory_order_relaxed);
    s.write_faults = write_faults.load(std::memory_order_relaxed);
    s.cold_zero_fills = cold_zero_fills.load(std::memory_order_relaxed);
    s.diff_fetches = diff_fetches.load(std::memory_order_relaxed);
    s.diff_cache_hits = diff_cache_hits.load(std::memory_order_relaxed);
    s.diff_cache_bytes_saved = diff_cache_bytes_saved.load(std::memory_order_relaxed);
    s.prefetch_requests_batched = prefetch_requests_batched.load(std::memory_order_relaxed);
    s.prefetch_pages_filled = prefetch_pages_filled.load(std::memory_order_relaxed);
    s.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    s.update_pushes_sent = update_pushes_sent.load(std::memory_order_relaxed);
    s.update_pages_pushed = update_pages_pushed.load(std::memory_order_relaxed);
    s.update_push_hits = update_push_hits.load(std::memory_order_relaxed);
    s.update_demotions = update_demotions.load(std::memory_order_relaxed);
    s.update_pushes_stale = update_pushes_stale.load(std::memory_order_relaxed);
    s.lock_pushes_sent = lock_pushes_sent.load(std::memory_order_relaxed);
    s.lock_pages_pushed = lock_pages_pushed.load(std::memory_order_relaxed);
    s.lock_push_hits = lock_push_hits.load(std::memory_order_relaxed);
    s.lock_push_demotions = lock_push_demotions.load(std::memory_order_relaxed);
    s.diffs_created = diffs_created.load(std::memory_order_relaxed);
    s.diffs_applied = diffs_applied.load(std::memory_order_relaxed);
    s.diff_bytes_created = diff_bytes_created.load(std::memory_order_relaxed);
    s.twins_created = twins_created.load(std::memory_order_relaxed);
    s.invalidations = invalidations.load(std::memory_order_relaxed);
    s.gc_records_reclaimed = gc_records_reclaimed.load(std::memory_order_relaxed);
    s.gc_diff_bytes_reclaimed = gc_diff_bytes_reclaimed.load(std::memory_order_relaxed);
    s.gc_exchanges = gc_exchanges.load(std::memory_order_relaxed);
    s.relay_chunks_pruned = relay_chunks_pruned.load(std::memory_order_relaxed);
    s.relay_bytes_pruned = relay_bytes_pruned.load(std::memory_order_relaxed);
    s.lock_acquires = lock_acquires.load(std::memory_order_relaxed);
    s.lock_acquires_cached = lock_acquires_cached.load(std::memory_order_relaxed);
    s.barriers = barriers.load(std::memory_order_relaxed);
    s.barrier_msgs_sent = barrier_msgs_sent.load(std::memory_order_relaxed);
    s.barrier_msgs_recv = barrier_msgs_recv.load(std::memory_order_relaxed);
    s.sema_ops = sema_ops.load(std::memory_order_relaxed);
    s.cond_ops = cond_ops.load(std::memory_order_relaxed);
    s.flushes = flushes.load(std::memory_order_relaxed);
    s.ckpt_epochs = ckpt_epochs.load(std::memory_order_relaxed);
    s.ckpt_bytes_written = ckpt_bytes_written.load(std::memory_order_relaxed);
    s.ckpt_pages_incremental = ckpt_pages_incremental.load(std::memory_order_relaxed);
    s.recoveries = recoveries.load(std::memory_order_relaxed);
    s.rollback_epochs_lost = rollback_epochs_lost.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace now::tmk
