// Interval records, vector times and per-node knowledge logs — the
// consistency metadata of lazy release consistency.
//
// Every release ends an *interval* on the releasing node.  The interval's
// record lists the pages the node dirtied (its write notices).  Lazy RC
// requires that an acquirer learn, at acquire time, of every interval that
// "happened before" the release it synchronizes with; nodes therefore carry
// a log of all interval records they know about, exchange deltas on
// synchronization, and invalidate the pages named by newly learned records.
//
// Records are immutable once logged and referenced through
// shared_ptr<const IntervalRecord>: merge, delta extraction and the barrier
// manager's departure fan-out all hand around refcounted pointers instead of
// deep-copying page vectors (a record naming P pages used to be copied O(N)
// times per barrier on an N-node run).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "tmk/config.h"

namespace now::tmk {

// Vector time: for each node, the highest interval sequence number known.
// Interval sequence numbers are dense per node, starting at 1.
using VectorTime = std::vector<std::uint32_t>;

inline VectorTime vt_max(VectorTime a, const VectorTime& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::max(a[i], b[i]);
  return a;
}

inline VectorTime vt_min(VectorTime a, const VectorTime& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::min(a[i], b[i]);
  return a;
}

struct IntervalRecord {
  std::uint32_t node = 0;     // origin (the writer)
  std::uint32_t seq = 0;      // dense per-origin sequence, from 1
  std::uint64_t lamport = 0;  // linear extension of happens-before
  std::vector<PageIndex> pages;  // write notices

  // Exact wire size of serialize()'s output, for pre-sizing buffers.
  std::size_t serialized_size() const { return 4 + 4 + 8 + 4 + 4 * pages.size(); }

  void serialize(ByteWriter& w) const;
  static IntervalRecord deserialize(ByteReader& r);
};

// Immutable handle to a logged record.  The pages vector behind it is shared
// by every log, delta and message assembly that mentions the record.
using IntervalRecordPtr = std::shared_ptr<const IntervalRecord>;

// Log of every interval record a node knows, ordered by (origin, seq).
// Deltas are contiguous suffixes per origin, so both delta extraction and
// merging stay linear.  Append-only between garbage-collection passes:
// gc_to() reclaims a per-origin prefix once a barrier has proven that every
// node's vector time dominates it, leaving `gc_floor_` behind so sequence
// arithmetic stays correct on the now-sparse log.
class KnowledgeLog {
 public:
  explicit KnowledgeLog(std::uint32_t num_nodes)
      : per_node_(num_nodes), gc_floor_(num_nodes, 0) {}

  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(per_node_.size()); }

  // Highest sequence known per origin.  An origin whose records were all
  // reclaimed is still *known* up to the floor, so the floor is returned —
  // not 0 — and sequence arithmetic on sparse logs stays correct.
  VectorTime vt() const;
  std::uint32_t seq_of(std::uint32_t node) const {
    return per_node_[node].empty() ? gc_floor_[node] : per_node_[node].back()->seq;
  }

  // Appends a locally created record; seq must be the next in sequence.
  void append_own(IntervalRecord rec);

  // Merges foreign records, ignoring duplicates.  Records must extend the
  // per-origin prefix contiguously (guaranteed by the suffix-delta exchange
  // discipline; checked).  Returns the newly added records so the caller can
  // invalidate their pages; the pointers share storage with the log and stay
  // valid forever (records are immutable once logged).
  std::vector<IntervalRecordPtr> merge(const std::vector<IntervalRecordPtr>& recs);

  // All records with seq greater than `since[origin]`.  `since` must
  // dominate the GC floor: a delta that would need reclaimed records is a
  // protocol error (the floor only ever covers records every node already
  // has), and is checked.
  std::vector<IntervalRecordPtr> delta_since(const VectorTime& since) const;

  // Reclaims every record with seq <= floor[origin] and raises the
  // per-origin floor.  The floor may exceed the highest held sequence for an
  // origin (manager logs only learn records routed through them): the log
  // then acts as if it knew the skipped records — seq_of() reports the floor
  // and merge() accepts a suffix starting at floor+1 — which is sound
  // because a post-GC delta_since() is never asked for records below the
  // floor.  Floors never move backwards.  Returns the number of records
  // dropped.
  std::size_t gc_to(const VectorTime& floor);

  std::uint32_t gc_floor(std::uint32_t node) const { return gc_floor_[node]; }

  // Records currently held (reclaimed ones excluded) — the memory high-water
  // metric the barrier-GC stress test watches.
  std::size_t total_records() const;

  // Serialized byte size of every held record, maintained incrementally
  // (append/merge add, gc_to subtracts) so the on-demand GC's ceiling check
  // is O(1) instead of walking the log on every interval close.
  std::size_t total_bytes() const { return total_bytes_; }

  // Highest lamport value across all known records (0 if none).
  std::uint64_t max_lamport() const { return max_lamport_; }

  const std::vector<IntervalRecordPtr>& records_of(std::uint32_t node) const {
    return per_node_[node];
  }

  // Exact wire size of serialize_records(recs), for pre-sizing ByteWriters.
  static std::size_t records_serialized_size(const std::vector<IntervalRecordPtr>& recs);
  static void serialize_records(ByteWriter& w, const std::vector<IntervalRecordPtr>& recs);
  static std::vector<IntervalRecordPtr> deserialize_records(ByteReader& r);
  static void serialize_vt(ByteWriter& w, const VectorTime& vt);
  static VectorTime deserialize_vt(ByteReader& r);

 private:
  std::vector<std::vector<IntervalRecordPtr>> per_node_;
  VectorTime gc_floor_;  // per origin: highest reclaimed sequence
  std::uint64_t max_lamport_ = 0;
  std::size_t total_bytes_ = 0;  // sum of held records' serialized_size()
};

}  // namespace now::tmk
