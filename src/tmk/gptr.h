// Global pointers into the shared DSM address space.
//
// TreadMarks maps the shared heap at the same virtual address on every
// workstation, so ordinary pointers are meaningful machine-to-machine.  Our
// simulated workstations are threads whose regions live at different host
// addresses, so a pointer stored *in* shared memory is represented as an
// offset from the start of the shared address space and resolved through the
// calling thread's node base.  gptr<T> is a trivially copyable value type and
// is safe to store inside shared memory itself (task queues of gptrs, etc.).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace now::tmk {

namespace detail {
// Base address of the region owned by the node bound to the current thread.
// Set by the runtime for compute threads; null elsewhere.  A function-local
// constant-initialized TLS slot rather than an extern thread_local: the
// extern form goes through gcc's TLS init-wrapper, whose indirection UBSan
// reports as a null load on every gptr dereference; the local form compiles
// to a direct TLS access.
inline std::uint8_t*& region_base() {
  static thread_local std::uint8_t* base = nullptr;
  return base;
}
}  // namespace detail

template <typename T>
class gptr {
 public:
  gptr() = default;
  explicit gptr(std::uint64_t offset) : offset_(offset) {}

  static gptr null() { return gptr(kNullOffset); }
  bool is_null() const { return offset_ == kNullOffset; }
  explicit operator bool() const { return !is_null(); }

  std::uint64_t offset() const { return offset_; }

  // Resolve against the current thread's node region.  The asm is a
  // compiler barrier: DSM page contents change underneath plain loads (the
  // service thread invalidates, the fault handler patches diffs in), so
  // every resolve must yield a fresh, un-hoistable access — the flag-polling
  // idiom of the paper's Figure 1 breaks if the compiler caches a shared
  // load across a gptr dereference.  Hot kernels call get() once and index
  // the raw pointer, so they lose nothing.
  T* get() const {
    std::uint8_t* base = detail::region_base();
    asm volatile("" : "+r"(base) : : "memory");
    return reinterpret_cast<T*>(base + offset_);
  }
  std::add_lvalue_reference_t<T> operator*() const { return *get(); }
  T* operator->() const { return get(); }
  std::add_lvalue_reference_t<T> operator[](std::size_t i) const { return get()[i]; }

  gptr operator+(std::ptrdiff_t n) const {
    return gptr(offset_ + static_cast<std::uint64_t>(n * static_cast<std::ptrdiff_t>(sizeof(T))));
  }
  gptr& operator+=(std::ptrdiff_t n) { return *this = *this + n; }

  template <typename U>
  gptr<U> cast() const {
    return gptr<U>(offset_);
  }

  friend bool operator==(gptr a, gptr b) { return a.offset_ == b.offset_; }
  friend bool operator!=(gptr a, gptr b) { return a.offset_ != b.offset_; }

 private:
  static constexpr std::uint64_t kNullOffset = ~std::uint64_t{0};
  std::uint64_t offset_ = kNullOffset;
};

static_assert(sizeof(gptr<int>) == 8, "gptr must be a plain offset");

}  // namespace now::tmk
