// DSM protocol message types.
//
// Payload layouts are defined next to their senders/handlers in node_*.cpp;
// this header is the single registry of discriminators so traffic breakdowns
// by type are interpretable.
#pragma once

#include <cstdint>

namespace now::tmk {

enum MsgType : std::uint16_t {
  kInvalidMsg = 0,

  // Fork-join (OpenMP-style master/slave execution)
  kFork = 1,      // master -> slave: region fn + firstprivate blob + records
  kJoin = 2,      // slave -> master: records (release at region end)
  kShutdown = 3,  // master -> slave: leave the fork service loop

  // Page consistency.  One request per *writer*, covering every page the
  // requester wants from it in one round trip: the faulting page plus any
  // neighbors the multi-page prefetch window folded in (and, at barriers,
  // every page the GC validation pass needs from that writer).
  kDiffRequest = 4,  // faulting node -> writer: pages + wanted interval seqs
  kDiffReply = 5,    // writer -> faulting node: diffs, per page per interval

  // Locks (distributed queue: manager forwards to last requester)
  kLockAcquire = 6,  // requester -> manager
  kLockForward = 7,  // manager -> previous tail
  kLockGrant = 8,    // previous holder (or manager) -> requester, + records

  // Barriers (centralized manager)
  kBarrierArrive = 9,   // node -> manager, + records (release)
  kBarrierDepart = 10,  // manager -> node: GC floor (the minimal vector time
                        // across all arrivals) + merged records (acquire)

  // Semaphores (static manager; two messages per operation, as in the paper)
  kSemaSignal = 11,  // signaler -> manager, + GC floor + records (release)
  kSemaAck = 12,     // manager -> signaler
  kSemaWait = 13,    // waiter -> manager (acquire)
  kSemaGrant = 14,   // manager -> waiter, + records

  // Condition variables (queued at the associated lock's manager).  Deltas
  // bound for the manager log carry the sender's GC floor, like kSemaSignal.
  kCondWait = 15,       // waiter -> manager: releases lock, joins cond queue
  kCondSignal = 16,     // signaler -> manager
  kCondBroadcast = 17,  // signaler -> manager

  // Flush (kept for the ablation study; the paper removes it): 2(n-1) msgs
  kFlushNotice = 18,  // flusher -> every other node, + records
  kFlushAck = 19,     // other node -> flusher

  // Shared heap allocation (served by node 0)
  kAllocRequest = 20,
  kAllocReply = 21,
  kFreeRequest = 22,
  kFreeAck = 23,

  // Adaptive update protocol (one-way, no replies).  A writer arriving at a
  // barrier pushes the epoch's diffs for its update-promoted pages to their
  // stable readers — all pages for one reader in one message — and the
  // reader's barrier departure applies them, skipping the post-barrier fault
  // and the kDiffRequest/kDiffReply round trip.  A reader that stopped
  // touching a pushed page denies the writers, demoting the page back to
  // invalidate mode.
  kUpdatePush = 24,  // writer -> stable reader: pages + interval seqs + diffs
  kUpdateDeny = 25,  // reader -> writer: pages whose pushes went untouched

  // Migratory lock push (one-way).  The push itself has no message of its
  // own — it piggybacks on kLockGrant (diffs of the granter's closed
  // interval for the lock's hot protected pages, applied by the requester
  // during its acquire).  A holder that releases the lock with a pushed
  // page still *armed* (never touched in the whole critical section) denies
  // the pusher, demoting the page from the lock's protected set.
  kLockPushDeny = 26,  // holder -> pusher: lock + pages whose pushes were dead

  // Combining-tree barrier fabric (barrier_tree_arity >= 1).  A combining
  // point that has collected its whole fan-in (children subtrees + its own
  // compute thread's kBarrierArrive) folds them and forwards one message to
  // its parent; the root's departure wave retraces the tree.  Distinct from
  // kBarrierArrive/kBarrierDepart because an interior node's service thread
  // originates these itself — they are not rpc requests and carry a folded
  // subtree vector time, not a single node's.
  kTreeArrive = 27,  // combining point -> parent: folded min vt + mgr-log
                     // GC floor + mgr-log record delta (release, combined)
  kTreeDepart = 28,  // parent -> combining point: global floor + records
                     // the subtree fold was missing (acquire, fanned down)

  // On-demand GC exchange (meta_ceiling_bytes > 0).  A node whose metadata
  // footprint crosses the ceiling sends kGcRequest to the barrier root; the
  // root fans the solicitation down the same combining tree the barriers
  // use, each node answers up with its current vector time and its last
  // *validated* floor folded kTreeArrive-style (min per component), and the
  // root's kGcDepart wave fans the fresh global floor (plus the folded
  // validated floor that bounds one-exchange-delayed own-diff reclaim) back
  // down.  Unlike the barrier messages, nothing blocks: service threads
  // fold and forward, and each compute thread applies the parked floor at
  // its next synchronization operation.
  kGcRequest = 29,  // over-ceiling node -> root; root/interior -> children
  kGcArrive = 30,   // node -> parent: vt + validated floor (folded min)
  kGcDepart = 31,   // parent -> children: fresh floor + reclaim-ack floor

  // Reliability channel (TMK_NET_RELIABLE / any TMK_NET_*_PPM fault knob).
  // Standalone cumulative ack, sent by the channel layer only when the
  // reverse link has been idle past the flush timeout (acks otherwise
  // piggyback on reverse traffic for free).  Consumed inside the channel —
  // a node's handler switch never sees one — but registered here so traffic
  // breakdowns attribute the ack messages and bytes.
  kAck = 32,  // receiver -> sender: cumulative per-link ack, empty payload

  // Sent only when the reliability channel is armed: on a perfect wire a
  // cond_wait registration lands in the manager's mailbox synchronously,
  // strictly before the waiter releases the lock — so no signal the next
  // holder issues can beat it.  A lossy wire breaks that (a dropped
  // registration is retransmitted milliseconds later, after the grant and
  // the next holder's signal raced ahead on other links), turning
  // signal-with-no-waiter noops into lost wakeups.  The ack restores the
  // causal order TreadMarks' request-response UDP protocol had natively:
  // the waiter holds the lock until its registration is confirmed.
  kCondWaitAck = 33,  // manager -> waiter: cond registration confirmed

  // Node-crash detection (TMK_NET_CRASH_NODE).  A sequenced keepalive the
  // channel layer emits on an idle link while crash injection is armed: it
  // demands an ack like any other transmission, so a silently dead peer —
  // one nobody happens to owe traffic — still drives some survivor's
  // retransmit counter to exhaustion.  Consumed inside the channel (probes
  // advance the link sequence but are filtered at in-order release), so no
  // handler ever sees one.
  kPing = 34,  // channel keepalive probe, empty payload

  // Crash verdict, injected unsequenced (ch_seq 0) into every live mailbox
  // by the runtime once a channel endpoint's retransmissions toward a peer
  // exhaust: the service thread poisons its node's blocking rendezvous
  // points so the compute thread unwinds, and the runtime either reports a
  // clean failure (checkpointing off) or rolls the whole run back to the
  // last durable checkpoint epoch.
  kNodeDown = 35,  // runtime -> every live node: payload = victim id

  // Barrier-aligned coordinated checkpointing (TMK_CKPT_EVERY).  After a
  // checkpoint barrier's departure, each node snapshots its assigned pages
  // and asks its own service thread for the sema manager counts it owns
  // (the only app-visible manager state that must survive a run-level
  // restart), then confirms to the barrier root; the root promotes the
  // staged epoch to durable once all N commits arrive.
  kCkptQuery = 36,   // compute -> own service: snapshot managed sema counts
  kCkptReply = 37,   // own service -> compute: (sema id, count) pairs
  kCkptCommit = 38,  // node -> barrier root: epoch staged locally
  kCkptAck = 39,     // root -> node: epoch durable cluster-wide

  kNumMsgTypes
};

const char* msg_type_name(std::uint16_t t);

}  // namespace now::tmk
