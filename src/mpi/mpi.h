// mini-MPI: the message-passing baseline the paper compares against.
//
// The paper's MPI versions ran on MPICH over TCP on the same 100 Mbps
// Ethernet.  This library provides the subset those applications need —
// blocking and non-blocking point-to-point with tag matching, and the
// classic collectives — over the same simulated network as the DSM, priced
// with TCP-like parameters.  Traffic counters feed the Table 2 comparison.
//
// Deviations from full MPI, documented here once:
//   - eager delivery with unbounded buffering (MPICH's eager protocol; our
//     mailboxes never push back);
//   - isend completes immediately (buffered); irecv matches at wait();
//   - receives specify the exact source and byte count (no MPI_ANY_SOURCE,
//     no truncation), which is all the five applications use.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "simnet/clock.h"
#include "simnet/network.h"

namespace now::mpi {

struct MpiConfig {
  std::uint32_t num_ranks = 8;
  sim::NetworkModel net = sim::NetworkModel::tcp_ethernet100();
  sim::TimeModel time;
};

enum class Op { kSum, kMin, kMax };

// Wildcard source for recv_any-style master/worker patterns.
inline constexpr int kAnySource = -1;

class Comm;

// A pending non-blocking operation.  isend is buffered and already complete;
// irecv performs its matching receive when waited on.
class Request {
 public:
  Request() = default;

 private:
  friend class Comm;
  bool is_recv_ = false;
  void* buf_ = nullptr;
  std::size_t bytes_ = 0;
  int peer_ = -1;
  int tag_ = 0;
  bool done_ = true;
};

class MpiRuntime {
 public:
  // The MPI transport models TCP (MPICH), which is reliable on its own:
  // the simnet reliability channel stays off regardless of the TMK_NET_*
  // chaos knobs (those are DSM-scoped — MPI ranks have no service thread
  // to drive retransmission).  Only send-side type validation is armed;
  // every MPI message travels as type 1.
  explicit MpiRuntime(MpiConfig cfg)
      : cfg_(cfg), net_(cfg.num_ranks, cfg.net, mpi_channel()) {}

  // Runs `fn` on every rank concurrently; returns when all ranks finish.
  void run(const std::function<void(Comm&)>& fn);

  const MpiConfig& config() const { return cfg_; }
  sim::Network& net() { return net_; }
  sim::TrafficSnapshot traffic() const { return net_.traffic(); }
  std::uint64_t virtual_time_ns() const;
  double virtual_time_us() const {
    return static_cast<double>(virtual_time_ns()) / 1000.0;
  }

 private:
  friend class Comm;
  static sim::ChannelConfig mpi_channel() {
    sim::ChannelConfig c;
    c.num_msg_types = 2;  // type 1 is the only MPI discriminator
    return c;
  }
  MpiConfig cfg_;
  sim::Network net_;
  std::vector<sim::VirtualClock*> clocks_;  // populated while run() is active
  std::vector<std::uint64_t> final_times_;  // clocks at the end of run()
};

// Per-rank communicator handle (the world communicator).
class Comm {
 public:
  Comm(MpiRuntime& rt, int rank) : rt_(rt), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(rt_.config().num_ranks); }
  sim::VirtualClock& clock() { return clock_; }
  void sync_cpu() {
    clock_.advance_ns(rt_.config().time.scale_ns(meter_.take_delta_ns()));
  }

  // ---- point to point ----
  void send(const void* buf, std::size_t bytes, int dst, int tag);
  // `src` may be kAnySource; returns the actual source.
  int recv(void* buf, std::size_t bytes, int src, int tag);
  Request isend(const void* buf, std::size_t bytes, int dst, int tag);
  Request irecv(void* buf, std::size_t bytes, int src, int tag);
  void wait(Request& r);
  void waitall(std::vector<Request>& rs);
  void sendrecv(const void* sendbuf, std::size_t sendbytes, int dst, int sendtag,
                void* recvbuf, std::size_t recvbytes, int src, int recvtag);

  // Typed convenience overloads.
  template <typename T>
  void send_t(const T* buf, std::size_t count, int dst, int tag) {
    send(buf, count * sizeof(T), dst, tag);
  }
  template <typename T>
  void recv_t(T* buf, std::size_t count, int src, int tag) {
    recv(buf, count * sizeof(T), src, tag);
  }

  // ---- collectives ----
  void barrier();
  void bcast(void* buf, std::size_t bytes, int root);
  void gather(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf, int root);
  void scatter(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf, int root);
  void alltoall(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf);
  void alltoallv(const void* sendbuf, const std::vector<std::size_t>& sendbytes,
                 void* recvbuf, const std::vector<std::size_t>& recvbytes);

  template <typename T>
  void reduce(const T* in, T* out, std::size_t count, Op op, int root);
  template <typename T>
  void allreduce(const T* in, T* out, std::size_t count, Op op);
  template <typename T>
  T allreduce_one(T value, Op op) {
    T out{};
    allreduce(&value, &out, 1, op);
    return out;
  }

 private:
  // Pops the next message for this rank, advancing virtual time; consults the
  // out-of-order buffer first.  Returns the source rank, or -1 for no match.
  int match_from_pending(void* buf, std::size_t bytes, int src, int tag);
  int recv_into(void* buf, std::size_t bytes, int src, int tag);

  template <typename T>
  static void apply_op(T* acc, const T* in, std::size_t count, Op op) {
    for (std::size_t i = 0; i < count; ++i) {
      switch (op) {
        case Op::kSum: acc[i] += in[i]; break;
        case Op::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
        case Op::kMax: acc[i] = acc[i] < in[i] ? in[i] : acc[i]; break;
      }
    }
  }

  MpiRuntime& rt_;
  int rank_;
  sim::VirtualClock clock_;
  sim::CpuMeter meter_;
  std::deque<sim::Message> pending_;  // arrived but not yet matched
};

// ---------------------------------------------------------------------------
// Template implementations
// ---------------------------------------------------------------------------

namespace detail {
// Collective tags live above any user tag.
inline constexpr int kTagBarrier = 1 << 24;
inline constexpr int kTagBcast = 2 << 24;
inline constexpr int kTagReduce = 3 << 24;
inline constexpr int kTagGather = 4 << 24;
inline constexpr int kTagScatter = 5 << 24;
inline constexpr int kTagAlltoall = 6 << 24;
}  // namespace detail

template <typename T>
void Comm::reduce(const T* in, T* out, std::size_t count, Op op, int root) {
  // Binomial tree toward `root` (rank roles are computed relative to root).
  const int n = size();
  const int me = (rank_ - root + n) % n;
  std::vector<T> acc(in, in + count);
  std::vector<T> incoming(count);
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      const int dst = (rank_ - step + n) % n;
      send(acc.data(), count * sizeof(T), dst, detail::kTagReduce + step);
      return;  // contributed; done
    }
    if (me + step < n) {
      const int src = (rank_ + step) % n;
      recv(incoming.data(), count * sizeof(T), src, detail::kTagReduce + step);
      apply_op(acc.data(), incoming.data(), count, op);
    }
  }
  std::memcpy(out, acc.data(), count * sizeof(T));
}

template <typename T>
void Comm::allreduce(const T* in, T* out, std::size_t count, Op op) {
  // MPICH-era composition: reduce to rank 0, then broadcast.
  if (rank_ == 0) {
    reduce(in, out, count, op, 0);
  } else {
    reduce(in, static_cast<T*>(nullptr), count, op, 0);
  }
  bcast(out, count * sizeof(T), 0);
}

}  // namespace now::mpi
