#include "mpi/mpi.h"

#include <algorithm>
#include <thread>

namespace now::mpi {

void MpiRuntime::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(cfg_.num_ranks);
  for (std::uint32_t r = 0; r < cfg_.num_ranks; ++r)
    comms.push_back(std::make_unique<Comm>(*this, static_cast<int>(r)));

  clocks_.clear();
  for (auto& c : comms) clocks_.push_back(&c->clock());

  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_ranks);
  for (std::uint32_t r = 0; r < cfg_.num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm& c = *comms[r];
      c.sync_cpu();  // rebase the meter on this thread
      fn(c);
      c.sync_cpu();
    });
  }
  for (auto& t : threads) t.join();

  // Keep the final clocks readable after the comms are gone.
  final_times_.clear();
  for (auto& c : comms) final_times_.push_back(c->clock().now_ns());
  clocks_.clear();
}

std::uint64_t MpiRuntime::virtual_time_ns() const {
  std::uint64_t t = 0;
  for (sim::VirtualClock* c : clocks_) t = std::max(t, c->now_ns());
  for (std::uint64_t f : final_times_) t = std::max(t, f);
  return t;
}

void Comm::send(const void* buf, std::size_t bytes, int dst, int tag) {
  sync_cpu();
  clock_.advance_us(rt_.config().net.send_overhead_us);
  sim::Message m;
  m.type = 1;
  m.src = static_cast<sim::NodeId>(rank_);
  m.dst = static_cast<sim::NodeId>(dst);
  m.seq = static_cast<std::uint64_t>(tag);
  m.send_ts_ns = clock_.now_ns();
  m.payload.assign(static_cast<const std::uint8_t*>(buf),
                   static_cast<const std::uint8_t*>(buf) + bytes);
  rt_.net().send(std::move(m));
}

int Comm::match_from_pending(void* buf, std::size_t bytes, int src, int tag) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if ((src == kAnySource || it->src == static_cast<sim::NodeId>(src)) &&
        it->seq == static_cast<std::uint64_t>(tag)) {
      NOW_CHECK_EQ(it->payload.size(), bytes)
          << "mpi recv size mismatch from " << src << " tag " << tag;
      std::memcpy(buf, it->payload.data(), bytes);
      clock_.advance_to_ns(it->arrive_ts_ns);
      clock_.advance_us(rt_.config().net.recv_overhead_us);
      const int actual = static_cast<int>(it->src);
      pending_.erase(it);
      return actual;
    }
  }
  return -1;
}

int Comm::recv_into(void* buf, std::size_t bytes, int src, int tag) {
  if (int actual = match_from_pending(buf, bytes, src, tag); actual >= 0)
    return actual;
  for (;;) {
    auto m = rt_.net().recv(static_cast<sim::NodeId>(rank_));
    NOW_CHECK(m.has_value()) << "network closed during recv";
    if ((src == kAnySource || m->src == static_cast<sim::NodeId>(src)) &&
        m->seq == static_cast<std::uint64_t>(tag)) {
      NOW_CHECK_EQ(m->payload.size(), bytes)
          << "mpi recv size mismatch from " << src << " tag " << tag;
      std::memcpy(buf, m->payload.data(), bytes);
      clock_.advance_to_ns(m->arrive_ts_ns);
      clock_.advance_us(rt_.config().net.recv_overhead_us);
      return static_cast<int>(m->src);
    }
    pending_.push_back(std::move(*m));
  }
}

int Comm::recv(void* buf, std::size_t bytes, int src, int tag) {
  sync_cpu();
  const int actual = recv_into(buf, bytes, src, tag);
  meter_.rebase();
  return actual;
}

Request Comm::isend(const void* buf, std::size_t bytes, int dst, int tag) {
  send(buf, bytes, dst, tag);  // eager + buffered: complete immediately
  return Request{};
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  Request r;
  r.is_recv_ = true;
  r.buf_ = buf;
  r.bytes_ = bytes;
  r.peer_ = src;
  r.tag_ = tag;
  r.done_ = false;
  return r;
}

void Comm::wait(Request& r) {
  if (r.done_) return;
  NOW_CHECK(r.is_recv_);
  recv(r.buf_, r.bytes_, r.peer_, r.tag_);
  r.done_ = true;
}

void Comm::waitall(std::vector<Request>& rs) {
  for (Request& r : rs) wait(r);
}

void Comm::sendrecv(const void* sendbuf, std::size_t sendbytes, int dst,
                    int sendtag, void* recvbuf, std::size_t recvbytes, int src,
                    int recvtag) {
  send(sendbuf, sendbytes, dst, sendtag);
  recv(recvbuf, recvbytes, src, recvtag);
}

}  // namespace now::mpi
