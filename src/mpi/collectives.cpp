// Collectives built over point-to-point, with the algorithms MPICH used in
// the paper's era: dissemination barrier, binomial broadcast/reduce, flat
// gather/scatter, pairwise all-to-all.
#include "mpi/mpi.h"

namespace now::mpi {

using detail::kTagAlltoall;
using detail::kTagBarrier;
using detail::kTagBcast;
using detail::kTagGather;
using detail::kTagScatter;

void Comm::barrier() {
  // Dissemination: ceil(log2 n) rounds, one send + one recv per round.
  const int n = size();
  std::uint8_t token = 1;
  for (int step = 1; step < n; step <<= 1) {
    const int to = (rank_ + step) % n;
    const int from = (rank_ - step + n) % n;
    send(&token, 1, to, kTagBarrier + step);
    recv(&token, 1, from, kTagBarrier + step);
  }
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  // Binomial tree rooted at `root`.
  const int n = size();
  const int me = (rank_ - root + n) % n;
  // Find the highest power of two not exceeding me: our parent distance.
  if (me != 0) {
    int parent_step = 1;
    while (parent_step * 2 <= me) parent_step <<= 1;
    const int parent = (rank_ - parent_step + n) % n;
    recv(buf, bytes, parent, kTagBcast + parent_step);
  }
  // Forward to children: steps above our own bit, while in range.
  int first_child_step = 1;
  while (first_child_step <= me) first_child_step <<= 1;
  for (int step = first_child_step; me + step < n; step <<= 1) {
    const int child = (rank_ + step) % n;
    send(buf, bytes, child, kTagBcast + step);
  }
}

void Comm::gather(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf,
                  int root) {
  if (rank_ == root) {
    auto* out = static_cast<std::uint8_t*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(rank_) * bytes_per_rank, sendbuf,
                bytes_per_rank);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(out + static_cast<std::size_t>(r) * bytes_per_rank, bytes_per_rank, r,
           kTagGather);
    }
  } else {
    send(sendbuf, bytes_per_rank, root, kTagGather);
  }
}

void Comm::scatter(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf,
                   int root) {
  if (rank_ == root) {
    const auto* in = static_cast<const std::uint8_t*>(sendbuf);
    std::memcpy(recvbuf, in + static_cast<std::size_t>(rank_) * bytes_per_rank,
                bytes_per_rank);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send(in + static_cast<std::size_t>(r) * bytes_per_rank, bytes_per_rank, r,
           kTagScatter);
    }
  } else {
    recv(recvbuf, bytes_per_rank, root, kTagScatter);
  }
}

void Comm::alltoall(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf) {
  const int n = size();
  const auto* in = static_cast<const std::uint8_t*>(sendbuf);
  auto* out = static_cast<std::uint8_t*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(rank_) * bytes_per_rank,
              in + static_cast<std::size_t>(rank_) * bytes_per_rank, bytes_per_rank);
  // Pairwise exchange: round i talks to rank±i, which keeps every round a
  // disjoint set of pairs and the switch uncongested.
  for (int i = 1; i < n; ++i) {
    const int to = (rank_ + i) % n;
    const int from = (rank_ - i + n) % n;
    sendrecv(in + static_cast<std::size_t>(to) * bytes_per_rank, bytes_per_rank, to,
             kTagAlltoall + i,
             out + static_cast<std::size_t>(from) * bytes_per_rank, bytes_per_rank,
             from, kTagAlltoall + i);
  }
}

void Comm::alltoallv(const void* sendbuf, const std::vector<std::size_t>& sendbytes,
                     void* recvbuf, const std::vector<std::size_t>& recvbytes) {
  const int n = size();
  NOW_CHECK_EQ(sendbytes.size(), static_cast<std::size_t>(n));
  NOW_CHECK_EQ(recvbytes.size(), static_cast<std::size_t>(n));
  std::vector<std::size_t> sendoff(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::size_t> recvoff(static_cast<std::size_t>(n) + 1, 0);
  for (int r = 0; r < n; ++r) {
    sendoff[static_cast<std::size_t>(r) + 1] = sendoff[static_cast<std::size_t>(r)] + sendbytes[static_cast<std::size_t>(r)];
    recvoff[static_cast<std::size_t>(r) + 1] = recvoff[static_cast<std::size_t>(r)] + recvbytes[static_cast<std::size_t>(r)];
  }
  const auto* in = static_cast<const std::uint8_t*>(sendbuf);
  auto* out = static_cast<std::uint8_t*>(recvbuf);
  std::memcpy(out + recvoff[static_cast<std::size_t>(rank_)], in + sendoff[static_cast<std::size_t>(rank_)],
              sendbytes[static_cast<std::size_t>(rank_)]);
  for (int i = 1; i < n; ++i) {
    const int to = (rank_ + i) % n;
    const int from = (rank_ - i + n) % n;
    sendrecv(in + sendoff[static_cast<std::size_t>(to)], sendbytes[static_cast<std::size_t>(to)], to, kTagAlltoall + i,
             out + recvoff[static_cast<std::size_t>(from)], recvbytes[static_cast<std::size_t>(from)], from,
             kTagAlltoall + i);
  }
}

}  // namespace now::mpi
