// The simulated network of workstations: n nodes, each with a mailbox,
// connected by a switched full-duplex link priced by a NetworkModel.
//
// Delivery is reliable and per-sender FIFO (queues), mirroring what the
// TreadMarks UDP layer provides after its retransmission protocol and what
// TCP provides for MPICH.  Virtual timestamps ride on every message so the
// receiving protocol layer can advance its node clock to the arrival time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "simnet/mailbox.h"
#include "simnet/message.h"
#include "simnet/model.h"
#include "simnet/traffic.h"

namespace now::sim {

class Network {
 public:
  Network(std::size_t num_nodes, NetworkModel model)
      : model_(model), mailboxes_(num_nodes) {
    for (auto& m : mailboxes_) m = std::make_unique<Mailbox>();
  }

  std::size_t num_nodes() const { return mailboxes_.size(); }
  const NetworkModel& model() const { return model_; }

  // Posts a message.  The caller must have set src, dst, type and send_ts_ns
  // (its virtual clock).  Self-sends are allowed (a node's own barrier
  // arrival at its manager): they are local calls in the real system, so
  // they cost a token local-delivery delay and never touch the wire
  // counters.
  void send(Message&& m) {
    NOW_CHECK_LT(m.dst, mailboxes_.size())
        << "bad destination for message type " << m.type << " from " << m.src;
    if (m.src == m.dst) {
      m.arrive_ts_ns = m.send_ts_ns + kLocalDeliveryNs;
    } else {
      m.arrive_ts_ns = m.send_ts_ns + model_.transit_ns(m.payload.size());
      traffic_.record(m.type, m.payload.size(), model_.wire_bytes(m.payload.size()));
    }
    mailboxes_[m.dst]->push(std::move(m));
  }

  static constexpr std::uint64_t kLocalDeliveryNs = 1000;

  // Blocking receive; returns nullopt once the node's mailbox is closed and
  // drained (shutdown path).
  std::optional<Message> recv(NodeId node) {
    NOW_CHECK_LT(node, mailboxes_.size());
    return mailboxes_[node]->pop();
  }

  std::optional<Message> try_recv(NodeId node) {
    NOW_CHECK_LT(node, mailboxes_.size());
    return mailboxes_[node]->try_pop();
  }

  void close_all() {
    for (auto& m : mailboxes_) m->close();
  }

  TrafficSnapshot traffic() const { return traffic_.snapshot(); }
  void reset_traffic() { traffic_.reset(); }

 private:
  NetworkModel model_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TrafficCounter traffic_;
};

}  // namespace now::sim
