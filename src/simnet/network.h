// The simulated network of workstations: n nodes, each with a mailbox,
// connected by a switched full-duplex link priced by a NetworkModel.
//
// By default delivery is reliable and per-sender FIFO (queues), mirroring
// what the TreadMarks UDP layer provides after its retransmission protocol
// and what TCP provides for MPICH.  With a ChannelConfig the wire stops
// being assumed perfect: seeded per-link faults (drop/dup/reorder/jitter)
// are injected on every transmission and the TreadMarks-style reliability
// channel (simnet/channel.h) re-establishes exactly-once per-sender FIFO on
// top — sequence numbers, receiver dedup + reorder holds, retransmission
// with backoff, piggybacked acks.  Virtual timestamps ride on every message
// so the receiving protocol layer can advance its node clock to the arrival
// time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "simnet/channel.h"
#include "simnet/mailbox.h"
#include "simnet/message.h"
#include "simnet/model.h"
#include "simnet/traffic.h"

namespace now::sim {

class Network {
 public:
  Network(std::size_t num_nodes, NetworkModel model, ChannelConfig chan = {})
      : model_(model), mailboxes_(num_nodes), chan_cfg_(chan) {
    for (auto& m : mailboxes_) m = std::make_unique<Mailbox>();
    if (chan_cfg_.enabled())
      chan_ = std::make_unique<Channel>(chan_cfg_, model_, &mailboxes_,
                                        &traffic_);
  }

  std::size_t num_nodes() const { return mailboxes_.size(); }
  const NetworkModel& model() const { return model_; }
  const ChannelConfig& channel_config() const { return chan_cfg_; }

  // Posts a message.  The caller must have set src, dst, type and send_ts_ns
  // (its virtual clock).  Self-sends are allowed (a node's own barrier
  // arrival at its manager): they are local calls in the real system, so
  // they cost a token local-delivery delay and never touch the wire
  // counters — or the reliability channel; only real wire transmissions can
  // fault.
  void send(Message&& m) {
    NOW_CHECK_LT(m.src, mailboxes_.size())
        << "bad source for message type " << m.type << " to " << m.dst;
    NOW_CHECK_LT(m.dst, mailboxes_.size())
        << "bad destination for message type " << m.type << " from " << m.src;
    if (chan_cfg_.num_msg_types != 0) {
      NOW_CHECK_LT(m.type, chan_cfg_.num_msg_types)
          << "unknown message type from " << m.src << " to " << m.dst;
    }
    if (m.src == m.dst) {
      m.arrive_ts_ns = m.send_ts_ns + kLocalDeliveryNs;
      mailboxes_[m.dst]->push(std::move(m));
      return;
    }
    if (chan_) {
      chan_->send(std::move(m));
      return;
    }
    m.arrive_ts_ns = m.send_ts_ns + model_.transit_ns(m.payload.size());
    traffic_.record(m.type, m.payload.size(), model_.wire_bytes(m.payload.size()));
    mailboxes_[m.dst]->push(std::move(m));
  }

  static constexpr std::uint64_t kLocalDeliveryNs = 1000;

  // Blocking receive; returns nullopt once the node's mailbox is closed and
  // drained (shutdown path).  With the channel enabled this is where
  // exactly-once per-sender FIFO is restored: raw wire arrivals (possibly
  // duplicated or out of order) are reassembled before anything surfaces.
  std::optional<Message> recv(NodeId node) {
    NOW_CHECK_LT(node, mailboxes_.size());
    if (chan_) return chan_->recv(node);
    return mailboxes_[node]->pop();
  }

  std::optional<Message> try_recv(NodeId node) {
    NOW_CHECK_LT(node, mailboxes_.size());
    if (chan_) return chan_->try_recv(node);
    return mailboxes_[node]->try_pop();
  }

  void close_all() {
    for (auto& m : mailboxes_) m->close();
  }

  // Crash injection: the victim's mailbox closes, so its service thread
  // drains and exits while every frame later sent toward it is dropped on
  // the floor (counted as dropped-after-close).  Survivors' retransmissions
  // toward the victim then exhaust and produce the node-down verdict.
  void fail_node(NodeId node) {
    NOW_CHECK_LT(node, mailboxes_.size());
    mailboxes_[node]->close();
  }

  // Installs the channel's retransmit-exhaustion verdict sink (no-op when
  // the channel is off — a perfect wire cannot detect a crash).  Survives
  // reset(): the handler is re-installed on the fresh channel.
  void set_node_down(std::function<void(NodeId)> handler) {
    node_down_ = std::move(handler);
    if (chan_) chan_->set_node_down(node_down_);
  }

  // Runtime-internal control delivery that bypasses the channel: pushes
  // straight into the destination mailbox, unsequenced (ch_seq 0 surfaces
  // as-is through channel reassembly).  Used for the node-down verdict,
  // which must reach nodes whose links to the sender may themselves be in
  // arbitrary retransmission states.
  void post_control(Message&& m) {
    NOW_CHECK_LT(m.dst, mailboxes_.size());
    m.arrive_ts_ns = m.send_ts_ns;
    mailboxes_[m.dst]->push(std::move(m));
  }

  // Recovery: tear down every mailbox and the channel and rebuild them
  // fresh, as if the cluster rebooted.  Traffic counters are NOT reset —
  // the wire bytes a crashed run spent are real and stay on the bill.
  // Callers must have joined every thread touching the network first.
  void reset() {
    for (auto& m : mailboxes_) {
      dropped_carried_ += m->dropped_after_close();
      m = std::make_unique<Mailbox>();
    }
    if (chan_) chan_carried_ += chan_->snapshot();
    chan_.reset();
    if (chan_cfg_.enabled()) {
      chan_ = std::make_unique<Channel>(chan_cfg_, model_, &mailboxes_,
                                        &traffic_);
      if (node_down_) chan_->set_node_down(node_down_);
    }
  }

  TrafficSnapshot traffic() const {
    TrafficSnapshot s = traffic_.snapshot();
    if (chan_) s.chan = chan_->snapshot();
    s.chan += chan_carried_;
    for (const auto& m : mailboxes_)
      s.chan.mailbox_dropped_after_close += m->dropped_after_close();
    s.chan.mailbox_dropped_after_close += dropped_carried_;
    return s;
  }
  void reset_traffic() {
    traffic_.reset();
    if (chan_) chan_->reset_stats();
  }

  // Test hook: channel transmissions not yet cumulatively acked (0 when the
  // channel is off).
  std::size_t channel_unacked(NodeId node) const {
    return chan_ ? chan_->unacked_total(node) : 0;
  }

 private:
  NetworkModel model_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TrafficCounter traffic_;
  ChannelConfig chan_cfg_;
  std::unique_ptr<Channel> chan_;
  std::function<void(NodeId)> node_down_;
  std::uint64_t dropped_carried_ = 0;  // from mailboxes destroyed by reset()
  ChannelSnapshot chan_carried_;       // from channels destroyed by reset()
};

}  // namespace now::sim
