// Lossy-wire fault injection and the TreadMarks retransmission protocol that
// survives it.
//
// The paper's TreadMarks runs over UDP: an unreliable datagram wire made
// reliable by an operation-level retransmission protocol.  The default
// simnet wire is perfect, so that layer was assumed; this module reproduces
// both halves:
//
//  - FaultConfig injects per-link drop / duplicate / reorder / delay-jitter
//    faults, deterministically: every transmission on a (src, dst) link
//    draws from a counter-indexed hash of the seed, so a failing schedule
//    replays exactly from (seed, knobs) with no RNG state to capture.
//
//  - Channel restores exactly-once per-(src,dst) FIFO delivery on top of
//    the faulty wire, before any protocol handler runs: every non-local
//    message carries a per-link sequence number; the receiver dedups
//    (`ch_seq <= delivered`), holds out-of-order arrivals until the gap
//    fills, and acks cumulatively; the sender keeps unacked transmissions
//    in a retransmit queue paced by *host* timers with exponential backoff
//    (virtual clocks freeze while every thread blocks, so retransmission
//    liveness cannot come from virtual time; the modeled cost of a loss is
//    charged separately by re-stamping each retransmission's virtual send
//    time one RTO later).  Acks piggyback on reverse traffic — any message
//    or retransmission the other direction carries the cumulative ack for
//    free — and a standalone ack message is sent only when the reverse
//    link has been idle past a flush timeout.
//
// Channel sequencing costs nothing when disabled: Network bypasses this
// module entirely and the wire is the same perfect wire as before.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "simnet/mailbox.h"
#include "simnet/message.h"
#include "simnet/model.h"
#include "simnet/traffic.h"

namespace now::sim {

// Stateless splitmix64 finalizer: the fault stream for transmission n on
// link (src, dst) is fault_mix(seed ^ fault_mix(link) ^ n) — identical
// draws for identical (seed, link, n), no shared state.
inline std::uint64_t fault_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Seeded per-link fault probabilities, all default off.  Probabilities are
// parts-per-million of *transmissions* (retransmissions draw again — a
// retransmitted packet can itself be lost).
struct FaultConfig {
  std::uint32_t drop_ppm = 0;     // transmission vanishes
  std::uint32_t dup_ppm = 0;      // delivered twice
  std::uint32_t reorder_ppm = 0;  // held back, delivered after the next one
  std::uint64_t jitter_ns = 0;    // extra arrival delay in [0, jitter_ns)
  std::uint64_t seed = 1;

  bool any() const {
    return drop_ppm != 0 || dup_ppm != 0 || reorder_ppm != 0 || jitter_ns != 0;
  }

  // The TMK_NET_* chaos knobs (config *defaults*, like every TMK_ knob:
  // code that assigns the field explicitly is immune).
  static FaultConfig from_env() {
    FaultConfig f;
    f.drop_ppm = static_cast<std::uint32_t>(env::env_size("TMK_NET_DROP_PPM", 0));
    f.dup_ppm = static_cast<std::uint32_t>(env::env_size("TMK_NET_DUP_PPM", 0));
    f.reorder_ppm =
        static_cast<std::uint32_t>(env::env_size("TMK_NET_REORDER_PPM", 0));
    f.jitter_ns = env::env_size("TMK_NET_JITTER_NS", 0);
    f.seed = env::env_size("TMK_NET_FAULT_SEED", 1);
    return f;
  }
};

struct ChannelConfig {
  // Sequencing + retransmission on even with a clean wire (measures the
  // protocol's zero-loss overhead).  Any injected fault forces it on — a
  // lossy wire without the protocol would simply corrupt the run.
  bool reliable = false;
  FaultConfig fault;

  // Discriminator standalone acks are sent with (consumed inside the
  // channel, never surfaced to a handler) and the size of the sender-side
  // message-type table Network::send validates against (0 = no validation,
  // for protocol-agnostic uses of the raw simnet).
  std::uint16_t ack_type = 0;
  std::uint16_t num_msg_types = 0;

  // Host-clock pacing of the maintenance loop.  The RTO backs off
  // exponentially per retry; max_retries bounds it loudly — with every
  // fault probability < 1, that many consecutive losses of the same packet
  // means the protocol (not the wire) is broken.
  // The RTO must comfortably exceed ack_flush + quantum + scheduling noise,
  // or a busy host manufactures spurious retransmits of already-delivered
  // messages (measured: 1ms RTO spuriously retransmitted ~20% of a clean
  // wire's messages under parallel test load; 8ms is quiet).
  std::uint32_t quantum_host_us = 250;    // recv poll + maintenance period
  std::uint32_t rto_host_us = 8000;       // initial retransmit timeout
  std::uint32_t ack_flush_host_us = 500;  // reverse-link idle before a bare ack
  std::uint32_t max_retries = 24;

  // Keepalive probes for node-crash detection (0 = off).  A link with prior
  // traffic in either direction that stays idle this long gets a sequenced
  // empty probe of type `probe_type`: it demands a cumulative ack like any
  // transmission, so a dead peer drives the probe's retransmit counter to
  // exhaustion even when no survivor happens to owe it real traffic (the
  // silent-crash-at-barrier-arrival hole — everyone already acked everything
  // the victim ever sent).  Probes advance the link sequence but are
  // filtered at in-order release: no handler ever sees one.
  std::uint32_t probe_idle_host_us = 0;
  std::uint16_t probe_type = 0;

  // Modeled (virtual-clock) cost of a loss: each retransmission is
  // re-stamped this much later than the previous attempt, so a dropped
  // packet charges its round-trip-scale recovery latency to the virtual
  // timeline even though the host-side retry pacing is invisible to it.
  std::uint64_t rto_virtual_ns = 1000000;

  bool enabled() const { return reliable || fault.any(); }
};

// Per-(src,dst) reliability channels for every node of one Network.
// Thread model: one endpoint per node, its mutex serializing that node's
// send path (compute + service threads) with its recv/maintenance path.
// Cross-endpoint interaction goes only through the thread-safe mailboxes,
// so no lock is ever held while taking another endpoint's.
class Channel {
 public:
  Channel(const ChannelConfig& cfg, NetworkModel model,
          std::vector<std::unique_ptr<Mailbox>>* boxes, TrafficCounter* traffic)
      : cfg_(cfg), model_(model), boxes_(boxes), traffic_(traffic) {
    eps_.reserve(boxes->size());
    for (std::size_t i = 0; i < boxes->size(); ++i)
      eps_.push_back(std::make_unique<Endpoint>(boxes->size()));
  }

  bool enabled() const { return cfg_.enabled(); }

  // Installs the node-down verdict sink.  With a handler installed,
  // retransmit exhaustion toward a peer marks that link dead and reports the
  // peer instead of aborting the process (the pre-crash-injection fail-fast
  // behavior, which remains the default).  Install before any traffic flows;
  // the handler is invoked with no channel lock held and must be idempotent
  // (every surviving endpoint with traffic toward the victim detects
  // independently).
  void set_node_down(std::function<void(NodeId)> handler) {
    node_down_ = std::move(handler);
  }

  // Non-local send: stamp the link sequence number, piggyback the reverse
  // link's cumulative ack, queue a retransmit copy, transmit through the
  // fault injector.
  void send(Message&& m) {
    Endpoint& ep = *eps_[m.src];
    std::lock_guard<std::mutex> lock(ep.mu);
    TxLink& tx = ep.tx[m.dst];
    RxLink& rx = ep.rx[m.dst];
    if (tx.peer_dead) {
      // The peer was declared down: its mailbox is gone and every
      // retransmission would just re-exhaust.  Model the NIC dropping the
      // frame at a dead port, observably.
      stats_.down_link_drops.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (cfg_.probe_idle_host_us != 0)
      tx.probe_due =
          Clock::now() + std::chrono::microseconds(cfg_.probe_idle_host_us);
    m.ch_seq = ++tx.next_seq;
    m.ch_ack = rx.delivered;
    rx.ack_owed = false;  // this message carries the ack
    TxEntry e;
    e.msg = m;  // payload copy kept until acked
    e.virtual_ts = m.send_ts_ns;
    e.next_due = Clock::now() + std::chrono::microseconds(cfg_.rto_host_us);
    tx.unacked.push_back(std::move(e));
    wire_send(tx, std::move(m));
  }

  // Blocking channel-aware receive: pops raw wire arrivals, reassembles
  // exactly-once per-link FIFO into the ready queue, and runs retransmit /
  // ack maintenance whenever the wire goes quiet for a quantum.
  std::optional<Message> recv(NodeId node) {
    Endpoint& ep = *eps_[node];
    const auto quantum = std::chrono::microseconds(cfg_.quantum_host_us);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(ep.mu);
        if (!ep.ready.empty()) return pop_ready(ep);
      }
      Message raw;
      switch ((*boxes_)[node]->pop_for(raw, quantum)) {
        case Mailbox::PopStatus::kMessage:
          ingest(node, std::move(raw));
          break;
        case Mailbox::PopStatus::kClosed: {
          std::lock_guard<std::mutex> lock(ep.mu);
          if (!ep.ready.empty()) return pop_ready(ep);
          return std::nullopt;
        }
        case Mailbox::PopStatus::kTimeout:
          break;
      }
      maintain(node);
    }
  }

  std::optional<Message> try_recv(NodeId node) {
    Endpoint& ep = *eps_[node];
    while (auto raw = (*boxes_)[node]->try_pop()) ingest(node, std::move(*raw));
    maintain(node);
    std::lock_guard<std::mutex> lock(ep.mu);
    if (!ep.ready.empty()) return pop_ready(ep);
    return std::nullopt;
  }

  ChannelSnapshot snapshot() const {
    ChannelSnapshot s;
    s.drops_injected = stats_.drops_injected.load(std::memory_order_relaxed);
    s.dups_injected = stats_.dups_injected.load(std::memory_order_relaxed);
    s.reorders_injected = stats_.reorders_injected.load(std::memory_order_relaxed);
    s.retransmits = stats_.retransmits.load(std::memory_order_relaxed);
    s.retransmit_wire_bytes =
        stats_.retransmit_wire_bytes.load(std::memory_order_relaxed);
    s.dup_drops = stats_.dup_drops.load(std::memory_order_relaxed);
    s.reorder_holds = stats_.reorder_holds.load(std::memory_order_relaxed);
    s.acks_sent = stats_.acks_sent.load(std::memory_order_relaxed);
    s.ack_wire_bytes = stats_.ack_wire_bytes.load(std::memory_order_relaxed);
    s.probes_sent = stats_.probes_sent.load(std::memory_order_relaxed);
    s.down_links = stats_.down_links.load(std::memory_order_relaxed);
    s.down_link_drops = stats_.down_link_drops.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() {
    stats_.drops_injected.store(0, std::memory_order_relaxed);
    stats_.dups_injected.store(0, std::memory_order_relaxed);
    stats_.reorders_injected.store(0, std::memory_order_relaxed);
    stats_.retransmits.store(0, std::memory_order_relaxed);
    stats_.retransmit_wire_bytes.store(0, std::memory_order_relaxed);
    stats_.dup_drops.store(0, std::memory_order_relaxed);
    stats_.reorder_holds.store(0, std::memory_order_relaxed);
    stats_.acks_sent.store(0, std::memory_order_relaxed);
    stats_.ack_wire_bytes.store(0, std::memory_order_relaxed);
    stats_.probes_sent.store(0, std::memory_order_relaxed);
    stats_.down_links.store(0, std::memory_order_relaxed);
    stats_.down_link_drops.store(0, std::memory_order_relaxed);
  }

  // Test hook: transmissions of `node` not yet cumulatively acked.
  std::size_t unacked_total(NodeId node) const {
    Endpoint& ep = *eps_[node];
    std::lock_guard<std::mutex> lock(ep.mu);
    std::size_t n = 0;
    for (const TxLink& tx : ep.tx) n += tx.unacked.size();
    return n;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct TxEntry {
    Message msg;  // as stamped at first transmission
    std::uint32_t retries = 0;
    std::uint64_t virtual_ts = 0;  // virtual send time of the last attempt
    Clock::time_point next_due;
  };
  struct TxLink {  // this node -> dst
    std::uint64_t next_seq = 0;
    std::uint64_t fault_draws = 0;  // transmissions attempted (fault stream pos)
    std::deque<TxEntry> unacked;
    std::optional<Message> limbo;  // reorder: held until the next transmission
    bool peer_dead = false;        // retransmit exhaustion verdict delivered
    Clock::time_point probe_due{};  // next keepalive, lazily armed
  };
  struct RxLink {  // src -> this node
    std::uint64_t delivered = 0;  // highest in-order ch_seq surfaced
    std::map<std::uint64_t, Message> held;
    bool ack_owed = false;
    Clock::time_point ack_due;
  };
  struct Endpoint {
    explicit Endpoint(std::size_t n) : tx(n), rx(n) {}
    mutable std::mutex mu;
    std::vector<TxLink> tx;
    std::vector<RxLink> rx;
    std::deque<Message> ready;  // exactly-once per-link FIFO, handler-visible
    Clock::time_point next_maintain{};
  };
  struct Stats {
    std::atomic<std::uint64_t> drops_injected{0};
    std::atomic<std::uint64_t> dups_injected{0};
    std::atomic<std::uint64_t> reorders_injected{0};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> retransmit_wire_bytes{0};
    std::atomic<std::uint64_t> dup_drops{0};
    std::atomic<std::uint64_t> reorder_holds{0};
    std::atomic<std::uint64_t> acks_sent{0};
    std::atomic<std::uint64_t> ack_wire_bytes{0};
    std::atomic<std::uint64_t> probes_sent{0};
    std::atomic<std::uint64_t> down_links{0};
    std::atomic<std::uint64_t> down_link_drops{0};
  };

  Message pop_ready(Endpoint& ep) {  // ep.mu held
    Message m = std::move(ep.ready.front());
    ep.ready.pop_front();
    return m;
  }

  // One transmission attempt on the wire, through the fault injector.
  // Caller holds the *sender's* endpoint mutex; only the (thread-safe)
  // destination mailbox is touched beyond it.  Traffic is recorded per
  // attempt: duplicates and retransmissions are real packets on the real
  // wire, which is exactly the overhead Table 2 should see.
  void wire_send(TxLink& tx, Message&& m) {
    traffic_->record(m.type, m.payload.size(),
                     model_.wire_bytes(m.payload.size()));
    const FaultConfig& f = cfg_.fault;
    if (!f.any()) {
      deliver(tx, std::move(m), 0, false);
      return;
    }
    const std::uint64_t link =
        (static_cast<std::uint64_t>(m.src) << 32) | m.dst;
    const std::uint64_t base =
        fault_mix(f.seed ^ fault_mix(link) ^ ++tx.fault_draws);
    const auto draw = [base](std::uint64_t stream) {
      return fault_mix(base ^ (stream * 0x9e3779b97f4a7c15ULL));
    };
    if (f.drop_ppm != 0 && draw(1) % 1000000 < f.drop_ppm) {
      stats_.drops_injected.fetch_add(1, std::memory_order_relaxed);
      return;  // vanished; a held reorder victim (if any) stays held
    }
    const bool dup = f.dup_ppm != 0 && draw(2) % 1000000 < f.dup_ppm;
    const bool reorder = f.reorder_ppm != 0 && draw(3) % 1000000 < f.reorder_ppm;
    const std::uint64_t jitter =
        f.jitter_ns != 0 ? draw(4) % f.jitter_ns : 0;
    if (dup) {
      Message copy = m;
      traffic_->record(copy.type, copy.payload.size(),
                       model_.wire_bytes(copy.payload.size()));
      stats_.dups_injected.fetch_add(1, std::memory_order_relaxed);
      deliver(tx, std::move(copy), jitter, false);
    }
    deliver(tx, std::move(m), jitter, reorder);
  }

  // Physical delivery with the link's reorder hold-back: a reordered packet
  // parks in limbo and rides out *after* the link's next delivery (liveness:
  // an unacked parked packet is retransmitted, and that retransmission is
  // itself the next transmission that flushes the limbo).
  void deliver(TxLink& tx, Message&& m, std::uint64_t extra_ns, bool reorder) {
    m.arrive_ts_ns =
        m.send_ts_ns + model_.transit_ns(m.payload.size()) + extra_ns;
    if (reorder && !tx.limbo.has_value()) {
      stats_.reorders_injected.fetch_add(1, std::memory_order_relaxed);
      tx.limbo = std::move(m);
      return;
    }
    const NodeId dst = m.dst;
    (*boxes_)[dst]->push(std::move(m));
    if (tx.limbo.has_value()) {
      Message held = std::move(*tx.limbo);
      tx.limbo.reset();
      (*boxes_)[dst]->push(std::move(held));
    }
  }

  // Receiver-side reassembly: ack application, dedup, gap hold, in-order
  // release into the ready queue.
  void ingest(NodeId node, Message&& m) {
    Endpoint& ep = *eps_[node];
    std::lock_guard<std::mutex> lock(ep.mu);
    if (m.src == m.dst) {  // local fast path was never sequenced
      ep.ready.push_back(std::move(m));
      return;
    }
    TxLink& tx = ep.tx[m.src];
    RxLink& rx = ep.rx[m.src];
    // Cumulative ack for our own transmissions toward m.src (piggybacked on
    // every message, including duplicates and pure acks).
    while (!tx.unacked.empty() && tx.unacked.front().msg.ch_seq <= m.ch_ack)
      tx.unacked.pop_front();
    if (m.ch_seq == 0) {
      // Unsequenced: a standalone ack (consumed here) or a message sent
      // before the channel was enabled — surfaced as-is.
      if (m.type == cfg_.ack_type) return;
      ep.ready.push_back(std::move(m));
      return;
    }
    if (m.ch_seq <= rx.delivered) {
      // Duplicate of something already surfaced (injected dup, or a
      // retransmission whose original made it).  Re-arm the ack so the
      // sender stops retransmitting.
      stats_.dup_drops.fetch_add(1, std::memory_order_relaxed);
      owe_ack(rx);
      return;
    }
    if (m.ch_seq == rx.delivered + 1) {
      rx.delivered = m.ch_seq;
      release(ep, std::move(m));
      auto it = rx.held.begin();
      while (it != rx.held.end() && it->first == rx.delivered + 1) {
        rx.delivered = it->first;
        release(ep, std::move(it->second));
        it = rx.held.erase(it);
      }
      owe_ack(rx);
      return;
    }
    // Gap: a predecessor is missing (reordered or dropped).  Hold until it
    // arrives or is retransmitted.
    if (rx.held.emplace(m.ch_seq, std::move(m)).second)
      stats_.reorder_holds.fetch_add(1, std::memory_order_relaxed);
    else
      stats_.dup_drops.fetch_add(1, std::memory_order_relaxed);
    owe_ack(rx);
  }

  // In-order release into the handler-visible queue.  Keepalive probes took
  // part in the sequencing (they demand acks — that is their whole job) but
  // carry nothing for a handler.
  void release(Endpoint& ep, Message&& m) {  // ep.mu held
    if (cfg_.probe_type != 0 && m.type == cfg_.probe_type) return;
    ep.ready.push_back(std::move(m));
  }

  void owe_ack(RxLink& rx) {
    if (rx.ack_owed) return;
    rx.ack_owed = true;
    rx.ack_due = Clock::now() + std::chrono::microseconds(cfg_.ack_flush_host_us);
  }

  // Host-paced sender maintenance: retransmit overdue unacked transmissions
  // (exponential backoff), emit keepalive probes on idle links, and flush
  // acks whose reverse link stayed idle.  Node-down verdicts are collected
  // under the lock and delivered after it drops: the handler pushes into
  // other nodes' mailboxes, and no lock may be held across that.
  void maintain(NodeId node) {
    std::vector<NodeId> dead;
    maintain_locked(node, dead);
    for (NodeId d : dead) node_down_(d);
  }

  void maintain_locked(NodeId node, std::vector<NodeId>& dead) {
    Endpoint& ep = *eps_[node];
    std::lock_guard<std::mutex> lock(ep.mu);
    const auto now = Clock::now();
    if (now < ep.next_maintain) return;
    ep.next_maintain = now + std::chrono::microseconds(cfg_.quantum_host_us);
    for (NodeId dst = 0; dst < ep.tx.size(); ++dst) {
      TxLink& tx = ep.tx[dst];
      if (tx.peer_dead) continue;
      for (TxEntry& e : tx.unacked) {
        if (now < e.next_due) continue;
        if (e.retries >= cfg_.max_retries && node_down_) {
          // Verdict, not abort: with a crash handler installed, exhaustion
          // means the peer is gone.  Drop the link's backlog (nothing will
          // ever ack it) and report once the lock is released.
          tx.peer_dead = true;
          tx.unacked.clear();
          stats_.down_links.fetch_add(1, std::memory_order_relaxed);
          dead.push_back(dst);
          break;  // the clear invalidated the iterator
        }
        NOW_CHECK_LT(e.retries, cfg_.max_retries)
            << "channel " << node << "->" << dst << " seq " << e.msg.ch_seq
            << " (type " << e.msg.type << ") still unacked after "
            << e.retries << " retransmissions — ack path broken";
        ++e.retries;
        e.next_due = now + std::chrono::microseconds(
                               cfg_.rto_host_us
                               << std::min<std::uint32_t>(e.retries, 10));
        e.virtual_ts += cfg_.rto_virtual_ns;
        Message copy = e.msg;
        copy.send_ts_ns = e.virtual_ts;
        copy.ch_ack = ep.rx[dst].delivered;  // refreshed piggyback
        ep.rx[dst].ack_owed = false;         // this is reverse traffic
        stats_.retransmits.fetch_add(1, std::memory_order_relaxed);
        stats_.retransmit_wire_bytes.fetch_add(
            model_.wire_bytes(copy.payload.size()), std::memory_order_relaxed);
        wire_send(tx, std::move(copy));
      }
      // Keepalive probe on an idle active link (crash detection armed).
      // Built inline — send() takes ep.mu, which is already held — and only
      // while nothing is in flight: an unacked transmission already demands
      // an ack, so a probe would add nothing but wire noise.
      if (cfg_.probe_idle_host_us != 0 && dst != node && !tx.peer_dead &&
          tx.unacked.empty() &&
          (tx.next_seq != 0 || ep.rx[dst].delivered != 0)) {
        if (tx.probe_due == Clock::time_point{}) {
          tx.probe_due =
              now + std::chrono::microseconds(cfg_.probe_idle_host_us);
        } else if (now >= tx.probe_due) {
          tx.probe_due =
              now + std::chrono::microseconds(cfg_.probe_idle_host_us);
          Message p;
          p.type = cfg_.probe_type;
          p.src = node;
          p.dst = dst;
          // Probes never surface to a handler, so like pure acks they carry
          // no plausible virtual time.
          p.ch_seq = ++tx.next_seq;
          p.ch_ack = ep.rx[dst].delivered;
          ep.rx[dst].ack_owed = false;  // the probe carries the ack
          TxEntry e;
          e.msg = p;
          e.virtual_ts = 0;
          e.next_due = now + std::chrono::microseconds(cfg_.rto_host_us);
          tx.unacked.push_back(std::move(e));
          stats_.probes_sent.fetch_add(1, std::memory_order_relaxed);
          wire_send(tx, std::move(p));
        }
      }
    }
    for (NodeId src = 0; src < ep.rx.size(); ++src) {
      RxLink& rx = ep.rx[src];
      if (!rx.ack_owed || now < rx.ack_due) continue;
      rx.ack_owed = false;
      Message a;
      a.type = cfg_.ack_type;
      a.src = node;
      a.dst = src;
      a.ch_ack = rx.delivered;
      // Pure acks never surface to a handler, so their virtual timestamps
      // advance no clock; stamp zero rather than invent a plausible time.
      stats_.acks_sent.fetch_add(1, std::memory_order_relaxed);
      stats_.ack_wire_bytes.fetch_add(model_.wire_bytes(0),
                                      std::memory_order_relaxed);
      wire_send(ep.tx[src], std::move(a));
    }
  }

  ChannelConfig cfg_;
  NetworkModel model_;
  std::vector<std::unique_ptr<Mailbox>>* boxes_;
  TrafficCounter* traffic_;
  std::vector<std::unique_ptr<Endpoint>> eps_;
  Stats stats_;
  std::function<void(NodeId)> node_down_;  // verdict sink; empty = fail fast
};

}  // namespace now::sim
