// Typed messages exchanged between simulated workstations.
#pragma once

#include <cstdint>
#include <vector>

namespace now::sim {

using NodeId = std::uint32_t;

struct Message {
  std::uint16_t type = 0;   // protocol-defined discriminator (opaque here)
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t seq = 0;    // RPC matching token (0 = not a reply)
  std::uint64_t send_ts_ns = 0;    // sender's virtual clock at send
  std::uint64_t arrive_ts_ns = 0;  // send_ts + modeled transit (set by Network)
  // Reliability-channel header (set by the Channel when it is enabled; part
  // of the modeled UDP header, so it adds no wire bytes of its own).
  std::uint64_t ch_seq = 0;  // per-(src,dst) sequence, from 1 (0 = unsequenced)
  std::uint64_t ch_ack = 0;  // cumulative ack of the reverse link (0 = none)
  std::vector<std::uint8_t> payload;
};

}  // namespace now::sim
