// Traffic accounting: message and byte counters per node and per message type.
//
// These counters are the measurement substrate for the paper's Table 2
// ("Amount of data transmitted and number of messages in the OpenMP,
// TreadMarks and MPI versions of the applications").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace now::sim {

inline constexpr std::size_t kMaxMessageTypes = 64;

struct TrafficSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;  // payload + per-message protocol headers
  std::array<std::uint64_t, kMaxMessageTypes> messages_by_type{};

  double wire_mbytes() const {
    return static_cast<double>(wire_bytes) / (1024.0 * 1024.0);
  }

  TrafficSnapshot& operator+=(const TrafficSnapshot& o) {
    messages += o.messages;
    payload_bytes += o.payload_bytes;
    wire_bytes += o.wire_bytes;
    for (std::size_t i = 0; i < kMaxMessageTypes; ++i)
      messages_by_type[i] += o.messages_by_type[i];
    return *this;
  }
};

// Lock-free accumulation; sends happen on compute, service and manager paths
// concurrently.
class TrafficCounter {
 public:
  void record(std::uint16_t type, std::uint64_t payload, std::uint64_t wire) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_.fetch_add(payload, std::memory_order_relaxed);
    wire_bytes_.fetch_add(wire, std::memory_order_relaxed);
    if (type < kMaxMessageTypes)
      by_type_[type].fetch_add(1, std::memory_order_relaxed);
  }

  TrafficSnapshot snapshot() const {
    TrafficSnapshot s;
    s.messages = messages_.load(std::memory_order_relaxed);
    s.payload_bytes = payload_bytes_.load(std::memory_order_relaxed);
    s.wire_bytes = wire_bytes_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxMessageTypes; ++i)
      s.messages_by_type[i] = by_type_[i].load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    messages_.store(0, std::memory_order_relaxed);
    payload_bytes_.store(0, std::memory_order_relaxed);
    wire_bytes_.store(0, std::memory_order_relaxed);
    for (auto& c : by_type_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::array<std::atomic<std::uint64_t>, kMaxMessageTypes> by_type_{};
};

}  // namespace now::sim
