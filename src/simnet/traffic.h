// Traffic accounting: message and byte counters per node and per message type.
//
// These counters are the measurement substrate for the paper's Table 2
// ("Amount of data transmitted and number of messages in the OpenMP,
// TreadMarks and MPI versions of the applications").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace now::sim {

inline constexpr std::size_t kMaxMessageTypes = 64;

// Reliability-channel activity (sequencing, retransmission, fault injection).
// All zero when the channel is disabled — the default wire is perfect, so
// these counters are pure additions to the Table 2 measurement substrate.
struct ChannelSnapshot {
  // Faults the lossy wire injected (sender side, per transmission).
  std::uint64_t drops_injected = 0;
  std::uint64_t dups_injected = 0;
  std::uint64_t reorders_injected = 0;
  // The protocol's reactions.
  std::uint64_t retransmits = 0;           // timed-out transmissions re-sent
  std::uint64_t retransmit_wire_bytes = 0;
  std::uint64_t dup_drops = 0;             // receiver-side dedup discards
  std::uint64_t reorder_holds = 0;         // held for a missing predecessor
  std::uint64_t acks_sent = 0;             // standalone acks (idle reverse path)
  std::uint64_t ack_wire_bytes = 0;
  // Node-crash detection (probe_idle_host_us > 0, i.e. crash injection armed).
  std::uint64_t probes_sent = 0;       // keepalive probes on idle links
  std::uint64_t down_links = 0;        // links declared dead on retransmit
                                       // exhaustion (one per surviving
                                       // endpoint with traffic toward the
                                       // victim, not one per victim)
  std::uint64_t down_link_drops = 0;   // sends dropped toward a dead peer
  // Mailbox shutdown accounting (counted with or without the channel).
  std::uint64_t mailbox_dropped_after_close = 0;

  ChannelSnapshot& operator+=(const ChannelSnapshot& o) {
    drops_injected += o.drops_injected;
    dups_injected += o.dups_injected;
    reorders_injected += o.reorders_injected;
    retransmits += o.retransmits;
    retransmit_wire_bytes += o.retransmit_wire_bytes;
    dup_drops += o.dup_drops;
    reorder_holds += o.reorder_holds;
    acks_sent += o.acks_sent;
    ack_wire_bytes += o.ack_wire_bytes;
    probes_sent += o.probes_sent;
    down_links += o.down_links;
    down_link_drops += o.down_link_drops;
    mailbox_dropped_after_close += o.mailbox_dropped_after_close;
    return *this;
  }
};

struct TrafficSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;  // payload + per-message protocol headers
  std::array<std::uint64_t, kMaxMessageTypes> messages_by_type{};
  ChannelSnapshot chan;  // reliability-layer activity behind those totals

  double wire_mbytes() const {
    return static_cast<double>(wire_bytes) / (1024.0 * 1024.0);
  }

  TrafficSnapshot& operator+=(const TrafficSnapshot& o) {
    messages += o.messages;
    payload_bytes += o.payload_bytes;
    wire_bytes += o.wire_bytes;
    for (std::size_t i = 0; i < kMaxMessageTypes; ++i)
      messages_by_type[i] += o.messages_by_type[i];
    chan += o.chan;
    return *this;
  }
};

// Lock-free accumulation; sends happen on compute, service and manager paths
// concurrently.
class TrafficCounter {
 public:
  void record(std::uint16_t type, std::uint64_t payload, std::uint64_t wire) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_.fetch_add(payload, std::memory_order_relaxed);
    wire_bytes_.fetch_add(wire, std::memory_order_relaxed);
    if (type < kMaxMessageTypes)
      by_type_[type].fetch_add(1, std::memory_order_relaxed);
  }

  TrafficSnapshot snapshot() const {
    TrafficSnapshot s;
    s.messages = messages_.load(std::memory_order_relaxed);
    s.payload_bytes = payload_bytes_.load(std::memory_order_relaxed);
    s.wire_bytes = wire_bytes_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxMessageTypes; ++i)
      s.messages_by_type[i] = by_type_[i].load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    messages_.store(0, std::memory_order_relaxed);
    payload_bytes_.store(0, std::memory_order_relaxed);
    wire_bytes_.store(0, std::memory_order_relaxed);
    for (auto& c : by_type_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::array<std::atomic<std::uint64_t>, kMaxMessageTypes> by_type_{};
};

}  // namespace now::sim
