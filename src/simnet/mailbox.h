// Blocking per-node message queue (the simulated NIC receive ring).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "simnet/message.h"

namespace now::sim {

class Mailbox {
 public:
  void push(Message&& m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(m));
    }
    cv_.notify_one();
  }

  // Blocks until a message is available or the mailbox is closed.
  std::optional<Message> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  std::optional<Message> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  // Wakes all blocked poppers; subsequent pops drain the queue then return
  // nullopt.  Used for orderly node shutdown.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace now::sim
