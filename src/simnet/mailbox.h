// Blocking per-node message queue (the simulated NIC receive ring).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "simnet/message.h"

namespace now::sim {

class Mailbox {
 public:
  // Outcome of a bounded pop: a message, a timeout (the channel layer's cue
  // to run retransmit/ack maintenance), or closed-and-drained shutdown.
  enum class PopStatus { kMessage, kTimeout, kClosed };

  // A push racing `close()` is dropped, not enqueued: the box has already
  // been (or is being) drained, so a late message would sit in a queue
  // nobody pops — worse, a shutdown-order-dependent subset *would* be
  // popped.  Dropping is the simulated NIC losing a frame after the ring is
  // torn down; the count makes the race observable instead of silent.
  void push(Message&& m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        ++dropped_after_close_;
        return;
      }
      queue_.push_back(std::move(m));
    }
    cv_.notify_one();
  }

  // Blocks until a message is available or the mailbox is closed.
  std::optional<Message> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  // Bounded pop: like pop(), but gives up after `timeout` so the caller can
  // interleave time-based work (channel retransmissions, ack flushes) with
  // receiving.  Queued messages still drain after close (kMessage first,
  // kClosed only once empty), matching pop()'s shutdown semantics.
  PopStatus pop_for(Message& out, std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      return PopStatus::kMessage;
    }
    return closed_ ? PopStatus::kClosed : PopStatus::kTimeout;
  }

  std::optional<Message> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  // Wakes all blocked poppers; subsequent pops drain the queue then return
  // nullopt.  Used for orderly node shutdown.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  std::uint64_t dropped_after_close() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_after_close_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
  std::uint64_t dropped_after_close_ = 0;
};

}  // namespace now::sim
