// Cost model for the simulated network of workstations.
//
// The paper's platform is eight 200 MHz Pentium Pros on switched full-duplex
// 100 Mbps Ethernet running FreeBSD.  TreadMarks talks UDP/IP, MPICH talks
// TCP.  We reproduce that wire with an analytic model: each message costs a
// fixed per-message latency plus payload/bandwidth, and every message carries
// the protocol header a real packet would (so byte counts match what a
// tcpdump of the original system would show).
//
// Default parameters follow the paper's Section 6 prose and the TreadMarks
// literature for this exact platform class:
//   - UDP/IP small-message round trip  ~130 us  => one-way latency 65 us
//   - TCP (MPICH) empty-message RTT    ~185 us  => one-way latency 92.5 us
//   - achievable TCP bandwidth         ~10.5 MB/s of the 12.5 MB/s raw line
//   - lock acquire 150..500 us, 8-processor barrier ~600 us, diff 30..80 us
//     (these fall out of the protocol + this model; bench_micro checks them)
#pragma once

#include <cstddef>
#include <cstdint>

namespace now::sim {

struct NetworkModel {
  double latency_us = 65.0;       // one-way per-message latency (wire + stack)
  double bandwidth_mbps = 88.0;   // achievable payload bandwidth, Mbit/s
  std::uint32_t header_bytes = 42;  // Ethernet+IP+UDP framing per message
  double send_overhead_us = 12.0;   // CPU time burned on the sending node
  double recv_overhead_us = 12.0;   // CPU time burned on the receiving node
  double service_overhead_us = 25.0;  // interrupt cost of servicing a request
                                      // ("numerous threads are interrupted
                                      // unnecessarily" -- paper, Sec. 3.2.4)

  // Wire time from the moment a message is posted until it is available at
  // the destination.
  double transit_us(std::size_t payload_bytes) const {
    const double bits = static_cast<double>(payload_bytes + header_bytes) * 8.0;
    return latency_us + bits / bandwidth_mbps;  // Mbit/s == bit/us
  }
  std::uint64_t transit_ns(std::size_t payload_bytes) const {
    return static_cast<std::uint64_t>(transit_us(payload_bytes) * 1000.0);
  }

  std::uint64_t wire_bytes(std::size_t payload_bytes) const {
    return payload_bytes + header_bytes;
  }

  // TreadMarks' transport on the paper platform.
  static NetworkModel udp_ethernet100() { return NetworkModel{}; }

  // MPICH's transport on the paper platform: higher per-message cost (TCP),
  // slightly better streaming bandwidth, bigger header.
  static NetworkModel tcp_ethernet100() {
    NetworkModel m;
    m.latency_us = 92.5;
    m.bandwidth_mbps = 84.0;
    m.header_bytes = 54;
    m.send_overhead_us = 15.0;
    m.recv_overhead_us = 15.0;
    return m;
  }
};

// Converts measured host CPU time into simulated 1998-workstation CPU time.
// A modern core retires roughly cpu_scale times the useful work of a 200 MHz
// Pentium Pro on these kernels (clock x IPC x vector width); the default is
// calibrated so the compute/communication ratio -- which is what decides
// every speedup shape in the paper -- lands in the paper's regime with the
// bench workload sizes.
struct TimeModel {
  double cpu_scale = 150.0;
  std::uint64_t scale_ns(std::uint64_t host_ns) const {
    return static_cast<std::uint64_t>(static_cast<double>(host_ns) * cpu_scale);
  }
};

}  // namespace now::sim
