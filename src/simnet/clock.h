// Per-node virtual clocks.
//
// Each simulated workstation accumulates virtual time from two sources:
//   (a) measured CPU time of its compute thread, scaled by TimeModel (the
//       application work it would have done on the paper's hardware), and
//   (b) modeled communication/service delays from the network model.
// Synchronization transfers timestamps: a blocked receiver's clock jumps to
// the message arrival time.  The clock is atomic because a node's protocol
// service thread charges interrupt costs concurrently with the compute
// thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <ctime>

#include "simnet/model.h"

namespace now::sim {

class VirtualClock {
 public:
  std::uint64_t now_ns() const { return ns_.load(std::memory_order_relaxed); }
  double now_us() const { return static_cast<double>(now_ns()) / 1000.0; }

  void advance_ns(std::uint64_t delta) {
    ns_.fetch_add(delta, std::memory_order_relaxed);
  }
  void advance_us(double us) {
    advance_ns(static_cast<std::uint64_t>(us * 1000.0));
  }

  // Clock never moves backwards: used when a message arrival or barrier
  // departure timestamp overtakes locally accumulated time.
  void advance_to_ns(std::uint64_t t) {
    std::uint64_t cur = ns_.load(std::memory_order_relaxed);
    while (cur < t &&
           !ns_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

  void reset() { ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> ns_{0};
};

// Samples monotonic time so that application compute between runtime entry
// points can be attributed to the node's virtual clock.  The runtime rebases
// the meter around every blocking wait, so a delta covers a stretch where the
// thread was executing application code.  (CLOCK_THREAD_CPUTIME_ID would be
// the exact measure, but sandboxed kernels quantize it to ~10 ms, far too
// coarse; monotonic deltas between rebases are the faithful portable proxy.)
// Owned by a node and touched only from its compute thread.
class CpuMeter {
 public:
  CpuMeter() { last_ns_ = sample_ns(); }

  // Nanoseconds of application execution since the previous call.
  std::uint64_t take_delta_ns() {
    const std::uint64_t now = sample_ns();
    const std::uint64_t delta = now >= last_ns_ ? now - last_ns_ : 0;
    last_ns_ = now;
    return delta;
  }

  // Re-bases the meter without crediting elapsed time (used when a compute
  // thread was blocked rather than computing).
  void rebase() { last_ns_ = sample_ns(); }

  static std::uint64_t sample_ns() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

 private:
  std::uint64_t last_ns_;
};

}  // namespace now::sim
