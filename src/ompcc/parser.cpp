#include "ompcc/parser.h"

#include "common/check.h"

namespace now::ompcc {

std::string Type::cpp() const {
  std::string s;
  switch (base) {
    case kInt: s = "std::int32_t"; break;
    case kLong: s = "std::int64_t"; break;
    case kDouble: s = "double"; break;
    case kVoid: s = "void"; break;
  }
  for (int i = 0; i < pointer_depth; ++i) s += '*';
  return s;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::vector<Token>& toks) : toks_(toks) {}

  Program parse_program() {
    Program prog;
    while (!at(Tok::kEof)) {
      // Global declarations: type ident ( '(' -> function, else variable ).
      Type t = parse_type();
      const std::string name = expect(Tok::kIdent).text;
      if (at(Tok::kLParen)) {
        prog.functions.push_back(parse_function(t, name));
      } else {
        GlobalVar g;
        g.type = t;
        g.name = name;
        g.line = cur().line;
        if (accept(Tok::kLBracket)) {
          g.type.is_array = true;
          g.type.array_size = std::stoll(expect(Tok::kIntLit).text);
          expect(Tok::kRBracket);
        }
        if (accept(Tok::kAssign)) g.init = parse_expr();
        expect(Tok::kSemi);
        prog.globals.push_back(std::move(g));
      }
    }
    return prog;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  const Token& advance() { return toks_[pos_++]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(Tok k) {
    NOW_CHECK(at(k)) << "line " << cur().line << ": expected " << tok_name(k)
                     << ", found " << tok_name(cur().kind) << " '" << cur().text
                     << "'";
    return advance();
  }
  bool at_type() const {
    return at(Tok::kInt) || at(Tok::kLong) || at(Tok::kDouble) || at(Tok::kVoid);
  }

  Type parse_type() {
    Type t;
    if (accept(Tok::kInt)) t.base = Type::kInt;
    else if (accept(Tok::kLong)) t.base = Type::kLong;
    else if (accept(Tok::kDouble)) t.base = Type::kDouble;
    else if (accept(Tok::kVoid)) t.base = Type::kVoid;
    else NOW_CHECK(false) << "line " << cur().line << ": expected a type";
    while (accept(Tok::kStar)) ++t.pointer_depth;
    return t;
  }

  Function parse_function(Type ret, const std::string& name) {
    Function fn;
    fn.return_type = ret;
    fn.name = name;
    fn.line = cur().line;
    expect(Tok::kLParen);
    if (!at(Tok::kRParen)) {
      do {
        Param p;
        p.type = parse_type();
        p.name = expect(Tok::kIdent).text;
        if (accept(Tok::kLBracket)) {  // array parameter decays to pointer
          expect(Tok::kRBracket);
          p.type.pointer_depth += 1;
        }
        fn.params.push_back(std::move(p));
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen);
    fn.body = parse_block();
    return fn;
  }

  StmtPtr parse_block() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::kBlock;
    s->line = cur().line;
    expect(Tok::kLBrace);
    while (!accept(Tok::kRBrace)) s->body.push_back(parse_stmt());
    return s;
  }

  StmtPtr parse_stmt() {
    if (at(Tok::kPragma)) return parse_pragma();
    if (at(Tok::kLBrace)) return parse_block();
    if (at_type()) return parse_decl();
    if (accept(Tok::kIf)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::kIf;
      s->line = cur().line;
      expect(Tok::kLParen);
      s->cond = parse_expr();
      expect(Tok::kRParen);
      s->then_body = parse_stmt();
      if (accept(Tok::kElse)) s->else_body = parse_stmt();
      return s;
    }
    if (accept(Tok::kWhile)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::kWhile;
      s->line = cur().line;
      expect(Tok::kLParen);
      s->cond = parse_expr();
      expect(Tok::kRParen);
      s->then_body = parse_stmt();
      return s;
    }
    if (at(Tok::kFor)) return parse_for();
    if (accept(Tok::kReturn)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::kReturn;
      s->line = cur().line;
      if (!at(Tok::kSemi)) s->expr = parse_expr();
      expect(Tok::kSemi);
      return s;
    }
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::kExpr;
    s->line = cur().line;
    s->expr = parse_expr();
    expect(Tok::kSemi);
    return s;
  }

  StmtPtr parse_decl() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::kDecl;
    s->line = cur().line;
    s->decl_type = parse_type();
    s->decl_name = expect(Tok::kIdent).text;
    if (accept(Tok::kLBracket)) {
      s->decl_type.is_array = true;
      s->decl_type.array_size = std::stoll(expect(Tok::kIntLit).text);
      expect(Tok::kRBracket);
    }
    if (accept(Tok::kAssign)) s->init = parse_expr();
    expect(Tok::kSemi);
    return s;
  }

  StmtPtr parse_for() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::kFor;
    s->line = cur().line;
    expect(Tok::kFor);
    expect(Tok::kLParen);
    if (at_type()) {
      s->for_init = parse_decl();  // consumes the ';'
    } else if (!at(Tok::kSemi)) {
      auto init = std::make_unique<Stmt>();
      init->kind = Stmt::kExpr;
      init->expr = parse_expr();
      s->for_init = std::move(init);
      expect(Tok::kSemi);
    } else {
      expect(Tok::kSemi);
    }
    if (!at(Tok::kSemi)) s->cond = parse_expr();
    expect(Tok::kSemi);
    if (!at(Tok::kRParen)) s->for_step = parse_expr();
    expect(Tok::kRParen);
    s->then_body = parse_stmt();
    return s;
  }

  // ---- directives ----
  StmtPtr parse_pragma() {
    expect(Tok::kPragma);
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    const std::string what = expect(Tok::kIdent).text;
    if (what == "parallel") {
      if (at(Tok::kFor)) {
        advance();
        s->kind = Stmt::kParallelFor;
        parse_clauses(*s);
        expect(Tok::kPragmaEnd);
        s->dir_body = parse_for();
        return s;
      }
      s->kind = Stmt::kParallel;
      parse_clauses(*s);
      expect(Tok::kPragmaEnd);
      s->dir_body = parse_block();
      return s;
    }
    if (what == "critical") {
      s->kind = Stmt::kCritical;
      if (accept(Tok::kLParen)) {
        s->critical_name = expect(Tok::kIdent).text;
        expect(Tok::kRParen);
      }
      expect(Tok::kPragmaEnd);
      s->dir_body = parse_block();
      return s;
    }
    if (what == "barrier") {
      s->kind = Stmt::kBarrier;
      expect(Tok::kPragmaEnd);
      return s;
    }
    if (what == "flush") {
      s->kind = Stmt::kFlush;
      expect(Tok::kPragmaEnd);
      return s;
    }
    auto id_directive = [&](Stmt::Kind kind) {
      s->kind = kind;
      expect(Tok::kLParen);
      s->sync_id = std::stoll(expect(Tok::kIntLit).text);
      expect(Tok::kRParen);
      expect(Tok::kPragmaEnd);
    };
    if (what == "sema_wait") { id_directive(Stmt::kSemaWait); return s; }
    if (what == "sema_signal") { id_directive(Stmt::kSemaSignal); return s; }
    if (what == "cond_wait") { id_directive(Stmt::kCondWait); return s; }
    if (what == "cond_signal") { id_directive(Stmt::kCondSignal); return s; }
    if (what == "cond_broadcast") { id_directive(Stmt::kCondBroadcast); return s; }
    NOW_CHECK(false) << "line " << s->line << ": unknown directive '" << what << "'";
  }

  void parse_clauses(Stmt& s) {
    while (at(Tok::kIdent)) {
      Clause c;
      const std::string kw = advance().text;
      if (kw == "shared") c.kind = Clause::kShared;
      else if (kw == "private") c.kind = Clause::kPrivate;
      else if (kw == "firstprivate") c.kind = Clause::kFirstPrivate;
      else if (kw == "reduction") c.kind = Clause::kReduction;
      else NOW_CHECK(false) << "line " << cur().line << ": unknown clause '" << kw << "'";
      expect(Tok::kLParen);
      if (c.kind == Clause::kReduction) {
        NOW_CHECK(accept(Tok::kPlus)) << "line " << cur().line
                                      << ": only reduction(+:...) is supported";
        c.reduction_op = "+";
        expect(Tok::kColon);
      }
      do {
        c.vars.push_back(expect(Tok::kIdent).text);
      } while (accept(Tok::kComma));
      expect(Tok::kRParen);
      s.clauses.push_back(std::move(c));
    }
  }

  // ---- expressions (precedence climbing) ----
  ExprPtr parse_expr() { return parse_assign(); }

  ExprPtr parse_assign() {
    ExprPtr lhs = parse_or();
    if (at(Tok::kAssign) || at(Tok::kPlusAssign) || at(Tok::kMinusAssign)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kAssign;
      e->line = cur().line;
      e->text = at(Tok::kAssign) ? "=" : at(Tok::kPlusAssign) ? "+=" : "-=";
      advance();
      e->lhs = std::move(lhs);
      e->rhs = parse_assign();
      return e;
    }
    return lhs;
  }

  ExprPtr binary(const char* op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::kBinary;
    e->text = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr l = parse_and();
    while (accept(Tok::kOrOr)) l = binary("||", std::move(l), parse_and());
    return l;
  }
  ExprPtr parse_and() {
    ExprPtr l = parse_cmp();
    while (accept(Tok::kAndAnd)) l = binary("&&", std::move(l), parse_cmp());
    return l;
  }
  ExprPtr parse_cmp() {
    ExprPtr l = parse_add();
    for (;;) {
      if (accept(Tok::kEq)) l = binary("==", std::move(l), parse_add());
      else if (accept(Tok::kNe)) l = binary("!=", std::move(l), parse_add());
      else if (accept(Tok::kLt)) l = binary("<", std::move(l), parse_add());
      else if (accept(Tok::kGt)) l = binary(">", std::move(l), parse_add());
      else if (accept(Tok::kLe)) l = binary("<=", std::move(l), parse_add());
      else if (accept(Tok::kGe)) l = binary(">=", std::move(l), parse_add());
      else return l;
    }
  }
  ExprPtr parse_add() {
    ExprPtr l = parse_mul();
    for (;;) {
      if (accept(Tok::kPlus)) l = binary("+", std::move(l), parse_mul());
      else if (accept(Tok::kMinus)) l = binary("-", std::move(l), parse_mul());
      else return l;
    }
  }
  ExprPtr parse_mul() {
    ExprPtr l = parse_unary();
    for (;;) {
      if (accept(Tok::kStar)) l = binary("*", std::move(l), parse_unary());
      else if (accept(Tok::kSlash)) l = binary("/", std::move(l), parse_unary());
      else if (accept(Tok::kPercent)) l = binary("%", std::move(l), parse_unary());
      else return l;
    }
  }
  ExprPtr parse_unary() {
    auto unary = [&](const char* op) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kUnary;
      e->text = op;
      e->line = cur().line;
      e->operand = parse_unary();
      return e;
    };
    if (accept(Tok::kMinus)) return unary("-");
    if (accept(Tok::kNot)) return unary("!");
    if (accept(Tok::kStar)) return unary("*");
    if (accept(Tok::kAmp)) return unary("&");
    if (accept(Tok::kPlusPlus)) return unary("++");
    if (accept(Tok::kMinusMinus)) return unary("--");
    return parse_postfix();
  }
  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      if (accept(Tok::kLBracket)) {
        auto idx = std::make_unique<Expr>();
        idx->kind = Expr::kIndex;
        idx->lhs = std::move(e);
        idx->rhs = parse_expr();
        expect(Tok::kRBracket);
        e = std::move(idx);
      } else if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
        // Postfix increment: normalize to the prefix form (value unused in
        // our subset's statement contexts).
        auto u = std::make_unique<Expr>();
        u->kind = Expr::kUnary;
        u->text = at(Tok::kPlusPlus) ? "++" : "--";
        advance();
        u->operand = std::move(e);
        e = std::move(u);
      } else {
        return e;
      }
    }
  }
  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    if (at(Tok::kIntLit)) {
      e->kind = Expr::kIntLit;
      e->text = advance().text;
      return e;
    }
    if (at(Tok::kFloatLit)) {
      e->kind = Expr::kFloatLit;
      e->text = advance().text;
      return e;
    }
    if (accept(Tok::kLParen)) {
      ExprPtr inner = parse_expr();
      expect(Tok::kRParen);
      return inner;
    }
    const std::string name = expect(Tok::kIdent).text;
    if (accept(Tok::kLParen)) {
      e->kind = Expr::kCall;
      e->text = name;
      if (!at(Tok::kRParen)) {
        do {
          e->args.push_back(parse_expr());
        } while (accept(Tok::kComma));
      }
      expect(Tok::kRParen);
      return e;
    }
    e->kind = Expr::kIdent;
    e->text = name;
    return e;
  }

  const std::vector<Token>& toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(const std::vector<Token>& tokens) {
  Parser p(tokens);
  return p.parse_program();
}

Program parse_source(const std::string& source) { return parse(lex(source)); }

}  // namespace now::ompcc
