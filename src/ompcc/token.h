// Tokens for the ompcc input language: a C subset with the paper's OpenMP
// directives as `#pragma omp ...` lines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace now::ompcc {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  kStrLit,
  // keywords
  kInt, kLong, kDouble, kVoid, kIf, kElse, kWhile, kFor, kReturn,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kColon,
  kAssign, kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kEq, kNe, kLt, kGt, kLe, kGe, kAndAnd, kOrOr, kNot,
  kPlusPlus, kMinusMinus, kPlusAssign, kMinusAssign,
  // pragma introducer: the lexer folds "#pragma omp" into one token and then
  // lexes the rest of the line normally, ending with kPragmaEnd.
  kPragma,
  kPragmaEnd,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // identifier / literal spelling
  std::int64_t line = 1;
};

const char* tok_name(Tok t);

// Lexes a whole translation unit; aborts with a diagnostic on bad input.
std::vector<Token> lex(const std::string& source);

}  // namespace now::ompcc
