// The paper's two-phase inter-procedural shared-variable analysis
// (Section 4.3.1):
//
//   Phase 1 (callee-first): "infer the actual shared locations from the
//   directives.  The subroutines are sorted so that a callee always appears
//   before its callers ... If a pointer passed down the call chain is marked
//   shared in the subroutine, this phase finds out the location it points
//   to.  An actual parameter is marked shared if the variable is passed by
//   reference and the corresponding formal parameter is already marked
//   shared in the callee."
//
//   Phase 2 (caller-first): "find the locations that are declared both
//   shared and private in different parallel regions. ... For variables
//   marked both shared and private in different parallel regions, an error
//   is given if the variable is a pointer.  Otherwise the variable is
//   redeclared in the parallel region in which it is marked private."
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ompcc/ast.h"

namespace now::ompcc {

struct AnalysisResult {
  // Globals that must live in the shared arena (named in shared/reduction
  // clauses, or reached through a shared formal parameter).
  std::set<std::string> shared_globals;
  // Globals named in some region's private clause as well: phase 2's
  // redeclaration set (per region they stay thread-local).
  std::set<std::string> redeclared;
  // Per function: indices of formal parameters that refer to shared storage.
  std::map<std::string, std::set<std::size_t>> shared_params;
  // Functions in callee-first order (the phase-1 processing order).
  std::vector<std::string> callee_first_order;
  // Human-readable diagnostics for rejected programs.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

AnalysisResult analyze(const Program& prog);

}  // namespace now::ompcc
