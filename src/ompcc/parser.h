// Recursive-descent parser for the ompcc input language.
#pragma once

#include "ompcc/ast.h"
#include "ompcc/token.h"

namespace now::ompcc {

// Parses a translation unit; aborts with a diagnostic on syntax errors.
Program parse(const std::vector<Token>& tokens);
Program parse_source(const std::string& source);

}  // namespace now::ompcc
