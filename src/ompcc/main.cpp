// ompcc: OpenMP-subset source-to-source translator.
//
//   ompcc input.c [-o output.cpp] [--nodes N]
//
// Translates a C-subset program annotated with the paper's directives into
// C++ that targets the now::omp runtime on the TreadMarks-like DSM.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ompcc/codegen.h"

int main(int argc, char** argv) {
  std::string input, output;
  now::ompcc::CodegenOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      output = argv[++i];
    } else if (!std::strcmp(argv[i], "--nodes") && i + 1 < argc) {
      opts.default_nodes = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "usage: ompcc input.c [-o output.cpp] [--nodes N]\n");
      return 2;
    } else {
      input = argv[i];
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "ompcc: no input file\n");
    return 2;
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "ompcc: cannot open %s\n", input.c_str());
    return 2;
  }
  std::ostringstream src;
  src << in.rdbuf();

  std::string cpp;
  std::vector<std::string> errors;
  if (!now::ompcc::translate(src.str(), cpp, errors, opts)) {
    for (const auto& e : errors) std::fprintf(stderr, "ompcc: error: %s\n", e.c_str());
    return 1;
  }

  if (output.empty()) {
    std::fputs(cpp.c_str(), stdout);
  } else {
    std::ofstream out(output);
    out << cpp;
  }
  return 0;
}
