#include "ompcc/analysis.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace now::ompcc {

namespace {

// Collects every call expression in a function body.
void collect_calls(const Expr* e, std::vector<const Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::kCall) out.push_back(e);
  collect_calls(e->lhs.get(), out);
  collect_calls(e->rhs.get(), out);
  collect_calls(e->operand.get(), out);
  for (const auto& a : e->args) collect_calls(a.get(), out);
}

void walk_stmts(const Stmt* s, const std::function<void(const Stmt&)>& fn) {
  if (s == nullptr) return;
  fn(*s);
  walk_stmts(s->then_body.get(), fn);
  walk_stmts(s->else_body.get(), fn);
  walk_stmts(s->for_init.get(), fn);
  walk_stmts(s->dir_body.get(), fn);
  for (const auto& child : s->body) walk_stmts(child.get(), fn);
}

void collect_calls_in_fn(const Function& fn, std::vector<const Expr*>& out) {
  walk_stmts(fn.body.get(), [&](const Stmt& s) {
    collect_calls(s.expr.get(), out);
    collect_calls(s.init.get(), out);
    collect_calls(s.cond.get(), out);
    collect_calls(s.for_step.get(), out);
  });
}

}  // namespace

AnalysisResult analyze(const Program& prog) {
  AnalysisResult res;

  std::map<std::string, const Function*> fn_by_name;
  for (const auto& fn : prog.functions) fn_by_name[fn.name] = &fn;
  std::set<std::string> global_names;
  std::map<std::string, const GlobalVar*> global_by_name;
  for (const auto& g : prog.globals) {
    global_names.insert(g.name);
    global_by_name[g.name] = &g;
  }

  // ---- call graph + callee-first (reverse topological) order ----
  std::map<std::string, std::set<std::string>> callees;
  for (const auto& fn : prog.functions) {
    std::vector<const Expr*> calls;
    collect_calls_in_fn(fn, calls);
    for (const Expr* c : calls)
      if (fn_by_name.count(c->text)) callees[fn.name].insert(c->text);
  }
  {
    std::set<std::string> done, visiting;
    std::function<void(const std::string&)> visit = [&](const std::string& f) {
      if (done.count(f)) return;
      if (visiting.count(f)) {
        res.errors.push_back("recursion involving '" + f +
                             "' is outside the supported subset");
        return;
      }
      visiting.insert(f);
      for (const auto& callee : callees[f]) visit(callee);
      visiting.erase(f);
      done.insert(f);
      res.callee_first_order.push_back(f);
    };
    for (const auto& fn : prog.functions) visit(fn.name);
  }
  if (!res.ok()) return res;

  // ---- seed: directive clauses name shared / private variables ----
  // Track, per function, which names its regions mark shared or private.
  std::map<std::string, std::set<std::string>> marked_shared_in;
  std::map<std::string, std::set<std::string>> marked_private_in;
  for (const auto& fn : prog.functions) {
    walk_stmts(fn.body.get(), [&](const Stmt& s) {
      if (s.kind != Stmt::kParallel && s.kind != Stmt::kParallelFor) return;
      for (const Clause& c : s.clauses) {
        for (const std::string& v : c.vars) {
          if (c.kind == Clause::kShared || c.kind == Clause::kReduction)
            marked_shared_in[fn.name].insert(v);
          else if (c.kind == Clause::kPrivate)
            marked_private_in[fn.name].insert(v);
          // firstprivate copies a value; it creates no shared location.
        }
      }
    });
  }

  // ---- phase 1: callee-first propagation to actual arguments ----
  // A formal parameter is shared if the function's own regions mark it
  // shared, or it is passed (by reference) to a shared formal of a callee.
  // Iterate in callee-first order so callee summaries exist when callers are
  // examined; one pass suffices in the absence of recursion.
  for (const std::string& fname : res.callee_first_order) {
    const Function& fn = *fn_by_name.at(fname);
    auto param_index = [&](const std::string& name) -> std::ptrdiff_t {
      for (std::size_t i = 0; i < fn.params.size(); ++i)
        if (fn.params[i].name == name) return static_cast<std::ptrdiff_t>(i);
      return -1;
    };

    // Directly marked names.
    for (const std::string& v : marked_shared_in[fname]) {
      const std::ptrdiff_t pi = param_index(v);
      if (pi >= 0)
        res.shared_params[fname].insert(static_cast<std::size_t>(pi));
      else if (global_names.count(v))
        res.shared_globals.insert(v);
      // A region-local variable marked shared stays function-local: it is
      // hoisted per-region by codegen; nothing to propagate.
    }

    // Propagate through calls: actual arguments feeding shared formals.
    std::vector<const Expr*> calls;
    collect_calls_in_fn(fn, calls);
    for (const Expr* call : calls) {
      auto it = res.shared_params.find(call->text);
      if (it == res.shared_params.end()) continue;
      for (std::size_t ai : it->second) {
        if (ai >= call->args.size()) continue;
        const Expr* arg = call->args[ai].get();
        // Pass-by-reference forms: the array/pointer itself, or &var.
        const Expr* base = arg;
        if (base->kind == Expr::kUnary && base->text == "&")
          base = base->operand.get();
        if (base->kind != Expr::kIdent) continue;
        const std::ptrdiff_t pi = param_index(base->text);
        if (pi >= 0)
          res.shared_params[fname].insert(static_cast<std::size_t>(pi));
        else if (global_names.count(base->text))
          res.shared_globals.insert(base->text);
      }
    }
  }

  // Phase 1 may have discovered shared formals in callers after the caller
  // was processed via direct clause marks only; repeat to a fixed point
  // (bounded by the call-graph depth).
  for (bool changed = true; changed;) {
    changed = false;
    for (const std::string& fname : res.callee_first_order) {
      const Function& fn = *fn_by_name.at(fname);
      std::vector<const Expr*> calls;
      collect_calls_in_fn(fn, calls);
      for (const Expr* call : calls) {
        auto it = res.shared_params.find(call->text);
        if (it == res.shared_params.end()) continue;
        for (std::size_t ai : it->second) {
          if (ai >= call->args.size()) continue;
          const Expr* base = call->args[ai].get();
          if (base->kind == Expr::kUnary && base->text == "&")
            base = base->operand.get();
          if (base->kind != Expr::kIdent) continue;
          std::ptrdiff_t pi = -1;
          for (std::size_t i = 0; i < fn.params.size(); ++i)
            if (fn.params[i].name == base->text) pi = static_cast<std::ptrdiff_t>(i);
          if (pi >= 0) {
            if (res.shared_params[fname].insert(static_cast<std::size_t>(pi)).second)
              changed = true;
          } else if (global_names.count(base->text)) {
            if (res.shared_globals.insert(base->text).second) changed = true;
          }
        }
      }
    }
  }

  // ---- phase 2: caller-first conflict detection ----
  // A location both shared (phase 1) and private (some region's clause):
  // pointers are an error; scalars are redeclared in the private region.
  for (auto it = res.callee_first_order.rbegin();
       it != res.callee_first_order.rend(); ++it) {
    for (const std::string& v : marked_private_in[*it]) {
      if (!res.shared_globals.count(v)) continue;
      const GlobalVar* g = global_by_name.count(v) ? global_by_name.at(v) : nullptr;
      if (g != nullptr && g->type.is_pointer_like() && !g->type.is_array) {
        res.errors.push_back("variable '" + v +
                             "' is a pointer declared both shared and private");
      } else {
        res.redeclared.insert(v);
      }
    }
  }

  return res;
}

}  // namespace now::ompcc
