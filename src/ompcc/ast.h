// AST for the ompcc input language.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace now::ompcc {

// ---- types ----
struct Type {
  enum Base { kInt, kLong, kDouble, kVoid } base = kInt;
  int pointer_depth = 0;  // number of '*'
  bool is_array = false;
  std::int64_t array_size = 0;

  bool is_pointer_like() const { return pointer_depth > 0 || is_array; }
  std::string cpp() const;      // C++ spelling of the element/base type
};

// ---- expressions ----
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum Kind {
    kIntLit, kFloatLit, kIdent, kBinary, kUnary, kAssign, kCall, kIndex,
  } kind = kIntLit;

  // literals / identifier
  std::string text;
  // binary / assign: op in text ("+", "==", "=", "+=", ...)
  ExprPtr lhs, rhs;
  // unary: op in text ("-", "!", "*", "&", "++", "--")
  ExprPtr operand;
  // call: callee name in text
  std::vector<ExprPtr> args;

  std::int64_t line = 0;
};

// ---- directives ----
struct Clause {
  enum Kind { kShared, kPrivate, kFirstPrivate, kReduction } kind = kShared;
  std::string reduction_op;        // for kReduction ("+")
  std::vector<std::string> vars;
};

// ---- statements ----
struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum Kind {
    kDecl, kExpr, kIf, kWhile, kFor, kReturn, kBlock,
    kParallel, kParallelFor, kCritical, kBarrier, kSemaWait, kSemaSignal,
    kCondWait, kCondSignal, kCondBroadcast, kFlush,
  } kind = kExpr;

  // kDecl
  Type decl_type;
  std::string decl_name;
  ExprPtr init;

  // kExpr / kReturn
  ExprPtr expr;

  // kIf / kWhile / kFor
  ExprPtr cond;
  StmtPtr then_body, else_body;
  StmtPtr for_init;  // kFor
  ExprPtr for_step;

  // kBlock / directive bodies
  std::vector<StmtPtr> body;

  // directives
  std::vector<Clause> clauses;   // kParallel / kParallelFor
  std::string critical_name;    // kCritical ("" = anonymous)
  std::int64_t sync_id = 0;      // sema/cond id
  StmtPtr dir_body;              // structured block / the for statement

  std::int64_t line = 0;
};

struct Param {
  Type type;
  std::string name;
};

struct Function {
  Type return_type;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;  // kBlock
  std::int64_t line = 0;
};

struct GlobalVar {
  Type type;
  std::string name;
  ExprPtr init;
  std::int64_t line = 0;
};

struct Program {
  std::vector<GlobalVar> globals;
  std::vector<Function> functions;
};

}  // namespace now::ompcc
