// Code generation: translates the analyzed program into C++ targeting the
// now::omp runtime (Section 4.3.2's transformation).
//
// "Our compiler translates the sequential program annotated with a subset of
//  OpenMP directives into a fork-join parallel program.  The compiler
//  encapsulates each parallel region into a separate subroutine ...
//  Pointers to shared variables and initial values of firstprivate variables
//  are copied into a structure and passed at fork."
//
// In the emitted C++, the region subroutine is a trivially-copyable lambda
// (the now::omp runtime byte-copies its capture block through the Tmk_fork
// message) and shared variables are gptrs into the DSM arena.  Variables are
// private by default: anything not named shared stays in per-thread memory.
#pragma once

#include <string>

#include "ompcc/analysis.h"
#include "ompcc/ast.h"

namespace now::ompcc {

struct CodegenOptions {
  std::uint32_t default_nodes = 4;  // overridable via NOW_NODES at runtime
};

// Emits a complete C++ translation unit.  The program must have passed
// analysis (no errors).
std::string generate(const Program& prog, const AnalysisResult& analysis,
                     const CodegenOptions& opts = {});

// Convenience: lex + parse + analyze + generate.  Returns false (with
// `errors` filled) when analysis rejects the program.
bool translate(const std::string& source, std::string& out_cpp,
               std::vector<std::string>& errors, const CodegenOptions& opts = {});

}  // namespace now::ompcc
