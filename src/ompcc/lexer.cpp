#include "ompcc/token.h"

#include <cctype>
#include <unordered_map>

#include "common/check.h"

namespace now::ompcc {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer";
    case Tok::kFloatLit: return "float";
    case Tok::kStrLit: return "string";
    case Tok::kInt: return "int";
    case Tok::kLong: return "long";
    case Tok::kDouble: return "double";
    case Tok::kVoid: return "void";
    case Tok::kIf: return "if";
    case Tok::kElse: return "else";
    case Tok::kWhile: return "while";
    case Tok::kFor: return "for";
    case Tok::kReturn: return "return";
    case Tok::kPragma: return "#pragma omp";
    case Tok::kPragmaEnd: return "<end of pragma>";
    default: return "<punct>";
  }
}

namespace {
const std::unordered_map<std::string, Tok> kKeywords = {
    {"int", Tok::kInt},     {"long", Tok::kLong}, {"double", Tok::kDouble},
    {"void", Tok::kVoid},   {"if", Tok::kIf},     {"else", Tok::kElse},
    {"while", Tok::kWhile}, {"for", Tok::kFor},   {"return", Tok::kReturn},
};
}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::int64_t line = 1;
  bool in_pragma = false;

  auto push = [&](Tok k, std::string text = "") {
    out.push_back(Token{k, std::move(text), line});
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      if (in_pragma) {
        push(Tok::kPragmaEnd);
        in_pragma = false;
      }
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      NOW_CHECK(i + 1 < src.size()) << "unterminated comment at line " << line;
      i += 2;
      continue;
    }
    if (c == '#') {
      // Expect "#pragma omp"; anything else is unsupported.
      static const std::string kIntro = "#pragma";
      NOW_CHECK_EQ(src.compare(i, kIntro.size(), kIntro), 0)
          << "unsupported preprocessor line at " << line;
      i += kIntro.size();
      while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) ++i;
      static const std::string kOmp = "omp";
      NOW_CHECK_EQ(src.compare(i, kOmp.size(), kOmp), 0)
          << "only '#pragma omp' is supported (line " << line << ")";
      i += kOmp.size();
      push(Tok::kPragma);
      in_pragma = true;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_'))
        ++j;
      std::string word = src.substr(i, j - i);
      i = j;
      auto it = kKeywords.find(word);
      if (it != kKeywords.end())
        push(it->second, word);
      else
        push(Tok::kIdent, std::move(word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_float = false;
      while (j < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[j])) || src[j] == '.' ||
              src[j] == 'e' || src[j] == 'E' ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        if (src[j] == '.' || src[j] == 'e' || src[j] == 'E') is_float = true;
        ++j;
      }
      push(is_float ? Tok::kFloatLit : Tok::kIntLit, src.substr(i, j - i));
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < src.size() && src[j] != '"') ++j;
      NOW_CHECK(j < src.size()) << "unterminated string at line " << line;
      push(Tok::kStrLit, src.substr(i + 1, j - i - 1));
      i = j + 1;
      continue;
    }

    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two('=', '=')) { push(Tok::kEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNe); i += 2; continue; }
    if (two('<', '=')) { push(Tok::kLe); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe); i += 2; continue; }
    if (two('&', '&')) { push(Tok::kAndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::kOrOr); i += 2; continue; }
    if (two('+', '+')) { push(Tok::kPlusPlus); i += 2; continue; }
    if (two('-', '-')) { push(Tok::kMinusMinus); i += 2; continue; }
    if (two('+', '=')) { push(Tok::kPlusAssign); i += 2; continue; }
    if (two('-', '=')) { push(Tok::kMinusAssign); i += 2; continue; }

    switch (c) {
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case '{': push(Tok::kLBrace); break;
      case '}': push(Tok::kRBrace); break;
      case '[': push(Tok::kLBracket); break;
      case ']': push(Tok::kRBracket); break;
      case ';': push(Tok::kSemi); break;
      case ',': push(Tok::kComma); break;
      case ':': push(Tok::kColon); break;
      case '=': push(Tok::kAssign); break;
      case '+': push(Tok::kPlus); break;
      case '-': push(Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      case '%': push(Tok::kPercent); break;
      case '&': push(Tok::kAmp); break;
      case '<': push(Tok::kLt); break;
      case '>': push(Tok::kGt); break;
      case '!': push(Tok::kNot); break;
      default:
        NOW_CHECK(false) << "unexpected character '" << c << "' at line " << line;
    }
    ++i;
  }
  if (in_pragma) push(Tok::kPragmaEnd);
  push(Tok::kEof);
  return out;
}

}  // namespace now::ompcc
