// Minimal leveled logger.  Protocol tracing in the DSM is indispensable when
// debugging consistency bugs but must cost nothing when disabled, so the level
// check is a relaxed atomic load and formatting happens only past it.
//
// The level is taken from the NOW_LOG environment variable on first use:
//   NOW_LOG=off|error|warn|info|debug|trace   (default: warn)
#pragma once

#include <atomic>
#include <cstdarg>

namespace now {

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

namespace detail {
extern std::atomic<int> g_log_level;
int init_log_level();
inline int log_level() {
  int v = g_log_level.load(std::memory_order_relaxed);
  return v >= 0 ? v : init_log_level();
}
}  // namespace detail

void set_log_level(LogLevel level);
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= detail::log_level();
}

// printf-style; prepends "[level node?]" and appends a newline.
void log_message(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace now

#define NOW_LOG(level, ...)                          \
  do {                                               \
    if (::now::log_enabled(::now::LogLevel::level))  \
      ::now::log_message(::now::LogLevel::level, __VA_ARGS__); \
  } while (0)
