#include "common/check.h"

namespace now {

void check_failed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "NOW_CHECK failed at %s:%d: %s %s\n", file, line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace now
