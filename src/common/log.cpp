#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace now {
namespace detail {

std::atomic<int> g_log_level{-1};

int init_log_level() {
  int level = static_cast<int>(LogLevel::kWarn);
  if (const char* env = std::getenv("NOW_LOG")) {
    if (!std::strcmp(env, "off")) level = 0;
    else if (!std::strcmp(env, "error")) level = 1;
    else if (!std::strcmp(env, "warn")) level = 2;
    else if (!std::strcmp(env, "info")) level = 3;
    else if (!std::strcmp(env, "debug")) level = 4;
    else if (!std::strcmp(env, "trace")) level = 5;
  }
  g_log_level.store(level, std::memory_order_relaxed);
  return level;
}

}  // namespace detail

void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* fmt, ...) {
  static const char* kNames[] = {"off", "E", "W", "I", "D", "T"};
  static std::mutex mu;  // keep interleaved thread output line-atomic
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[now %s] %s\n", kNames[static_cast<int>(level)], buf);
}

}  // namespace now
