// Fixed-width text tables for the benchmark harness: the benches that
// regenerate the paper's tables and figure series all print through this so
// their output is uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace now {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience formatting for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::uint64_t v);

  // Renders with a header rule and right-aligned numeric-looking columns.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace now
