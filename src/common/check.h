// Checked assertions for the nowomp libraries.
//
// NOW_CHECK is always on (protocol invariants must hold in release builds:
// a DSM that silently corrupts pages is worse than one that aborts).
// NOW_DCHECK compiles out in NDEBUG builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace now {

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);

namespace detail {
// Builds the optional streamed message of a failed check lazily.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[noreturn]] ~CheckMessage() { check_failed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace now

#define NOW_CHECK(expr)                                        \
  if (expr) {                                                  \
  } else                                                       \
    ::now::detail::CheckMessage(__FILE__, __LINE__, #expr)

#define NOW_CHECK_EQ(a, b) NOW_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define NOW_CHECK_NE(a, b) NOW_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define NOW_CHECK_LT(a, b) NOW_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define NOW_CHECK_LE(a, b) NOW_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define NOW_CHECK_GT(a, b) NOW_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define NOW_CHECK_GE(a, b) NOW_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define NOW_DCHECK(expr) \
  if (true) {            \
  } else                 \
    ::now::detail::CheckMessage(__FILE__, __LINE__, #expr)
#else
#define NOW_DCHECK(expr) NOW_CHECK(expr)
#endif
