// Little-endian byte codecs used to serialize protocol messages.
//
// The simulated network carries flat byte payloads just like the UDP sockets
// TreadMarks used, so message sizes reported by the traffic counters are the
// sizes real packets would have.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace now {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, 2); }
  void u32(std::uint32_t v) { append(&v, 4); }
  void u64(std::uint64_t v) { append(&v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { append(&v, 8); }
  void bytes(const void* data, std::size_t n) {
    u32(static_cast<std::uint32_t>(n));
    append(data, n);
  }
  void str(const std::string& s) { bytes(s.data(), s.size()); }
  // Raw append without a length prefix (caller knows the size).
  void raw(const void* data, std::size_t n) { append(data, n); }
  // Pre-size for `n` more bytes (computed message sizes avoid the grow-
  // reallocation chain on hot serialization paths).
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v) : ByteReader(v.data(), v.size()) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return take<double>(); }

  std::vector<std::uint8_t> bytes() {
    const auto [p, n] = bytes_view();
    return std::vector<std::uint8_t>(p, p + n);
  }
  // Zero-copy variant: a view into the underlying buffer, valid only as long
  // as the buffer the reader was constructed over stays alive.
  std::pair<const std::uint8_t*, std::size_t> bytes_view() {
    std::uint32_t n = u32();
    NOW_CHECK_LE(pos_ + n, size_) << "truncated message";
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return {p, n};
  }
  std::string str() {
    auto b = bytes();
    return std::string(b.begin(), b.end());
  }
  void raw(void* out, std::size_t n) {
    NOW_CHECK_LE(pos_ + n, size_) << "truncated message";
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  T take() {
    NOW_CHECK_LE(pos_ + sizeof(T), size_) << "truncated message";
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace now
