// Environment-variable overrides for configuration defaults.
//
// CI runs the whole test suite under alternate configurations (prefetch
// windows, update mode, fault injection) by overriding config *defaults*
// through the environment; code that assigns a field explicitly keeps its
// value.  An empty variable counts as unset.  Malformed values fail loudly:
// a CI matrix leg whose knob silently parsed as 0 (or as a digit prefix of a
// typo) would green-light a configuration that never ran.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "common/check.h"

namespace now::env {

inline std::size_t env_size(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  for (const char* p = v; *p != '\0'; ++p)
    NOW_CHECK(*p >= '0' && *p <= '9')
        << "malformed " << name << "='" << v
        << "': expected a non-negative decimal integer";
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, nullptr, 10);
  NOW_CHECK(errno != ERANGE) << name << "='" << v << "' overflows";
  return static_cast<std::size_t>(parsed);
}

// Boolean env-default override: 0 = off, any other integer = on.
inline bool env_flag(const char* name, bool def) {
  return env_size(name, def ? 1 : 0) != 0;
}

}  // namespace now::env
