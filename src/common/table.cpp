#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace now {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  NOW_CHECK_EQ(cells.size(), header_.size()) << "row width mismatch";
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'x'))
      return false;
  return true;
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (looks_numeric(row[c]))
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace now
