// Deterministic random number generation (SplitMix64 seeding + xoshiro256**).
// Workload generators and property tests must be reproducible across runs and
// platforms, which rules out std::random_device / unspecified distributions.
#pragma once

#include <cstdint>

namespace now {

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// semantics), seeded via SplitMix64 so that nearby seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound must be nonzero.  Uses rejection sampling to
  // avoid modulo bias (bias would skew workload generators).
  std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4];
};

}  // namespace now
