// The OpenMP-subset runtime on software DSM — the paper's core contribution.
//
// The paper's compiler "encapsulates each parallel region into a separate
// subroutine" and passes "pointers to shared variables and initial values of
// firstprivate variables ... copied into a structure and passed at fork".
// This runtime is that execution model as a library:
//
//   - omp::Team::parallel(body)    — the `parallel` directive.  `body` is a
//     lambda whose captures are the region's firstprivate values and gptrs
//     to its shared variables; the capture block is byte-copied through the
//     Tmk_fork message to every thread.  Captures must therefore be
//     trivially copyable (enforced at compile time) — exactly the paper's
//     "structure" discipline.
//   - omp::Team::parallel_for(...) — the `parallel do` directive, with
//     static or dynamic scheduling and an implicit barrier (the join).
//   - omp::Par                     — the in-region handle: thread id,
//     barrier, named critical, semaphores, condition variables, reductions
//     (scalar and array, the paper's extension).
//   - omp::ThreadPrivate<T>        — the `threadprivate` directive: per-
//     thread storage that persists across regions.  It lives in private
//     memory, which is the whole point of the paper's private-by-default
//     proposal: privates cost nothing on a DSM.
//
// Variables are PRIVATE BY DEFAULT: anything not allocated in the shared
// arena (via Team::shared_array / Tmk::alloc) and not captured into the
// region is thread-local for free.  Sharing is explicit, as the paper's
// first proposed modification to the standard requires.
#pragma once

#include <algorithm>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "omp/ids.h"
#include "tmk/tmk.h"

namespace now::omp {

enum class Schedule { kStatic, kDynamic };

struct ForOpts {
  Schedule schedule = Schedule::kStatic;
  std::int64_t chunk = 0;  // 0: runtime default (static block / dynamic 1)
};

// In-region execution handle: what the compiled body of a parallel region
// sees.  Thin wrapper over the node's Tmk handle.
class Par {
 public:
  explicit Par(tmk::Tmk& t) : tmk_(t) {}

  std::uint32_t thread_num() const { return tmk_.id(); }
  std::uint32_t num_threads() const { return tmk_.nprocs(); }
  tmk::Tmk& tmk() { return tmk_; }

  void barrier() { tmk_.barrier(); }

  // `critical` / `critical(name)` directives.
  template <typename F>
  void critical(const F& body) {
    critical_id(kCriticalBase, body);
  }
  template <typename F>
  void critical(std::string_view name, const F& body) {
    critical_id(critical_lock_id(name), body);
  }
  template <typename F>
  void critical_id(std::uint32_t lock_id, const F& body) {
    tmk_.lock_acquire(lock_id);
    body();
    tmk_.lock_release(lock_id);
  }

  // The proposed replacement primitives for `flush` (paper Sec. 3.2.3).
  void sema_wait(std::uint32_t id) { tmk_.sema_wait(kUserSemaBase + id); }
  void sema_signal(std::uint32_t id) { tmk_.sema_signal(kUserSemaBase + id); }
  // Condition variables are used inside a critical section of the same name.
  void cond_wait(std::uint32_t cond_id, std::uint32_t lock_id = kCriticalBase) {
    tmk_.cond_wait(lock_id, kUserCondBase + cond_id);
  }
  void cond_signal(std::uint32_t cond_id, std::uint32_t lock_id = kCriticalBase) {
    tmk_.cond_signal(lock_id, kUserCondBase + cond_id);
  }
  void cond_broadcast(std::uint32_t cond_id, std::uint32_t lock_id = kCriticalBase) {
    tmk_.cond_broadcast(lock_id, kUserCondBase + cond_id);
  }
  // Retained only so Figures 1-2 can be reproduced for the ablation.
  void flush() { tmk_.flush(); }

  // `master` construct: body runs on thread 0 only (no implied barrier).
  template <typename F>
  void master(const F& body) {
    if (thread_num() == 0) body();
  }

  // Contiguous static split of [lo, hi) for this thread.
  std::pair<std::int64_t, std::int64_t> static_range(std::int64_t lo,
                                                     std::int64_t hi) const {
    const std::int64_t n = hi - lo;
    const std::int64_t p = static_cast<std::int64_t>(num_threads());
    const std::int64_t t = static_cast<std::int64_t>(thread_num());
    const std::int64_t base = n / p, rem = n % p;
    const std::int64_t begin = lo + t * base + std::min<std::int64_t>(t, rem);
    return {begin, begin + base + (t < rem ? 1 : 0)};
  }

  // `reduction` clause support, including the paper's array extension: each
  // thread combines its private partial into the shared target under the
  // reduction lock.
  template <typename T, typename Combine>
  void reduce_into(tmk::gptr<T> target, const T* local, std::size_t count,
                   Combine combine) {
    tmk_.lock_acquire(kReductionLock);
    for (std::size_t i = 0; i < count; ++i)
      target[i] = combine(target[i], local[i]);
    tmk_.lock_release(kReductionLock);
  }
  template <typename T>
  void reduce_sum(tmk::gptr<T> target, const T* local, std::size_t count = 1) {
    reduce_into(target, local, count, [](T a, T b) { return a + b; });
  }

 private:
  tmk::Tmk& tmk_;
};

// `threadprivate`: persists across parallel regions, one copy per thread.
// Plain private memory — no DSM involvement, no communication.
template <typename T>
class ThreadPrivate {
 public:
  explicit ThreadPrivate(std::uint32_t num_threads, T init = T{})
      : copies_(num_threads, Padded{init}) {}
  T& local(const Par& p) { return copies_[p.thread_num()].value; }
  T& at(std::uint32_t thread) { return copies_[thread].value; }

 private:
  struct alignas(64) Padded {  // keep per-thread copies off shared cache lines
    T value;
  };
  std::vector<Padded> copies_;
};

// Master-side handle: issues parallel regions from the sequential part of
// the program.  Constructed by OmpRuntime around node 0's Tmk.
class Team {
 public:
  explicit Team(tmk::Tmk& master) : master_(master) {}

  tmk::Tmk& master() { return master_; }
  std::uint32_t num_threads() const { return master_.nprocs(); }

  // Shared data environment: explicit, per the paper's private-by-default
  // proposal.
  template <typename T>
  tmk::gptr<T> shared_array(std::size_t n) {
    return master_.alloc_array<T>(n);
  }
  template <typename T>
  tmk::gptr<T> shared_scalar(T init = T{}) {
    auto p = master_.alloc_array<T>(1);
    *p = init;
    return p;
  }

  // ---- the `parallel` directive ----
  template <typename F>
  void parallel(const F& body) {
    static_assert(std::is_trivially_copyable_v<F>,
                  "parallel-region captures are copied through the fork "
                  "message (firstprivate); capture gptrs and values only");
    master_.fork(&Team::trampoline<F>, &body, sizeof body);
    Par p(master_);
    body(p);  // the master is a worker too
    master_.join();
  }

  // ---- the `parallel do` directive ----
  template <typename F>
  void parallel_for(std::int64_t lo, std::int64_t hi, const F& body,
                    ForOpts opts = {}) {
    if (opts.schedule == Schedule::kStatic) {
      const std::int64_t chunk = opts.chunk;
      parallel([=](Par& p) {
        if (chunk <= 0) {
          auto [b, e] = p.static_range(lo, hi);
          for (std::int64_t i = b; i < e; ++i) body(p, i);
        } else {
          // Round-robin chunks (static,chunk).
          const std::int64_t stride =
              chunk * static_cast<std::int64_t>(p.num_threads());
          for (std::int64_t base = lo + chunk * static_cast<std::int64_t>(p.thread_num());
               base < hi; base += stride)
            for (std::int64_t i = base; i < std::min(base + chunk, hi); ++i)
              body(p, i);
        }
      });
      return;
    }
    // Dynamic: a shared chunk dispenser advanced under a dedicated lock.
    const std::int64_t chunk = opts.chunk <= 0 ? 1 : opts.chunk;
    if (dyn_counter_.is_null()) dyn_counter_ = master_.alloc_array<std::int64_t>(1);
    *dyn_counter_ = lo;
    auto counter = dyn_counter_;
    parallel([=](Par& p) {
      for (;;) {
        std::int64_t base;
        p.tmk().lock_acquire(kDynamicForLock);
        base = *counter;
        *counter = base + chunk;
        p.tmk().lock_release(kDynamicForLock);
        if (base >= hi) break;
        for (std::int64_t i = base; i < std::min(base + chunk, hi); ++i) body(p, i);
      }
    });
  }

  // `parallel do` with a scalar sum reduction (the common OpenMP idiom).
  // Each thread accumulates a private partial over its static block and
  // combines it once under the reduction lock.
  template <typename T, typename F>
  T parallel_for_reduce_sum(std::int64_t lo, std::int64_t hi, const F& body) {
    auto cell = shared_scalar<T>(T{});
    parallel([=](Par& p) {
      T local{};
      auto [b, e] = p.static_range(lo, hi);
      for (std::int64_t i = b; i < e; ++i) local += body(p, i);
      p.reduce_sum(cell, &local, 1);
    });
    T result = *cell;
    master_.free(cell.template cast<void>());
    return result;
  }

 private:
  template <typename F>
  static void trampoline(tmk::Tmk& t, const void* blob, std::size_t size) {
    NOW_CHECK_EQ(size, sizeof(F)) << "fork blob size mismatch";
    alignas(alignof(F) > 16 ? alignof(F) : 16) unsigned char storage[sizeof(F)];
    std::memcpy(storage, blob, sizeof(F));
    const F* f = std::launder(reinterpret_cast<const F*>(storage));
    Par p(t);
    (*f)(p);
  }

  tmk::Tmk& master_;
  tmk::gptr<std::int64_t> dyn_counter_ = tmk::gptr<std::int64_t>::null();
};

// Owns the DSM and runs an OpenMP-style program: the master executes
// `program` (its sequential parts run on node 0) and the remaining nodes
// serve parallel regions.
class OmpRuntime {
 public:
  explicit OmpRuntime(tmk::DsmConfig cfg) : dsm_(cfg) {}

  void run(const std::function<void(Team&)>& program) {
    dsm_.run_master([&](tmk::Tmk& t) {
      Team team(t);
      program(team);
    });
  }

  tmk::DsmRuntime& dsm() { return dsm_; }
  sim::TrafficSnapshot traffic() const { return dsm_.traffic(); }
  double virtual_time_us() const { return dsm_.virtual_time_us(); }

 private:
  tmk::DsmRuntime dsm_;
};

}  // namespace now::omp
