// Reserved synchronization-object id ranges for the OpenMP runtime.
//
// The DSM identifies locks/semaphores/condvars by small integers with
// statically assigned managers; the OpenMP layer carves the space so user
// directives and runtime-internal objects never collide.
#pragma once

#include <cstdint>
#include <string_view>

namespace now::omp {

inline constexpr std::uint32_t kUserLockBase = 0;     // omp_set_lock-style
inline constexpr std::uint32_t kCriticalBase = 64;    // named criticals
inline constexpr std::uint32_t kCriticalSlots = 64;
inline constexpr std::uint32_t kDynamicForLock = 128;  // dynamic schedule dispenser
inline constexpr std::uint32_t kReductionLock = 129;   // reduction combine
inline constexpr std::uint32_t kUserSemaBase = 0;
inline constexpr std::uint32_t kUserCondBase = 0;

// Stable name hash for `critical(name)`: FNV-1a folded into the critical
// slot range.  An unnamed critical uses slot 0, like OpenMP's anonymous
// critical section.
constexpr std::uint32_t critical_lock_id(std::string_view name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return kCriticalBase + 1 + static_cast<std::uint32_t>(h % (kCriticalSlots - 1));
}

}  // namespace now::omp
