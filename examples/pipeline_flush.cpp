// The paper's Figure 1: the same producer/consumer pipeline written with
// busy-wait flags and `flush` — the construct the paper proposes to REMOVE
// from the standard.  Every flush costs 2(n-1) messages and the waiters
// spin.  Run pipeline_sema for the contrast.
#include <cstdio>
#include <thread>

#include "tmk/tmk.h"

int main() {
  using now::tmk::gptr;

  now::tmk::DsmConfig cfg;
  cfg.num_nodes = 2;
  now::tmk::DsmRuntime rt(cfg);

  constexpr int kRounds = 25;

  rt.run_spmd([](now::tmk::Tmk& tmk) {
    gptr<std::uint64_t> data(now::tmk::kPageSize);
    gptr<std::uint64_t> available(2 * now::tmk::kPageSize);
    gptr<std::uint64_t> done(3 * now::tmk::kPageSize);

    if (tmk.id() == 0) {  // producer (Figure 1, left column)
      for (int i = 1; i <= kRounds; ++i) {
        *data = static_cast<std::uint64_t>(i) * i;
        *available = 1;
        tmk.flush();
        while (*done == 0) std::this_thread::yield();  // busy-wait
        *done = 0;
        tmk.flush();
      }
    } else {  // consumer (Figure 1, right column)
      std::uint64_t sum = 0;
      for (int i = 1; i <= kRounds; ++i) {
        while (*available == 0) std::this_thread::yield();  // busy-wait
        *available = 0;
        sum += *data;
        *done = 1;
        tmk.flush();
      }
      std::printf("consumer saw sum of squares 1..%d = %llu (expect %d)\n",
                  kRounds, static_cast<unsigned long long>(sum),
                  kRounds * (kRounds + 1) * (2 * kRounds + 1) / 6);
    }
  });

  const auto t = rt.traffic();
  std::printf("flush pipeline used %llu messages — compare pipeline_sema\n",
              static_cast<unsigned long long>(t.messages));
  return 0;
}
