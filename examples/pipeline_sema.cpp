// The paper's Figure 3: a producer/consumer pipeline expressed with the
// proposed semaphore directives ("busy-waiting is eliminated").
//
// Compare with pipeline_flush.cpp (Figure 1), which needs busy-wait flags
// and a 2(n-1)-message flush per round.
#include <cstdio>

#include "tmk/tmk.h"

int main() {
  using now::tmk::gptr;

  now::tmk::DsmConfig cfg;
  cfg.num_nodes = 2;
  now::tmk::DsmRuntime rt(cfg);

  constexpr int kRounds = 25;
  constexpr std::uint32_t kAvailable = 0;  // semaphore ids
  constexpr std::uint32_t kDone = 1;

  rt.run_spmd([](now::tmk::Tmk& tmk) {
    gptr<std::uint64_t> data(now::tmk::kPageSize);
    if (tmk.id() == 0) {  // producer
      for (int i = 1; i <= kRounds; ++i) {
        *data = static_cast<std::uint64_t>(i) * i;  // write data
        tmk.sema_signal(kAvailable);
        tmk.sema_wait(kDone);
      }
    } else {  // consumer
      std::uint64_t sum = 0;
      for (int i = 1; i <= kRounds; ++i) {
        tmk.sema_wait(kAvailable);
        sum += *data;  // read data
        tmk.sema_signal(kDone);
      }
      std::printf("consumer saw sum of squares 1..%d = %llu (expect %d)\n",
                  kRounds, static_cast<unsigned long long>(sum),
                  kRounds * (kRounds + 1) * (2 * kRounds + 1) / 6);
    }
  });

  const auto t = rt.traffic();
  std::printf("pipeline used %llu messages (%u rounds x 4 sema ops x 2 msgs "
              "+ data diffs)\n",
              static_cast<unsigned long long>(t.messages), kRounds);
  return 0;
}
