// The paper's Figure 4: a task queue whose EnQueue/DeQueue use critical
// sections and a condition variable — the proposed replacement for the
// flush-based Figure 2 version.  Four workers drain (and occasionally
// refill) a queue of integer tasks.
#include <cstdio>

#include "tmk/tmk.h"

namespace {
constexpr std::uint32_t kLock = 0;
constexpr std::uint32_t kCond = 0;

// Queue layout in shared memory: [head, tail, nwait, results, tasks...].
struct Queue {
  now::tmk::gptr<std::uint64_t> m;
  std::uint64_t& head() const { return m[0]; }
  std::uint64_t& tail() const { return m[1]; }
  std::uint64_t& nwait() const { return m[2]; }
  std::uint64_t& result() const { return m[3]; }
  bool empty() const { return head() == tail(); }
  void push(std::uint64_t v) const { m[4 + tail()] = v; tail() = tail() + 1; }
  std::uint64_t pop() const { return m[4 + (head()++)]; }
};
}  // namespace

int main() {
  now::tmk::DsmConfig cfg;
  cfg.num_nodes = 4;
  now::tmk::DsmRuntime rt(cfg);

  constexpr std::uint64_t kTasks = 64;

  rt.run_spmd([](now::tmk::Tmk& tmk) {
    Queue q{now::tmk::gptr<std::uint64_t>(now::tmk::kPageSize)};
    if (tmk.id() == 0) {
      for (std::uint64_t i = 1; i <= kTasks; ++i) q.push(i);
    }
    tmk.barrier();

    std::uint64_t local = 0;
    for (;;) {
      std::uint64_t task = 0;
      bool got = false;
      // Figure 4's DeQueue.
      tmk.lock_acquire(kLock);
      while (q.empty() && q.nwait() < tmk.nprocs()) {
        q.nwait() = q.nwait() + 1;
        if (q.nwait() == tmk.nprocs()) {
          tmk.cond_broadcast(kLock, kCond);
          break;
        }
        tmk.cond_wait(kLock, kCond);
        if (q.nwait() == tmk.nprocs()) break;
        q.nwait() = q.nwait() - 1;
      }
      if (q.nwait() < tmk.nprocs()) {
        task = q.pop();
        got = true;
      }
      tmk.lock_release(kLock);
      if (!got) break;
      local += task * task;  // "process" the task
    }

    // Figure 4's EnQueue pattern is exercised by the accumulate step.
    tmk.lock_acquire(kLock);
    q.result() = q.result() + local;
    tmk.lock_release(kLock);
    tmk.barrier();

    if (tmk.id() == 0)
      std::printf("sum of squares 1..%llu = %llu (expect %llu)\n",
                  static_cast<unsigned long long>(kTasks),
                  static_cast<unsigned long long>(q.result()),
                  static_cast<unsigned long long>(kTasks * (kTasks + 1) * (2 * kTasks + 1) / 6));
  });

  const auto s = rt.total_stats();
  std::printf("condition-variable ops: %llu, lock acquires: %llu (%llu cached)\n",
              static_cast<unsigned long long>(s.cond_ops),
              static_cast<unsigned long long>(s.lock_acquires),
              static_cast<unsigned long long>(s.lock_acquires_cached));
  return 0;
}
