// Sample input for the ompcc translator: computes pi by midpoint
// integration with a `parallel for` + reduction, in the paper's directive
// dialect (variables default to private; sharing is explicit).
//
//   $ ompcc examples/pi_directives.c -o pi_gen.cpp --nodes 8
//   $ g++ -std=c++20 -O2 -I src pi_gen.cpp build/src/tmk/libnow_tmk.a \
//         build/src/common/libnow_common.a -lpthread -o pi && ./pi
double pi;

int main() {
#pragma omp parallel for reduction(+: pi)
  for (int i = 0; i < 1000000; i++) {
    double x = (i + 0.5) / 1000000;
    pi += 4.0 / (1.0 + x * x);
  }
  pi = pi / 1000000;
  print(pi);
  return 0;
}
