// Quickstart: OpenMP-style parallelism on a simulated network of
// workstations.
//
//   $ ./quickstart
//
// Allocates a shared array, fills it with a `parallel do`, sums it with a
// reduction, and prints the DSM protocol activity that made it work.
#include <cstdio>

#include "omp/omp.h"

int main() {
  now::tmk::DsmConfig cfg;
  cfg.num_nodes = 4;  // four simulated 1998 workstations

  now::omp::OmpRuntime rt(cfg);
  rt.run([](now::omp::Team& team) {
    constexpr std::int64_t kN = 100000;
    // Shared data is explicit (private is the default on a software DSM).
    auto data = team.shared_array<double>(kN);

    // The `parallel do` directive.
    team.parallel_for(0, kN, [=](now::omp::Par&, std::int64_t i) {
      data[static_cast<std::size_t>(i)] = 1.0 / static_cast<double>(i + 1);
    });

    // `parallel do` with a sum reduction.
    const double harmonic = team.parallel_for_reduce_sum<double>(
        0, kN,
        [=](now::omp::Par&, std::int64_t i) { return data[static_cast<std::size_t>(i)]; });

    std::printf("H(%lld) = %.6f (expected ~12.09)\n",
                static_cast<long long>(kN), harmonic);
  });

  const auto traffic = rt.traffic();
  const auto stats = rt.dsm().total_stats();
  std::printf("DSM activity: %llu messages, %.2f MB on the wire, %llu diffs, "
              "%llu page faults\n",
              static_cast<unsigned long long>(traffic.messages),
              traffic.wire_mbytes(),
              static_cast<unsigned long long>(stats.diffs_created),
              static_cast<unsigned long long>(stats.read_faults + stats.write_faults));
  std::printf("virtual completion time: %.2f ms (1998 workstation time)\n",
              rt.virtual_time_us() / 1000.0);
  return 0;
}
