// Tests for the paper's two-phase inter-procedural shared-variable analysis.
#include <gtest/gtest.h>

#include "ompcc/analysis.h"
#include "ompcc/parser.h"

namespace now::ompcc {
namespace {

AnalysisResult run(const std::string& src) { return analyze(parse_source(src)); }

TEST(Phase1, DirectSharedClauseMarksGlobal) {
  auto an = run(
      "int a[8];\n"
      "int b[8];\n"
      "int main() {\n"
      "#pragma omp parallel for shared(a)\n"
      "  for (int i = 0; i < 8; i++) { a[i] = i; }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(an.ok());
  EXPECT_TRUE(an.shared_globals.count("a"));
  EXPECT_FALSE(an.shared_globals.count("b"));  // private by default
}

TEST(Phase1, SharedFlowsThroughCallChainToActualArgument) {
  // The paper's phase-1 scenario: a pointer passed down a call chain is
  // marked shared in the callee; the actual location must become shared.
  auto an = run(
      "double data[64];\n"
      "void leaf(double* v) {\n"
      "#pragma omp parallel for shared(v)\n"
      "  for (int i = 0; i < 64; i++) { v[i] = 1.0; }\n"
      "}\n"
      "void mid(double* w) { leaf(w); }\n"
      "int main() { mid(data); return 0; }\n");
  ASSERT_TRUE(an.ok());
  EXPECT_TRUE(an.shared_globals.count("data"));
  ASSERT_TRUE(an.shared_params.count("leaf"));
  EXPECT_TRUE(an.shared_params.at("leaf").count(0));
  ASSERT_TRUE(an.shared_params.count("mid"));
  EXPECT_TRUE(an.shared_params.at("mid").count(0));
}

TEST(Phase1, AddressOfScalarMarksTheScalar) {
  auto an = run(
      "long total;\n"
      "void accumulate(long* t) {\n"
      "#pragma omp parallel shared(t)\n"
      "  { t[0] = t[0] + 1; }\n"
      "}\n"
      "int main() { accumulate(&total); return 0; }\n");
  ASSERT_TRUE(an.ok());
  EXPECT_TRUE(an.shared_globals.count("total"));
}

TEST(Phase1, CalleeFirstOrder) {
  auto an = run(
      "void c() { }\n"
      "void b() { c(); }\n"
      "void a() { b(); }\n"
      "int main() { a(); return 0; }\n");
  ASSERT_TRUE(an.ok());
  const auto& order = an.callee_first_order;
  auto pos = [&](const std::string& f) {
    return std::find(order.begin(), order.end(), f) - order.begin();
  };
  EXPECT_LT(pos("c"), pos("b"));
  EXPECT_LT(pos("b"), pos("a"));
  EXPECT_LT(pos("a"), pos("main"));
}

TEST(Phase1, RecursionRejected) {
  auto an = run("void f() { f(); } int main() { f(); return 0; }");
  EXPECT_FALSE(an.ok());
  EXPECT_NE(an.errors[0].find("recursion"), std::string::npos);
}

TEST(Phase2, ScalarSharedAndPrivateIsRedeclared) {
  // "Otherwise the variable is redeclared in the parallel region in which
  //  it is marked private."
  auto an = run(
      "double t;\n"
      "int main() {\n"
      "#pragma omp parallel shared(t)\n"
      "  { t = 1.0; }\n"
      "#pragma omp parallel private(t)\n"
      "  { t = 2.0; }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(an.ok());
  EXPECT_TRUE(an.shared_globals.count("t"));
  EXPECT_TRUE(an.redeclared.count("t"));
}

TEST(Phase2, PointerSharedAndPrivateIsAnError) {
  // "an error is given if the variable is a pointer"
  auto an = run(
      "double* p;\n"
      "int main() {\n"
      "#pragma omp parallel shared(p)\n"
      "  { }\n"
      "#pragma omp parallel private(p)\n"
      "  { }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(an.ok());
  ASSERT_EQ(an.errors.size(), 1u);
  EXPECT_NE(an.errors[0].find("pointer"), std::string::npos);
}

TEST(Phase2, PrivateOnlyVariableIsNotShared) {
  auto an = run(
      "double t;\n"
      "int main() {\n"
      "#pragma omp parallel private(t)\n"
      "  { t = 2.0; }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(an.ok());
  EXPECT_FALSE(an.shared_globals.count("t"));
  EXPECT_TRUE(an.redeclared.empty());
}

TEST(Reduction, ReductionVariableBecomesShared) {
  auto an = run(
      "double s;\n"
      "int main() {\n"
      "#pragma omp parallel for reduction(+: s)\n"
      "  for (int i = 0; i < 10; i++) { s += 1.0; }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(an.ok());
  EXPECT_TRUE(an.shared_globals.count("s"));
}

}  // namespace
}  // namespace now::ompcc
