#include <gtest/gtest.h>

#include "ompcc/token.h"

namespace now::ompcc {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto toks = lex("int foo; double bar2;");
  ASSERT_EQ(toks.size(), 7u);  // incl. eof
  EXPECT_EQ(toks[0].kind, Tok::kInt);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].text, "foo");
  EXPECT_EQ(toks[3].kind, Tok::kDouble);
  EXPECT_EQ(toks[4].text, "bar2");
}

TEST(Lexer, NumbersIntAndFloat) {
  auto toks = lex("42 3.5 1e-3");
  EXPECT_EQ(toks[0].kind, Tok::kIntLit);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].kind, Tok::kFloatLit);
  EXPECT_EQ(toks[2].kind, Tok::kFloatLit);
}

TEST(Lexer, TwoCharOperators) {
  EXPECT_EQ(kinds("== != <= >= && || ++ -- += -="),
            (std::vector<Tok>{Tok::kEq, Tok::kNe, Tok::kLe, Tok::kGe, Tok::kAndAnd,
                              Tok::kOrOr, Tok::kPlusPlus, Tok::kMinusMinus,
                              Tok::kPlusAssign, Tok::kMinusAssign, Tok::kEof}));
}

TEST(Lexer, PragmaFoldsIntroducerAndEndsAtNewline) {
  auto toks = lex("#pragma omp parallel shared(a)\nint x;");
  EXPECT_EQ(toks[0].kind, Tok::kPragma);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);  // parallel
  EXPECT_EQ(toks[1].text, "parallel");
  // ... shared ( a )
  EXPECT_EQ(toks[6].kind, Tok::kPragmaEnd);
  EXPECT_EQ(toks[7].kind, Tok::kInt);
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = lex("int a; // trailing\n/* block\n comment */ int b;");
  EXPECT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[4].text, "b");
}

TEST(Lexer, LineNumbersTracked) {
  auto toks = lex("int a;\nint b;\n\nint c;");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].line, 2);
  EXPECT_EQ(toks[6].line, 4);
}

TEST(LexerDeathTest, RejectsNonOmpPragma) {
  EXPECT_DEATH(lex("#pragma once\n"), "pragma omp");
}

TEST(LexerDeathTest, RejectsStrayCharacter) {
  EXPECT_DEATH(lex("int a @ b;"), "unexpected character");
}

}  // namespace
}  // namespace now::ompcc
