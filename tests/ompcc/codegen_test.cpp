// Structural checks on the emitted C++ plus a full compile-and-run
// integration test against the real runtime libraries.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

#include "ompcc/codegen.h"

namespace now::ompcc {
namespace {

std::string gen(const std::string& src) {
  std::string cpp;
  std::vector<std::string> errors;
  const bool ok = translate(src, cpp, errors);
  EXPECT_TRUE(ok) << (errors.empty() ? "" : errors[0]);
  return cpp;
}

constexpr const char* kPiProgram = R"(
double pi;
int main() {
  int steps = 100000;
#pragma omp parallel for reduction(+: pi)
  for (int i = 0; i < 100000; i++) {
    double x = (i + 0.5) / 100000;
    pi += 4.0 / (1.0 + x * x);
  }
  pi = pi / 100000;
  print(pi);
  return 0;
}
)";

TEST(Codegen, SharedGlobalsBecomeGptrs) {
  const std::string cpp = gen(
      "int a[16];\n"
      "int main() {\n"
      "#pragma omp parallel for shared(a)\n"
      "  for (int i = 0; i < 16; i++) { a[i] = i; }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_NE(cpp.find("gptr<std::int32_t> a;"), std::string::npos);
  EXPECT_NE(cpp.find("team.shared_array<std::int32_t>(16)"), std::string::npos);
  EXPECT_NE(cpp.find("g_team->parallel_for(0, 16"), std::string::npos);
}

TEST(Codegen, NonSharedGlobalsAreThreadLocal) {
  const std::string cpp = gen(
      "int scratch[4];\n"
      "int main() { scratch[0] = 1; return 0; }\n");
  EXPECT_NE(cpp.find("thread_local std::int32_t scratch[4];"), std::string::npos);
}

TEST(Codegen, ReductionGetsSharedCellAndLocalPartial) {
  const std::string cpp = gen(kPiProgram);
  EXPECT_NE(cpp.find("now_red_pi"), std::string::npos);
  EXPECT_NE(cpp.find("now_local_pi"), std::string::npos);
  EXPECT_NE(cpp.find("reduce_sum"), std::string::npos);
}

TEST(Codegen, SharedParamBecomesGptrParameter) {
  const std::string cpp = gen(
      "double data[8];\n"
      "void kernel(double* v) {\n"
      "#pragma omp parallel for shared(v)\n"
      "  for (int i = 0; i < 8; i++) { v[i] = 2.0; }\n"
      "}\n"
      "int main() { kernel(data); return 0; }\n");
  EXPECT_NE(cpp.find("void kernel(gptr<double> v)"), std::string::npos);
  EXPECT_NE(cpp.find("kernel(g_shared.data)"), std::string::npos);
}

TEST(Codegen, DirectivesLowerToRuntimeCalls) {
  const std::string cpp = gen(
      "int a[8];\n"
      "int main() {\n"
      "#pragma omp parallel shared(a)\n"
      "  {\n"
      "#pragma omp critical(q)\n"
      "    { a[0] = a[0] + 1; }\n"
      "#pragma omp barrier\n"
      "#pragma omp sema_signal(1)\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_NE(cpp.find("now_par.critical(\"q\""), std::string::npos);
  EXPECT_NE(cpp.find("now_par.barrier();"), std::string::npos);
  EXPECT_NE(cpp.find("now_par.sema_signal(1);"), std::string::npos);
}

TEST(Codegen, RejectedProgramReportsErrors) {
  std::string cpp;
  std::vector<std::string> errors;
  const bool ok = translate(
      "double* p;\n"
      "int main() {\n"
      "#pragma omp parallel shared(p)\n"
      "  { }\n"
      "#pragma omp parallel private(p)\n"
      "  { }\n"
      "  return 0;\n"
      "}\n",
      cpp, errors);
  EXPECT_FALSE(ok);
  ASSERT_FALSE(errors.empty());
}

#ifndef NOW_SRC_DIR
#define NOW_SRC_DIR ""
#endif
#ifndef NOW_LIB_DIR
#define NOW_LIB_DIR ""
#endif
// Extra flags matching how the archives were built (e.g. -fsanitize=... in
// the sanitizer CI job: linking instrumented archives needs the same flags).
#ifndef NOW_EXTRA_CXXFLAGS
#define NOW_EXTRA_CXXFLAGS ""
#endif

// End-to-end: translate the pi program, compile it with the host compiler
// against the built runtime libraries, run it on 4 simulated workstations
// and check the printed digits.
TEST(CodegenIntegration, TranslatedPiProgramComputesPi) {
  if (std::system("g++ --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no host compiler";
  const std::string cpp = gen(kPiProgram);
  const std::string dir = ::testing::TempDir();
  const std::string src_path = dir + "/pi_gen.cpp";
  const std::string bin_path = dir + "/pi_gen";
  {
    std::ofstream out(src_path);
    out << cpp;
  }
  const std::string compile =
      "g++ -std=c++20 -O1 " + std::string(NOW_EXTRA_CXXFLAGS) + " -I " +
      std::string(NOW_SRC_DIR) + " -o " + bin_path +
      " " + src_path + " " + std::string(NOW_LIB_DIR) + "/tmk/libnow_tmk.a " +
      std::string(NOW_LIB_DIR) + "/common/libnow_common.a -lpthread 2>&1";
  ASSERT_EQ(std::system(compile.c_str()), 0) << compile;
  const std::string run_cmd =
      "NOW_NODES=4 " + bin_path + " > " + dir + "/pi_out.txt 2>&1";
  ASSERT_EQ(std::system(run_cmd.c_str()), 0);
  std::ifstream result(dir + "/pi_out.txt");
  double value = 0;
  result >> value;
  EXPECT_NEAR(value, 3.14159265, 1e-4);
}

}  // namespace
}  // namespace now::ompcc
