#include <gtest/gtest.h>

#include "ompcc/parser.h"

namespace now::ompcc {
namespace {

TEST(Parser, GlobalsAndArrays) {
  auto prog = parse_source("int n = 4; double a[100]; int* p;");
  ASSERT_EQ(prog.globals.size(), 3u);
  EXPECT_EQ(prog.globals[0].name, "n");
  ASSERT_TRUE(prog.globals[0].init != nullptr);
  EXPECT_TRUE(prog.globals[1].type.is_array);
  EXPECT_EQ(prog.globals[1].type.array_size, 100);
  EXPECT_EQ(prog.globals[2].type.pointer_depth, 1);
}

TEST(Parser, FunctionWithParams) {
  auto prog = parse_source("int add(int a, int b) { return a + b; }");
  ASSERT_EQ(prog.functions.size(), 1u);
  const auto& fn = prog.functions[0];
  EXPECT_EQ(fn.name, "add");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[1].name, "b");
  ASSERT_EQ(fn.body->body.size(), 1u);
  EXPECT_EQ(fn.body->body[0]->kind, Stmt::kReturn);
}

TEST(Parser, ArrayParamDecaysToPointer) {
  auto prog = parse_source("void f(double a[]) { a[0] = 1.0; }");
  EXPECT_EQ(prog.functions[0].params[0].type.pointer_depth, 1);
}

TEST(Parser, ControlFlow) {
  auto prog = parse_source(
      "void f() { if (1 < 2) { } else { } while (0) { } "
      "for (int i = 0; i < 10; i++) { } }");
  const auto& body = prog.functions[0].body->body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->kind, Stmt::kIf);
  EXPECT_TRUE(body[0]->else_body != nullptr);
  EXPECT_EQ(body[1]->kind, Stmt::kWhile);
  EXPECT_EQ(body[2]->kind, Stmt::kFor);
  EXPECT_EQ(body[2]->for_init->decl_name, "i");
}

TEST(Parser, ParallelDirectiveWithClauses) {
  auto prog = parse_source(
      "int a[8];\n"
      "void f() {\n"
      "#pragma omp parallel shared(a) firstprivate(x) reduction(+: s)\n"
      "  { a[0] = 1; }\n"
      "}\n");
  const auto& s = *prog.functions[0].body->body[0];
  EXPECT_EQ(s.kind, Stmt::kParallel);
  ASSERT_EQ(s.clauses.size(), 3u);
  EXPECT_EQ(s.clauses[0].kind, Clause::kShared);
  EXPECT_EQ(s.clauses[0].vars, (std::vector<std::string>{"a"}));
  EXPECT_EQ(s.clauses[1].kind, Clause::kFirstPrivate);
  EXPECT_EQ(s.clauses[2].kind, Clause::kReduction);
  EXPECT_EQ(s.clauses[2].reduction_op, "+");
}

TEST(Parser, ParallelForAnnotatesLoop) {
  auto prog = parse_source(
      "int a[8];\n"
      "void f() {\n"
      "#pragma omp parallel for shared(a)\n"
      "  for (int i = 0; i < 8; i++) { a[i] = i; }\n"
      "}\n");
  const auto& s = *prog.functions[0].body->body[0];
  EXPECT_EQ(s.kind, Stmt::kParallelFor);
  EXPECT_EQ(s.dir_body->kind, Stmt::kFor);
}

TEST(Parser, SyncDirectives) {
  auto prog = parse_source(
      "void f() {\n"
      "#pragma omp barrier\n"
      "#pragma omp sema_wait(3)\n"
      "#pragma omp sema_signal(4)\n"
      "#pragma omp cond_wait(0)\n"
      "#pragma omp cond_signal(0)\n"
      "#pragma omp cond_broadcast(1)\n"
      "#pragma omp flush\n"
      "}\n");
  const auto& body = prog.functions[0].body->body;
  ASSERT_EQ(body.size(), 7u);
  EXPECT_EQ(body[0]->kind, Stmt::kBarrier);
  EXPECT_EQ(body[1]->kind, Stmt::kSemaWait);
  EXPECT_EQ(body[1]->sync_id, 3);
  EXPECT_EQ(body[2]->kind, Stmt::kSemaSignal);
  EXPECT_EQ(body[3]->kind, Stmt::kCondWait);
  EXPECT_EQ(body[4]->kind, Stmt::kCondSignal);
  EXPECT_EQ(body[5]->kind, Stmt::kCondBroadcast);
  EXPECT_EQ(body[6]->kind, Stmt::kFlush);
}

TEST(Parser, CriticalWithAndWithoutName) {
  auto prog = parse_source(
      "void f() {\n"
      "#pragma omp critical(queue)\n"
      "  { }\n"
      "#pragma omp critical\n"
      "  { }\n"
      "}\n");
  EXPECT_EQ(prog.functions[0].body->body[0]->critical_name, "queue");
  EXPECT_EQ(prog.functions[0].body->body[1]->critical_name, "");
}

TEST(Parser, ExpressionPrecedence) {
  auto prog = parse_source("int g() { return 1 + 2 * 3 < 4 && 5 == 6; }");
  const Expr& e = *prog.functions[0].body->body[0]->expr;
  // ((1 + (2*3)) < 4) && (5 == 6)
  EXPECT_EQ(e.text, "&&");
  EXPECT_EQ(e.lhs->text, "<");
  EXPECT_EQ(e.lhs->lhs->text, "+");
  EXPECT_EQ(e.lhs->lhs->rhs->text, "*");
  EXPECT_EQ(e.rhs->text, "==");
}

TEST(Parser, CallsAndIndexing) {
  auto prog = parse_source("void f(int* a) { g(a[1], 2); }");
  const Expr& e = *prog.functions[0].body->body[0]->expr;
  EXPECT_EQ(e.kind, Expr::kCall);
  EXPECT_EQ(e.text, "g");
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0]->kind, Expr::kIndex);
}

TEST(ParserDeathTest, SyntaxErrorHasLineNumber) {
  EXPECT_DEATH(parse_source("int f() { return ; ; }"), "line 1");
}

}  // namespace
}  // namespace now::ompcc
