// Unit tests for the reliability channel and the fault injector, driven
// through Network so the send/recv plumbing under test is the real one.
// Single-threaded where possible: one thread alternates try_recv on both
// endpoints, which is exactly what drives each side's maintenance
// (retransmits, standalone acks) in the absence of a service thread.
#include "simnet/channel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "simnet/network.h"

namespace now::sim {
namespace {

Message make(NodeId src, NodeId dst, std::uint16_t type, std::size_t payload,
             std::uint64_t send_ts = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.send_ts_ns = send_ts;
  m.payload.resize(payload);
  return m;
}

void breathe() { std::this_thread::sleep_for(std::chrono::microseconds(200)); }

// Sequencing on a clean wire: surfaced messages carry consecutive per-link
// sequence numbers, and a reverse message's piggybacked cumulative ack
// drains the sender's retransmit queue with no standalone ack ever sent.
TEST(Channel, SequencesAndPiggybacksAcksOnReverseTraffic) {
  ChannelConfig chan;
  chan.reliable = true;
  // Pushed far out so neither fires during the test: the drain below must
  // come from the piggyback alone.
  chan.rto_host_us = 10'000'000;
  chan.ack_flush_host_us = 10'000'000;
  Network net(2, NetworkModel{}, chan);

  for (int i = 0; i < 3; ++i) net.send(make(0, 1, 1, 8));
  EXPECT_EQ(net.channel_unacked(0), 3u);
  for (std::uint64_t want = 1; want <= 3; ++want) {
    auto m = net.recv(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->ch_seq, want);
  }
  // The reverse message carries ack=3 for free.
  net.send(make(1, 0, 2, 8));
  ASSERT_TRUE(net.recv(0).has_value());
  EXPECT_EQ(net.channel_unacked(0), 0u);
  EXPECT_EQ(net.traffic().chan.acks_sent, 0u);
}

// An idle reverse link: the receiver owes an ack with nothing to piggyback
// it on, so after the flush timeout its maintenance emits a standalone ack
// message, which the sender's channel consumes — it must never surface.
TEST(Channel, StandaloneAckFlushedOnIdleReverseLink) {
  ChannelConfig chan;
  chan.reliable = true;
  chan.ack_type = 5;
  chan.num_msg_types = 6;
  chan.rto_host_us = 10'000'000;  // no retransmits: the ack must do it
  chan.ack_flush_host_us = 500;
  Network net(2, NetworkModel{}, chan);

  net.send(make(0, 1, 1, 8));
  ASSERT_TRUE(net.recv(1).has_value());
  EXPECT_EQ(net.channel_unacked(0), 1u);
  while (net.channel_unacked(0) != 0) {
    net.try_recv(1);  // receiver-side maintenance flushes the ack
    EXPECT_FALSE(net.try_recv(0).has_value());  // consumed, never surfaced
    breathe();
  }
  const auto t = net.traffic();
  EXPECT_GE(t.chan.acks_sent, 1u);
  EXPECT_EQ(t.chan.retransmits, 0u);
  EXPECT_EQ(t.messages_by_type[5], t.chan.acks_sent);  // attributed on the wire
}

// A lossy link: ~20% of transmissions vanish, and the retransmission
// protocol still surfaces every message exactly once, in order.
TEST(Channel, DropsRecoveredExactlyOnceInOrder) {
  ChannelConfig chan;
  chan.fault.drop_ppm = 200000;
  chan.fault.seed = 7;
  Network net(2, NetworkModel{}, chan);

  constexpr std::uint64_t kCount = 100;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    auto m = make(0, 1, 1, 8);
    m.seq = i;
    net.send(std::move(m));
  }
  std::uint64_t got = 0;
  while (got < kCount) {
    if (auto m = net.try_recv(1)) {
      ASSERT_EQ(m->seq, got);
      ++got;
    }
    net.try_recv(0);  // sender-side maintenance: retransmit overdue entries
    breathe();
  }
  EXPECT_FALSE(net.try_recv(1).has_value());  // exactly once: nothing extra
  const auto t = net.traffic();
  EXPECT_GT(t.chan.drops_injected, 0u);
  EXPECT_GT(t.chan.retransmits, 0u);
  // Wire accounting counts every attempt: original sends + retransmits +
  // acks, minus nothing for the drops (they were real transmissions).
  EXPECT_EQ(t.messages,
            kCount + t.chan.retransmits + t.chan.acks_sent);
}

// Every transmission duplicated: the receiver dedups, surfacing each
// message once, and counts the discarded copies.
TEST(Channel, DuplicatesDiscardedBySequenceDedup) {
  ChannelConfig chan;
  chan.fault.dup_ppm = 1000000;  // 100%: every packet arrives twice
  chan.fault.seed = 7;
  Network net(2, NetworkModel{}, chan);

  constexpr std::uint64_t kCount = 10;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    auto m = make(0, 1, 1, 8);
    m.seq = i;
    net.send(std::move(m));
  }
  std::uint64_t got = 0;
  while (got < kCount) {
    if (auto m = net.try_recv(1)) {
      ASSERT_EQ(m->seq, got);
      ++got;
    }
    net.try_recv(0);
    breathe();
  }
  EXPECT_FALSE(net.try_recv(1).has_value());
  const auto t = net.traffic();
  EXPECT_GE(t.chan.dups_injected, kCount);
  EXPECT_GE(t.chan.dup_drops, kCount);
}

// Every transmission reordered: each packet parks until the link's next
// transmission overtakes it, so the raw wire delivers pairwise swapped.
// The receiver's gap hold restores FIFO, and the final parked packet is
// recovered by its own retransmission (the liveness edge: a retransmitted
// packet is the "next transmission" that flushes the limbo).
TEST(Channel, ReordersHeldAndReleasedInOrder) {
  ChannelConfig chan;
  chan.fault.reorder_ppm = 1000000;
  chan.fault.seed = 7;
  Network net(2, NetworkModel{}, chan);

  constexpr std::uint64_t kCount = 9;  // odd: the last packet parks alone
  for (std::uint64_t i = 0; i < kCount; ++i) {
    auto m = make(0, 1, 1, 8);
    m.seq = i;
    net.send(std::move(m));
  }
  std::uint64_t got = 0;
  while (got < kCount) {
    if (auto m = net.try_recv(1)) {
      ASSERT_EQ(m->seq, got);
      ++got;
    }
    net.try_recv(0);
    breathe();
  }
  const auto t = net.traffic();
  EXPECT_GT(t.chan.reorders_injected, 0u);
  EXPECT_GT(t.chan.reorder_holds, 0u);
  EXPECT_GE(t.chan.retransmits, 1u);  // the lone parked tail needed one
}

// Jitter delays arrivals within [0, jitter_ns), deterministically from the
// seed: two networks with identical knobs time-stamp identically.
TEST(Channel, JitterIsBoundedAndDeterministic) {
  ChannelConfig chan;
  chan.fault.jitter_ns = 5000;
  chan.fault.seed = 11;
  NetworkModel model;

  auto arrival = [&] {
    Network net(2, model, chan);
    net.send(make(0, 1, 1, 64, /*send_ts=*/1000));
    auto m = net.recv(1);
    EXPECT_TRUE(m.has_value());
    return m->arrive_ts_ns;
  };
  const std::uint64_t base = 1000 + model.transit_ns(64);
  const std::uint64_t a = arrival();
  EXPECT_GE(a, base);
  EXPECT_LT(a, base + chan.fault.jitter_ns);
  EXPECT_EQ(a, arrival());  // same seed, same draw, same wire
}

// Different seeds draw different fault schedules — the knob the chaos CI
// leg and the fuzzer turn to explore distinct loss patterns.
TEST(Channel, FaultStreamVariesWithSeed) {
  std::vector<bool> pattern[2];
  for (int s = 0; s < 2; ++s) {
    ChannelConfig chan;
    chan.fault.drop_ppm = 300000;
    chan.fault.seed = 100 + static_cast<std::uint64_t>(s);
    Network net(2, NetworkModel{}, chan);
    std::uint64_t dropped = 0;
    for (int i = 0; i < 64; ++i) {
      net.send(make(0, 1, 1, 8));
      const std::uint64_t now_dropped = net.traffic().chan.drops_injected;
      pattern[s].push_back(now_dropped != dropped);
      dropped = now_dropped;
    }
  }
  EXPECT_NE(pattern[0], pattern[1]);
}

// All knobs off: the channel is never constructed.  Messages travel the
// legacy path unsequenced and the channel counters stay zero — the
// pre-chaos wire, byte for byte.
TEST(Channel, DisabledChannelIsZeroCost) {
  ChannelConfig chan;  // reliable=false, no faults
  ASSERT_FALSE(chan.enabled());
  Network net(2, NetworkModel{}, chan);
  net.send(make(0, 1, 1, 100));
  auto m = net.recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->ch_seq, 0u);
  EXPECT_EQ(m->ch_ack, 0u);
  EXPECT_EQ(net.channel_unacked(0), 0u);
  const auto t = net.traffic();
  EXPECT_EQ(t.messages, 1u);
  EXPECT_EQ(t.chan.retransmits, 0u);
  EXPECT_EQ(t.chan.acks_sent, 0u);
  EXPECT_EQ(t.chan.drops_injected, 0u);
}

}  // namespace
}  // namespace now::sim
