#include "simnet/mailbox.h"

#include <gtest/gtest.h>

#include <thread>

namespace now::sim {
namespace {

Message make(std::uint16_t type) {
  Message m;
  m.type = type;
  return m;
}

TEST(Mailbox, FifoOrder) {
  Mailbox box;
  box.push(make(1));
  box.push(make(2));
  box.push(make(3));
  EXPECT_EQ(box.pop()->type, 1);
  EXPECT_EQ(box.pop()->type, 2);
  EXPECT_EQ(box.pop()->type, 3);
}

TEST(Mailbox, TryPopEmptyReturnsNullopt) {
  Mailbox box;
  EXPECT_FALSE(box.try_pop().has_value());
}

TEST(Mailbox, BlockingPopWakesOnPush) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push(make(7));
  });
  auto m = box.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, 7);
  producer.join();
}

TEST(Mailbox, CloseWakesBlockedPopper) {
  Mailbox box;
  std::thread closer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.close();
  });
  EXPECT_FALSE(box.pop().has_value());
  closer.join();
}

TEST(Mailbox, CloseDrainsQueueFirst) {
  Mailbox box;
  box.push(make(1));
  box.close();
  EXPECT_TRUE(box.pop().has_value());
  EXPECT_FALSE(box.pop().has_value());
}

TEST(Mailbox, SizeReflectsQueue) {
  Mailbox box;
  EXPECT_EQ(box.size(), 0u);
  box.push(make(1));
  box.push(make(2));
  EXPECT_EQ(box.size(), 2u);
}

TEST(Mailbox, PopForReturnsQueuedMessage) {
  Mailbox box;
  box.push(make(5));
  Message out;
  EXPECT_EQ(box.pop_for(out, std::chrono::microseconds(1)),
            Mailbox::PopStatus::kMessage);
  EXPECT_EQ(out.type, 5);
}

TEST(Mailbox, PopForTimesOutOnEmpty) {
  Mailbox box;
  Message out;
  EXPECT_EQ(box.pop_for(out, std::chrono::microseconds(100)),
            Mailbox::PopStatus::kTimeout);
}

TEST(Mailbox, PopForWakesOnPush) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    box.push(make(7));
  });
  Message out;
  // Far longer than the producer's delay: a timeout here means the push
  // failed to wake the waiter.
  EXPECT_EQ(box.pop_for(out, std::chrono::seconds(10)),
            Mailbox::PopStatus::kMessage);
  EXPECT_EQ(out.type, 7);
  producer.join();
}

TEST(Mailbox, PopForDrainsQueueBeforeReportingClosed) {
  Mailbox box;
  box.push(make(1));
  box.close();
  Message out;
  EXPECT_EQ(box.pop_for(out, std::chrono::microseconds(1)),
            Mailbox::PopStatus::kMessage);
  EXPECT_EQ(out.type, 1);
  EXPECT_EQ(box.pop_for(out, std::chrono::microseconds(1)),
            Mailbox::PopStatus::kClosed);
}

TEST(Mailbox, CloseWakesBlockedPopFor) {
  Mailbox box;
  std::thread closer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    box.close();
  });
  Message out;
  EXPECT_EQ(box.pop_for(out, std::chrono::seconds(10)),
            Mailbox::PopStatus::kClosed);
  closer.join();
}

// The shutdown race the channel's retransmission path exposes: a retransmit
// or late ack can arrive after close_all().  The box must drop it (never
// deliver after reporting closed) and count the drop.
TEST(Mailbox, PushAfterCloseIsDroppedAndCounted) {
  Mailbox box;
  box.push(make(1));
  box.close();
  box.push(make(2));
  box.push(make(3));
  EXPECT_EQ(box.size(), 1u);  // only the pre-close message survives
  EXPECT_EQ(box.pop()->type, 1);
  EXPECT_FALSE(box.pop().has_value());
  EXPECT_EQ(box.dropped_after_close(), 2u);
}

}  // namespace
}  // namespace now::sim
