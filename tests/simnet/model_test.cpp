#include "simnet/model.h"

#include <gtest/gtest.h>

namespace now::sim {
namespace {

TEST(NetworkModel, SmallMessageDominatedByLatency) {
  NetworkModel m = NetworkModel::udp_ethernet100();
  // A 4-byte message costs roughly the one-way latency: the paper's
  // small-message UDP round trip (~130 us) is two of these.
  EXPECT_NEAR(m.transit_us(4), m.latency_us, 6.0);
}

TEST(NetworkModel, LargeMessageDominatedByBandwidth) {
  NetworkModel m = NetworkModel::udp_ethernet100();
  const double t64k = m.transit_us(64 * 1024);
  // 64 KiB at ~88 Mbit/s is ~6 ms, far above the latency floor.
  EXPECT_GT(t64k, 5000.0);
  EXPECT_LT(t64k, 8000.0);
}

TEST(NetworkModel, TransitMonotonicInSize) {
  NetworkModel m;
  EXPECT_LT(m.transit_us(10), m.transit_us(100));
  EXPECT_LT(m.transit_us(100), m.transit_us(10000));
}

TEST(NetworkModel, TcpHasHigherPerMessageCost) {
  const auto udp = NetworkModel::udp_ethernet100();
  const auto tcp = NetworkModel::tcp_ethernet100();
  EXPECT_GT(tcp.transit_us(4), udp.transit_us(4));
}

TEST(NetworkModel, WireBytesIncludeHeader) {
  NetworkModel m;
  EXPECT_EQ(m.wire_bytes(100), 100u + m.header_bytes);
}

TEST(TimeModelTest, DefaultScaleIsPositive) {
  TimeModel tm;
  EXPECT_GT(tm.cpu_scale, 1.0);
}

}  // namespace
}  // namespace now::sim
