#include "simnet/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace now::sim {
namespace {

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  c.advance_ns(1000);
  c.advance_us(2.0);
  EXPECT_EQ(c.now_ns(), 3000u);
  EXPECT_DOUBLE_EQ(c.now_us(), 3.0);
}

TEST(VirtualClock, AdvanceToNeverMovesBackwards) {
  VirtualClock c;
  c.advance_ns(5000);
  c.advance_to_ns(3000);
  EXPECT_EQ(c.now_ns(), 5000u);
  c.advance_to_ns(9000);
  EXPECT_EQ(c.now_ns(), 9000u);
}

TEST(VirtualClock, ConcurrentAdvanceIsLossless) {
  VirtualClock c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.advance_ns(3);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.now_ns(), 8u * 10000u * 3u);
}

TEST(VirtualClock, ConcurrentAdvanceToTakesMax) {
  VirtualClock c;
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t)
    threads.emplace_back([&c, t] { c.advance_to_ns(static_cast<std::uint64_t>(t) * 100); });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.now_ns(), 800u);
}

TEST(CpuMeter, MeasuresBusyWork) {
  CpuMeter m;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  EXPECT_GT(m.take_delta_ns(), 0u);
}

TEST(CpuMeter, RebaseDiscardsElapsedTime) {
  CpuMeter m;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  m.rebase();
  // Whatever little work happens between rebase and sampling is tiny
  // compared to the loop above.
  EXPECT_LT(m.take_delta_ns(), 5000000u);
}

TEST(TimeModel, ScalesHostTime) {
  TimeModel tm;
  tm.cpu_scale = 10.0;
  EXPECT_EQ(tm.scale_ns(100), 1000u);
}

}  // namespace
}  // namespace now::sim
