#include "simnet/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

namespace now::sim {
namespace {

Message make(NodeId src, NodeId dst, std::uint16_t type, std::size_t payload,
             std::uint64_t send_ts = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.send_ts_ns = send_ts;
  m.payload.resize(payload);
  return m;
}

TEST(Network, DeliversToDestination) {
  Network net(4, NetworkModel{});
  net.send(make(0, 2, 5, 16));
  auto m = net.recv(2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 0u);
  EXPECT_EQ(m->type, 5);
  EXPECT_FALSE(net.try_recv(1).has_value());
}

TEST(Network, ArrivalTimestampAddsTransit) {
  NetworkModel model;
  Network net(2, model);
  net.send(make(0, 1, 1, 100, /*send_ts=*/1000000));
  auto m = net.recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->arrive_ts_ns, 1000000 + model.transit_ns(100));
}

TEST(Network, TrafficCountsMessagesAndBytes) {
  NetworkModel model;
  Network net(2, model);
  net.send(make(0, 1, 3, 100));
  net.send(make(1, 0, 4, 50));
  auto t = net.traffic();
  EXPECT_EQ(t.messages, 2u);
  EXPECT_EQ(t.payload_bytes, 150u);
  EXPECT_EQ(t.wire_bytes, 150u + 2 * model.header_bytes);
  EXPECT_EQ(t.messages_by_type[3], 1u);
  EXPECT_EQ(t.messages_by_type[4], 1u);
}

TEST(Network, ResetTrafficZeroes) {
  Network net(2, NetworkModel{});
  net.send(make(0, 1, 1, 10));
  net.reset_traffic();
  EXPECT_EQ(net.traffic().messages, 0u);
}

TEST(Network, PerSenderFifo) {
  Network net(2, NetworkModel{});
  for (int i = 0; i < 100; ++i) {
    auto m = make(0, 1, 1, 0);
    m.seq = static_cast<std::uint64_t>(i);
    net.send(std::move(m));
  }
  for (int i = 0; i < 100; ++i) {
    auto m = net.recv(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->seq, static_cast<std::uint64_t>(i));
  }
}

TEST(Network, CloseAllUnblocksReceivers) {
  Network net(2, NetworkModel{});
  std::thread t([&net] { EXPECT_FALSE(net.recv(1).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net.close_all();
  t.join();
}

TEST(Network, SelfSendAllowedAndOffTheWire) {
  Network net(2, NetworkModel{});
  net.send(make(1, 1, 9, 8, /*send_ts=*/100));
  auto m = net.recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 1u);
  // Local delivery: token delay, no wire accounting.
  EXPECT_EQ(m->arrive_ts_ns, 100u + Network::kLocalDeliveryNs);
  EXPECT_EQ(net.traffic().messages, 0u);
}

TEST(Network, ConcurrentSendersAllDelivered) {
  Network net(5, NetworkModel{});
  std::vector<std::thread> senders;
  for (NodeId s = 0; s < 4; ++s)
    senders.emplace_back([&net, s] {
      for (int i = 0; i < 250; ++i) net.send(make(s, 4, 1, 4));
    });
  for (auto& t : senders) t.join();
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(net.recv(4).has_value());
  EXPECT_FALSE(net.try_recv(4).has_value());
}

// Send-side validation: a malformed source or destination is a protocol bug
// at the *sender*, caught loudly before the message touches any mailbox.
TEST(NetworkDeath, RejectsOutOfRangeSource) {
  Network net(2, NetworkModel{});
  EXPECT_DEATH(net.send(make(7, 1, 1, 0)), "bad source");
}

TEST(NetworkDeath, RejectsOutOfRangeDestination) {
  Network net(2, NetworkModel{});
  EXPECT_DEATH(net.send(make(0, 7, 1, 0)), "bad destination");
}

TEST(NetworkDeath, RejectsUnknownMessageType) {
  ChannelConfig chan;
  chan.num_msg_types = 4;  // types 0..3 are the whole protocol
  Network net(2, NetworkModel{}, chan);
  net.send(make(0, 1, 3, 0));  // in range: fine
  EXPECT_TRUE(net.recv(1).has_value());
  EXPECT_DEATH(net.send(make(0, 1, 4, 0)), "unknown message type");
}

TEST(Network, NoTypeTableMeansNoTypeValidation) {
  Network net(2, NetworkModel{});  // num_msg_types == 0: protocol-agnostic
  net.send(make(0, 1, 999, 0));
  EXPECT_EQ(net.recv(1)->type, 999);
}

// With the reliability channel on, the local fast path must stay local:
// unsequenced, off the wire counters, and exempt from channel state.
TEST(Network, SelfSendStaysOffWireWithChannelEnabled) {
  ChannelConfig chan;
  chan.reliable = true;
  Network net(2, NetworkModel{}, chan);
  net.send(make(1, 1, 9, 8, /*send_ts=*/100));
  auto m = net.recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 1u);
  EXPECT_EQ(m->arrive_ts_ns, 100u + Network::kLocalDeliveryNs);
  EXPECT_EQ(m->ch_seq, 0u);  // never sequenced
  EXPECT_EQ(net.traffic().messages, 0u);
  EXPECT_EQ(net.channel_unacked(1), 0u);
}

// The full gauntlet: concurrent senders over a wire dropping, duplicating
// and reordering packets, with the channel restoring exactly-once per-sender
// FIFO.  Every sender's stream must surface complete, in order, no dups.
TEST(Network, ConcurrentSendersExactlyOnceFifoUnderFaults) {
  ChannelConfig chan;
  chan.fault.drop_ppm = 20000;  // 2% — aggressive for a 1000-message run
  chan.fault.dup_ppm = 10000;
  chan.fault.reorder_ppm = 20000;
  chan.fault.seed = 42;
  Network net(5, NetworkModel{}, chan);
  std::vector<std::thread> senders;
  for (NodeId s = 0; s < 4; ++s)
    senders.emplace_back([&net, s] {
      for (int i = 0; i < 250; ++i) {
        auto m = make(s, 4, 1, 4);
        m.seq = static_cast<std::uint64_t>(i);
        net.send(std::move(m));
      }
      // Drive this sender's maintenance (retransmits, ack consumption)
      // until the receiver has acked everything — the role the service
      // thread's recv loop plays in the real runtime.
      while (net.channel_unacked(s) != 0) {
        net.try_recv(s);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  // recv() blocks until each next in-order message is recovered.
  std::vector<std::uint64_t> next(4, 0);
  for (int i = 0; i < 1000; ++i) {
    auto m = net.recv(4);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->seq, next[m->src]++) << "sender " << m->src;
  }
  // Keep flushing the receiver's standalone acks until every sender has
  // drained its retransmit queue, or the last acks never go out.
  while (std::any_of(senders.begin(), senders.end(),
                     [](std::thread& t) { return t.joinable(); })) {
    net.try_recv(4);
    bool all_acked = true;
    for (NodeId s = 0; s < 4; ++s) all_acked &= net.channel_unacked(s) == 0;
    if (all_acked)
      for (auto& t : senders) t.join();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_FALSE(net.try_recv(4).has_value());
  const auto t = net.traffic();
  EXPECT_GT(t.chan.drops_injected, 0u);
  EXPECT_GT(t.chan.retransmits, 0u);
  EXPECT_GT(t.chan.dup_drops, 0u);
}

}  // namespace
}  // namespace now::sim
