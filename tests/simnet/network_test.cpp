#include "simnet/network.h"

#include <gtest/gtest.h>

#include <thread>

namespace now::sim {
namespace {

Message make(NodeId src, NodeId dst, std::uint16_t type, std::size_t payload,
             std::uint64_t send_ts = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.send_ts_ns = send_ts;
  m.payload.resize(payload);
  return m;
}

TEST(Network, DeliversToDestination) {
  Network net(4, NetworkModel{});
  net.send(make(0, 2, 5, 16));
  auto m = net.recv(2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 0u);
  EXPECT_EQ(m->type, 5);
  EXPECT_FALSE(net.try_recv(1).has_value());
}

TEST(Network, ArrivalTimestampAddsTransit) {
  NetworkModel model;
  Network net(2, model);
  net.send(make(0, 1, 1, 100, /*send_ts=*/1000000));
  auto m = net.recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->arrive_ts_ns, 1000000 + model.transit_ns(100));
}

TEST(Network, TrafficCountsMessagesAndBytes) {
  NetworkModel model;
  Network net(2, model);
  net.send(make(0, 1, 3, 100));
  net.send(make(1, 0, 4, 50));
  auto t = net.traffic();
  EXPECT_EQ(t.messages, 2u);
  EXPECT_EQ(t.payload_bytes, 150u);
  EXPECT_EQ(t.wire_bytes, 150u + 2 * model.header_bytes);
  EXPECT_EQ(t.messages_by_type[3], 1u);
  EXPECT_EQ(t.messages_by_type[4], 1u);
}

TEST(Network, ResetTrafficZeroes) {
  Network net(2, NetworkModel{});
  net.send(make(0, 1, 1, 10));
  net.reset_traffic();
  EXPECT_EQ(net.traffic().messages, 0u);
}

TEST(Network, PerSenderFifo) {
  Network net(2, NetworkModel{});
  for (int i = 0; i < 100; ++i) {
    auto m = make(0, 1, 1, 0);
    m.seq = static_cast<std::uint64_t>(i);
    net.send(std::move(m));
  }
  for (int i = 0; i < 100; ++i) {
    auto m = net.recv(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->seq, static_cast<std::uint64_t>(i));
  }
}

TEST(Network, CloseAllUnblocksReceivers) {
  Network net(2, NetworkModel{});
  std::thread t([&net] { EXPECT_FALSE(net.recv(1).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net.close_all();
  t.join();
}

TEST(Network, SelfSendAllowedAndOffTheWire) {
  Network net(2, NetworkModel{});
  net.send(make(1, 1, 9, 8, /*send_ts=*/100));
  auto m = net.recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 1u);
  // Local delivery: token delay, no wire accounting.
  EXPECT_EQ(m->arrive_ts_ns, 100u + Network::kLocalDeliveryNs);
  EXPECT_EQ(net.traffic().messages, 0u);
}

TEST(Network, ConcurrentSendersAllDelivered) {
  Network net(5, NetworkModel{});
  std::vector<std::thread> senders;
  for (NodeId s = 0; s < 4; ++s)
    senders.emplace_back([&net, s] {
      for (int i = 0; i < 250; ++i) net.send(make(s, 4, 1, 4));
    });
  for (auto& t : senders) t.join();
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(net.recv(4).has_value());
  EXPECT_FALSE(net.try_recv(4).has_value());
}

}  // namespace
}  // namespace now::sim
