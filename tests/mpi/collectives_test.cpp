// mini-MPI collectives: correctness against sequential references and
// message-count sanity for the tree/dissemination algorithms.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/mpi.h"

namespace now::mpi {
namespace {

MpiConfig cfg(std::uint32_t ranks) {
  MpiConfig c;
  c.num_ranks = ranks;
  return c;
}

class CollectivesAtSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CollectivesAtSize, BarrierCompletes) {
  MpiRuntime rt(cfg(GetParam()));
  rt.run([](Comm& c) {
    for (int i = 0; i < 3; ++i) c.barrier();
  });
}

TEST_P(CollectivesAtSize, BcastFromEveryRoot) {
  MpiRuntime rt(cfg(GetParam()));
  rt.run([](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::uint64_t v = c.rank() == root ? 4242 + static_cast<std::uint64_t>(root) : 0;
      c.bcast(&v, sizeof v, root);
      EXPECT_EQ(v, 4242u + static_cast<std::uint64_t>(root));
      c.barrier();
    }
  });
}

TEST_P(CollectivesAtSize, ReduceSumMatchesReference) {
  MpiRuntime rt(cfg(GetParam()));
  const int n = static_cast<int>(GetParam());
  rt.run([n](Comm& c) {
    std::vector<double> in(8);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i + 1);
    std::vector<double> out(8, 0.0);
    c.reduce(in.data(), out.data(), in.size(), Op::kSum, 0);
    if (c.rank() == 0) {
      const double ranksum = n * (n + 1) / 2.0;
      for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_DOUBLE_EQ(out[i], ranksum * static_cast<double>(i + 1));
    }
  });
}

TEST_P(CollectivesAtSize, AllreduceMinMax) {
  MpiRuntime rt(cfg(GetParam()));
  const int n = static_cast<int>(GetParam());
  rt.run([n](Comm& c) {
    const std::int64_t mine = 100 - c.rank();
    EXPECT_EQ(c.allreduce_one(mine, Op::kMin), 100 - (n - 1));
    EXPECT_EQ(c.allreduce_one(mine, Op::kMax), 100);
  });
}

TEST_P(CollectivesAtSize, GatherCollectsInRankOrder) {
  MpiRuntime rt(cfg(GetParam()));
  const int n = static_cast<int>(GetParam());
  rt.run([n](Comm& c) {
    const std::uint32_t mine = 7u * static_cast<std::uint32_t>(c.rank()) + 1;
    std::vector<std::uint32_t> all(static_cast<std::size_t>(n), 0);
    c.gather(&mine, sizeof mine, all.data(), 0);
    if (c.rank() == 0) {
      for (int r = 0; r < n; ++r)
        EXPECT_EQ(all[static_cast<std::size_t>(r)], 7u * static_cast<std::uint32_t>(r) + 1);
    }
  });
}

TEST_P(CollectivesAtSize, ScatterDistributesInRankOrder) {
  MpiRuntime rt(cfg(GetParam()));
  const int n = static_cast<int>(GetParam());
  rt.run([n](Comm& c) {
    std::vector<std::uint32_t> all(static_cast<std::size_t>(n));
    if (c.rank() == 0)
      for (int r = 0; r < n; ++r) all[static_cast<std::size_t>(r)] = 1000u + static_cast<std::uint32_t>(r);
    std::uint32_t mine = 0;
    c.scatter(all.data(), sizeof mine, &mine, 0);
    EXPECT_EQ(mine, 1000u + static_cast<std::uint32_t>(c.rank()));
  });
}

TEST_P(CollectivesAtSize, AlltoallTransposesRankMatrix) {
  MpiRuntime rt(cfg(GetParam()));
  const int n = static_cast<int>(GetParam());
  rt.run([n](Comm& c) {
    std::vector<std::uint32_t> out(static_cast<std::size_t>(n)), in(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      out[static_cast<std::size_t>(r)] = static_cast<std::uint32_t>(c.rank() * 100 + r);
    c.alltoall(out.data(), sizeof(std::uint32_t), in.data());
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(in[static_cast<std::size_t>(r)], static_cast<std::uint32_t>(r * 100 + c.rank()));
  });
}

TEST_P(CollectivesAtSize, AlltoallvVariableSizes) {
  MpiRuntime rt(cfg(GetParam()));
  const int n = static_cast<int>(GetParam());
  rt.run([n](Comm& c) {
    // Rank r sends (r+1) bytes of value r to every rank.
    std::vector<std::size_t> sendbytes(static_cast<std::size_t>(n), static_cast<std::size_t>(c.rank()) + 1);
    std::vector<std::size_t> recvbytes(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) recvbytes[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r) + 1;
    std::vector<std::uint8_t> sendbuf(static_cast<std::size_t>(n) * (static_cast<std::size_t>(c.rank()) + 1),
                                      static_cast<std::uint8_t>(c.rank()));
    const std::size_t total = static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) + 1) / 2;
    std::vector<std::uint8_t> recvbuf(total, 0xff);
    c.alltoallv(sendbuf.data(), sendbytes, recvbuf.data(), recvbytes);
    std::size_t off = 0;
    for (int r = 0; r < n; ++r)
      for (std::size_t k = 0; k < static_cast<std::size_t>(r) + 1; ++k)
        EXPECT_EQ(recvbuf[off++], static_cast<std::uint8_t>(r));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesAtSize, ::testing::Values(2u, 3u, 4u, 8u));

TEST(CollectiveCost, BcastUsesTreeMessageCount) {
  MpiRuntime rt(cfg(8));
  rt.run([](Comm& c) {
    std::uint64_t v = 1;
    c.bcast(&v, sizeof v, 0);
  });
  // A binomial broadcast over n ranks sends exactly n-1 messages.
  EXPECT_EQ(rt.traffic().messages, 7u);
}

TEST(CollectiveCost, BarrierDisseminationMessageCount) {
  MpiRuntime rt(cfg(8));
  rt.run([](Comm& c) { c.barrier(); });
  // log2(8) = 3 rounds, n messages each.
  EXPECT_EQ(rt.traffic().messages, 24u);
}

}  // namespace
}  // namespace now::mpi
