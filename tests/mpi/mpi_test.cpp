// mini-MPI point-to-point tests: matching, ordering, non-blocking ops and
// virtual-time bookkeeping.
#include "mpi/mpi.h"

#include <gtest/gtest.h>

#include <numeric>

namespace now::mpi {
namespace {

MpiConfig cfg(std::uint32_t ranks) {
  MpiConfig c;
  c.num_ranks = ranks;
  return c;
}

TEST(MpiP2P, SendRecvRoundTrip) {
  MpiRuntime rt(cfg(2));
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      const std::uint64_t v = 0xfeedface;
      c.send(&v, sizeof v, 1, 7);
    } else {
      std::uint64_t v = 0;
      c.recv(&v, sizeof v, 0, 7);
      EXPECT_EQ(v, 0xfeedfaceu);
    }
  });
}

TEST(MpiP2P, TagMatchingOutOfOrder) {
  MpiRuntime rt(cfg(2));
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(&a, sizeof a, 1, 10);
      c.send(&b, sizeof b, 1, 20);
    } else {
      int b = 0, a = 0;
      c.recv(&b, sizeof b, 0, 20);  // match the later tag first
      c.recv(&a, sizeof a, 0, 10);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(MpiP2P, ManyMessagesPreserveOrderPerTag) {
  MpiRuntime rt(cfg(2));
  rt.run([](Comm& c) {
    constexpr int kN = 100;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send(&i, sizeof i, 1, 5);
    } else {
      // FIFO within a (src, tag) stream: values arrive in send order.
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        c.recv(&v, sizeof v, 0, 5);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(MpiP2P, IsendIrecvWaitall) {
  MpiRuntime rt(cfg(4));
  rt.run([](Comm& c) {
    const int n = c.size();
    std::vector<int> in(static_cast<std::size_t>(n), -1);
    std::vector<Request> reqs;
    for (int r = 0; r < n; ++r) {
      if (r == c.rank()) continue;
      reqs.push_back(c.irecv(&in[static_cast<std::size_t>(r)], sizeof(int), r, 3));
    }
    for (int r = 0; r < n; ++r) {
      if (r == c.rank()) continue;
      int v = c.rank() * 100;
      c.isend(&v, sizeof v, r, 3);
    }
    c.waitall(reqs);
    for (int r = 0; r < n; ++r)
      if (r != c.rank()) EXPECT_EQ(in[static_cast<std::size_t>(r)], r * 100);
  });
}

TEST(MpiP2P, SendrecvExchanges) {
  MpiRuntime rt(cfg(2));
  rt.run([](Comm& c) {
    const int mine = c.rank() + 10;
    int theirs = -1;
    const int peer = 1 - c.rank();
    c.sendrecv(&mine, sizeof mine, peer, 1, &theirs, sizeof theirs, peer, 1);
    EXPECT_EQ(theirs, peer + 10);
  });
}

TEST(MpiP2P, VirtualTimeIncludesTransit) {
  MpiRuntime rt(cfg(2));
  rt.run([](Comm& c) {
    std::uint8_t b = 0;
    if (c.rank() == 0) {
      c.send(&b, 1, 1, 0);
    } else {
      c.recv(&b, 1, 0, 0);
    }
  });
  // At least one TCP one-way latency must have elapsed.
  EXPECT_GT(rt.virtual_time_us(), 90.0);
}

TEST(MpiP2P, TrafficCountsWire) {
  MpiRuntime rt(cfg(2));
  rt.run([](Comm& c) {
    std::vector<std::uint8_t> buf(1000);
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), 1, 0);
    } else {
      c.recv(buf.data(), buf.size(), 0, 0);
    }
  });
  const auto t = rt.traffic();
  EXPECT_EQ(t.messages, 1u);
  EXPECT_EQ(t.payload_bytes, 1000u);
}

TEST(MpiP2PDeathTest, SizeMismatchAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        MpiRuntime rt(cfg(2));
        rt.run([](Comm& c) {
          std::uint32_t small = 1;
          std::uint64_t big = 2;
          if (c.rank() == 0) {
            c.send(&small, 4, 1, 0);
          } else {
            c.recv(&big, 8, 0, 0);
          }
        });
      },
      "size mismatch");
}

}  // namespace
}  // namespace now::mpi
