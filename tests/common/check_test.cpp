#include "common/check.h"

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(Check, PassingChecksDoNothing) {
  NOW_CHECK(true);
  NOW_CHECK_EQ(1, 1);
  NOW_CHECK_NE(1, 2);
  NOW_CHECK_LT(1, 2);
  NOW_CHECK_LE(2, 2);
  NOW_CHECK_GT(3, 2);
  NOW_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ NOW_CHECK(false) << "boom"; }, "boom");
}

TEST(CheckDeathTest, FailingCheckEqPrintsValues) {
  EXPECT_DEATH({ NOW_CHECK_EQ(3, 4); }, "3 vs 4");
}

}  // namespace
}  // namespace now
