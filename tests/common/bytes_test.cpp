#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace now {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RoundTripBytesAndStrings) {
  ByteWriter w;
  const std::string s = "treadmarks";
  w.str(s);
  std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);
  auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.str(), s);
  auto b = r.bytes();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 3);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, EmptyBytesAllowed) {
  ByteWriter w;
  w.bytes(nullptr, 0);
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_TRUE(r.bytes().empty());
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RawRoundTrip) {
  ByteWriter w;
  double values[4] = {1.0, 2.0, 3.0, 4.0};
  w.raw(values, sizeof values);
  auto buf = w.take();
  ByteReader r(buf);
  double out[4];
  r.raw(out, sizeof out);
  EXPECT_EQ(out[3], 4.0);
}

TEST(Bytes, FuzzRoundTrip) {
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    ByteWriter w;
    std::vector<std::uint64_t> values;
    const int n = 1 + static_cast<int>(rng.next_below(30));
    for (int i = 0; i < n; ++i) {
      values.push_back(rng.next_u64());
      w.u64(values.back());
    }
    auto buf = w.take();
    ByteReader r(buf);
    for (std::uint64_t v : values) EXPECT_EQ(r.u64(), v);
    EXPECT_TRUE(r.done());
  }
}

}  // namespace
}  // namespace now
