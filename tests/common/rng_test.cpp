#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace now {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace now
