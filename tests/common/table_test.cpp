#include "common/table.h"

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"app", "speedup"});
  t.add_row({"water", "6.10"});
  t.add_row({"tsp", "7.25"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("app"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("6.10"), std::string::npos);
  EXPECT_NE(s.find("tsp"), std::string::npos);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
}

TEST(Table, FmtInteger) { EXPECT_EQ(Table::fmt(std::uint64_t{12345}), "12345"); }

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width mismatch");
}

}  // namespace
}  // namespace now
