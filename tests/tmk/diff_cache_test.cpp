// The requester-side diff cache: structure-level behavior (hit/miss, FIFO
// eviction under the byte budget, GC pinning) and the protocol-level
// invariant that with barrier-time GC disabled the cache never changes what
// the simulation computes or transmits — without GC every (writer, seq)
// notice is learned and fetched at most once, so the hit counter must read
// zero and traffic must be identical to a run with the cache disabled.
// (With GC enabled the cache is load-bearing; tmk_gc_test covers that.)
#include <gtest/gtest.h>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DiffBytes chunk(std::size_t n, std::uint8_t fill) { return DiffBytes(n, fill); }

TEST(PageDiffCache, MissThenHit) {
  PageDiffCache c;
  EXPECT_EQ(c.find(1, 1), nullptr);
  c.insert(1, 1, {chunk(10, 0xaa)}, 1024);
  const auto* got = c.find(1, 1);
  ASSERT_NE(got, nullptr);
  ASSERT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0], chunk(10, 0xaa));
  EXPECT_EQ(c.bytes(), 10u);
  EXPECT_EQ(c.entries(), 1u);
}

TEST(PageDiffCache, DistinctWritersAndSeqsAreDistinctKeys) {
  PageDiffCache c;
  c.insert(1, 1, {chunk(4, 1)}, 1024);
  c.insert(1, 2, {chunk(4, 2)}, 1024);
  c.insert(2, 1, {chunk(4, 3)}, 1024);
  EXPECT_EQ((*c.find(1, 1))[0][0], 1);
  EXPECT_EQ((*c.find(1, 2))[0][0], 2);
  EXPECT_EQ((*c.find(2, 1))[0][0], 3);
}

TEST(PageDiffCache, InsertIsIdempotent) {
  PageDiffCache c;
  c.insert(1, 1, {chunk(8, 1)}, 1024);
  c.insert(1, 1, {chunk(8, 9)}, 1024);  // duplicate key: first copy wins
  EXPECT_EQ((*c.find(1, 1))[0][0], 1);
  EXPECT_EQ(c.bytes(), 8u);
}

TEST(PageDiffCache, FifoEvictionUnderBudget) {
  PageDiffCache c;
  c.insert(1, 1, {chunk(40, 1)}, 100);
  c.insert(1, 2, {chunk(40, 2)}, 100);
  EXPECT_EQ(c.bytes(), 80u);
  c.insert(1, 3, {chunk(40, 3)}, 100);  // evicts the oldest, (1,1)
  EXPECT_EQ(c.find(1, 1), nullptr);
  ASSERT_NE(c.find(1, 2), nullptr);
  ASSERT_NE(c.find(1, 3), nullptr);
  EXPECT_EQ(c.bytes(), 80u);
}

TEST(PageDiffCache, OversizedEntryIsNotCached) {
  PageDiffCache c;
  c.insert(1, 1, {chunk(50, 1)}, 100);
  c.insert(1, 2, {chunk(200, 2)}, 100);  // bigger than the whole budget
  EXPECT_EQ(c.find(1, 2), nullptr);
  ASSERT_NE(c.find(1, 1), nullptr);  // and nothing was evicted for it
  EXPECT_EQ(c.bytes(), 50u);
}

TEST(PageDiffCache, MultiChunkEntryCountsAllBytes) {
  PageDiffCache c;
  c.insert(3, 7, {chunk(10, 1), chunk(20, 2)}, 1024);
  EXPECT_EQ(c.bytes(), 30u);
  ASSERT_EQ(c.find(3, 7)->size(), 2u);
}

TEST(PageDiffCache, GcInsertIgnoresBudgetAndEviction) {
  PageDiffCache c;
  c.insert_gc(1, 1, {chunk(500, 1)});  // far beyond any budget given below
  ASSERT_NE(c.find(1, 1), nullptr);
  EXPECT_EQ(c.bytes(), 500u);
  // FIFO inserts under a budget the pinned entry already exceeds must not
  // evict it: only FIFO-ordered entries are eviction victims.
  c.insert(2, 1, {chunk(40, 2)}, 100);
  c.insert(2, 2, {chunk(40, 3)}, 100);
  c.insert(2, 3, {chunk(40, 4)}, 100);
  ASSERT_NE(c.find(1, 1), nullptr);  // pin survived
  EXPECT_EQ(c.find(2, 1), nullptr);  // FIFO entries evicted among themselves
}

TEST(PageDiffCache, GcInsertPromotesFifoEntryToPinned) {
  PageDiffCache c;
  c.insert(1, 1, {chunk(40, 1)}, 100);   // budgeted, evictable
  c.insert_gc(1, 1, {chunk(40, 1)});     // same key: must become a pin
  // Enough FIFO churn to evict anything still in eviction order.
  c.insert(2, 1, {chunk(40, 2)}, 100);
  c.insert(2, 2, {chunk(40, 3)}, 100);
  c.insert(2, 3, {chunk(40, 4)}, 100);
  ASSERT_NE(c.find(1, 1), nullptr);  // survived: promotion un-FIFO'd it
}

TEST(PageDiffCache, EraseReleasesEntry) {
  PageDiffCache c;
  c.insert_gc(1, 1, {chunk(100, 1)});
  c.insert(2, 1, {chunk(10, 2)}, 1024);
  c.erase(1, 1);
  c.erase(9, 9);  // absent: no-op
  EXPECT_EQ(c.find(1, 1), nullptr);
  EXPECT_EQ(c.bytes(), 10u);
  EXPECT_EQ(c.entries(), 1u);
  c.erase(2, 1);  // FIFO entry: stale key may linger in order, bytes must not
  EXPECT_EQ(c.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol level: the cache must be invisible with barrier GC off AND
// multi-page prefetch off (each of those is a deliberate consumer; see
// tmk_gc_test and tmk_prefetch_test).  With prefetch on, the cache is
// load-bearing even without GC: neighbor faults hit the prefetched entries.
// ---------------------------------------------------------------------------

DsmConfig cfg(std::uint32_t nodes, std::size_t cache_bytes,
              std::size_t prefetch = 0) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.diff_cache_bytes_per_page = cache_bytes;
  c.prefetch_pages = prefetch;
  c.gc_at_barriers = false;  // GC makes the cache load-bearing; see tmk_gc_test
  c.update_mode = false;     // so does the update protocol; see tmk_update_test
  c.time.cpu_scale = 0.0;  // measured host time out; virtual time deterministic
  return c;
}

void multi_writer_workload(Tmk& tmk) {
  gptr<std::uint64_t> page(kPageSize);  // 512 slots, one page, all writers
  const std::size_t base = tmk.id() * 32;
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::size_t k = 0; k < 32; ++k)
      page[base + k] = tmk.id() * 1000 + round * 100 + k;
    tmk.barrier();
    for (std::uint32_t n = 0; n < tmk.nprocs(); ++n)
      for (std::size_t k = 0; k < 32; ++k)
        ASSERT_EQ(page[static_cast<std::size_t>(n) * 32 + k],
                  n * 1000 + round * 100 + k);
    tmk.barrier();
  }
}

TEST(DiffCacheProtocol, SimulatedMetricsUnchangedByCache) {
  sim::TrafficSnapshot traffic_on, traffic_off;
  std::uint64_t vtime_on = 0, vtime_off = 0;
  DsmStatsSnapshot stats_on, stats_off;
  // Cross-run traffic identity is a perfect-wire property: injected faults
  // draw from per-link transmission counters, so two runs with different
  // message schedules fault differently and their totals diverge.  Pin the
  // wire; the chaos CI leg's robustness proof lives in the fuzzer matrix.
  {
    DsmConfig c = cfg(4, 16 * 1024);
    c.net_fault = {};
    c.net_reliable = false;
    DsmRuntime rt(c);
    rt.run_spmd(multi_writer_workload);
    traffic_on = rt.traffic();
    vtime_on = rt.virtual_time_ns();
    stats_on = rt.total_stats();
  }
  {
    DsmConfig c = cfg(4, 0);  // cache disabled
    c.net_fault = {};
    c.net_reliable = false;
    DsmRuntime rt(c);
    rt.run_spmd(multi_writer_workload);
    traffic_off = rt.traffic();
    vtime_off = rt.virtual_time_ns();
    stats_off = rt.total_stats();
  }
  // No notice is ever learned twice in the current protocol, so with both
  // deliberate consumers (GC, prefetch) off the cache must neither hit nor
  // change a single simulated metric.
  EXPECT_EQ(stats_on.diff_cache_hits, 0u);
  EXPECT_EQ(stats_on.diff_cache_bytes_saved, 0u);
  EXPECT_EQ(stats_on.prefetch_hits, 0u);
  EXPECT_EQ(traffic_on.messages, traffic_off.messages);
  EXPECT_EQ(traffic_on.payload_bytes, traffic_off.payload_bytes);
  EXPECT_EQ(traffic_on.wire_bytes, traffic_off.wire_bytes);
  EXPECT_EQ(stats_on.diff_fetches, stats_off.diff_fetches);
  EXPECT_EQ(stats_on.diffs_applied, stats_off.diffs_applied);
  // Virtual clocks are only loosely reproducible run-to-run (the compute and
  // service threads race additive against max-style advances on the same
  // clock), so compare with a tolerance rather than exactly.
  const double hi = static_cast<double>(std::max(vtime_on, vtime_off));
  const double lo = static_cast<double>(std::min(vtime_on, vtime_off));
  EXPECT_LT((hi - lo) / hi, 0.10);
}

// With multi-page prefetch enabled the zero-hit expectation flips even with
// GC off: every node's fault on the shared page cannot prefetch (single
// page), so spread the writers over several pages — neighbor faults must now
// be served from prefetched entries, with fewer messages and the same
// simulated work.
TEST(DiffCacheProtocol, PrefetchMakesTheCacheLoadBearingWithoutGc) {
  auto workload = [](Tmk& tmk) {
    constexpr std::size_t kPages = 8;
    constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);
    gptr<std::uint64_t> base(kPageSize);
    if (tmk.id() == 0)
      for (std::size_t pg = 0; pg < kPages; ++pg)
        for (std::size_t k = 0; k < 8; ++k)
          base[pg * kWordsPerPage + k] = pg * 100 + k;
    tmk.barrier();
    if (tmk.id() == 1)
      for (std::size_t pg = 0; pg < kPages; ++pg)
        for (std::size_t k = 0; k < 8; ++k)
          ASSERT_EQ(base[pg * kWordsPerPage + k], pg * 100 + k);
    tmk.barrier();
  };
  sim::TrafficSnapshot traffic_pf, traffic_off;
  DsmStatsSnapshot stats_pf;
  {
    DsmRuntime rt(cfg(2, 16 * 1024, /*prefetch=*/4));
    rt.run_spmd(workload);
    traffic_pf = rt.traffic();
    stats_pf = rt.total_stats();
  }
  {
    DsmRuntime rt(cfg(2, 16 * 1024, /*prefetch=*/0));
    rt.run_spmd(workload);
    traffic_off = rt.traffic();
  }
  EXPECT_GT(stats_pf.diff_cache_hits, 0u);
  EXPECT_EQ(stats_pf.diff_cache_hits, stats_pf.prefetch_hits);
  EXPECT_GT(stats_pf.diff_cache_bytes_saved, 0u);
  EXPECT_LT(traffic_pf.messages, traffic_off.messages);
}

// Budget eviction end to end: prefetched entries beyond
// diff_cache_bytes_per_page are FIFO-dropped and transparently refetched on
// the real fault — the counters prove both the drop and the refetch.  Node 0
// dirties page B across four intervals (~800 bytes each); a budget of 2000
// bytes keeps only the last two prefetched entries, so B's fault hits twice
// and refetches the two evicted intervals in one extra message.
TEST(DiffCacheProtocol, PrefetchedEntriesBeyondBudgetAreDroppedAndRefetched) {
  constexpr std::size_t kDirtyBytes = 800;
  constexpr int kIntervals = 4;
  DsmRuntime rt(cfg(2, /*cache_bytes=*/2000, /*prefetch=*/4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint8_t> a(kPageSize);              // page A: the faulting page
    gptr<std::uint8_t> b(kPageSize + kPageSize);  // page B: its neighbor
    for (int e = 0; e < kIntervals; ++e) {
      if (tmk.id() == 0) {
        if (e == 0) a[0] = 7;
        for (std::size_t i = 0; i < kDirtyBytes; ++i)
          b[i] = static_cast<std::uint8_t>(100 + e + i);
      }
      tmk.barrier();  // each epoch closes one interval with a ~800-byte diff
    }
    if (tmk.id() == 1) {
      EXPECT_EQ(a[0], 7);  // fault on A prefetches B's four intervals
      for (std::size_t i = 0; i < kDirtyBytes; ++i)
        EXPECT_EQ(b[i], static_cast<std::uint8_t>(100 + (kIntervals - 1) + i));
    }
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  // All four intervals were folded into A's request (one batched page)...
  EXPECT_EQ(s.prefetch_requests_batched, 1u);
  EXPECT_EQ(s.prefetch_pages_filled, 1u);
  // ...but only the last two fit the budget: B's fault hit those two and
  // refetched the evicted two with one more kDiffRequest.
  EXPECT_EQ(s.prefetch_hits, 2u);
  EXPECT_EQ(s.diff_cache_hits, 2u);
  EXPECT_EQ(rt.traffic().messages_by_type[kDiffRequest], 2u);
}

}  // namespace
}  // namespace now::tmk
