// Direct unit tests for the compute/service rendezvous primitives in
// tmk/rpc.h.  These classes carry every blocking protocol interaction (page
// fetches, lock grants, fork/join) and, since crash injection, the poison
// path that unwinds a compute thread when a peer dies — worth pinning at
// this level because the integration tests only ever see the happy orderings
// their schedules happen to produce.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "tmk/rpc.h"

namespace now::tmk {
namespace {

sim::Message msg(std::uint16_t type, std::uint64_t tag) {
  sim::Message m;
  m.type = type;
  m.send_ts_ns = tag;  // payload-free marker for assertions
  return m;
}

TEST(RpcClient, SeveralOutstandingFulfilledOutOfOrder) {
  RpcClient rpc;
  const std::uint64_t a = rpc.begin();
  const std::uint64_t b = rpc.begin();
  const std::uint64_t c = rpc.begin();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  // A page fetch requests diffs from every writer in parallel; replies land
  // in whatever order the wire produces.
  rpc.fulfill(c, msg(7, 300));
  rpc.fulfill(a, msg(7, 100));
  rpc.fulfill(b, msg(7, 200));
  EXPECT_EQ(rpc.wait(b).send_ts_ns, 200u);
  EXPECT_EQ(rpc.wait(a).send_ts_ns, 100u);
  EXPECT_EQ(rpc.wait(c).send_ts_ns, 300u);
}

TEST(RpcClient, WaitBlocksUntilFulfilled) {
  RpcClient rpc;
  const std::uint64_t seq = rpc.begin();
  std::thread service([&] { rpc.fulfill(seq, msg(3, 42)); });
  EXPECT_EQ(rpc.wait(seq).send_ts_ns, 42u);
  service.join();
}

TEST(RpcClient, PoisonWakesBlockedWaiterWithVictim) {
  RpcClient rpc;
  const std::uint64_t seq = rpc.begin();
  std::thread service([&] { rpc.poison(5); });
  try {
    rpc.wait(seq);
    FAIL() << "poisoned wait returned";
  } catch (const NodeDownError& e) {
    EXPECT_EQ(e.victim, 5u);
  }
  service.join();
}

TEST(RpcClient, PoisonBeforeWaitAndBeforeBegin) {
  RpcClient rpc;
  const std::uint64_t seq = rpc.begin();
  rpc.poison(2);
  // The pending request fails...
  EXPECT_THROW(rpc.wait(seq), NodeDownError);
  // ...and no new rendezvous can start: the reply could never arrive.
  EXPECT_THROW(rpc.begin(), NodeDownError);
}

TEST(RpcClient, FulfilledReplySurvivesPoison) {
  // A reply that already landed is valid data; delivering it (instead of
  // discarding and throwing) keeps the survivor's state closer to the
  // crash-free schedule during the unwind.
  RpcClient rpc;
  const std::uint64_t seq = rpc.begin();
  rpc.fulfill(seq, msg(9, 77));
  rpc.poison(1);
  EXPECT_EQ(rpc.wait(seq).send_ts_ns, 77u);
}

TEST(WaitSlot, DeliversInFifoOrder) {
  WaitSlot slot;
  slot.post(msg(1, 10));
  slot.post(msg(1, 20));
  slot.post(msg(1, 30));
  EXPECT_EQ(slot.take().send_ts_ns, 10u);
  EXPECT_EQ(slot.take().send_ts_ns, 20u);
  EXPECT_EQ(slot.take().send_ts_ns, 30u);
}

TEST(WaitSlot, TakeBlocksUntilPosted) {
  WaitSlot slot;
  std::thread service([&] { slot.post(msg(2, 55)); });
  EXPECT_EQ(slot.take().send_ts_ns, 55u);
  service.join();
}

TEST(WaitSlot, PoisonWakesBlockedTaker) {
  WaitSlot slot;
  std::thread service([&] { slot.poison(3); });
  try {
    slot.take();
    FAIL() << "poisoned take returned";
  } catch (const NodeDownError& e) {
    EXPECT_EQ(e.victim, 3u);
  }
  service.join();
}

TEST(WaitSlot, QueuedMessagesDrainBeforePoisonThrows) {
  WaitSlot slot;
  slot.post(msg(4, 1));
  slot.post(msg(4, 2));
  slot.poison(0);
  EXPECT_EQ(slot.take().send_ts_ns, 1u);
  EXPECT_EQ(slot.take().send_ts_ns, 2u);
  EXPECT_THROW(slot.take(), NodeDownError);
}

TEST(RpcClient, ManyThreadsEachGetTheirOwnReply) {
  RpcClient rpc;
  constexpr int kN = 16;
  std::vector<std::uint64_t> seqs(kN);
  for (int i = 0; i < kN; ++i) seqs[i] = rpc.begin();
  std::vector<std::thread> waiters;
  std::vector<std::uint64_t> got(kN, 0);
  for (int i = 0; i < kN; ++i)
    waiters.emplace_back([&, i] { got[i] = rpc.wait(seqs[i]).send_ts_ns; });
  // Reverse order: every waiter must match on seq, not arrival order.
  for (int i = kN - 1; i >= 0; --i) rpc.fulfill(seqs[i], msg(6, 1000 + i));
  for (auto& t : waiters) t.join();
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], 1000u + i);
}

}  // namespace
}  // namespace now::tmk
