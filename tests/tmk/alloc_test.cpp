#include <gtest/gtest.h>

#include "tmk/runtime.h"

namespace now::tmk {
namespace {

DsmConfig tiny_config(std::uint32_t nodes = 1, std::size_t heap = 1 << 20) {
  DsmConfig cfg;
  cfg.num_nodes = nodes;
  cfg.heap_bytes = heap;
  return cfg;
}

TEST(Allocator, OffsetsStartAfterRootPage) {
  DsmRuntime rt(tiny_config());
  EXPECT_GE(rt.allocator_alloc(16, 64), DsmRuntime::kHeapStart);
}

TEST(Allocator, AllocationsDoNotOverlap) {
  DsmRuntime rt(tiny_config());
  const auto a = rt.allocator_alloc(100, 64);
  const auto b = rt.allocator_alloc(100, 64);
  EXPECT_GE(b, a + 100);
}

TEST(Allocator, AlignmentHonored) {
  DsmRuntime rt(tiny_config());
  rt.allocator_alloc(1, 64);
  const auto a = rt.allocator_alloc(16, 4096);
  EXPECT_EQ(a % 4096, 0u);
}

TEST(Allocator, FreeEnablesReuse) {
  DsmRuntime rt(tiny_config());
  const auto a = rt.allocator_alloc(256, 64);
  rt.allocator_free(a);
  const auto b = rt.allocator_alloc(256, 64);
  EXPECT_EQ(a, b);
}

TEST(AllocatorDeathTest, DoubleFreeAborts) {
  DsmRuntime rt(tiny_config());
  const auto a = rt.allocator_alloc(64, 64);
  rt.allocator_free(a);
  EXPECT_DEATH(rt.allocator_free(a), "unallocated");
}

TEST(AllocatorDeathTest, ExhaustionAborts) {
  DsmRuntime rt(tiny_config(1, 1 << 20));
  EXPECT_DEATH(rt.allocator_alloc((1 << 20) + 4096, 64), "exhausted");
}

TEST(Allocator, RpcPathFromNodeWorks) {
  DsmRuntime rt(tiny_config(2, 1 << 20));
  rt.run_spmd([](Tmk& tmk) {
    if (tmk.id() == 1) {
      auto p = tmk.alloc(128);
      EXPECT_FALSE(p.is_null());
      tmk.free(p);
    }
  });
}

}  // namespace
}  // namespace now::tmk
