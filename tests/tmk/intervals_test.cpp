#include "tmk/intervals.h"

#include <gtest/gtest.h>

namespace now::tmk {
namespace {

IntervalRecord rec(std::uint32_t node, std::uint32_t seq, std::uint64_t lamport,
                   std::vector<PageIndex> pages = {}) {
  IntervalRecord r;
  r.node = node;
  r.seq = seq;
  r.lamport = lamport;
  r.pages = std::move(pages);
  return r;
}

IntervalRecordPtr recp(std::uint32_t node, std::uint32_t seq, std::uint64_t lamport,
                       std::vector<PageIndex> pages = {}) {
  return std::make_shared<const IntervalRecord>(rec(node, seq, lamport, std::move(pages)));
}

TEST(Intervals, RecordSerializationRoundTrips) {
  ByteWriter w;
  rec(3, 7, 99, {1, 2, 300}).serialize(w);
  auto buf = w.take();
  ByteReader r(buf);
  auto out = IntervalRecord::deserialize(r);
  EXPECT_EQ(out.node, 3u);
  EXPECT_EQ(out.seq, 7u);
  EXPECT_EQ(out.lamport, 99u);
  EXPECT_EQ(out.pages, (std::vector<PageIndex>{1, 2, 300}));
}

TEST(Intervals, VtStartsAtZero) {
  KnowledgeLog log(4);
  EXPECT_EQ(log.vt(), VectorTime(4, 0));
}

TEST(Intervals, AppendOwnAdvancesVt) {
  KnowledgeLog log(2);
  log.append_own(rec(0, 1, 5));
  log.append_own(rec(0, 2, 6));
  EXPECT_EQ(log.seq_of(0), 2u);
  EXPECT_EQ(log.seq_of(1), 0u);
  EXPECT_EQ(log.max_lamport(), 6u);
}

TEST(IntervalsDeathTest, AppendOwnMustBeDense) {
  KnowledgeLog log(2);
  log.append_own(rec(0, 1, 1));
  EXPECT_DEATH(log.append_own(rec(0, 3, 2)), "dense");
}

TEST(Intervals, MergeReturnsOnlyFreshRecords) {
  KnowledgeLog log(3);
  auto fresh = log.merge({recp(1, 1, 10), recp(1, 2, 11)});
  EXPECT_EQ(fresh.size(), 2u);
  // Re-merging the same records (arriving via another path) yields nothing.
  fresh = log.merge({recp(1, 1, 10), recp(1, 2, 11)});
  EXPECT_TRUE(fresh.empty());
  // A partial overlap yields only the new suffix.
  fresh = log.merge({recp(1, 2, 11), recp(1, 3, 12)});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0]->seq, 3u);
}

TEST(IntervalsDeathTest, MergeRejectsGaps) {
  KnowledgeLog log(2);
  EXPECT_DEATH(log.merge({recp(1, 2, 10)}), "gap");
}

TEST(Intervals, DeltaSinceIsSuffixPerOrigin) {
  KnowledgeLog log(2);
  log.append_own(rec(0, 1, 1));
  log.append_own(rec(0, 2, 2));
  log.merge({recp(1, 1, 3)});
  auto delta = log.delta_since({1, 0});
  ASSERT_EQ(delta.size(), 2u);  // own seq 2 + node1 seq 1
  EXPECT_EQ(delta[0]->node, 0u);
  EXPECT_EQ(delta[0]->seq, 2u);
  EXPECT_EQ(delta[1]->node, 1u);
  EXPECT_EQ(delta[1]->seq, 1u);
}

TEST(Intervals, DeltaSinceFullVtIsEmpty) {
  KnowledgeLog log(2);
  log.append_own(rec(0, 1, 1));
  EXPECT_TRUE(log.delta_since(log.vt()).empty());
}

TEST(Intervals, RecordsSerializationRoundTrips) {
  ByteWriter w;
  KnowledgeLog::serialize_records(w, {recp(0, 1, 1, {4}), recp(1, 1, 2, {9, 10})});
  auto buf = w.take();
  ByteReader r(buf);
  auto out = KnowledgeLog::deserialize_records(r);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1]->pages, (std::vector<PageIndex>{9, 10}));
}

TEST(Intervals, VtSerializationRoundTrips) {
  ByteWriter w;
  KnowledgeLog::serialize_vt(w, {3, 0, 7});
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(KnowledgeLog::deserialize_vt(r), (VectorTime{3, 0, 7}));
}

TEST(Intervals, MergeAndDeltaShareRecordStorage) {
  // The zero-copy contract: merging and delta extraction pass the same
  // immutable record around instead of duplicating its page vector.
  KnowledgeLog log(2);
  auto r = recp(1, 1, 7, {10, 11, 12});
  auto fresh = log.merge({r});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].get(), r.get());
  auto delta = log.delta_since({0, 0});
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].get(), r.get());
  EXPECT_EQ(log.records_of(1)[0].get(), r.get());
}

TEST(Intervals, SerializedSizeMatchesWireBytes) {
  const std::vector<IntervalRecordPtr> recs = {recp(0, 1, 1, {4}),
                                               recp(1, 1, 2, {9, 10, 11})};
  ByteWriter w;
  KnowledgeLog::serialize_records(w, recs);
  EXPECT_EQ(w.size(), KnowledgeLog::records_serialized_size(recs));
  EXPECT_EQ(recs[1]->serialized_size(), 4u + 4u + 8u + 4u + 4u * 3u);
}

TEST(Intervals, GcToDropsPrefixAndKeepsSuffix) {
  KnowledgeLog log(2);
  for (std::uint32_t s = 1; s <= 5; ++s) log.append_own(rec(0, s, s));
  log.merge({recp(1, 1, 10), recp(1, 2, 11)});
  EXPECT_EQ(log.gc_to({3, 2}), 5u);  // 3 of origin 0, 2 of origin 1
  EXPECT_EQ(log.gc_floor(0), 3u);
  EXPECT_EQ(log.gc_floor(1), 2u);
  EXPECT_EQ(log.total_records(), 2u);
  ASSERT_EQ(log.records_of(0).size(), 2u);
  EXPECT_EQ(log.records_of(0)[0]->seq, 4u);
  // The suffix above the floor is still extractable.
  auto delta = log.delta_since({3, 2});
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0]->seq, 4u);
}

// Regression: an origin whose entire log was reclaimed is still known up to
// the floor — seq_of must report the floor, not 0, or sequence arithmetic
// (delta extraction, merge contiguity) on the sparse log goes wrong.
TEST(Intervals, SeqOfReturnsFloorWhenFullyReclaimed) {
  KnowledgeLog log(2);
  log.append_own(rec(0, 1, 1));
  log.append_own(rec(0, 2, 2));
  EXPECT_EQ(log.gc_to({2, 0}), 2u);
  EXPECT_EQ(log.seq_of(0), 2u);
  EXPECT_EQ(log.vt(), (VectorTime{2, 0}));
  EXPECT_TRUE(log.delta_since({2, 0}).empty());
  // Appending continues the dense sequence from the floor.
  log.append_own(rec(0, 3, 3));
  EXPECT_EQ(log.seq_of(0), 3u);
}

TEST(Intervals, GcFloorMayExceedHeldRecords) {
  // A manager log only holds records routed through it; the barrier floor
  // can cover records it never saw.  After GC it acts as if it knew them:
  // merges accept the suffix starting at floor+1.
  KnowledgeLog log(2);
  log.merge({recp(1, 1, 5)});
  EXPECT_EQ(log.gc_to({4, 3}), 1u);
  EXPECT_EQ(log.seq_of(0), 4u);
  EXPECT_EQ(log.seq_of(1), 3u);
  auto fresh = log.merge({recp(1, 4, 9)});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(log.seq_of(1), 4u);
}

TEST(Intervals, GcToIsMonotoneAndIdempotent) {
  KnowledgeLog log(1);
  for (std::uint32_t s = 1; s <= 4; ++s) log.append_own(rec(0, s, s));
  EXPECT_EQ(log.gc_to({3}), 3u);
  EXPECT_EQ(log.gc_to({3}), 0u);  // idempotent
  EXPECT_EQ(log.gc_to({2}), 0u);  // floors never move backwards
  EXPECT_EQ(log.gc_floor(0), 3u);
  EXPECT_EQ(log.seq_of(0), 4u);
}

TEST(IntervalsDeathTest, DeltaBelowFloorIsRejected) {
  KnowledgeLog log(2);
  for (std::uint32_t s = 1; s <= 3; ++s) log.append_own(rec(0, s, s));
  log.gc_to({2, 0});
  EXPECT_DEATH(log.delta_since({1, 0}), "reclaimed");
}

TEST(Intervals, TransitiveKnowledgeFlow) {
  // A learns B's records, then forwards them to C in its delta: the lazy RC
  // requirement that consistency information flows along sync chains.
  KnowledgeLog a(3), c(3);
  a.append_own(rec(0, 1, 1, {5}));
  a.merge({recp(1, 1, 2, {6})});
  auto delta = a.delta_since(c.vt());
  auto fresh = c.merge(delta);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(c.seq_of(0), 1u);
  EXPECT_EQ(c.seq_of(1), 1u);
}

}  // namespace
}  // namespace now::tmk
