#include "tmk/gptr.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace now::tmk {
namespace {

// Bind the "region" to a local buffer so gptr arithmetic is testable without
// a runtime.
class GptrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    buf_.resize(4096);
    detail::region_base() = buf_.data();
  }
  void TearDown() override { detail::region_base() = nullptr; }
  std::vector<std::uint8_t> buf_;
};

TEST_F(GptrTest, ResolvesAgainstThreadRegion) {
  gptr<std::uint32_t> p(16);
  *p = 0xdeadbeef;
  EXPECT_EQ(*reinterpret_cast<std::uint32_t*>(buf_.data() + 16), 0xdeadbeefu);
}

TEST_F(GptrTest, IndexingScalesByElementSize) {
  gptr<std::uint64_t> p(0);
  p[3] = 42;
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(buf_.data() + 24), 42u);
}

TEST_F(GptrTest, ArithmeticMatchesPointerArithmetic) {
  gptr<double> p(64);
  gptr<double> q = p + 5;
  EXPECT_EQ(q.offset(), 64u + 5 * sizeof(double));
  q += -2;
  EXPECT_EQ(q.offset(), 64u + 3 * sizeof(double));
}

TEST_F(GptrTest, NullIsDistinguishable) {
  auto n = gptr<int>::null();
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(static_cast<bool>(n));
  gptr<int> p(0);
  EXPECT_FALSE(p.is_null());
  EXPECT_NE(n, p);
}

TEST_F(GptrTest, CastPreservesOffset) {
  gptr<std::uint8_t> p(128);
  auto q = p.cast<std::uint64_t>();
  EXPECT_EQ(q.offset(), 128u);
}

TEST_F(GptrTest, StorableInsideSharedMemory) {
  // gptrs are plain offsets, so a gptr written through one region resolves
  // correctly when read through another (different base, same offset).
  gptr<gptr<std::uint32_t>> slot(8);
  *slot = gptr<std::uint32_t>(256);
  std::vector<std::uint8_t> other(4096);
  // Copy the "shared page" to the other node's region, as diffs would.
  other = buf_;
  detail::region_base() = other.data();
  gptr<std::uint32_t> read = *slot;
  EXPECT_EQ(read.offset(), 256u);
  *read = 7;
  EXPECT_EQ(*reinterpret_cast<std::uint32_t*>(other.data() + 256), 7u);
}

TEST_F(GptrTest, MemberAccessThroughArrow) {
  struct Pair {
    std::uint32_t a, b;
  };
  gptr<Pair> p(32);
  p->a = 1;
  p->b = 2;
  EXPECT_EQ(p->a + p->b, 3u);
}

}  // namespace
}  // namespace now::tmk
