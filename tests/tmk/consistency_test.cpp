// Release-consistency protocol tests: visibility across barriers, the
// multiple-writer protocol under false sharing, cold zero-fills, and
// write-notice bookkeeping.
#include <gtest/gtest.h>

#include <numeric>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes, std::size_t heap = 4 << 20) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = heap;
  return c;
}

TEST(Consistency, ColdReadOfUntouchedPageIsZeroAndLocal) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk&) {
    gptr<std::uint64_t> p(kPageSize * 4);
    EXPECT_EQ(*p, 0u);
  });
  auto s = rt.total_stats();
  EXPECT_EQ(s.diff_fetches, 0u);
  EXPECT_EQ(s.cold_zero_fills, 2u);
}

TEST(Consistency, WritesVisibleAfterBarrier) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    if (tmk.id() == 0) *p = 12345;
    tmk.barrier();
    EXPECT_EQ(*p, 12345u);
  });
  EXPECT_GE(rt.total_stats().diff_fetches, 1u);
}

TEST(Consistency, FalseSharingMergedByMultipleWriterProtocol) {
  // All nodes write disjoint slots of ONE page between two barriers; after
  // the second barrier everyone sees every write.
  for (std::uint32_t n : {2u, 4u, 8u}) {
    DsmRuntime rt(cfg(n));
    rt.run_spmd([n](Tmk& tmk) {
      gptr<std::uint64_t> slots(0 + kPageSize);  // one page, 512 slots
      slots[tmk.id()] = 100 + tmk.id();
      tmk.barrier();
      std::uint64_t sum = 0;
      for (std::uint32_t i = 0; i < n; ++i) sum += slots[i];
      std::uint64_t want = 0;
      for (std::uint32_t i = 0; i < n; ++i) want += 100 + i;
      EXPECT_EQ(sum, want) << "nodes=" << n;
    });
  }
}

TEST(Consistency, RepeatedWritesAccumulateAcrossIntervals) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    for (int step = 0; step < 5; ++step) {
      if (tmk.id() == 0) p[static_cast<std::size_t>(step)] = static_cast<std::uint64_t>(step + 1);
      tmk.barrier();
      for (int k = 0; k <= step; ++k)
        EXPECT_EQ(p[static_cast<std::size_t>(k)], static_cast<std::uint64_t>(k + 1))
            << "step " << step;
      tmk.barrier();
    }
  });
}

TEST(Consistency, AlternatingWritersSeeEachOther) {
  // Ping-pong ownership of a single page via barriers.
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(2 * kPageSize);
    for (int round = 0; round < 6; ++round) {
      if (static_cast<int>(tmk.id()) == round % 2) p[0] = static_cast<std::uint64_t>(round);
      tmk.barrier();
      EXPECT_EQ(p[0], static_cast<std::uint64_t>(round));
      tmk.barrier();
    }
  });
}

TEST(Consistency, ManyPagesBulkTransfer) {
  constexpr std::size_t kPages = 32;
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint8_t> base(kPageSize);
    if (tmk.id() == 0)
      for (std::size_t i = 0; i < kPages * kPageSize; ++i)
        base[i] = static_cast<std::uint8_t>(i * 31 + 7);
    tmk.barrier();
    // Every node verifies a sample of each page.
    for (std::size_t pg = 0; pg < kPages; ++pg) {
      const std::size_t i = pg * kPageSize + (pg * 97) % kPageSize;
      EXPECT_EQ(base[i], static_cast<std::uint8_t>(i * 31 + 7));
    }
  });
}

TEST(Consistency, DiffsOnlyShipModifiedBytes) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint8_t> p(kPageSize);
    if (tmk.id() == 0)
      for (int i = 0; i < 16; ++i) p[static_cast<std::size_t>(i)] = 0xee;
    tmk.barrier();
    EXPECT_EQ(p[15], 0xee);
  });
  const auto s = rt.total_stats();
  EXPECT_GE(s.diffs_created, 1u);
  // 16 modified bytes must not balloon into a whole-page transfer.
  EXPECT_LT(s.diff_bytes_created, 128u);
}

TEST(Consistency, WriteAfterReadUpgradesWithTwin) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    if (tmk.id() == 0) *p = 1;
    tmk.barrier();
    if (tmk.id() == 1) {
      EXPECT_EQ(*p, 1u);  // read fault, page becomes read-only
      *p = 2;             // write fault upgrades with a twin
    }
    tmk.barrier();
    EXPECT_EQ(*p, 2u);
  });
  EXPECT_GE(rt.total_stats().twins_created, 2u);
}

TEST(Consistency, TransitiveVisibilityThroughChainOfBarriers) {
  // 0 writes, 1 reads+writes, 2 reads both — notices must flow transitively.
  DsmRuntime rt(cfg(3));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> a(kPageSize), b(2 * kPageSize);
    if (tmk.id() == 0) *a = 10;
    tmk.barrier();
    if (tmk.id() == 1) *b = *a + 5;
    tmk.barrier();
    if (tmk.id() == 2) {
      EXPECT_EQ(*a, 10u);
      EXPECT_EQ(*b, 15u);
    }
  });
}

// Property sweep: random disjoint writers over several pages and epochs; the
// final contents must match a sequential replay.
struct RandomParam {
  std::uint32_t nodes;
  std::uint64_t seed;
};
class ConsistencyRandom
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(ConsistencyRandom, DisjointRandomWritesConverge) {
  const std::uint32_t nodes = std::get<0>(GetParam());
  const std::uint64_t seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  constexpr std::size_t kWords = 2048;  // 4 pages of u64
  std::vector<std::uint64_t> expect(kWords, 0);
  // Deterministic assignment: word w belongs to node w % nodes; epoch e
  // writes value seed*1e6 + e*1000 + w into a pseudo-random subset.
  for (int e = 0; e < 4; ++e)
    for (std::size_t w_i = 0; w_i < kWords; ++w_i)
      if ((w_i * 2654435761u + static_cast<std::size_t>(e) + seed) % 3 == 0)
        expect[w_i] = seed * 1000000 + static_cast<std::uint64_t>(e) * 1000 + w_i;

  DsmRuntime rt(cfg(nodes));
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> base(kPageSize);
    for (int e = 0; e < 4; ++e) {
      for (std::size_t w_i = 0; w_i < kWords; ++w_i) {
        if (w_i % nodes != tmk.id()) continue;
        if ((w_i * 2654435761u + static_cast<std::size_t>(e) + seed) % 3 == 0)
          base[w_i] = seed * 1000000 + static_cast<std::uint64_t>(e) * 1000 + w_i;
      }
      tmk.barrier();
    }
    for (std::size_t w_i = 0; w_i < kWords; ++w_i)
      ASSERT_EQ(base[w_i], expect[w_i]) << "word " << w_i;
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyRandom,
                         ::testing::Combine(::testing::Values(2u, 4u, 8u),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace now::tmk
