// Ground-truth checks for Node::meta_footprint() — the ledger the on-demand
// GC ceiling bounds.  Every field is cross-checked against an independent
// source of truth: the cache's own per-instance counters, wire-format sizes
// computed from IntervalRecord::serialized_size(), and the protocol stats
// that count the same bytes on a different code path (materialize_twin adds
// a diff's size to both stats_.diff_bytes_created and the store footprint).
// A drift between the O(1) ceiling metric's mirrors and the structures they
// mirror would make the ceiling fire late (leak) or early (GC storm); these
// tests pin the accounting exactly.
#include <gtest/gtest.h>

#include <atomic>

#include "tmk/page.h"
#include "tmk/tmk.h"

namespace now::tmk {
namespace {

constexpr std::size_t kWpp = kPageSize / sizeof(std::uint64_t);

// A word value whose 8 bytes all change when `tag` changes: each byte equals
// tag (mod 256).  Writing these keeps diff chunks exactly predictable — all
// bytes of a written word differ from the twin, so N contiguous words always
// produce one chunk of 4 + 8*N bytes (u16 offset + u16 length + payload).
std::uint64_t word_of(std::uint64_t tag) {
  return (tag % 255 + 1) * 0x0101010101010101ULL;
}

DsmConfig precise_cfg(std::uint32_t nodes) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.gc_at_barriers = false;
  // Pin every protocol that could park bytes in the requester-side cache:
  // the exact-count assertions below must hold under any CI env default.
  c.prefetch_pages = 0;
  c.update_mode = false;
  c.lock_push_bytes = 0;
  c.meta_ceiling_bytes = 0;
  c.ckpt_every = 0;  // ckpt passes apply pinned backlogs early
  c.time.cpu_scale = 0.0;
  return c;
}

// ---------------------------------------------------------------------------
// The node-wide atomic that PageDiffCache mirrors into must equal the sum of
// the caches' own bytes() across every mutation path: budgeted insert, FIFO
// eviction inside insert, pinned insert_gc, in-place pin promotion, erase,
// and floor pruning.  Two caches bound to one total model a node's per-page
// caches feeding one ceiling metric.
// ---------------------------------------------------------------------------
TEST(MetaFootprint, CacheMirrorTracksEveryMutationPath) {
  std::atomic<std::size_t> total{0};
  PageDiffCache a, b;
  a.bind_total(&total);
  b.bind_total(&total);
  auto sum = [&] { return a.bytes() + b.bytes(); };

  constexpr std::size_t kBudget = 400;
  EXPECT_TRUE(a.insert(1, 1, {DiffBytes(40, 1)}, kBudget));
  EXPECT_TRUE(b.insert(2, 1, {DiffBytes(60, 2)}, kBudget));
  EXPECT_EQ(total.load(), 100u);
  EXPECT_EQ(total.load(), sum());

  // Pinned insert bypasses the budget; the mirror must still see it.
  a.insert_gc(3, 1, {DiffBytes(300, 3)});
  EXPECT_EQ(total.load(), 400u);
  EXPECT_EQ(total.load(), sum());

  // This insert forces the eviction loop: (1,1) is the droppable victim.
  // The mirror must account both the eviction's subtract and the new add.
  EXPECT_TRUE(a.insert(1, 2, {DiffBytes(80, 4)}, kBudget));
  EXPECT_EQ(a.find(1, 1), nullptr);
  EXPECT_EQ(total.load(), sum());

  // Promotion to pinned reclassifies the entry but moves no bytes.
  const std::size_t before_pin = total.load();
  EXPECT_TRUE(a.pin_existing(1, 2));
  EXPECT_EQ(total.load(), before_pin);
  EXPECT_EQ(total.load(), sum());

  // Erase releases pinned bytes from the mirror too.
  a.erase(3, 1);
  EXPECT_EQ(total.load(), sum());

  // Floor pruning drops covered droppables (and skips pins) in both caches.
  EXPECT_TRUE(b.insert(2, 2, {DiffBytes(50, 5)}, kBudget));
  VectorTime floor(4, 0);
  floor[1] = 5;  // covers a's (1,2) — pinned, exempt
  floor[2] = 5;  // covers b's (2,1) and (2,2) — dropped
  std::size_t pruned_bytes = 0;
  EXPECT_EQ(a.prune_below(floor, &pruned_bytes), 0u);
  EXPECT_EQ(b.prune_below(floor, &pruned_bytes), 2u);
  EXPECT_EQ(pruned_bytes, 110u);
  EXPECT_EQ(total.load(), sum());
  ASSERT_NE(a.find(1, 2), nullptr);

  a.erase(1, 2);
  EXPECT_EQ(total.load(), 0u);
  EXPECT_EQ(sum(), 0u);
}

// ---------------------------------------------------------------------------
// One interval, one diff, exact byte counts.  Node 1 writes 16 contiguous
// words; node 0's read after the barrier forces the diff to materialize.
// Footprint deltas must match wire-format arithmetic: the interval record is
// serialized_size() for one page, and the diff is one chunk of 4 + 128
// bytes, counted identically by the store footprint and diff_bytes_created.
// ---------------------------------------------------------------------------
TEST(MetaFootprint, SingleIntervalExactByteAccounting) {
  constexpr std::uint32_t kNodes = 2;
  std::vector<Node::MetaFootprint> base(kNodes), fin(kNodes);
  std::vector<DsmStatsSnapshot> sbase(kNodes), sfin(kNodes);
  DsmRuntime rt(precise_cfg(kNodes));
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> state(kWpp);
    const std::uint32_t id = tmk.id();
    tmk.barrier();
    base[id] = tmk.node.meta_footprint();
    sbase[id] = tmk.node.stats().snapshot();
    if (id == 1) {
      for (std::size_t w = 0; w < 16; ++w) state[w] = word_of(w + 1);
    }
    tmk.barrier();
    if (id == 0) {
      for (std::size_t w = 0; w < 16; ++w)
        EXPECT_EQ(state[w], word_of(w + 1)) << "word " << w;
    }
    tmk.barrier();
    fin[id] = tmk.node.meta_footprint();
    sfin[id] = tmk.node.stats().snapshot();
  });

  // Expected sizes derived from the formats themselves, not hardcoded.
  IntervalRecord rec;
  rec.pages = {0};
  const std::size_t kRecordBytes = rec.serialized_size();
  const std::size_t kDiffBytes = 4 + 16 * sizeof(std::uint64_t);  // one chunk

  for (std::uint32_t i = 0; i < kNodes; ++i) {
    // Both nodes learn exactly one new interval record (node 1's).
    EXPECT_EQ(fin[i].log_records - base[i].log_records, 1u) << "node " << i;
    EXPECT_EQ(fin[i].log_bytes - base[i].log_bytes, kRecordBytes)
        << "node " << i;
    // No prefetch, no update pushes, no lock pushes, no GC pins: the
    // requester-side cache must stay untouched on both nodes.
    EXPECT_EQ(fin[i].diff_cache_bytes, base[i].diff_cache_bytes);
    EXPECT_EQ(fin[i].diff_cache_pinned_bytes, base[i].diff_cache_pinned_bytes);
    EXPECT_EQ(fin[i].relay_bytes, base[i].relay_bytes);
  }

  // The writer's store holds exactly the one materialized diff, and the
  // stats counted the same bytes on the materialize path.
  EXPECT_EQ(fin[1].diff_store_entries - base[1].diff_store_entries, 1u);
  EXPECT_EQ(fin[1].diff_store_bytes - base[1].diff_store_bytes, kDiffBytes);
  EXPECT_EQ(sfin[1].diffs_created - sbase[1].diffs_created, 1u);
  EXPECT_EQ(sfin[1].diff_bytes_created - sbase[1].diff_bytes_created,
            kDiffBytes);
  // The reader materialized nothing.
  EXPECT_EQ(fin[0].diff_store_bytes, base[0].diff_store_bytes);
  EXPECT_EQ(sfin[0].diff_bytes_created, sbase[0].diff_bytes_created);
}

// ---------------------------------------------------------------------------
// The ledger stays exact across epochs and writers.  Every epoch each of 4
// nodes rewrites 8 words in each of its 2 own pages and its neighbor reads
// them (forcing materialization); after E epochs every field must equal the
// closed-form count: 4E records of 2 pages each in every log, 2E diffs of
// one 68-byte chunk in every writer's store, stats in lockstep.
// ---------------------------------------------------------------------------
TEST(MetaFootprint, MultiEpochLedgerMatchesClosedForm) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::size_t kEpochs = 6;
  std::vector<Node::MetaFootprint> base(kNodes), fin(kNodes);
  std::vector<DsmStatsSnapshot> sbase(kNodes), sfin(kNodes);
  DsmRuntime rt(precise_cfg(kNodes));
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> state(2 * kNodes * kWpp);
    const std::uint32_t id = tmk.id();
    tmk.barrier();
    base[id] = tmk.node.meta_footprint();
    sbase[id] = tmk.node.stats().snapshot();
    for (std::size_t e = 0; e < kEpochs; ++e) {
      for (std::size_t pg = 0; pg < 2; ++pg)
        for (std::size_t w = 0; w < 8; ++w)
          state[(2 * id + pg) * kWpp + w] = word_of(e * kNodes + id + 1);
      tmk.barrier();
      const std::uint32_t left = (id + kNodes - 1) % kNodes;
      for (std::size_t pg = 0; pg < 2; ++pg)
        EXPECT_EQ(state[(2 * left + pg) * kWpp], word_of(e * kNodes + left + 1))
            << "epoch " << e << " page " << pg;
      tmk.barrier();
    }
    fin[id] = tmk.node.meta_footprint();
    sfin[id] = tmk.node.stats().snapshot();
  });

  IntervalRecord rec;
  rec.pages = {0, 1};
  const std::size_t kRecordBytes = rec.serialized_size();
  const std::size_t kDiffBytes = 4 + 8 * sizeof(std::uint64_t);  // one chunk

  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(fin[i].log_records - base[i].log_records, kNodes * kEpochs)
        << "node " << i;
    EXPECT_EQ(fin[i].log_bytes - base[i].log_bytes,
              kNodes * kEpochs * kRecordBytes)
        << "node " << i;
    EXPECT_EQ(fin[i].diff_store_entries - base[i].diff_store_entries,
              2 * kEpochs)
        << "node " << i;
    EXPECT_EQ(fin[i].diff_store_bytes - base[i].diff_store_bytes,
              2 * kEpochs * kDiffBytes)
        << "node " << i;
    EXPECT_EQ(sfin[i].diff_bytes_created - sbase[i].diff_bytes_created,
              2 * kEpochs * kDiffBytes)
        << "node " << i;
    EXPECT_EQ(fin[i].diff_cache_bytes, base[i].diff_cache_bytes) << "node " << i;
    // The composite metric is exactly its parts — the same identity
    // meta_bytes() relies on for the O(1) ceiling check.
    EXPECT_EQ(fin[i].total_bytes(),
              fin[i].log_bytes + fin[i].diff_store_bytes +
                  fin[i].diff_cache_bytes)
        << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Pinned bytes: when barrier-GC reclaims a diff its non-reader pinned, the
// pin's bytes must show up in both diff_cache_bytes and the pinned subset —
// sized exactly like the diff the writer gave up.
// ---------------------------------------------------------------------------
TEST(MetaFootprint, GcPinnedBytesMatchReclaimedDiff) {
  constexpr std::uint32_t kNodes = 2;
  DsmConfig c = precise_cfg(kNodes);
  c.gc_at_barriers = true;
  std::vector<Node::MetaFootprint> fin(kNodes);
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> state(4 * kWpp);
    const std::uint32_t id = tmk.id();
    tmk.barrier();
    // Node 1 writes page 0 once; node 0 never reads it.  Then enough churn
    // epochs on a different page for the floor to cover the interval and the
    // writer to reclaim — node 0's validation pass must fetch and pin.
    if (id == 1)
      for (std::size_t w = 0; w < 16; ++w) state[w] = word_of(w + 1);
    tmk.barrier();
    for (std::size_t e = 0; e < 6; ++e) {
      if (id == 1) state[2 * kWpp] = word_of(100 + e);
      tmk.barrier();
      if (id == 0) EXPECT_EQ(state[2 * kWpp], word_of(100 + e));
      tmk.barrier();
    }
    fin[id] = tmk.node.meta_footprint();
  });

  const std::size_t kDiffBytes = 4 + 16 * sizeof(std::uint64_t);
  // Node 0 holds the never-read page's diff as a pin (the only copy left).
  EXPECT_GE(fin[0].diff_cache_pinned_bytes, kDiffBytes);
  EXPECT_EQ(fin[0].diff_cache_pinned_bytes % kDiffBytes, 0u)
      << "pins must be whole reclaimed diffs";
  EXPECT_GE(fin[0].diff_cache_bytes, fin[0].diff_cache_pinned_bytes);
  EXPECT_EQ(fin[0].relay_bytes, 0u);
}

}  // namespace
}  // namespace now::tmk
