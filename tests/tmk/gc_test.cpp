// Barrier-time garbage collection of knowledge logs and diff stores:
//  - reclamation correctness: page contents stay byte-identical with GC on
//    (cache-pinned or eagerly applied) and off, across multi-writer epochs;
//  - memory plateau: log record counts and diff-store bytes stay bounded by
//    an inter-barrier epoch instead of growing linearly with barrier count;
//  - the requester-side diff cache as GC's consumer: a fault that would
//    re-request a reclaimed diff is served from the pinned prefetch;
//  - sparse-log delta interaction: lock/sema/cond deltas stay contiguous
//    after floors have truncated both node and manager logs.
#include <gtest/gtest.h>

#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes, bool gc, std::size_t cache_bytes = 16 * 1024) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.gc_at_barriers = gc;
  c.diff_cache_bytes_per_page = cache_bytes;
  // Checkpoint passes materialize pages at their barriers (applying
  // pinned backlogs early), which shifts the precise pin/hit accounting
  // asserted below: pinned off against the CI TMK_CKPT_EVERY default.
  c.ckpt_every = 0;
  return c;
}

// Deterministic multi-writer churn: 8 pages, each owned by node (pg % n).
// Every epoch the owner rewrites a sliding window of its pages and every
// node then verifies every word it can predict — any GC bug that drops or
// mis-applies a diff shows up as a wrong byte.
constexpr std::size_t kChurnPages = 8;
constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

std::uint64_t churn_value(int epoch, std::size_t pg, std::size_t k) {
  return 1 + static_cast<std::uint64_t>(epoch) * 100000 + pg * 1000 + k;
}

void churn_epoch_write(Tmk& tmk, gptr<std::uint64_t>& base, int e) {
  for (std::size_t pg = 0; pg < kChurnPages; ++pg) {
    if (pg % tmk.nprocs() != tmk.id()) continue;
    for (std::size_t k = 0; k < 16; ++k) {
      const std::size_t w = (static_cast<std::size_t>(e) * 16 + k) % 64;
      base[pg * kWordsPerPage + w] = churn_value(e, pg, w);
    }
  }
}

void churn_epoch_verify(Tmk& tmk, gptr<std::uint64_t>& base, int e) {
  for (std::size_t pg = 0; pg < kChurnPages; ++pg) {
    for (std::size_t w = 0; w < 64; ++w) {
      // Last epoch <= e that wrote word w of this page.
      std::uint64_t want = 0;
      for (int past = e; past >= 0; --past) {
        const std::size_t lo = (static_cast<std::size_t>(past) * 16) % 64;
        if (w >= lo && w < lo + 16) {
          want = churn_value(past, pg, w);
          break;
        }
      }
      ASSERT_EQ(base[pg * kWordsPerPage + w], want)
          << "epoch " << e << " page " << pg << " word " << w;
    }
  }
}

void churn_workload(Tmk& tmk, int epochs) {
  gptr<std::uint64_t> base(kPageSize);
  for (int e = 0; e < epochs; ++e) {
    churn_epoch_write(tmk, base, e);
    tmk.barrier();
    churn_epoch_verify(tmk, base, e);
    tmk.barrier();
  }
}

// Reclamation correctness: the same workload must read byte-identical
// contents with GC off, GC on with the cache (lazy pinned prefetch), and GC
// on without it (eager apply at the barrier).
TEST(GC, ContentsIdenticalAcrossGcAndCacheModes) {
  for (const bool gc : {false, true}) {
    for (const std::size_t cache : {std::size_t{0}, std::size_t{16 * 1024}}) {
      DsmRuntime rt(cfg(4, gc, cache));
      rt.run_spmd([](Tmk& tmk) { churn_workload(tmk, 10); });
      const auto s = rt.total_stats();
      if (gc) {
        EXPECT_GT(s.gc_records_reclaimed, 0u) << "gc=" << gc << " cache=" << cache;
        EXPECT_GT(s.gc_diff_bytes_reclaimed, 0u) << "gc=" << gc << " cache=" << cache;
      } else {
        EXPECT_EQ(s.gc_records_reclaimed, 0u);
        EXPECT_EQ(s.gc_diff_bytes_reclaimed, 0u);
      }
    }
  }
}

// The long-running stress: with GC on, knowledge-log records and diff-store
// bytes plateau (bounded by an epoch or two); with it off they grow linearly
// with barrier count.
TEST(GC, MemoryHighWaterPlateausAcrossManyBarriers) {
  constexpr int kEpochs = 36;
  constexpr int kEarly = 6, kLate = 34;
  struct Probe {
    std::size_t log_records = 0;
    std::size_t diff_bytes = 0;
  };

  auto run = [&](bool gc) {
    std::vector<Probe> probes(kEpochs);
    DsmRuntime rt(cfg(4, gc));
    rt.run_spmd([&](Tmk& tmk) {
      gptr<std::uint64_t> base(kPageSize);
      for (int e = 0; e < kEpochs; ++e) {
        churn_epoch_write(tmk, base, e);
        tmk.barrier();
        churn_epoch_verify(tmk, base, e);
        tmk.barrier();
        if (tmk.id() == 0) {
          const auto f = tmk.node.meta_footprint();
          probes[static_cast<std::size_t>(e)] = {f.log_records, f.diff_store_bytes};
        }
        tmk.barrier();  // keep the probe inside a quiet window
      }
    });
    return probes;
  };

  const auto with_gc = run(true);
  const auto without = run(false);

  // GC on: bounded by a constant independent of barrier count.
  EXPECT_LE(with_gc[kLate].log_records, 2 * with_gc[kEarly].log_records + 8);
  EXPECT_LE(with_gc[kLate].diff_bytes, 2 * with_gc[kEarly].diff_bytes + 4096);

  // GC off: the same window adds ~4 records and ~2 diffs per epoch.
  EXPECT_GE(without[kLate].log_records, without[kEarly].log_records + 40);
  EXPECT_GT(without[kLate].diff_bytes, without[kEarly].diff_bytes);

  // And the absolute separation is large.
  EXPECT_LT(with_gc[kLate].log_records * 4, without[kLate].log_records);
}

// The diff cache as GC's first real consumer: node 1 reads a page only after
// its writer has reclaimed the diff.  The barrier-GC pass pinned the diff in
// node 1's page cache, so the fault is served locally — if the pin were
// lost, the refetch would die on the writer's missing diff.
TEST(GC, ReclaimedDiffIsServedFromPinnedCache) {
  DsmRuntime rt(cfg(2, /*gc=*/true));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    if (tmk.id() == 0)
      for (std::size_t i = 0; i < 8; ++i) p[i] = 40 + i;
    tmk.barrier();  // records travel; floor does not cover them yet
    tmk.barrier();  // floor covers the write: node 1 pins the diff
    tmk.barrier();  // one barrier later: node 0 reclaims the diff
    if (tmk.id() == 1)
      for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(p[i], 40 + i);  // fault served from the pinned cache
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  EXPECT_GE(s.diff_cache_hits, 1u);
  EXPECT_GT(s.diff_cache_bytes_saved, 0u);
  EXPECT_GT(s.gc_diff_bytes_reclaimed, 0u);
  // The writer's diff store really is empty again.
  EXPECT_EQ(rt.node(0).meta_footprint().diff_store_entries, 0u);
}

// Same shape with the cache disabled: GC validates by applying eagerly at
// the barrier, and the late read needs no communication at all.
TEST(GC, ReclaimedDiffWasAppliedEagerlyWithoutCache) {
  DsmRuntime rt(cfg(2, /*gc=*/true, /*cache_bytes=*/0));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    if (tmk.id() == 0)
      for (std::size_t i = 0; i < 8; ++i) p[i] = 70 + i;
    tmk.barrier();
    tmk.barrier();
    tmk.barrier();
    if (tmk.id() == 1)
      for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(p[i], 70 + i);
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  EXPECT_EQ(s.diff_cache_hits, 0u);
  EXPECT_GT(s.gc_diff_bytes_reclaimed, 0u);
  EXPECT_EQ(rt.node(0).meta_footprint().diff_store_entries, 0u);
}

// A reader that stays away for many epochs accumulates one pinned diff per
// reclaimed interval and must apply them all, in lamport order, from the
// cache alone.
TEST(GC, LateReaderAppliesManyPinnedDiffs) {
  constexpr int kEpochs = 12;
  DsmRuntime rt(cfg(2, /*gc=*/true));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    for (int e = 0; e < kEpochs; ++e) {
      if (tmk.id() == 0) p[static_cast<std::size_t>(e % 16)] = 1000 + static_cast<std::uint64_t>(e);
      tmk.barrier();
    }
    tmk.barrier();
    tmk.barrier();
    if (tmk.id() == 1) {
      for (std::size_t w = 0; w < 16; ++w) {
        std::uint64_t want = 0;
        for (int e = kEpochs - 1; e >= 0; --e)
          if (static_cast<std::size_t>(e % 16) == w) {
            want = 1000 + static_cast<std::uint64_t>(e);
            break;
          }
        EXPECT_EQ(p[w], want) << "word " << w;
      }
    }
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  // Most of the twelve intervals were reclaimed by the time of the read and
  // could only have come from the pinned prefetches.
  EXPECT_GE(s.diff_cache_hits, static_cast<std::uint64_t>(kEpochs) - 3);
  EXPECT_GT(s.gc_diff_bytes_reclaimed, 0u);
}

// A page that is written every epoch but never read must not accumulate
// pinned prefetches forever: once a page's pinned bytes exceed the cache
// budget, the GC pass applies the backlog and unpins it.
TEST(GC, NeverReadPagePinnedBytesStayBounded) {
  constexpr int kEpochs = 30;
  constexpr std::size_t kBudget = 2048;
  DsmRuntime rt(cfg(2, /*gc=*/true, kBudget));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint8_t> p(kPageSize);
    for (int e = 0; e < kEpochs; ++e) {
      if (tmk.id() == 0)  // ~700 dirty bytes per epoch, sliding
        for (std::size_t i = 0; i < 700; ++i)
          p[(static_cast<std::size_t>(e) * 97 + i * 5) % kPageSize] =
              static_cast<std::uint8_t>(e + i);
      tmk.barrier();  // node 1 never reads: pins pile up, then GC applies
    }
  });
  const auto f = rt.node(1).meta_footprint();
  // Bounded by the budget plus at most one epoch's overshoot — not by
  // kEpochs * diff size (~20 KB+), which a leak would produce.
  EXPECT_LE(f.diff_cache_bytes, kBudget + 4096);
  EXPECT_GT(rt.total_stats().gc_diff_bytes_reclaimed, 0u);
}

// Prefetch/GC interaction, structure level: a GC pin arriving after a
// droppable prefetch entry for the same page must evict the droppable
// entries under budget pressure — never the pin.
TEST(GC, PinInsertedAfterPrefetchEntryEvictsDroppableNeverPin) {
  constexpr std::size_t kBudget = 400;
  PageDiffCache c;
  c.insert(1, 1, {DiffBytes(40, 1)}, kBudget, /*prefetched=*/true);
  c.insert(1, 2, {DiffBytes(40, 2)}, kBudget, /*prefetched=*/true);
  c.insert_gc(2, 9, {DiffBytes(300, 9)});  // pin lands after the prefetches
  EXPECT_EQ(c.pinned_bytes(), 300u);
  // Budget pressure: the droppable prefetch entries are the only victims.
  c.insert(1, 3, {DiffBytes(40, 3)}, kBudget, /*prefetched=*/true);
  EXPECT_EQ(c.find(1, 1), nullptr);  // oldest droppable evicted
  ASSERT_NE(c.find(2, 9), nullptr);  // pin untouched
  ASSERT_NE(c.find(1, 3), nullptr);
  // A GC pin for a key a prefetch already holds promotes it in place...
  EXPECT_TRUE(c.pin_existing(1, 2));
  EXPECT_EQ(c.pinned_bytes(), 340u);
  // ...after which no amount of FIFO churn can evict it.
  c.insert(3, 1, {DiffBytes(40, 4)}, kBudget);
  c.insert(3, 2, {DiffBytes(40, 5)}, kBudget);
  c.insert(3, 3, {DiffBytes(40, 6)}, kBudget);
  ASSERT_NE(c.find(1, 2), nullptr);
  EXPECT_TRUE(c.lookup(1, 2)->pinned);
  EXPECT_TRUE(c.lookup(1, 2)->prefetched);  // provenance survives promotion
  // Applying a promoted entry releases its pinned bytes too.
  c.erase(1, 2);
  c.erase(2, 9);
  EXPECT_EQ(c.pinned_bytes(), 0u);
}

// Prefetch/GC interaction, protocol level: a prefetch that lands just
// before the writer's one-barrier-delayed reclaim is still served.  Node 1's
// fault on page A prefetches neighbor B's diff while its write notice is not
// yet floor-covered; the next barrier's validation pass must promote that
// droppable entry to a pin (not skip it), because one barrier later the
// writer reclaims the only other copy.  The late read of B can then only be
// served from the promoted pin.
TEST(GC, PrefetchLandingJustBeforeReclaimIsStillServed) {
  DsmConfig c = cfg(2, /*gc=*/true);
  c.prefetch_pages = 4;
  std::size_t pinned_after_validate = 0;
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> a(kPageSize);
    gptr<std::uint64_t> b(2 * kPageSize);
    if (tmk.id() == 0) {
      for (std::size_t i = 0; i < 8; ++i) a[i] = 40 + i;
      for (std::size_t i = 0; i < 8; ++i) b[i] = 50 + i;
    }
    tmk.barrier();  // records travel; the floor does not cover them yet
    if (tmk.id() == 1)
      for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(a[i], 40 + i);  // fault on A prefetches B (droppable)
    tmk.barrier();  // floor covers the writes: validation promotes B's entry
    if (tmk.id() == 1)
      pinned_after_validate = tmk.node.meta_footprint().diff_cache_pinned_bytes;
    tmk.barrier();  // one barrier later: node 0 reclaims its diffs
    if (tmk.id() == 1)
      for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(b[i], 50 + i);  // served from the promoted pin
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  EXPECT_GT(pinned_after_validate, 0u);  // the prefetched entry became a pin
  EXPECT_EQ(s.prefetch_pages_filled, 1u);
  EXPECT_GE(s.prefetch_hits, 1u);        // ...and still served the fault
  EXPECT_GT(s.gc_diff_bytes_reclaimed, 0u);
  EXPECT_EQ(rt.node(0).meta_footprint().diff_store_entries, 0u);
}

// Sparse-log deltas after GC: locks, semaphores and condvars keep their
// record deltas contiguous against floored node logs and floored (sparse)
// manager logs — the manager learns the floor from the piggyback, never from
// message-ordering luck.
TEST(GC, MixedSyncStaysContiguousOnFlooredLogs) {
  constexpr int kEpochs = 8;
  DsmRuntime rt(cfg(4, /*gc=*/true));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> base(kPageSize);
    gptr<std::uint64_t> counter(kPageSize + kChurnPages * kPageSize);
    for (int e = 0; e < kEpochs; ++e) {
      churn_epoch_write(tmk, base, e);
      tmk.barrier();
      // Lock-protected read-modify-write: exercises post-GC grant deltas
      // (lock 5's manager is node 1, its holders rotate).
      tmk.lock_acquire(5);
      *counter += 1;
      tmk.lock_release(5);
      // Semaphore ping-pong through a manager on node 2: its sparse manager
      // log merges deltas under piggybacked floors.
      if (tmk.id() == 0)
        for (std::uint32_t i = 0; i + 1 < tmk.nprocs(); ++i) tmk.sema_signal(2);
      else
        tmk.sema_wait(2);
      tmk.barrier();
      churn_epoch_verify(tmk, base, e);
      tmk.barrier();
    }
    if (tmk.id() == 0)
      EXPECT_EQ(*counter, static_cast<std::uint64_t>(kEpochs) * tmk.nprocs());
  });
  EXPECT_GT(rt.total_stats().gc_records_reclaimed, 0u);
}

}  // namespace
}  // namespace now::tmk
