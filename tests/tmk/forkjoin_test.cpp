// Tmk_fork / Tmk_join tests: the OpenMP-style master/slave execution model,
// firstprivate argument blobs, and visibility across fork and join.
#include <gtest/gtest.h>

#include <cstring>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  return c;
}

struct RegionArg {
  gptr<std::uint64_t> out;
  std::uint64_t scale;  // a "firstprivate" value
};

void region_fill(Tmk& tmk, const void* raw, std::size_t size) {
  ASSERT_EQ(size, sizeof(RegionArg));
  RegionArg arg;
  std::memcpy(&arg, raw, sizeof arg);
  arg.out[tmk.id()] = (tmk.id() + 1) * arg.scale;
}

TEST(ForkJoin, MasterSeesSlaveWritesAfterJoin) {
  for (std::uint32_t n : {2u, 4u, 8u}) {
    DsmRuntime rt(cfg(n));
    rt.run_master([n](Tmk& tmk) {
      auto out = tmk.alloc_array<std::uint64_t>(n);
      RegionArg arg{out, 10};
      tmk.fork(&region_fill, &arg, sizeof arg);
      region_fill(tmk, &arg, sizeof arg);  // master participates
      tmk.join();
      for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], (i + 1) * 10u) << "nodes=" << n;
    });
  }
}

void region_read_master_data(Tmk& tmk, const void* raw, std::size_t size) {
  ASSERT_EQ(size, sizeof(gptr<std::uint64_t>));
  gptr<std::uint64_t> data;
  std::memcpy(&data, raw, sizeof data);
  // The master initialized this before the fork; the fork's consistency
  // records make it visible here.
  EXPECT_EQ(data[0], 777u);
  data[1 + tmk.id()] = data[0] + tmk.id();
}

TEST(ForkJoin, SequentialInitVisibleInParallelRegion) {
  DsmRuntime rt(cfg(4));
  rt.run_master([](Tmk& tmk) {
    auto data = tmk.alloc_array<std::uint64_t>(16);
    data[0] = 777;  // sequential-phase write by the master
    tmk.fork(&region_read_master_data, &data, sizeof data);
    region_read_master_data(tmk, &data, sizeof data);
    tmk.join();
    for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(data[1 + i], 777u + i);
  });
}

void region_step(Tmk& tmk, const void* raw, std::size_t) {
  struct A {
    gptr<std::uint64_t> acc;
    std::uint64_t step;
  } arg;
  std::memcpy(&arg, raw, sizeof arg);
  arg.acc[tmk.id()] = arg.acc[tmk.id()] + arg.step;
}

TEST(ForkJoin, RepeatedRegionsAccumulate) {
  DsmRuntime rt(cfg(4));
  rt.run_master([](Tmk& tmk) {
    auto acc = tmk.alloc_array<std::uint64_t>(4);
    struct A {
      gptr<std::uint64_t> acc;
      std::uint64_t step;
    };
    for (std::uint64_t s = 1; s <= 5; ++s) {
      A arg{acc, s};
      tmk.fork(&region_step, &arg, sizeof arg);
      region_step(tmk, &arg, sizeof arg);
      tmk.join();
    }
    for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(acc[i], 15u);
  });
}

TEST(ForkJoin, ForkJoinMessageCount) {
  // A region costs (n-1) forks + (n-1) joins.
  const std::uint32_t n = 8;
  DsmRuntime rt(cfg(n));
  rt.run_master([](Tmk& tmk) {
    auto out = tmk.alloc_array<std::uint64_t>(8);
    RegionArg arg{out, 3};
    tmk.fork(&region_fill, &arg, sizeof arg);
    region_fill(tmk, &arg, sizeof arg);
    tmk.join();
  });
  const auto t = rt.traffic();
  EXPECT_EQ(t.messages_by_type[kFork], n - 1);
  EXPECT_EQ(t.messages_by_type[kJoin], n - 1);
  EXPECT_EQ(t.messages_by_type[kShutdown], n - 1);
}

void region_with_barrier(Tmk& tmk, const void* raw, std::size_t) {
  gptr<std::uint64_t> data;
  std::memcpy(&data, raw, sizeof data);
  data[tmk.id()] = tmk.id() + 1;
  tmk.barrier();
  // Everyone checks a neighbour's write inside the region.
  const std::uint32_t peer = (tmk.id() + 1) % tmk.nprocs();
  EXPECT_EQ(data[peer], peer + 1);
}

TEST(ForkJoin, BarriersInsideParallelRegion) {
  DsmRuntime rt(cfg(4));
  rt.run_master([](Tmk& tmk) {
    auto data = tmk.alloc_array<std::uint64_t>(4);
    tmk.fork(&region_with_barrier, &data, sizeof data);
    region_with_barrier(tmk, &data, sizeof data);
    tmk.join();
  });
}

TEST(ForkJoin, VirtualTimeAdvancesMonotonically) {
  DsmRuntime rt(cfg(2));
  rt.run_master([](Tmk& tmk) {
    auto out = tmk.alloc_array<std::uint64_t>(2);
    RegionArg arg{out, 1};
    tmk.fork(&region_fill, &arg, sizeof arg);
    region_fill(tmk, &arg, sizeof arg);
    tmk.join();
  });
  EXPECT_GT(rt.virtual_time_ns(), 0u);
}

}  // namespace
}  // namespace now::tmk
