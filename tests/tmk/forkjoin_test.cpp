// Tmk_fork / Tmk_join tests: the OpenMP-style master/slave execution model,
// firstprivate argument blobs, and visibility across fork and join.
#include <gtest/gtest.h>

#include <cstring>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  return c;
}

struct RegionArg {
  gptr<std::uint64_t> out;
  std::uint64_t scale;  // a "firstprivate" value
};

void region_fill(Tmk& tmk, const void* raw, std::size_t size) {
  ASSERT_EQ(size, sizeof(RegionArg));
  RegionArg arg;
  std::memcpy(&arg, raw, sizeof arg);
  arg.out[tmk.id()] = (tmk.id() + 1) * arg.scale;
}

TEST(ForkJoin, MasterSeesSlaveWritesAfterJoin) {
  for (std::uint32_t n : {2u, 4u, 8u}) {
    DsmRuntime rt(cfg(n));
    rt.run_master([n](Tmk& tmk) {
      auto out = tmk.alloc_array<std::uint64_t>(n);
      RegionArg arg{out, 10};
      tmk.fork(&region_fill, &arg, sizeof arg);
      region_fill(tmk, &arg, sizeof arg);  // master participates
      tmk.join();
      for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], (i + 1) * 10u) << "nodes=" << n;
    });
  }
}

void region_read_master_data(Tmk& tmk, const void* raw, std::size_t size) {
  ASSERT_EQ(size, sizeof(gptr<std::uint64_t>));
  gptr<std::uint64_t> data;
  std::memcpy(&data, raw, sizeof data);
  // The master initialized this before the fork; the fork's consistency
  // records make it visible here.
  EXPECT_EQ(data[0], 777u);
  data[1 + tmk.id()] = data[0] + tmk.id();
}

TEST(ForkJoin, SequentialInitVisibleInParallelRegion) {
  DsmRuntime rt(cfg(4));
  rt.run_master([](Tmk& tmk) {
    auto data = tmk.alloc_array<std::uint64_t>(16);
    data[0] = 777;  // sequential-phase write by the master
    tmk.fork(&region_read_master_data, &data, sizeof data);
    region_read_master_data(tmk, &data, sizeof data);
    tmk.join();
    for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(data[1 + i], 777u + i);
  });
}

void region_step(Tmk& tmk, const void* raw, std::size_t) {
  struct A {
    gptr<std::uint64_t> acc;
    std::uint64_t step;
  } arg;
  std::memcpy(&arg, raw, sizeof arg);
  arg.acc[tmk.id()] = arg.acc[tmk.id()] + arg.step;
}

TEST(ForkJoin, RepeatedRegionsAccumulate) {
  DsmRuntime rt(cfg(4));
  rt.run_master([](Tmk& tmk) {
    auto acc = tmk.alloc_array<std::uint64_t>(4);
    struct A {
      gptr<std::uint64_t> acc;
      std::uint64_t step;
    };
    for (std::uint64_t s = 1; s <= 5; ++s) {
      A arg{acc, s};
      tmk.fork(&region_step, &arg, sizeof arg);
      region_step(tmk, &arg, sizeof arg);
      tmk.join();
    }
    for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(acc[i], 15u);
  });
}

TEST(ForkJoin, ForkJoinMessageCount) {
  // A region costs (n-1) forks + (n-1) joins.
  const std::uint32_t n = 8;
  DsmRuntime rt(cfg(n));
  rt.run_master([](Tmk& tmk) {
    auto out = tmk.alloc_array<std::uint64_t>(8);
    RegionArg arg{out, 3};
    tmk.fork(&region_fill, &arg, sizeof arg);
    region_fill(tmk, &arg, sizeof arg);
    tmk.join();
  });
  const auto t = rt.traffic();
  EXPECT_EQ(t.messages_by_type[kFork], n - 1);
  EXPECT_EQ(t.messages_by_type[kJoin], n - 1);
  EXPECT_EQ(t.messages_by_type[kShutdown], n - 1);
}

void region_rewrite(Tmk& tmk, const void* raw, std::size_t) {
  struct A {
    gptr<std::uint64_t> data;
    std::uint64_t round;
  } arg;
  std::memcpy(&arg, raw, sizeof arg);
  // Each thread rewrites its slab and reads a neighbour's previous-round
  // slab, so every region both creates diffs and learns records.
  constexpr std::size_t kSlab = 256;
  const std::size_t base = tmk.id() * kSlab;
  for (std::size_t k = 0; k < kSlab; ++k)
    arg.data[base + k] = arg.round * 1000 + tmk.id() * 10 + k;
  const std::size_t peer = ((tmk.id() + 1) % tmk.nprocs()) * kSlab;
  volatile std::uint64_t sink = arg.data[peer];
  (void)sink;
}

// The fork after a join is a barrier-equivalent reclamation point: the
// master's post-join vector time rides each kFork as a GC floor, so
// fork/join-only programs (the OpenMP execution model — regions end in a
// kJoin, never a Tmk barrier) reclaim knowledge-log records and diff-store
// bytes instead of growing without bound.
TEST(ForkJoin, ForkAfterJoinReclaims) {
  struct A {
    gptr<std::uint64_t> data;
    std::uint64_t round;
  };
  constexpr std::uint64_t kRounds = 24;
  auto program = [](Tmk& tmk) {
    auto data = tmk.alloc_array<std::uint64_t>(4 * 256);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      A arg{data, r};
      tmk.fork(&region_rewrite, &arg, sizeof arg);
      region_rewrite(tmk, &arg, sizeof arg);
      tmk.join();
    }
    for (std::uint32_t t = 0; t < 4; ++t)
      EXPECT_EQ(data[t * 256 + 5], (kRounds - 1) * 1000 + t * 10 + 5);
  };

  DsmStatsSnapshot on, off;
  std::size_t on_records = 0, off_records = 0;
  {
    auto c = cfg(4);
    c.gc_fork_join = true;
    DsmRuntime rt(c);
    rt.run_master(program);
    on = rt.total_stats();
    for (std::uint32_t n = 0; n < 4; ++n)
      on_records += rt.node(n).meta_footprint().log_records;
  }
  {
    auto c = cfg(4);
    c.gc_fork_join = false;
    DsmRuntime rt(c);
    rt.run_master(program);
    off = rt.total_stats();
    for (std::uint32_t n = 0; n < 4; ++n)
      off_records += rt.node(n).meta_footprint().log_records;
  }
  EXPECT_EQ(off.gc_records_reclaimed, 0u);
  EXPECT_GT(on.gc_records_reclaimed, 0u);
  EXPECT_GT(on.gc_diff_bytes_reclaimed, 0u);
  // With fork-point GC the logs plateau at roughly one region's worth of
  // records; without it they grow linearly with the region count.
  EXPECT_LT(4 * on_records, off_records);
}

void region_with_barrier(Tmk& tmk, const void* raw, std::size_t) {
  gptr<std::uint64_t> data;
  std::memcpy(&data, raw, sizeof data);
  data[tmk.id()] = tmk.id() + 1;
  tmk.barrier();
  // Everyone checks a neighbour's write inside the region.
  const std::uint32_t peer = (tmk.id() + 1) % tmk.nprocs();
  EXPECT_EQ(data[peer], peer + 1);
}

TEST(ForkJoin, BarriersInsideParallelRegion) {
  DsmRuntime rt(cfg(4));
  rt.run_master([](Tmk& tmk) {
    auto data = tmk.alloc_array<std::uint64_t>(4);
    tmk.fork(&region_with_barrier, &data, sizeof data);
    region_with_barrier(tmk, &data, sizeof data);
    tmk.join();
  });
}

TEST(ForkJoin, VirtualTimeAdvancesMonotonically) {
  DsmRuntime rt(cfg(2));
  rt.run_master([](Tmk& tmk) {
    auto out = tmk.alloc_array<std::uint64_t>(2);
    RegionArg arg{out, 1};
    tmk.fork(&region_fill, &arg, sizeof arg);
    region_fill(tmk, &arg, sizeof arg);
    tmk.join();
  });
  EXPECT_GT(rt.virtual_time_ns(), 0u);
}

}  // namespace
}  // namespace now::tmk
