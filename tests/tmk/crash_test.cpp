// Node-crash chaos + barrier-aligned checkpoint/rollback recovery.
//
// The contract under test: with checkpointing on, a node scripted to die at
// *any* synchronization point — barrier arrival, mid lock chain, inside an
// on-demand GC exchange — is detected by the reliability channel (retransmit
// exhaustion + keepalive probes), the cluster rolls back to the last durable
// barrier epoch, replays, and finishes with final shared memory
// byte-identical to a crash-free run.  With checkpointing off the same crash
// is a clean reported failure (RunReport), not a hang or an abort.  And the
// checkpoints themselves are incremental: a mostly-read-only heap costs a
// few pages per epoch, not a full image.
//
// Workloads here are restart-aware the way a recoverable TreadMarks program
// must be: all progress state lives in shared memory (a round counter
// advanced just before each round's barrier), initialization is gated on
// Tmk::resume_epoch() == 0, and every round's writes are idempotent
// functions of (round, node) — or commutative lock-protected accumulations —
// so a replay from any durable epoch reproduces the crash-free bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

constexpr std::size_t kWpp = kPageSize / sizeof(std::uint64_t);
constexpr std::uint32_t kNodes = 4;

DsmConfig crash_cfg() {
  DsmConfig c;
  c.num_nodes = kNodes;
  c.heap_bytes = 1 << 20;
  c.time.cpu_scale = 0.0;
  // Deterministic byte-identity legs: pin the wire perfect; crash legs turn
  // the channel on implicitly (crash_enabled forces it).
  c.net_fault = {};
  c.net_reliable = false;
  // Detection latency is host time: the default 24-retry exhaustion with
  // exponential backoff takes minutes.  3 retries keep the verdict under a
  // couple hundred milliseconds without weakening the protocol under test.
  c.net_max_retries = 3;
  // Pinned off so the crash-free reference runs stay checkpoint-free under
  // the CI leg that makes TMK_CKPT_EVERY=2 the session default; the legs
  // that checkpoint say so explicitly.
  c.ckpt_every = 0;
  return c;
}

// Checkpoint cadence for the recovery legs: every other barrier, unless a
// session default (TMK_CKPT_EVERY) asks for a different one — the CI crash
// leg re-runs this sweep with checkpoints at every barrier.  Legs whose
// assertions count epochs at a fixed cadence pin their own value instead.
std::uint32_t ckpt_cadence() {
  const std::uint32_t env = DsmConfig{}.ckpt_every;
  return env != 0 ? env : 2;
}

// The restart-aware chaos workload.  Layout (fixed offsets, allocator-free):
//   page 1: ctl[0] = fully completed rounds (progress), ctl[1] = lock-sum
//   pages 2..2+kNodes-1: node i's data page
// Each round: node i rewrites a window of its data page with values that are
// pure functions of (round, node, slot); everyone adds (r+1)*(id+1) to the
// shared sum under lock 1; node 0 advances the progress word; barrier.
// Round 0 additionally banks a sema token (sema 99) that only the *last*
// round consumes — any checkpoint in between must carry the count across a
// rollback or the final wait hangs.
void chaos_rounds(Tmk& tmk, std::size_t rounds, std::vector<std::uint64_t>* mem) {
  gptr<std::uint64_t> ctl(kPageSize);
  gptr<std::uint64_t> data(2 * kPageSize);
  const std::uint32_t id = tmk.id();
  // Checkpointed progress: 0 on a fresh heap, the durable round count after
  // a rollback (rehydrated pages are resident before any thread runs).
  const std::size_t start = ctl[0];
  if (start == 0 && id == 0) tmk.sema_signal(99);  // the banked token
  tmk.barrier();
  for (std::size_t r = start; r < rounds; ++r) {
    for (std::size_t k = 0; k < 24; ++k)
      data[id * kWpp + (r * 7 + k) % kWpp] =
          (r + 1) * 1000003u + id * 131u + k;
    tmk.lock_acquire(1);
    ctl[1] += (r + 1) * (id + 1);
    if (id == 0) ctl[0] = r + 1;
    tmk.lock_release(1);
    if (r + 1 == rounds && id == 0) tmk.sema_wait(99);  // banked in round 0
    tmk.barrier();
  }
  if (id == 0 && mem != nullptr) {
    mem->clear();
    mem->push_back(ctl[0]);
    mem->push_back(ctl[1]);
    for (std::size_t w = 0; w < kNodes * kWpp; ++w) mem->push_back(data[w]);
  }
}

struct RunResult {
  RunReport report;
  DsmStatsSnapshot stats;
  std::vector<std::uint64_t> mem;
};

RunResult run_chaos(DsmConfig c, std::size_t rounds) {
  RunResult out;
  DsmRuntime rt(c);
  out.report =
      rt.run_spmd([&](Tmk& tmk) { chaos_rounds(tmk, rounds, &out.mem); });
  out.stats = rt.total_stats();
  return out;
}

// Crash-free reference, no knobs: the bytes every recovery leg must hit.
std::vector<std::uint64_t> reference_mem(std::size_t rounds) {
  RunResult ref = run_chaos(crash_cfg(), rounds);
  EXPECT_TRUE(ref.report.completed);
  EXPECT_FALSE(ref.report.node_down);
  EXPECT_EQ(ref.stats.recoveries, 0u);
  EXPECT_EQ(ref.stats.ckpt_epochs, 0u);
  return ref.mem;
}

// The tentpole acceptance sweep: kill the victim at sync-point indices that
// land on lock acquires, lock releases and barrier arrivals, early (before
// the first durable epoch — rollback to scratch) through late (several
// checkpoints banked).  Every leg must detect, roll back, replay and match
// the crash-free bytes exactly.
//
// Index map for this workload on a non-zero victim (kNodes=4, rounds=10):
// 0 = initial barrier, then per round r: acquire = 3r+1, release = 3r+2,
// barrier arrival = 3r+3.  Index 0 is excluded by design, not oversight: a
// node that dies before ever exchanging a packet is indistinguishable from
// one that never booted — detection starts with first contact (README,
// "Failure model").
TEST(Crash, SweepOverSyncPointsRecoversByteIdentical) {
  constexpr std::size_t kRounds = 10;
  const std::vector<std::uint64_t> ref = reference_mem(kRounds);
  ASSERT_EQ(ref.size(), 2 + kNodes * kWpp);
  EXPECT_EQ(ref[0], kRounds);
  // Sum of (r+1)*(id+1): rounds triangle x node triangle.
  EXPECT_EQ(ref[1], (kRounds * (kRounds + 1) / 2) * (kNodes * (kNodes + 1) / 2));

  const std::uint32_t sweep[] = {1, 2, 3, 8, 13, 15, 22, 27};
  for (std::uint32_t at : sweep) {
    DsmConfig c = crash_cfg();
    c.ckpt_every = ckpt_cadence();
    c.net_crash_node = 2;
    c.net_crash_at = at;
    RunResult r = run_chaos(c, kRounds);
    EXPECT_TRUE(r.report.completed) << "crash_at " << at;
    EXPECT_TRUE(r.report.node_down) << "crash_at " << at;
    EXPECT_EQ(r.report.victim, 2u) << "crash_at " << at;
    EXPECT_EQ(r.report.recoveries, 1u) << "crash_at " << at;
    EXPECT_EQ(r.stats.recoveries, 1u) << "crash_at " << at;
    EXPECT_GT(r.stats.ckpt_epochs, 0u) << "crash_at " << at;
    EXPECT_EQ(r.mem, ref) << "crash_at " << at;
  }
}

// Killing the barrier root / lock manager / allocation server (node 0) is
// the worst case: every manager role reboots from the checkpoint image.
TEST(Crash, RootDeathRecoversByteIdentical) {
  constexpr std::size_t kRounds = 8;
  const std::vector<std::uint64_t> ref = reference_mem(kRounds);

  for (std::uint32_t at : {5u, 12u}) {
    DsmConfig c = crash_cfg();
    c.ckpt_every = ckpt_cadence();
    c.net_crash_node = 0;
    c.net_crash_at = at;
    RunResult r = run_chaos(c, kRounds);
    EXPECT_TRUE(r.report.completed) << "crash_at " << at;
    EXPECT_EQ(r.report.victim, 0u) << "crash_at " << at;
    EXPECT_EQ(r.report.recoveries, 1u) << "crash_at " << at;
    EXPECT_EQ(r.mem, ref) << "crash_at " << at;
  }
}

// With checkpointing off the same crash must be a clean reported failure:
// run_spmd returns (no hang), completed=false, and the runtime stays
// destructible.  This is the ISSUE's "clean reported failure" acceptance leg.
TEST(Crash, CkptOffCrashReportsCleanFailure) {
  DsmConfig c = crash_cfg();
  c.ckpt_every = 0;
  c.net_crash_node = 1;
  c.net_crash_at = 7;
  RunResult r = run_chaos(c, /*rounds=*/10);
  EXPECT_FALSE(r.report.completed);
  EXPECT_TRUE(r.report.node_down);
  EXPECT_EQ(r.report.victim, 1u);
  EXPECT_EQ(r.report.recoveries, 0u);
  EXPECT_EQ(r.stats.recoveries, 0u);
  EXPECT_EQ(r.stats.ckpt_epochs, 0u);
}

// Checkpointing alone (no crash) must not perturb program results, and its
// accounting must be visible: durable epochs counted at the root, staged
// bytes and incremental skips totted up per node.
TEST(Crash, CkptOnCrashFreeRunMatchesAndCounts) {
  constexpr std::size_t kRounds = 10;
  const std::vector<std::uint64_t> ref = reference_mem(kRounds);

  DsmConfig c = crash_cfg();
  c.ckpt_every = 2;
  RunResult r = run_chaos(c, kRounds);
  EXPECT_TRUE(r.report.completed);
  EXPECT_FALSE(r.report.node_down);
  EXPECT_EQ(r.report.recoveries, 0u);
  EXPECT_EQ(r.mem, ref);
  // Barrier epochs: 1 initial + kRounds = 11; every 2nd is durable.
  EXPECT_EQ(r.stats.ckpt_epochs, (1 + kRounds) / 2);
  EXPECT_GT(r.stats.ckpt_bytes_written, 0u);
  EXPECT_EQ(r.stats.recoveries, 0u);
  EXPECT_EQ(r.stats.rollback_epochs_lost, 0u);
}

// Incremental checkpointing, the ISSUE's efficiency criterion: a heap whose
// working set is written once and then left mostly read-only must cost a few
// pages per epoch after the first checkpoint, not a full image each time.
TEST(Crash, IncrementalCheckpointsStayNearWriteFootprint) {
  constexpr std::size_t kArrPages = 48;
  constexpr std::size_t kRounds = 13;  // 14 abs epochs -> 7 durable at every=2

  DsmConfig c = crash_cfg();
  c.ckpt_every = 2;
  DsmRuntime rt(c);
  RunReport report = rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> ctl(kPageSize);
    gptr<std::uint64_t> arr(2 * kPageSize);
    const std::uint32_t id = tmk.id();
    const std::size_t start = ctl[0];
    if (start == 0 && id == 0)  // init: dirty the whole array once
      for (std::size_t p = 0; p < kArrPages; ++p)
        for (std::size_t w = 0; w < kWpp; w += 8) arr[p * kWpp + w] = p + w;
    tmk.barrier();
    for (std::size_t r = start; r < kRounds; ++r) {
      // Mostly read-only: everyone scans, only node (r % kNodes) rewrites
      // two pages' worth of words.
      std::uint64_t acc = 0;
      for (std::size_t p = 0; p < kArrPages; p += 4) acc += arr[p * kWpp];
      if (id == r % kNodes)
        for (std::size_t w = 0; w < 2 * kWpp; w += 4)
          arr[(r % kArrPages) * kWpp + w] = acc + r * 17 + w;
      tmk.lock_acquire(1);
      if (id == 0) ctl[0] = r + 1;
      ctl[1] += acc ^ (r + 1);
      tmk.lock_release(1);
      tmk.barrier();
    }
  });
  EXPECT_TRUE(report.completed);
  const DsmStatsSnapshot s = rt.total_stats();
  EXPECT_EQ(s.ckpt_epochs, (1 + kRounds) / 2);

  // The durable image covers the touched footprint (~50 pages), not the
  // 256-page heap.
  const std::uint64_t image = rt.checkpoint().durable_page_bytes();
  EXPECT_GE(image, kArrPages * kPageSize);
  EXPECT_LE(image, (kArrPages + 12) * kPageSize);

  // Incremental: 7 full images would be ~350 pages.  The first epoch pays
  // the footprint once; each later epoch stages only the few pages the
  // round actually dirtied.  3x one image is a generous ceiling that a
  // non-incremental implementation blows past immediately.
  EXPECT_LT(s.ckpt_bytes_written, 3 * image);
  EXPECT_GT(s.ckpt_pages_incremental, 4 * s.ckpt_epochs);
}

// Crash *inside the on-demand GC exchange*: a barrier-sparse lock chain under
// a tiny metadata ceiling keeps exchanges in flight, and the sweep indices
// land on the victim's GC sites (parked-floor applies, exchange initiations)
// interleaved with its lock chain.  Recovery must replay to the same bytes
// with the exchange machinery live the whole time.
TEST(Crash, DuringCeilingGcExchangeRecoversByteIdentical) {
  constexpr std::size_t kRounds = 6;
  constexpr std::size_t kCs = 12;  // critical sections per round per node

  auto workload = [&](Tmk& tmk, std::vector<std::uint64_t>* mem) {
    gptr<std::uint64_t> ctl(kPageSize);
    gptr<std::uint64_t> data(2 * kPageSize);
    const std::uint32_t id = tmk.id();
    const std::size_t start = ctl[0];
    tmk.barrier();
    for (std::size_t r = start; r < kRounds; ++r) {
      for (std::size_t j = 0; j < kCs; ++j) {
        tmk.lock_acquire(0);
        ctl[1] += (r * kCs + j + 1) * (id + 1);
        data[id * kWpp + (r * kCs + j) % kWpp] = r * 1000 + j * 10 + id;
        tmk.lock_release(0);
      }
      tmk.lock_acquire(1);
      if (id == 0) ctl[0] = r + 1;
      tmk.lock_release(1);
      tmk.barrier();
    }
    if (id == 0 && mem != nullptr) {
      mem->clear();
      mem->push_back(ctl[0]);
      mem->push_back(ctl[1]);
      for (std::size_t w = 0; w < kNodes * kWpp; ++w) mem->push_back(data[w]);
    }
  };

  auto gc_cfg = [&] {
    DsmConfig c = crash_cfg();
    c.meta_ceiling_bytes = 4 * 1024;  // exchanges fire throughout the chain
    // Barrier GC would reclaim the chain's metadata before it ever reaches
    // the ceiling; with it off, only the on-demand exchange reclaims between
    // barriers — the checkpoint pass rides the same barriers either way.
    c.gc_at_barriers = false;
    return c;
  };

  std::vector<std::uint64_t> ref;
  {
    DsmRuntime rt(gc_cfg());
    RunReport rep = rt.run_spmd([&](Tmk& tmk) { workload(tmk, &ref); });
    EXPECT_TRUE(rep.completed);
    // The crash sweep below only means "during GC exchange" if exchanges
    // actually run in this window.
    EXPECT_GT(rt.total_stats().gc_exchanges, 0u);
  }

  for (std::uint32_t at : {9u, 20u, 33u, 47u}) {
    DsmConfig c = gc_cfg();
    c.ckpt_every = ckpt_cadence();
    c.net_crash_node = 3;
    c.net_crash_at = at;
    std::vector<std::uint64_t> mem;
    DsmRuntime rt(c);
    RunReport rep = rt.run_spmd([&](Tmk& tmk) { workload(tmk, &mem); });
    EXPECT_TRUE(rep.completed) << "crash_at " << at;
    EXPECT_TRUE(rep.node_down) << "crash_at " << at;
    EXPECT_EQ(rep.victim, 3u) << "crash_at " << at;
    EXPECT_EQ(rep.recoveries, 1u) << "crash_at " << at;
    EXPECT_EQ(mem, ref) << "crash_at " << at;
  }
}

}  // namespace
}  // namespace now::tmk
