// detail::env_size / env_flag: the config-default override parser used by
// every TMK_* environment knob.  Malformed values must fail loudly — a CI
// matrix leg whose knob silently parsed as a prefix (or as 0) would
// green-light a configuration that never actually ran.
#include <gtest/gtest.h>

#include <cstdlib>

#include "tmk/config.h"

namespace now::tmk {
namespace {

struct ScopedEnv {
  const char* name;
  ScopedEnv(const char* n, const char* value) : name(n) {
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { unsetenv(name); }
};

constexpr char kVar[] = "NOW_TEST_ENV_SIZE_KNOB";

TEST(ConfigEnv, UnsetAndEmptyUseDefault) {
  unsetenv(kVar);
  EXPECT_EQ(detail::env_size(kVar, 7), 7u);
  ScopedEnv env(kVar, "");
  EXPECT_EQ(detail::env_size(kVar, 7), 7u);
}

TEST(ConfigEnv, ParsesPlainIntegers) {
  {
    ScopedEnv env(kVar, "0");
    EXPECT_EQ(detail::env_size(kVar, 7), 0u);
  }
  {
    ScopedEnv env(kVar, "16384");
    EXPECT_EQ(detail::env_size(kVar, 7), 16384u);
  }
}

TEST(ConfigEnv, FlagParsesZeroAndNonzero) {
  {
    ScopedEnv env(kVar, "0");
    EXPECT_FALSE(detail::env_flag(kVar, true));
  }
  {
    ScopedEnv env(kVar, "1");
    EXPECT_TRUE(detail::env_flag(kVar, false));
  }
  unsetenv(kVar);
  EXPECT_TRUE(detail::env_flag(kVar, true));
  EXPECT_FALSE(detail::env_flag(kVar, false));
}

// The lock-push and lock-chain/fork GC knobs ride the same hardened parser;
// their env overrides must land in a freshly constructed DsmConfig.
TEST(ConfigEnv, LockPushKnobsOverrideDefaults) {
  EXPECT_EQ(DsmConfig{}.lock_push_bytes, 0u);  // default: push off
  EXPECT_TRUE(DsmConfig{}.gc_fork_join);
  EXPECT_TRUE(DsmConfig{}.gc_lock_floors);
  {
    ScopedEnv env("TMK_LOCK_PUSH_BYTES", "12288");
    EXPECT_EQ(DsmConfig{}.lock_push_bytes, 12288u);
    EXPECT_TRUE(DsmConfig{}.lock_push_enabled());
  }
  {
    ScopedEnv env("TMK_LOCK_PUSH_PROBE", "5");
    EXPECT_EQ(DsmConfig{}.lock_push_probe, 5u);
  }
  {
    ScopedEnv env("TMK_LOCK_PUSH_REPROBE", "2");
    EXPECT_EQ(DsmConfig{}.lock_push_reprobe, 2u);
  }
  {
    ScopedEnv env("TMK_GC_FORK_JOIN", "0");
    EXPECT_FALSE(DsmConfig{}.gc_fork_join);
  }
  {
    ScopedEnv env("TMK_GC_LOCK_FLOORS", "0");
    EXPECT_FALSE(DsmConfig{}.gc_lock_floors);
  }
}

// The sync-fabric knobs (combining-tree arity, manager sharding) ride the
// same hardened parser: the CI treesync leg sets them as session defaults.
TEST(ConfigEnv, SyncFabricKnobsOverrideDefaults) {
  EXPECT_EQ(DsmConfig{}.barrier_tree_arity, 0u);  // default: centralized/flat
  EXPECT_FALSE(DsmConfig{}.shard_managers);
  {
    ScopedEnv env("TMK_BARRIER_ARITY", "2");
    EXPECT_EQ(DsmConfig{}.barrier_tree_arity, 2u);
  }
  {
    ScopedEnv env("TMK_SHARD_MANAGERS", "1");
    EXPECT_TRUE(DsmConfig{}.shard_managers);
  }
}

TEST(ConfigEnvDeathTest, RejectsMalformedSyncFabricKnobs) {
  {
    ScopedEnv env("TMK_BARRIER_ARITY", "two");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_BARRIER_ARITY");
  }
  {
    ScopedEnv env("TMK_SHARD_MANAGERS", "on");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_SHARD_MANAGERS");
  }
}

// An explicit field assignment still beats the env default, and the push
// stays gated on the diff cache.
TEST(ConfigEnv, LockPushExplicitAssignmentAndCacheGate) {
  ScopedEnv env("TMK_LOCK_PUSH_BYTES", "12288");
  DsmConfig c;
  c.lock_push_bytes = 0;
  EXPECT_FALSE(c.lock_push_enabled());
  DsmConfig d;
  d.diff_cache_bytes_per_page = 0;
  EXPECT_FALSE(d.lock_push_enabled());  // pushes would have nowhere to park
}

// The on-demand GC ceiling: off by default (unbounded metadata, matching
// the original TreadMarks between reclamation points), armed by the env
// knob, and counted as a floor producer the moment it is on.
TEST(ConfigEnv, MetaCeilingKnobOverridesDefault) {
  EXPECT_EQ(DsmConfig{}.meta_ceiling_bytes, 0u);
  EXPECT_FALSE(DsmConfig{}.on_demand_gc_enabled());
  {
    ScopedEnv env("TMK_META_CEILING_BYTES", "262144");
    DsmConfig c;
    EXPECT_EQ(c.meta_ceiling_bytes, 262144u);
    EXPECT_TRUE(c.on_demand_gc_enabled());
    // The ceiling alone must enable GC floors even with every barrier-time
    // and fork/join reclamation point off.
    c.gc_at_barriers = false;
    c.gc_fork_join = false;
    c.gc_lock_floors = false;
    EXPECT_TRUE(c.gc_floors_enabled());
  }
  DsmConfig off;
  off.gc_at_barriers = false;
  off.gc_fork_join = false;
  EXPECT_FALSE(off.gc_floors_enabled());
}

TEST(ConfigEnvDeathTest, RejectsMalformedMetaCeilingKnob) {
  {
    ScopedEnv env("TMK_META_CEILING_BYTES", "256k");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_META_CEILING_BYTES");
  }
  {
    ScopedEnv env("TMK_META_CEILING_BYTES", "-1");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_META_CEILING_BYTES");
  }
  {
    ScopedEnv env("TMK_META_CEILING_BYTES", "99999999999999999999999999");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "overflows");
  }
}

// Crash/recovery knobs: the retry budget that used to be a hard-coded abort
// threshold, the crash script, and the checkpoint cadence — all session
// defaults for the CI crash leg, all hardened by the same parser.
TEST(ConfigEnv, CrashRecoveryKnobsOverrideDefaults) {
  EXPECT_EQ(DsmConfig{}.net_max_retries, 24u);
  EXPECT_EQ(DsmConfig{}.net_crash_node, DsmConfig::kNoCrashNode);
  EXPECT_EQ(DsmConfig{}.net_crash_at, 0u);
  EXPECT_EQ(DsmConfig{}.ckpt_every, 0u);
  EXPECT_FALSE(DsmConfig{}.crash_enabled());
  EXPECT_FALSE(DsmConfig{}.ckpt_enabled());
  {
    ScopedEnv env("TMK_NET_MAX_RETRIES", "3");
    EXPECT_EQ(DsmConfig{}.net_max_retries, 3u);
  }
  {
    ScopedEnv env("TMK_NET_CRASH_NODE", "2");
    DsmConfig c;
    EXPECT_EQ(c.net_crash_node, 2u);
    EXPECT_TRUE(c.crash_enabled());
  }
  {
    ScopedEnv env("TMK_NET_CRASH_AT", "17");
    EXPECT_EQ(DsmConfig{}.net_crash_at, 17u);
  }
  {
    ScopedEnv env("TMK_CKPT_EVERY", "2");
    DsmConfig c;
    EXPECT_EQ(c.ckpt_every, 2u);
    EXPECT_TRUE(c.ckpt_enabled());
  }
}

// A victim id outside the cluster disarms the script (the CI leg sets the
// victim once for suites whose tests run at many node counts), and an
// explicit field assignment still beats the env default.
TEST(ConfigEnv, CrashKnobGatingAndExplicitAssignment) {
  {
    ScopedEnv env("TMK_NET_CRASH_NODE", "12");
    DsmConfig c;
    c.num_nodes = 4;
    EXPECT_FALSE(c.crash_enabled());
    c.num_nodes = 16;
    EXPECT_TRUE(c.crash_enabled());
  }
  ScopedEnv env("TMK_CKPT_EVERY", "2");
  DsmConfig c;
  c.ckpt_every = 0;
  EXPECT_FALSE(c.ckpt_enabled());
}

// The channel the config implies: the retry budget must reach the wire
// layer, and crash injection must force the reliability protocol plus
// keepalive probes on — while a ckpt-only (or knobs-off) run keeps the
// bypassed perfect wire that makes its message counts exact.
TEST(ConfigEnv, CrashKnobsPlumbIntoChannelConfig) {
  {
    DsmConfig c;
    c.net_max_retries = 7;
    EXPECT_EQ(c.channel().max_retries, 7u);
    EXPECT_FALSE(c.channel().reliable);
    EXPECT_EQ(c.channel().probe_idle_host_us, 0u);
  }
  {
    DsmConfig c;
    c.net_crash_node = 1;
    ASSERT_TRUE(c.crash_enabled());
    const sim::ChannelConfig ch = c.channel();
    EXPECT_TRUE(ch.reliable);
    EXPECT_GT(ch.probe_idle_host_us, 0u);
    EXPECT_NE(ch.probe_type, 0u);
  }
  {
    DsmConfig c;
    c.ckpt_every = 4;
    EXPECT_FALSE(c.channel().reliable);
    EXPECT_EQ(c.channel().probe_idle_host_us, 0u);
  }
}

TEST(ConfigEnvDeathTest, RejectsMalformedCrashRecoveryKnobs) {
  {
    ScopedEnv env("TMK_NET_MAX_RETRIES", "many");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_NET_MAX_RETRIES");
  }
  {
    ScopedEnv env("TMK_NET_CRASH_NODE", "node2");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_NET_CRASH_NODE");
  }
  {
    ScopedEnv env("TMK_NET_CRASH_AT", "-3");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_NET_CRASH_AT");
  }
  {
    ScopedEnv env("TMK_CKPT_EVERY", "2nd");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_CKPT_EVERY");
  }
  {
    ScopedEnv env("TMK_CKPT_EVERY", "99999999999999999999999999");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "overflows");
  }
}

TEST(ConfigEnvDeathTest, RejectsMalformedLockPushKnobs) {
  {
    ScopedEnv env("TMK_LOCK_PUSH_BYTES", "16k");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_LOCK_PUSH_BYTES");
  }
  {
    ScopedEnv env("TMK_LOCK_PUSH_PROBE", " 8");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_LOCK_PUSH_PROBE");
  }
  {
    ScopedEnv env("TMK_GC_LOCK_FLOORS", "yes");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "malformed TMK_GC_LOCK_FLOORS");
  }
  {
    ScopedEnv env("TMK_GC_FORK_JOIN", "99999999999999999999999999");
    EXPECT_DEATH({ DsmConfig c; (void)c; }, "overflows");
  }
}

TEST(ConfigEnvDeathTest, RejectsTrailingGarbage) {
  ScopedEnv env(kVar, "16k");
  EXPECT_DEATH(detail::env_size(kVar, 7), "malformed NOW_TEST_ENV_SIZE_KNOB");
}

TEST(ConfigEnvDeathTest, RejectsNegativeNumbers) {
  ScopedEnv env(kVar, "-4");
  EXPECT_DEATH(detail::env_size(kVar, 7), "malformed NOW_TEST_ENV_SIZE_KNOB");
}

TEST(ConfigEnvDeathTest, RejectsWhitespaceAndWords) {
  {
    ScopedEnv env(kVar, " 4");
    EXPECT_DEATH(detail::env_size(kVar, 7), "malformed NOW_TEST_ENV_SIZE_KNOB");
  }
  {
    ScopedEnv env(kVar, "on");
    EXPECT_DEATH(detail::env_flag(kVar, false), "malformed NOW_TEST_ENV_SIZE_KNOB");
  }
}

TEST(ConfigEnvDeathTest, RejectsOverflow) {
  ScopedEnv env(kVar, "99999999999999999999999999");
  EXPECT_DEATH(detail::env_size(kVar, 7), "overflows");
}

}  // namespace
}  // namespace now::tmk
