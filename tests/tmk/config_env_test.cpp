// detail::env_size / env_flag: the config-default override parser used by
// every TMK_* environment knob.  Malformed values must fail loudly — a CI
// matrix leg whose knob silently parsed as a prefix (or as 0) would
// green-light a configuration that never actually ran.
#include <gtest/gtest.h>

#include <cstdlib>

#include "tmk/config.h"

namespace now::tmk {
namespace {

struct ScopedEnv {
  const char* name;
  ScopedEnv(const char* n, const char* value) : name(n) {
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { unsetenv(name); }
};

constexpr char kVar[] = "NOW_TEST_ENV_SIZE_KNOB";

TEST(ConfigEnv, UnsetAndEmptyUseDefault) {
  unsetenv(kVar);
  EXPECT_EQ(detail::env_size(kVar, 7), 7u);
  ScopedEnv env(kVar, "");
  EXPECT_EQ(detail::env_size(kVar, 7), 7u);
}

TEST(ConfigEnv, ParsesPlainIntegers) {
  {
    ScopedEnv env(kVar, "0");
    EXPECT_EQ(detail::env_size(kVar, 7), 0u);
  }
  {
    ScopedEnv env(kVar, "16384");
    EXPECT_EQ(detail::env_size(kVar, 7), 16384u);
  }
}

TEST(ConfigEnv, FlagParsesZeroAndNonzero) {
  {
    ScopedEnv env(kVar, "0");
    EXPECT_FALSE(detail::env_flag(kVar, true));
  }
  {
    ScopedEnv env(kVar, "1");
    EXPECT_TRUE(detail::env_flag(kVar, false));
  }
  unsetenv(kVar);
  EXPECT_TRUE(detail::env_flag(kVar, true));
  EXPECT_FALSE(detail::env_flag(kVar, false));
}

TEST(ConfigEnvDeathTest, RejectsTrailingGarbage) {
  ScopedEnv env(kVar, "16k");
  EXPECT_DEATH(detail::env_size(kVar, 7), "malformed NOW_TEST_ENV_SIZE_KNOB");
}

TEST(ConfigEnvDeathTest, RejectsNegativeNumbers) {
  ScopedEnv env(kVar, "-4");
  EXPECT_DEATH(detail::env_size(kVar, 7), "malformed NOW_TEST_ENV_SIZE_KNOB");
}

TEST(ConfigEnvDeathTest, RejectsWhitespaceAndWords) {
  {
    ScopedEnv env(kVar, " 4");
    EXPECT_DEATH(detail::env_size(kVar, 7), "malformed NOW_TEST_ENV_SIZE_KNOB");
  }
  {
    ScopedEnv env(kVar, "on");
    EXPECT_DEATH(detail::env_flag(kVar, false), "malformed NOW_TEST_ENV_SIZE_KNOB");
  }
}

TEST(ConfigEnvDeathTest, RejectsOverflow) {
  ScopedEnv env(kVar, "99999999999999999999999999");
  EXPECT_DEATH(detail::env_size(kVar, 7), "overflows");
}

}  // namespace
}  // namespace now::tmk
