// Run-forever hardening: deterministic long-run suites driving thousands of
// simulated consistency epochs through barrier-free phases, asserting that
// with the on-demand GC ceiling set (TMK_META_CEILING_BYTES) every node's
// consistency-metadata footprint plateaus at ceiling + one exchange's
// in-flight slack, that it grows without bound with the ceiling off, and
// that final shared memory is byte-identical either way — the exchange may
// only change *when* metadata is reclaimed, never what the pages contain.
//
// Three workload shapes, matching the phases a long-running DSM program
// cycles through:
//  - a barrier-free lock loop (the TSP branch-and-bound shape): every
//    critical section closes one interval and nothing but the ceiling-
//    triggered exchange can ever reclaim it;
//  - the same chain with the migratory lock push on: pushed chunks are
//    retained for relaying, so the plateau additionally proves the
//    exchange floors prune the relay backlog;
//  - mixed lock / semaphore / condvar phases with no interior barrier:
//    the exchange must fold floors across nodes parked in every kind of
//    sync wait, not just lock chains.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

constexpr std::size_t kWpp = kPageSize / sizeof(std::uint64_t);

DsmConfig soak_cfg(std::uint32_t nodes, std::size_t ceiling,
                   std::size_t lock_push = 0) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.meta_ceiling_bytes = ceiling;
  // The loops below are barrier-free: only the on-demand exchange may
  // reclaim, so the plateau cannot be barrier-GC in disguise.
  c.gc_at_barriers = false;
  c.lock_push_bytes = lock_push;
  c.time.cpu_scale = 0.0;
  // The plateau slacks below are calibrated for a perfect wire: injected
  // faults stretch the GC exchange (retransmit timeouts) while the loop
  // keeps allocating, legitimately raising the in-flight peak.  Pin the
  // wire here; LossyWire* below turns faults back on with its own slack.
  c.net_fault = {};
  c.net_reliable = false;
  return c;
}

// Per-node footprint curve, probed by the node itself (the compute thread
// owns its diff caches, so the probe needs no cross-thread choreography).
struct NodeCurve {
  std::size_t early = 0;  // max over the first two probes
  std::size_t late = 0;   // max over the last two probes
  std::size_t peak = 0;   // max over the whole run
  std::size_t relay_peak = 0;
};

// The canonical run-forever workload: every node loops on the same lock,
// bumping the shared counter and rewriting a sliding window of a second
// page.  Each critical section closes one interval — one epoch of
// consistency metadata — and with nodes * iters in the thousands the log
// and diff store grow linearly unless something reclaims them mid-chain.
void soak_lock_loop(Tmk& tmk, std::size_t iters, std::size_t probe_stride,
                    std::vector<NodeCurve>* curves,
                    std::vector<std::uint64_t>* out) {
  gptr<std::uint64_t> state(kPageSize);
  if (tmk.id() == 0) {
    tmk.lock_acquire(0);
    state[0] = 1;
    state[kWpp] = 1;
    tmk.lock_release(0);
  }
  tmk.barrier();
  NodeCurve curve;
  const std::size_t total_probes = iters / probe_stride;
  std::size_t probes = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    tmk.lock_acquire(0);
    const std::uint64_t v = state[0];
    state[0] = v + 1;
    for (std::size_t k = 0; k < 16; ++k)
      state[kWpp + 1 + (v + k) % 96] = v * 100 + k;
    tmk.lock_release(0);
    if (probe_stride != 0 && i % probe_stride == probe_stride - 1) {
      const auto f = tmk.node.meta_footprint();
      const std::size_t t = f.total_bytes();
      curve.peak = std::max(curve.peak, t);
      curve.relay_peak = std::max(curve.relay_peak, f.relay_bytes);
      if (probes < 2) curve.early = std::max(curve.early, t);
      if (probes + 2 >= total_probes) curve.late = std::max(curve.late, t);
      ++probes;
    }
    std::this_thread::yield();
  }
  tmk.barrier();
  if (curves != nullptr) (*curves)[tmk.id()] = curve;
  if (out != nullptr && tmk.id() == 0) {
    out->push_back(state[0]);
    for (std::size_t k = 0; k < 97; ++k) out->push_back(state[kWpp + k]);
  }
}

// The plateau, the growth and the bytes, on the plain pull path.
// ~1000 simulated epochs (4 nodes x 256 critical sections), all of them in
// one barrier-free stretch: without the ceiling nothing reclaims anything.
TEST(Soak, BarrierFreeLockLoopPlateausUnderCeiling) {
  constexpr std::size_t kIters = 256;
  constexpr std::size_t kStride = 16;
  constexpr std::size_t kCeiling = 12 * 1024;
  // One exchange's in-flight slack: the footprint keeps growing between the
  // initiation and the compute thread applying the departed floor (a few
  // critical sections' worth of records and diffs, bounded well under the
  // ceiling itself).
  constexpr std::size_t kSlack = 12 * 1024;

  auto run = [&](std::size_t ceiling, std::vector<NodeCurve>& curves,
                 std::vector<std::uint64_t>& mem) {
    curves.assign(4, {});
    DsmRuntime rt(soak_cfg(4, ceiling));
    rt.run_spmd(
        [&](Tmk& tmk) { soak_lock_loop(tmk, kIters, kStride, &curves, &mem); });
    return rt.total_stats();
  };

  std::vector<NodeCurve> on, off;
  std::vector<std::uint64_t> on_mem, off_mem;
  const auto s_on = run(kCeiling, on, on_mem);
  const auto s_off = run(0, off, off_mem);

  // Byte-identical final memory, and the counter's deterministic total.
  ASSERT_EQ(on_mem.size(), off_mem.size());
  EXPECT_EQ(on_mem, off_mem);
  EXPECT_EQ(on_mem[0], 1u + 4 * kIters);

  // The exchange machinery actually ran — and only with the ceiling set.
  EXPECT_GT(s_on.gc_exchanges, 0u);
  EXPECT_GT(s_on.gc_records_reclaimed, 0u);
  EXPECT_GT(s_on.gc_diff_bytes_reclaimed, 0u);
  EXPECT_EQ(s_off.gc_exchanges, 0u);
  EXPECT_EQ(s_off.gc_records_reclaimed, 0u);
  EXPECT_EQ(s_off.gc_diff_bytes_reclaimed, 0u);

  std::size_t on_peak = 0, off_peak = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    // Plateau: every probe on every node, over the whole run, stays under
    // ceiling + slack — the curve is flat, not merely slowly growing.
    EXPECT_LE(on[i].peak, kCeiling + kSlack) << "node " << i;
    // Unbounded off: the same probes keep climbing.
    EXPECT_GT(off[i].late, off[i].early) << "node " << i;
    on_peak = std::max(on_peak, on[i].peak);
    off_peak = std::max(off_peak, off[i].peak);
  }
  // And the separation is gross, not marginal: the ceiling-off run's
  // busiest node holds multiples of the ceiling-on bound.
  EXPECT_GT(off_peak, 2 * (kCeiling + kSlack));
  EXPECT_GT(off_peak, 2 * on_peak);
}

// The same chain as a migratory-push relay: with lock_push on, consumed
// chunks are retained (droppable) to relay down the chain, so the footprint
// includes a relay backlog only the exchange floors can prune mid-chain.
TEST(Soak, MigratoryChainWithLockPushPlateausAndPrunes) {
  constexpr std::size_t kIters = 192;
  constexpr std::size_t kStride = 16;
  constexpr std::size_t kCeiling = 16 * 1024;
  constexpr std::size_t kSlack = 16 * 1024;

  auto run = [&](std::size_t ceiling, std::vector<NodeCurve>& curves,
                 std::vector<std::uint64_t>& mem) {
    curves.assign(4, {});
    DsmRuntime rt(soak_cfg(4, ceiling, /*lock_push=*/16 * 1024));
    rt.run_spmd(
        [&](Tmk& tmk) { soak_lock_loop(tmk, kIters, kStride, &curves, &mem); });
    return rt.total_stats();
  };

  std::vector<NodeCurve> on, off;
  std::vector<std::uint64_t> on_mem, off_mem;
  const auto s_on = run(kCeiling, on, on_mem);
  const auto s_off = run(0, off, off_mem);

  ASSERT_EQ(on_mem.size(), off_mem.size());
  EXPECT_EQ(on_mem, off_mem);
  EXPECT_EQ(on_mem[0], 1u + 4 * kIters);

  // The chain kept pushing while the exchange reclaimed under it, and the
  // floors pruned retained relay chunks instead of letting them ride the
  // cache forever.
  EXPECT_GT(s_on.lock_pushes_sent, 0u);
  EXPECT_GT(s_on.gc_exchanges, 0u);
  EXPECT_GT(s_on.relay_chunks_pruned, 0u);
  EXPECT_GT(s_on.relay_bytes_pruned, 0u);
  EXPECT_EQ(s_off.gc_exchanges, 0u);

  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_LE(on[i].peak, kCeiling + kSlack) << "node " << i;
    EXPECT_GT(off[i].late, off[i].early) << "node " << i;
  }
}

// Mixed sync phases with no interior barrier: rotating lock critical
// sections, a semaphore producer/consumer handoff and a periodic condvar
// gate.  Floors must fold across nodes parked in sema_wait and cond_wait —
// the stale-vt hazard the manager-delta cut exists for — while the ceiling
// keeps the footprint flat across hundreds of phases.
TEST(Soak, MixedSemaCondPhasesPlateauUnderCeiling) {
  constexpr std::size_t kPhases = 96;
  // The mixed workload dirties few words per phase (~13KB unbounded meta at
  // 96 phases), so the ceiling sits lower than the lock-loop tests'.
  constexpr std::size_t kCeiling = 6 * 1024;
  constexpr std::size_t kSlack = 6 * 1024;
  constexpr std::uint32_t kNodes = 4;

  auto run = [&](std::size_t ceiling, std::vector<NodeCurve>& curves,
                 std::vector<std::uint64_t>& mem) {
    curves.assign(kNodes, {});
    DsmRuntime rt(soak_cfg(kNodes, ceiling));
    rt.run_spmd([&](Tmk& tmk) {
      gptr<std::uint64_t> state(kPageSize);
      const std::uint32_t id = tmk.id();
      if (id == 0) {
        tmk.lock_acquire(0);
        state[0] = 1;
        tmk.lock_release(0);
      }
      tmk.barrier();
      NodeCurve curve;
      for (std::size_t p = 0; p < kPhases; ++p) {
        // Lock phase: every node's critical section closes an interval.
        tmk.lock_acquire(0);
        const std::uint64_t v = state[0];
        state[0] = v + 1;
        state[1 + (v % 32)] = v;
        tmk.lock_release(0);

        // Semaphore phase: a rotating producer writes a word and releases
        // the consumers; the sema's release->acquire edge must carry the
        // write even after exchange floors truncated the manager's log.
        // One sema per consumer: a shared counting sema would let a slow
        // consumer's phase-p wait eat a token an *earlier* phase's producer
        // posted, and that token's acquire edge predates phase p's write.
        // Per-consumer tokens are posted in phase order (phase p+1's
        // producer first consumed a phase-p token), so the p-th wait always
        // pairs with the p-th post.
        const std::uint32_t producer = static_cast<std::uint32_t>(p % kNodes);
        if (id == producer) {
          state[64 + p % 32] = 1000 + p;
          for (std::uint32_t i = 0; i < kNodes; ++i)
            if (i != producer) tmk.sema_signal(10 + i);
        } else {
          tmk.sema_wait(10 + id);
          EXPECT_EQ(state[64 + p % 32], 1000 + p) << "phase " << p;
        }

        // Condvar gate every 8th phase: a rotating leader flips the phase
        // flag under the lock and broadcasts; the waiters' parked vector
        // times are exactly what the exchange floor may overtake.
        if (p % 8 == 7) {
          const std::uint32_t leader =
              static_cast<std::uint32_t>((p / 8) % kNodes);
          const std::size_t slot = 128 + (p / 8);
          if (id == leader) {
            tmk.lock_acquire(2);
            state[slot] = p + 1;
            tmk.cond_broadcast(2, 0);
            tmk.lock_release(2);
          } else {
            tmk.lock_acquire(2);
            while (state[slot] == 0) tmk.cond_wait(2, 0);
            tmk.lock_release(2);
          }
        }

        const auto f = tmk.node.meta_footprint();
        const std::size_t t = f.total_bytes();
        curve.peak = std::max(curve.peak, t);
        if (p < 8) curve.early = std::max(curve.early, t);
        if (p + 8 >= kPhases) curve.late = std::max(curve.late, t);
        std::this_thread::yield();
      }
      tmk.barrier();
      curves[id] = curve;
      if (id == 0) {
        mem.push_back(state[0]);
        for (std::size_t k = 1; k < 256; ++k) mem.push_back(state[k]);
      }
    });
    return rt.total_stats();
  };

  std::vector<NodeCurve> on, off;
  std::vector<std::uint64_t> on_mem, off_mem;
  const auto s_on = run(kCeiling, on, on_mem);
  const auto s_off = run(0, off, off_mem);

  ASSERT_EQ(on_mem.size(), off_mem.size());
  EXPECT_EQ(on_mem, off_mem);
  EXPECT_EQ(on_mem[0], 1u + kNodes * kPhases);

  EXPECT_GT(s_on.gc_exchanges, 0u);
  EXPECT_GT(s_on.sema_ops, 0u);
  EXPECT_GT(s_on.cond_ops, 0u);
  EXPECT_EQ(s_off.gc_exchanges, 0u);

  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_LE(on[i].peak, kCeiling + kSlack) << "node " << i;
    EXPECT_GT(off[i].late, off[i].early) << "node " << i;
  }
}

// The ceiling and the lossy wire together: the migratory relay chain runs
// over a link dropping 1% / duplicating 0.5% / reordering 1% of packets,
// with the retransmission channel underneath.  Final memory must stay
// byte-identical to a perfect-wire run, the exchange must still fire, and
// the footprint must still plateau — with wider slack, because a dropped
// exchange message stalls reclamation for a retransmit timeout while the
// loop keeps allocating (that stretch is the protocol working, not a leak).
TEST(Soak, LossyWireMigratoryChainPlateausByteIdentical) {
  constexpr std::size_t kIters = 192;
  constexpr std::size_t kStride = 16;
  constexpr std::size_t kCeiling = 16 * 1024;
  // Perfect-wire peaks sit near 2x ceiling; the observed lossy-wire peak is
  // ~2.5x (retransmit-stretched exchanges).  4x still separates grossly
  // from the unbounded run, which climbs past 8x by the end of the chain.
  constexpr std::size_t kChaosSlack = 3 * kCeiling;

  auto run = [&](const sim::FaultConfig& fault, std::vector<NodeCurve>& curves,
                 std::vector<std::uint64_t>& mem, sim::TrafficSnapshot& traffic) {
    curves.assign(4, {});
    DsmConfig c = soak_cfg(4, kCeiling, /*lock_push=*/16 * 1024);
    c.net_fault = fault;
    DsmRuntime rt(c);
    rt.run_spmd(
        [&](Tmk& tmk) { soak_lock_loop(tmk, kIters, kStride, &curves, &mem); });
    traffic = rt.traffic();
    return rt.total_stats();
  };

  sim::FaultConfig chaos;
  chaos.drop_ppm = 10000;
  chaos.dup_ppm = 5000;
  chaos.reorder_ppm = 10000;
  chaos.jitter_ns = 200'000;
  chaos.seed = 0x50a4u;

  std::vector<NodeCurve> lossy, clean;
  std::vector<std::uint64_t> lossy_mem, clean_mem;
  sim::TrafficSnapshot lossy_t, clean_t;
  const auto s_lossy = run(chaos, lossy, lossy_mem, lossy_t);
  const auto s_clean = run({}, clean, clean_mem, clean_t);

  // The wire really was lossy, and the channel really recovered it.
  EXPECT_GT(lossy_t.chan.drops_injected, 0u);
  EXPECT_GT(lossy_t.chan.dup_drops, 0u);
  EXPECT_GT(lossy_t.chan.retransmits, 0u);
  EXPECT_EQ(clean_t.chan.drops_injected, 0u);
  EXPECT_EQ(clean_t.chan.retransmits, 0u);

  // Exactly-once delivery restored: byte-identical final memory and the
  // deterministic counter total, same as the perfect wire.
  ASSERT_EQ(lossy_mem.size(), clean_mem.size());
  EXPECT_EQ(lossy_mem, clean_mem);
  EXPECT_EQ(lossy_mem[0], 1u + 4 * kIters);

  // The exchange still fired and still pruned the relay backlog.
  EXPECT_GT(s_lossy.gc_exchanges, 0u);
  EXPECT_GT(s_lossy.relay_chunks_pruned, 0u);
  EXPECT_GT(s_clean.gc_exchanges, 0u);

  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_LE(lossy[i].peak, kCeiling + kChaosSlack) << "node " << i;
}

}  // namespace
}  // namespace now::tmk
