// The adaptive hybrid invalidate/update protocol: copyset tracking promotes
// epoch-stable reader sets to barrier-time diff pushes, armed probes demote
// pushes nobody reads, and the whole exchange must be byte-identical to the
// pull path and safe under barrier GC's diff reclamation.
#include <gtest/gtest.h>

#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes, bool update) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.update_mode = update;
  c.time.cpu_scale = 0.0;
  return c;
}

constexpr std::size_t kWpp = kPageSize / sizeof(std::uint64_t);

// One producer-consumer cycle: node 0 rewrites `pages` pages, barrier, node 1
// reads them (first `read_epochs` epochs only), barrier.
void producer_consumer(Tmk& tmk, std::size_t pages, std::size_t epochs,
                       std::size_t read_epochs,
                       std::vector<std::uint64_t>* out = nullptr) {
  gptr<std::uint64_t> base(kPageSize);
  volatile std::uint64_t sink = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    if (tmk.id() == 0)
      for (std::size_t pg = 0; pg < pages; ++pg)
        for (std::size_t k = 0; k < 8; ++k)
          base[pg * kWpp + k] = e * 100000 + pg * 100 + k + 1;
    tmk.barrier();
    if (tmk.id() == 1 && e < read_epochs)
      for (std::size_t pg = 0; pg < pages; ++pg)
        sink += base[pg * kWpp + (e % 8)];
    tmk.barrier();
  }
  (void)sink;
  if (out != nullptr && tmk.id() == 1)
    for (std::size_t pg = 0; pg < pages; ++pg)
      for (std::size_t k = 0; k < 8; ++k) out->push_back(base[pg * kWpp + k]);
}

// A stable reader set is promoted after update_promote_epochs epochs and the
// pushes then serve the reads without faults or fetch round trips.
TEST(UpdateProtocol, PromotionAfterStableEpochs) {
  constexpr std::size_t kPages = 8, kEpochs = 10;
  DsmStatsSnapshot pull, push;
  {
    DsmRuntime rt(cfg(2, false));
    rt.run_spmd([&](Tmk& tmk) { producer_consumer(tmk, kPages, kEpochs, kEpochs); });
    pull = rt.total_stats();
  }
  {
    DsmRuntime rt(cfg(2, true));
    rt.run_spmd([&](Tmk& tmk) { producer_consumer(tmk, kPages, kEpochs, kEpochs); });
    push = rt.total_stats();
  }
  EXPECT_EQ(pull.update_pushes_sent, 0u);
  // Promotion takes 2 stable epochs + 1 epoch of lag before the first push:
  // at least 6 of the 10 epochs ride the push path.
  EXPECT_GE(push.update_pushes_sent, 6u);
  EXPECT_GE(push.update_pages_pushed, 6u * kPages);
  // Every pushed epoch's pages come out valid (or armed and locally
  // validated); none of them pay a fetch round trip.
  EXPECT_GE(push.update_push_hits, 6u * kPages);
  EXPECT_LT(push.read_faults, pull.read_faults);
  EXPECT_LT(push.diff_fetches, pull.diff_fetches);
  EXPECT_EQ(push.update_demotions, 0u);
}

// A reader that stops touching the pushed pages demotes them at the writer:
// pushes stop within the probe cadence instead of streaming forever.
TEST(UpdateProtocol, DemotionOnUntouchedPush) {
  constexpr std::size_t kPages = 8, kEpochs = 16, kReadEpochs = 5;
  DsmStatsSnapshot s;
  {
    DsmRuntime rt(cfg(2, true));
    rt.run_spmd(
        [&](Tmk& tmk) { producer_consumer(tmk, kPages, kEpochs, kReadEpochs); });
    s = rt.total_stats();
  }
  EXPECT_GE(s.update_demotions, kPages);
  // After the reader stops at epoch 5, the next armed probe goes untouched
  // and the deny lands: pushes must stop well before the run's 16 epochs
  // could have produced (16 - 3) of them.
  EXPECT_GE(s.update_pushes_sent, 2u);
  EXPECT_LE(s.update_pushes_sent, 10u);
}

// The push path must produce byte-identical shared memory to the pull path.
TEST(UpdateProtocol, ByteIdentityPushVsPull) {
  constexpr std::size_t kPages = 6, kEpochs = 8;
  std::vector<std::uint64_t> pull, push;
  {
    DsmRuntime rt(cfg(2, false));
    rt.run_spmd(
        [&](Tmk& tmk) { producer_consumer(tmk, kPages, kEpochs, kEpochs, &pull); });
  }
  {
    DsmRuntime rt(cfg(2, true));
    rt.run_spmd(
        [&](Tmk& tmk) { producer_consumer(tmk, kPages, kEpochs, kEpochs, &push); });
  }
  ASSERT_EQ(pull.size(), push.size());
  EXPECT_EQ(pull, push);
}

// Multi-writer page: pushes from one promoted writer must not validate the
// page past another writer's un-pushed notice — the cover check keeps the
// lamport apply order intact.  Both nodes write disjoint halves of the same
// pages; a third node reads them every epoch.
TEST(UpdateProtocol, MultiWriterCoverStaysCorrect) {
  constexpr std::size_t kPages = 4, kEpochs = 8;
  std::vector<std::uint64_t> got;
  DsmRuntime rt(cfg(3, true));
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> base(kPageSize);
    volatile std::uint64_t sink = 0;
    for (std::size_t e = 0; e < kEpochs; ++e) {
      if (tmk.id() < 2)
        for (std::size_t pg = 0; pg < kPages; ++pg)
          for (std::size_t k = 0; k < 4; ++k)
            base[pg * kWpp + tmk.id() * 4 + k] = e * 1000 + tmk.id() * 100 + k + 1;
      tmk.barrier();
      if (tmk.id() == 2)
        for (std::size_t pg = 0; pg < kPages; ++pg)
          sink += base[pg * kWpp + (e % 8)];
      tmk.barrier();
    }
    (void)sink;
    if (tmk.id() == 2)
      for (std::size_t pg = 0; pg < kPages; ++pg)
        for (std::size_t k = 0; k < 8; ++k) got.push_back(base[pg * kWpp + k]);
  });
  ASSERT_EQ(got.size(), kPages * 8);
  for (std::size_t pg = 0; pg < kPages; ++pg)
    for (std::size_t k = 0; k < 8; ++k) {
      const std::uint64_t writer = k / 4;
      EXPECT_EQ(got[pg * 8 + k], (kEpochs - 1) * 1000 + writer * 100 + (k % 4) + 1)
          << "page " << pg << " slot " << k;
    }
}

// GC-floor interaction: with barrier GC reclaiming diff stores, parked
// pushes that go unconsumed must survive via the GC pin path — a later
// fault is served locally even though the writer has reclaimed the diffs —
// and the byte contents stay identical to the pull path.
TEST(UpdateProtocol, GcFloorKeepsPushedDiffsServable) {
  constexpr std::size_t kPages = 4, kEpochs = 12;
  // Reader reads in bursts with idle epochs in between, so pushed pages sit
  // unconsumed across barriers (and GC floors) before a fault finally wants
  // them.
  auto workload = [&](Tmk& tmk, std::vector<std::uint64_t>* out) {
    gptr<std::uint64_t> base(kPageSize);
    volatile std::uint64_t sink = 0;
    for (std::size_t e = 0; e < kEpochs; ++e) {
      if (tmk.id() == 0)
        for (std::size_t pg = 0; pg < kPages; ++pg)
          for (std::size_t k = 0; k < 8; ++k)
            base[pg * kWpp + k] = e * 100000 + pg * 100 + k + 1;
      tmk.barrier();
      if (tmk.id() == 1 && e % 3 != 2)  // skip every third epoch
        for (std::size_t pg = 0; pg < kPages; ++pg)
          sink += base[pg * kWpp + (e % 8)];
      tmk.barrier();
    }
    (void)sink;
    if (out != nullptr && tmk.id() == 1)
      for (std::size_t pg = 0; pg < kPages; ++pg)
        for (std::size_t k = 0; k < 8; ++k) out->push_back(base[pg * kWpp + k]);
  };

  std::vector<std::uint64_t> pull, push;
  DsmStatsSnapshot s;
  {
    auto c = cfg(2, false);
    c.gc_at_barriers = true;
    DsmRuntime rt(c);
    rt.run_spmd([&](Tmk& tmk) { workload(tmk, &pull); });
  }
  {
    auto c = cfg(2, true);
    c.gc_at_barriers = true;
    DsmRuntime rt(c);
    rt.run_spmd([&](Tmk& tmk) { workload(tmk, &push); });
    s = rt.total_stats();
  }
  EXPECT_EQ(pull, push);
  // GC must have reclaimed diff bytes while pushes were flowing; the run is
  // only meaningful if both machines were actually on.
  EXPECT_GT(s.gc_diff_bytes_reclaimed, 0u);
  EXPECT_GT(s.update_pushes_sent, 0u);
}

// Pushes the per-page cache budget can never hold (oversized epoch diffs)
// must demote instead of streaming wasted bytes every epoch: the insert
// rejection sends a deny, and re-promotion backs off.
TEST(UpdateProtocol, BudgetRejectedPushesDemote) {
  constexpr std::size_t kPages = 4, kEpochs = 12;
  auto c = cfg(2, true);
  c.diff_cache_bytes_per_page = 512;  // a full-page diff can never fit
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> base(kPageSize);
    volatile std::uint64_t sink = 0;
    for (std::size_t e = 0; e < kEpochs; ++e) {
      if (tmk.id() == 0)
        for (std::size_t pg = 0; pg < kPages; ++pg)
          for (std::size_t k = 0; k < kWpp; ++k)  // dirty the whole page
            base[pg * kWpp + k] = e * 1000000 + pg * 10000 + k + 1;
      tmk.barrier();
      if (tmk.id() == 1)
        for (std::size_t pg = 0; pg < kPages; ++pg)
          sink += base[pg * kWpp + (e % kWpp)];
      tmk.barrier();
    }
    (void)sink;
  });
  const auto s = rt.total_stats();
  // The reader keeps faulting (reads are live), so the copyset looks stable
  // and the page promotes — but every pushed chunk bounces off the budget.
  // Without the rejection deny this would push every epoch to the end.
  EXPECT_GE(s.update_demotions, kPages);
  EXPECT_LE(s.update_pushes_sent, 6u);
  EXPECT_EQ(s.update_push_hits, 0u);
}

// Update mode is inert without the diff cache (pushes would have nowhere to
// park): no pushes, identical traffic to plain invalidate.
TEST(UpdateProtocol, InertWithoutDiffCache) {
  constexpr std::size_t kPages = 4, kEpochs = 6;
  auto c = cfg(2, true);
  c.diff_cache_bytes_per_page = 0;
  ASSERT_FALSE(c.update_enabled());
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) { producer_consumer(tmk, kPages, kEpochs, kEpochs); });
  const auto s = rt.total_stats();
  EXPECT_EQ(s.update_pushes_sent, 0u);
  EXPECT_EQ(s.update_push_hits, 0u);
  EXPECT_EQ(rt.traffic().messages_by_type[kUpdatePush], 0u);
}

}  // namespace
}  // namespace now::tmk
