// Multi-page prefetch on fault: a fault folds neighboring invalid pages'
// wanted interval seqs into the kDiffRequest it already sends, parking the
// extra chunks in the neighbors' requester-side diff caches.  These tests
// pin down
//  - the headline win: a strided traversal sends >= 2x fewer kDiffRequest
//    messages with prefetch on, with byte-identical final contents;
//  - the counters: prefetch_requests_batched / prefetch_pages_filled /
//    prefetch_hits move exactly when prefetch serves a fault, and stay zero
//    with the window (or the cache it rides on) disabled;
//  - writer scoping: only writers the fault already contacts are prefetched
//    from — a neighbor written by somebody else costs no extra message.
// (Budget eviction + transparent refetch lives in tmk_diff_cache_test; the
// prefetch/GC reclaim interplay in tmk_gc_test; cross-config byte identity
// in tmk_fuzz_consistency_test.)
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes, std::size_t prefetch,
              std::size_t cache_bytes = 16 * 1024, bool gc = false) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.prefetch_pages = prefetch;
  c.diff_cache_bytes_per_page = cache_bytes;
  c.gc_at_barriers = gc;
  c.time.cpu_scale = 0.0;
  return c;
}

constexpr std::size_t kSweepPages = 32;
constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

// Node 0 dirties a plane of pages; node 1 then walks them in ascending page
// order (the Sweep3D/FFT-transpose access shape): every page fault wants
// diffs from the same writer, so the window can batch ahead.
struct SweepOutcome {
  std::uint64_t diff_requests = 0;
  DsmStatsSnapshot stats;
  std::vector<std::uint64_t> contents;  // one probe word per page
};

SweepOutcome run_strided_sweep(std::size_t prefetch) {
  SweepOutcome out;
  out.contents.resize(kSweepPages);
  DsmRuntime rt(cfg(2, prefetch));
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> base(kPageSize);
    if (tmk.id() == 0)
      for (std::size_t pg = 0; pg < kSweepPages; ++pg)
        for (std::size_t k = 0; k < 16; ++k)
          base[pg * kWordsPerPage + k] = pg * 1000 + k;
    tmk.barrier();
    if (tmk.id() == 1)
      for (std::size_t pg = 0; pg < kSweepPages; ++pg)
        out.contents[pg] = base[pg * kWordsPerPage + (pg % 16)];
    tmk.barrier();
  });
  out.diff_requests = rt.traffic().messages_by_type[kDiffRequest];
  out.stats = rt.total_stats();
  return out;
}

TEST(Prefetch, StridedSweepHalvesDiffRequestMessages) {
  const SweepOutcome off = run_strided_sweep(0);
  const SweepOutcome on = run_strided_sweep(4);

  // Identical bytes read either way.
  ASSERT_EQ(on.contents, off.contents);
  for (std::size_t pg = 0; pg < kSweepPages; ++pg)
    EXPECT_EQ(on.contents[pg], pg * 1000 + (pg % 16));

  // Without prefetch the walk pays one request per page; with a window of 4
  // one request serves the faulting page plus up to 4 neighbors.
  EXPECT_GE(off.diff_requests, kSweepPages);
  EXPECT_GE(off.diff_requests, 2 * on.diff_requests)
      << "prefetch=4 sent " << on.diff_requests << " kDiffRequests vs "
      << off.diff_requests << " with prefetch off";

  EXPECT_EQ(off.stats.prefetch_requests_batched, 0u);
  EXPECT_EQ(off.stats.prefetch_pages_filled, 0u);
  EXPECT_EQ(off.stats.prefetch_hits, 0u);
  EXPECT_EQ(off.stats.diff_cache_hits, 0u);

  EXPECT_GT(on.stats.prefetch_requests_batched, 0u);
  EXPECT_GT(on.stats.prefetch_pages_filled, 0u);
  // Most pages (all but the window-leading faults) are served from cache.
  EXPECT_GE(on.stats.prefetch_hits, kSweepPages / 2);
  EXPECT_EQ(on.stats.prefetch_hits, on.stats.diff_cache_hits);
  EXPECT_GT(on.stats.diff_cache_bytes_saved, 0u);
}

TEST(Prefetch, DisabledWhileDiffCacheIsOff) {
  // prefetch_pages > 0 but no cache to park chunks in: the window must be
  // inert — same message count as prefetch off, no counters moving.
  DsmRuntime rt(cfg(2, /*prefetch=*/4, /*cache_bytes=*/0));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> base(kPageSize);
    if (tmk.id() == 0)
      for (std::size_t pg = 0; pg < 8; ++pg) base[pg * kWordsPerPage] = pg + 1;
    tmk.barrier();
    if (tmk.id() == 1)
      for (std::size_t pg = 0; pg < 8; ++pg)
        EXPECT_EQ(base[pg * kWordsPerPage], pg + 1);
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  EXPECT_EQ(s.prefetch_requests_batched, 0u);
  EXPECT_EQ(s.prefetch_pages_filled, 0u);
  EXPECT_EQ(s.prefetch_hits, 0u);
  EXPECT_EQ(rt.traffic().messages_by_type[kDiffRequest], 8u);
}

TEST(Prefetch, OnlyWritersAlreadyContactedAreBatched) {
  // Page A is written by node 0, its neighbor B by node 2: the fault on A
  // talks to node 0 only, so B must not be prefetched (that would be a new
  // message to a new writer, defeating the amortization).
  DsmRuntime rt(cfg(3, /*prefetch=*/4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> a(kPageSize);
    gptr<std::uint64_t> b(kPageSize + kPageSize);
    if (tmk.id() == 0) a[0] = 11;
    if (tmk.id() == 2) b[0] = 22;
    tmk.barrier();
    if (tmk.id() == 1) {
      EXPECT_EQ(a[0], 11u);  // fault on A: no candidate shares a writer
      EXPECT_EQ(b[0], 22u);  // separate fault, separate request
    }
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  EXPECT_EQ(s.prefetch_requests_batched, 0u);
  EXPECT_EQ(s.prefetch_hits, 0u);
}

}  // namespace
}  // namespace now::tmk
