// The combining-tree barrier fabric: topology shape, byte-for-byte
// equivalence with the centralized (flat) barrier across arities, GC-floor
// folding up the tree, update pushes draining at interior nodes, and the
// per-node message-load contraction the tree exists for.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tmk/tmk.h"
#include "tmk/topology.h"

namespace now::tmk {
namespace {

DsmConfig tree_cfg(std::uint32_t nodes, std::uint32_t arity, bool shard = false) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.barrier_tree_arity = arity;
  c.shard_managers = shard;
  c.time.cpu_scale = 0.0;
  return c;
}

TEST(SyncTopology, HeapIndexedTreeShape) {
  const SyncTopology t(tree_cfg(8, 2));
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(t.barrier_root(), 0u);
  EXPECT_EQ(t.barrier_children(0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(t.barrier_children(1), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(t.barrier_children(3), (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(t.barrier_children(4), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(t.barrier_parent(7), 3u);
  EXPECT_EQ(t.barrier_parent(4), 1u);
  // Leaves arrive at their parent; combining points arrive at themselves.
  EXPECT_EQ(t.barrier_owner(7), 3u);
  EXPECT_EQ(t.barrier_owner(3), 3u);
  EXPECT_EQ(t.barrier_owner(0), 0u);
  // Fan-in: child subtrees + the node's own compute thread.
  EXPECT_EQ(t.barrier_fanin(0), 3u);
  EXPECT_EQ(t.barrier_fanin(3), 2u);
  EXPECT_EQ(t.barrier_fanin(7), 1u);
  EXPECT_EQ(t.barrier_height(), 3u);       // node 7 sits 3 edges deep
  EXPECT_EQ(t.critical_path_hops(), 6u);
}

TEST(SyncTopology, FlatTreeIsTheCentralizedBarrier) {
  // Arity 0 (the default) and any arity >= n-1 degenerate to depth 1:
  // every node is a child of the root, which is the centralized manager.
  for (std::uint32_t arity : {0u, 7u, 8u, 100u}) {
    const SyncTopology t(tree_cfg(8, arity));
    EXPECT_EQ(t.barrier_height(), 1u) << "arity " << arity;
    EXPECT_EQ(t.barrier_fanin(0), 8u) << "arity " << arity;
    for (std::uint32_t n = 1; n < 8; ++n) {
      EXPECT_EQ(t.barrier_owner(n), 0u);
      EXPECT_FALSE(t.barrier_interior(n));
    }
  }
  // Single node: its own (trivial) owner.
  const SyncTopology one(tree_cfg(1, 2));
  EXPECT_EQ(one.barrier_owner(0), 0u);
  EXPECT_EQ(one.barrier_fanin(0), 1u);
  EXPECT_EQ(one.critical_path_hops(), 0u);
}

TEST(SyncTopology, ShardHashSpreadsDenseIds) {
  const SyncTopology mod(tree_cfg(8, 0, /*shard=*/false));
  EXPECT_EQ(mod.lock_manager(0), 0u);  // the paper's static placement
  EXPECT_EQ(mod.lock_manager(9), 1u);
  const SyncTopology hash(tree_cfg(8, 0, /*shard=*/true));
  // Deterministic, in range, and decorrelated from the id order: dense ids
  // 0..15 must not map to node (id % 8) everywhere (that would mean the
  // hash degenerated to the modulo and hot object 0 stays on node 0+tree
  // root forever).
  int moved = 0;
  for (std::uint32_t id = 0; id < 16; ++id) {
    const std::uint32_t n = hash.lock_manager(id);
    EXPECT_LT(n, 8u);
    EXPECT_EQ(n, hash.lock_manager(id));  // stable
    if (n != id % 8) ++moved;
  }
  EXPECT_GT(moved, 4);
  // Lock and sema spaces are salted apart.
  bool differs = false;
  for (std::uint32_t id = 0; id < 16 && !differs; ++id)
    differs = hash.lock_manager(id) != hash.sema_manager(id);
  EXPECT_TRUE(differs);
}

// Deterministic mini-workload shared by the equivalence tests: per epoch
// every node writes its strided slice of the data pages, all cross-read
// after the barrier, and half the nodes bump lock-guarded counters (so the
// sharded managers and the grant chain are exercised too).
constexpr std::size_t kPages = 6;
constexpr std::size_t kWordsPer = kPageSize / sizeof(std::uint64_t);
constexpr std::size_t kWords = kPages * kWordsPer;
constexpr std::size_t kEpochs = 6;

std::vector<std::uint64_t> run_workload(const DsmConfig& cfg) {
  std::vector<std::uint64_t> final_words(kWords + 4, 0);
  DsmRuntime rt(cfg);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> data(kPageSize);
    gptr<std::uint64_t> counters(kPageSize + kPages * kPageSize);
    const std::uint32_t id = tmk.id();
    const std::uint32_t n = tmk.nprocs();
    for (std::size_t e = 0; e < kEpochs; ++e) {
      for (std::size_t w = id; w < kWords; w += n)
        data[w] = e * kWords + w + 1;
      if ((id + e) % 2 == 0) {
        const std::uint32_t lk = static_cast<std::uint32_t>((id + e) % 4);
        tmk.lock_acquire(lk);
        counters[lk] += id + 1;
        tmk.lock_release(lk);
      }
      tmk.barrier();
      // Cross-read another node's stripe (asserted: the barrier's departure
      // records must have invalidated our stale copy whatever the fabric).
      const std::size_t peer = (id + 1) % n;
      for (std::size_t w = peer; w < kWords; w += n)
        ASSERT_EQ(data[w], e * kWords + w + 1) << "epoch " << e << " word " << w;
      tmk.barrier();
    }
    if (id == 0) {
      for (std::size_t w = 0; w < kWords; ++w) final_words[w] = data[w];
      for (std::size_t k = 0; k < 4; ++k) final_words[kWords + k] = counters[k];
    }
  });
  return final_words;
}

// (c) The arity sweep: flat (centralized), chain, binary and 4-ary trees —
// with and without sharded managers — all end byte-identical.
TEST(TreeBarrier, AritySweepByteIdentical) {
  const auto centralized = run_workload(tree_cfg(8, 0));
  for (std::uint32_t arity : {1u, 2u, 4u, 8u}) {
    for (bool shard : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "arity=" << arity << " shard=" << shard);
      EXPECT_EQ(run_workload(tree_cfg(8, arity, shard)), centralized);
    }
  }
}

// (a) Floor folding up the tree equals the centralized min: the GC floor is
// what truncates each node's knowledge log, so identical per-node record
// plateaus across fabrics — over a run long enough for logs to grow without
// GC — prove the folded floor reaches exactly as far as the centralized
// min over all arrivals.
TEST(TreeBarrier, FoldedGcFloorMatchesCentralized) {
  auto footprints = [&](std::uint32_t arity) {
    DsmConfig c = tree_cfg(8, arity);
    c.gc_at_barriers = true;
    std::vector<std::size_t> records;
    DsmRuntime rt(c);
    rt.run_spmd([&](Tmk& tmk) {
      gptr<std::uint64_t> data(kPageSize);
      const std::uint32_t id = tmk.id();
      for (std::size_t e = 0; e < 12; ++e) {
        data[id * kWordsPer + e] = e + 1;
        tmk.barrier();
      }
    });
    for (std::uint32_t i = 0; i < 8; ++i)
      records.push_back(rt.node(i).meta_footprint().log_records);
    return records;
  };
  const auto flat = footprints(0);
  EXPECT_EQ(footprints(2), flat);
  EXPECT_EQ(footprints(1), flat);  // the chain folds through every node
  // And the floor actually moved: 12 epochs of 8 writers would hold ~96
  // records per log unGCed; the plateau must sit well below that.
  for (std::size_t r : flat) EXPECT_LT(r, 48u);
}

// (b) Update pushes parked at interior nodes drain at the right barrier
// index: with the adaptive update protocol on and a populated tree, stable
// producer->consumer pages are pushed at the writer's arrival and must come
// out of the consumer's departure valid — including consumers that are
// themselves combining points (their service thread runs a barrier ahead of
// their compute thread more often than any leaf's).
TEST(TreeBarrier, UpdatePushesDrainAtInteriorNodes) {
  DsmConfig c = tree_cfg(8, 2);
  c.update_mode = true;
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> data(kPageSize);
    const std::uint32_t id = tmk.id();
    for (std::size_t e = 0; e < 10; ++e) {
      if (id == 7) {  // deepest leaf writes...
        for (std::size_t w = 0; w < 32; ++w) data[w] = e * 100 + w;
      }
      tmk.barrier();
      // ...and interior node 1 and leaf node 4 read every epoch (a stable
      // copyset, so the page promotes to update mode after two epochs).
      if (id == 1 || id == 4) {
        for (std::size_t w = 0; w < 32; ++w)
          ASSERT_EQ(data[w], e * 100 + w) << "epoch " << e << " reader " << id;
      }
      tmk.barrier();
    }
  });
  const auto total = rt.total_stats();
  EXPECT_GT(total.update_pushes_sent, 0u);
  EXPECT_GT(total.update_push_hits, 0u);
  // The interior reader specifically consumed pushes (parked by its service
  // thread, drained by its compute thread at the matching barrier index).
  EXPECT_GT(rt.node(1).stats().snapshot().update_push_hits, 0u);
}

// The contraction the tree buys: per-barrier fabric messages at the busiest
// node.  Counts are deterministic functions of the topology, so they are
// asserted exactly: the flat root handles 2N+2 per barrier, a binary tree's
// busiest combining point 2*fanin+4 regardless of N.
TEST(TreeBarrier, PerNodeMessageLoadContracts) {
  auto max_per_barrier = [&](std::uint32_t nodes, std::uint32_t arity) {
    DsmRuntime rt(tree_cfg(nodes, arity));
    constexpr std::uint64_t kBarriers = 5;
    rt.run_spmd([&](Tmk& tmk) {
      for (std::uint64_t b = 0; b < kBarriers; ++b) tmk.barrier();
    });
    std::uint64_t mx = 0;
    for (std::uint32_t i = 0; i < nodes; ++i) {
      const auto s = rt.node(i).stats().snapshot();
      mx = std::max(mx, (s.barrier_msgs_sent + s.barrier_msgs_recv) / kBarriers);
    }
    return mx;
  };
  EXPECT_EQ(max_per_barrier(16, 0), 2u * 16 + 2);  // centralized: O(N) storm
  // Binary tree on 16 nodes: busiest node folds 2 children + itself, and
  // additionally arrives/departs as a child of its own parent.
  EXPECT_EQ(max_per_barrier(16, 2), 2u * 3 + 4);
  EXPECT_EQ(max_per_barrier(16, 4), 2u * 5 + 4);
}

}  // namespace
}  // namespace now::tmk
