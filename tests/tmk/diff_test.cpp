#include "tmk/diff.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "tmk/config.h"

namespace now::tmk {
namespace {

using Page = std::vector<std::uint8_t>;

Page zero_page() { return Page(kPageSize, 0); }

TEST(Diff, IdenticalPagesProduceEmptyDiff) {
  Page a = zero_page(), b = zero_page();
  EXPECT_TRUE(diff_create(a.data(), b.data(), kPageSize).empty());
}

TEST(Diff, SingleByteChange) {
  Page twin = zero_page(), cur = zero_page();
  cur[100] = 0xab;
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(d.size(), 4u + 1u);  // header + one byte
  Page target = zero_page();
  EXPECT_EQ(diff_apply(target.data(), kPageSize, d), 1u);
  EXPECT_EQ(target[100], 0xab);
}

TEST(Diff, NearbyRunsCoalesce) {
  Page twin = zero_page(), cur = zero_page();
  cur[10] = 1;
  cur[14] = 1;  // gap of 3 < merge_gap: one run expected
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(d.size(), 4u + 5u);
}

TEST(Diff, DistantRunsStaySeparate) {
  Page twin = zero_page(), cur = zero_page();
  cur[10] = 1;
  cur[200] = 1;
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(d.size(), 2 * (4u + 1u));
}

TEST(Diff, LastByteOfPage) {
  Page twin = zero_page(), cur = zero_page();
  cur[kPageSize - 1] = 7;
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  Page target = zero_page();
  diff_apply(target.data(), kPageSize, d);
  EXPECT_EQ(target[kPageSize - 1], 7);
}

TEST(Diff, WholePageChanged) {
  Page twin = zero_page(), cur(kPageSize, 0xff);
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(diff_patched_bytes(d), kPageSize);
  Page target = zero_page();
  diff_apply(target.data(), kPageSize, d);
  EXPECT_EQ(target, cur);
}

TEST(Diff, ConcurrentDisjointDiffsMerge) {
  // The multiple-writer protocol: two writers diff against the same twin and
  // both diffs apply to any copy, in either order.
  Page twin = zero_page();
  Page w1 = twin, w2 = twin;
  for (int i = 0; i < 128; ++i) w1[i] = 0x11;
  for (int i = 2048; i < 2048 + 128; ++i) w2[i] = 0x22;
  auto d1 = diff_create(twin.data(), w1.data(), kPageSize);
  auto d2 = diff_create(twin.data(), w2.data(), kPageSize);

  Page merged_a = twin, merged_b = twin;
  diff_apply(merged_a.data(), kPageSize, d1);
  diff_apply(merged_a.data(), kPageSize, d2);
  diff_apply(merged_b.data(), kPageSize, d2);
  diff_apply(merged_b.data(), kPageSize, d1);
  EXPECT_EQ(merged_a, merged_b);
  EXPECT_EQ(merged_a[0], 0x11);
  EXPECT_EQ(merged_a[2048], 0x22);
}

// Property sweep: random write patterns round-trip exactly.
class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, RandomPatternRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Page twin(kPageSize);
  for (auto& b : twin) b = static_cast<std::uint8_t>(rng.next_u64());
  Page cur = twin;
  const int writes = 1 + static_cast<int>(rng.next_below(200));
  for (int i = 0; i < writes; ++i) {
    const std::size_t off = rng.next_below(kPageSize);
    const std::size_t len = 1 + rng.next_below(std::min<std::size_t>(64, kPageSize - off));
    for (std::size_t k = 0; k < len; ++k)
      cur[off + k] = static_cast<std::uint8_t>(rng.next_u64());
  }
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  Page target = twin;
  diff_apply(target.data(), kPageSize, d);
  EXPECT_EQ(target, cur) << "seed " << GetParam();
  // A diff never patches less than the true difference.
  std::size_t true_diff = 0;
  for (std::size_t i = 0; i < kPageSize; ++i)
    if (twin[i] != cur[i]) ++true_diff;
  EXPECT_GE(diff_patched_bytes(d), true_diff);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty, ::testing::Range(0, 24));

TEST(DiffDeathTest, CorruptDiffAborts) {
  Page p = zero_page();
  DiffBytes bogus = {0x01, 0x02, 0x03};  // truncated header
  EXPECT_DEATH(diff_apply(p.data(), kPageSize, bogus), "corrupt diff");
}

}  // namespace
}  // namespace now::tmk
