#include "tmk/diff.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "tmk/config.h"

namespace now::tmk {
namespace {

using Page = std::vector<std::uint8_t>;

Page zero_page() { return Page(kPageSize, 0); }

TEST(Diff, IdenticalPagesProduceEmptyDiff) {
  Page a = zero_page(), b = zero_page();
  EXPECT_TRUE(diff_create(a.data(), b.data(), kPageSize).empty());
}

TEST(Diff, SingleByteChange) {
  Page twin = zero_page(), cur = zero_page();
  cur[100] = 0xab;
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(d.size(), 4u + 1u);  // header + one byte
  Page target = zero_page();
  EXPECT_EQ(diff_apply(target.data(), kPageSize, d), 1u);
  EXPECT_EQ(target[100], 0xab);
}

TEST(Diff, NearbyRunsCoalesce) {
  Page twin = zero_page(), cur = zero_page();
  cur[10] = 1;
  cur[14] = 1;  // gap of 3 < merge_gap: one run expected
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(d.size(), 4u + 5u);
}

TEST(Diff, DistantRunsStaySeparate) {
  Page twin = zero_page(), cur = zero_page();
  cur[10] = 1;
  cur[200] = 1;
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(d.size(), 2 * (4u + 1u));
}

TEST(Diff, LastByteOfPage) {
  Page twin = zero_page(), cur = zero_page();
  cur[kPageSize - 1] = 7;
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  Page target = zero_page();
  diff_apply(target.data(), kPageSize, d);
  EXPECT_EQ(target[kPageSize - 1], 7);
}

TEST(Diff, WholePageChanged) {
  Page twin = zero_page(), cur(kPageSize, 0xff);
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(diff_patched_bytes(d), kPageSize);
  Page target = zero_page();
  diff_apply(target.data(), kPageSize, d);
  EXPECT_EQ(target, cur);
}

TEST(Diff, ConcurrentDisjointDiffsMerge) {
  // The multiple-writer protocol: two writers diff against the same twin and
  // both diffs apply to any copy, in either order.
  Page twin = zero_page();
  Page w1 = twin, w2 = twin;
  for (int i = 0; i < 128; ++i) w1[i] = 0x11;
  for (int i = 2048; i < 2048 + 128; ++i) w2[i] = 0x22;
  auto d1 = diff_create(twin.data(), w1.data(), kPageSize);
  auto d2 = diff_create(twin.data(), w2.data(), kPageSize);

  Page merged_a = twin, merged_b = twin;
  diff_apply(merged_a.data(), kPageSize, d1);
  diff_apply(merged_a.data(), kPageSize, d2);
  diff_apply(merged_b.data(), kPageSize, d2);
  diff_apply(merged_b.data(), kPageSize, d1);
  EXPECT_EQ(merged_a, merged_b);
  EXPECT_EQ(merged_a[0], 0x11);
  EXPECT_EQ(merged_a[2048], 0x22);
}

// Property sweep: random write patterns round-trip exactly.
class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, RandomPatternRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Page twin(kPageSize);
  for (auto& b : twin) b = static_cast<std::uint8_t>(rng.next_u64());
  Page cur = twin;
  const int writes = 1 + static_cast<int>(rng.next_below(200));
  for (int i = 0; i < writes; ++i) {
    const std::size_t off = rng.next_below(kPageSize);
    const std::size_t len = 1 + rng.next_below(std::min<std::size_t>(64, kPageSize - off));
    for (std::size_t k = 0; k < len; ++k)
      cur[off + k] = static_cast<std::uint8_t>(rng.next_u64());
  }
  auto d = diff_create(twin.data(), cur.data(), kPageSize);
  Page target = twin;
  diff_apply(target.data(), kPageSize, d);
  EXPECT_EQ(target, cur) << "seed " << GetParam();
  // A diff never patches less than the true difference.
  std::size_t true_diff = 0;
  for (std::size_t i = 0; i < kPageSize; ++i)
    if (twin[i] != cur[i]) ++true_diff;
  EXPECT_GE(diff_patched_bytes(d), true_diff);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty, ::testing::Range(0, 24));

// --------------------------------------------------------------------------
// Word-at-a-time scanner vs the byte-at-a-time reference oracle.
// --------------------------------------------------------------------------

Page random_page(Rng& rng) {
  Page p(kPageSize);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
  return p;
}

// Random write patterns at every merge_gap in 1..64: the optimized scanner
// must be byte-identical to the scalar reference, and the diff must
// round-trip through diff_apply.
class DiffEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DiffEquivalence, MatchesScalarReferenceAcrossMergeGaps) {
  Rng rng(0x9e3779b9u * static_cast<std::uint64_t>(GetParam() + 1));
  Page twin = random_page(rng);
  Page cur = twin;
  const int writes = 1 + static_cast<int>(rng.next_below(300));
  for (int i = 0; i < writes; ++i) {
    const std::size_t off = rng.next_below(kPageSize);
    const std::size_t len = 1 + rng.next_below(std::min<std::size_t>(128, kPageSize - off));
    for (std::size_t k = 0; k < len; ++k)
      cur[off + k] = static_cast<std::uint8_t>(rng.next_u64());
  }
  for (std::size_t gap = 1; gap <= 64; ++gap) {
    const auto fast = diff_create(twin.data(), cur.data(), kPageSize, gap);
    const auto scalar = diff_create_scalar(twin.data(), cur.data(), kPageSize, gap);
    ASSERT_EQ(fast, scalar) << "seed " << GetParam() << " merge_gap " << gap;
    Page target = twin;
    diff_apply(target.data(), kPageSize, fast);
    ASSERT_EQ(target, cur) << "seed " << GetParam() << " merge_gap " << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffEquivalence, ::testing::Range(0, 16));

TEST(DiffEquivalence, CleanPageIsEmptyOnBothPaths) {
  Rng rng(77);
  Page twin = random_page(rng);
  Page cur = twin;
  EXPECT_TRUE(diff_create(twin.data(), cur.data(), kPageSize).empty());
  EXPECT_TRUE(diff_create_scalar(twin.data(), cur.data(), kPageSize).empty());
}

TEST(DiffEquivalence, FullyDirtyPageIsOneRun) {
  Page twin(kPageSize, 0x00), cur(kPageSize, 0xff);
  const auto d = diff_create(twin.data(), cur.data(), kPageSize);
  ASSERT_EQ(d.size(), 4u + kPageSize);  // one header + the whole page
  std::uint16_t off, len;
  std::memcpy(&off, d.data(), 2);
  std::memcpy(&len, d.data() + 2, 2);
  EXPECT_EQ(off, 0u);
  EXPECT_EQ(len, kPageSize);
  EXPECT_EQ(d, diff_create_scalar(twin.data(), cur.data(), kPageSize));
}

TEST(DiffEquivalence, RunEndingAtLastByte) {
  for (std::size_t run_start : {kPageSize - 1, kPageSize - 7, kPageSize - 64}) {
    Page twin(kPageSize, 0), cur(kPageSize, 0);
    for (std::size_t i = run_start; i < kPageSize; ++i) cur[i] = 0xee;
    const auto fast = diff_create(twin.data(), cur.data(), kPageSize);
    EXPECT_EQ(fast, diff_create_scalar(twin.data(), cur.data(), kPageSize));
    Page target = twin;
    diff_apply(target.data(), kPageSize, fast);
    EXPECT_EQ(target, cur);
  }
}

TEST(DiffEquivalence, AlternatingBytePattern) {
  // Worst case for the word scanner: every other byte differs, so no word or
  // memcmp stride is ever clean.
  Page twin(kPageSize, 0), cur(kPageSize, 0);
  for (std::size_t i = 0; i < kPageSize; i += 2) cur[i] = 1;
  for (std::size_t gap : {1u, 2u, 8u}) {
    ASSERT_EQ(diff_create(twin.data(), cur.data(), kPageSize, gap),
              diff_create_scalar(twin.data(), cur.data(), kPageSize, gap));
  }
}

TEST(DiffAppend, AppendsAfterExistingContentAndReportsSize) {
  Page twin(kPageSize, 0), cur(kPageSize, 0);
  cur[9] = 3;
  DiffBytes buf = {0xaa, 0xbb};
  const std::size_t added = diff_append(buf, twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(added, 4u + 1u);
  EXPECT_EQ(buf.size(), 2u + added);
  EXPECT_EQ(buf[0], 0xaa);
  EXPECT_EQ(buf[1], 0xbb);
  const DiffBytes tail(buf.begin() + 2, buf.end());
  EXPECT_EQ(tail, diff_create(twin.data(), cur.data(), kPageSize));
}

TEST(DiffAppend, ReusedBufferNeedsNoReallocation) {
  Page twin(kPageSize, 0), cur(kPageSize, 0xff);
  DiffBytes buf;
  diff_append(buf, twin.data(), cur.data(), kPageSize);
  const auto cap = buf.capacity();
  const auto* data = buf.data();
  buf.clear();
  diff_append(buf, twin.data(), cur.data(), kPageSize);
  EXPECT_EQ(buf.capacity(), cap);
  EXPECT_EQ(buf.data(), data);
}

TEST(DiffDeathTest, CorruptDiffAborts) {
  Page p = zero_page();
  DiffBytes bogus = {0x01, 0x02, 0x03};  // truncated header
  EXPECT_DEATH(diff_apply(p.data(), kPageSize, bogus), "corrupt diff");
}

}  // namespace
}  // namespace now::tmk
