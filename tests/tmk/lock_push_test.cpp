// Migratory-data push on the lock-grant chain: each releaser tracks the
// pages its critical sections touch per lock, and piggybacks their diffs on
// the kLockGrant it forwards, so the next holder's acquire validates them
// before the critical section runs — no trap, no fetch round trip.  These
// tests pin promotion after stable handoffs, byte identity push vs pull,
// demotion when the chain stops touching a page, the sender-budget fallback
// to the pull path, the whole-page-image fallback, and the interplay with
// barrier-GC floors (a pushed diff must never be sourced from a reclaimed
// diff-store entry — enforced by a loud NOW_CHECK on the grant path).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

constexpr std::size_t kWpp = kPageSize / sizeof(std::uint64_t);

DsmConfig cfg(std::uint32_t nodes, std::size_t lock_push_bytes) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.lock_push_bytes = lock_push_bytes;
  c.time.cpu_scale = 0.0;
  return c;
}

// The canonical migratory workload: every node repeatedly enters the same
// critical section and reads + rewrites the protected state (a TSP-style
// bound page plus a second state page).  No barriers inside the loop — the
// lock chain is the only carrier of consistency between handoffs, exactly
// the phase where the fault/fetch pair used to be unavoidable.  The yield
// after each release lets the service thread process queued forwards, so
// the lock actually migrates instead of degenerating into cached
// re-acquires (handoff counts still vary with host scheduling, which is
// why the stats assertions below normalize per handoff).
void bound_loop(Tmk& tmk, std::size_t iters, std::size_t dirty_words,
                std::vector<std::uint64_t>* out = nullptr) {
  gptr<std::uint64_t> bound(kPageSize);
  if (tmk.id() == 0) {
    tmk.lock_acquire(0);
    bound[0] = 1;
    bound[kWpp] = 1;
    tmk.lock_release(0);
  }
  tmk.barrier();
  for (std::size_t i = 0; i < iters; ++i) {
    tmk.lock_acquire(0);
    const std::uint64_t v = bound[0];
    bound[0] = v + 1;
    for (std::size_t k = 0; k < dirty_words; ++k)
      bound[kWpp + 1 + (v + k) % 8] = v * 100 + k;
    tmk.lock_release(0);
    std::this_thread::yield();
  }
  tmk.barrier();
  if (out != nullptr && tmk.id() == 0) {
    out->push_back(bound[0]);
    for (std::size_t k = 0; k < 16; ++k) out->push_back(bound[kWpp + k]);
  }
}

// Handoffs along the grant chain promote the critical section's pages into
// the protected set, and the pushes then serve the next holder's accesses
// without the fault/fetch pair.  Handoff counts depend on host scheduling,
// so the comparisons are normalized per kLockGrant: with two protected
// pages the pull path pays ~2 read faults and ~2 fetch round trips per
// handoff, while the push path pays only the armed probes.
TEST(LockPush, PromotionAfterStableHandoffs) {
  constexpr std::size_t kIters = 24;
  // The per-handoff message-count ratios below are perfect-wire properties:
  // under the chaos CI leg the two runs draw independent fault streams, and
  // retransmits/dups inflate their counters by different amounts.
  auto pinned = [](std::size_t lock_push_bytes) {
    DsmConfig c = cfg(4, lock_push_bytes);
    c.net_fault = {};
    c.net_reliable = false;
    return c;
  };
  DsmStatsSnapshot pull, push;
  std::uint64_t pull_msgs = 0, push_msgs = 0, pull_grants = 0, push_grants = 0;
  {
    DsmRuntime rt(pinned(0));
    rt.run_spmd([&](Tmk& tmk) { bound_loop(tmk, kIters, 4); });
    pull = rt.total_stats();
    pull_msgs = rt.traffic().messages;
    pull_grants = rt.traffic().messages_by_type[kLockGrant];
  }
  {
    DsmRuntime rt(pinned(16 * 1024));
    rt.run_spmd([&](Tmk& tmk) { bound_loop(tmk, kIters, 4); });
    push = rt.total_stats();
    push_msgs = rt.traffic().messages;
    push_grants = rt.traffic().messages_by_type[kLockGrant];
  }
  ASSERT_GT(pull_grants, 8u);  // the lock actually migrated in both runs
  ASSERT_GT(push_grants, 8u);
  EXPECT_EQ(pull.lock_pushes_sent, 0u);
  // Nearly every handoff carries a push, and most pages land without any
  // remote fetch (validated at the acquire or consumed by a probe fault).
  EXPECT_GE(push.lock_pushes_sent + 8, push_grants);
  EXPECT_GE(push.lock_push_hits, push_grants);
  // The whole point, per handoff: the next holder stops paying the trap
  // and the fetch round trip (measured ~3.6x fewer faults, ~90x fewer
  // fetches, ~3x fewer messages; asserted at 2x/4x/1.5x for slack).
  EXPECT_LT(2 * push.read_faults * pull_grants,
            pull.read_faults * push_grants);
  EXPECT_LT(4 * push.diff_fetches * pull_grants,
            pull.diff_fetches * push_grants);
  EXPECT_LT(3 * push_msgs * pull_grants, 2 * pull_msgs * push_grants);
}

// The push path must produce byte-identical shared memory to the pull path.
TEST(LockPush, ByteIdentityPushVsPull) {
  constexpr std::size_t kIters = 16;
  std::vector<std::uint64_t> pull, push;
  {
    DsmRuntime rt(cfg(4, 0));
    rt.run_spmd([&](Tmk& tmk) { bound_loop(tmk, kIters, 4, &pull); });
  }
  {
    DsmRuntime rt(cfg(4, 16 * 1024));
    rt.run_spmd([&](Tmk& tmk) { bound_loop(tmk, kIters, 4, &push); });
  }
  ASSERT_EQ(pull.size(), push.size());
  EXPECT_EQ(pull, push);
  // The counter is deterministic regardless of handoff order.
  EXPECT_EQ(pull[0], 1u + 4 * kIters);
}

// A page the chain stops touching demotes: the armed probe goes unconsumed
// through a whole critical section, the holder denies the pusher, and the
// page leaves the protected set instead of burning push bytes forever.
TEST(LockPush, DemotionWhenChainStopsTouchingAPage) {
  constexpr std::size_t kIters = 24, kSwitch = 8;
  auto c = cfg(3, 16 * 1024);
  c.lock_push_reprobe = 1;  // every push armed: every dead push is judged
  // Demotion needs an armed push to sit untouched through a *whole* critical
  // section, which needs the lock to actually migrate; under the chaos CI
  // leg retransmit delays can collapse the chain into cached re-acquires
  // for long stretches and the demotion window never opens.  The mechanism
  // under test is wire-independent — pin the wire perfect.
  c.net_fault = {};
  c.net_reliable = false;
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> state(kPageSize);
    if (tmk.id() == 0) {
      tmk.lock_acquire(0);
      state[0] = 1;
      state[kWpp] = 1;  // second protected page, abandoned after kSwitch
      tmk.lock_release(0);
    }
    tmk.barrier();
    for (std::size_t i = 0; i < kIters; ++i) {
      tmk.lock_acquire(0);
      state[0] = state[0] + 1;
      if (i < kSwitch) state[kWpp] = state[kWpp] + 1;
      tmk.lock_release(0);
      std::this_thread::yield();
    }
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  EXPECT_GT(s.lock_pushes_sent, 0u);
  // The abandoned page's armed pushes go untouched and deny the pushers.
  EXPECT_GE(s.lock_push_demotions, 1u);
  // The live page keeps riding the chain: hits keep accumulating well past
  // the switch point.
  EXPECT_GE(s.lock_push_hits, kIters / 2);
}

// Pages whose diffs exceed the per-grant budget are simply not pushed — the
// requester falls back to the pull path, with identical bytes.
TEST(LockPush, BudgetOverflowFallsBackToPull) {
  constexpr std::size_t kIters = 12;
  std::vector<std::uint64_t> pull, tiny;
  DsmStatsSnapshot s;
  {
    DsmRuntime rt(cfg(3, 0));
    rt.run_spmd([&](Tmk& tmk) { bound_loop(tmk, kIters, 8, &pull); });
  }
  {
    // 16 bytes can hold no diff of these critical sections.
    DsmRuntime rt(cfg(3, 16));
    rt.run_spmd([&](Tmk& tmk) { bound_loop(tmk, kIters, 8, &tiny); });
    s = rt.total_stats();
  }
  EXPECT_EQ(s.lock_pages_pushed, 0u);
  EXPECT_EQ(s.lock_push_hits, 0u);
  EXPECT_EQ(pull, tiny);
}

// A critical section that rewrites a whole page produces a diff bigger than
// the page; the grant ships the page image instead, and the next holder
// still skips the fetch.
TEST(LockPush, WholePageImageFallback) {
  constexpr std::size_t kIters = 12;
  std::vector<std::uint64_t> pull, push;
  DsmStatsSnapshot s;
  auto workload = [](Tmk& tmk, std::vector<std::uint64_t>* out) {
    gptr<std::uint64_t> page(kPageSize);
    if (tmk.id() == 0) {
      tmk.lock_acquire(0);
      page[0] = 1;
      tmk.lock_release(0);
    }
    tmk.barrier();
    for (std::size_t i = 0; i < kIters; ++i) {
      tmk.lock_acquire(0);
      const std::uint64_t v = page[0];
      for (std::size_t k = 0; k < kWpp; ++k) page[k] = v * 1000 + k;
      page[0] = v + 1;
      tmk.lock_release(0);
      std::this_thread::yield();
    }
    tmk.barrier();
    if (out != nullptr && tmk.id() == 0)
      for (std::size_t k = 0; k < 16; ++k) out->push_back(page[k]);
  };
  {
    DsmRuntime rt(cfg(3, 0));
    rt.run_spmd([&](Tmk& tmk) { workload(tmk, &pull); });
  }
  {
    DsmRuntime rt(cfg(3, 16 * 1024));
    rt.run_spmd([&](Tmk& tmk) { workload(tmk, &push); });
    s = rt.total_stats();
  }
  EXPECT_EQ(pull, push);
  EXPECT_GT(s.lock_pages_pushed, 0u);
  EXPECT_GT(s.lock_push_hits, 0u);
}

// Interplay with barrier-GC floors: pushes keep flowing while barriers
// establish floors and writers reclaim diff stores.  The grant-path
// NOW_CHECK guarantees a pushed diff is never sourced from a reclaimed
// store entry, and the final bytes must match the pull path exactly.
TEST(LockPush, GcFloorsNeverReclaimPushedSources) {
  constexpr std::size_t kEpochs = 10, kCsPerEpoch = 4;
  auto workload = [](Tmk& tmk, std::vector<std::uint64_t>* out) {
    gptr<std::uint64_t> state(kPageSize);
    if (tmk.id() == 0) {
      tmk.lock_acquire(0);
      state[0] = 1;
      tmk.lock_release(0);
    }
    tmk.barrier();
    for (std::size_t e = 0; e < kEpochs; ++e) {
      for (std::size_t i = 0; i < kCsPerEpoch; ++i) {
        tmk.lock_acquire(0);
        const std::uint64_t v = state[0];
        state[0] = v + 1;
        state[1 + (v % 64)] = v;
        tmk.lock_release(0);
        std::this_thread::yield();
      }
      tmk.barrier();  // establishes a GC floor mid-stream
    }
    if (out != nullptr && tmk.id() == 0)
      for (std::size_t k = 0; k < 66; ++k) out->push_back(state[k]);
  };
  std::vector<std::uint64_t> pull, push;
  DsmStatsSnapshot s;
  {
    auto c = cfg(4, 0);
    c.gc_at_barriers = true;
    DsmRuntime rt(c);
    rt.run_spmd([&](Tmk& tmk) { workload(tmk, &pull); });
  }
  {
    auto c = cfg(4, 16 * 1024);
    c.gc_at_barriers = true;
    DsmRuntime rt(c);
    rt.run_spmd([&](Tmk& tmk) { workload(tmk, &push); });
    s = rt.total_stats();
  }
  EXPECT_EQ(pull, push);
  // Both machines must actually have been on for the run to mean anything.
  EXPECT_GT(s.gc_records_reclaimed, 0u);
  EXPECT_GT(s.lock_pushes_sent, 0u);
}

// Relay retention meets the on-demand ceiling: on a barrier-free migratory
// chain the relayed chunks are the push protocol's only unbounded state, and
// the GC exchange's applied floor is the only thing allowed to prune them.
// A long chain under a tight ceiling must (a) actually prune relay chunks,
// (b) keep pushing and hitting across the prunes (a pruned chunk is covered
// by the floor, so no future grant may want it — pushes source newer diffs),
// (c) keep every node's retained relay bytes on a plateau instead of the
// handoff-linear growth the unceilinged run shows, and (d) stay
// byte-identical to the plain pull path.
TEST(LockPush, CeilingPrunesRelayChunksWithoutBreakingThePush) {
  constexpr std::size_t kIters = 40;  // x4 nodes: 160 critical sections
  // Tight enough that ~160 handoffs' worth of records + diffs + relays
  // crosses it several times over.
  constexpr std::size_t kCeiling = 6 * 1024;

  // bound_loop with a per-iteration probe of this node's retained relay
  // bytes (the relay_bytes subset of its own diff caches).
  auto probed_loop = [](Tmk& tmk, std::size_t* relay_peak,
                        std::vector<std::uint64_t>* out) {
    gptr<std::uint64_t> bound(kPageSize);
    if (tmk.id() == 0) {
      tmk.lock_acquire(0);
      bound[0] = 1;
      bound[kWpp] = 1;
      tmk.lock_release(0);
    }
    tmk.barrier();
    for (std::size_t i = 0; i < kIters; ++i) {
      tmk.lock_acquire(0);
      const std::uint64_t v = bound[0];
      bound[0] = v + 1;
      for (std::size_t k = 0; k < 8; ++k)
        bound[kWpp + 1 + (v + k) % 8] = v * 100 + k;
      tmk.lock_release(0);
      if (relay_peak != nullptr)
        *relay_peak =
            std::max(*relay_peak, tmk.node.meta_footprint().relay_bytes);
      std::this_thread::yield();
    }
    tmk.barrier();
    if (out != nullptr && tmk.id() == 0) {
      out->push_back(bound[0]);
      for (std::size_t k = 0; k < 16; ++k) out->push_back(bound[kWpp + k]);
    }
  };

  std::vector<std::uint64_t> pull, push_free, push_capped;
  std::vector<std::size_t> free_peaks(4, 0), capped_peaks(4, 0);
  DsmStatsSnapshot s;
  {
    DsmRuntime rt(cfg(4, 0));
    rt.run_spmd([&](Tmk& tmk) { probed_loop(tmk, nullptr, &pull); });
  }
  {
    DsmRuntime rt(cfg(4, 16 * 1024));
    rt.run_spmd(
        [&](Tmk& tmk) { probed_loop(tmk, &free_peaks[tmk.id()], &push_free); });
  }
  {
    auto c = cfg(4, 16 * 1024);
    c.meta_ceiling_bytes = kCeiling;
    // The 2x-ceiling relay plateau is a perfect-wire property: injected
    // faults stretch the exchange by retransmit timeouts while the chain
    // keeps relaying (the lossy-wire plateau lives in tmk_soak_test).
    c.net_fault = {};
    c.net_reliable = false;
    DsmRuntime rt(c);
    rt.run_spmd([&](Tmk& tmk) {
      probed_loop(tmk, &capped_peaks[tmk.id()], &push_capped);
    });
    s = rt.total_stats();
  }

  // (d) identity first: the prunes changed bytes held, never bytes applied.
  EXPECT_EQ(pull, push_free);
  EXPECT_EQ(pull, push_capped);

  // (a) the ceiling fired and the exchange floors pruned retained relays.
  EXPECT_GT(s.gc_exchanges, 0u);
  EXPECT_GT(s.relay_chunks_pruned, 0u);
  EXPECT_GT(s.relay_bytes_pruned, 0u);

  // (b) the chain kept pushing, and grants kept landing usefully, across
  // every prune (the floor only covers intervals no grant may want again).
  EXPECT_GT(s.lock_pushes_sent, 0u);
  EXPECT_GT(s.lock_push_hits, 0u);

  // (c) retention plateaus: some unceilinged node must retain more relay
  // bytes than any capped node ever held, and each capped node's retained
  // relay stays under the ceiling (relay is a subset of the bounded meta).
  const std::size_t free_max =
      *std::max_element(free_peaks.begin(), free_peaks.end());
  const std::size_t capped_max =
      *std::max_element(capped_peaks.begin(), capped_peaks.end());
  EXPECT_GT(free_max, capped_max);
  EXPECT_LE(capped_max, kCeiling + kCeiling);
}

// The push parks chunks in the requester-side diff cache, so it is inert —
// zero pushes, plain pull traffic — while the cache is disabled.
TEST(LockPush, InertWithoutDiffCache) {
  constexpr std::size_t kIters = 8;
  auto c = cfg(3, 16 * 1024);
  c.diff_cache_bytes_per_page = 0;
  ASSERT_FALSE(c.lock_push_enabled());
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) { bound_loop(tmk, kIters, 4); });
  const auto s = rt.total_stats();
  EXPECT_EQ(s.lock_pushes_sent, 0u);
  EXPECT_EQ(s.lock_push_hits, 0u);
}

}  // namespace
}  // namespace now::tmk
