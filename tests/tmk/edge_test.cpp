// Edge cases and failure injection for the DSM runtime: degenerate sizes,
// runtime lifecycle, misuse aborts, and protocol corner cases.
#include <gtest/gtest.h>

#include <cstring>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes, std::size_t heap = 4 << 20) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = heap;
  return c;
}

TEST(Lifecycle, SequentialRuntimesReuseTheFaultRegistry) {
  for (int round = 0; round < 5; ++round) {
    DsmRuntime rt(cfg(2));
    rt.run_spmd([](Tmk& tmk) {
      gptr<std::uint64_t> p(kPageSize);
      if (tmk.id() == 0) *p = 7;
      tmk.barrier();
      EXPECT_EQ(*p, 7u);
    });
  }
}

TEST(Lifecycle, ConcurrentRuntimesCoexist) {
  DsmRuntime a(cfg(2)), b(cfg(2));
  a.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    if (tmk.id() == 0) *p = 1;
    tmk.barrier();
    EXPECT_EQ(*p, 1u);
  });
  b.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    if (tmk.id() == 0) *p = 2;
    tmk.barrier();
    EXPECT_EQ(*p, 2u);
  });
}

TEST(Degenerate, SingleNodeRuntimeWorks) {
  DsmRuntime rt(cfg(1));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    *p = 42;
    tmk.barrier();
    tmk.lock_acquire(0);
    *p = *p + 1;
    tmk.lock_release(0);
    tmk.barrier();
    EXPECT_EQ(*p, 43u);
  });
  // Single-node barriers are self-sends: no wire traffic.
  EXPECT_EQ(rt.traffic().messages, 0u);
}

TEST(Degenerate, ObjectStraddlingPageBoundary) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    // A 16-byte record crossing the page-1/page-2 boundary.
    gptr<std::uint8_t> raw(2 * kPageSize - 8);
    if (tmk.id() == 0)
      for (int i = 0; i < 16; ++i) raw[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xc0 + i);
    tmk.barrier();
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(raw[static_cast<std::size_t>(i)], static_cast<std::uint8_t>(0xc0 + i));
  });
}

TEST(Degenerate, MultiMegabyteTransfer) {
  constexpr std::size_t kWords = (2 << 20) / 8;  // 2 MB
  DsmRuntime rt(cfg(2, 16 << 20));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> big(kPageSize);
    if (tmk.id() == 0)
      for (std::size_t i = 0; i < kWords; ++i) big[i] = i * 2654435761u;
    tmk.barrier();
    if (tmk.id() == 1) {
      // Sample across the whole range (every page).
      for (std::size_t i = 0; i < kWords; i += 509)
        ASSERT_EQ(big[i], i * 2654435761u);
    }
  });
  EXPECT_GT(rt.traffic().payload_bytes, std::uint64_t{1} << 20);
}

TEST(Protocol, EightWritersOnePageEightReaders) {
  // Every node writes a disjoint slice of one page, then every node reads
  // every slice: the maximal multiple-writer merge.
  DsmRuntime rt(cfg(8));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> page(kPageSize);  // 512 slots
    const std::size_t base = tmk.id() * 64;
    for (std::size_t k = 0; k < 64; ++k) page[base + k] = tmk.id() * 1000 + k;
    tmk.barrier();
    for (std::uint32_t n = 0; n < 8; ++n)
      for (std::size_t k = 0; k < 64; ++k)
        ASSERT_EQ(page[static_cast<std::size_t>(n) * 64 + k], n * 1000 + k);
  });
}

TEST(Protocol, LockChainAcrossAllNodes) {
  // The lock travels 0 -> 1 -> ... -> 7 with a counter increment each hop;
  // knowledge must accumulate transitively along the grant chain.
  DsmRuntime rt(cfg(8));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> counter(kPageSize);
    for (std::uint32_t turn = 0; turn < 8; ++turn) {
      if (turn == tmk.id()) {
        tmk.lock_acquire(5);
        EXPECT_EQ(*counter, turn);
        *counter = *counter + 1;
        tmk.lock_release(5);
      }
      tmk.barrier();
    }
    EXPECT_EQ(*counter, 8u);
  });
}

TEST(Protocol, SemaphoreAsResourcePool) {
  // Three credits, seven consumers: all pass, credits conserved.
  DsmRuntime rt(cfg(8));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> in_use(kPageSize);
    if (tmk.id() == 0)
      for (int i = 0; i < 3; ++i) tmk.sema_signal(9);
    tmk.barrier();
    if (tmk.id() != 0) {
      tmk.sema_wait(9);
      tmk.lock_acquire(1);
      *in_use = *in_use + 1;
      EXPECT_LE(*in_use, 3u);
      tmk.lock_release(1);
      tmk.lock_acquire(1);
      *in_use = *in_use - 1;
      tmk.lock_release(1);
      tmk.sema_signal(9);
    }
  });
}

TEST(Protocol, CondBroadcastWakesEveryWaiter) {
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> state(kPageSize);  // [waiting, go, woken]
    if (tmk.id() != 0) {
      tmk.lock_acquire(2);
      state[0] = state[0] + 1;
      while (state[1] == 0) tmk.cond_wait(2, 1);
      state[2] = state[2] + 1;
      tmk.lock_release(2);
    } else {
      for (;;) {
        tmk.lock_acquire(2);
        const bool all_waiting = state[0] == 3;
        if (all_waiting) {
          state[1] = 1;
          tmk.cond_broadcast(2, 1);
          tmk.lock_release(2);
          break;
        }
        tmk.lock_release(2);
      }
    }
    tmk.barrier();
    EXPECT_EQ(state[2], 3u);
  });
}

TEST(Protocol, FlushFromEveryNodeInTurn) {
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> cells(kPageSize);
    for (std::uint32_t turn = 0; turn < 4; ++turn) {
      if (turn == tmk.id()) {
        cells[tmk.id()] = tmk.id() + 10;
        tmk.flush();
      }
      tmk.barrier();
      EXPECT_EQ(cells[turn], turn + 10u);
    }
  });
}

TEST(Protocol, RootSlotsPublishAllocations) {
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    if (tmk.id() == 0) {
      auto arr = tmk.alloc_array<std::uint64_t>(8);
      arr[3] = 333;
      tmk.set_root(7, arr.cast<void>());
    }
    tmk.barrier();
    auto arr = tmk.get_root<std::uint64_t>(7);
    EXPECT_EQ(arr[3], 333u);
  });
}

TEST(Stats, InvalidationsAndFetchesTrackProtocolActivity) {
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> p(kPageSize);
    for (int round = 0; round < 3; ++round) {
      if (tmk.id() == static_cast<std::uint32_t>(round)) *p = static_cast<std::uint64_t>(round);
      tmk.barrier();
      EXPECT_EQ(*p, static_cast<std::uint64_t>(round));
      tmk.barrier();
    }
  });
  const auto s = rt.total_stats();
  EXPECT_GT(s.invalidations, 0u);
  EXPECT_GT(s.diff_fetches, 0u);
  EXPECT_EQ(s.barriers, 4u * 6u);
}

using EdgeDeathTest = ::testing::Test;

TEST(EdgeDeathTest, RecursiveLockAcquireAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        DsmRuntime rt(cfg(2));
        rt.run_spmd([](Tmk& tmk) {
          if (tmk.id() == 0) {
            tmk.lock_acquire(0);
            tmk.lock_acquire(0);
          }
        });
      },
      "recursive acquire");
}

TEST(EdgeDeathTest, ReleasingUnheldLockAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        DsmRuntime rt(cfg(2));
        rt.run_spmd([](Tmk& tmk) {
          if (tmk.id() == 0) tmk.lock_release(3);
        });
      },
      "unheld lock");
}

TEST(EdgeDeathTest, CondWaitOutsideCriticalAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        DsmRuntime rt(cfg(2));
        rt.run_spmd([](Tmk& tmk) {
          if (tmk.id() == 0) tmk.cond_wait(0, 0);
        });
      },
      "outside the critical section");
}

}  // namespace
}  // namespace now::tmk
