// Synchronization primitive tests: lock mutual exclusion and caching,
// semaphore pipelines (paper Fig. 3), condition-variable task queues
// (paper Fig. 4), and flush (paper Figs. 1-2, kept for the ablation).
#include <gtest/gtest.h>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

DsmConfig cfg(std::uint32_t nodes, bool stress = false) {
  DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 4 << 20;
  c.stress_service_jitter = stress;
  return c;
}

TEST(Locks, MutualExclusionCounter) {
  for (std::uint32_t n : {2u, 4u, 8u}) {
    DsmRuntime rt(cfg(n));
    constexpr int kIters = 40;
    rt.run_spmd([&](Tmk& tmk) {
      gptr<std::uint64_t> counter(kPageSize);
      for (int i = 0; i < kIters; ++i) {
        tmk.lock_acquire(1);
        *counter = *counter + 1;
        tmk.lock_release(1);
      }
      tmk.barrier();
      EXPECT_EQ(*counter, static_cast<std::uint64_t>(n) * kIters) << "nodes=" << n;
    });
  }
}

// Regression stress for the grant cut-to-enqueue ordering race: with
// several disjoint locks churning on the same edges, one node's compute
// thread (a pending grant at release) and service thread (a forward
// hitting the ownership cache) can both assemble node-log deltas for the
// same requester at once.  If the later-cut delta reaches the wire first,
// the requester's dense interval merge aborts on a sequence gap — the
// failure is a NOW_CHECK abort, so this passes by simply surviving.
// Scheduling-dependent: many short critical sections maximize the window.
TEST(Locks, DisjointLockChurnKeepsIntervalRecordsDense) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kLocks = 4;
  constexpr int kIters = 60;
  DsmRuntime rt(cfg(kNodes));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> slots(kPageSize);
    const std::uint32_t id = tmk.id();
    for (int i = 0; i < kIters; ++i) {
      // Every node walks the locks in a different rotation so grants for
      // distinct locks keep crossing on the same (granter, requester) edge.
      const std::uint32_t l = (id + static_cast<std::uint32_t>(i)) % kLocks;
      tmk.lock_acquire(l);
      slots[l] = slots[l] + 1;
      tmk.lock_release(l);
    }
    tmk.barrier();
    for (std::uint32_t l = 0; l < kLocks; ++l) {
      std::uint64_t expect = 0;
      for (std::uint32_t n = 0; n < kNodes; ++n)
        for (int i = 0; i < kIters; ++i)
          if ((n + static_cast<std::uint32_t>(i)) % kLocks == l) ++expect;
      EXPECT_EQ(slots[l], expect) << "lock " << l;
    }
  });
}

TEST(Locks, UncontendedReacquireIsCached) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    if (tmk.id() == 0)
      for (int i = 0; i < 10; ++i) {
        tmk.lock_acquire(3);
        tmk.lock_release(3);
      }
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  EXPECT_EQ(s.lock_acquires, 10u);
  EXPECT_EQ(s.lock_acquires_cached, 9u);  // only the first goes remote
}

TEST(Locks, CriticalSectionPublishesData) {
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> record(kPageSize);  // [owner, value]
    tmk.lock_acquire(0);
    if (record[0] != 0) {
      // Whoever wrote before us must have published both words.
      EXPECT_EQ(record[1], record[0] * 17);
    }
    record[0] = tmk.id() + 1;
    record[1] = (tmk.id() + 1) * 17;
    tmk.lock_release(0);
    tmk.barrier();
  });
}

TEST(Locks, ManyLocksIndependent) {
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> counters(kPageSize);
    for (int i = 0; i < 10; ++i) {
      const std::uint32_t lock = tmk.id() % 2;  // two disjoint lock domains
      tmk.lock_acquire(10 + lock);
      counters[lock] = counters[lock] + 1;
      tmk.lock_release(10 + lock);
    }
    tmk.barrier();
    EXPECT_EQ(counters[0] + counters[1], 40u);
  });
}

TEST(Semaphores, PipelineProducerConsumer) {
  // Paper Figure 3: flags become semaphores, no busy-waiting.
  // The exact two-messages-per-op count below is a perfect-wire property:
  // under the chaos CI leg's injected faults, retransmissions and acks
  // legitimately add messages, so this measurement pins the wire.
  DsmConfig c = cfg(2);
  c.net_fault = {};
  c.net_reliable = false;
  DsmRuntime rt(c);
  constexpr int kRounds = 20;
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> data(kPageSize);
    if (tmk.id() == 0) {  // producer
      for (int i = 0; i < kRounds; ++i) {
        *data = static_cast<std::uint64_t>(i) * 7 + 1;
        tmk.sema_signal(0);  // "available"
        tmk.sema_wait(1);    // "done"
      }
    } else {  // consumer
      for (int i = 0; i < kRounds; ++i) {
        tmk.sema_wait(0);
        EXPECT_EQ(*data, static_cast<std::uint64_t>(i) * 7 + 1);
        tmk.sema_signal(1);
      }
    }
  });
  // Two messages per sema op, as the paper states.  With 2 nodes, sema 0's
  // manager is node 0 and sema 1's is node 1, so exactly half of the four
  // ops per round hit a local manager (local calls, off the wire).
  const auto t = rt.traffic();
  const auto s = rt.total_stats();
  EXPECT_EQ(s.sema_ops, 4u * kRounds);
  EXPECT_EQ(t.messages_by_type[kSemaSignal] + t.messages_by_type[kSemaAck] +
                t.messages_by_type[kSemaWait] + t.messages_by_type[kSemaGrant],
            2u * 2u * kRounds);
}

TEST(Semaphores, CountingSemantics) {
  // Signals before waits accumulate; all waits eventually pass.
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    if (tmk.id() == 0)
      for (int i = 0; i < 3; ++i) tmk.sema_signal(5);
    tmk.barrier();
    if (tmk.id() != 0) tmk.sema_wait(5);  // exactly 3 waiters, 3 credits
  });
}

TEST(Semaphores, WaitBlocksUntilSignal) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> flag(kPageSize);
    if (tmk.id() == 1) {
      *flag = 99;
      tmk.sema_signal(2);
    } else {
      tmk.sema_wait(2);
      EXPECT_EQ(*flag, 99u);  // signal carries consistency
    }
  });
}

TEST(CondVars, TaskQueueFigure4) {
  // Paper Figure 4: critical section + cond_wait/cond_signal/cond_broadcast.
  // A shared queue of tasks; workers dequeue until global termination.
  constexpr std::uint32_t kLock = 0, kCond = 0;
  constexpr std::uint64_t kTasks = 30;
  for (std::uint32_t n : {2u, 4u}) {
    DsmRuntime rt(cfg(n));
    rt.run_spmd([&](Tmk& tmk) {
      // layout at page 1: [head, tail, nwait, done_count, tasks...]
      gptr<std::uint64_t> q(kPageSize);
      if (tmk.id() == 0) {
        for (std::uint64_t i = 0; i < kTasks; ++i) q[4 + i] = i + 1;
        q[1] = kTasks;
      }
      tmk.barrier();

      std::uint64_t local_sum = 0;
      for (;;) {
        std::uint64_t task = 0;
        tmk.lock_acquire(kLock);
        while (q[0] == q[1] && q[2] < tmk.nprocs()) {
          q[2] = q[2] + 1;  // nwait++
          if (q[2] == tmk.nprocs()) {
            tmk.cond_broadcast(kLock, kCond);  // global termination
            break;
          }
          tmk.cond_wait(kLock, kCond);
          if (q[2] == tmk.nprocs()) break;
          q[2] = q[2] - 1;  // resumed because work appeared
        }
        if (q[2] == tmk.nprocs()) {
          tmk.lock_release(kLock);
          break;
        }
        task = q[4 + q[0]];
        q[0] = q[0] + 1;
        tmk.lock_release(kLock);
        local_sum += task;
      }

      // Accumulate results under a second lock.
      tmk.lock_acquire(7);
      q[3] = q[3] + local_sum;
      tmk.lock_release(7);
      tmk.barrier();
      EXPECT_EQ(q[3], kTasks * (kTasks + 1) / 2) << "nodes=" << n;
    });
  }
}

TEST(CondVars, SignalWithNoWaiterIsNoop) {
  DsmRuntime rt(cfg(2));
  rt.run_spmd([](Tmk& tmk) {
    if (tmk.id() == 0) {
      tmk.lock_acquire(4);
      tmk.cond_signal(4, 0);  // nobody waiting: must not blow up or count
      tmk.lock_release(4);
    }
    tmk.barrier();
  });
}

TEST(CondVars, SignalWakesExactlyOne) {
  DsmRuntime rt(cfg(3));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> state(kPageSize);  // [woken, generation]
    if (tmk.id() != 0) {
      tmk.lock_acquire(2);
      state[0] = state[0] + 1;  // registered
      if (state[1] == 0) tmk.cond_wait(2, 9);
      state[2] = state[2] + 1;  // woken
      tmk.lock_release(2);
    } else {
      // Wait until both are registered, then signal one at a time.
      for (;;) {
        tmk.lock_acquire(2);
        const bool ready = state[0] == 2;
        tmk.lock_release(2);
        if (ready) break;
      }
      tmk.lock_acquire(2);
      state[1] = 1;
      tmk.cond_signal(2, 9);
      tmk.lock_release(2);
      tmk.lock_acquire(2);
      tmk.cond_signal(2, 9);
      tmk.lock_release(2);
    }
    tmk.barrier();
    EXPECT_EQ(state[2], 2u);
  });
}

// Regression for the lost-condvar-wakeup deadlock the chaos soak exposed:
// cond_wait's registration at the manager used to be one-way, leaning on
// synchronous delivery to beat any signal the lock's next holder could
// issue.  Under a lossy wire a dropped registration retransmits only after
// the released lock was granted onward and the signal already hit an empty
// waiter queue — a legal noop, so the waiter blocked forever.  With the
// channel armed the registration is an rpc (kCondWaitAck: the waiter holds
// the lock until the manager confirms its queue entry).  The race needs
// three *distinct* parties: with the manager on the waiter's own node the
// registration is an unfaultable self-send, and with the manager on the
// next holder's node the registration and the lock grant share one link,
// whose restored FIFO already orders them.  So: nodes 0 and 1 ping-pong
// strict turns through one condvar whose lock hashes to the bystanding
// node 2 (unsharded managers: lock_id % num_nodes), over an aggressively
// faulty pinned wire.  A single lost wakeup deadlocks the ping-pong
// (caught by the ctest timeout); the turn counter pins that every wakeup
// was the right one.
TEST(CondVars, HandoffSurvivesLossyWire) {
  constexpr std::uint32_t kLock = 2, kCond = 1;  // manager: 2 % 3 == node 2
  constexpr std::uint64_t kRounds = 25;
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    DsmConfig c = cfg(3);
    c.net_fault = {};  // independent of the chaos CI leg's env knobs
    c.net_fault.drop_ppm = 50000;
    c.net_fault.dup_ppm = 20000;
    c.net_fault.reorder_ppm = 50000;
    c.net_fault.seed = seed;
    DsmRuntime rt(c);
    rt.run_spmd([&](Tmk& tmk) {
      gptr<std::uint64_t> state(kPageSize);  // [whose turn, counter]
      const std::uint64_t me = tmk.id();
      if (me < 2) {
        tmk.lock_acquire(kLock);
        for (std::uint64_t i = 0; i < kRounds; ++i) {
          while (state[0] != me) tmk.cond_wait(kLock, kCond);
          state[1] = state[1] + 1;
          state[0] = 1 - me;
          tmk.cond_signal(kLock, kCond);
        }
        tmk.lock_release(kLock);
      }
      tmk.barrier();
      EXPECT_EQ(state[1], 2 * kRounds) << "seed=" << seed;
    });
  }
}

TEST(Flush, MakesWritesGloballyVisible) {
  // Paper Figure 1 semantics: flag synchronization with flush.  The readers
  // poll; the writer flushes once.
  DsmRuntime rt(cfg(4));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> flag(kPageSize);
    gptr<std::uint64_t> payload(2 * kPageSize);
    if (tmk.id() == 0) {
      *payload = 4242;
      *flag = 1;
      tmk.flush();
    } else {
      while (*flag == 0) {
      }
      EXPECT_EQ(*payload, 4242u);
    }
    tmk.barrier();
  });
}

TEST(Flush, Costs2NMinus1Messages) {
  // The paper's Section 3.2.4 claim: a flush is 2(n-1) messages.
  for (std::uint32_t n : {2u, 4u, 8u}) {
    DsmRuntime rt(cfg(n));
    rt.run_spmd([](Tmk& tmk) {
      gptr<std::uint64_t> x(kPageSize);
      if (tmk.id() == 0) {
        *x = 1;
        tmk.flush();
      }
    });
    const auto t = rt.traffic();
    EXPECT_EQ(t.messages_by_type[kFlushNotice], n - 1) << "n=" << n;
    EXPECT_EQ(t.messages_by_type[kFlushAck], n - 1) << "n=" << n;
  }
}

TEST(Stress, MixedPrimitivesUnderServiceJitter) {
  // Random service delays shake out ordering assumptions.
  DsmRuntime rt(cfg(4, /*stress=*/true));
  rt.run_spmd([](Tmk& tmk) {
    gptr<std::uint64_t> counter(kPageSize);
    gptr<std::uint64_t> cells(2 * kPageSize);
    for (int i = 0; i < 10; ++i) {
      tmk.lock_acquire(0);
      *counter = *counter + 1;
      tmk.lock_release(0);
      cells[tmk.id() * 8] = static_cast<std::uint64_t>(i);
      tmk.barrier();
      EXPECT_EQ(cells[((tmk.id() + 1) % tmk.nprocs()) * 8], static_cast<std::uint64_t>(i));
    }
    tmk.barrier();
    EXPECT_EQ(*counter, 40u);
  });
}

}  // namespace
}  // namespace now::tmk
