// Randomized cross-config consistency fuzzer: a seeded PRNG schedule drives
// N nodes through random mixes of data-race-free reads, writes, barriers and
// lock-protected read-modify-writes over a shared region, and the final
// region contents are compared byte-for-byte across the full protocol config
// matrix {update on/off} x {prefetch 0/4} x {gc_at_barriers on/off} x
// {diff cache on/off}, plus wide-prefetch (16) legs.
// Every run is also checked against a sequentially replayed model, so "all
// configs equally wrong" cannot slip through.  The seed is printed on
// failure; replay a specific one with
//   NOW_FUZZ_SEED_BASE=<seed> NOW_FUZZ_SEEDS=1 ./tmk_fuzz_consistency_test
// (NOW_FUZZ_SEEDS bounds the iteration count, e.g. for the sanitizer CI leg;
// NOW_FUZZ_EPOCHS deepens a single schedule.)
//
// Determinism argument: per epoch, every data word has exactly one writer
// (the schedule partitions words by owner), so epoch-final contents do not
// depend on interleaving; counter words are guarded by their lock and only
// ever incremented, so their final value is the (schedule-determined) sum of
// increments regardless of lock-grant order.  Mid-epoch reads may observe
// stale copies — that is lazy release consistency working as specified — so
// they feed a sink, never an assertion; post-barrier reads are asserted.
#include <gtest/gtest.h>

#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::size_t kDataPages = 12;
constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);
constexpr std::size_t kWords = kDataPages * kWordsPerPage;
constexpr std::size_t kCounters = 4;  // one lock-guarded counter per lock id
constexpr std::size_t kMidReads = 24; // unasserted mid-epoch reads per node
constexpr std::size_t kVerifyReads = 16;  // asserted post-barrier reads

// Env knobs reuse the config-default override parser (empty == unset).
using detail::env_size;

// Stateless schedule hash: every node and the host-side model evaluate the
// same (seed, stream, a, b) coordinates to the same value, with no shared
// RNG state to keep in sync.
std::uint64_t mix(std::uint64_t seed, std::uint64_t stream, std::uint64_t a,
                  std::uint64_t b) {
  std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                    (a * 0xbf58476d1ce4e5b9ULL) ^ (b * 0x94d049bb133111ebULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint32_t owner_of(std::uint64_t seed, std::size_t e, std::size_t w) {
  return static_cast<std::uint32_t>(mix(seed, 1, e, w) % kNodes);
}
bool writes(std::uint64_t seed, std::size_t e, std::size_t w) {
  return mix(seed, 2, e, w) % 3 == 0;
}
std::uint64_t value_of(std::uint64_t seed, std::size_t e, std::size_t w) {
  return mix(seed, 3, e, w) | 1;  // nonzero, so "never written" is distinct
}
bool increments(std::uint64_t seed, std::size_t e, std::uint32_t node) {
  return mix(seed, 6, e, node) % 2 == 0;
}
std::size_t counter_of(std::uint64_t seed, std::size_t e, std::uint32_t node) {
  return mix(seed, 5, e, node) % kCounters;
}

struct FuzzConfig {
  std::size_t prefetch;
  bool gc;
  std::size_t cache_bytes;
  bool update;
};

// Final contents of the whole shared region (data pages + counter page),
// captured on node 0 after the last barrier.
std::vector<std::uint64_t> run_fuzz(const FuzzConfig& fc, std::uint64_t seed,
                                    std::size_t epochs) {
  DsmConfig c;
  c.num_nodes = kNodes;
  c.heap_bytes = 4 << 20;
  c.prefetch_pages = fc.prefetch;
  c.gc_at_barriers = fc.gc;
  c.diff_cache_bytes_per_page = fc.cache_bytes;
  c.update_mode = fc.update;
  c.time.cpu_scale = 0.0;

  std::vector<std::uint64_t> final_words(kWords + kWordsPerPage, 0);
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> data(kPageSize);
    gptr<std::uint64_t> counters(kPageSize + kDataPages * kPageSize);
    const std::uint32_t id = tmk.id();
    std::uint64_t sink = 0;

    for (std::size_t e = 0; e < epochs; ++e) {
      // Race-free writes: each word has exactly one owner this epoch.
      for (std::size_t w = 0; w < kWords; ++w)
        if (owner_of(seed, e, w) == id && writes(seed, e, w))
          data[w] = value_of(seed, e, w);

      // Unasserted mid-epoch reads: random fault/prefetch timing.
      for (std::size_t i = 0; i < kMidReads; ++i)
        sink += data[mix(seed, 4, e, id * 1000 + i) % kWords];

      // Lock-guarded counter increment (commutative, so the final value is
      // interleaving-independent); the grant chain ships record deltas.
      if (increments(seed, e, id)) {
        const std::size_t ctr = counter_of(seed, e, id);
        tmk.lock_acquire(static_cast<std::uint32_t>(ctr));
        counters[ctr] += id + 1;
        tmk.lock_release(static_cast<std::uint32_t>(ctr));
      }

      tmk.barrier();

      // Asserted post-barrier reads against the replayed model.
      for (std::size_t i = 0; i < kVerifyReads; ++i) {
        const std::size_t w = mix(seed, 7, e, id * 1000 + i) % kWords;
        std::uint64_t want = 0;
        for (std::size_t past = e + 1; past-- > 0;)
          if (writes(seed, past, w)) {
            want = value_of(seed, past, w);
            break;
          }
        ASSERT_EQ(data[w], want)
            << "seed=" << seed << " node=" << id << " epoch=" << e << " word="
            << w << " (replay: NOW_FUZZ_SEED_BASE=" << seed
            << " NOW_FUZZ_SEEDS=1)";
      }
      tmk.barrier();
    }
    if (sink == static_cast<std::uint64_t>(-1)) std::abort();  // keep reads live

    if (id == 0) {
      for (std::size_t w = 0; w < kWords; ++w) final_words[w] = data[w];
      for (std::size_t k = 0; k < kWordsPerPage; ++k)
        final_words[kWords + k] = counters[k];
    }
  });
  return final_words;
}

TEST(FuzzConsistency, ByteIdenticalAcrossConfigMatrix) {
  const std::size_t seeds = env_size("NOW_FUZZ_SEEDS", 2);
  const std::uint64_t seed_base = env_size("NOW_FUZZ_SEED_BASE", 20260730);
  const std::size_t epochs = env_size("NOW_FUZZ_EPOCHS", 4);

  // Full cross at prefetch {0, 4}; the wide 16-page window re-tests the
  // prefetch batching against each GC mode (cache-off legs would be
  // redundant: prefetch is inert without the cache), so it rides as four
  // extra legs instead of doubling the whole matrix.
  std::vector<FuzzConfig> matrix;
  for (bool update : {false, true})
    for (std::size_t prefetch : {std::size_t{0}, std::size_t{4}})
      for (bool gc : {false, true})
        for (std::size_t cache : {std::size_t{0}, std::size_t{16 * 1024}})
          matrix.push_back({prefetch, gc, cache, update});
  for (bool update : {false, true})
    for (bool gc : {false, true})
      matrix.push_back({16, gc, 16 * 1024, update});

  for (std::size_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = seed_base + s;

    // Host-side sequential replay: the one truth every config must match.
    std::vector<std::uint64_t> model(kWords + kWordsPerPage, 0);
    for (std::size_t e = 0; e < epochs; ++e) {
      for (std::size_t w = 0; w < kWords; ++w)
        if (writes(seed, e, w)) model[w] = value_of(seed, e, w);
      for (std::uint32_t node = 0; node < kNodes; ++node)
        if (increments(seed, e, node))
          model[kWords + counter_of(seed, e, node)] += node + 1;
    }

    for (const FuzzConfig& fc : matrix) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " prefetch=" << fc.prefetch
                   << " gc=" << fc.gc << " cache=" << fc.cache_bytes
                   << " update=" << fc.update
                   << " (replay: NOW_FUZZ_SEED_BASE=" << seed
                   << " NOW_FUZZ_SEEDS=1)");
      const auto got = run_fuzz(fc, seed, epochs);
      ASSERT_EQ(got, model);  // byte-for-byte: every word, every counter
    }
  }
}

}  // namespace
}  // namespace now::tmk
