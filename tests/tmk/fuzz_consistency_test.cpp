// Randomized cross-config consistency fuzzer: a seeded PRNG schedule drives
// N nodes through random mixes of data-race-free reads, writes, barriers and
// lock-protected read-modify-writes over a shared region, and the final
// region contents are compared byte-for-byte across the full protocol config
// matrix {update on/off} x {prefetch 0/4} x {gc_at_barriers on/off} x
// {diff cache on/off}, plus wide-prefetch (16) and lock-push legs.
// Every run is also checked against a sequentially replayed model, so "all
// configs equally wrong" cannot slip through.  The seed is printed on
// failure; replay a specific one with
//   NOW_FUZZ_SEED_BASE=<seed> NOW_FUZZ_SEEDS=1 ./tmk_fuzz_consistency_test
// (NOW_FUZZ_SEEDS bounds the iteration count, e.g. for the sanitizer CI leg;
// NOW_FUZZ_EPOCHS deepens a single schedule.)
//
// Lock-heavy mix: roughly a third of the epochs are *lock-only* — no data
// writes, no barriers, no asserted reads, just rotating (and sometimes
// nested, always in ascending lock order) lock-guarded counter increments.
// These barrier-free stretches are exactly where the migratory lock push
// and the lock-chain GC floors operate, with the grant chain as the only
// carrier of consistency between handoffs.
//
// Determinism argument: per epoch, every data word has exactly one writer
// (the schedule partitions words by owner), so epoch-final contents do not
// depend on interleaving; counter words are guarded by their lock and only
// ever incremented, so their final value is the (schedule-determined) sum of
// increments regardless of lock-grant order.  Mid-epoch reads may observe
// stale copies — that is lazy release consistency working as specified — so
// they feed a sink, never an assertion; post-barrier reads are asserted.
#include <gtest/gtest.h>

#include <vector>

#include "tmk/tmk.h"

namespace now::tmk {
namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::size_t kDataPages = 12;
constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);
constexpr std::size_t kWords = kDataPages * kWordsPerPage;
constexpr std::size_t kCounters = 4;  // one lock-guarded counter per lock id
constexpr std::size_t kMidReads = 24; // unasserted mid-epoch reads per node
constexpr std::size_t kVerifyReads = 16;  // asserted post-barrier reads
constexpr std::size_t kLockOnlyRounds = 3;  // CS rounds per lock-only epoch

// Env knobs reuse the config-default override parser (empty == unset).
using detail::env_size;

// Stateless schedule hash: every node and the host-side model evaluate the
// same (seed, stream, a, b) coordinates to the same value, with no shared
// RNG state to keep in sync.
std::uint64_t mix(std::uint64_t seed, std::uint64_t stream, std::uint64_t a,
                  std::uint64_t b) {
  std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                    (a * 0xbf58476d1ce4e5b9ULL) ^ (b * 0x94d049bb133111ebULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// A lock-only epoch has no data writes, no barrier and no asserted reads:
// only the lock chains carry consistency until the next normal epoch.
bool lock_only(std::uint64_t seed, std::size_t e) {
  return mix(seed, 9, e, 1) % 3 == 0;
}
std::uint32_t owner_of(std::uint64_t seed, std::size_t e, std::size_t w) {
  return static_cast<std::uint32_t>(mix(seed, 1, e, w) % kNodes);
}
bool writes(std::uint64_t seed, std::size_t e, std::size_t w) {
  if (lock_only(seed, e)) return false;
  return mix(seed, 2, e, w) % 3 == 0;
}
std::uint64_t value_of(std::uint64_t seed, std::size_t e, std::size_t w) {
  return mix(seed, 3, e, w) | 1;  // nonzero, so "never written" is distinct
}
bool increments(std::uint64_t seed, std::size_t e, std::uint32_t node) {
  return mix(seed, 6, e, node) % 2 == 0;
}
std::size_t counter_of(std::uint64_t seed, std::size_t e, std::uint32_t node) {
  return mix(seed, 5, e, node) % kCounters;
}
// Nested critical sections: a second, distinct counter taken while the
// first's lock is held (always ascending lock order, so no deadlock).
bool nests(std::uint64_t seed, std::size_t e, std::uint32_t node) {
  return mix(seed, 10, e, node) % 3 == 0;
}
std::size_t second_counter_of(std::uint64_t seed, std::size_t e,
                              std::uint32_t node, std::size_t first) {
  return (first + 1 + mix(seed, 11, e, node) % (kCounters - 1)) % kCounters;
}
// Lock-only epochs run several rotating CS rounds per node.
bool lo_increments(std::uint64_t seed, std::size_t e, std::size_t round,
                   std::uint32_t node) {
  return mix(seed, 12, e * 16 + round, node) % 4 != 0;
}
std::size_t lo_counter_of(std::uint64_t seed, std::size_t e, std::size_t round,
                          std::uint32_t node) {
  return mix(seed, 13, e * 16 + round, node) % kCounters;
}

struct FuzzConfig {
  std::size_t prefetch;
  bool gc;
  std::size_t cache_bytes;
  bool update;
  std::size_t lock_push;           // lock_push_bytes; 0 = off
  std::uint32_t arity = 0;         // barrier_tree_arity; 0 = centralized
  bool shard = false;              // hash-sharded lock/sema managers
  std::size_t ceiling = 0;         // meta_ceiling_bytes; 0 = off
  // Lossy-wire legs: per-link fault rates fed to the simnet injector, with
  // the retransmission channel armed underneath.  The fault stream is
  // seeded from the fuzz seed, so a failing leg replays exactly.
  std::uint32_t drop_ppm = 0;
  std::uint32_t dup_ppm = 0;
  std::uint32_t reorder_ppm = 0;
  std::uint64_t jitter_ns = 0;
  bool pin_wire = false;  // force a perfect wire even under env chaos
  bool chaos() const {
    return drop_ppm != 0 || dup_ppm != 0 || reorder_ppm != 0 || jitter_ns != 0;
  }
};

// One node's lock-guarded counter increment, optionally nested with a
// second counter (ascending lock order).  Mirrored exactly by the model.
void increment_counters(Tmk& tmk, gptr<std::uint64_t> counters,
                        std::uint64_t seed, std::size_t e, std::uint32_t id) {
  const std::size_t a = counter_of(seed, e, id);
  if (nests(seed, e, id)) {
    const std::size_t b = second_counter_of(seed, e, id, a);
    const std::size_t lo = std::min(a, b), hi = std::max(a, b);
    tmk.lock_acquire(static_cast<std::uint32_t>(lo));
    tmk.lock_acquire(static_cast<std::uint32_t>(hi));
    counters[a] += id + 1;
    counters[b] += id + 2;
    tmk.lock_release(static_cast<std::uint32_t>(hi));
    tmk.lock_release(static_cast<std::uint32_t>(lo));
  } else {
    tmk.lock_acquire(static_cast<std::uint32_t>(a));
    counters[a] += id + 1;
    tmk.lock_release(static_cast<std::uint32_t>(a));
  }
}

// Final contents of the whole shared region (data pages + counter page),
// captured on node 0 after the last barrier.
std::vector<std::uint64_t> run_fuzz(const FuzzConfig& fc, std::uint64_t seed,
                                    std::size_t epochs,
                                    sim::TrafficSnapshot* traffic = nullptr) {
  DsmConfig c;
  c.num_nodes = kNodes;
  c.heap_bytes = 4 << 20;
  c.prefetch_pages = fc.prefetch;
  c.gc_at_barriers = fc.gc;
  c.diff_cache_bytes_per_page = fc.cache_bytes;
  c.update_mode = fc.update;
  c.lock_push_bytes = fc.lock_push;
  c.barrier_tree_arity = fc.arity;
  c.shard_managers = fc.shard;
  c.meta_ceiling_bytes = fc.ceiling;
  c.time.cpu_scale = 0.0;
  // Chaos legs override whatever the TMK_NET_* env defaults injected (the
  // chaos CI leg faults every leg above via env; these legs pin their own
  // rates so a failure replays identically anywhere).
  if (fc.chaos()) {
    c.net_fault = {};
    c.net_fault.drop_ppm = fc.drop_ppm;
    c.net_fault.dup_ppm = fc.dup_ppm;
    c.net_fault.reorder_ppm = fc.reorder_ppm;
    c.net_fault.jitter_ns = fc.jitter_ns;
    c.net_fault.seed = seed;
  } else if (fc.pin_wire) {
    c.net_fault = {};
    c.net_reliable = false;
  }

  std::vector<std::uint64_t> final_words(kWords + kWordsPerPage, 0);
  DsmRuntime rt(c);
  rt.run_spmd([&](Tmk& tmk) {
    gptr<std::uint64_t> data(kPageSize);
    gptr<std::uint64_t> counters(kPageSize + kDataPages * kPageSize);
    const std::uint32_t id = tmk.id();
    std::uint64_t sink = 0;

    for (std::size_t e = 0; e < epochs; ++e) {
      if (lock_only(seed, e)) {
        // Barrier-free stretch: rotating lock ownership only (plus stale
        // mid-epoch reads).  Word owners cannot change hands here — the
        // schedule writes data only in barrier-separated epochs.
        for (std::size_t round = 0; round < kLockOnlyRounds; ++round) {
          for (std::size_t i = 0; i < kMidReads / kLockOnlyRounds; ++i)
            sink += data[mix(seed, 4, e, id * 1000 + round * 100 + i) % kWords];
          if (lo_increments(seed, e, round, id)) {
            const std::size_t ctr = lo_counter_of(seed, e, round, id);
            tmk.lock_acquire(static_cast<std::uint32_t>(ctr));
            counters[ctr] += id + 1;
            tmk.lock_release(static_cast<std::uint32_t>(ctr));
          }
        }
        continue;
      }

      // Race-free writes: each word has exactly one owner this epoch.
      for (std::size_t w = 0; w < kWords; ++w)
        if (owner_of(seed, e, w) == id && writes(seed, e, w))
          data[w] = value_of(seed, e, w);

      // Unasserted mid-epoch reads: random fault/prefetch timing.
      for (std::size_t i = 0; i < kMidReads; ++i)
        sink += data[mix(seed, 4, e, id * 1000 + i) % kWords];

      // Lock-guarded counter increments (commutative, so the final value is
      // interleaving-independent); the grant chain ships record deltas and,
      // with lock_push on, the diffs themselves.
      if (increments(seed, e, id)) increment_counters(tmk, counters, seed, e, id);

      tmk.barrier();

      // Asserted post-barrier reads against the replayed model.
      for (std::size_t i = 0; i < kVerifyReads; ++i) {
        const std::size_t w = mix(seed, 7, e, id * 1000 + i) % kWords;
        std::uint64_t want = 0;
        for (std::size_t past = e + 1; past-- > 0;)
          if (writes(seed, past, w)) {
            want = value_of(seed, past, w);
            break;
          }
        ASSERT_EQ(data[w], want)
            << "seed=" << seed << " node=" << id << " epoch=" << e << " word="
            << w << " lockpush=" << fc.lock_push
            << " (replay: NOW_FUZZ_SEED_BASE=" << seed
            << " NOW_FUZZ_SEEDS=1)";
      }
      tmk.barrier();
    }
    // A trailing barrier: the last epochs may have been lock-only, and the
    // capture below must observe every chain's increments.
    tmk.barrier();
    if (sink == static_cast<std::uint64_t>(-1)) std::abort();  // keep reads live

    if (id == 0) {
      for (std::size_t w = 0; w < kWords; ++w) final_words[w] = data[w];
      for (std::size_t k = 0; k < kWordsPerPage; ++k)
        final_words[kWords + k] = counters[k];
    }
  });

  // Ceiling legs additionally assert the footprint invariant the on-demand
  // GC exists for: no node's consistency metadata may end far above the
  // ceiling, under any schedule the seed produced.  (The slack absorbs the
  // metadata of the epochs between the last exchange and the end of the
  // run.)  A gc-off ceiling leg with a few epochs must also actually have
  // exchanged — a silently inert ceiling would pass the bound vacuously on
  // short runs while leaking on long ones.
  if (fc.ceiling > 0) {
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      EXPECT_LE(rt.node(i).meta_footprint().total_bytes(),
                fc.ceiling + 32 * 1024)
          << "seed=" << seed << " node=" << i << " ceiling=" << fc.ceiling;
    }
    if (!fc.gc && epochs >= 3)
      EXPECT_GT(rt.total_stats().gc_exchanges, 0u)
          << "seed=" << seed << " ceiling=" << fc.ceiling;
  }
  if (traffic != nullptr) *traffic = rt.traffic();
  return final_words;
}

TEST(FuzzConsistency, ByteIdenticalAcrossConfigMatrix) {
  const std::size_t seeds = env_size("NOW_FUZZ_SEEDS", 2);
  const std::uint64_t seed_base = env_size("NOW_FUZZ_SEED_BASE", 20260730);
  const std::size_t epochs = env_size("NOW_FUZZ_EPOCHS", 4);

  // Full cross at prefetch {0, 4}; the wide 16-page window re-tests the
  // prefetch batching against each GC mode (cache-off legs would be
  // redundant: prefetch is inert without the cache), so it rides as four
  // extra legs instead of doubling the whole matrix.  Lock push likewise
  // needs the cache, so its legs ride the cache-on cross of
  // {prefetch 0/4} x {gc on/off} plus two update-mode legs.
  std::vector<FuzzConfig> matrix;
  for (bool update : {false, true})
    for (std::size_t prefetch : {std::size_t{0}, std::size_t{4}})
      for (bool gc : {false, true})
        for (std::size_t cache : {std::size_t{0}, std::size_t{16 * 1024}})
          matrix.push_back({prefetch, gc, cache, update, 0});
  for (bool update : {false, true})
    for (bool gc : {false, true})
      matrix.push_back({16, gc, 16 * 1024, update, 0});
  for (std::size_t prefetch : {std::size_t{0}, std::size_t{4}})
    for (bool gc : {false, true})
      matrix.push_back({prefetch, gc, 16 * 1024, false, 16 * 1024});
  for (bool gc : {false, true})
    matrix.push_back({4, gc, 16 * 1024, true, 16 * 1024});
  // Combining-tree fabric legs, always with hash-sharded managers riding
  // along: arity 2 (one combining point below the root at 4 nodes) and the
  // arity-1 chain (every node a combining point, maximal depth — the
  // worst case for a departure wave racing next-epoch arrivals), across GC
  // modes; then the tree under each push protocol, whose barrier-indexed
  // parking is exactly what the deeper fabric must not skew.
  for (std::uint32_t arity : {1u, 2u})
    for (bool gc : {false, true})
      matrix.push_back({4, gc, 16 * 1024, false, 0, arity, true});
  matrix.push_back({0, true, 0, false, 0, 2, true});  // cache off + tree
  matrix.push_back({4, true, 16 * 1024, true, 0, 2, true});
  matrix.push_back({4, true, 16 * 1024, false, 16 * 1024, 1, true});
  // On-demand ceiling legs: a tight 4KB ceiling forces GC exchanges in the
  // middle of the schedule (including mid lock-only stretches), alone, on
  // top of barrier GC, under the migratory lock push (whose relay chunks
  // the exchange floor prunes), across the whole stack at once, and with
  // the diff cache off (exchange floors with nowhere to pin prefetches).
  matrix.push_back({0, false, 16 * 1024, false, 0, 0, false, 4096});
  matrix.push_back({0, true, 16 * 1024, false, 0, 0, false, 4096});
  matrix.push_back({0, false, 16 * 1024, false, 16 * 1024, 0, false, 4096});
  matrix.push_back({4, true, 16 * 1024, true, 0, 2, true, 4096});
  matrix.push_back({0, false, 0, false, 0, 0, false, 4096});
  // Lossy-wire legs: each fault class alone at the issue's rates — drop 1%,
  // dup 0.5%, reorder 1%, delay jitter — then all four at once riding the
  // protocol combinations whose ordering assumptions a lossy wire attacks:
  // the migratory lock push (grant chain is the only consistency carrier),
  // update mode (pushes racing barriers across links), the combining tree
  // with sharded managers, and the GC ceiling (exchange floors mid-loss).
  matrix.push_back({4, true, 16 * 1024, false, 0, 0, false, 0,
                    10000, 0, 0, 0});
  matrix.push_back({4, true, 16 * 1024, false, 0, 0, false, 0,
                    0, 5000, 0, 0});
  matrix.push_back({4, true, 16 * 1024, false, 0, 0, false, 0,
                    0, 0, 10000, 0});
  matrix.push_back({4, true, 16 * 1024, false, 0, 0, false, 0,
                    0, 0, 0, 200'000});
  matrix.push_back({4, true, 16 * 1024, false, 16 * 1024, 0, false, 0,
                    10000, 5000, 10000, 200'000});
  matrix.push_back({4, true, 16 * 1024, true, 0, 0, false, 0,
                    10000, 5000, 10000, 200'000});
  matrix.push_back({4, true, 16 * 1024, false, 0, 2, true, 0,
                    10000, 5000, 10000, 200'000});
  matrix.push_back({0, false, 16 * 1024, false, 0, 0, false, 4096,
                    10000, 5000, 10000, 200'000});

  for (std::size_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = seed_base + s;

    // Host-side sequential replay: the one truth every config must match.
    std::vector<std::uint64_t> model(kWords + kWordsPerPage, 0);
    for (std::size_t e = 0; e < epochs; ++e) {
      if (lock_only(seed, e)) {
        for (std::size_t round = 0; round < kLockOnlyRounds; ++round)
          for (std::uint32_t node = 0; node < kNodes; ++node)
            if (lo_increments(seed, e, round, node))
              model[kWords + lo_counter_of(seed, e, round, node)] += node + 1;
        continue;
      }
      for (std::size_t w = 0; w < kWords; ++w)
        if (writes(seed, e, w)) model[w] = value_of(seed, e, w);
      for (std::uint32_t node = 0; node < kNodes; ++node) {
        if (!increments(seed, e, node)) continue;
        const std::size_t a = counter_of(seed, e, node);
        model[kWords + a] += node + 1;
        if (nests(seed, e, node))
          model[kWords + second_counter_of(seed, e, node, a)] += node + 2;
      }
    }

    for (const FuzzConfig& fc : matrix) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " prefetch=" << fc.prefetch
                   << " gc=" << fc.gc << " cache=" << fc.cache_bytes
                   << " update=" << fc.update << " lockpush=" << fc.lock_push
                   << " arity=" << fc.arity << " shard=" << fc.shard
                   << " ceiling=" << fc.ceiling << " drop=" << fc.drop_ppm
                   << " dup=" << fc.dup_ppm << " reorder=" << fc.reorder_ppm
                   << " jitter=" << fc.jitter_ns
                   << " (replay: NOW_FUZZ_SEED_BASE=" << seed
                   << " NOW_FUZZ_SEEDS=1)");
      const auto got = run_fuzz(fc, seed, epochs);
      ASSERT_EQ(got, model);  // byte-for-byte: every word, every counter
    }
  }
}

// The retransmission protocol's price tag: at the issue's 1% drop rate the
// wire carries retransmitted copies and standalone acks, but the overhead
// must stay a bounded multiple of the perfect-wire traffic — losing 1% of
// packets must not double the bytes — while the results stay byte-identical.
TEST(FuzzConsistency, RetransmitOverheadBounded) {
  const std::uint64_t seed = env_size("NOW_FUZZ_SEED_BASE", 20260730);
  const std::size_t epochs = env_size("NOW_FUZZ_EPOCHS", 4);

  FuzzConfig clean{4, true, 16 * 1024, false, 0};
  clean.pin_wire = true;
  FuzzConfig lossy = clean;
  lossy.pin_wire = false;
  lossy.drop_ppm = 10000;

  sim::TrafficSnapshot clean_t, lossy_t;
  const auto clean_words = run_fuzz(clean, seed, epochs, &clean_t);
  const auto lossy_words = run_fuzz(lossy, seed, epochs, &lossy_t);

  ASSERT_EQ(clean_words, lossy_words);  // exactly-once restored the bytes
  EXPECT_EQ(clean_t.chan.retransmits, 0u);
  EXPECT_GT(lossy_t.chan.drops_injected, 0u);
  EXPECT_GT(lossy_t.chan.retransmits, 0u);

  // Bounded recovery: 1% loss costs at most 50% extra wire bytes.  (The
  // overhead is dominated by whole-message retransmit copies plus acks;
  // measured well under 1.2x — 1.5x absorbs host-timing-dependent extra
  // timeouts without letting regressions like per-loss storms through.)
  EXPECT_LT(lossy_t.wire_bytes, clean_t.wire_bytes + clean_t.wire_bytes / 2)
      << "clean=" << clean_t.wire_bytes << " lossy=" << lossy_t.wire_bytes;
}

}  // namespace
}  // namespace now::tmk
