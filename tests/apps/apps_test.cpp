// Integration tests: every application version (hand-coded TreadMarks,
// compiled-OpenMP style, MPI) must reproduce the sequential checksum at 2, 4
// and 8 nodes.  This is the correctness gate for the Figure 5 / Table 2
// benchmarks.
#include <gtest/gtest.h>

#include "apps/fft3d/fft3d.h"
#include "apps/qsort/qsort.h"
#include "apps/sweep3d/sweep3d.h"
#include "apps/tsp/tsp.h"
#include "apps/water/water.h"

namespace now::apps {
namespace {

tmk::DsmConfig dsm_cfg(std::uint32_t nodes, std::size_t heap = 32 << 20) {
  tmk::DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = heap;
  return c;
}

mpi::MpiConfig mpi_cfg(std::uint32_t ranks) {
  mpi::MpiConfig c;
  c.num_ranks = ranks;
  return c;
}

class AppsAtNodes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AppsAtNodes, QsortAllVersionsMatchSequential) {
  qs::Params p;
  p.n = 1 << 14;
  p.bubble_threshold = 128;
  const auto seq = qs::run_seq(p, sim::TimeModel{});
  const auto tmkr = qs::run_tmk(p, dsm_cfg(GetParam()));
  const auto ompr = qs::run_omp(p, dsm_cfg(GetParam()));
  const auto mpir = qs::run_mpi(p, mpi_cfg(GetParam()));
  EXPECT_EQ(seq.checksum, tmkr.checksum);
  EXPECT_EQ(seq.checksum, ompr.checksum);
  EXPECT_EQ(seq.checksum, mpir.checksum);
}

TEST_P(AppsAtNodes, TspAllVersionsFindTheOptimum) {
  tsp::Params p;
  p.ncities = 10;
  p.exhaustive_depth = 6;
  const auto seq = tsp::run_seq(p, sim::TimeModel{});
  const auto tmkr = tsp::run_tmk(p, dsm_cfg(GetParam()));
  const auto ompr = tsp::run_omp(p, dsm_cfg(GetParam()));
  const auto mpir = tsp::run_mpi(p, mpi_cfg(GetParam()));
  EXPECT_EQ(seq.checksum, tmkr.checksum);
  EXPECT_EQ(seq.checksum, ompr.checksum);
  EXPECT_EQ(seq.checksum, mpir.checksum);
}

TEST_P(AppsAtNodes, WaterAllVersionsMatchSequential) {
  water::Params p;
  p.nmol = 64;
  p.steps = 2;
  const auto seq = water::run_seq(p, sim::TimeModel{});
  const auto tmkr = water::run_tmk(p, dsm_cfg(GetParam()));
  const auto ompr = water::run_omp(p, dsm_cfg(GetParam()));
  const auto mpir = water::run_mpi(p, mpi_cfg(GetParam()));
  EXPECT_TRUE(checksum_close(seq.checksum, tmkr.checksum, 1e-7))
      << seq.checksum << " vs " << tmkr.checksum;
  EXPECT_TRUE(checksum_close(seq.checksum, ompr.checksum, 1e-7))
      << seq.checksum << " vs " << ompr.checksum;
  EXPECT_TRUE(checksum_close(seq.checksum, mpir.checksum, 1e-7))
      << seq.checksum << " vs " << mpir.checksum;
}

TEST_P(AppsAtNodes, Fft3dAllVersionsMatchSequential) {
  fft3d::Params p;
  p.nx = p.ny = p.nz = 16;
  p.iters = 2;
  const auto seq = fft3d::run_seq(p, sim::TimeModel{});
  const auto tmkr = fft3d::run_tmk(p, dsm_cfg(GetParam()));
  const auto ompr = fft3d::run_omp(p, dsm_cfg(GetParam()));
  const auto mpir = fft3d::run_mpi(p, mpi_cfg(GetParam()));
  EXPECT_TRUE(checksum_close(seq.checksum, tmkr.checksum, 1e-9))
      << seq.checksum << " vs " << tmkr.checksum;
  EXPECT_TRUE(checksum_close(seq.checksum, ompr.checksum, 1e-9))
      << seq.checksum << " vs " << ompr.checksum;
  EXPECT_TRUE(checksum_close(seq.checksum, mpir.checksum, 1e-9))
      << seq.checksum << " vs " << mpir.checksum;
}

TEST_P(AppsAtNodes, Sweep3dAllVersionsMatchSequential) {
  sweep3d::Params p;
  p.nx = p.ny = p.nz = 16;
  p.k_block = 4;
  const auto seq = sweep3d::run_seq(p, sim::TimeModel{});
  const auto tmkr = sweep3d::run_tmk(p, dsm_cfg(GetParam()));
  const auto ompr = sweep3d::run_omp(p, dsm_cfg(GetParam()));
  const auto mpir = sweep3d::run_mpi(p, mpi_cfg(GetParam()));
  // The sweep recurrence is order-deterministic: exact match for the DSM
  // versions, tolerance only for MPI's tree-reduced checksum.
  EXPECT_EQ(seq.checksum, tmkr.checksum);
  EXPECT_EQ(seq.checksum, ompr.checksum);
  EXPECT_TRUE(checksum_close(seq.checksum, mpir.checksum, 1e-10))
      << seq.checksum << " vs " << mpir.checksum;
}

INSTANTIATE_TEST_SUITE_P(Nodes, AppsAtNodes, ::testing::Values(2u, 4u, 8u));

TEST(AppsTraffic, DsmVersionsReportTrafficAndMpiReportsLess) {
  // The paper's Table 2 shape on a small instance: the DSM versions send
  // more messages than MPI for the regular applications.
  water::Params p;
  p.nmol = 64;
  p.steps = 2;
  const auto tmkr = water::run_tmk(p, dsm_cfg(4));
  const auto mpir = water::run_mpi(p, mpi_cfg(4));
  EXPECT_GT(tmkr.traffic.messages, 0u);
  EXPECT_GT(mpir.traffic.messages, 0u);
  EXPECT_GT(tmkr.traffic.messages, mpir.traffic.messages);
}

TEST(AppsStats, DsmVersionsExerciseTheProtocol) {
  fft3d::Params p;
  p.nx = p.ny = p.nz = 16;
  p.iters = 1;
  const auto r = fft3d::run_tmk(p, dsm_cfg(4));
  EXPECT_GT(r.dsm.diffs_created, 0u);
  EXPECT_GT(r.dsm.twins_created, 0u);
  EXPECT_GT(r.dsm.barriers, 0u);
  EXPECT_GT(r.virtual_time_us, 0.0);
}

TEST(AppsSemantics, Sweep3dUsesSemaphores) {
  sweep3d::Params p;
  p.nx = p.ny = p.nz = 16;
  const auto r = sweep3d::run_tmk(p, dsm_cfg(4));
  EXPECT_GT(r.dsm.sema_ops, 0u);
}

TEST(AppsSemantics, QsortUsesCondVars) {
  qs::Params p;
  p.n = 1 << 12;
  p.bubble_threshold = 128;
  const auto r = qs::run_tmk(p, dsm_cfg(4));
  EXPECT_GT(r.dsm.cond_ops, 0u);
  EXPECT_GT(r.dsm.lock_acquires, 0u);
}

}  // namespace
}  // namespace now::apps
