// OpenMP-subset runtime tests: parallel regions, firstprivate capture,
// schedules, reductions (scalar and array), criticals, threadprivate and the
// synchronization directives.
#include "omp/omp.h"

#include <gtest/gtest.h>

#include <numeric>

namespace now::omp {
namespace {

tmk::DsmConfig cfg(std::uint32_t nodes) {
  tmk::DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = 8 << 20;
  return c;
}

TEST(OmpParallel, EveryThreadRunsTheRegionOnce) {
  for (std::uint32_t n : {2u, 4u, 8u}) {
    OmpRuntime rt(cfg(n));
    rt.run([n](Team& team) {
      auto hits = team.shared_array<std::uint64_t>(n);
      team.parallel([=](Par& p) { hits[p.thread_num()] = hits[p.thread_num()] + 1; });
      for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1u) << "n=" << n;
    });
  }
}

TEST(OmpParallel, FirstprivateValuesCopiedAtFork) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    auto out = team.shared_array<std::uint64_t>(4);
    std::uint64_t fp = 31415;  // master-stack value, captured by copy
    team.parallel([=](Par& p) { out[p.thread_num()] = fp + p.thread_num(); });
    for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], 31415u + i);
  });
}

TEST(OmpParallel, SequentialCodeBetweenRegions) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    auto v = team.shared_array<std::uint64_t>(8);
    team.parallel([=](Par& p) { v[p.thread_num()] = p.thread_num(); });
    // Sequential epilogue on the master mutates shared data...
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < 4; ++i) sum += v[i];
    v[7] = sum;
    // ...and the next region sees it.
    team.parallel([=](Par&) { EXPECT_EQ(v[7], 0u + 1 + 2 + 3); });
  });
}

TEST(OmpFor, StaticScheduleCoversRangeExactlyOnce) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    constexpr std::int64_t kN = 1000;
    auto marks = team.shared_array<std::uint32_t>(kN);
    team.parallel_for(0, kN, [=](Par&, std::int64_t i) {
      marks[static_cast<std::size_t>(i)] = marks[static_cast<std::size_t>(i)] + 1;
    });
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(marks[static_cast<std::size_t>(i)], 1u) << "i=" << i;
  });
}

TEST(OmpFor, StaticChunkedCoversRange) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    constexpr std::int64_t kN = 100;
    auto owner = team.shared_array<std::uint32_t>(kN);
    ForOpts opts;
    opts.chunk = 7;
    team.parallel_for(
        0, kN,
        [=](Par& p, std::int64_t i) { owner[static_cast<std::size_t>(i)] = p.thread_num() + 1; },
        opts);
    for (std::int64_t i = 0; i < kN; ++i) ASSERT_NE(owner[static_cast<std::size_t>(i)], 0u);
    // Chunk 7 round-robin: iterations 0..6 belong to thread 0, 7..13 to 1, ...
    EXPECT_EQ(owner[0], 1u);
    EXPECT_EQ(owner[7], 2u);
    EXPECT_EQ(owner[14], 3u);
    EXPECT_EQ(owner[21], 4u);
    EXPECT_EQ(owner[28], 1u);
  });
}

TEST(OmpFor, DynamicScheduleCoversRange) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    constexpr std::int64_t kN = 60;
    auto marks = team.shared_array<std::uint32_t>(kN);
    ForOpts opts;
    opts.schedule = Schedule::kDynamic;
    opts.chunk = 5;
    team.parallel_for(
        0, kN,
        [=](Par&, std::int64_t i) { marks[static_cast<std::size_t>(i)] = marks[static_cast<std::size_t>(i)] + 1; },
        opts);
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(marks[static_cast<std::size_t>(i)], 1u) << "i=" << i;
  });
}

TEST(OmpFor, EmptyAndTinyRanges) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    auto count = team.shared_scalar<std::uint64_t>(0);
    team.parallel_for(0, 0, [=](Par&, std::int64_t) {
      *count = 999;  // never reached
    });
    team.parallel_for(0, 2, [=](Par& p, std::int64_t) {
      std::uint64_t one = 1;
      p.reduce_sum(count, &one, 1);
    });
    EXPECT_EQ(*count, 2u);
  });
}

TEST(OmpReduce, ScalarSumMatchesClosedForm) {
  OmpRuntime rt(cfg(8));
  rt.run([](Team& team) {
    const std::int64_t n = 10000;
    const auto sum = team.parallel_for_reduce_sum<std::int64_t>(
        1, n + 1, [](Par&, std::int64_t i) { return i; });
    EXPECT_EQ(sum, n * (n + 1) / 2);
  });
}

TEST(OmpReduce, ArrayReductionExtension) {
  // The paper extends reduction variables to arrays.
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    constexpr std::size_t kBins = 16;
    auto hist = team.shared_array<std::uint64_t>(kBins);
    team.parallel([=](Par& p) {
      std::uint64_t local[kBins] = {};
      auto [b, e] = p.static_range(0, 1024);
      for (std::int64_t i = b; i < e; ++i) local[i % kBins] += 1;
      p.reduce_sum(hist, local, kBins);
    });
    for (std::size_t k = 0; k < kBins; ++k) EXPECT_EQ(hist[k], 1024u / kBins);
  });
}

TEST(OmpCritical, NamedCriticalsAreDisjointLocks) {
  EXPECT_NE(critical_lock_id("queue"), critical_lock_id("pool"));
  EXPECT_EQ(critical_lock_id("queue"), critical_lock_id("queue"));
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    auto counters = team.shared_array<std::uint64_t>(2);
    team.parallel([=](Par& p) {
      for (int i = 0; i < 10; ++i) {
        p.critical("a", [&] { counters[0] = counters[0] + 1; });
        p.critical("b", [&] { counters[1] = counters[1] + 1; });
      }
    });
    EXPECT_EQ(counters[0], 40u);
    EXPECT_EQ(counters[1], 40u);
  });
}

TEST(OmpThreadPrivate, PersistsAcrossRegions) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    static ThreadPrivate<std::uint64_t>* tp = nullptr;
    ThreadPrivate<std::uint64_t> storage(team.num_threads(), 0);
    tp = &storage;
    team.parallel([](Par& p) { tp->local(p) += p.thread_num() + 1; });
    team.parallel([](Par& p) { tp->local(p) += p.thread_num() + 1; });
    for (std::uint32_t t = 0; t < 4; ++t) EXPECT_EQ(storage.at(t), 2u * (t + 1));
  });
}

TEST(OmpSync, BarrierInsideRegionOrdersPhases) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    auto a = team.shared_array<std::uint64_t>(4);
    team.parallel([=](Par& p) {
      a[p.thread_num()] = p.thread_num() + 100;
      p.barrier();
      const std::uint32_t peer = (p.thread_num() + 1) % p.num_threads();
      EXPECT_EQ(a[peer], peer + 100u);
    });
  });
}

TEST(OmpSync, SemaphorePipelineAcrossThreads) {
  OmpRuntime rt(cfg(2));
  rt.run([](Team& team) {
    auto cell = team.shared_scalar<std::uint64_t>(0);
    team.parallel([=](Par& p) {
      if (p.thread_num() == 0) {
        for (int i = 1; i <= 5; ++i) {
          *cell = static_cast<std::uint64_t>(i);
          p.sema_signal(0);
          p.sema_wait(1);
        }
      } else {
        for (int i = 1; i <= 5; ++i) {
          p.sema_wait(0);
          EXPECT_EQ(*cell, static_cast<std::uint64_t>(i));
          p.sema_signal(1);
        }
      }
    });
  });
}

TEST(OmpSync, MasterConstructRunsOnce) {
  OmpRuntime rt(cfg(4));
  rt.run([](Team& team) {
    auto c = team.shared_scalar<std::uint64_t>(0);
    team.parallel([=](Par& p) {
      p.master([&] { *c = *c + 1; });
      p.barrier();
      EXPECT_EQ(*c, 1u);
    });
  });
}

TEST(OmpTraffic, RegionsCostForkJoinMessages) {
  OmpRuntime rt(cfg(8));
  rt.run([](Team& team) {
    team.parallel([](Par&) {});
    team.parallel([](Par&) {});
  });
  const auto t = rt.traffic();
  EXPECT_EQ(t.messages_by_type[tmk::kFork], 2u * 7u);
  EXPECT_EQ(t.messages_by_type[tmk::kJoin], 2u * 7u);
}

}  // namespace
}  // namespace now::omp
