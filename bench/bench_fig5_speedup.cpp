// Figure 5: "Speedup comparison among the OpenMP, TreadMarks and MPI
// versions of the applications" on eight processors.
//
// The paper's headline claims, which this bench lets you check:
//   - the OpenMP versions achieve performance within a few percent of their
//     hand-coded TreadMarks counterparts;
//   - both still lag the MPI versions.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace now;
  using namespace now::bench;
  const int scale = scale_from_args(argc, argv);
  const Workloads w = Workloads::standard(scale);
  constexpr std::uint32_t kNodes = 8;

  std::cout << "== Figure 5: speedups on " << kNodes
            << " simulated workstations (OpenMP vs TreadMarks vs MPI) ==\n";

  Table t({"Application", "OpenMP", "Tmk", "MPI", "OpenMP/Tmk"});
  auto add = [&](const char* name, const VersionedResults& r) {
    const double so = speedup(r.seq, r.omp);
    const double st = speedup(r.seq, r.tmk);
    const double sm = speedup(r.seq, r.mpi);
    t.add_row({name, Table::fmt(so), Table::fmt(st), Table::fmt(sm),
               Table::fmt(st > 0 ? so / st : 0)});
  };

  add("Sweep3D", run_all(w.sweep, kNodes));
  add("3D-FFT", run_all(w.fft, kNodes));
  add("Water", run_all(w.water, kNodes));
  add("TSP", run_all(w.tsp, kNodes));
  add("QSORT", run_all(w.qs, kNodes));

  t.print(std::cout);
  std::cout << "\n(expected shape: OpenMP within a few percent of Tmk; both"
               "\n behind MPI; bars comparable to the paper's Figure 5)\n";
  return 0;
}
