// google-benchmark microbenchmarks of the DSM primitives (host-time costs of
// the building blocks: RLE diffs, twins, interval-log operations).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "tmk/diff.h"
#include "tmk/intervals.h"

namespace {

using now::Rng;
using now::tmk::diff_apply;
using now::tmk::diff_create;
using now::tmk::IntervalRecord;
using now::tmk::KnowledgeLog;
using now::tmk::kPageSize;

std::vector<std::uint8_t> random_page(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> p(kPageSize);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
  return p;
}

void BM_DiffCreate(benchmark::State& state) {
  auto twin = random_page(1);
  auto cur = twin;
  // Dirty `range` bytes in the middle of the page (0 = clean page).
  const auto range = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < range; ++i) cur[1024 + i] ^= 0x5a;
  for (auto _ : state) {
    auto d = diff_create(twin.data(), cur.data(), kPageSize);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(16)->Arg(256)->Arg(2048);

// The retired byte-at-a-time scanner, kept as the baseline the word-at-a-time
// path is judged against.
void BM_DiffCreateScalar(benchmark::State& state) {
  auto twin = random_page(1);
  auto cur = twin;
  const auto range = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < range; ++i) cur[1024 + i] ^= 0x5a;
  for (auto _ : state) {
    auto d = now::tmk::diff_create_scalar(twin.data(), cur.data(), kPageSize);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_DiffCreateScalar)->Arg(0)->Arg(16)->Arg(256)->Arg(2048);

// The allocation-free append variant reusing one buffer across pages.
void BM_DiffAppendReuse(benchmark::State& state) {
  auto twin = random_page(1);
  auto cur = twin;
  const auto range = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < range; ++i) cur[1024 + i] ^= 0x5a;
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    now::tmk::diff_append(out, twin.data(), cur.data(), kPageSize);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_DiffAppendReuse)->Arg(16)->Arg(2048);

void BM_DiffApply(benchmark::State& state) {
  auto twin = random_page(2);
  auto cur = twin;
  const auto range = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < range; ++i) cur[512 + i] ^= 0xa5;
  const auto d = diff_create(twin.data(), cur.data(), kPageSize);
  auto target = twin;
  for (auto _ : state) {
    diff_apply(target.data(), kPageSize, d);
    benchmark::DoNotOptimize(target.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.size()));
}
BENCHMARK(BM_DiffApply)->Arg(16)->Arg(256)->Arg(2048);

void BM_TwinCopy(benchmark::State& state) {
  auto page = random_page(3);
  std::vector<std::uint8_t> twin(kPageSize);
  for (auto _ : state) {
    std::memcpy(twin.data(), page.data(), kPageSize);
    benchmark::DoNotOptimize(twin.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_TwinCopy);

void BM_IntervalMergeAndDelta(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    KnowledgeLog a(nodes), b(nodes);
    std::vector<now::tmk::IntervalRecordPtr> recs;
    for (std::uint32_t n = 1; n < nodes; ++n)
      for (std::uint32_t s = 1; s <= 16; ++s) {
        IntervalRecord r;
        r.node = n;
        r.seq = s;
        r.lamport = s;
        r.pages = {s, s + 1};
        recs.push_back(std::make_shared<const IntervalRecord>(std::move(r)));
      }
    state.ResumeTiming();
    a.merge(recs);
    auto delta = a.delta_since(b.vt());
    benchmark::DoNotOptimize(delta);
  }
}
BENCHMARK(BM_IntervalMergeAndDelta)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
