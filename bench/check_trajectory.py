#!/usr/bin/env python3
"""Perf-trajectory gate for the diff engine.

Compares `bench_micro --json` output against the checked-in baseline
(bench/baselines/diff_micro.json) and fails loudly when the fast/scalar
speedup ratio of any case regresses past its tolerance.  The ratio — not the
absolute MB/s — is gated: the scalar reference oracle is built from the same
tree with the same flags, so it normalizes the CI runner's CPU out of the
measurement, and a slowdown in diff_create drops the ratio on every machine.

Usage:
    ./build/bench_micro --json | python3 bench/check_trajectory.py
    python3 bench/check_trajectory.py --measured out.json
    ./build/bench_micro --json | python3 bench/check_trajectory.py --update

Exit status: 0 when every case is within tolerance, 1 on regression (or,
with --strict, on a suspicious improvement that suggests the scalar oracle
regressed or the baseline is stale).
"""
import argparse
import json
import math
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baselines", "diff_micro.json")


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="baseline JSON (default: bench/baselines/diff_micro.json)")
    ap.add_argument("--measured", default="-",
                    help="bench_micro --json output (default: stdin)")
    ap.add_argument("--strict", action="store_true",
                    help="also fail when a case improves past its tolerance "
                         "(stale baseline, or the scalar oracle regressed)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's speedups from the measurement "
                         "(tolerances and comments preserved)")
    args = ap.parse_args()

    baseline = load(args.baseline)
    measured = json.load(sys.stdin) if args.measured == "-" else load(args.measured)

    failures, warnings = [], []

    if measured.get("page_size") != baseline.get("page_size"):
        failures.append("page_size mismatch: measured %s, baseline %s — "
                        "the per-iteration work changed; refresh the baseline "
                        "deliberately" % (measured.get("page_size"),
                                          baseline.get("page_size")))

    cases = measured.get("diff_create_mbps", {})
    default_tol = float(baseline.get("default_tolerance", 0.25))
    for name, base_case in baseline.get("cases", {}).items():
        if name not in cases:
            failures.append("case %r missing from bench_micro output" % name)
            continue
        got = float(cases[name]["speedup"])
        want = float(base_case["speedup"])
        tol = float(base_case.get("tolerance", default_tol))
        lo, hi = want * (1.0 - tol), want * (1.0 + tol)
        line = "%-14s speedup %6.2fx  (baseline %.2fx, allowed [%.2f, %.2f])" % (
            name, got, want, lo, hi)
        if got < lo:
            failures.append("REGRESSION: " + line)
        elif got > hi:
            warnings.append("improved past tolerance: " + line +
                            " — refresh the baseline (--update)")
            print("  WARN " + line)
        else:
            print("  ok   " + line)

    for name in cases:
        if name not in baseline.get("cases", {}):
            warnings.append("case %r measured but not in the baseline; add it" % name)

    # Protocol push-vs-pull ratios, gated the same way (separate sections
    # because the metrics are flat numbers, not scalar/fast pairs):
    #  - update_push: the adaptive update protocol's producer-consumer win,
    #    virtual-time counts that are deterministic by construction;
    #  - lock_push: the migratory lock-grant chain's round-robin bound
    #    update, normalized per lock handoff (handoff counts vary a little
    #    with host scheduling, the per-handoff costs do not).
    for section in ("update_push", "lock_push"):
        sec_measured = measured.get(section, {})
        for name, base_case in baseline.get(section, {}).items():
            if name not in sec_measured:
                failures.append("%s metric %r missing from bench_micro output"
                                % (section, name))
                continue
            got = float(sec_measured[name])
            want = float(base_case["value"])
            tol = float(base_case.get("tolerance", default_tol))
            lo, hi = want * (1.0 - tol), want * (1.0 + tol)
            line = "%s %-18s %6.2fx  (baseline %.2fx, allowed [%.2f, %.2f])" % (
                section.split("_")[0], name, got, want, lo, hi)
            if got < lo:
                failures.append("REGRESSION: " + line)
            elif got > hi:
                warnings.append("improved past tolerance: " + line +
                                " — refresh the baseline (--update)")
                print("  WARN " + line)
            else:
                print("  ok   " + line)

    # Sync-fabric scaling: per-node per-barrier fabric message load by node
    # count, from `bench_scaling --json` against baselines/sync_scaling.json.
    # These are deterministic virtual-network counts, so two gates apply:
    #  - absolute: per_node_max at every node count within tolerance
    #    (exceeding it is a regression — message load only gets gated up);
    #  - growth: a fabric marked log_growth must not grow faster than
    #    O(log N) between consecutive points, i.e. the measured ratio
    #    m(N2)/m(N1) must stay within (1+tol) of log(N2)/log(N1).  The
    #    centralized fabric (2N+2 at the root) fails this by an order of
    #    magnitude, which is exactly the check's calibration.
    sync_base = (baseline.get("sync_scaling") or {}).get("fabrics", {})
    sync_meas = (measured.get("sync_scaling") or {}).get("fabrics", {})
    for fname, fbase in sync_base.items():
        if fname not in sync_meas:
            failures.append("sync fabric %r missing from bench_scaling output"
                            % fname)
            continue
        meas_pts = {int(p["nodes"]): p for p in sync_meas[fname].get("points", [])}
        tol = float(fbase.get("tolerance", baseline.get("default_tolerance", 0.25)))
        prev = None  # (nodes, measured per_node_max)
        for bp in fbase.get("points", []):
            n = int(bp["nodes"])
            if n not in meas_pts:
                failures.append("sync fabric %r: node count %d missing from "
                                "bench_scaling output" % (fname, n))
                continue
            got = float(meas_pts[n]["per_node_max"])
            want = float(bp["per_node_max"])
            lo, hi = want * (1.0 - tol), want * (1.0 + tol)
            line = "%-12s n=%-4d per-node msgs/barrier %7.1f  (baseline %.1f, " \
                   "allowed [%.1f, %.1f])" % (fname, n, got, want, lo, hi)
            if got > hi:
                failures.append("REGRESSION: " + line)
            elif got < lo:
                warnings.append("improved past tolerance: " + line +
                                " — refresh the baseline (--update)")
                print("  WARN " + line)
            else:
                print("  ok   " + line)
            if fbase.get("log_growth") and prev is not None:
                pn, pgot = prev
                allowed = (math.log(n) / math.log(pn)) * (1.0 + tol)
                ratio = got / pgot if pgot > 0 else float("inf")
                gline = "%-12s n=%d->%d growth %5.2fx  (O(log N) allows %.2fx)" % (
                    fname, pn, n, ratio, allowed)
                if ratio > allowed:
                    failures.append("SUPER-LOGARITHMIC GROWTH: " + gline)
                else:
                    print("  ok   " + gline)
            prev = (n, got)

    # Run-forever soak: per-node meta-footprint samples from `bench_soak
    # --json` against baselines/soak_footprint.json.  Two gates:
    #  - plateau (the regression gate): with the ceiling on, every sample's
    #    max-over-nodes footprint stays under plateau_max_bytes, absolutely —
    #    an on-demand GC that stops firing turns the plateau back into the
    #    ceiling_off line and fails here;
    #  - calibration: the ceiling_off curve must still grow by at least
    #    min_off_growth over the run, or the workload no longer leaks
    #    without the ceiling and the plateau gate proves nothing.
    soak_base = baseline.get("soak_footprint") or {}
    soak_meas = measured.get("soak_footprint") or {}
    if soak_base:
        if not soak_meas:
            failures.append("soak_footprint section missing from bench_soak output")
        elif int(soak_meas.get("ceiling_bytes", -1)) != int(soak_base["ceiling_bytes"]):
            failures.append("soak ceiling mismatch: measured %s, baseline %s — "
                            "the bounded quantity changed; refresh the baseline "
                            "deliberately" % (soak_meas.get("ceiling_bytes"),
                                              soak_base["ceiling_bytes"]))
        else:
            cap = float(soak_base["plateau_max_bytes"])
            modes = soak_meas.get("modes", {})
            on_pts = (modes.get("ceiling_on") or {}).get("points", [])
            off_pts = (modes.get("ceiling_off") or {}).get("points", [])
            if not on_pts:
                failures.append("soak ceiling_on curve empty")
            for p in on_pts:
                got = float(p["max_node_bytes"])
                line = "soak epoch %-5d max node bytes %8.0f  (plateau cap %.0f)" % (
                    int(p["epoch"]), got, cap)
                if got > cap:
                    failures.append("PLATEAU REGRESSION: " + line)
                else:
                    print("  ok   " + line)
            if not (modes.get("ceiling_on") or {}).get("gc_exchanges", 0):
                failures.append("soak ceiling_on run performed no GC exchanges "
                                "— the ceiling is inert")
            min_growth = float(soak_base.get("min_off_growth", 2.0))
            if len(off_pts) >= 2:
                first = float(off_pts[0]["max_node_bytes"])
                last = float(off_pts[-1]["max_node_bytes"])
                ratio = last / first if first > 0 else float("inf")
                gline = "soak ceiling_off growth %5.2fx over the run " \
                        "(calibration floor %.2fx)" % (ratio, min_growth)
                if ratio < min_growth:
                    failures.append("VACUOUS PLATEAU GATE: " + gline)
                else:
                    print("  ok   " + gline)
            elif soak_meas:
                failures.append("soak ceiling_off curve missing or too short "
                                "to calibrate the gate")

    # Lossy-wire overhead: `bench_chaos --json` against
    # baselines/chaos_overhead.json.  Three gates:
    #  - identity: the off leg (channel disabled) must match the baseline
    #    *exactly* — message count, payload bytes, wire bytes, checksum.
    #    With every knob off the wire must be the pre-chaos wire, bit for
    #    bit, and any drift is an accidental default flip somewhere;
    #  - byte equality: every leg's checksum must equal the off leg's —
    #    exactly-once delivery may cost bytes, never change them;
    #  - overhead caps: reliable (clean wire) and drop1 (1% loss) wire
    #    bytes stay under their configured multiples of the off leg.
    chaos_base = baseline.get("chaos_overhead") or {}
    chaos_meas = (measured.get("chaos_overhead") or {}).get("legs", {})
    if chaos_base:
        if not chaos_meas:
            failures.append("chaos_overhead section missing from bench_chaos output")
        else:
            off_base = chaos_base.get("off", {})
            off_meas = chaos_meas.get("off", {})
            for field in ("messages", "payload_bytes", "wire_bytes", "checksum"):
                got, want = off_meas.get(field), off_base.get(field)
                line = "chaos off %-13s %20s  (baseline %s, exact)" % (
                    field, got, want)
                if got != want:
                    failures.append("KNOBS-OFF WIRE DRIFT: " + line)
                else:
                    print("  ok   " + line)
            for field in ("retransmits", "acks_sent"):
                if int(off_meas.get(field, 0)) != 0:
                    failures.append("chaos off leg has nonzero %s — the channel "
                                    "ran with every knob off" % field)
            off_sum = off_meas.get("checksum")
            off_wire = float(off_meas.get("wire_bytes", 0) or 1)
            for leg, r in chaos_meas.items():
                if leg == "off":
                    continue
                if r.get("checksum") != off_sum:
                    failures.append("BYTE DIVERGENCE: chaos leg %r checksum %s "
                                    "!= off leg %s" % (leg, r.get("checksum"),
                                                       off_sum))
                else:
                    print("  ok   chaos %-9s checksum matches the perfect wire"
                          % leg)
            for leg, cap_key in (("reliable", "max_reliable_wire_ratio"),
                                 ("drop1", "max_drop_wire_ratio")):
                if leg not in chaos_meas:
                    failures.append("chaos leg %r missing from bench_chaos output"
                                    % leg)
                    continue
                cap = float(chaos_base.get(cap_key, 1.5))
                ratio = float(chaos_meas[leg]["wire_bytes"]) / off_wire
                line = "chaos %-9s wire overhead %5.3fx  (cap %.2fx)" % (
                    leg, ratio, cap)
                if ratio > cap:
                    failures.append("RETRANSMIT OVERHEAD REGRESSION: " + line)
                else:
                    print("  ok   " + line)
            if "drop1" in chaos_meas and \
                    int(chaos_meas["drop1"].get("retransmits", 0)) == 0:
                failures.append("chaos drop1 leg recovered nothing — the fault "
                                "injector is inert and the overhead gate vacuous")

    # Checkpoint/rollback overhead: `bench_crash_recovery --json` against
    # baselines/crash_recovery.json.  Three gates:
    #  - identity: the off leg (ckpt + crash knobs at rest) must match the
    #    baseline exactly — the recovery machinery must cost zero bytes when
    #    disarmed;
    #  - checkpoint overhead: the ckpt leg must reproduce the off leg's
    #    checksum, bank durable epochs, and keep its wire bytes under the
    #    configured multiple of the off leg's (the staging/commit rounds are
    #    the only addition, and they are cheap);
    #  - recovery: the crash leg must report completed with >= 1 rollback and
    #    the same checksum — a crash mid-run costs epochs, never bytes.
    crash_base = baseline.get("crash_recovery") or {}
    crash_meas = (measured.get("crash_recovery") or {}).get("legs", {})
    if crash_base:
        if not crash_meas:
            failures.append("crash_recovery section missing from "
                            "bench_crash_recovery output")
        else:
            off_base = crash_base.get("off", {})
            off_meas = crash_meas.get("off", {})
            for field in ("messages", "payload_bytes", "wire_bytes", "checksum"):
                got, want = off_meas.get(field), off_base.get(field)
                line = "ckpt off %-13s %20s  (baseline %s, exact)" % (
                    field, got, want)
                if got != want:
                    failures.append("KNOBS-OFF WIRE DRIFT: " + line)
                else:
                    print("  ok   " + line)
            for field in ("ckpt_epochs", "recoveries"):
                if int(off_meas.get(field, 0)) != 0:
                    failures.append("ckpt off leg has nonzero %s — the recovery "
                                    "machinery ran with every knob off" % field)
            off_sum = off_meas.get("checksum")
            off_wire = float(off_meas.get("wire_bytes", 0) or 1)
            for leg in ("ckpt", "crash"):
                r = crash_meas.get(leg)
                if r is None:
                    failures.append("crash_recovery leg %r missing from "
                                    "bench_crash_recovery output" % leg)
                    continue
                if not int(r.get("completed", 0)):
                    failures.append("crash_recovery leg %r did not complete" % leg)
                if r.get("checksum") != off_sum:
                    failures.append("BYTE DIVERGENCE: crash_recovery leg %r "
                                    "checksum %s != off leg %s"
                                    % (leg, r.get("checksum"), off_sum))
                else:
                    print("  ok   ckpt %-6s checksum matches the knobs-off run"
                          % leg)
            if "ckpt" in crash_meas:
                if int(crash_meas["ckpt"].get("ckpt_epochs", 0)) == 0:
                    failures.append("ckpt leg banked no durable epochs — the "
                                    "checkpoint pass is inert and the overhead "
                                    "gate vacuous")
                cap = float(crash_base.get("max_ckpt_wire_ratio", 1.25))
                ratio = float(crash_meas["ckpt"]["wire_bytes"]) / off_wire
                line = "ckpt overhead %5.3fx wire  (cap %.2fx)" % (ratio, cap)
                if ratio > cap:
                    failures.append("CHECKPOINT OVERHEAD REGRESSION: " + line)
                else:
                    print("  ok   " + line)
            if "crash" in crash_meas and \
                    int(crash_meas["crash"].get("recoveries", 0)) == 0:
                failures.append("crash leg performed no recovery — the scripted "
                                "crash is inert and the rollback gate vacuous")

    if args.update:
        if crash_base and crash_meas and "off" in crash_meas:
            for field in ("messages", "payload_bytes", "wire_bytes", "checksum"):
                crash_base.setdefault("off", {})[field] = \
                    crash_meas["off"].get(field)
        if chaos_base and chaos_meas and "off" in chaos_meas:
            for field in ("messages", "payload_bytes", "wire_bytes", "checksum"):
                chaos_base.setdefault("off", {})[field] = \
                    chaos_meas["off"].get(field)
        if soak_base and soak_meas:
            on_pts = (soak_meas.get("modes", {}).get("ceiling_on") or {}).get(
                "points", [])
            if on_pts:
                peak = max(float(p["max_node_bytes"]) for p in on_pts)
                soak_base["plateau_max_bytes"] = int(peak * 2)
            soak_base["ceiling_bytes"] = soak_meas.get(
                "ceiling_bytes", soak_base.get("ceiling_bytes"))
        for name, base_case in baseline.get("cases", {}).items():
            if name in cases:
                base_case["speedup"] = round(float(cases[name]["speedup"]), 2)
        for section in ("update_push", "lock_push"):
            sec_measured = measured.get(section, {})
            for name, base_case in baseline.get(section, {}).items():
                if name in sec_measured:
                    base_case["value"] = round(float(sec_measured[name]), 2)
        for fname, fbase in sync_base.items():
            meas_pts = {int(p["nodes"]): p
                        for p in sync_meas.get(fname, {}).get("points", [])}
            for bp in fbase.get("points", []):
                if int(bp["nodes"]) in meas_pts:
                    bp["per_node_max"] = meas_pts[int(bp["nodes"])]["per_node_max"]
        if "page_size" in measured or "page_size" in baseline:
            baseline["page_size"] = measured.get("page_size",
                                                 baseline.get("page_size"))
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print("baseline updated: %s" % args.baseline)
        return 0

    for w in warnings:
        print("WARNING: %s" % w, file=sys.stderr)
    if failures or (args.strict and warnings):
        print("\ndiff-throughput trajectory check FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        if args.strict:
            for w in warnings:
                print("  " + w, file=sys.stderr)
        print("(baseline: %s; refresh deliberately with --update)" % args.baseline,
              file=sys.stderr)
        return 1
    print("diff-throughput trajectory within tolerance of %s" % args.baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
