// Table 2: "Amount of data transmitted and number of messages in the
// OpenMP, TreadMarks and MPI versions of the applications" (8 processors).
//
// The shape the paper reports: "both OpenMP and TreadMarks send more
// messages and data than MPI.  Separation of synchronization and data
// transfer, the use of an invalidate protocol, and false sharing contribute
// to this extra communication."
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace now;
  using namespace now::bench;
  const int scale = scale_from_args(argc, argv);
  const Workloads w = Workloads::standard(scale);
  constexpr std::uint32_t kNodes = 8;

  std::cout << "== Table 2: data (MB) and messages on " << kNodes
            << " simulated workstations ==\n";

  Table t({"Application", "MB OpenMP", "MB Tmk", "MB MPI", "Msg OpenMP",
           "Msg Tmk", "Msg MPI"});
  // Barrier-GC, requester-side diff cache and multi-page prefetch activity:
  // records and diff bytes the DSM versions reclaimed at barriers, the fetch
  // round trips they skipped because GC pinned or a fault prefetched the
  // diffs locally, and the neighbor pages those faults batched.  The columns
  // follow the runtime configuration — with the cache (and therefore
  // prefetch) compiled off-path the counters cannot move, so their rows are
  // omitted rather than printed as misleading zeros.  Barrier-free
  // applications (TSP's lock-only phases) legitimately reclaim nothing.
  const tmk::DsmConfig dsm = dsm_cfg(kNodes);
  const bool cache_on = dsm.diff_cache_bytes_per_page > 0;
  const bool prefetch_on = dsm.prefetch_window() > 0;
  std::vector<std::string> extra_head{"Application", "GcRec OpenMP", "GcRec Tmk",
                                      "GcKB OpenMP", "GcKB Tmk"};
  if (cache_on) {
    extra_head.push_back("DCacheHit Tmk");
    extra_head.push_back("KB saved Tmk");
  }
  if (prefetch_on) {
    extra_head.push_back("PfBatched Tmk");
    extra_head.push_back("PfHit Tmk");
  }
  Table c(extra_head);
  auto add = [&](const char* name, const VersionedResults& r) {
    t.add_row({name, Table::fmt(r.omp.traffic.wire_mbytes()),
               Table::fmt(r.tmk.traffic.wire_mbytes()),
               Table::fmt(r.mpi.traffic.wire_mbytes()),
               Table::fmt(r.omp.traffic.messages), Table::fmt(r.tmk.traffic.messages),
               Table::fmt(r.mpi.traffic.messages)});
    std::vector<std::string> row{
        name, Table::fmt(r.omp.dsm.gc_records_reclaimed),
        Table::fmt(r.tmk.dsm.gc_records_reclaimed),
        Table::fmt(static_cast<double>(r.omp.dsm.gc_diff_bytes_reclaimed) / 1024.0, 1),
        Table::fmt(static_cast<double>(r.tmk.dsm.gc_diff_bytes_reclaimed) / 1024.0, 1)};
    if (cache_on) {
      row.push_back(Table::fmt(r.tmk.dsm.diff_cache_hits));
      row.push_back(
          Table::fmt(static_cast<double>(r.tmk.dsm.diff_cache_bytes_saved) / 1024.0, 1));
    }
    if (prefetch_on) {
      row.push_back(Table::fmt(r.tmk.dsm.prefetch_requests_batched));
      row.push_back(Table::fmt(r.tmk.dsm.prefetch_hits));
    }
    c.add_row(std::move(row));
  };

  add("Sweep3D", run_all(w.sweep, kNodes));
  add("3D-FFT", run_all(w.fft, kNodes));
  add("Water", run_all(w.water, kNodes));
  add("TSP", run_all(w.tsp, kNodes));
  add("QSORT", run_all(w.qs, kNodes));

  t.print(std::cout);
  std::cout << "\n(expected shape: OpenMP ~ Tmk; DSM versions send more"
               "\n messages than MPI for the regular applications)\n";
  std::cout << "\n== barrier-time GC + diff cache + multi-page prefetch ==\n";
  c.print(std::cout);
  return 0;
}
