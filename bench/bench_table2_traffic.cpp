// Table 2: "Amount of data transmitted and number of messages in the
// OpenMP, TreadMarks and MPI versions of the applications" (8 processors).
//
// The shape the paper reports: "both OpenMP and TreadMarks send more
// messages and data than MPI.  Separation of synchronization and data
// transfer, the use of an invalidate protocol, and false sharing contribute
// to this extra communication."
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace now;
  using namespace now::bench;
  const int scale = scale_from_args(argc, argv);
  const Workloads w = Workloads::standard(scale);
  constexpr std::uint32_t kNodes = 8;

  std::cout << "== Table 2: data (MB) and messages on " << kNodes
            << " simulated workstations ==\n";

  Table t({"Application", "MB OpenMP", "MB Tmk", "MB MPI", "Msg OpenMP",
           "Msg Tmk", "Msg MPI"});
  // Barrier-GC, requester-side diff cache and multi-page prefetch activity:
  // records and diff bytes the DSM versions reclaimed at barriers, the fetch
  // round trips they skipped because GC pinned or a fault prefetched the
  // diffs locally, and the neighbor pages those faults batched.  The columns
  // follow the runtime configuration — with the cache (and therefore
  // prefetch) compiled off-path the counters cannot move, so their rows are
  // omitted rather than printed as misleading zeros.  Barrier-free
  // applications (TSP's lock-only phases) legitimately reclaim nothing.
  const tmk::DsmConfig dsm = dsm_cfg(kNodes);
  const bool cache_on = dsm.diff_cache_bytes_per_page > 0;
  const bool prefetch_on = dsm.prefetch_window() > 0;
  const bool update_on = dsm.update_enabled();
  const bool lock_push_on = dsm.lock_push_enabled();
  const bool ceiling_on = dsm.on_demand_gc_enabled();
  std::vector<std::string> extra_head{"Application", "GcRec OpenMP", "GcRec Tmk",
                                      "GcKB OpenMP", "GcKB Tmk"};
  if (cache_on) {
    extra_head.push_back("DCacheHit Tmk");
    extra_head.push_back("KB saved Tmk");
  }
  if (prefetch_on) {
    extra_head.push_back("PfBatched Tmk");
    extra_head.push_back("PfHit Tmk");
  }
  if (update_on) {
    extra_head.push_back("UpdPush Tmk");
    extra_head.push_back("UpdPg Tmk");
    extra_head.push_back("UpdHit Tmk");
    extra_head.push_back("UpdDemote Tmk");
  }
  if (lock_push_on) {
    extra_head.push_back("LkPush Tmk");
    extra_head.push_back("LkPg Tmk");
    extra_head.push_back("LkHit Tmk");
    extra_head.push_back("LkDemote Tmk");
  }
  // Ceiling-triggered exchanges and relay pruning move when either the
  // on-demand GC or the migratory push is on (the exchange floor is what
  // prunes retained relay chunks).
  if (ceiling_on || lock_push_on) {
    extra_head.push_back("GcXchg Tmk");
    extra_head.push_back("RelayPrune Tmk");
    extra_head.push_back("RelayKB Tmk");
  }
  // Lossy-wire channel columns, only when the wire can actually lose or the
  // protocol is armed (TMK_NET_* knobs): retransmitted copies, discarded
  // duplicates, out-of-order holds, and what acking the traffic cost.  With
  // the knobs at rest these are structurally zero and the rows stay clean.
  const bool chan_on = dsm.chaos_enabled() || dsm.net_reliable;
  if (chan_on) {
    extra_head.push_back("Retrans Tmk");
    extra_head.push_back("DupDrop Tmk");
    extra_head.push_back("ReoHold Tmk");
    extra_head.push_back("AckKB Tmk");
  }
  // Checkpoint/recovery columns, only when the knobs are armed (TMK_CKPT_EVERY
  // / TMK_NET_CRASH_NODE): durable epochs, staged vs incrementally-skipped
  // checkpoint traffic, and the rollback bill of any injected crash.  With
  // the knobs at rest the pass never runs and the default table stays
  // byte-identical to a pre-recovery build's.
  const bool ckpt_on = dsm.ckpt_enabled();
  const bool crash_on = dsm.crash_enabled();
  if (ckpt_on) {
    extra_head.push_back("CkptEp Tmk");
    extra_head.push_back("CkptKB Tmk");
    extra_head.push_back("CkptInc Tmk");
  }
  if (crash_on) {
    extra_head.push_back("Recov Tmk");
    extra_head.push_back("EpLost Tmk");
  }
  Table c(extra_head);
  auto add = [&](const char* name, const VersionedResults& r) {
    t.add_row({name, Table::fmt(r.omp.traffic.wire_mbytes()),
               Table::fmt(r.tmk.traffic.wire_mbytes()),
               Table::fmt(r.mpi.traffic.wire_mbytes()),
               Table::fmt(r.omp.traffic.messages), Table::fmt(r.tmk.traffic.messages),
               Table::fmt(r.mpi.traffic.messages)});
    std::vector<std::string> row{
        name, Table::fmt(r.omp.dsm.gc_records_reclaimed),
        Table::fmt(r.tmk.dsm.gc_records_reclaimed),
        Table::fmt(static_cast<double>(r.omp.dsm.gc_diff_bytes_reclaimed) / 1024.0, 1),
        Table::fmt(static_cast<double>(r.tmk.dsm.gc_diff_bytes_reclaimed) / 1024.0, 1)};
    if (cache_on) {
      row.push_back(Table::fmt(r.tmk.dsm.diff_cache_hits));
      row.push_back(
          Table::fmt(static_cast<double>(r.tmk.dsm.diff_cache_bytes_saved) / 1024.0, 1));
    }
    if (prefetch_on) {
      row.push_back(Table::fmt(r.tmk.dsm.prefetch_requests_batched));
      row.push_back(Table::fmt(r.tmk.dsm.prefetch_hits));
    }
    if (update_on) {
      row.push_back(Table::fmt(r.tmk.dsm.update_pushes_sent));
      row.push_back(Table::fmt(r.tmk.dsm.update_pages_pushed));
      row.push_back(Table::fmt(r.tmk.dsm.update_push_hits));
      row.push_back(Table::fmt(r.tmk.dsm.update_demotions));
    }
    if (lock_push_on) {
      row.push_back(Table::fmt(r.tmk.dsm.lock_pushes_sent));
      row.push_back(Table::fmt(r.tmk.dsm.lock_pages_pushed));
      row.push_back(Table::fmt(r.tmk.dsm.lock_push_hits));
      row.push_back(Table::fmt(r.tmk.dsm.lock_push_demotions));
    }
    if (ceiling_on || lock_push_on) {
      row.push_back(Table::fmt(r.tmk.dsm.gc_exchanges));
      row.push_back(Table::fmt(r.tmk.dsm.relay_chunks_pruned));
      row.push_back(Table::fmt(
          static_cast<double>(r.tmk.dsm.relay_bytes_pruned) / 1024.0, 1));
    }
    if (chan_on) {
      row.push_back(Table::fmt(r.tmk.traffic.chan.retransmits));
      row.push_back(Table::fmt(r.tmk.traffic.chan.dup_drops));
      row.push_back(Table::fmt(r.tmk.traffic.chan.reorder_holds));
      row.push_back(Table::fmt(
          static_cast<double>(r.tmk.traffic.chan.ack_wire_bytes) / 1024.0, 1));
    }
    if (ckpt_on) {
      row.push_back(Table::fmt(r.tmk.dsm.ckpt_epochs));
      row.push_back(Table::fmt(
          static_cast<double>(r.tmk.dsm.ckpt_bytes_written) / 1024.0, 1));
      row.push_back(Table::fmt(r.tmk.dsm.ckpt_pages_incremental));
    }
    if (crash_on) {
      row.push_back(Table::fmt(r.tmk.dsm.recoveries));
      row.push_back(Table::fmt(r.tmk.dsm.rollback_epochs_lost));
    }
    c.add_row(std::move(row));
  };

  // Adaptive update protocol, invalidate (pull) vs update (push) on the Tmk
  // versions: the regular applications (Sweep3D, 3D-FFT, Water) re-read the
  // same pages from the same writers every epoch, exactly the sharing the
  // copyset promotes; the irregular ones (TSP, QSORT) must not regress —
  // copysets never stabilize there and transient promotions demote via the
  // armed probes.  Pull and push always run the *same* inputs; the epoch-
  // bound applications (3D-FFT's 2 iterations, Water's 3 steps) are extended
  // so the run is longer than the adaptation window — promotion takes
  // update_promote_epochs of observation plus one epoch of lag, which at
  // Table 2's tiny defaults lands after the final read.
  Table u({"Application", "Faults pull", "Faults push", "Msg pull", "Msg push",
           "Pushes", "PushHits", "Demotions"});
  auto add_update = [&](const char* name, const auto& params,
                        const VersionedResults* r) {
    tmk::DsmConfig pushcfg = dsm_cfg(kNodes);
    pushcfg.update_mode = true;
    const apps::AppResult pl =
        r != nullptr ? r->tmk : run_tmk(params, dsm_cfg(kNodes));
    const apps::AppResult pu = run_tmk(params, pushcfg);
    u.add_row({name, Table::fmt(pl.dsm.read_faults),
               Table::fmt(pu.dsm.read_faults), Table::fmt(pl.traffic.messages),
               Table::fmt(pu.traffic.messages),
               Table::fmt(pu.dsm.update_pushes_sent),
               Table::fmt(pu.dsm.update_push_hits),
               Table::fmt(pu.dsm.update_demotions)});
  };

  // Migratory lock push, pull vs push on the lock-synchronized Tmk
  // versions: TSP's branch-and-bound bound and Water's force-merge lock are
  // the paper's canonical migratory data.  The barrier applications ride
  // along as controls — their lock traffic is negligible, so lock push must
  // leave them unchanged within run-to-run noise.
  Table l({"Application", "Faults pull", "Faults push", "Msg pull", "Msg push",
           "LkPushes", "LkHits", "LkDemotions"});
  auto add_lock_push = [&](const char* name, const auto& params,
                           const VersionedResults* r) {
    tmk::DsmConfig pushcfg = dsm_cfg(kNodes);
    pushcfg.lock_push_bytes = 16 * 1024;
    const apps::AppResult pl =
        r != nullptr ? r->tmk : run_tmk(params, dsm_cfg(kNodes));
    const apps::AppResult pu = run_tmk(params, pushcfg);
    l.add_row({name, Table::fmt(pl.dsm.read_faults),
               Table::fmt(pu.dsm.read_faults), Table::fmt(pl.traffic.messages),
               Table::fmt(pu.traffic.messages),
               Table::fmt(pu.dsm.lock_pushes_sent),
               Table::fmt(pu.dsm.lock_push_hits),
               Table::fmt(pu.dsm.lock_push_demotions)});
  };

  {
    const auto r = run_all(w.sweep, kNodes);
    add("Sweep3D", r);
    add_update("Sweep3D", w.sweep, &r);
    add_lock_push("Sweep3D", w.sweep, &r);
  }
  {
    const auto r = run_all(w.fft, kNodes);
    add("3D-FFT", r);
    auto fft_long = w.fft;
    fft_long.iters = 6;
    add_update("3D-FFT x6", fft_long, nullptr);
  }
  {
    const auto r = run_all(w.water, kNodes);
    add("Water", r);
    auto water_long = w.water;
    water_long.steps = 8;
    add_update("Water x8", water_long, nullptr);
    add_lock_push("Water", w.water, &r);
  }
  {
    const auto r = run_all(w.tsp, kNodes);
    add("TSP", r);
    add_update("TSP", w.tsp, &r);
    add_lock_push("TSP", w.tsp, &r);
  }
  {
    const auto r = run_all(w.qs, kNodes);
    add("QSORT", r);
    add_update("QSORT", w.qs, &r);
  }

  t.print(std::cout);
  std::cout << "\n(expected shape: OpenMP ~ Tmk; DSM versions send more"
               "\n messages than MPI for the regular applications)\n";
  std::cout << "\n== barrier-time GC + diff cache + multi-page prefetch"
            << (update_on ? " + update protocol" : "") << " ==\n";
  c.print(std::cout);
  std::cout << "\n== adaptive update protocol: Tmk invalidate (pull) vs"
               " update (push) ==\n";
  u.print(std::cout);
  std::cout << "(pull = the default invalidate protocol"
            << (update_on ? " — update mode is also on in the default config"
                : "")
            << "; push promotes pages whose\n copyset is stable for "
            << dsm.update_promote_epochs
            << " epochs and pushes their diffs at the barrier.  TSP and"
               "\n QSORT never promote — zero pushes — so their pull/push"
               " deltas are the branch-and-\n bound / lock-race run-to-run"
               " noise, not protocol cost)\n";
  std::cout << "\n== migratory lock push: Tmk invalidate (pull) vs lock-grant"
               " push (TMK_LOCK_PUSH_BYTES=16384) ==\n";
  l.print(std::cout);
  std::cout << "(the releaser piggybacks the diffs of its critical section's"
               " hot pages on the\n kLockGrant it forwards; TSP's bound and"
               " Water's force merge are the migratory\n targets, Sweep3D is"
               " the barrier-app control and must not move beyond noise)\n";
  return 0;
}
