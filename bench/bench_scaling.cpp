// Extension: speedup vs node count (the paper reports only 8-processor
// bars; the scaling curves make the pipeline fill/drain and communication
// crossover behaviour visible).
//
// `--json` switches to the sync-fabric scaling sweep instead: a pure
// barrier workload at 8/64/128/256 nodes under the centralized barrier and
// the combining tree, emitting per-barrier fabric message counts per node
// and the critical-path hop count.  These are virtual-network counts —
// deterministic functions of the topology — so bench/check_trajectory.py
// gates them tightly against bench/baselines/sync_scaling.json, including
// the growth exponent: the tree's per-node load must stay O(log N) while
// the centralized root's grows O(N).
#include <algorithm>
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "tmk/topology.h"

namespace {

using namespace now;

struct SyncPoint {
  std::uint32_t nodes = 0;
  double per_node_avg = 0;   // (sent+recv)/barriers averaged over nodes
  std::uint64_t per_node_max = 0;  // same, at the busiest node
  std::uint32_t hops = 0;    // critical path: leaf->root->leaf edges
  double virtual_ms = 0;
};

// A barrier-only workload: each node writes one word of its private page per
// epoch (so interval records flow and GC floors matter) and meets at the
// barrier.  Nothing cross-reads, so every fabric message is barrier traffic.
SyncPoint measure(std::uint32_t nodes, std::uint32_t arity,
                  std::uint32_t barriers) {
  tmk::DsmConfig c;
  c.num_nodes = nodes;
  // Small heap: the arena reserves num_nodes * heap_bytes of address space,
  // and 256 nodes x the default 96MB would map 24GB.
  c.heap_bytes = 2 << 20;
  c.barrier_tree_arity = arity;
  c.time.cpu_scale = 0.0;
  tmk::DsmRuntime rt(c);
  rt.run_spmd([&](tmk::Tmk& tmk) {
    tmk::gptr<std::uint64_t> data(tmk::kPageSize);
    const std::uint32_t id = tmk.id();
    for (std::uint32_t b = 0; b < barriers; ++b) {
      data[id * (tmk::kPageSize / sizeof(std::uint64_t))] = b + 1;
      tmk.barrier();
    }
  });
  SyncPoint p;
  p.nodes = nodes;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const auto s = rt.node(i).stats().snapshot();
    const std::uint64_t per = (s.barrier_msgs_sent + s.barrier_msgs_recv) / barriers;
    total += per;
    p.per_node_max = std::max(p.per_node_max, per);
  }
  p.per_node_avg = static_cast<double>(total) / nodes;
  p.hops = rt.topology().critical_path_hops();
  p.virtual_ms = rt.virtual_time_us() / 1000.0;
  return p;
}

int sync_scaling_json() {
  constexpr std::uint32_t kBarriers = 12;
  const std::uint32_t node_counts[] = {8, 64, 128, 256};
  struct Fabric {
    const char* name;
    std::uint32_t arity;
  };
  const Fabric fabrics[] = {{"centralized", 0}, {"tree2", 2}};

  std::printf("{\n  \"sync_scaling\": {\n    \"barriers\": %u,\n"
              "    \"fabrics\": {\n", kBarriers);
  bool first_fabric = true;
  for (const Fabric& f : fabrics) {
    if (!first_fabric) std::printf(",\n");
    first_fabric = false;
    std::printf("      \"%s\": {\"arity\": %u, \"points\": [\n", f.name, f.arity);
    bool first_point = true;
    for (std::uint32_t n : node_counts) {
      const SyncPoint p = measure(n, f.arity, kBarriers);
      if (!first_point) std::printf(",\n");
      first_point = false;
      std::printf("        {\"nodes\": %u, \"per_node_max\": %llu, "
                  "\"per_node_avg\": %.2f, \"hops\": %u, \"virtual_ms\": %.2f}",
                  p.nodes, static_cast<unsigned long long>(p.per_node_max),
                  p.per_node_avg, p.hops, p.virtual_ms);
      std::fflush(stdout);
    }
    std::printf("\n      ]}");
  }
  std::printf("\n    }\n  }\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace now;
  using namespace now::bench;
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--json")) return sync_scaling_json();

  const int scale = scale_from_args(argc, argv);
  const Workloads w = Workloads::standard(scale);

  std::cout << "== Scaling: speedup vs workstations (OpenMP / Tmk / MPI) ==\n";

  Table t({"Application", "nodes", "OpenMP", "Tmk", "MPI"});
  auto sweep_app = [&](const char* name, auto params) {
    const auto seq = run_seq(params, sim::TimeModel{});
    for (std::uint32_t n : {2u, 4u, 8u}) {
      const auto omp_r = run_omp(params, dsm_cfg(n));
      const auto tmk_r = run_tmk(params, dsm_cfg(n));
      const auto mpi_r = run_mpi(params, mpi_cfg(n));
      t.add_row({name, Table::fmt(static_cast<std::uint64_t>(n)),
                 Table::fmt(speedup(seq, omp_r)), Table::fmt(speedup(seq, tmk_r)),
                 Table::fmt(speedup(seq, mpi_r))});
    }
  };

  sweep_app("Water", w.water);
  sweep_app("3D-FFT", w.fft);
  sweep_app("Sweep3D", w.sweep);

  t.print(std::cout);
  return 0;
}
