// Extension: speedup vs node count (the paper reports only 8-processor
// bars; the scaling curves make the pipeline fill/drain and communication
// crossover behaviour visible).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace now;
  using namespace now::bench;
  const int scale = scale_from_args(argc, argv);
  const Workloads w = Workloads::standard(scale);

  std::cout << "== Scaling: speedup vs workstations (OpenMP / Tmk / MPI) ==\n";

  Table t({"Application", "nodes", "OpenMP", "Tmk", "MPI"});
  auto sweep_app = [&](const char* name, auto params) {
    const auto seq = run_seq(params, sim::TimeModel{});
    for (std::uint32_t n : {2u, 4u, 8u}) {
      const auto omp_r = run_omp(params, dsm_cfg(n));
      const auto tmk_r = run_tmk(params, dsm_cfg(n));
      const auto mpi_r = run_mpi(params, mpi_cfg(n));
      t.add_row({name, Table::fmt(static_cast<std::uint64_t>(n)),
                 Table::fmt(speedup(seq, omp_r)), Table::fmt(speedup(seq, tmk_r)),
                 Table::fmt(speedup(seq, mpi_r))});
    }
  };

  sweep_app("Water", w.water);
  sweep_app("3D-FFT", w.fft);
  sweep_app("Sweep3D", w.sweep);

  t.print(std::cout);
  return 0;
}
