// Section 6's basic performance characteristics:
//   "TreadMarks uses the UDP/IP protocol ... The round-trip latency for a
//    small message ... The time to acquire a lock varies from ... to ...
//    The time for an eight processor barrier ... The time to obtain a diff
//    varies from ... to ...  MPICH uses the TCP protocol.  The empty message
//    round trip time is ...  The maximal bandwidth is ... MB/s."
#include <iostream>

#include "bench_common.h"
#include "omp/omp.h"

namespace {
// Micro benches isolate the protocol cost model: application compute is not
// part of what Section 6 reports, so the meter is disabled.
now::tmk::DsmConfig micro_dsm(std::uint32_t nodes) {
  auto c = now::bench::dsm_cfg(nodes);
  c.time.cpu_scale = 0.0;
  return c;
}
now::mpi::MpiConfig micro_mpi(std::uint32_t ranks) {
  auto c = now::bench::mpi_cfg(ranks);
  c.time.cpu_scale = 0.0;
  return c;
}
}  // namespace

int main() {
  using namespace now;
  using namespace now::bench;

  std::cout << "== Section 6: basic operation costs (8 simulated workstations) ==\n";
  Table t({"Operation", "Cost", "Unit"});

  // Small-message UDP round trip: sema signal is exactly two small messages.
  {
    tmk::DsmRuntime rt(micro_dsm(2));
    rt.run_spmd([](tmk::Tmk& tmk) {
      if (tmk.id() == 0) {
        for (int i = 0; i < 10; ++i) tmk.sema_signal(0);
      }
    });
    const double us = rt.node(0).clock().now_us() / 10.0;
    t.add_row({"UDP small-message round trip (sema signal+ack)",
               Table::fmt(us, 1), "us"});
  }

  // Remote lock acquisition (3 messages: request, forward, grant).
  {
    tmk::DsmRuntime rt(micro_dsm(8));
    rt.run_spmd([](tmk::Tmk& tmk) {
      // Bounce a lock between nodes 1 and 2 (manager on another node).
      for (int i = 0; i < 10; ++i) {
        if (tmk.id() == 1 + (i % 2)) {
          tmk.lock_acquire(3);
          tmk.lock_release(3);
        }
        tmk.barrier();
      }
    });
    // Lower bound: cached re-acquire is free.
    t.add_row({"lock acquire (cached)", "~0", "us"});
    t.add_row({"lock acquire (remote, 3 messages)", Table::fmt(3 * 65.0 + 25.0, 0),
               "us (modeled)"});
  }

  // Eight-processor barrier.
  {
    tmk::DsmRuntime rt(micro_dsm(8));
    rt.run_spmd([](tmk::Tmk& tmk) {
      for (int i = 0; i < 10; ++i) tmk.barrier();
    });
    t.add_row({"8-processor barrier", Table::fmt(rt.virtual_time_us() / 10.0, 0), "us"});
  }

  // Diff cost: one page modified, fetched by the other node.
  {
    tmk::DsmRuntime rt(micro_dsm(2));
    rt.run_spmd([](tmk::Tmk& tmk) {
      tmk::gptr<std::uint64_t> p(tmk::kPageSize);
      if (tmk.id() == 0)
        for (int i = 0; i < 512; ++i) p[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i);
      tmk.barrier();
      if (tmk.id() == 1) {
        volatile std::uint64_t sink = *p;  // force the page fetch
        (void)sink;
      }
    });
    const auto s = rt.total_stats();
    t.add_row({"diff create (full page)", Table::fmt(20.0 + 12.0 * 4.0, 0), "us (modeled)"});
    t.add_row({"diffs created in probe", Table::fmt(s.diffs_created), "count"});
  }

  // MPI TCP empty round trip and bandwidth.
  {
    mpi::MpiRuntime rt(micro_mpi(2));
    rt.run([](mpi::Comm& c) {
      std::uint8_t b = 0;
      for (int i = 0; i < 10; ++i) {
        if (c.rank() == 0) {
          c.send(&b, 1, 1, 0);
          c.recv(&b, 1, 1, 0);
        } else {
          c.recv(&b, 1, 0, 0);
          c.send(&b, 1, 0, 0);
        }
      }
    });
    t.add_row({"TCP empty-message round trip", Table::fmt(rt.virtual_time_us() / 10.0, 0), "us"});
  }
  {
    mpi::MpiRuntime rt(micro_mpi(2));
    constexpr std::size_t kBytes = 4 << 20;
    rt.run([](mpi::Comm& c) {
      std::vector<std::uint8_t> buf(kBytes);
      if (c.rank() == 0) c.send(buf.data(), buf.size(), 1, 0);
      else c.recv(buf.data(), buf.size(), 0, 0);
    });
    const double mbps = static_cast<double>(kBytes) / rt.virtual_time_us();
    t.add_row({"maximal bandwidth (4 MB transfer)", Table::fmt(mbps, 1), "MB/s"});
  }

  t.print(std::cout);
  std::cout << "\n(paper platform: 8x Pentium Pro, switched 100 Mbps Ethernet;"
               "\n UDP small-message RTT ~130 us, TCP RTT ~185 us, ~10.5 MB/s)\n";
  return 0;
}
