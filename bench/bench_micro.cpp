// Section 6's basic performance characteristics:
//   "TreadMarks uses the UDP/IP protocol ... The round-trip latency for a
//    small message ... The time to acquire a lock varies from ... to ...
//    The time for an eight processor barrier ... The time to obtain a diff
//    varies from ... to ...  MPICH uses the TCP protocol.  The empty message
//    round trip time is ...  The maximal bandwidth is ... MB/s."
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "common/rng.h"
#include "omp/omp.h"
#include "tmk/diff.h"

namespace {
// Micro benches isolate the protocol cost model: application compute is not
// part of what Section 6 reports, so the meter is disabled.
now::tmk::DsmConfig micro_dsm(std::uint32_t nodes) {
  auto c = now::bench::dsm_cfg(nodes);
  c.time.cpu_scale = 0.0;
  return c;
}
now::mpi::MpiConfig micro_mpi(std::uint32_t ranks) {
  auto c = now::bench::mpi_cfg(ranks);
  c.time.cpu_scale = 0.0;
  return c;
}

// ---------------------------------------------------------------------------
// Host-side diff-engine throughput: the twin/page scan is the hottest real
// loop under the simulator, so its trajectory is tracked here (and emitted as
// JSON with --json for machines to diff across PRs).
// ---------------------------------------------------------------------------

struct DiffCase {
  const char* name;
  std::vector<std::uint8_t> twin, cur;
};

std::vector<DiffCase> diff_cases() {
  using now::tmk::kPageSize;
  now::Rng rng(42);
  std::vector<std::uint8_t> base(kPageSize);
  for (auto& b : base) b = static_cast<std::uint8_t>(rng.next_u64());

  DiffCase sparse{"sparse-dirty", base, base};  // 16 scattered 4-byte stores
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t k = 0; k < 4; ++k) sparse.cur[i * 256 + 32 + k] ^= 0x5a;

  DiffCase dense{"dense-dirty", base, base};  // half the page rewritten
  for (std::size_t i = 1024; i < 1024 + 2048; ++i) dense.cur[i] ^= 0xa5;

  DiffCase clean{"clean-page", base, base};

  return {sparse, dense, clean};
}

using DiffFn = now::tmk::DiffBytes (*)(const std::uint8_t*, const std::uint8_t*,
                                       std::size_t, std::size_t);

// Scan throughput in MB of page scanned per second.  Best-of-N repetitions:
// the minimum time is the one least polluted by scheduler noise, which
// matters on shared/loaded hosts where a single long timing window can be
// preempted mid-measurement.
double diff_throughput_mbps(DiffFn fn, const DiffCase& c) {
  using now::tmk::kPageSize;
  constexpr int kWarmup = 500, kReps = 5, kItersPerRep = 2500;
  std::size_t sink = 0;
  for (int i = 0; i < kWarmup; ++i)
    sink += fn(c.twin.data(), c.cur.data(), kPageSize, 8).size();
  double best_secs = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kItersPerRep; ++i)
      sink += fn(c.twin.data(), c.cur.data(), kPageSize, 8).size();
    const auto t1 = std::chrono::steady_clock::now();
    best_secs = std::min(best_secs, std::chrono::duration<double>(t1 - t0).count());
  }
  // Keep the result observable so the loop cannot be optimized away.
  if (sink == static_cast<std::size_t>(-1)) std::abort();
  return static_cast<double>(kItersPerRep) * kPageSize / (1024.0 * 1024.0) / best_secs;
}

struct DiffThroughput {
  std::string name;
  double scalar_mbps, fast_mbps;
  double speedup() const { return fast_mbps / scalar_mbps; }
};

std::vector<DiffThroughput> measure_diff_throughput() {
  std::vector<DiffThroughput> out;
  for (const DiffCase& c : diff_cases()) {
    DiffThroughput r;
    r.name = c.name;
    r.scalar_mbps = diff_throughput_mbps(&now::tmk::diff_create_scalar, c);
    r.fast_mbps = diff_throughput_mbps(&now::tmk::diff_create, c);
    out.push_back(r);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Strided-sweep fetch amortization: the Sweep3D/FFT-transpose access shape —
// one node dirties a plane of pages, a neighbor then walks them in page
// order.  Message count, not bandwidth, dominates NOW performance (Table 2),
// so the multi-page prefetch window's job is to cut kDiffRequests.
// ---------------------------------------------------------------------------

struct SweepResult {
  std::uint64_t diff_requests = 0;
  std::uint64_t prefetch_hits = 0;
  double virtual_us = 0;
};

// ---------------------------------------------------------------------------
// Producer-consumer push vs pull: the epoch-stable sharing shape the adaptive
// update protocol targets — one node rewrites the same pages every epoch, a
// neighbor reads them every epoch.  Under the invalidate protocol every epoch
// re-pays the post-barrier faults and round trips; with update mode on the
// writer's barrier-time push makes the pages come out of the barrier valid.
// ---------------------------------------------------------------------------

struct PushPullResult {
  std::uint64_t read_faults = 0;
  std::uint64_t diff_requests = 0;
  std::uint64_t messages = 0;
  std::uint64_t pushes = 0;
  std::uint64_t push_hits = 0;
  double virtual_us = 0;
};

PushPullResult producer_consumer(bool update_on, std::size_t pages,
                                 std::size_t epochs) {
  auto c = micro_dsm(2);
  c.update_mode = update_on;
  const std::size_t words_per_page = now::tmk::kPageSize / sizeof(std::uint64_t);
  now::tmk::DsmRuntime rt(c);
  rt.run_spmd([pages, epochs, words_per_page](now::tmk::Tmk& tmk) {
    now::tmk::gptr<std::uint64_t> base(now::tmk::kPageSize);
    volatile std::uint64_t sink = 0;
    for (std::size_t e = 0; e < epochs; ++e) {
      if (tmk.id() == 0)
        for (std::size_t pg = 0; pg < pages; ++pg)
          for (std::size_t k = 0; k < 32; ++k)
            base[pg * words_per_page + k] = e * 1000000 + pg * 100 + k;
      tmk.barrier();
      if (tmk.id() == 1)
        for (std::size_t pg = 0; pg < pages; ++pg)
          sink += base[pg * words_per_page + (e % 32)];
      tmk.barrier();
    }
    (void)sink;
  });
  const auto s = rt.total_stats();
  PushPullResult r;
  r.read_faults = s.read_faults;
  r.diff_requests = rt.traffic().messages_by_type[now::tmk::kDiffRequest];
  r.messages = rt.traffic().messages;
  r.pushes = s.update_pushes_sent;
  r.push_hits = s.update_push_hits;
  r.virtual_us = rt.virtual_time_us();
  return r;
}

// ---------------------------------------------------------------------------
// Migratory lock chain push vs pull: N nodes round-robin a bound update (the
// TSP branch-and-bound shape — acquire, read + improve the bound, release)
// with no barriers in the loop, so the grant chain is the only consistency
// carrier.  Under pull every handoff pays the trap and a kDiffRequest round
// trip per protected page; with lock_push_bytes set the grant piggybacks the
// chain's accumulated diffs and the next holder's acquire validates the
// pages up front.
// ---------------------------------------------------------------------------

struct LockMigResult {
  std::uint64_t read_faults = 0;
  std::uint64_t diff_requests = 0;
  std::uint64_t messages = 0;
  std::uint64_t grants = 0;
  std::uint64_t pushes = 0;
  std::uint64_t push_hits = 0;
  double virtual_us = 0;
};

LockMigResult lock_migration(bool push_on, std::uint32_t nodes,
                             std::size_t rounds) {
  auto c = micro_dsm(nodes);
  c.lock_push_bytes = push_on ? 16 * 1024 : 0;
  const std::size_t wpp = now::tmk::kPageSize / sizeof(std::uint64_t);
  now::tmk::DsmRuntime rt(c);
  rt.run_spmd([rounds, wpp](now::tmk::Tmk& tmk) {
    now::tmk::gptr<std::uint64_t> bound(now::tmk::kPageSize);
    if (tmk.id() == 0) {
      tmk.lock_acquire(0);
      bound[0] = 1;
      bound[wpp] = 1;
      tmk.lock_release(0);
    }
    tmk.barrier();
    for (std::size_t r = 0; r < rounds; ++r) {
      tmk.lock_acquire(0);
      const std::uint64_t v = bound[0];
      bound[0] = v + 1;                     // the bound page
      bound[wpp + 1 + (v % 8)] = v * 100;   // a second protected state page
      tmk.lock_release(0);
      // Let the service thread process queued forwards so the lock actually
      // migrates instead of degenerating into cached re-acquires.
      std::this_thread::yield();
    }
    tmk.barrier();
  });
  const auto s = rt.total_stats();
  LockMigResult r;
  r.read_faults = s.read_faults;
  r.diff_requests = rt.traffic().messages_by_type[now::tmk::kDiffRequest];
  r.messages = rt.traffic().messages;
  r.grants = rt.traffic().messages_by_type[now::tmk::kLockGrant];
  r.pushes = s.lock_pushes_sent;
  r.push_hits = s.lock_push_hits;
  r.virtual_us = rt.virtual_time_us();
  return r;
}

SweepResult strided_sweep(std::size_t prefetch_pages, std::size_t pages) {
  auto c = micro_dsm(2);
  c.prefetch_pages = prefetch_pages;
  const std::size_t words_per_page = now::tmk::kPageSize / sizeof(std::uint64_t);
  now::tmk::DsmRuntime rt(c);
  rt.run_spmd([pages, words_per_page](now::tmk::Tmk& tmk) {
    now::tmk::gptr<std::uint64_t> base(now::tmk::kPageSize);
    if (tmk.id() == 0)
      for (std::size_t pg = 0; pg < pages; ++pg)
        for (std::size_t k = 0; k < 32; ++k)
          base[pg * words_per_page + k] = pg * 100 + k;
    tmk.barrier();
    if (tmk.id() == 1) {
      volatile std::uint64_t sink = 0;
      for (std::size_t pg = 0; pg < pages; ++pg)
        sink += base[pg * words_per_page + (pg % 32)];
      (void)sink;
    }
    tmk.barrier();
  });
  SweepResult r;
  r.diff_requests = rt.traffic().messages_by_type[now::tmk::kDiffRequest];
  r.prefetch_hits = rt.total_stats().prefetch_hits;
  r.virtual_us = rt.virtual_time_us();
  return r;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace now;
  using namespace now::bench;

  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--json")) json = true;

  if (json) {
    // Machine-readable trajectory record: host-side diff engine throughput,
    // plus the (deterministic, virtual-time) producer-consumer push-vs-pull
    // protocol win.
    const auto rows = measure_diff_throughput();
    std::cout << "{\n  \"diff_create_mbps\": {\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::cout << "    \"" << rows[i].name << "\": {\"scalar\": "
                << Table::fmt(rows[i].scalar_mbps, 1)
                << ", \"fast\": " << Table::fmt(rows[i].fast_mbps, 1)
                << ", \"speedup\": " << Table::fmt(rows[i].speedup(), 2) << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    const PushPullResult pull = producer_consumer(false, 16, 12);
    const PushPullResult push = producer_consumer(true, 16, 12);
    const auto ratio = [](std::uint64_t a, std::uint64_t b) {
      return b > 0 ? static_cast<double>(a) / static_cast<double>(b) : 0.0;
    };
    std::cout << "  },\n  \"update_push\": {\n"
              << "    \"pull\": {\"read_faults\": " << pull.read_faults
              << ", \"diff_requests\": " << pull.diff_requests
              << ", \"messages\": " << pull.messages << "},\n"
              << "    \"push\": {\"read_faults\": " << push.read_faults
              << ", \"diff_requests\": " << push.diff_requests
              << ", \"messages\": " << push.messages
              << ", \"pushes_sent\": " << push.pushes
              << ", \"push_hits\": " << push.push_hits << "},\n"
              << "    \"fault_reduction\": "
              << Table::fmt(ratio(pull.read_faults, push.read_faults), 2)
              << ",\n    \"message_reduction\": "
              << Table::fmt(ratio(pull.messages, push.messages), 2) << "\n"
              << "  },\n";
    // Migratory lock chain (4 nodes round-robin a bound update).  Handoff
    // counts vary a little with host scheduling, so the gated ratios are
    // normalized per kLockGrant before being compared.
    const LockMigResult lpull = lock_migration(false, 4, 24);
    const LockMigResult lpush = lock_migration(true, 4, 24);
    const auto per_grant = [](std::uint64_t v, std::uint64_t grants) {
      return grants > 0 ? static_cast<double>(v) / static_cast<double>(grants)
                        : 0.0;
    };
    const auto norm_ratio = [&](std::uint64_t a, std::uint64_t ag,
                                std::uint64_t b, std::uint64_t bg) {
      const double denom = per_grant(b, bg);
      return denom > 0 ? per_grant(a, ag) / denom : 0.0;
    };
    std::cout << "  \"lock_push\": {\n"
              << "    \"pull\": {\"read_faults\": " << lpull.read_faults
              << ", \"diff_requests\": " << lpull.diff_requests
              << ", \"messages\": " << lpull.messages
              << ", \"grants\": " << lpull.grants << "},\n"
              << "    \"push\": {\"read_faults\": " << lpush.read_faults
              << ", \"diff_requests\": " << lpush.diff_requests
              << ", \"messages\": " << lpush.messages
              << ", \"grants\": " << lpush.grants
              << ", \"pushes_sent\": " << lpush.pushes
              << ", \"push_hits\": " << lpush.push_hits << "},\n"
              << "    \"fault_reduction\": "
              << Table::fmt(norm_ratio(lpull.read_faults, lpull.grants,
                                       lpush.read_faults, lpush.grants), 2)
              << ",\n    \"message_reduction\": "
              << Table::fmt(norm_ratio(lpull.messages, lpull.grants,
                                       lpush.messages, lpush.grants), 2)
              << "\n  },\n  \"page_size\": " << tmk::kPageSize << "\n}\n";
    return 0;
  }

  std::cout << "== Section 6: basic operation costs (8 simulated workstations) ==\n";
  Table t({"Operation", "Cost", "Unit"});

  // Small-message UDP round trip: sema signal is exactly two small messages.
  {
    tmk::DsmRuntime rt(micro_dsm(2));
    rt.run_spmd([](tmk::Tmk& tmk) {
      if (tmk.id() == 0) {
        for (int i = 0; i < 10; ++i) tmk.sema_signal(0);
      }
    });
    const double us = rt.node(0).clock().now_us() / 10.0;
    t.add_row({"UDP small-message round trip (sema signal+ack)",
               Table::fmt(us, 1), "us"});
  }

  // Remote lock acquisition (3 messages: request, forward, grant).
  {
    tmk::DsmRuntime rt(micro_dsm(8));
    rt.run_spmd([](tmk::Tmk& tmk) {
      // Bounce a lock between nodes 1 and 2 (manager on another node).
      for (int i = 0; i < 10; ++i) {
        if (tmk.id() == 1 + (i % 2)) {
          tmk.lock_acquire(3);
          tmk.lock_release(3);
        }
        tmk.barrier();
      }
    });
    // Lower bound: cached re-acquire is free.
    t.add_row({"lock acquire (cached)", "~0", "us"});
    t.add_row({"lock acquire (remote, 3 messages)", Table::fmt(3 * 65.0 + 25.0, 0),
               "us (modeled)"});
  }

  // Eight-processor barrier.
  {
    tmk::DsmRuntime rt(micro_dsm(8));
    rt.run_spmd([](tmk::Tmk& tmk) {
      for (int i = 0; i < 10; ++i) tmk.barrier();
    });
    t.add_row({"8-processor barrier", Table::fmt(rt.virtual_time_us() / 10.0, 0), "us"});
  }

  // Diff cost: one page modified, fetched by the other node.
  {
    tmk::DsmRuntime rt(micro_dsm(2));
    rt.run_spmd([](tmk::Tmk& tmk) {
      tmk::gptr<std::uint64_t> p(tmk::kPageSize);
      if (tmk.id() == 0)
        for (int i = 0; i < 512; ++i) p[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i);
      tmk.barrier();
      if (tmk.id() == 1) {
        volatile std::uint64_t sink = *p;  // force the page fetch
        (void)sink;
      }
    });
    const auto s = rt.total_stats();
    t.add_row({"diff create (full page)", Table::fmt(20.0 + 12.0 * 4.0, 0), "us (modeled)"});
    t.add_row({"diffs created in probe", Table::fmt(s.diffs_created), "count"});
  }

  // MPI TCP empty round trip and bandwidth.
  {
    mpi::MpiRuntime rt(micro_mpi(2));
    rt.run([](mpi::Comm& c) {
      std::uint8_t b = 0;
      for (int i = 0; i < 10; ++i) {
        if (c.rank() == 0) {
          c.send(&b, 1, 1, 0);
          c.recv(&b, 1, 1, 0);
        } else {
          c.recv(&b, 1, 0, 0);
          c.send(&b, 1, 0, 0);
        }
      }
    });
    t.add_row({"TCP empty-message round trip", Table::fmt(rt.virtual_time_us() / 10.0, 0), "us"});
  }
  {
    mpi::MpiRuntime rt(micro_mpi(2));
    constexpr std::size_t kBytes = 4 << 20;
    rt.run([](mpi::Comm& c) {
      std::vector<std::uint8_t> buf(kBytes);
      if (c.rank() == 0) c.send(buf.data(), buf.size(), 1, 0);
      else c.recv(buf.data(), buf.size(), 0, 0);
    });
    const double mbps = static_cast<double>(kBytes) / rt.virtual_time_us();
    t.add_row({"maximal bandwidth (4 MB transfer)", Table::fmt(mbps, 1), "MB/s"});
  }

  t.print(std::cout);
  std::cout << "\n(paper platform: 8x Pentium Pro, switched 100 Mbps Ethernet;"
               "\n UDP small-message RTT ~130 us, TCP RTT ~185 us, ~10.5 MB/s)\n";

  std::cout << "\n== diff engine host throughput (4 KB page scan) ==\n";
  Table dt({"Case", "Scalar MB/s", "Word-at-a-time MB/s", "Speedup"});
  for (const auto& r : measure_diff_throughput())
    dt.add_row({r.name, Table::fmt(r.scalar_mbps, 0), Table::fmt(r.fast_mbps, 0),
                Table::fmt(r.speedup(), 2) + "x"});
  dt.print(std::cout);
  std::cout << "(--json emits these numbers machine-readably for trajectory"
               " tracking)\n";

  std::cout << "\n== multi-page prefetch: strided sweep over 64 pages"
               " (2 nodes) ==\n";
  Table pt({"prefetch_pages", "kDiffRequests", "Prefetch hits", "Virtual us",
            "Msg reduction"});
  constexpr std::size_t kSweepPages = 64;
  const SweepResult base_sweep = strided_sweep(0, kSweepPages);
  for (std::size_t window : {std::size_t{0}, std::size_t{4}, std::size_t{16}}) {
    const SweepResult r =
        window == 0 ? base_sweep : strided_sweep(window, kSweepPages);
    pt.add_row({Table::fmt(window), Table::fmt(r.diff_requests),
                Table::fmt(r.prefetch_hits), Table::fmt(r.virtual_us, 0),
                Table::fmt(static_cast<double>(base_sweep.diff_requests) /
                               static_cast<double>(r.diff_requests), 2) + "x"});
  }
  pt.print(std::cout);
  std::cout << "(a window of N serves the faulting page plus up to N"
               " neighbors per round trip)\n";

  std::cout << "\n== adaptive update protocol: producer-consumer over 16"
               " pages x 12 epochs (2 nodes) ==\n";
  Table ut({"Protocol", "Read faults", "kDiffRequests", "Messages",
            "Pushes", "Push hits", "Virtual us"});
  for (bool update_on : {false, true}) {
    const PushPullResult r = producer_consumer(update_on, 16, 12);
    ut.add_row({update_on ? "update (push)" : "invalidate (pull)",
                Table::fmt(r.read_faults), Table::fmt(r.diff_requests),
                Table::fmt(r.messages), Table::fmt(r.pushes),
                Table::fmt(r.push_hits), Table::fmt(r.virtual_us, 0)});
  }
  ut.print(std::cout);
  std::cout << "(epoch-stable readers are promoted after "
            << tmk::DsmConfig{}.update_promote_epochs
            << " stable epochs; pushed pages leave the barrier valid,"
               "\n skipping both the trap and the diff round trip)\n";

  std::cout << "\n== migratory lock push: 4 nodes round-robin a bound update"
               " (24 CS each, no barriers) ==\n";
  Table lt({"Protocol", "Handoffs", "Read faults", "kDiffRequests", "Messages",
            "Pushes", "Push hits", "Virtual us"});
  for (bool push_on : {false, true}) {
    const LockMigResult r = lock_migration(push_on, 4, 24);
    lt.add_row({push_on ? "lock push (grant chain)" : "invalidate (pull)",
                Table::fmt(r.grants), Table::fmt(r.read_faults),
                Table::fmt(r.diff_requests), Table::fmt(r.messages),
                Table::fmt(r.pushes), Table::fmt(r.push_hits),
                Table::fmt(r.virtual_us, 0)});
  }
  lt.print(std::cout);
  std::cout << "(the grant piggybacks the chain's accumulated diffs for the"
               " lock's protected pages,\n so the next holder's acquire"
               " validates them before the critical section runs)\n";
  return 0;
}
