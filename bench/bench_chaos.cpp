// Lossy-wire overhead curve: one deterministic barrier workload, run over
// wires of increasing hostility, measuring what the retransmission channel
// costs and proving it changes no bytes.
//
// Legs:
//   off      — channel disabled (the pre-chaos perfect wire).  Messages,
//              payload and wire bytes must match bench/baselines/
//              chaos_overhead.json *exactly*: with every knob off this PR
//              must not move a single byte on the wire.
//   reliable — sequencing + acks on a clean wire: the protocol's zero-loss
//              overhead (piggybacked acks are free; only idle-link
//              standalone acks cost anything).
//   drop1    — 1% of transmissions vanish: retransmit copies + acks.
//   all      — drop 1% + dup 0.5% + reorder 1% + 200us jitter at once.
//
// Every leg must produce the same checksum — exactly-once delivery restores
// byte identity no matter the wire.  check_trajectory.py gates the off-leg
// identity and the drop-leg overhead ratio against the baselines file.
#include <cstdio>
#include <cstring>
#include <vector>

#include "tmk/tmk.h"

namespace {

using namespace now;

constexpr std::uint32_t kNodes = 8;
constexpr std::size_t kPages = 24;
constexpr std::size_t kWordsPerPage = tmk::kPageSize / sizeof(std::uint64_t);
constexpr std::size_t kWords = kPages * kWordsPerPage;
constexpr std::size_t kEpochs = 6;
constexpr std::size_t kReads = 96;
constexpr std::uint64_t kSeed = 20260808;

std::uint64_t mix(std::uint64_t stream, std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = kSeed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                    (a * 0xbf58476d1ce4e5b9ULL) ^ (b * 0x94d049bb133111ebULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint32_t owner_of(std::size_t e, std::size_t w) {
  return static_cast<std::uint32_t>(mix(1, e, w) % kNodes);
}
bool writes(std::size_t e, std::size_t w) { return mix(2, e, w) % 2 == 0; }
std::uint64_t value_of(std::size_t e, std::size_t w) { return mix(3, e, w) | 1; }

struct Leg {
  const char* name;
  bool reliable;
  sim::FaultConfig fault;
};

struct LegResult {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t checksum = 0;
  sim::ChannelSnapshot chan;
};

// The exact workload /tmp-probed for the pre-PR baseline: racy-free writes
// partitioned by owner, random reads, a barrier per epoch.  Fully
// deterministic — any checksum difference between legs is a protocol bug.
LegResult run(const Leg& leg) {
  tmk::DsmConfig c;
  c.num_nodes = kNodes;
  c.heap_bytes = 4 << 20;
  c.time.cpu_scale = 0.0;
  c.prefetch_pages = 4;
  c.gc_at_barriers = true;
  c.gc_fork_join = true;
  c.gc_lock_floors = true;
  c.lock_push_bytes = 0;
  c.update_mode = false;
  c.diff_cache_bytes_per_page = 16 * 1024;
  c.barrier_tree_arity = 0;
  c.shard_managers = false;
  c.meta_ceiling_bytes = 0;
  // Explicit assignment overrides any TMK_NET_* env defaults: each leg
  // measures exactly the wire it names.
  c.net_fault = leg.fault;
  c.net_reliable = leg.reliable;

  LegResult r;
  tmk::DsmRuntime rt(c);
  rt.run_spmd([&](tmk::Tmk& t) {
    tmk::gptr<std::uint64_t> data(tmk::kPageSize);
    const std::uint32_t id = t.id();
    std::uint64_t sink = 0;
    for (std::size_t e = 0; e < kEpochs; ++e) {
      for (std::size_t w = 0; w < kWords; ++w)
        if (owner_of(e, w) == id && writes(e, w)) data[w] = value_of(e, w);
      for (std::size_t i = 0; i < kReads; ++i)
        sink += data[mix(4, e, id * 1000 + i) % kWords];
      t.barrier();
    }
    if (sink == static_cast<std::uint64_t>(-1)) std::abort();
    if (id == 0) {
      std::uint64_t sum = 0;
      for (std::size_t w = 0; w < kWords; ++w)
        sum = sum * 1099511628211ULL + data[w];
      r.checksum = sum;
    }
  });

  const auto tr = rt.traffic();
  r.messages = tr.messages;
  r.payload_bytes = tr.payload_bytes;
  r.wire_bytes = tr.wire_bytes;
  r.chan = tr.chan;
  return r;
}

std::vector<Leg> legs() {
  sim::FaultConfig none;  // explicit all-off (ignores env defaults)
  none.drop_ppm = none.dup_ppm = none.reorder_ppm = 0;
  none.jitter_ns = 0;
  sim::FaultConfig drop1 = none;
  drop1.drop_ppm = 10000;
  drop1.seed = kSeed;
  sim::FaultConfig all = drop1;
  all.dup_ppm = 5000;
  all.reorder_ppm = 10000;
  all.jitter_ns = 200000;
  return {{"off", false, none},
          {"reliable", true, none},
          {"drop1", false, drop1},
          {"all", false, all}};
}

int chaos_json() {
  std::printf("{\n  \"chaos_overhead\": {\n"
              "    \"nodes\": %u,\n    \"epochs\": %zu,\n    \"legs\": {\n",
              kNodes, kEpochs);
  bool first = true;
  for (const Leg& leg : legs()) {
    const LegResult r = run(leg);
    std::printf("%s      \"%s\": {\"messages\": %llu, \"payload_bytes\": %llu, "
                "\"wire_bytes\": %llu, \"checksum\": %llu,\n"
                "        \"retransmits\": %llu, \"dup_drops\": %llu, "
                "\"reorder_holds\": %llu, \"acks_sent\": %llu, "
                "\"ack_wire_bytes\": %llu}",
                first ? "" : ",\n", leg.name,
                (unsigned long long)r.messages,
                (unsigned long long)r.payload_bytes,
                (unsigned long long)r.wire_bytes,
                (unsigned long long)r.checksum,
                (unsigned long long)r.chan.retransmits,
                (unsigned long long)r.chan.dup_drops,
                (unsigned long long)r.chan.reorder_holds,
                (unsigned long long)r.chan.acks_sent,
                (unsigned long long)r.chan.ack_wire_bytes);
    first = false;
  }
  std::printf("\n    }\n  }\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--json")) return chaos_json();

  std::printf("== Lossy wire: retransmission overhead, %u nodes x %zu epochs ==\n",
              kNodes, kEpochs);
  std::printf("%-10s %9s %11s %11s %8s %8s %7s %6s  %s\n", "leg", "messages",
              "payload", "wire", "retrans", "dupdrop", "reohold", "acks",
              "checksum");
  std::uint64_t off_wire = 0;
  for (const Leg& leg : legs()) {
    const LegResult r = run(leg);
    if (!std::strcmp(leg.name, "off")) off_wire = r.wire_bytes;
    std::printf("%-10s %9llu %11llu %11llu %8llu %8llu %7llu %6llu  %llu",
                leg.name, (unsigned long long)r.messages,
                (unsigned long long)r.payload_bytes,
                (unsigned long long)r.wire_bytes,
                (unsigned long long)r.chan.retransmits,
                (unsigned long long)r.chan.dup_drops,
                (unsigned long long)r.chan.reorder_holds,
                (unsigned long long)r.chan.acks_sent,
                (unsigned long long)r.checksum);
    if (off_wire != 0)
      std::printf("  (%.3fx wire)", (double)r.wire_bytes / (double)off_wire);
    std::printf("\n");
  }
  return 0;
}
