// Run-forever soak curve: the per-node consistency-metadata footprint of a
// barrier-free migratory lock loop, sampled along the run, with the
// on-demand GC ceiling on vs off.  With the ceiling on the curve must
// plateau near the ceiling; off, it grows linearly with critical sections —
// the leak the ceiling exists to cap.  The footprints are deterministic
// virtual-machine byte counts (not wall-clock), so check_trajectory.py
// gates the plateau absolutely against bench/baselines/soak_footprint.json.
//
// `--json` emits the machine-readable curve for the CI gate; the default
// output is a human-readable table of the same numbers.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "tmk/tmk.h"

namespace {

using namespace now;

constexpr std::uint32_t kNodes = 4;
constexpr std::size_t kIters = 512;      // per node: 2048 critical sections
constexpr std::size_t kSampleEvery = 64; // 8 points along the run
constexpr std::size_t kCeiling = 16 * 1024;
constexpr std::size_t kWpp = tmk::kPageSize / sizeof(std::uint64_t);

struct SoakCurve {
  // max over nodes of the node's own footprint at each sample boundary
  std::vector<std::size_t> max_node_bytes;
  std::uint64_t gc_exchanges = 0;
};

SoakCurve run(std::size_t ceiling) {
  tmk::DsmConfig c;
  c.num_nodes = kNodes;
  c.heap_bytes = 4 << 20;
  c.meta_ceiling_bytes = ceiling;
  c.gc_at_barriers = false;  // the exchange is the only reclamation point
  c.time.cpu_scale = 0.0;
  const std::size_t samples = kIters / kSampleEvery;
  std::vector<std::vector<std::size_t>> per_node(
      kNodes, std::vector<std::size_t>(samples, 0));
  tmk::DsmRuntime rt(c);
  rt.run_spmd([&](tmk::Tmk& tmk) {
    tmk::gptr<std::uint64_t> state(tmk::kPageSize);
    const std::uint32_t id = tmk.id();
    if (id == 0) {
      tmk.lock_acquire(0);
      state[0] = 1;
      state[kWpp] = 1;
      tmk.lock_release(0);
    }
    tmk.barrier();
    for (std::size_t i = 0; i < kIters; ++i) {
      tmk.lock_acquire(0);
      const std::uint64_t v = state[0];
      state[0] = v + 1;
      for (std::size_t k = 0; k < 16; ++k)
        state[kWpp + 1 + (v + k) % 96] = v * 100 + k;
      tmk.lock_release(0);
      if (i % kSampleEvery == kSampleEvery - 1)
        per_node[id][i / kSampleEvery] =
            tmk.node.meta_footprint().total_bytes();
      std::this_thread::yield();
    }
    tmk.barrier();
  });
  SoakCurve curve;
  curve.max_node_bytes.assign(samples, 0);
  for (std::size_t s = 0; s < samples; ++s)
    for (std::uint32_t i = 0; i < kNodes; ++i)
      curve.max_node_bytes[s] =
          std::max(curve.max_node_bytes[s], per_node[i][s]);
  curve.gc_exchanges = rt.total_stats().gc_exchanges;
  return curve;
}

void print_points_json(const SoakCurve& c) {
  std::printf("\"points\": [");
  for (std::size_t s = 0; s < c.max_node_bytes.size(); ++s)
    std::printf("%s\n        {\"epoch\": %zu, \"max_node_bytes\": %zu}",
                s == 0 ? "" : ",", (s + 1) * kSampleEvery,
                c.max_node_bytes[s]);
  std::printf("\n      ], \"gc_exchanges\": %llu",
              static_cast<unsigned long long>(c.gc_exchanges));
}

int soak_json() {
  const SoakCurve on = run(kCeiling);
  const SoakCurve off = run(0);
  std::printf("{\n  \"soak_footprint\": {\n"
              "    \"nodes\": %u,\n    \"iters_per_node\": %zu,\n"
              "    \"ceiling_bytes\": %zu,\n    \"modes\": {\n",
              kNodes, kIters, kCeiling);
  std::printf("      \"ceiling_on\": {");
  print_points_json(on);
  std::printf("},\n      \"ceiling_off\": {");
  print_points_json(off);
  std::printf("}\n    }\n  }\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--json")) return soak_json();

  const SoakCurve on = run(kCeiling);
  const SoakCurve off = run(0);
  std::printf("== Soak: per-node meta footprint, ceiling %zu bytes vs off ==\n",
              kCeiling);
  std::printf("%-12s %16s %16s\n", "iteration", "ceiling_on", "ceiling_off");
  for (std::size_t s = 0; s < on.max_node_bytes.size(); ++s)
    std::printf("%-12zu %16zu %16zu\n", (s + 1) * kSampleEvery,
                on.max_node_bytes[s], off.max_node_bytes[s]);
  std::printf("gc exchanges: %llu (on), %llu (off)\n",
              static_cast<unsigned long long>(on.gc_exchanges),
              static_cast<unsigned long long>(off.gc_exchanges));
  return 0;
}
