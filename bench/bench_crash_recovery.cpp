// Checkpoint/rollback overhead curve: one deterministic restart-aware
// workload, run with the recovery knobs progressively armed, measuring what
// barrier-aligned checkpointing costs on the wire and what a node crash
// costs to roll back — and proving neither changes a byte of the result.
//
// Legs:
//   off   — every knob off (perfect bypassed wire, no checkpoint pass).
//           Messages, payload and wire bytes must match bench/baselines/
//           crash_recovery.json *exactly*: with the knobs at rest this PR
//           must not move a single byte on the wire.
//   ckpt  — TMK_CKPT_EVERY=2 equivalent: the checkpoint pass runs at every
//           other barrier (staging, sema query, commit round), still on the
//           bypassed perfect wire.  Gated: same checksum as off, wire-byte
//           ratio under the baseline cap, durable epochs actually banked.
//   crash — checkpointing on and node 3 scripted to die mid lock chain;
//           detection via retransmit exhaustion (the reliability channel is
//           forced on), rollback to the last durable epoch, replay.  Gated:
//           same checksum as off, at least one recovery.
#include <cstdio>
#include <cstring>
#include <vector>

#include "tmk/tmk.h"

namespace {

using namespace now;

constexpr std::uint32_t kNodes = 8;
constexpr std::size_t kRounds = 10;
constexpr std::size_t kWordsPerPage = tmk::kPageSize / sizeof(std::uint64_t);

struct Leg {
  const char* name;
  std::uint32_t ckpt_every;
  std::uint32_t crash_node;  // DsmConfig::kNoCrashNode = no crash
  std::uint32_t crash_at;
};

struct LegResult {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t checksum = 0;
  bool completed = false;
  tmk::DsmStatsSnapshot dsm;
};

// Restart-aware by construction: progress (completed rounds) lives in shared
// memory and advances just before each round's barrier; every write is an
// idempotent function of (round, node, slot), so a replay from any durable
// epoch reproduces the bytes.  Deliberately lock-free: lock-grant chains
// order themselves by host scheduling, which perturbs message counts run to
// run, and the off leg is gated on *exact* wire identity.  A barrier-only
// workload's traffic is deterministic (the crash_test sweep covers the lock
// and GC crash sites).
LegResult run(const Leg& leg) {
  tmk::DsmConfig c;
  c.num_nodes = kNodes;
  c.heap_bytes = 4 << 20;
  c.time.cpu_scale = 0.0;
  // Explicit assignment overrides any TMK_* env defaults: each leg measures
  // exactly the configuration it names.
  c.net_fault = {};
  c.net_reliable = false;
  c.meta_ceiling_bytes = 0;
  c.ckpt_every = leg.ckpt_every;
  c.net_crash_node = leg.crash_node;
  c.net_crash_at = leg.crash_at;
  // Detection latency is host time (retransmit backoff): keep the bench
  // snappy without weakening the protocol under test.
  c.net_max_retries = 3;

  LegResult r;
  tmk::DsmRuntime rt(c);
  const tmk::RunReport report = rt.run_spmd([&](tmk::Tmk& t) {
    tmk::gptr<std::uint64_t> ctl(tmk::kPageSize);
    tmk::gptr<std::uint64_t> data(2 * tmk::kPageSize);
    const std::uint32_t id = t.id();
    const std::size_t start = ctl[0];
    std::uint64_t sink = 0;
    t.barrier();
    for (std::size_t r2 = start; r2 < kRounds; ++r2) {
      for (std::size_t k = 0; k < 48; ++k)
        data[id * kWordsPerPage + (r2 * 11 + k) % kWordsPerPage] =
            (r2 + 1) * 1000003u + id * 131u + k;
      ctl[8 + id] = (r2 + 1) * (id * 131u + 7);
      if (id == 0) ctl[0] = r2 + 1;
      t.barrier();
      // Cross-node reads after the barrier: each node pulls a word of its
      // neighbor's fresh page, so every round moves diffs on the wire.
      sink += data[((id + 1) % kNodes) * kWordsPerPage +
                   (r2 * 13) % kWordsPerPage];
    }
    if (sink == static_cast<std::uint64_t>(-1)) std::abort();
    if (id == 0) {
      std::uint64_t sum = ctl[0];
      for (std::uint32_t n = 0; n < kNodes; ++n)
        sum = sum * 1099511628211ULL + ctl[8 + n];
      for (std::size_t w = 0; w < kNodes * kWordsPerPage; ++w)
        sum = sum * 1099511628211ULL + data[w];
      r.checksum = sum;
    }
  });

  r.completed = report.completed;
  const auto tr = rt.traffic();
  r.messages = tr.messages;
  r.payload_bytes = tr.payload_bytes;
  r.wire_bytes = tr.wire_bytes;
  r.dsm = rt.total_stats();
  return r;
}

std::vector<Leg> legs() {
  // Crash at the victim's sync-point index 4 (its barrier arrivals are its
  // only sync points here): round 3's barrier, a checkpoint already durable
  // behind it and most of the run still ahead.
  return {{"off", 0, tmk::DsmConfig::kNoCrashNode, 0},
          {"ckpt", 2, tmk::DsmConfig::kNoCrashNode, 0},
          {"crash", 2, 3, 4}};
}

int crash_json() {
  std::printf("{\n  \"crash_recovery\": {\n"
              "    \"nodes\": %u,\n    \"rounds\": %zu,\n    \"legs\": {\n",
              kNodes, kRounds);
  bool first = true;
  for (const Leg& leg : legs()) {
    const LegResult r = run(leg);
    std::printf(
        "%s      \"%s\": {\"messages\": %llu, \"payload_bytes\": %llu, "
        "\"wire_bytes\": %llu, \"checksum\": %llu, \"completed\": %d,\n"
        "        \"ckpt_epochs\": %llu, \"ckpt_bytes_written\": %llu, "
        "\"ckpt_pages_incremental\": %llu, \"recoveries\": %llu, "
        "\"rollback_epochs_lost\": %llu}",
        first ? "" : ",\n", leg.name, (unsigned long long)r.messages,
        (unsigned long long)r.payload_bytes, (unsigned long long)r.wire_bytes,
        (unsigned long long)r.checksum, r.completed ? 1 : 0,
        (unsigned long long)r.dsm.ckpt_epochs,
        (unsigned long long)r.dsm.ckpt_bytes_written,
        (unsigned long long)r.dsm.ckpt_pages_incremental,
        (unsigned long long)r.dsm.recoveries,
        (unsigned long long)r.dsm.rollback_epochs_lost);
    first = false;
  }
  std::printf("\n    }\n  }\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--json")) return crash_json();

  std::printf("== Checkpoint/rollback: recovery overhead, %u nodes x %zu"
              " rounds ==\n", kNodes, kRounds);
  std::printf("%-7s %9s %11s %11s %7s %8s %8s %6s %7s  %s\n", "leg",
              "messages", "payload", "wire", "ckptep", "ckptKB", "incpg",
              "recov", "eplost", "checksum");
  std::uint64_t off_wire = 0;
  for (const Leg& leg : legs()) {
    const LegResult r = run(leg);
    if (!std::strcmp(leg.name, "off")) off_wire = r.wire_bytes;
    std::printf("%-7s %9llu %11llu %11llu %7llu %8.1f %8llu %6llu %7llu  %llu",
                leg.name, (unsigned long long)r.messages,
                (unsigned long long)r.payload_bytes,
                (unsigned long long)r.wire_bytes,
                (unsigned long long)r.dsm.ckpt_epochs,
                (double)r.dsm.ckpt_bytes_written / 1024.0,
                (unsigned long long)r.dsm.ckpt_pages_incremental,
                (unsigned long long)r.dsm.recoveries,
                (unsigned long long)r.dsm.rollback_epochs_lost,
                (unsigned long long)r.checksum);
    if (off_wire != 0)
      std::printf("  (%.3fx wire)", (double)r.wire_bytes / (double)off_wire);
    std::printf("\n");
  }
  return 0;
}
