// Shared plumbing for the paper-reproduction benches: canonical workload
// sizes (Table 1) and the run-all-versions driver used by Figure 5 and
// Table 2.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/fft3d/fft3d.h"
#include "apps/qsort/qsort.h"
#include "apps/sweep3d/sweep3d.h"
#include "apps/tsp/tsp.h"
#include "apps/water/water.h"
#include "common/table.h"

namespace now::bench {

struct Workloads {
  apps::sweep3d::Params sweep;
  apps::fft3d::Params fft;
  apps::water::Params water;
  apps::tsp::Params tsp;
  apps::qs::Params qs;

  // Default sizes put every application in the paper's compute/communication
  // regime while keeping a full bench run to a couple of minutes; --scale 2
  // grows them toward the paper's exact inputs.
  static Workloads standard(int scale = 1) {
    Workloads w;
    w.sweep.nx = w.sweep.ny = w.sweep.nz = static_cast<std::size_t>(48) * scale;
    w.sweep.k_block = 6;
    w.fft.nx = w.fft.ny = 64 * static_cast<std::size_t>(scale);
    w.fft.nz = 32 * static_cast<std::size_t>(scale);
    w.fft.iters = 2;
    w.water.nmol = 512 * static_cast<std::size_t>(scale);
    w.water.steps = 3;
    w.tsp.ncities = scale > 1 ? 13 : 12;
    w.tsp.exhaustive_depth = 7;
    w.qs.n = std::size_t{1} << (17 + scale);
    w.qs.bubble_threshold = 1024;
    return w;
  }
};

struct VersionedResults {
  apps::AppResult seq, omp, tmk, mpi;
};

inline tmk::DsmConfig dsm_cfg(std::uint32_t nodes) {
  tmk::DsmConfig c;
  c.num_nodes = nodes;
  c.heap_bytes = std::size_t{96} << 20;
  return c;
}

inline mpi::MpiConfig mpi_cfg(std::uint32_t ranks) {
  mpi::MpiConfig c;
  c.num_ranks = ranks;
  return c;
}

template <typename App>
VersionedResults run_all(const App& params, std::uint32_t nodes) {
  VersionedResults r;
  r.seq = run_seq(params, sim::TimeModel{});
  r.omp = run_omp(params, dsm_cfg(nodes));
  r.tmk = run_tmk(params, dsm_cfg(nodes));
  r.mpi = run_mpi(params, mpi_cfg(nodes));
  return r;
}

inline double speedup(const apps::AppResult& seq, const apps::AppResult& par) {
  return par.virtual_time_us > 0 ? seq.virtual_time_us / par.virtual_time_us : 0;
}

inline int scale_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) return std::atoi(argv[i + 1]);
  return 1;
}

}  // namespace now::bench
