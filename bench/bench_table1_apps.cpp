// Table 1: "Applications, input data sets, sequential execution time and
// parallel and synchronization directives in the OpenMP versions."
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace now;
  using namespace now::bench;
  const int scale = scale_from_args(argc, argv);
  const Workloads w = Workloads::standard(scale);

  std::cout << "== Table 1: applications, data sizes, sequential time, "
               "directives ==\n";

  Table t({"Application", "Data size", "Seq time (virtual s)", "Parallel",
           "Synchronization"});

  auto seq_s = [](const apps::AppResult& r) {
    return Table::fmt(r.virtual_time_us / 1e6, 3);
  };

  auto sweep = apps::sweep3d::run_seq(w.sweep, sim::TimeModel{});
  t.add_row({"Sweep3D",
             std::to_string(w.sweep.nx) + "^3 mesh, kb=" + std::to_string(w.sweep.k_block),
             seq_s(sweep), "parallel region", "semaphore"});

  auto fft = apps::fft3d::run_seq(w.fft, sim::TimeModel{});
  t.add_row({"3D-FFT",
             std::to_string(w.fft.nx) + "x" + std::to_string(w.fft.ny) + "x" +
                 std::to_string(w.fft.nz) + ", " + std::to_string(w.fft.iters) + " iters",
             seq_s(fft), "parallel do", "none"});

  auto water = apps::water::run_seq(w.water, sim::TimeModel{});
  t.add_row({"Water", std::to_string(w.water.nmol) + " molecules, " +
                          std::to_string(w.water.steps) + " steps",
             seq_s(water), "parallel do/region", "barrier, lock"});

  auto tsp = apps::tsp::run_seq(w.tsp, sim::TimeModel{});
  t.add_row({"TSP", std::to_string(w.tsp.ncities) + " cities", seq_s(tsp),
             "parallel region", "critical"});

  auto qs = apps::qs::run_seq(w.qs, sim::TimeModel{});
  t.add_row({"QSORT", std::to_string(w.qs.n) + " ints, bubble threshold " +
                          std::to_string(w.qs.bubble_threshold),
             seq_s(qs), "parallel region", "critical, cond. var."});

  t.print(std::cout);
  std::cout << "\n(paper: Sweep3D 50^3; 3D-FFT/Water/TSP/QSORT sizes per Table 1;"
               "\n sequential times are virtual 1998-workstation seconds)\n";
  return 0;
}
