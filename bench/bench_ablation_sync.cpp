// Ablation for the paper's Section 3 proposal: replace `flush` with
// semaphores and condition variables.
//
// Reproduces Figures 1-4 as executable workloads and checks the message-cost
// argument of Section 3.2.4: "For n threads a total of 2(n-1) messages are
// sent [per flush] ... Semaphores and condition variables can be implemented
// with a small constant number of messages."
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "tmk/topology.h"

using namespace now;
using namespace now::bench;

namespace {

// Figure 1: pipeline with busy-wait flags + flush.
void pipeline_flush(std::uint32_t rounds, sim::TrafficSnapshot& traffic,
                    double& time_us) {
  tmk::DsmRuntime rt(dsm_cfg(2));
  rt.run_spmd([rounds](tmk::Tmk& tmk) {
    tmk::gptr<std::uint64_t> data(tmk::kPageSize);
    tmk::gptr<std::uint64_t> available(2 * tmk::kPageSize);
    tmk::gptr<std::uint64_t> done(3 * tmk::kPageSize);
    if (tmk.id() == 0) {  // producer
      for (std::uint32_t i = 1; i <= rounds; ++i) {
        *data = i;
        *available = 1;
        tmk.flush();
        while (*done == 0) std::this_thread::yield();
        *done = 0;
        tmk.flush();
      }
    } else {  // consumer
      for (std::uint32_t i = 1; i <= rounds; ++i) {
        while (*available == 0) std::this_thread::yield();
        *available = 0;
        (void)*data;
        *done = 1;
        tmk.flush();
      }
    }
  });
  traffic = rt.traffic();
  time_us = rt.virtual_time_us();
}

// Figure 3: the same pipeline with semaphores.
void pipeline_sema(std::uint32_t rounds, sim::TrafficSnapshot& traffic,
                   double& time_us) {
  tmk::DsmRuntime rt(dsm_cfg(2));
  rt.run_spmd([rounds](tmk::Tmk& tmk) {
    tmk::gptr<std::uint64_t> data(tmk::kPageSize);
    if (tmk.id() == 0) {
      for (std::uint32_t i = 1; i <= rounds; ++i) {
        *data = i;
        tmk.sema_signal(0);
        tmk.sema_wait(1);
      }
    } else {
      for (std::uint32_t i = 1; i <= rounds; ++i) {
        tmk.sema_wait(0);
        (void)*data;
        tmk.sema_signal(1);
      }
    }
  });
  traffic = rt.traffic();
  time_us = rt.virtual_time_us();
}

}  // namespace

int main() {
  std::cout << "== Ablation: flush (Figs. 1-2) vs semaphores / condition "
               "variables (Figs. 3-4) ==\n\n";

  // Message cost per flush as n grows (Sec. 3.2.4's 2(n-1) claim).
  {
    Table t({"n nodes", "msgs per flush", "2(n-1)", "msgs per sema op", "constant"});
    for (std::uint32_t n : {2u, 4u, 8u}) {
      tmk::DsmRuntime rt(dsm_cfg(n));
      rt.run_spmd([](tmk::Tmk& tmk) {
        tmk::gptr<std::uint64_t> x(tmk::kPageSize);
        if (tmk.id() == 0) {
          *x = 1;
          tmk.flush();
        }
      });
      const auto flush_traffic = rt.traffic();

      tmk::DsmRuntime rt2(dsm_cfg(n));
      rt2.run_spmd([](tmk::Tmk& tmk) {
        if (tmk.id() == 0) tmk.sema_signal(1);  // manager on node 1: remote
      });
      const auto sema_traffic = rt2.traffic();

      t.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                 Table::fmt(flush_traffic.messages_by_type[tmk::kFlushNotice] +
                            flush_traffic.messages_by_type[tmk::kFlushAck]),
                 Table::fmt(static_cast<std::uint64_t>(2 * (n - 1))),
                 Table::fmt(sema_traffic.messages), "2"});
    }
    t.print(std::cout);
  }

  // End-to-end pipeline: flush vs semaphores (Figure 1 vs Figure 3).
  {
    std::cout << "\nPipeline producer/consumer, 50 rounds, 2 nodes:\n";
    Table t({"Variant", "messages", "wire MB", "virtual ms"});
    sim::TrafficSnapshot tr;
    double us = 0;
    pipeline_flush(50, tr, us);
    t.add_row({"flush + busy-wait (Fig. 1)", Table::fmt(tr.messages),
               Table::fmt(tr.wire_mbytes(), 3), Table::fmt(us / 1000.0)});
    pipeline_sema(50, tr, us);
    t.add_row({"semaphores (Fig. 3)", Table::fmt(tr.messages),
               Table::fmt(tr.wire_mbytes(), 3), Table::fmt(us / 1000.0)});
    t.print(std::cout);
  }

  // Barrier fabric: the centralized manager's per-barrier load grows 2n+2
  // while the combining tree's busiest node stays flat (see bench_scaling
  // --json for the full 8..256 curve that CI gates).
  {
    std::cout << "\nBarrier fabric: per-barrier messages at the busiest node:\n";
    Table t({"n nodes", "centralized", "tree arity 2", "tree hops"});
    for (std::uint32_t n : {8u, 16u, 32u}) {
      auto busiest = [&](std::uint32_t arity) {
        tmk::DsmConfig c = dsm_cfg(n);
        c.heap_bytes = 2 << 20;
        c.barrier_tree_arity = arity;
        tmk::DsmRuntime rt(c);
        constexpr std::uint64_t kBarriers = 8;
        rt.run_spmd([](tmk::Tmk& tmk) {
          for (std::uint64_t b = 0; b < kBarriers; ++b) tmk.barrier();
        });
        std::uint64_t mx = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
          const auto s = rt.node(i).stats().snapshot();
          mx = std::max(mx,
                        (s.barrier_msgs_sent + s.barrier_msgs_recv) / kBarriers);
        }
        return mx;
      };
      const tmk::SyncTopology topo = [&] {
        tmk::DsmConfig c = dsm_cfg(n);
        c.barrier_tree_arity = 2;
        return tmk::SyncTopology(c);
      }();
      t.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                 Table::fmt(busiest(0)), Table::fmt(busiest(2)),
                 Table::fmt(static_cast<std::uint64_t>(topo.critical_path_hops()))});
    }
    t.print(std::cout);
  }

  std::cout << "\n(expected: flush messages grow as 2(n-1); semaphores stay"
               "\n constant, the sema pipeline sends fewer messages, and the"
               "\n tree barrier's busiest node stays flat as n grows)\n";
  return 0;
}
